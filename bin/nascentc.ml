(* nascentc — command-line driver for the MiniF range-check optimizer.

   Subcommands:
     check FILE        parse and type-check, print diagnostics
     dump FILE         lower (and optionally optimize) then print the IR
     run FILE          execute with the instrumented interpreter
     stats FILE        compare all placement schemes on one program
     verify [FILE]     IR invariant verification across the config matrix
     bench NAME        run a built-in benchmark program by name
     client [FILE]     send one request to a running nascentd service

   The optimizing commands accept --verify BOOL (IR verification
   between passes, default on), --trace (per-pass logging),
   --stats-json FILE (per-pass timing/counter records as JSON, written
   atomically) and --inject-fault SPEC (deliberate corruption of one
   pass's output, exercising the detect-and-rollback path).

   Exit codes: 0 success; 1 input/usage error; 2 the interpreted
   program trapped or errored; 3 the verifier rejected the lowered
   input (nothing to roll back to); 4 compiled successfully but
   degraded — at least one optimizer pass faulted and was rolled back
   (see the incident records in --stats-json / stderr); 5 interrupted
   by SIGINT/SIGTERM (distinct so batch drivers can tell cancellation
   from failure); 6 the service answered deadline-exceeded; 7 the
   client exhausted its retries against an unreachable or shedding
   service.
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module Frontend = Nascent_frontend.Frontend
module B = Nascent_benchmarks.Suite
module Json = Nascent_support.Json
module Client = Nascent_support.Server.Client
module Retry = Nascent_support.Retry
module Guard = Nascent_support.Guard
module Mclock = Nascent_support.Mclock
open Cmdliner

(* Batch runs die on SIGINT/SIGTERM with a distinct exit code, so a
   driver script can tell "cancelled" from "failed". Exit runs the
   at_exit chain, so atomically-written outputs are never torn. *)
let exit_interrupted = 5

let install_signal_exit () =
  let handle name =
    Sys.Signal_handle
      (fun _ ->
        Fmt.epr "nascentc: interrupted (%s)@." name;
        Stdlib.exit exit_interrupted)
  in
  List.iter
    (fun (signal, name) ->
      try Sys.set_signal signal (handle name)
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, "SIGINT"); (Sys.sigterm, "SIGTERM") ];
  (* client mode races draining daemons: a broken pipe must surface as
     EPIPE (retryable) rather than kill the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source path =
  if Sys.file_exists path then read_file path
  else
    match B.find path with
    | Some b -> b.B.source
    | None ->
        Fmt.epr "nascentc: no such file or built-in benchmark: %s@." path;
        exit 1

(* Frontend and lowering failures raise; report them as diagnostics
   rather than letting cmdliner dump a backtrace. A verifier violation
   is a distinct exit code: the input was fine, a pass broke the IR. *)
let with_errors f =
  try f () with
  | Failure msg | Ir.Lower.Lower_error msg ->
      Fmt.epr "nascentc: %s@." msg;
      1
  | Ir.Verify.Invalid_ir msg ->
      Fmt.epr "nascentc: %s@." msg;
      3

(* --- common arguments ------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"MiniF source file, or the name of a built-in benchmark (vortex, arc2d, ...).")

let scheme_arg =
  let parse s =
    match Config.scheme_of_name s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %s" s))
  in
  let print ppf s = Fmt.string ppf (Config.scheme_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.LLS
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:"Placement scheme: NI, CS, LNI, SE, LI, LLS, ALL or MCM.")

let kind_arg =
  let parse = function
    | "prx" | "PRX" -> Ok Config.PRX
    | "inx" | "INX" -> Ok Config.INX
    | s -> Error (`Msg (Printf.sprintf "unknown check kind %s" s))
  in
  let print ppf k = Fmt.string ppf (Config.kind_name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.PRX
    & info [ "k"; "kind" ] ~docv:"KIND"
        ~doc:"Check construction: PRX (program expressions) or INX (induction expressions).")

let impl_arg =
  let parse = function
    | "all" -> Ok Universe.All_implications
    | "none" -> Ok Universe.No_implications
    | "cross" -> Ok Universe.Cross_family_only
    | s -> Error (`Msg (Printf.sprintf "unknown implication mode %s" s))
  in
  let print ppf m = Fmt.string ppf (Universe.mode_name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Universe.All_implications
    & info [ "i"; "implications" ] ~docv:"MODE"
        ~doc:"Check implication mode: all, cross (cross-family only) or none.")

let verify_arg =
  Arg.(
    value
    & opt bool true
    & info [ "verify" ] ~docv:"BOOL"
        ~doc:"Run the IR invariant verifier between optimizer passes (default true).")

let oracle_arg =
  Arg.(
    value
    & flag
    & info [ "oracle" ]
        ~doc:
          "Consult the decision-procedure implication oracle during elimination \
           (cross-family implications beyond the syntactic CIG) and run \
           per-compile translation validation: every original check site is \
           proven still covered by the residual checks plus dominating guards. \
           The certificate appears as the \"validated\" field of --stats-json.")

let trace_arg =
  Arg.(
    value
    & flag
    & info [ "trace" ]
        ~doc:"Trace optimizer passes (per-pass timing, check counts, verification) to stderr.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan independent (program × scheme × kind × implication) cells over \
           $(docv) domains; 1 forces the serial path. Defaults to $(b,NASCENT_JOBS) \
           or the host's recommended domain count. Results are deterministic \
           regardless of $(docv).")

let setup_jobs jobs = Option.iter Nascent_support.Pool.set_default_jobs jobs

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write optimizer statistics, including the per-pass breakdown, to $(docv) as JSON.")

let setup_trace trace =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Core.Optimizer.log_src (Some Logs.Debug)
  end

(* temp + rename: a crashed or interrupted run never leaves a torn
   stats file for a dashboard to misparse *)
let write_json path json = Nascent_support.Guard.write_atomic ~path json

let naive_arg =
  Arg.(value & flag & info [ "naive" ] ~doc:"Skip optimization (naive checking).")

let fuel_arg =
  Arg.(
    value
    & opt int Run.default_fuel
    & info [ "fuel" ] ~docv:"N" ~doc:"Interpreter step budget.")

let fault_classes_doc =
  "drop-check, weaken-check, break-edge, unsafe-insert, hang-fixpoint or \
   unsound-eliminate"

(* A single CLASS[:SEED] spec, for the optimizing commands. *)
let fault_arg =
  let parse s =
    match Ir.Mutate.parse_request s with
    | Ok (Ir.Mutate.Single spec) -> Ok spec
    | Ok Ir.Mutate.Smoke ->
        Error (`Msg "--inject-fault smoke is only valid for the verify subcommand")
    | Error e -> Error (`Msg e)
  in
  let print ppf s = Fmt.string ppf (Ir.Mutate.spec_name s) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "inject-fault" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Deliberately corrupt one optimizer pass's output — $(docv) is \
              CLASS or CLASS:SEED, with CLASS one of %s — to exercise the \
              detect-and-rollback path. Forces the verifier on; a compile that \
              detects and recovers from a fault exits with code 4."
             fault_classes_doc))

let config_term =
  Term.(
    const (fun scheme kind impl verify fault oracle ->
        Config.make ~scheme ~kind ~impl ~verify ?fault ~oracle ())
    $ scheme_arg $ kind_arg $ impl_arg $ verify_arg $ fault_arg $ oracle_arg)

(* Exit 4 — compiled, but degraded: some pass rolled back, or the
   translation-validation certificate could not be established. *)
let exit_of_stats ?(ok = 0) = function
  | Some st when st.Core.Optimizer.incidents <> [] ->
      Fmt.epr "nascentc: %d optimizer pass(es) rolled back:@.%a@."
        (List.length st.Core.Optimizer.incidents)
        (Fmt.list Core.Optimizer.pp_incident)
        st.Core.Optimizer.incidents;
      4
  | Some st when Core.Optimizer.validated st = Some false ->
      (match st.Core.Optimizer.validation with
      | Some v -> Fmt.epr "nascentc: %a@." Ir.Validate.pp v
      | None -> ());
      4
  | _ -> ok

(* --- commands ---------------------------------------------------------- *)

let cmd_check =
  let doc = "Parse and type-check a MiniF program." in
  let run file =
    with_errors @@ fun () ->
    match Frontend.analyze (load_source file) with
    | Ok (prog, _) ->
        Fmt.pr "%s: OK (%d unit(s))@." file (List.length prog.Nascent_frontend.Ast.units);
        0
    | Error e ->
        Fmt.epr "%a@." Frontend.pp_error e;
        1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

let optimize_source src config ~naive =
  let ir = Ir.Lower.of_source src in
  if naive then (ir, None)
  else
    let opt, stats = Core.Optimizer.optimize ~config ir in
    (opt, Some stats)

let cmd_dump =
  let doc = "Lower (and optimize) a program, then print its IR." in
  let run file config naive trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let prog, stats = optimize_source (load_source file) config ~naive in
    Option.iter (Fmt.pr "! %a@.@." Core.Optimizer.pp_stats) stats;
    (match (stats, json) with
    | Some st, Some path -> write_json path (Core.Optimizer.stats_to_json st)
    | _ -> ());
    Fmt.pr "%s@." (Ir.Printer.program_to_string prog);
    exit_of_stats stats
  in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(const run $ file_arg $ config_term $ naive_arg $ trace_arg $ stats_json_arg)

let cmd_run =
  let doc = "Execute a program under the instrumented interpreter." in
  let run file config naive fuel trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let prog, stats = optimize_source (load_source file) config ~naive in
    (match (stats, json) with
    | Some st, Some path -> write_json path (Core.Optimizer.stats_to_json st)
    | _ -> ());
    let o = Run.run ~fuel prog in
    Fmt.pr "%a@." Run.pp_outcome o;
    if o.Run.trap <> None || o.Run.error <> None then 2 else exit_of_stats stats
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_arg $ config_term $ naive_arg $ fuel_arg $ trace_arg
      $ stats_json_arg)

let cmd_stats =
  let doc = "Compare every placement scheme on one program." in
  let run file kind verify fault trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let src = load_source file in
    let ir = Ir.Lower.of_source src in
    let o0 = Run.run ir in
    Fmt.pr "naive: %d dynamic checks, %d instruction units@." o0.Run.checks o0.Run.instrs;
    Fmt.pr "%-6s %12s %12s %9s@." "scheme" "checks" "%eliminated" "time(ms)";
    let all_stats =
      List.map
        (fun scheme ->
          let config = Config.make ~scheme ~kind ~verify ?fault () in
          let opt, stats = Core.Optimizer.optimize ~config ir in
          let o = Run.run opt in
          Fmt.pr "%-6s %12d %11.2f%% %9.2f@." (Config.scheme_name scheme) o.Run.checks
            (100.0
            *. float_of_int (o0.Run.checks - o.Run.checks)
            /. float_of_int (max 1 o0.Run.checks))
            (1000.0 *. stats.Core.Optimizer.elapsed_s);
          stats)
        Config.extended_schemes
    in
    Option.iter
      (fun path ->
        write_json path
          ("[\n"
          ^ String.concat ",\n" (List.map Core.Optimizer.stats_to_json all_stats)
          ^ "]\n"))
      json;
    List.fold_left
      (fun code st -> max code (exit_of_stats (Some st)))
      0 all_stats
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ file_arg $ kind_arg $ verify_arg $ fault_arg $ trace_arg
      $ stats_json_arg)

(* Schemes whose pipeline runs the pass a mutation class targets; a
   cell outside this set could never apply its fault, so it proves
   nothing. *)
let fault_schemes = function
  | Ir.Mutate.Drop_check | Ir.Mutate.Weaken_check -> [ Config.CS ]
  | Ir.Mutate.Unsafe_insert -> [ Config.SE; Config.LNI; Config.ALL ]
  | Ir.Mutate.Break_edge | Ir.Mutate.Hang_fixpoint ->
      (* "eliminate" runs in every scheme *)
      Config.extended_schemes
  | Ir.Mutate.Unsound_eliminate ->
      (* schemes whose residual in-place checks are reference checks;
         insertion schemes (SE/LNI/ALL) can leave an inserted check
         that covers no reference obligation, whose deletion the
         validator rightly does not flag *)
      [ Config.NI; Config.LLS ]

(* One fault-injection cell: optimize under a deliberately corrupted
   pass and check the full recovery contract. Returns
   [injected, failure messages]. *)
let fault_cell (name, ir, spec, scheme) =
  (* [unsound-eliminate] is legal under every differential rule, so its
     cells compile with the oracle on: the translation validator is the
     detection mechanism under test, and "detected" means the
     certificate was refused with no pass incident. *)
  let unsound = spec.Ir.Mutate.cls = Ir.Mutate.Unsound_eliminate in
  let config = Config.make ~scheme ~fault:spec ~oracle:unsound () in
  let where = Fmt.str "%s under %a" name Config.pp config in
  match Core.Optimizer.optimize ~config ir with
  | exception Ir.Verify.Invalid_ir msg ->
      (false, [ Fmt.str "%s: escaped the rollback guard:@.%s" where msg ])
  | opt, stats ->
      let injected = stats.Core.Optimizer.faults_injected > 0 in
      let errs = ref [] in
      let fail fmt = Fmt.kstr (fun m -> errs := Fmt.str "%s: %s" where m :: !errs) fmt in
      (if injected then begin
         if unsound then begin
           if stats.Core.Optimizer.incidents <> [] then
             fail "unsound deletion drew a pass incident (should be rule-invisible)";
           if Core.Optimizer.validated stats <> Some false then
             fail "unsound deletion escaped the translation validator"
         end
         else if
           (* detection: a corruption that draws no incident escaped *)
           stats.Core.Optimizer.incidents = []
         then fail "injected fault drew no incident (undetected corruption)"
       end
       else if unsound && Core.Optimizer.validated stats <> Some true then
         fail "fault-free cell lost its validation certificate"
       else if stats.Core.Optimizer.incidents <> [] then
         (* the converse: nothing was corrupted, so nothing may roll back *)
         fail "no fault applied, yet %d incident(s) were reported"
           (List.length stats.Core.Optimizer.incidents));
      (* the recovered output must be valid IR... *)
      (match Ir.Verify.program opt with
      | [] -> ()
      | vs ->
          fail "recovered program is invalid: %a"
            (Fmt.list Ir.Verify.pp_violation) vs);
      (* ...and behave exactly like the naive-checked original *)
      (if injected then
         let o0 = Run.run ir and o = Run.run opt in
         if o.Run.printed <> o0.Run.printed then fail "recovered program prints differently";
         if (o.Run.trap = None) <> (o0.Run.trap = None) then
           fail "recovered program traps differently";
         if (o.Run.error = None) <> (o0.Run.error = None) then
           fail "recovered program errors differently");
      (injected, List.rev !errs)

let cmd_verify =
  let doc =
    "Verify IR invariants between optimizer passes across the full configuration \
     matrix (every scheme, check kind and implication mode), on one program or on \
     all built-in benchmarks. With --inject-fault, additionally prove the \
     fail-safe contract: every injected corruption is detected, rolled back, and \
     the recovered compile still matches the naive interpreter."
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "MiniF source file or built-in benchmark name; all built-in benchmarks \
             when omitted.")
  in
  let fault_req_arg =
    let parse s =
      match Ir.Mutate.parse_request s with
      | Ok r -> Ok r
      | Error e -> Error (`Msg e)
    in
    let print ppf = function
      | Ir.Mutate.Smoke -> Fmt.string ppf "smoke"
      | Ir.Mutate.Single s -> Fmt.string ppf (Ir.Mutate.spec_name s)
    in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "inject-fault" ] ~docv:"SPEC"
          ~doc:
            (Printf.sprintf
               "Fault-injection mode: $(docv) is $(b,smoke) (the full class × \
                benchmark × scheme matrix, seeded per cell), CLASS or CLASS:SEED \
                (CLASS one of %s). Fails if any injected fault goes undetected, \
                any fault-free cell reports an incident, or a recovered compile \
                diverges from the naive interpreter."
               fault_classes_doc))
  in
  let run file fault trace jobs oracle =
    with_errors @@ fun () ->
    setup_trace trace;
    setup_jobs jobs;
    let targets =
      match file with
      | Some f -> [ (f, load_source f) ]
      | None -> List.map (fun b -> (b.B.name, b.B.source)) B.all
    in
    let failures = ref 0 in
    let lowered =
      List.map
        (fun (name, src) ->
          let ir = Ir.Lower.of_source src in
          (match Ir.Verify.program ir with
          | [] -> ()
          | vs ->
              incr failures;
              List.iter
                (fun v -> Fmt.epr "%s (lowered): %a@." name Ir.Verify.pp_violation v)
                vs);
          (name, ir))
        targets
    in
    let pool = Nascent_support.Pool.global () in
    (match fault with
    | None ->
        let impls =
          [
            Universe.All_implications;
            Universe.Cross_family_only;
            Universe.No_implications;
          ]
        in
        (* The matrix cells are independent — each optimizes its own
           copy — so they fan out over the domain pool; failures are
           collected and reported afterwards in deterministic matrix
           order. A faulting pass no longer raises: it rolls back and
           leaves an incident record, so an incident IS the failure. *)
        let cells =
          List.concat_map
            (fun (name, ir) ->
              List.concat_map
                (fun scheme ->
                  List.concat_map
                    (fun kind ->
                      List.map
                        (fun impl ->
                          ( name,
                            ir,
                            Config.make ~scheme ~kind ~impl ~verify:true ~oracle () ))
                        impls)
                    [ Config.PRX; Config.INX ])
                Config.extended_schemes)
            lowered
        in
        let outcomes =
          Nascent_support.Pool.parallel_map pool
            (fun (name, ir, config) ->
              match Core.Optimizer.optimize ~config ir with
              | _, stats -> (
                  match
                    (stats.Core.Optimizer.incidents, Core.Optimizer.validated stats)
                  with
                  | [], Some false ->
                      Some
                        ( name,
                          config,
                          Fmt.str "translation validation failed:@.%a"
                            (Fmt.option Ir.Validate.pp)
                            stats.Core.Optimizer.validation )
                  | [], _ -> None
                  | is, _ ->
                      Some
                        ( name,
                          config,
                          Fmt.str "%d pass(es) rolled back:@.%a" (List.length is)
                            (Fmt.list Core.Optimizer.pp_incident)
                            is ))
              | exception Ir.Verify.Invalid_ir msg -> Some (name, config, msg))
            cells
        in
        List.iter
          (function
            | None -> ()
            | Some (name, config, msg) ->
                incr failures;
                Fmt.epr "%s under %a:@.%s@." name Config.pp config msg)
          outcomes;
        if !failures = 0 then
          Fmt.pr
            "verified %d program(s) under %d configuration(s) (jobs=%d): no violations@."
            (List.length targets) (List.length cells)
            (Nascent_support.Pool.default_jobs ())
    | Some req ->
        (* Fault matrix: smoke sweeps every class over every target and
           every scheme whose pipeline can apply it, with a
           deterministic per-cell seed; a single spec pins class and
           seed. *)
        let cells =
          match req with
          | Ir.Mutate.Single spec ->
              List.concat_map
                (fun (name, ir) ->
                  List.map
                    (fun scheme -> (name, ir, spec, scheme))
                    (fault_schemes spec.Ir.Mutate.cls))
                lowered
          | Ir.Mutate.Smoke ->
              List.concat_map
                (fun cls ->
                  List.concat_map
                    (fun (name, ir) ->
                      List.mapi
                        (fun i scheme ->
                          (name, ir, { Ir.Mutate.cls; seed = (13 * i) + 1 }, scheme))
                        (fault_schemes cls))
                    lowered)
                Ir.Mutate.all_classes
        in
        let outcomes = Nascent_support.Pool.parallel_map pool fault_cell cells in
        let injected = ref 0 in
        List.iter
          (fun (inj, errs) ->
            if inj then incr injected;
            List.iter
              (fun e ->
                incr failures;
                Fmt.epr "%s@." e)
              errs)
          outcomes;
        (* vacuity: a class that never actually corrupted anything
           proved nothing — fail loudly rather than report green *)
        let classes =
          match req with
          | Ir.Mutate.Single spec -> [ spec.Ir.Mutate.cls ]
          | Ir.Mutate.Smoke -> Ir.Mutate.all_classes
        in
        List.iter
          (fun cls ->
            let applied =
              List.exists2
                (fun (_, _, spec, _) (inj, _) -> spec.Ir.Mutate.cls = cls && inj)
                cells outcomes
            in
            if not applied then begin
              incr failures;
              Fmt.epr "fault class %s never applied to any cell (vacuous)@."
                (Ir.Mutate.cls_name cls)
            end)
          classes;
        if !failures = 0 then
          Fmt.pr
            "fault injection: %d/%d cell(s) corrupted, all detected, rolled back \
             and behaviour-preserving (jobs=%d)@."
            !injected (List.length cells)
            (Nascent_support.Pool.default_jobs ()));
    if !failures = 0 then 0
    else begin
      Fmt.epr "%d verification failure(s)@." !failures;
      1
    end
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ file_opt_arg $ fault_req_arg $ trace_arg $ jobs_arg $ oracle_arg)

(* --- compile-service client -------------------------------------------- *)

let default_socket () =
  match Sys.getenv_opt "NASCENT_SOCKET" with
  | Some s when String.trim s <> "" -> s
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "nascentd.sock"

(* The wire names the service parses (Universe.mode_name is the
   human/report spelling, not the protocol's). *)
let impl_wire = function
  | Universe.All_implications -> "all"
  | Universe.No_implications -> "none"
  | Universe.Cross_family_only -> "cross"

let cmd_client =
  let doc =
    "Send one request to a running nascentd compile service and print its \
     JSON response. Retries connection refusals and retryable errors \
     (overload shedding, drain) with exponential backoff and deterministic \
     jitter. Exit codes: 0 ok; 4 compiled degraded (incidents or breaker \
     fallback); 2 the requested run trapped/errored or the service failed \
     internally; 6 deadline exceeded; 7 retries exhausted; 1 bad request."
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "MiniF source file or built-in benchmark name to compile \
             (required unless --status or --burn).")
  in
  let socket_arg =
    Arg.(
      value
      & opt string (default_socket ())
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Address of the nascentd instance: a Unix socket path \
             (line-delimited JSON), or HOST:PORT for the NF1 framed TCP \
             transport — a shard router is just a daemon at such an \
             address. Defaults to $(b,NASCENT_SOCKET) or \
             $(b,TMPDIR/nascentd.sock).")
  in
  let recv_timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "recv-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-attempt receive budget: a response not arriving within \
             $(docv) abandons the connection and retries on a fresh one \
             (a stalled or silently dead peer costs a bounded wait, not a \
             hang). Omitted: wait indefinitely.")
  in
  let status_arg =
    Arg.(
      value
      & flag
      & info [ "status" ]
          ~doc:
            "Ask for server status (uptime, queue, breaker states, \
             counters) instead of compiling.")
  in
  let burn_arg =
    Arg.(
      value
      & flag
      & info [ "burn" ]
          ~doc:
            "Send a deliberately non-terminating request (exercises the \
             service's deadline path; expect exit 6).")
  in
  let run_flag_arg =
    Arg.(
      value
      & flag
      & info [ "run" ]
          ~doc:"Also execute the optimized program under the interpreter.")
  in
  let tier_arg =
    Arg.(
      value
      & opt (some (enum [ ("auto", "auto"); ("sync", "sync") ])) None
      & info [ "tier" ] ~docv:"MODE"
          ~doc:
            "Tiering mode for the compile request. $(b,auto) (the daemon's \
             default) answers a cold cache miss instantly from the NI floor \
             (response field \"tier\":\"floor\") while the requested scheme \
             compiles in the background and hot-swaps into the cache; \
             $(b,sync) forces the requested scheme on the live request, \
             pre-tier style. Omitted: the server decides.")
  in
  let prewarm_arg =
    Arg.(
      value
      & flag
      & info [ "prewarm" ]
          ~doc:
            "Warm the service's cache: request every (built-in benchmark × \
             scheme) cell under the current --kind/--implications/--verify \
             settings, then poll status until the background upgrade queue \
             drains, so subsequent requests are served \
             \"tier\":\"optimized\" from cache. Exits 0 when drained, 4 if \
             any cell failed, 6 if upgrades were still pending at the \
             --max-wait-ms budget (default 120000).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock budget override; $(docv) <= 0 asks for \
             an unbounded request. Omitted: the server's default applies.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Retry.default.Retry.max_attempts
      & info [ "retries" ] ~docv:"N"
          ~doc:"Total connection/retryable-error attempts, including the first.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Backoff jitter seed (deterministic per seed and attempt).")
  in
  let max_wait_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-wait-ms" ] ~docv:"MS"
          ~doc:
            "Total elapsed budget across all retry attempts: riding through \
             a supervised daemon restart keeps retrying, but never waits \
             longer than $(docv) in total. Exhaustion exits 7 like any \
             retries-exhausted failure. Omitted: only --retries bounds the \
             schedule.")
  in
  let client_stats_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Also write the response JSON (status counters included for \
             --status) to $(docv), atomically.")
  in
  let exit_of_response resp =
    match Json.str_member "status" resp with
    | Some "error" ->
        let code = Option.value ~default:"?" (Json.str_member "code" resp) in
        Fmt.epr "nascentc: service error %s: %s@." code
          (Option.value ~default:"" (Json.str_member "detail" resp));
        if code = "deadline" then 6 else if code = "internal" then 2 else 1
    | _ ->
        (* ok / degraded / status — the response is on stdout either way *)
        let run_failed =
          match Json.member "run" resp with
          | Some run ->
              Json.str_member "trap" run <> None
              || Json.str_member "error" run <> None
          | None -> false
        in
        if run_failed then 2
        else if Json.int_member "code" resp = Some 4 then 4
        else 0
  in
  (* Warm every (benchmark × scheme) cell, then wait for the service's
     background upgrade queue to drain: afterwards the whole matrix is
     served "tier":"optimized" straight from cache. Polls the status op
     — bg_pending/bg_inflight are the server lane, upgrades.pending the
     service's in-flight set; all three at zero means no upgrade is
     queued, running, or reserved. *)
  let run_prewarm ~socket ~config ~policy ~seed ~recv_timeout_s ~deadline
      ~max_wait_ms ~stats_json =
    let budget_s = float_of_int (Option.value ~default:120_000 max_wait_ms) /. 1000.0 in
    let t0 = Mclock.counter () in
    let failures = ref 0 in
    let cells =
      List.concat_map
        (fun b -> List.map (fun s -> (b.B.name, s)) Config.all_schemes)
        B.all
    in
    List.iter
      (fun (name, scheme) ->
        let sname = Config.scheme_name scheme in
        let req =
          Json.Obj
            ([
               ("id", Json.Str (Printf.sprintf "prewarm-%s-%s" name sname));
               ("op", Json.Str "compile");
               ("benchmark", Json.Str name);
               ("scheme", Json.Str sname);
               ("kind", Json.Str (Config.kind_name config.Config.kind));
               ("impl", Json.Str (impl_wire config.Config.impl));
               ("verify", Json.Bool config.Config.verify);
               ("oracle", Json.Bool config.Config.oracle);
               ("tier", Json.Str "auto");
             ]
            @ deadline)
        in
        match Client.request_retry ~policy ?recv_timeout_s ~seed socket req with
        | Ok resp ->
            if Json.str_member "status" resp = Some "error" then begin
              incr failures;
              Fmt.epr "nascentc: prewarm %s/%s: %s@." name sname
                (Option.value ~default:"" (Json.str_member "detail" resp))
            end
        | Error msg ->
            incr failures;
            Fmt.epr "nascentc: prewarm %s/%s: %s@." name sname msg)
      cells;
    let status_req =
      Json.Obj [ ("id", Json.Str "prewarm"); ("op", Json.Str "status") ]
    in
    let rec poll () =
      match Client.request_retry ~policy ?recv_timeout_s ~seed socket status_req with
      | Error msg ->
          Fmt.epr "nascentc: prewarm status: %s@." msg;
          7
      | Ok resp ->
          let geti name = Option.value ~default:0 (Json.int_member name resp) in
          let upgrades_pending =
            match Json.member "upgrades" resp with
            | Some o -> Option.value ~default:0 (Json.int_member "pending" o)
            | None -> 0
          in
          if geti "bg_pending" = 0 && geti "bg_inflight" = 0 && upgrades_pending = 0
          then begin
            Fmt.pr "%s@." (Json.to_string resp);
            (match stats_json with
            | None -> ()
            | Some path -> (
                try Guard.write_atomic ~path (Json.to_string resp ^ "\n")
                with Sys_error msg -> Fmt.epr "nascentc: --stats-json: %s@." msg));
            Fmt.epr "nascentc: prewarm: %d cell(s), %d failure(s), drained in %.1fs@."
              (List.length cells) !failures (Mclock.elapsed_s t0);
            if !failures > 0 then 4 else 0
          end
          else if Mclock.elapsed_s t0 > budget_s then begin
            Fmt.epr "nascentc: prewarm: upgrades still pending after %.1fs@."
              budget_s;
            6
          end
          else begin
            Unix.sleepf 0.1;
            poll ()
          end
    in
    poll ()
  in
  let run file socket status burn prewarm tier config want_run deadline_ms
      retries seed max_wait_ms recv_timeout_ms stats_json =
    let recv_timeout_s =
      Option.map (fun ms -> float_of_int (max 1 ms) /. 1000.0) recv_timeout_ms
    in
    if prewarm then
      let policy = { Retry.default with Retry.max_attempts = max 1 retries } in
      let deadline =
        match deadline_ms with
        | None -> []
        | Some ms -> [ ("deadline_ms", Json.Int ms) ]
      in
      run_prewarm ~socket ~config ~policy ~seed ~recv_timeout_s ~deadline
        ~max_wait_ms ~stats_json
    else
    let req_fields =
      if status then Some [ ("op", Json.Str "status") ]
      else if burn then Some [ ("op", Json.Str "burn") ]
      else
        match file with
        | None ->
            Fmt.epr "nascentc: client needs FILE, --status or --burn@.";
            None
        | Some f ->
            let program =
              if Sys.file_exists f then ("source", Json.Str (read_file f))
              else
                match B.find f with
                | Some _ -> ("benchmark", Json.Str f)
                | None ->
                    Fmt.epr "nascentc: no such file or built-in benchmark: %s@." f;
                    exit 1
            in
            Some
              ([
                 ("op", Json.Str "compile");
                 program;
                 ("scheme", Json.Str (Config.scheme_name config.Config.scheme));
                 ("kind", Json.Str (Config.kind_name config.Config.kind));
                 ("impl", Json.Str (impl_wire config.Config.impl));
                 ("verify", Json.Bool config.Config.verify);
                 ("oracle", Json.Bool config.Config.oracle);
                 ("run", Json.Bool want_run);
               ]
              @ (match tier with
                | None -> []
                | Some t -> [ ("tier", Json.Str t) ])
              @
              match config.Config.fault with
              | None -> []
              | Some spec -> [ ("fault", Json.Str (Ir.Mutate.spec_name spec)) ])
    in
    match req_fields with
    | None -> 1
    | Some fields ->
        let deadline =
          match deadline_ms with
          | None -> []
          | Some ms -> [ ("deadline_ms", Json.Int ms) ]
        in
        let req = Json.Obj ((("id", Json.Str "cli") :: fields) @ deadline) in
        let policy = { Retry.default with Retry.max_attempts = max 1 retries } in
        let max_elapsed_s =
          Option.map (fun ms -> float_of_int (max 0 ms) /. 1000.0) max_wait_ms
        in
        (match
           Client.request_retry ~policy ?max_elapsed_s ?recv_timeout_s ~seed
             socket req
         with
        | Ok resp ->
            Fmt.pr "%s@." (Json.to_string resp);
            (match stats_json with
            | None -> ()
            | Some path -> (
                try Guard.write_atomic ~path (Json.to_string resp ^ "\n")
                with Sys_error msg -> Fmt.epr "nascentc: --stats-json: %s@." msg));
            exit_of_response resp
        | Error msg ->
            Fmt.epr "nascentc: %s@." msg;
            7)
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ file_opt_arg $ socket_arg $ status_arg $ burn_arg
      $ prewarm_arg $ tier_arg $ config_term $ run_flag_arg $ deadline_arg
      $ retries_arg $ seed_arg $ max_wait_arg $ recv_timeout_arg
      $ client_stats_arg)

let cmd_list =
  let doc = "List the built-in benchmark programs." in
  let run () =
    List.iter
      (fun b -> Fmt.pr "%-10s %-8s %s@." b.B.name b.B.bsuite b.B.description)
      B.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  install_signal_exit ();
  let doc = "range-check optimizer for MiniF (Kolte & Wolfe, PLDI 1995)" in
  let info = Cmd.info "nascentc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ cmd_check; cmd_dump; cmd_run; cmd_stats; cmd_verify; cmd_list; cmd_client ]))

(* nascentc — command-line driver for the MiniF range-check optimizer.

   Subcommands:
     check FILE        parse and type-check, print diagnostics
     dump FILE         lower (and optionally optimize) then print the IR
     run FILE          execute with the instrumented interpreter
     stats FILE        compare all placement schemes on one program
     bench NAME        run a built-in benchmark program by name
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module Frontend = Nascent_frontend.Frontend
module B = Nascent_benchmarks.Suite
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source path =
  if Sys.file_exists path then read_file path
  else
    match B.find path with
    | Some b -> b.B.source
    | None ->
        Fmt.epr "nascentc: no such file or built-in benchmark: %s@." path;
        exit 1

(* Frontend and lowering failures raise; report them as diagnostics
   rather than letting cmdliner dump a backtrace. *)
let with_errors f =
  try f () with
  | Failure msg | Ir.Lower.Lower_error msg ->
      Fmt.epr "nascentc: %s@." msg;
      1

(* --- common arguments ------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"MiniF source file, or the name of a built-in benchmark (vortex, arc2d, ...).")

let scheme_arg =
  let parse s =
    match Config.scheme_of_name s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %s" s))
  in
  let print ppf s = Fmt.string ppf (Config.scheme_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.LLS
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:"Placement scheme: NI, CS, LNI, SE, LI, LLS, ALL or MCM.")

let kind_arg =
  let parse = function
    | "prx" | "PRX" -> Ok Config.PRX
    | "inx" | "INX" -> Ok Config.INX
    | s -> Error (`Msg (Printf.sprintf "unknown check kind %s" s))
  in
  let print ppf k = Fmt.string ppf (Config.kind_name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.PRX
    & info [ "k"; "kind" ] ~docv:"KIND"
        ~doc:"Check construction: PRX (program expressions) or INX (induction expressions).")

let impl_arg =
  let parse = function
    | "all" -> Ok Universe.All_implications
    | "none" -> Ok Universe.No_implications
    | "cross" -> Ok Universe.Cross_family_only
    | s -> Error (`Msg (Printf.sprintf "unknown implication mode %s" s))
  in
  let print ppf m = Fmt.string ppf (Universe.mode_name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Universe.All_implications
    & info [ "i"; "implications" ] ~docv:"MODE"
        ~doc:"Check implication mode: all, cross (cross-family only) or none.")

let naive_arg =
  Arg.(value & flag & info [ "naive" ] ~doc:"Skip optimization (naive checking).")

let fuel_arg =
  Arg.(
    value
    & opt int Run.default_fuel
    & info [ "fuel" ] ~docv:"N" ~doc:"Interpreter step budget.")

let config_term =
  Term.(
    const (fun scheme kind impl -> Config.make ~scheme ~kind ~impl ())
    $ scheme_arg $ kind_arg $ impl_arg)

(* --- commands ---------------------------------------------------------- *)

let cmd_check =
  let doc = "Parse and type-check a MiniF program." in
  let run file =
    with_errors @@ fun () ->
    match Frontend.analyze (load_source file) with
    | Ok (prog, _) ->
        Fmt.pr "%s: OK (%d unit(s))@." file (List.length prog.Nascent_frontend.Ast.units);
        0
    | Error e ->
        Fmt.epr "%a@." Frontend.pp_error e;
        1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

let optimize_source src config ~naive =
  let ir = Ir.Lower.of_source src in
  if naive then (ir, None)
  else
    let opt, stats = Core.Optimizer.optimize ~config ir in
    (opt, Some stats)

let cmd_dump =
  let doc = "Lower (and optimize) a program, then print its IR." in
  let run file config naive =
    with_errors @@ fun () ->
    let prog, stats = optimize_source (load_source file) config ~naive in
    Option.iter (Fmt.pr "! %a@.@." Core.Optimizer.pp_stats) stats;
    Fmt.pr "%s@." (Ir.Printer.program_to_string prog);
    0
  in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run $ file_arg $ config_term $ naive_arg)

let cmd_run =
  let doc = "Execute a program under the instrumented interpreter." in
  let run file config naive fuel =
    with_errors @@ fun () ->
    let prog, _ = optimize_source (load_source file) config ~naive in
    let o = Run.run ~fuel prog in
    Fmt.pr "%a@." Run.pp_outcome o;
    if o.Run.trap <> None || o.Run.error <> None then 2 else 0
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ config_term $ naive_arg $ fuel_arg)

let cmd_stats =
  let doc = "Compare every placement scheme on one program." in
  let run file kind =
    with_errors @@ fun () ->
    let src = load_source file in
    let ir = Ir.Lower.of_source src in
    let o0 = Run.run ir in
    Fmt.pr "naive: %d dynamic checks, %d instruction units@." o0.Run.checks o0.Run.instrs;
    Fmt.pr "%-6s %12s %12s %9s@." "scheme" "checks" "%eliminated" "time(ms)";
    List.iter
      (fun scheme ->
        let config = Config.make ~scheme ~kind () in
        let opt, stats = Core.Optimizer.optimize ~config ir in
        let o = Run.run opt in
        Fmt.pr "%-6s %12d %11.2f%% %9.2f@." (Config.scheme_name scheme) o.Run.checks
          (100.0
          *. float_of_int (o0.Run.checks - o.Run.checks)
          /. float_of_int (max 1 o0.Run.checks))
          (1000.0 *. stats.Core.Optimizer.elapsed_s))
      Config.extended_schemes;
    0
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ file_arg $ kind_arg)

let cmd_list =
  let doc = "List the built-in benchmark programs." in
  let run () =
    List.iter
      (fun b -> Fmt.pr "%-10s %-8s %s@." b.B.name b.B.bsuite b.B.description)
      B.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "range-check optimizer for MiniF (Kolte & Wolfe, PLDI 1995)" in
  let info = Cmd.info "nascentc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ cmd_check; cmd_dump; cmd_run; cmd_stats; cmd_list ]))

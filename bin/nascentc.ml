(* nascentc — command-line driver for the MiniF range-check optimizer.

   Subcommands:
     check FILE        parse and type-check, print diagnostics
     dump FILE         lower (and optionally optimize) then print the IR
     run FILE          execute with the instrumented interpreter
     stats FILE        compare all placement schemes on one program
     verify [FILE]     IR invariant verification across the config matrix
     bench NAME        run a built-in benchmark program by name

   The optimizing commands accept --verify BOOL (IR verification
   between passes, default on), --trace (per-pass logging) and
   --stats-json FILE (per-pass timing/counter records as JSON).
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module Frontend = Nascent_frontend.Frontend
module B = Nascent_benchmarks.Suite
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source path =
  if Sys.file_exists path then read_file path
  else
    match B.find path with
    | Some b -> b.B.source
    | None ->
        Fmt.epr "nascentc: no such file or built-in benchmark: %s@." path;
        exit 1

(* Frontend and lowering failures raise; report them as diagnostics
   rather than letting cmdliner dump a backtrace. A verifier violation
   is a distinct exit code: the input was fine, a pass broke the IR. *)
let with_errors f =
  try f () with
  | Failure msg | Ir.Lower.Lower_error msg ->
      Fmt.epr "nascentc: %s@." msg;
      1
  | Ir.Verify.Invalid_ir msg ->
      Fmt.epr "nascentc: %s@." msg;
      3

(* --- common arguments ------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"MiniF source file, or the name of a built-in benchmark (vortex, arc2d, ...).")

let scheme_arg =
  let parse s =
    match Config.scheme_of_name s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %s" s))
  in
  let print ppf s = Fmt.string ppf (Config.scheme_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.LLS
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:"Placement scheme: NI, CS, LNI, SE, LI, LLS, ALL or MCM.")

let kind_arg =
  let parse = function
    | "prx" | "PRX" -> Ok Config.PRX
    | "inx" | "INX" -> Ok Config.INX
    | s -> Error (`Msg (Printf.sprintf "unknown check kind %s" s))
  in
  let print ppf k = Fmt.string ppf (Config.kind_name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.PRX
    & info [ "k"; "kind" ] ~docv:"KIND"
        ~doc:"Check construction: PRX (program expressions) or INX (induction expressions).")

let impl_arg =
  let parse = function
    | "all" -> Ok Universe.All_implications
    | "none" -> Ok Universe.No_implications
    | "cross" -> Ok Universe.Cross_family_only
    | s -> Error (`Msg (Printf.sprintf "unknown implication mode %s" s))
  in
  let print ppf m = Fmt.string ppf (Universe.mode_name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Universe.All_implications
    & info [ "i"; "implications" ] ~docv:"MODE"
        ~doc:"Check implication mode: all, cross (cross-family only) or none.")

let verify_arg =
  Arg.(
    value
    & opt bool true
    & info [ "verify" ] ~docv:"BOOL"
        ~doc:"Run the IR invariant verifier between optimizer passes (default true).")

let trace_arg =
  Arg.(
    value
    & flag
    & info [ "trace" ]
        ~doc:"Trace optimizer passes (per-pass timing, check counts, verification) to stderr.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan independent (program × scheme × kind × implication) cells over \
           $(docv) domains; 1 forces the serial path. Defaults to $(b,NASCENT_JOBS) \
           or the host's recommended domain count. Results are deterministic \
           regardless of $(docv).")

let setup_jobs jobs = Option.iter Nascent_support.Pool.set_default_jobs jobs

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write optimizer statistics, including the per-pass breakdown, to $(docv) as JSON.")

let setup_trace trace =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Core.Optimizer.log_src (Some Logs.Debug)
  end

let write_json path json =
  Out_channel.with_open_text path (fun oc -> output_string oc json)

let naive_arg =
  Arg.(value & flag & info [ "naive" ] ~doc:"Skip optimization (naive checking).")

let fuel_arg =
  Arg.(
    value
    & opt int Run.default_fuel
    & info [ "fuel" ] ~docv:"N" ~doc:"Interpreter step budget.")

let config_term =
  Term.(
    const (fun scheme kind impl verify -> Config.make ~scheme ~kind ~impl ~verify ())
    $ scheme_arg $ kind_arg $ impl_arg $ verify_arg)

(* --- commands ---------------------------------------------------------- *)

let cmd_check =
  let doc = "Parse and type-check a MiniF program." in
  let run file =
    with_errors @@ fun () ->
    match Frontend.analyze (load_source file) with
    | Ok (prog, _) ->
        Fmt.pr "%s: OK (%d unit(s))@." file (List.length prog.Nascent_frontend.Ast.units);
        0
    | Error e ->
        Fmt.epr "%a@." Frontend.pp_error e;
        1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

let optimize_source src config ~naive =
  let ir = Ir.Lower.of_source src in
  if naive then (ir, None)
  else
    let opt, stats = Core.Optimizer.optimize ~config ir in
    (opt, Some stats)

let cmd_dump =
  let doc = "Lower (and optimize) a program, then print its IR." in
  let run file config naive trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let prog, stats = optimize_source (load_source file) config ~naive in
    Option.iter (Fmt.pr "! %a@.@." Core.Optimizer.pp_stats) stats;
    (match (stats, json) with
    | Some st, Some path -> write_json path (Core.Optimizer.stats_to_json st)
    | _ -> ());
    Fmt.pr "%s@." (Ir.Printer.program_to_string prog);
    0
  in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(const run $ file_arg $ config_term $ naive_arg $ trace_arg $ stats_json_arg)

let cmd_run =
  let doc = "Execute a program under the instrumented interpreter." in
  let run file config naive fuel trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let prog, stats = optimize_source (load_source file) config ~naive in
    (match (stats, json) with
    | Some st, Some path -> write_json path (Core.Optimizer.stats_to_json st)
    | _ -> ());
    let o = Run.run ~fuel prog in
    Fmt.pr "%a@." Run.pp_outcome o;
    if o.Run.trap <> None || o.Run.error <> None then 2 else 0
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_arg $ config_term $ naive_arg $ fuel_arg $ trace_arg
      $ stats_json_arg)

let cmd_stats =
  let doc = "Compare every placement scheme on one program." in
  let run file kind verify trace json =
    with_errors @@ fun () ->
    setup_trace trace;
    let src = load_source file in
    let ir = Ir.Lower.of_source src in
    let o0 = Run.run ir in
    Fmt.pr "naive: %d dynamic checks, %d instruction units@." o0.Run.checks o0.Run.instrs;
    Fmt.pr "%-6s %12s %12s %9s@." "scheme" "checks" "%eliminated" "time(ms)";
    let all_stats =
      List.map
        (fun scheme ->
          let config = Config.make ~scheme ~kind ~verify () in
          let opt, stats = Core.Optimizer.optimize ~config ir in
          let o = Run.run opt in
          Fmt.pr "%-6s %12d %11.2f%% %9.2f@." (Config.scheme_name scheme) o.Run.checks
            (100.0
            *. float_of_int (o0.Run.checks - o.Run.checks)
            /. float_of_int (max 1 o0.Run.checks))
            (1000.0 *. stats.Core.Optimizer.elapsed_s);
          stats)
        Config.extended_schemes
    in
    Option.iter
      (fun path ->
        write_json path
          ("[\n"
          ^ String.concat ",\n" (List.map Core.Optimizer.stats_to_json all_stats)
          ^ "]\n"))
      json;
    0
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ file_arg $ kind_arg $ verify_arg $ trace_arg $ stats_json_arg)

let cmd_verify =
  let doc =
    "Verify IR invariants between optimizer passes across the full configuration \
     matrix (every scheme, check kind and implication mode), on one program or on \
     all built-in benchmarks."
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "MiniF source file or built-in benchmark name; all built-in benchmarks \
             when omitted.")
  in
  let run file trace jobs =
    with_errors @@ fun () ->
    setup_trace trace;
    setup_jobs jobs;
    let targets =
      match file with
      | Some f -> [ (f, load_source f) ]
      | None -> List.map (fun b -> (b.B.name, b.B.source)) B.all
    in
    let impls =
      [ Universe.All_implications; Universe.Cross_family_only; Universe.No_implications ]
    in
    let failures = ref 0 in
    let lowered =
      List.map
        (fun (name, src) ->
          let ir = Ir.Lower.of_source src in
          (match Ir.Verify.program ir with
          | [] -> ()
          | vs ->
              incr failures;
              List.iter
                (fun v -> Fmt.epr "%s (lowered): %a@." name Ir.Verify.pp_violation v)
                vs);
          (name, ir))
        targets
    in
    (* The matrix cells are independent — each optimizes its own copy —
       so they fan out over the domain pool; failures are collected and
       reported afterwards in deterministic matrix order. *)
    let cells =
      List.concat_map
        (fun (name, ir) ->
          List.concat_map
            (fun scheme ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun impl ->
                      (name, ir, Config.make ~scheme ~kind ~impl ~verify:true ()))
                    impls)
                [ Config.PRX; Config.INX ])
            Config.extended_schemes)
        lowered
    in
    let outcomes =
      Nascent_support.Pool.parallel_map
        (Nascent_support.Pool.global ())
        (fun (name, ir, config) ->
          match Core.Optimizer.optimize ~config ir with
          | _ -> None
          | exception Ir.Verify.Invalid_ir msg -> Some (name, config, msg))
        cells
    in
    List.iter
      (function
        | None -> ()
        | Some (name, config, msg) ->
            incr failures;
            Fmt.epr "%s under %a:@.%s@." name Config.pp config msg)
      outcomes;
    if !failures = 0 then begin
      Fmt.pr "verified %d program(s) under %d configuration(s) (jobs=%d): no violations@."
        (List.length targets) (List.length cells)
        (Nascent_support.Pool.default_jobs ());
      0
    end
    else begin
      Fmt.epr "%d verification failure(s)@." !failures;
      1
    end
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ file_opt_arg $ trace_arg $ jobs_arg)

let cmd_list =
  let doc = "List the built-in benchmark programs." in
  let run () =
    List.iter
      (fun b -> Fmt.pr "%-10s %-8s %s@." b.B.name b.B.bsuite b.B.description)
      B.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "range-check optimizer for MiniF (Kolte & Wolfe, PLDI 1995)" in
  let info = Cmd.info "nascentc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ cmd_check; cmd_dump; cmd_run; cmd_stats; cmd_verify; cmd_list ]))

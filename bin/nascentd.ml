(* nascentd — the MiniF range-check optimizer as a long-running
   service.

   Listens on a Unix-domain socket for newline-delimited JSON requests
   (see Nascent_support.Server for the envelope and
   Nascent_harness.Service for the operations), fanning compiles over
   worker domains behind a bounded admission queue, per-request
   wall-clock deadlines, a per-scheme circuit breaker and a
   content-addressed result cache.

   Crash durability (PR 5): with --journal-dir every admitted request
   is written to an fsync'd journal before a worker touches it and
   replayed on the next start, so kill -9 loses zero admitted work;
   breaker state and service counters are snapshotted to --state-file
   and restored; --supervise forks the serving process and restarts it
   on abnormal exit with capped backoff; NASCENT_MEM_BUDGET /
   --mem-budget-mb arms the Guard memory watchdog (shed admissions
   under pressure, abort the offending request over budget). The
   journal directory and any shared NASCENT_CACHE_DIR are protected by
   advisory locks: a second daemon on the same directories refuses to
   start with a clear error.

   SIGTERM / SIGINT request a graceful drain: the listener closes, new
   requests are shed with a retryable "shutting-down" error, every
   already-admitted request is finished and answered, then the daemon
   exits 0 (the supervisor passes both signals through to the serving
   child). Talk to it with `nascentc client --connect SOCK ...`. *)

module Server = Nascent_support.Server
module Service = Nascent_harness.Service
module Journal = Nascent_support.Journal
module Guard = Nascent_support.Guard
module Memo = Nascent_support.Memo
module Retry = Nascent_support.Retry
module Mclock = Nascent_support.Mclock
module Frame = Nascent_support.Frame
module Router = Nascent_support.Router
module Netfault = Nascent_support.Netfault
open Cmdliner

let default_socket () =
  match Sys.getenv_opt "NASCENT_SOCKET" with
  | Some s when String.trim s <> "" -> s
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "nascentd.sock"

let default_queue_depth () =
  match Sys.getenv_opt "NASCENT_QUEUE_DEPTH" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 64)
  | None -> 64

let default_journal_dir () =
  match Sys.getenv_opt "NASCENT_JOURNAL_DIR" with
  | Some s when String.trim s <> "" -> Some s
  | _ -> None

let socket_arg =
  Arg.(
    value
    & opt string (default_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path to listen on (a stale socket file is \
           replaced). Defaults to $(b,NASCENT_SOCKET) or \
           $(b,TMPDIR/nascentd.sock).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"[HOST:]PORT"
        ~doc:
          "Additional TCP listener speaking the NF1 framed protocol with \
           per-connection pipelining. $(docv) is a port, or HOST:PORT to \
           bind one interface (default: every interface); port 0 picks an \
           ephemeral port, echoed as the \"tcp_port\" status field. The \
           Unix socket keeps speaking line-delimited JSON.")

let idle_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "idle-timeout-s" ] ~docv:"S"
        ~doc:
          "Reap a connected-but-silent client (no partial input, no \
           response owed) after $(docv) seconds without a byte, on both \
           transports; counted as \"idle_closed\". Unset disables the \
           reaper.")

let io_deadline_arg =
  Arg.(
    value
    & opt float 10.0
    & info [ "io-deadline-s" ] ~docv:"S"
        ~doc:
          "Slow-loris bound: a frame or request line left incomplete for \
           $(docv) seconds closes its connection (counted \"io_timeouts\"); \
           also the kernel send-timeout for response writes. $(docv) <= 0 \
           disables both.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains serving compile requests. Defaults to \
           $(b,NASCENT_JOBS) or 2.")

let queue_arg =
  Arg.(
    value
    & opt int (default_queue_depth ())
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission bound: requests beyond $(docv) queued are shed with a \
           retryable \"overloaded\" error instead of piling up. Defaults to \
           $(b,NASCENT_QUEUE_DEPTH) or 64.")

let deadline_arg =
  Arg.(
    value
    & opt int 30_000
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request wall-clock budget, measured from admission \
           (queue wait counts); a request exceeding it is answered with a \
           structured \"deadline\" error and its worker freed. Requests may \
           override with their own \"deadline_ms\" field. $(docv) <= 0 \
           disables the default.")

let fuel_arg =
  Arg.(
    value
    & opt int 50_000_000
    & info [ "request-fuel" ] ~docv:"N"
        ~doc:
          "Per-request optimizer fuel budget (deterministic backstop under \
           the wall-clock deadline). $(docv) <= 0 disables it.")

let threshold_arg =
  Arg.(
    value
    & opt int 3
    & info [ "breaker-threshold" ] ~docv:"K"
        ~doc:
          "Trip a scheme's circuit breaker after $(docv) consecutive \
           incident-bearing compiles; tripped schemes are served at the \
           always-safe NI floor until a cooldown probe succeeds.")

let cooldown_arg =
  Arg.(
    value
    & opt int 2_000
    & info [ "breaker-cooldown-ms" ] ~docv:"MS"
        ~doc:"Cooldown before a tripped breaker lets one probe through.")

let journal_arg =
  Arg.(
    value
    & opt (some string) (default_journal_dir ())
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:
          "Write-ahead journal directory: every admitted request is recorded \
           (fsync'd) before compiling and replayed on the next start, so \
           $(b,kill -9) loses zero admitted work. The directory is created \
           and advisory-locked (one daemon per journal). Defaults to \
           $(b,NASCENT_JOURNAL_DIR); unset disables journaling.")

let state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-file" ] ~docv:"FILE"
        ~doc:
          "Snapshot file for breaker states and service counters, written \
           atomically after every compile and restored on start (a tripped \
           scheme stays routed to the NI floor across a restart). Defaults \
           to $(b,DIR/state.json) when $(b,--journal-dir) is set, otherwise \
           off.")

let mem_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget-mb" ] ~docv:"MB"
        ~doc:
          "Major-heap budget for the memory watchdog: past 80% new \
           admissions are shed as retryable \"overloaded\", past 100% the \
           request that crossed it is aborted with a recorded \
           \"mem-pressure\" incident instead of letting the OS OOM-kill the \
           daemon. Defaults to $(b,NASCENT_MEM_BUDGET) (MB); $(docv) <= 0 \
           or unset disables the watchdog.")

let supervise_arg =
  Arg.(
    value
    & flag
    & info [ "supervise" ]
        ~doc:
          "Fork the serving process and restart it on abnormal exit with \
           capped exponential backoff (SIGTERM/SIGINT are passed through \
           for a clean drain; a clean exit ends supervision). Combined with \
           $(b,--journal-dir), a crashed server's admitted work is replayed \
           by its replacement.")

let trace_arg =
  Arg.(
    value
    & flag
    & info [ "trace" ] ~doc:"Log server lifecycle events to stderr.")

let router_arg =
  Arg.(
    value
    & flag
    & info [ "router" ]
        ~doc:
          "Serve as a shard router instead of compiling: requests are \
           forwarded to the $(b,--shard) daemons by a consistent hash of \
           the fields that determine the memo cache key, shards are \
           health-checked (status probes; consecutive failures eject a \
           shard until a probe succeeds again) and idempotent requests \
           fail over to the next shard on the ring. Reuses \
           $(b,--breaker-threshold) / $(b,--breaker-cooldown-ms) for the \
           health breaker.")

let shard_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "shard" ] ~docv:"[NAME=]ADDR"
        ~doc:
          "A shard daemon behind $(b,--router) (repeatable). $(i,ADDR) is \
           a Unix socket path or HOST:PORT; $(i,NAME) defaults to the \
           address and is the shard's stable ring identity — keep names \
           fixed across restarts so the hash ring (and every shard's \
           cache) stays put.")

let shard_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-name" ] ~docv:"NAME"
        ~doc:
          "This daemon's identity behind a shard router, echoed as the \
           \"shard\" status field (purely observational: one status sweep \
           tells which shard answered).")

let probe_interval_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "probe-interval-s" ] ~docv:"S"
        ~doc:"Router health-probe cadence per shard.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"CLASS[:SEED]"
        ~doc:
          "Run as a deterministic chaos proxy instead of serving: listen \
           on $(b,--socket) (or $(b,--tcp)) and forward every connection \
           to $(b,--upstream), injecting $(docv) faults on every third \
           connection (seeded, reproducible). Classes: torn-frame, \
           truncated-write, delayed-bytes, reset-mid-exchange, \
           garbage-frame, oversized-frame, stalled-reader.")

let upstream_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "upstream" ] ~docv:"ADDR"
        ~doc:
          "The real daemon behind $(b,--chaos): a Unix socket path or \
           HOST:PORT. Keep the proxy's listen transport the same as the \
           upstream's (frames on TCP, lines on a Unix socket), since the \
           proxy forwards raw bytes.")

(* "PORT" or "HOST:PORT" for the TCP listener. *)
let parse_tcp_listen s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p < 65536 -> Ok ("", p)
  | _ -> (
      match String.rindex_opt s ':' with
      | None -> Error (Printf.sprintf "bad --tcp %S (PORT or HOST:PORT)" s)
      | Some i -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Ok (host, p)
          | _ -> Error (Printf.sprintf "bad --tcp port %S" port)))

(* "NAME=ADDR" or bare "ADDR" for --shard. *)
let parse_shard s =
  let name, addr =
    match String.index_opt s '=' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, s)
  in
  { Router.name; address = Server.Client.parse_address addr }

let network_budgets ~idle_timeout_s ~io_deadline_s =
  ( idle_timeout_s,
    if io_deadline_s <= 0.0 then None else Some io_deadline_s )

(* The serving process proper: lock shared directories, open the
   journal, arm the watchdog, restore state, serve. [restarts] is the
   supervisor's restart count, echoed in the status op. *)
let serve ~restarts socket tcp jobs queue_depth deadline_ms request_fuel
    threshold cooldown_ms trace journal_dir state_file mem_budget_mb
    idle_timeout_s io_deadline_s shard_name =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let jobs =
    match jobs with
    | Some n -> max 1 n
    | None -> (
        match Sys.getenv_opt "NASCENT_JOBS" with
        | Some s -> ( match int_of_string_opt (String.trim s) with
                      | Some n when n > 0 -> n
                      | _ -> 2)
        | None -> 2)
  in
  let mem_bytes =
    match mem_budget_mb with
    | Some mb when mb > 0 -> Some (mb * 1024 * 1024)
    | Some _ -> None
    | None -> Guard.mem_budget_from_env ()
  in
  Guard.set_mem_budget ~bytes:mem_bytes ();
  (* One daemon per shared disk cache: quarantine eviction and entry
     rewrites must not race another process. *)
  let cache_lock =
    match Memo.env_disk_dir () with
    | None -> Ok None
    | Some dir -> (
        match Guard.lock_dir ~dir with
        | Ok l -> Ok (Some l)
        | Error e -> Error (Printf.sprintf "cache %s" e))
  in
  match cache_lock with
  | Error e ->
      Fmt.epr "nascentd: %s@." e;
      1
  | Ok _cache_lock -> (
      let journal =
        match journal_dir with
        | None -> Ok None
        | Some dir -> (
            match Journal.openj ~dir () with
            | Ok j -> Ok (Some j)
            | Error e -> Error e)
      in
      match journal with
      | Error e ->
          Fmt.epr "nascentd: %s@." e;
          1
      | Ok journal ->
          let state_path =
            match (state_file, journal_dir) with
            | Some p, _ -> Some p
            | None, Some dir -> Some (Filename.concat dir "state.json")
            | None, None -> None
          in
          let idle_timeout_s, io_deadline_s =
            network_budgets ~idle_timeout_s ~io_deadline_s
          in
          let cfg =
            {
              Server.socket_path = socket;
              tcp;
              jobs;
              queue_depth = max 1 queue_depth;
              default_deadline_s =
                (if deadline_ms <= 0 then None
                 else Some (float_of_int deadline_ms /. 1000.0));
              request_fuel = (if request_fuel <= 0 then None else Some request_fuel);
              journal;
              restarts;
              idle_timeout_s;
              io_deadline_s;
              max_frame_bytes = Frame.default_max_payload;
            }
          in
          let service =
            Service.create ~breaker_threshold:(max 1 threshold)
              ~breaker_cooldown_s:(float_of_int (max 0 cooldown_ms) /. 1000.0)
              ?state_path ?shard_name ()
          in
          let server = Server.create cfg (Service.handler service) in
          (* Tiered compilation: a cold cache miss is answered from the
             instant NI floor while the requested scheme compiles on the
             server's background lane and hot-swaps into the cache.
             Wiring the lane here — and only here — keeps every
             embedded/test use of the service on the plain synchronous
             path; clients opt out per request with "tier":"sync". *)
          Service.set_upgrade_submit service (Server.submit_background server);
          (* Graceful drain on either termination signal: stop is
             lock-free and signal-safe; run returns once every admitted
             request is answered. *)
          let on_signal _ = Server.stop server in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          (* A client vanishing mid-response must not kill the daemon. *)
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          Fmt.epr
            "nascentd: listening on %s%s (jobs=%d queue=%d deadline=%s fuel=%s \
             journal=%s mem=%s restarts=%d)@."
            socket
            (match tcp with
            | None -> ""
            | Some (h, p) ->
                Fmt.str " + tcp %s:%d" (if h = "" then "*" else h) p)
            jobs cfg.Server.queue_depth
            (match cfg.Server.default_deadline_s with
            | None -> "none"
            | Some s -> Fmt.str "%gs" s)
            (match cfg.Server.request_fuel with
            | None -> "none"
            | Some f -> string_of_int f)
            (match journal_dir with None -> "off" | Some d -> d)
            (match mem_bytes with
            | None -> "off"
            | Some b -> Fmt.str "%dMB" (b / (1024 * 1024)))
            restarts;
          Server.run server;
          Fmt.epr "nascentd: drained, exiting@.";
          0)

(* Router mode: the same Server front (admission control, both
   transports, drain, inline status) with the Router's forwarding
   handler behind it instead of the compile service. No journal and no
   fuel — the router holds no state worth replaying (shards journal
   their own admitted work) and forwarding burns no optimizer fuel.
   Workers block on shard I/O, so the router defaults to more of them
   than a compile daemon would want. *)
let serve_router ~restarts socket tcp jobs queue_depth deadline_ms threshold
    cooldown_ms trace shard_specs probe_interval_s idle_timeout_s io_deadline_s
    =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  match shard_specs with
  | [] ->
      Fmt.epr "nascentd: --router needs at least one --shard@.";
      1
  | specs ->
      let shards = List.map parse_shard specs in
      let cooldown_s = float_of_int (max 0 cooldown_ms) /. 1000.0 in
      let router =
        Router.create ~threshold:(max 1 threshold) ~cooldown_s
          ~probe_interval_s:(max 0.05 probe_interval_s) ~shards ()
      in
      let idle_timeout_s, io_deadline_s =
        network_budgets ~idle_timeout_s ~io_deadline_s
      in
      let cfg =
        {
          Server.socket_path = socket;
          tcp;
          jobs = (match jobs with Some n -> max 1 n | None -> 8);
          queue_depth = max 1 queue_depth;
          default_deadline_s =
            (if deadline_ms <= 0 then None
             else Some (float_of_int deadline_ms /. 1000.0));
          request_fuel = None;
          journal = None;
          restarts;
          idle_timeout_s;
          io_deadline_s;
          max_frame_bytes = Frame.default_max_payload;
        }
      in
      let server = Server.create cfg (Router.handler router) in
      let on_signal _ = Server.stop server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Fmt.epr "nascentd[router]: listening on %s%s, %d shard%s (%s)@." socket
        (match tcp with
        | None -> ""
        | Some (h, p) -> Fmt.str " + tcp %s:%d" (if h = "" then "*" else h) p)
        (List.length shards)
        (if List.length shards = 1 then "" else "s")
        (String.concat ", " (List.map (fun s -> s.Router.name) shards));
      Router.start router;
      Server.run server;
      Router.stop router;
      Fmt.epr "nascentd[router]: drained, exiting@.";
      0

(* Chaos proxy mode: nascentd fronts itself with its own fault
   injector so the ci smoke and any manual soak drive the production
   client/server/router stack through the Netfault catalogue without
   test scaffolding. *)
let run_chaos socket tcp chaos_str upstream =
  match Netfault.parse chaos_str with
  | Error e ->
      Fmt.epr "nascentd: --chaos %s@." e;
      1
  | Ok spec -> (
      match upstream with
      | None ->
          Fmt.epr "nascentd: --chaos requires --upstream ADDR@.";
          1
      | Some up -> (
          let resolve host =
            if host = "" || host = "*" then Unix.inet_addr_loopback
            else
              try Unix.inet_addr_of_string host
              with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          let sockaddr_of = function
            | Server.Client.Uds p -> Unix.ADDR_UNIX p
            | Server.Client.Tcp (h, p) -> Unix.ADDR_INET (resolve h, p)
          in
          match
            let upstream_sa = sockaddr_of (Server.Client.parse_address up) in
            let listen =
              match tcp with
              | Some (h, p) ->
                  Unix.ADDR_INET
                    ((if h = "" || h = "*" then Unix.inet_addr_any
                      else resolve h),
                     p)
              | None -> Unix.ADDR_UNIX socket
            in
            (upstream_sa, listen)
          with
          | exception e ->
              Fmt.epr "nascentd: --chaos setup: %s@." (Printexc.to_string e);
              1
          | upstream_sa, listen ->
              let stopping = ref false in
              let on_signal _ = stopping := true in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
              Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              Fmt.epr "nascentd[chaos]: %s proxying %s -> %s@."
                (Netfault.to_string spec)
                (match listen with
                | Unix.ADDR_UNIX p -> p
                | Unix.ADDR_INET (h, p) ->
                    Fmt.str "%s:%d" (Unix.string_of_inet_addr h) p)
                up;
              Netfault.proxy ~listen ~upstream:upstream_sa
                ~stop:(fun () -> !stopping)
                spec;
              Fmt.epr "nascentd[chaos]: stopped@.";
              0))

(* The supervisor: fork before any domain or thread exists, wait,
   restart on abnormal exit. Backoff is Retry's capped exponential
   schedule; a child that stayed up for a healthy stretch resets the
   attempt counter, so a daemon that crashes once a day never waits
   long, while a crash loop backs off to the cap. *)
let supervisor_policy =
  {
    Retry.max_attempts = max_int;
    base_delay_s = 0.1;
    multiplier = 2.0;
    max_delay_s = 5.0;
    jitter = 0.1;
  }

let healthy_uptime_s = 10.0

let supervise serve_child =
  let draining = ref false in
  let child = ref None in
  let forward signal =
    match !child with
    | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
    | None -> ()
  in
  let on_signal signal _ =
    draining := true;
    forward signal
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (on_signal Sys.sigterm));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (on_signal Sys.sigint));
  let describe = function
    | Unix.WEXITED n -> Printf.sprintf "exit %d" n
    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
  in
  let rec loop ~restarts ~attempt =
    if !draining then 0
    else begin
      let born = Mclock.counter () in
      match Unix.fork () with
      | 0 -> exit (serve_child ~restarts)
      | pid ->
          child := Some pid;
          Fmt.epr "nascentd[supervisor]: serving pid %d (restarts=%d)@." pid restarts;
          (* A signal that landed between fork and the assignment above
             set [draining] but had no child to forward to. *)
          if !draining then forward Sys.sigterm;
          let rec wait_child () =
            match Unix.waitpid [] pid with
            | _, status -> status
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_child ()
          in
          let status = wait_child () in
          child := None;
          let uptime = Mclock.elapsed_s born in
          if status = Unix.WEXITED 0 then begin
            Fmt.epr "nascentd[supervisor]: clean exit, ending supervision@.";
            0
          end
          else if !draining then begin
            Fmt.epr "nascentd[supervisor]: child ended during drain (%s)@."
              (describe status);
            match status with Unix.WEXITED n -> n | _ -> 1
          end
          else begin
            let attempt = if uptime >= healthy_uptime_s then 1 else attempt + 1 in
            let delay = Retry.delay_s supervisor_policy ~seed:restarts ~attempt in
            Fmt.epr
              "nascentd[supervisor]: serving process died (%s) after %.1fs; \
               restarting in %.2fs@."
              (describe status) uptime delay;
            Unix.sleepf delay;
            loop ~restarts:(restarts + 1) ~attempt
          end
    end
  in
  loop ~restarts:0 ~attempt:0

let run_daemon socket tcp_str jobs queue_depth deadline_ms request_fuel
    threshold cooldown_ms trace journal_dir state_file mem_budget_mb
    supervise_flag idle_timeout_s io_deadline_s shard_name router_flag
    shard_specs probe_interval_s chaos upstream =
  let tcp =
    match tcp_str with
    | None -> Ok None
    | Some s -> ( match parse_tcp_listen s with
                  | Ok hp -> Ok (Some hp)
                  | Error e -> Error e)
  in
  match tcp with
  | Error e ->
      Fmt.epr "nascentd: %s@." e;
      1
  | Ok tcp -> (
      match chaos with
      | Some chaos_str -> run_chaos socket tcp chaos_str upstream
      | None ->
          let serve_child ~restarts =
            if router_flag then
              serve_router ~restarts socket tcp jobs queue_depth deadline_ms
                threshold cooldown_ms trace shard_specs probe_interval_s
                idle_timeout_s io_deadline_s
            else
              serve ~restarts socket tcp jobs queue_depth deadline_ms
                request_fuel threshold cooldown_ms trace journal_dir state_file
                mem_budget_mb idle_timeout_s io_deadline_s shard_name
          in
          if supervise_flag then supervise serve_child
          else serve_child ~restarts:0)

let () =
  let doc = "range-check compile service (Kolte & Wolfe, PLDI 1995)" in
  let info = Cmd.info "nascentd" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run_daemon $ socket_arg $ tcp_arg $ jobs_arg $ queue_arg
      $ deadline_arg $ fuel_arg $ threshold_arg $ cooldown_arg $ trace_arg
      $ journal_arg $ state_arg $ mem_arg $ supervise_arg $ idle_arg
      $ io_deadline_arg $ shard_name_arg $ router_arg $ shard_arg
      $ probe_interval_arg $ chaos_arg $ upstream_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))

(* nascentd — the MiniF range-check optimizer as a long-running
   service.

   Listens on a Unix-domain socket for newline-delimited JSON requests
   (see Nascent_support.Server for the envelope and
   Nascent_harness.Service for the operations), fanning compiles over
   worker domains behind a bounded admission queue, per-request
   wall-clock deadlines, a per-scheme circuit breaker and a
   content-addressed result cache.

   SIGTERM / SIGINT request a graceful drain: the listener closes, new
   requests are shed with a retryable "shutting-down" error, every
   already-admitted request is finished and answered, then the daemon
   exits 0. Talk to it with `nascentc client --connect SOCK ...`. *)

module Server = Nascent_support.Server
module Service = Nascent_harness.Service
open Cmdliner

let default_socket () =
  match Sys.getenv_opt "NASCENT_SOCKET" with
  | Some s when String.trim s <> "" -> s
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "nascentd.sock"

let default_queue_depth () =
  match Sys.getenv_opt "NASCENT_QUEUE_DEPTH" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 64)
  | None -> 64

let socket_arg =
  Arg.(
    value
    & opt string (default_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path to listen on (a stale socket file is \
           replaced). Defaults to $(b,NASCENT_SOCKET) or \
           $(b,TMPDIR/nascentd.sock).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains serving compile requests. Defaults to \
           $(b,NASCENT_JOBS) or 2.")

let queue_arg =
  Arg.(
    value
    & opt int (default_queue_depth ())
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission bound: requests beyond $(docv) queued are shed with a \
           retryable \"overloaded\" error instead of piling up. Defaults to \
           $(b,NASCENT_QUEUE_DEPTH) or 64.")

let deadline_arg =
  Arg.(
    value
    & opt int 30_000
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request wall-clock budget, measured from admission \
           (queue wait counts); a request exceeding it is answered with a \
           structured \"deadline\" error and its worker freed. Requests may \
           override with their own \"deadline_ms\" field. $(docv) <= 0 \
           disables the default.")

let fuel_arg =
  Arg.(
    value
    & opt int 50_000_000
    & info [ "request-fuel" ] ~docv:"N"
        ~doc:
          "Per-request optimizer fuel budget (deterministic backstop under \
           the wall-clock deadline). $(docv) <= 0 disables it.")

let threshold_arg =
  Arg.(
    value
    & opt int 3
    & info [ "breaker-threshold" ] ~docv:"K"
        ~doc:
          "Trip a scheme's circuit breaker after $(docv) consecutive \
           incident-bearing compiles; tripped schemes are served at the \
           always-safe NI floor until a cooldown probe succeeds.")

let cooldown_arg =
  Arg.(
    value
    & opt int 2_000
    & info [ "breaker-cooldown-ms" ] ~docv:"MS"
        ~doc:"Cooldown before a tripped breaker lets one probe through.")

let trace_arg =
  Arg.(
    value
    & flag
    & info [ "trace" ] ~doc:"Log server lifecycle events to stderr.")

let run_daemon socket jobs queue_depth deadline_ms request_fuel threshold
    cooldown_ms trace =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let jobs =
    match jobs with
    | Some n -> max 1 n
    | None -> (
        match Sys.getenv_opt "NASCENT_JOBS" with
        | Some s -> ( match int_of_string_opt (String.trim s) with
                      | Some n when n > 0 -> n
                      | _ -> 2)
        | None -> 2)
  in
  let cfg =
    {
      Server.socket_path = socket;
      jobs;
      queue_depth = max 1 queue_depth;
      default_deadline_s =
        (if deadline_ms <= 0 then None
         else Some (float_of_int deadline_ms /. 1000.0));
      request_fuel = (if request_fuel <= 0 then None else Some request_fuel);
    }
  in
  let service =
    Service.create ~breaker_threshold:(max 1 threshold)
      ~breaker_cooldown_s:(float_of_int (max 0 cooldown_ms) /. 1000.0)
      ()
  in
  let server = Server.create cfg (Service.handler service) in
  (* Graceful drain on either termination signal: stop is lock-free and
     signal-safe; run returns once every admitted request is answered. *)
  let on_signal _ = Server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* A client vanishing mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Fmt.epr "nascentd: listening on %s (jobs=%d queue=%d deadline=%s fuel=%s)@."
    socket jobs cfg.Server.queue_depth
    (match cfg.Server.default_deadline_s with
    | None -> "none"
    | Some s -> Fmt.str "%gs" s)
    (match cfg.Server.request_fuel with
    | None -> "none"
    | Some f -> string_of_int f);
  Server.run server;
  Fmt.epr "nascentd: drained, exiting@.";
  0

let () =
  let doc = "range-check compile service (Kolte & Wolfe, PLDI 1995)" in
  let info = Cmd.info "nascentd" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run_daemon $ socket_arg $ jobs_arg $ queue_arg $ deadline_arg
      $ fuel_arg $ threshold_arg $ cooldown_arg $ trace_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))

(* Property-based soundness fuzzing: random MiniF programs, every
   placement scheme.

   The invariants are the paper's behaviour-preservation contract
   (section 3): for every generated program and every configuration,
   the optimized program
   - traps iff the naive program traps,
   - errors iff the naive program errors,
   - prints the same values when neither happens,
   - never performs more dynamic checks,
   and optimization is idempotent in behaviour (a second round changes
   nothing observable).

   Programs are generated as source text over a fixed declaration pool,
   with subscripts biased towards—but not limited to—in-range values,
   so both trapping and clean executions are exercised. All loops are
   bounded by construction; a fuel limit is a backstop only. *)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module G = QCheck.Gen

(* --- generator -------------------------------------------------------- *)

let int_vars = [ "i"; "j"; "k"; "n"; "m" ]

(* (name, dimension spec, in-range index upper bound) *)
let arrays = [ ("a", "(1:10)", 10); ("b", "(0:19)", 19); ("c", "(1:6, 1:6)", 6) ]

let gen_var = G.oneofl int_vars

let rec gen_int_expr depth : string G.t =
  if depth = 0 then G.oneof [ G.map string_of_int (G.int_range (-3) 25); gen_var ]
  else
    G.frequency
      [
        (2, G.map string_of_int (G.int_range (-3) 25));
        (3, gen_var);
        ( 2,
          G.map2 (Printf.sprintf "(%s + %s)") (gen_int_expr (depth - 1))
            (gen_int_expr (depth - 1)) );
        ( 2,
          G.map2 (Printf.sprintf "(%s - %s)") (gen_int_expr (depth - 1))
            (gen_int_expr (depth - 1)) );
        ( 1,
          G.map2
            (fun c e -> Printf.sprintf "(%d * %s)" c e)
            (G.int_range (-2) 3) (gen_int_expr (depth - 1)) );
        ( 1,
          G.map2
            (fun e c -> Printf.sprintf "mod(%s, %d)" e c)
            (gen_int_expr (depth - 1)) (G.int_range 1 7) );
        (1, G.map (Printf.sprintf "a(%s)") (gen_idx (depth - 1)));
        (1, G.map (Printf.sprintf "b(%s)") (gen_idx (depth - 1)));
      ]

(* subscripts: mostly safe shapes, occasionally wild *)
and gen_idx depth : string G.t =
  G.frequency
    [
      (3, gen_var);
      (3, G.map string_of_int (G.int_range 1 6));
      (3, G.map (Printf.sprintf "(mod(%s, 5) + 1)") gen_var);
      (2, G.map (Printf.sprintf "(%s + 1)") gen_var);
      (2, G.map (Printf.sprintf "(%s - 1)") gen_var);
      (1, G.map (Printf.sprintf "(2 * %s - 1)") gen_var);
      (1, if depth > 0 then gen_int_expr (depth - 1) else gen_var);
    ]

let gen_rel = G.oneofl [ "<"; "<="; ">"; ">="; "="; "/=" ]

let gen_cond depth =
  G.map3
    (fun a op b -> Printf.sprintf "%s %s %s" a op b)
    (gen_int_expr depth) gen_rel (gen_int_expr depth)

let indent n = String.make (2 * n) ' '

(* [busy] holds the indices of enclosing do loops: Fortran (and our
   sema) forbid assigning them or reusing them as nested indices. *)
let rec gen_stmts ~depth ~budget ~level ~busy : string list G.t =
  if budget <= 0 then G.return []
  else
    let open G in
    gen_stmt ~depth ~budget ~level ~busy >>= fun (s, used) ->
    gen_stmts ~depth ~budget:(budget - used) ~level ~busy >>= fun rest -> return (s @ rest)

and gen_stmt ~depth ~budget ~level ~busy : (string list * int) G.t =
  let open G in
  let pad = indent level in
  let assignable = List.filter (fun v -> not (List.mem v busy)) int_vars in
  let assign =
    map2
      (fun v e -> ([ Printf.sprintf "%s%s = %s" pad v e ], 1))
      (oneofl assignable) (gen_int_expr 2)
  in
  let store =
    let arr1 =
      map2
        (fun (a, _, _) (i, e) -> ([ Printf.sprintf "%s%s(%s) = %s" pad a i e ], 1))
        (oneofl [ List.nth arrays 0; List.nth arrays 1 ])
        (pair (gen_idx 1) (gen_int_expr 2))
    in
    let arr2 =
      map3
        (fun i1 i2 e -> ([ Printf.sprintf "%sc(%s, %s) = %s" pad i1 i2 e ], 1))
        (gen_idx 0) (gen_idx 0) (gen_int_expr 1)
    in
    frequency [ (3, arr1); (1, arr2) ]
  in
  let print_stmt = map (fun e -> ([ Printf.sprintf "%sprint %s" pad e ], 1)) (gen_int_expr 1) in
  let if_stmt =
    if depth = 0 then assign
    else
      gen_cond 1 >>= fun cond ->
      gen_stmts ~depth:(depth - 1) ~budget:(min budget 3) ~level:(level + 1) ~busy
      >>= fun then_ ->
      gen_stmts ~depth:(depth - 1) ~budget:2 ~level:(level + 1) ~busy >>= fun else_ ->
      return
        ( [ Printf.sprintf "%sif %s then" pad cond ]
          @ then_
          @ (if else_ = [] then [] else (Printf.sprintf "%selse" pad) :: else_)
          @ [ Printf.sprintf "%sendif" pad ],
          2 )
  in
  let do_candidates = List.filter (fun v -> not (List.mem v busy)) [ "i"; "j"; "k" ] in
  let do_stmt =
    if depth = 0 || do_candidates = [] then store
    else
      oneofl do_candidates >>= fun v ->
      oneofl [ (1, 6, ""); (0, 5, ""); (1, 8, ", 2"); (6, 1, ", -1") ]
      >>= fun (lo, hi, step) ->
      (* occasionally a symbolic bound *)
      oneofl [ string_of_int hi; "n"; string_of_int hi ] >>= fun hi_s ->
      gen_stmts ~depth:(depth - 1) ~budget:(min budget 4) ~level:(level + 1)
        ~busy:(v :: busy)
      >>= fun body ->
      return
        ( [ Printf.sprintf "%sdo %s = %d, %s%s" pad v lo hi_s step ]
          @ body
          @ [ Printf.sprintf "%senddo" pad ],
          3 )
  in
  let while_stmt =
    if depth = 0 || List.mem "m" busy then assign
    else
      int_range 1 5 >>= fun count ->
      (* the body must not reassign the counter, or the loop may never
         terminate (m oscillating above zero forever) *)
      gen_stmts ~depth:(depth - 1) ~budget:(min budget 3) ~level:(level + 1)
        ~busy:("m" :: busy)
      >>= fun body ->
      return
        ( [
            Printf.sprintf "%sm = %d" pad count;
            Printf.sprintf "%swhile m > 0 do" pad;
          ]
          @ body
          @ [ Printf.sprintf "%s  m = m - 1" pad; Printf.sprintf "%sendwhile" pad ],
          3 )
  in
  frequency
    [ (4, assign); (4, store); (1, print_stmt); (2, if_stmt); (3, do_stmt); (1, while_stmt) ]

let gen_program : string G.t =
  let open G in
  int_range 0 12 >>= fun n0 ->
  gen_stmts ~depth:3 ~budget:8 ~level:1 ~busy:[] >>= fun body ->
  let decls =
    [
      "program fuzz";
      "  integer i, j, k, n, m";
      Printf.sprintf "  integer a%s, b%s, c%s"
        (let _, d, _ = List.nth arrays 0 in
         d)
        (let _, d, _ = List.nth arrays 1 in
         d)
        (let _, d, _ = List.nth arrays 2 in
         d);
      Printf.sprintf "  n = %d" n0;
      "  m = 1";
      "  i = 1";
      "  j = 2";
      "  k = 3";
    ]
  in
  let tail = [ "  print i + j + k + n + m"; "end" ] in
  return (String.concat "\n" (decls @ body @ tail))

(* --- the property ------------------------------------------------------ *)

let fuel = 400_000

let configs =
  List.concat_map
    (fun kind ->
      List.map (fun scheme -> Config.make ~scheme ~kind ()) Config.extended_schemes)
    [ Config.PRX; Config.INX ]
  @ [
      Config.make ~scheme:Config.NI ~impl:Universe.No_implications ();
      Config.make ~scheme:Config.SE ~impl:Universe.No_implications ();
      Config.make ~scheme:Config.LLS ~impl:Universe.Cross_family_only ();
      Config.make ~scheme:Config.LLS ~kind:Config.INX ~impl:Universe.Cross_family_only ();
    ]

let outcome_key (o : Run.outcome) =
  ( o.Run.trap <> None,
    o.Run.error <> None,
    if o.Run.trap = None && o.Run.error = None then o.Run.printed else [] )

let check_program src =
  let ir =
    try Ir.Lower.of_source src
    with e ->
      QCheck.Test.fail_reportf "generated program rejected: %s@.%s" (Printexc.to_string e)
        src
  in
  let o1 = Run.run ~fuel ir in
  if o1.Run.fuel_exhausted then true (* pathological nesting: skip *)
  else begin
    List.iter
      (fun config ->
        let opt, _ = Core.Optimizer.optimize ~config ir in
        (* every config above verifies between passes (Config.make
           defaults verify:true); this checks the final output too *)
        (match Ir.Verify.program opt with
        | [] -> ()
        | vs ->
            QCheck.Test.fail_reportf "verifier rejects output under %a:@.%a@.%s"
              Config.pp config (Fmt.list Ir.Verify.pp_violation) vs src);
        let o2 = Run.run ~fuel opt in
        if o2.Run.fuel_exhausted then
          QCheck.Test.fail_reportf "optimized ran out of fuel under %a:@.%s" Config.pp
            config src;
        if outcome_key o1 <> outcome_key o2 then
          QCheck.Test.fail_reportf
            "behaviour change under %a:@.%s@.naive: %a@.optimized: %a" Config.pp config
            src Run.pp_outcome o1 Run.pp_outcome o2;
        (* Dynamic check counts are monotone for NI/CS/LI/LLS. The PRE
           placements are down-safe but not always profitable — the
           paper's Figure 5 shows SE adding checks on one path — so for
           SE/LNI/ALL we only bound the damage. *)
        let monotone =
          match config.Config.scheme with
          | Config.NI | Config.CS | Config.LI | Config.LLS | Config.MCM -> true
          | Config.SE | Config.LNI | Config.ALL -> false
        in
        if o1.Run.trap = None && o1.Run.error = None then begin
          if monotone && o2.Run.checks > o1.Run.checks then
            QCheck.Test.fail_reportf "%a increased dynamic checks %d -> %d:@.%s"
              Config.pp config o1.Run.checks o2.Run.checks src;
          if (not monotone) && o2.Run.checks > (2 * o1.Run.checks) + 16 then
            QCheck.Test.fail_reportf "%a exploded dynamic checks %d -> %d:@.%s" Config.pp
              config o1.Run.checks o2.Run.checks src
        end;
        (* idempotence in behaviour: optimizing again changes nothing
           observable and removes nothing unsoundly *)
        let opt2, _ = Core.Optimizer.optimize ~config opt in
        let o3 = Run.run ~fuel opt2 in
        if outcome_key o2 <> outcome_key o3 then
          QCheck.Test.fail_reportf "second optimization changed behaviour under %a:@.%s"
            Config.pp config src)
      configs;
    true
  end

let prop_soundness =
  QCheck.Test.make ~name:"random programs: every config sound" ~count:36
    (QCheck.make gen_program) check_program

(* A second tranche of the same property, sharded across a small domain
   pool: programs are pre-generated from a fixed seed (so the corpus is
   reproducible and independent of scheduling), then checked in
   parallel. [check_program]'s own config loop stays serial — the
   parallelism is across programs, exactly how test/bench fan work out
   in anger. A failure in any shard re-raises in the caller. *)
let test_sharded_soundness () =
  let rand = Random.State.make [| 0xd0a11 |] in
  let programs = List.init 24 (fun _ -> QCheck.Gen.generate1 ~rand gen_program) in
  let pool = Nascent_support.Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Nascent_support.Pool.shutdown pool) @@ fun () ->
  Nascent_support.Pool.parallel_iter pool
    (fun src -> ignore (check_program src))
    programs

(* The generator must produce a healthy mix of outcomes, or the
   soundness property would be vacuous (e.g. everything trapping on the
   first statement). *)
let test_generator_diversity () =
  let rand = Random.State.make [| 0x5eed |] in
  let clean = ref 0 and traps = ref 0 and with_checks = ref 0 and loops = ref 0 in
  for _ = 1 to 50 do
    let src = QCheck.Gen.generate1 ~rand gen_program in
    let ir = Ir.Lower.of_source src in
    let o = Run.run ~fuel ir in
    if o.Run.trap <> None then incr traps;
    if o.Run.trap = None && o.Run.error = None && not o.Run.fuel_exhausted then
      incr clean;
    if o.Run.checks > 0 then incr with_checks;
    let f = Ir.Program.main_func ir in
    if Nascent_analysis.Loops.compute f <> [] then incr loops
  done;
  Alcotest.(check bool) (Fmt.str "clean runs (%d)" !clean) true (!clean >= 10);
  Alcotest.(check bool) (Fmt.str "trapping runs (%d)" !traps) true (!traps >= 5);
  Alcotest.(check bool) (Fmt.str "programs with checks (%d)" !with_checks) true
    (!with_checks >= 45);
  Alcotest.(check bool) (Fmt.str "programs with loops (%d)" !loops) true (!loops >= 25)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_soundness;
    Util.tc "sharded soundness (2 domains)" test_sharded_soundness;
    Util.tc "generator diversity" test_generator_diversity;
  ]

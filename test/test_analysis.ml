(* Dominance, natural loops, the data-flow solver, and CFG utilities. *)

open Util
module Ir = Nascent_ir
module Dominance = Nascent_analysis.Dominance
module Loops = Nascent_analysis.Loops
module Dataflow = Nascent_analysis.Dataflow
module Bitset = Nascent_support.Bitset

let func_of src = Ir.Program.main_func (ir_of_source src)

let diamond_src =
  "program d\ninteger n, r\nn = 1\nif n > 0 then\nr = 1\nelse\nr = 2\nendif\nprint r\nend"

let loop_src =
  "program l\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + i\nenddo\nprint s\nend"

let nested_src =
  "program n2\n\
   integer i, j, s\n\
   s = 0\n\
   do i = 1, 3\n\
   do j = 1, 4\n\
   s = s + 1\n\
   enddo\n\
   enddo\n\
   print s\n\
   end"

let while_src = "program w\ninteger n\nn = 0\nwhile n < 5 do\nn = n + 1\nendwhile\nend"

(* --- dominance -------------------------------------------------------- *)

let test_dom_entry_dominates_all () =
  let f = func_of diamond_src in
  let dom = Dominance.compute f in
  let entry = f.Ir.Func.entry in
  Ir.Func.iter_blocks
    (fun b ->
      if Dominance.reachable dom b.Ir.Types.bid then
        Alcotest.(check bool)
          (Fmt.str "entry dom B%d" b.Ir.Types.bid)
          true
          (Dominance.dominates dom entry b.Ir.Types.bid))
    f

let test_dom_reflexive_antisymmetric () =
  let f = func_of nested_src in
  let dom = Dominance.compute f in
  let n = Ir.Func.num_blocks f in
  for a = 0 to n - 1 do
    if Dominance.reachable dom a then begin
      Alcotest.(check bool) "reflexive" true (Dominance.dominates dom a a);
      for b = 0 to n - 1 do
        if Dominance.reachable dom b && a <> b then
          Alcotest.(check bool) "antisymmetric" false
            (Dominance.dominates dom a b && Dominance.dominates dom b a)
      done
    end
  done

let test_dom_branch_blocks_dont_dominate_join () =
  let f = func_of diamond_src in
  let dom = Dominance.compute f in
  (* the join has two preds, neither of which dominates it *)
  let preds = Ir.Func.preds_array f in
  let joins = ref [] in
  Array.iteri (fun b ps -> if List.length ps = 2 then joins := (b, ps) :: !joins) preds;
  Alcotest.(check bool) "has a join" true (!joins <> []);
  List.iter
    (fun (j, ps) ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "pred not dominator" false (Dominance.dominates dom p j))
        ps)
    !joins

let test_dom_idom_of_loop_body () =
  let f = func_of loop_src in
  let dom = Dominance.compute f in
  (* every loop body block is dominated by the loop header *)
  let loops = Loops.compute f in
  let l = List.hd loops in
  List.iter
    (fun b ->
      Alcotest.(check bool) "header dominates body" true
        (Dominance.dominates dom l.Loops.header b))
    l.Loops.blocks

let test_dom_frontier_of_branch () =
  let f = func_of diamond_src in
  let dom = Dominance.compute f in
  let df = Dominance.frontiers dom in
  (* both branch arms have the join in their dominance frontier *)
  let joins =
    Array.to_list (Ir.Func.preds_array f)
    |> List.mapi (fun b ps -> (b, ps))
    |> List.filter (fun (_, ps) -> List.length ps = 2)
    |> List.map fst
  in
  let join = List.hd joins in
  let arms = (Ir.Func.preds_array f).(join) in
  List.iter
    (fun arm ->
      Alcotest.(check bool) (Fmt.str "join in DF(B%d)" arm) true (List.mem join df.(arm)))
    arms

(* --- loops ------------------------------------------------------------ *)

let test_loops_single () =
  let f = func_of loop_src in
  let loops = Loops.compute f in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "has do meta" true
    (match l.Loops.meta with Some (Ir.Types.Ldo _) -> true | _ -> false);
  (* the loop defines its index and the accumulator *)
  Alcotest.(check bool) "defines i and s" true (Hashtbl.length l.Loops.defined_vids >= 2)

let test_loops_nested_innermost_first () =
  let f = func_of nested_src in
  let loops = Loops.compute f in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let inner = List.nth loops 0 and outer = List.nth loops 1 in
  Alcotest.(check bool) "inner inside outer" true (Loops.in_loop outer inner.Loops.header);
  Alcotest.(check bool) "outer not inside inner" false
    (Loops.in_loop inner outer.Loops.header);
  Alcotest.(check bool) "depth order" true (inner.Loops.depth > outer.Loops.depth)

let test_loops_while_meta () =
  let f = func_of while_src in
  let loops = Loops.compute f in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  match (List.hd loops).Loops.meta with
  | Some (Ir.Types.Lwhile _) -> ()
  | _ -> Alcotest.fail "expected while metadata"

let test_loops_no_store_flag () =
  let f = func_of loop_src in
  let l = List.hd (Loops.compute f) in
  Alcotest.(check bool) "scalar loop has no store" false l.Loops.has_store;
  let f2 =
    func_of "program s\ninteger i, a(1:10)\ndo i = 1, 10\na(i) = 0\nenddo\nend"
  in
  let l2 = List.hd (Loops.compute f2) in
  Alcotest.(check bool) "array loop has store" true l2.Loops.has_store

let test_innermost_containing () =
  let f = func_of nested_src in
  let loops = Loops.compute f in
  let inner = List.nth loops 0 in
  (* a block of the inner loop maps to the inner loop *)
  let body = List.find (fun b -> b <> inner.Loops.header) inner.Loops.blocks in
  match Loops.innermost_containing loops body with
  | Some l -> Alcotest.(check int) "innermost" inner.Loops.header l.Loops.header
  | None -> Alcotest.fail "no loop found"

(* --- critical edge splitting ------------------------------------------ *)

let test_split_critical_edges () =
  (* loop exit edge (header -> exit) is critical when the exit has
     another predecessor; after splitting, no branch target with
     multiple preds remains reachable from a multi-successor block *)
  let f = func_of "program c\ninteger i, j, s\ns = 0\ndo i = 1, 3\nif s > 1 then\ns = s - 1\nendif\nenddo\ndo j = 1, 2\ns = s + 1\nenddo\nprint s\nend" in
  ignore (Ir.Func.split_critical_edges f);
  let preds = Ir.Func.preds_array f in
  Ir.Func.iter_blocks
    (fun b ->
      match b.Ir.Types.term with
      | Ir.Types.Branch (_, x, y) when x <> y ->
          List.iter
            (fun t ->
              Alcotest.(check bool)
                (Fmt.str "edge B%d->B%d not critical" b.Ir.Types.bid t)
                true
                (List.length preds.(t) <= 1))
            [ x; y ]
      | _ -> ())
    f;
  (* behaviour is unchanged *)
  let prog = ir_of_source "program c\ninteger i, j, s\ns = 0\ndo i = 1, 3\nif s > 1 then\ns = s - 1\nendif\nenddo\ndo j = 1, 2\ns = s + 1\nenddo\nprint s\nend" in
  let f2 = Ir.Program.main_func prog in
  let before = Nascent_interp.Run.run prog in
  ignore (Ir.Func.split_critical_edges f2);
  let after = Nascent_interp.Run.run prog in
  Alcotest.(check bool) "same output" true
    (List.for_all2 Nascent_interp.Value.equal before.printed after.printed)

(* --- generic data-flow solver ------------------------------------------ *)

(* Reaching-of-one-token experiment: GEN in one block, KILL in another,
   must-confluence. On the diamond: token generated before the branch
   reaches the join; token generated in one arm does not. *)
let test_solver_must_confluence () =
  let f = func_of diamond_src in
  let n = Ir.Func.num_blocks f in
  let preds = Ir.Func.preds_array f in
  let join = ref (-1) in
  Array.iteri (fun b ps -> if List.length ps = 2 then join := b) preds;
  let arm = List.hd preds.(!join) in
  let mk_transfer gen_in =
    Array.init n (fun b ->
        let gen = Bitset.create 1 and kill = Bitset.create 1 in
        if b = gen_in then Bitset.add gen 0;
        { Dataflow.gen; kill })
  in
  (* generated in the entry: available at the join *)
  let r = Dataflow.solve f ~universe:1 ~direction:Dataflow.Forward
      ~boundary:(Bitset.create 1) ~transfer:(mk_transfer f.Ir.Func.entry)
  in
  Alcotest.(check bool) "entry gen reaches join" true (Bitset.mem r.Dataflow.in_.(!join) 0);
  (* generated in one arm only: not available at the join *)
  let r2 = Dataflow.solve f ~universe:1 ~direction:Dataflow.Forward
      ~boundary:(Bitset.create 1) ~transfer:(mk_transfer arm)
  in
  Alcotest.(check bool) "one-arm gen blocked at join" false
    (Bitset.mem r2.Dataflow.in_.(!join) 0)

let test_solver_kill () =
  let f = func_of loop_src in
  let n = Ir.Func.num_blocks f in
  (* gen at entry, kill in the loop body: not available after the loop *)
  let loops = Loops.compute f in
  let l = List.hd loops in
  let body = List.find (fun b -> b <> l.Loops.header) l.Loops.blocks in
  let transfer =
    Array.init n (fun b ->
        let gen = Bitset.create 1 and kill = Bitset.create 1 in
        if b = f.Ir.Func.entry then Bitset.add gen 0;
        if b = body then Bitset.add kill 0;
        { Dataflow.gen; kill })
  in
  let r = Dataflow.solve f ~universe:1 ~direction:Dataflow.Forward
      ~boundary:(Bitset.create 1) ~transfer
  in
  (* at the loop header the token is not available (killed on the back
     edge path) *)
  Alcotest.(check bool) "killed around the loop" false
    (Bitset.mem r.Dataflow.in_.(l.Loops.header) 0)

let test_solver_backward () =
  let f = func_of diamond_src in
  let n = Ir.Func.num_blocks f in
  (* "anticipated": gen in both arms => anticipatable before the branch;
     gen in one arm only => not *)
  let preds = Ir.Func.preds_array f in
  let join = ref (-1) in
  Array.iteri (fun b ps -> if List.length ps = 2 then join := b) preds;
  let arms = preds.(!join) in
  let mk gens =
    Array.init n (fun b ->
        let gen = Bitset.create 1 and kill = Bitset.create 1 in
        if List.mem b gens then Bitset.add gen 0;
        { Dataflow.gen; kill })
  in
  let r = Dataflow.solve f ~universe:1 ~direction:Dataflow.Backward
      ~boundary:(Bitset.create 1) ~transfer:(mk arms)
  in
  Alcotest.(check bool) "both arms => anticipatable at entry" true
    (Bitset.mem r.Dataflow.in_.(f.Ir.Func.entry) 0);
  let r2 = Dataflow.solve f ~universe:1 ~direction:Dataflow.Backward
      ~boundary:(Bitset.create 1) ~transfer:(mk [ List.hd arms ])
  in
  Alcotest.(check bool) "one arm => not anticipatable" false
    (Bitset.mem r2.Dataflow.in_.(f.Ir.Func.entry) 0)

(* Regression: a CFG region with no path to any exit block. The solver
   used to leave such blocks at the optimistic full set — the backward
   boundary only applies at successor-less blocks, and an infinite loop
   has none — reporting facts "anticipatable" with no witness on any
   path. They must be forced to the pessimistic empty set instead. *)
let test_solver_backward_no_exit () =
  let f = Ir.Func.create ~name:"inf" ~params:[] in
  let b0 = Ir.Func.new_block f in
  let b1 = Ir.Func.new_block f in
  b0.Ir.Types.term <- Ir.Types.Goto b1.Ir.Types.bid;
  b1.Ir.Types.term <- Ir.Types.Goto b1.Ir.Types.bid;
  let n = Ir.Func.num_blocks f in
  (* nothing is generated anywhere, so nothing may be anticipatable *)
  let transfer =
    Array.init n (fun _ ->
        { Dataflow.gen = Bitset.create 1; kill = Bitset.create 1 })
  in
  let r =
    Dataflow.solve f ~universe:1 ~direction:Dataflow.Backward
      ~boundary:(Bitset.create 1) ~transfer
  in
  for b = 0 to n - 1 do
    Alcotest.(check bool) (Fmt.str "B%d in empty" b) true
      (Bitset.is_empty r.Dataflow.in_.(b));
    Alcotest.(check bool) (Fmt.str "B%d out empty" b) true
      (Bitset.is_empty r.Dataflow.out.(b))
  done

let suite =
  [
    tc "dom: entry dominates all" test_dom_entry_dominates_all;
    tc "dom: reflexive/antisymmetric" test_dom_reflexive_antisymmetric;
    tc "dom: branch arms don't dominate join" test_dom_branch_blocks_dont_dominate_join;
    tc "dom: header dominates loop body" test_dom_idom_of_loop_body;
    tc "dom: frontier of branch arms" test_dom_frontier_of_branch;
    tc "loops: single do" test_loops_single;
    tc "loops: nested innermost first" test_loops_nested_innermost_first;
    tc "loops: while meta" test_loops_while_meta;
    tc "loops: store flag" test_loops_no_store_flag;
    tc "loops: innermost containing" test_innermost_containing;
    tc "cfg: split critical edges" test_split_critical_edges;
    tc "solver: must confluence" test_solver_must_confluence;
    tc "solver: kill" test_solver_kill;
    tc "solver: backward" test_solver_backward;
    tc "solver: backward, no exit" test_solver_backward_no_exit;
  ]

(* The compile service's robustness contract, end to end over a real
   Unix-domain socket: admission control, per-request deadlines,
   handler-crash isolation, the per-scheme circuit breaker, and the
   zero-loss SIGTERM drain (driven here via Server.stop, which is
   exactly what nascentd's signal handler calls).

   Each test boots an in-process server (Server.run on a Thread, real
   worker domains) on a fresh socket and talks to it through the same
   Client module nascentc and the bench target use. *)

module Server = Nascent_support.Server
module Client = Server.Client
module Json = Nascent_support.Json
module Retry = Nascent_support.Retry
module Guard = Nascent_support.Guard
module Service = Nascent_harness.Service
module Mutate = Nascent_ir.Mutate
module Config = Nascent_core.Config
module Optimizer = Nascent_core.Optimizer
module B = Nascent_benchmarks.Suite

(* These tests race clients against draining/hung-up servers: broken
   pipes must surface as EPIPE, not kill the test binary. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nascent-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let wait_for_socket path =
  let rec go n =
    if n <= 0 then Alcotest.fail "server socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.01;
      go (n - 1)
    end
  in
  go 500

(* Boot a server, run [f path server], then drain it — every test ends
   with the graceful-stop path, so a drain regression fails loudly
   everywhere. *)
let with_server ?(tune = fun c -> c) handler f =
  let path = fresh_socket () in
  let cfg = tune (Server.default_config ~socket_path:path) in
  let srv = Server.create cfg handler in
  let runner = Thread.create (fun () -> Server.run srv) () in
  wait_for_socket path;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join runner;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path srv)

let with_service ?tune ?breaker_threshold ?breaker_cooldown_s f =
  let svc =
    Service.create ?breaker_threshold ?breaker_cooldown_s ()
  in
  with_server ?tune (Service.handler svc) f

(* Same, with the service's upgrade path wired to the server's
   background lane — the daemon's (nascentd's) configuration, where
   tiered compilation is active. *)
let with_tiered_service ?tune ?breaker_threshold ?breaker_cooldown_s f =
  let svc = Service.create ?breaker_threshold ?breaker_cooldown_s () in
  with_server ?tune (Service.handler svc) (fun path srv ->
      Service.set_upgrade_submit svc (Server.submit_background srv);
      f path srv)

(* --- response plumbing -------------------------------------------------- *)

let request_exn conn req =
  match Client.request conn req with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "request failed: %s" msg

let sfield resp name =
  match Json.str_member name resp with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S: %s" name (Json.to_string resp)

let ifield resp name =
  match Json.int_member name resp with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int field %S: %s" name (Json.to_string resp)

let bfield resp name =
  match Json.bool_member name resp with
  | Some b -> b
  | None -> Alcotest.failf "response lacks bool field %S: %s" name (Json.to_string resp)

let incidents resp =
  match Json.member "incidents" resp with
  | Some (Json.List l) -> l
  | _ -> Alcotest.failf "response lacks incidents list: %s" (Json.to_string resp)

let compile_req ?(id = Json.Int 0) ?(scheme = "LLS") ?fault ?deadline_ms
    ?(run = false) ?oracle ?tier benchmark =
  Json.Obj
    ([
       ("id", id);
       ("op", Json.Str "compile");
       ("benchmark", Json.Str benchmark);
       ("scheme", Json.Str scheme);
       ("run", Json.Bool run);
     ]
    @ (match oracle with None -> [] | Some b -> [ ("oracle", Json.Bool b) ])
    @ (match fault with None -> [] | Some f -> [ ("fault", Json.Str f) ])
    @ (match tier with None -> [] | Some t -> [ ("tier", Json.Str t) ])
    @
    match deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Int ms) ])

let status_req = Json.Obj [ ("id", Json.Str "st"); ("op", Json.Str "status") ]

(* --- basic request/response --------------------------------------------- *)

let test_compile_ok () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let resp = request_exn conn (compile_req ~id:(Json.Int 42) ~run:true "vortex") in
  Alcotest.(check string) "status" "ok" (sfield resp "status");
  Alcotest.(check int) "code" 0 (ifield resp "code");
  Alcotest.(check int) "id echoed" 42 (ifield resp "id");
  Alcotest.(check string) "scheme used as requested" "LLS" (sfield resp "scheme_used");
  Alcotest.(check bool) "not a fallback" false (bfield resp "fallback");
  Alcotest.(check int) "no incidents" 0 (List.length (incidents resp));
  Alcotest.(check bool) "optimizer removed checks" true
    (ifield resp "checks_after" < ifield resp "checks_before");
  (match Json.member "run" resp with
  | Some run ->
      Alcotest.(check bool) "run reported checks" true (ifield run "checks" >= 0)
  | None -> Alcotest.fail "run outcome missing despite run:true");
  (* same request again: served from the result cache *)
  let again = request_exn conn (compile_req ~id:(Json.Int 43) ~run:true "vortex") in
  Alcotest.(check bool) "second compile cached" true (bfield again "cached")

(* The --oracle axis end to end: a clean compile returns the
   translation-validation certificate; an unsound deletion (the fault
   class no pass rule can see) refuses it, degrades the response, and
   surfaces a "validate" incident. *)
let test_compile_oracle_certificate () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let resp = request_exn conn (compile_req ~id:(Json.Int 1) ~oracle:true "trfd") in
  Alcotest.(check string) "status ok" "ok" (sfield resp "status");
  Alcotest.(check bool) "oracle echoed" true (bfield resp "oracle");
  Alcotest.(check bool) "certificate granted" true (bfield resp "validated");
  let plain = request_exn conn (compile_req ~id:(Json.Int 2) "trfd") in
  Alcotest.(check bool) "no certificate without oracle" true
    (Json.member "validated" plain = Some Json.Null);
  let bad =
    request_exn conn
      (compile_req ~id:(Json.Int 3) ~scheme:"NI" ~oracle:true
         ~fault:"unsound-eliminate:1" "trfd")
  in
  Alcotest.(check string) "refused certificate degrades" "degraded"
    (sfield bad "status");
  Alcotest.(check int) "degraded exit code" 4 (ifield bad "code");
  Alcotest.(check bool) "fault applied" true (ifield bad "faults_injected" > 0);
  Alcotest.(check bool) "certificate refused" false (bfield bad "validated");
  Alcotest.(check bool) "validation incident surfaced" true
    (List.exists
       (fun i -> Json.str_member "pass" i = Some "validate")
       (incidents bad))

let test_status_shape () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  ignore (request_exn conn (compile_req "simple"));
  let st = request_exn conn status_req in
  Alcotest.(check string) "status ok" "ok" (sfield st "status");
  Alcotest.(check string) "id echoed" "st" (sfield st "id");
  Alcotest.(check bool) "uptime present" true
    (Json.float_member "uptime_s" st <> None);
  Alcotest.(check bool) "not draining" false (bfield st "draining");
  Alcotest.(check int) "served the compile" 1 (ifield st "served");
  Alcotest.(check int) "no worker restarts" 0 (ifield st "worker_restarts");
  Alcotest.(check int) "service counted it" 1 (ifield st "compiles");
  List.iter
    (fun f ->
      if Json.member f st = None then
        Alcotest.failf "status lacks field %S: %s" f (Json.to_string st))
    [
      "jobs"; "queue_depth"; "queue_capacity"; "inflight"; "shed"; "timeouts";
      "internal_errors"; "bad_requests"; "connections"; "breakers"; "cache";
      "degraded"; "fallbacks"; "incidents_total"; "breaker_trips";
    ]

let test_bad_inputs () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  (* unparseable line *)
  Client.send_line conn "this is not json";
  (match Client.recv_line conn with
  | None -> Alcotest.fail "no response to bad line"
  | Some line -> (
      match Json.parse line with
      | Error e -> Alcotest.failf "unparseable error response: %s" e
      | Ok resp ->
          Alcotest.(check string) "bad-request" "bad-request" (sfield resp "code")));
  (* unknown op *)
  let resp = request_exn conn (Json.Obj [ ("op", Json.Str "frobnicate") ]) in
  Alcotest.(check string) "bad-op" "bad-op" (sfield resp "code");
  (* compile of garbage source: structured error, not a crash *)
  let resp =
    request_exn conn
      (Json.Obj
         [ ("op", Json.Str "compile"); ("source", Json.Str "program ) garbage (") ])
  in
  Alcotest.(check string) "error status" "error" (sfield resp "status");
  Alcotest.(check string) "invalid-program" "invalid-program" (sfield resp "code");
  (* unknown scheme name *)
  let resp = request_exn conn (compile_req ~scheme:"ZZZ" "simple") in
  Alcotest.(check string) "bad scheme rejected" "bad-request" (sfield resp "code");
  (* the daemon shrugged all of that off *)
  let st = request_exn conn status_req in
  Alcotest.(check int) "bad line counted" 1 (ifield st "bad_requests");
  Alcotest.(check int) "no worker restarts" 0 (ifield st "worker_restarts")

(* --- worker-crash isolation --------------------------------------------- *)

let test_handler_exception_isolated () =
  let handler =
    {
      Server.handle =
        (fun req ->
          if Json.member "boom" req <> None then failwith "kaboom"
          else Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_server ~tune:(fun c -> { c with Server.jobs = 1 }) handler @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let boom =
    request_exn conn (Json.Obj [ ("id", Json.Int 1); ("boom", Json.Bool true) ])
  in
  Alcotest.(check string) "answered as internal error" "internal" (sfield boom "code");
  Alcotest.(check bool) "exception text surfaced" true
    (let d = sfield boom "detail" in
     String.length d >= 6
     && List.exists
          (fun i -> String.sub d i 6 = "kaboom")
          (List.init (String.length d - 5) Fun.id));
  (* the SAME worker (jobs=1) keeps serving *)
  let ok = request_exn conn (Json.Obj [ ("id", Json.Int 2) ]) in
  Alcotest.(check string) "worker survived" "ok" (sfield ok "status");
  let st = request_exn conn status_req in
  Alcotest.(check int) "counted as internal error" 1 (ifield st "internal_errors");
  Alcotest.(check int) "no restart needed (caught in process)" 0
    (ifield st "worker_restarts")

(* --- deadlines ----------------------------------------------------------- *)

let test_deadline_cuts_hung_request () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let resp =
    request_exn conn
      (Json.Obj
         [ ("id", Json.Int 9); ("op", Json.Str "burn"); ("deadline_ms", Json.Int 150) ])
  in
  Alcotest.(check string) "deadline response" "deadline" (sfield resp "code");
  Alcotest.(check int) "id echoed" 9 (ifield resp "id");
  (* the worker was freed: an ordinary compile still goes through *)
  let ok = request_exn conn (compile_req "simple") in
  Alcotest.(check string) "worker free after timeout" "ok" (sfield ok "status");
  let st = request_exn conn status_req in
  Alcotest.(check int) "timeout counted" 1 (ifield st "timeouts")

(* A request whose deadline expires while it is still QUEUED is
   answered without burning a worker on it. *)
let test_deadline_counts_queue_wait () =
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let open_gate = ref false in
  let release () =
    Mutex.lock gate;
    open_gate := true;
    Condition.broadcast cond;
    Mutex.unlock gate
  in
  let handler =
    {
      Server.handle =
        (fun req ->
          (if Json.member "block" req <> None then begin
             Mutex.lock gate;
             while not !open_gate do
               Condition.wait cond gate
             done;
             Mutex.unlock gate
           end);
          Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_server ~tune:(fun c -> { c with Server.jobs = 1 }) handler @@ fun path _ ->
  Fun.protect ~finally:release @@ fun () ->
  Client.with_conn path @@ fun conn ->
  (* occupy the only worker... *)
  Client.send_line conn
    (Json.to_string (Json.Obj [ ("id", Json.Int 1); ("block", Json.Bool true) ]));
  (* ...queue a request with a deadline shorter than the block... *)
  Client.send_line conn
    (Json.to_string
       (Json.Obj [ ("id", Json.Int 2); ("deadline_ms", Json.Int 100) ]));
  Unix.sleepf 0.3;
  (* ...and only then release the worker. *)
  release ();
  let r1 = Option.get (Client.recv_line conn) |> Json.parse |> Result.get_ok in
  let r2 = Option.get (Client.recv_line conn) |> Json.parse |> Result.get_ok in
  let find id =
    if ifield r1 "id" = id then r1
    else if ifield r2 "id" = id then r2
    else Alcotest.failf "no response with id %d" id
  in
  Alcotest.(check string) "blocked request served" "ok" (sfield (find 1) "status");
  Alcotest.(check string) "queued-past-deadline answered with deadline" "deadline"
    (sfield (find 2) "code")

(* --- admission control ---------------------------------------------------- *)

let test_overload_sheds_with_retryable () =
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let open_gate = ref false in
  let release () =
    Mutex.lock gate;
    open_gate := true;
    Condition.broadcast cond;
    Mutex.unlock gate
  in
  let handler =
    {
      Server.handle =
        (fun _ ->
          Mutex.lock gate;
          while not !open_gate do
            Condition.wait cond gate
          done;
          Mutex.unlock gate;
          Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_server
    ~tune:(fun c -> { c with Server.jobs = 1; queue_depth = 2 })
    handler
  @@ fun path _ ->
  Fun.protect ~finally:release @@ fun () ->
  Client.with_conn path @@ fun conn ->
  Client.with_conn path @@ fun stconn ->
  (* one in flight (wait until the worker picked it up)... *)
  Client.send_line conn (Json.to_string (Json.Obj [ ("id", Json.Int 1) ]));
  let rec wait_inflight n =
    if n = 0 then Alcotest.fail "request never went in flight";
    let st = request_exn stconn status_req in
    if ifield st "inflight" <> 1 then begin
      Unix.sleepf 0.01;
      wait_inflight (n - 1)
    end
  in
  wait_inflight 500;
  (* ...two filling the queue to capacity... *)
  Client.send_line conn (Json.to_string (Json.Obj [ ("id", Json.Int 2) ]));
  Client.send_line conn (Json.to_string (Json.Obj [ ("id", Json.Int 3) ]));
  let rec wait_queued n =
    if n = 0 then Alcotest.fail "queue never filled";
    let st = request_exn stconn status_req in
    if ifield st "queue_depth" <> 2 then begin
      Unix.sleepf 0.01;
      wait_queued (n - 1)
    end
  in
  wait_queued 500;
  (* ...and one over: shed immediately, retryable. *)
  Client.send_line conn (Json.to_string (Json.Obj [ ("id", Json.Int 4) ]));
  let shed = Option.get (Client.recv_line conn) |> Json.parse |> Result.get_ok in
  Alcotest.(check int) "the overflow request was the one shed" 4 (ifield shed "id");
  Alcotest.(check string) "overloaded" "overloaded" (sfield shed "code");
  Alcotest.(check bool) "marked retryable" true (bfield shed "retryable");
  (* status stayed answerable throughout (it already did, above); now
     drain the admitted three *)
  release ();
  let answered =
    List.init 3 (fun _ ->
        ifield (Option.get (Client.recv_line conn) |> Json.parse |> Result.get_ok) "id")
  in
  Alcotest.(check (list int)) "admitted requests all served" [ 1; 2; 3 ]
    (List.sort compare answered);
  let st = request_exn stconn status_req in
  Alcotest.(check int) "shed counted" 1 (ifield st "shed")

(* The client side of the same story: request_retry backs off against
   retryable shedding and succeeds once capacity frees up. *)
let test_client_retries_through_overload () =
  let busy = Atomic.make 3 in
  let handler =
    {
      Server.handle =
        (fun _ ->
          if Atomic.fetch_and_add busy (-1) > 0 then
            Json.Obj
              [
                ("status", Json.Str "error");
                ("code", Json.Str "overloaded");
                ("retryable", Json.Bool true);
                ("detail", Json.Str "simulated overload");
              ]
          else Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_server handler @@ fun path _ ->
  let slept = ref [] in
  let policy = { Retry.default with Retry.base_delay_s = 0.001; max_delay_s = 0.002 } in
  (match
     Client.request_retry ~policy
       ~sleep:(fun s -> slept := s :: !slept)
       ~seed:7 path
       (Json.Obj [ ("op", Json.Str "noop") ])
   with
  | Ok resp -> Alcotest.(check string) "eventually ok" "ok" (sfield resp "status")
  | Error msg -> Alcotest.failf "retries should have succeeded: %s" msg);
  Alcotest.(check int) "three backoffs before success" 3 (List.length !slept);
  (* and a hard cap: against a permanently-shedding server it gives up *)
  Atomic.set busy max_int;
  match
    Client.request_retry
      ~policy:{ policy with Retry.max_attempts = 2 }
      ~sleep:ignore ~seed:8 path
      (Json.Obj [ ("op", Json.Str "noop") ])
  with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error msg ->
      Alcotest.(check bool) "reports the attempt count" true
        (String.length msg > 0 && msg.[0] = 'g' (* "gave up after ..." *))

(* A daemon that hangs up mid-exchange (draining, restarting) is a
   RETRYABLE failure — requests are idempotent — not an exit-7 fatal.
   Simulated with a raw listener that accepts and immediately closes:
   every attempt ends in EPIPE/ECONNRESET or EOF-before-response, and
   the client must burn through all its attempts rather than give up
   on the first. *)
let test_retry_classifies_midexchange_close () =
  let path = fresh_socket () in
  let attempts = 3 in
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind lfd (ADDR_UNIX path);
  Unix.listen lfd 8;
  let hangup_server =
    Thread.create
      (fun () ->
        for _ = 1 to attempts do
          let cfd, _ = Unix.accept lfd in
          Unix.close cfd
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join hangup_server;
      Unix.close lfd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let policy = { Retry.default with Retry.max_attempts = attempts } in
      match
        Client.request_retry ~policy ~sleep:ignore ~seed:3 path
          (compile_req "simple")
      with
      | Ok _ -> Alcotest.fail "no response should ever arrive"
      | Error msg ->
          (* a fatal classification would read "gave up after 1" *)
          let expected = Printf.sprintf "gave up after %d attempt(s)" attempts in
          Alcotest.(check bool)
            (Printf.sprintf "all %d attempts used (got: %s)" attempts msg)
            true
            (String.length msg >= String.length expected
            && String.sub msg 0 (String.length expected) = expected))

(* --- circuit breaker ------------------------------------------------------ *)

let test_breaker_trips_and_recovers () =
  with_service ~breaker_threshold:2 ~breaker_cooldown_s:0.4 @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let faulty ?deadline_ms id =
    request_exn conn
      (compile_req ~id:(Json.Int id) ~scheme:"CS" ~fault:"drop-check:7" ?deadline_ms
         "vortex")
  in
  (* two consecutive incident-bearing compiles trip the CS breaker *)
  let r1 = faulty 1 in
  Alcotest.(check string) "first fault degrades" "degraded" (sfield r1 "status");
  Alcotest.(check string) "still compiled at CS" "CS" (sfield r1 "scheme_used");
  Alcotest.(check bool) "incidents attached" true (incidents r1 <> []);
  let r2 = faulty 2 in
  Alcotest.(check string) "breaker open after threshold" "open" (sfield r2 "breaker");
  (* tripped: requests for CS are routed to the NI floor *)
  let r3 = faulty 3 in
  Alcotest.(check bool) "fallback engaged" true (bfield r3 "fallback");
  Alcotest.(check string) "compiled at the NI floor" "NI" (sfield r3 "scheme_used");
  Alcotest.(check string) "fallback is degraded" "degraded" (sfield r3 "status");
  Alcotest.(check bool) "fallback response carries an incident" true
    (incidents r3 <> []);
  (* cooldown, then a healthy probe closes the breaker *)
  Unix.sleepf 0.6;
  let probe =
    request_exn conn (compile_req ~id:(Json.Int 4) ~scheme:"CS" "vortex")
  in
  Alcotest.(check bool) "probe ran at the real scheme" false (bfield probe "fallback");
  Alcotest.(check string) "probe compiled at CS" "CS" (sfield probe "scheme_used");
  Alcotest.(check string) "probe success closes the breaker" "closed"
    (sfield probe "breaker");
  let after =
    request_exn conn (compile_req ~id:(Json.Int 5) ~scheme:"CS" "vortex")
  in
  Alcotest.(check string) "recovered: CS served normally" "ok" (sfield after "status");
  let st = request_exn conn status_req in
  Alcotest.(check int) "trip counted" 1 (ifield st "breaker_trips");
  Alcotest.(check bool) "fallbacks counted" true (ifield st "fallbacks" >= 1)

(* --- the acceptance run: 100 concurrent requests under fault load -------- *)

let test_hundred_concurrent_faulted_requests () =
  with_service
    ~tune:(fun c -> { c with Server.jobs = 4; queue_depth = 128 })
    ~breaker_threshold:3 ~breaker_cooldown_s:0.05
  @@ fun path _ ->
  let n_threads = 10 and per_thread = 10 in
  let results : (int * Json.t) list Array.t = Array.make n_threads [] in
  let mk_request t i =
    let id = (t * per_thread) + i in
    match id mod 5 with
    | 0 -> compile_req ~id:(Json.Int id) ~scheme:"CS" ~fault:"drop-check:7" "vortex"
    | 1 -> compile_req ~id:(Json.Int id) ~scheme:"SE" ~fault:"unsafe-insert:3" "simple"
    | 2 -> compile_req ~id:(Json.Int id) ~scheme:"LLS" ~run:true "trfd"
    | 3 -> compile_req ~id:(Json.Int id) ~scheme:"ALL" ~fault:"break-edge:5" "qcd"
    | _ -> compile_req ~id:(Json.Int id) ~scheme:"LI" "mdg"
  in
  let client t =
    Client.with_conn path @@ fun conn ->
    for i = 0 to per_thread - 1 do
      let id = (t * per_thread) + i in
      let resp = request_exn conn (mk_request t i) in
      results.(t) <- (id, resp) :: results.(t)
    done
  in
  let threads = List.init n_threads (fun t -> Thread.create client t) in
  List.iter Thread.join threads;
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "every request answered" (n_threads * per_thread)
    (List.length all);
  List.iter
    (fun (id, resp) ->
      Alcotest.(check int) "response id matches request" id (ifield resp "id");
      (match sfield resp "status" with
      | "ok" -> ()
      | "degraded" ->
          (* the acceptance criterion: degradation is never silent *)
          if incidents resp = [] then
            Alcotest.failf "degraded response %d carries no incident: %s" id
              (Json.to_string resp)
      | other -> Alcotest.failf "request %d failed outright (%s): %s" id other
                   (Json.to_string resp));
      match Json.member "run" resp with
      | Some run ->
          Alcotest.(check (option string)) "no interpreter trap" None
            (Json.str_member "trap" run)
      | None -> ())
    all;
  (* injected faults actually exercised the degradation path... *)
  let degraded =
    List.length (List.filter (fun (_, r) -> sfield r "status" = "degraded") all)
  in
  Alcotest.(check bool) "fault classes produced degraded responses" true (degraded > 0);
  (* ...and the daemon survived the whole barrage *)
  Client.with_conn path @@ fun conn ->
  let st = request_exn conn status_req in
  Alcotest.(check int) "zero worker restarts" 0 (ifield st "worker_restarts");
  Alcotest.(check int) "zero internal errors" 0 (ifield st "internal_errors");
  Alcotest.(check int) "all 100 served" 100 (ifield st "served");
  Alcotest.(check bool) "incidents were recorded" true (ifield st "incidents_total" > 0)

(* --- tiered compilation --------------------------------------------------- *)

let ofield resp name =
  match Json.member name resp with
  | Some (Json.Obj _ as o) -> o
  | _ -> Alcotest.failf "response lacks object field %S: %s" name (Json.to_string resp)

let rec poll_until ?(n = 600) what f =
  if n = 0 then Alcotest.failf "timed out waiting for %s" what
  else if not (f ()) then begin
    Unix.sleepf 0.01;
    poll_until ~n:(n - 1) what f
  end

(* The tier lifecycle end to end: a cold miss answers instantly from
   the NI floor, the background lane compiles the requested scheme,
   and the hot-swap promotes the cache entry so the next request sees
   the optimized artifact — with every stage visible in status. *)
let test_tier_floor_then_optimized () =
  with_tiered_service ~tune:(fun c -> { c with Server.jobs = 2 }) @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let cold = request_exn conn (compile_req ~id:(Json.Int 1) ~run:true "vortex") in
  Alcotest.(check string) "cold miss serves the floor tier" "floor" (sfield cold "tier");
  Alcotest.(check string) "floor artifact is the NI compile" "NI"
    (sfield cold "scheme_used");
  Alcotest.(check string) "requested scheme echoed" "LLS"
    (sfield cold "scheme_requested");
  Alcotest.(check string) "floor response is healthy" "ok" (sfield cold "status");
  Alcotest.(check bool) "floor is not a breaker fallback" false (bfield cold "fallback");
  let last = ref cold in
  poll_until "background upgrade to the optimized tier" (fun () ->
      last := request_exn conn (compile_req ~run:true "vortex");
      sfield !last "tier" = "optimized");
  let opt = !last in
  Alcotest.(check string) "optimized artifact at the requested scheme" "LLS"
    (sfield opt "scheme_used");
  Alcotest.(check bool) "hot-swapped entry served from cache" true (bfield opt "cached");
  Alcotest.(check string) "upgrade kept the response healthy" "ok" (sfield opt "status");
  Alcotest.(check bool) "the upgrade actually optimized" true
    (ifield opt "checks_after" < ifield cold "checks_after");
  (match (Json.member "run" cold, Json.member "run" opt) with
  | Some rc, Some ro ->
      (* the differential across the swap: same trap behaviour *)
      Alcotest.(check (option string)) "no trap on either tier" None
        (Json.str_member "trap" rc);
      Alcotest.(check (option string)) "no trap after the swap" None
        (Json.str_member "trap" ro)
  | _ -> Alcotest.fail "run outcome missing from a tier response");
  let st = request_exn conn status_req in
  let tiers = ofield st "tiers"
  and ups = ofield st "upgrades"
  and cache = ofield st "cache" in
  Alcotest.(check bool) "floor responses counted" true (ifield tiers "floor" >= 1);
  Alcotest.(check bool) "optimized responses counted" true
    (ifield tiers "optimized" >= 1);
  Alcotest.(check int) "one upgrade submitted" 1 (ifield ups "submitted");
  Alcotest.(check int) "one upgrade done" 1 (ifield ups "done");
  Alcotest.(check int) "no upgrade pending" 0 (ifield ups "pending");
  Alcotest.(check int) "no upgrade failed" 0 (ifield ups "failed");
  Alcotest.(check int) "the promotion was one atomic swap" 1 (ifield cache "swaps");
  Alcotest.(check int) "the background lane ran it" 1 (ifield st "bg_done");
  Alcotest.(check int) "the lane is drained" 0 (ifield st "bg_pending")

(* The per-request escape hatch and the always-sync cases: "tier":
   "sync" compiles the requested scheme inline even on a wired server,
   NI requests never upgrade (they ARE the floor), and an unknown tier
   spelling is a structured bad-request. *)
let test_tier_sync_optout () =
  with_tiered_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let r = request_exn conn (compile_req ~tier:"sync" "trfd") in
  Alcotest.(check string) "sync compiles the requested scheme inline" "LLS"
    (sfield r "scheme_used");
  Alcotest.(check string) "sync response is already the optimized tier" "optimized"
    (sfield r "tier");
  Alcotest.(check bool) "cold sync compile, not a floor cache hit" false
    (bfield r "cached");
  let ni = request_exn conn (compile_req ~scheme:"NI" "trfd") in
  Alcotest.(check string) "NI is served synchronously in auto mode" "NI"
    (sfield ni "scheme_used");
  Alcotest.(check string) "the floor itself has nothing to upgrade to" "optimized"
    (sfield ni "tier");
  let st = request_exn conn status_req in
  Alcotest.(check int) "no upgrade was ever submitted" 0
    (ifield (ofield st "upgrades") "submitted");
  Alcotest.(check int) "nothing on the background lane" 0 (ifield st "bg_pending");
  let bad = request_exn conn (compile_req ~tier:"turbo" "trfd") in
  Alcotest.(check string) "unknown tier mode rejected" "bad-request" (sfield bad "code")

(* A service with no background lane wired (every embedded/test use
   before the daemon wires one) keeps the exact pre-tier semantics:
   requests compile synchronously at the requested scheme. *)
let test_tier_unwired_stays_sync () =
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let r = request_exn conn (compile_req ~scheme:"ALL" "simple") in
  Alcotest.(check string) "unwired service compiles inline" "ALL"
    (sfield r "scheme_used");
  Alcotest.(check string) "and serves the optimized tier directly" "optimized"
    (sfield r "tier");
  let st = request_exn conn status_req in
  Alcotest.(check int) "no upgrade submitted without a lane" 0
    (ifield (ofield st "upgrades") "submitted")

(* Fault containment across every Mutate class, through the background
   upgrade path: the floor response reaches the client untouched by the
   upgrade's failure, the failure feeds the scheme's breaker (which
   trips at the threshold), and no upgrade incident ever rides a floor
   response — the upgrade path is its own failure domain. *)

(* A scheme whose pipeline runs the pass the class targets (the same
   mapping test_fault.ml and the CLI smoke matrix use), restricted to
   non-NI schemes: NI requests are synchronous by construction, so the
   upgrade path is only reachable above the floor. Unsound_eliminate
   compiles with the oracle on — the translation validator is the only
   net that catches it, and its refusal must fail the upgrade. *)
let upgrade_scheme_for = function
  | Mutate.Drop_check | Mutate.Weaken_check -> Config.CS
  | Mutate.Unsafe_insert -> Config.SE
  | Mutate.Break_edge | Mutate.Hang_fixpoint | Mutate.Unsound_eliminate -> Config.LLS

(* (benchmark, seed) pairs where the class actually injects at the
   upgrade scheme — a seed that never applies would let the upgrade
   succeed, reset the breaker's consecutive-failure count and prove
   nothing. Probed through the optimizer directly. *)
let applicable_pairs cls ~scheme ~oracle ~wanted =
  let applies seed (b : B.benchmark) =
    let config = Config.make ~scheme ~fault:{ Mutate.cls; seed } ~oracle () in
    let _, stats = Optimizer.optimize ~config (Util.ir_of_source b.B.source) in
    stats.Optimizer.faults_injected > 0
  in
  let rec collect acc = function
    | [] -> List.rev acc
    | _ when List.length acc >= wanted -> List.rev acc
    | (seed, b) :: rest ->
        collect (if applies seed b then (b.B.name, seed) :: acc else acc) rest
  in
  let candidates =
    List.concat_map (fun seed -> List.map (fun b -> (seed, b)) B.all) [ 1; 7; 42 ]
  in
  let pairs = collect [] candidates in
  if List.length pairs < wanted then
    Alcotest.failf "%s: only %d applicable (benchmark, seed) pairs found"
      (Mutate.cls_name cls) (List.length pairs)
  else pairs

let test_upgrade_fault_containment_every_class () =
  List.iter
    (fun cls ->
      let scheme = upgrade_scheme_for cls in
      let sname = Config.scheme_name scheme in
      let oracle = cls = Mutate.Unsound_eliminate in
      let threshold = 2 in
      let pairs = applicable_pairs cls ~scheme ~oracle ~wanted:threshold in
      let fault_str seed = Printf.sprintf "%s:%d" (Mutate.cls_name cls) seed in
      (* a long cooldown pins the breaker open once tripped *)
      with_tiered_service ~breaker_threshold:threshold ~breaker_cooldown_s:60.0
      @@ fun path _ ->
      Client.with_conn path @@ fun conn ->
      List.iter
        (fun (bench, seed) ->
          let r =
            request_exn conn
              (compile_req ~scheme:sname ~fault:(fault_str seed)
                 ~oracle bench)
          in
          let where = Fmt.str "%s %s:%d on %s" sname (Mutate.cls_name cls) seed bench in
          (* the floor answers — possibly degraded by its OWN NI-level
             incidents (a hang or unsound deletion can apply at NI too),
             but never an error and never a breaker/upgrade incident *)
          Alcotest.(check string) (where ^ ": floor tier served") "floor"
            (sfield r "tier");
          Alcotest.(check string) (where ^ ": floor artifact is NI") "NI"
            (sfield r "scheme_used");
          Alcotest.(check bool) (where ^ ": never an outright error") true
            (sfield r "status" <> "error");
          Alcotest.(check bool) (where ^ ": breaker still closed on arrival") false
            (bfield r "fallback");
          Alcotest.(check bool)
            (where ^ ": no upgrade-domain incident escapes to the floor client")
            false
            (List.exists
               (fun i -> Json.str_member "pass" i = Some "service")
               (incidents r));
          (* let this upgrade reach its terminal failure before the
             next request, so the breaker counts strictly consecutive
             failures *)
          poll_until (where ^ ": upgrade drained") (fun () ->
              let st = request_exn conn status_req in
              ifield (ofield st "upgrades") "pending" = 0))
        pairs;
      let st = request_exn conn status_req in
      let ups = ofield st "upgrades" in
      Alcotest.(check int)
        (Mutate.cls_name cls ^ ": every faulted upgrade failed terminally")
        threshold (ifield ups "failed");
      Alcotest.(check int)
        (Mutate.cls_name cls ^ ": no corrupt artifact was ever hot-swapped")
        0 (ifield ups "done");
      Alcotest.(check int) (Mutate.cls_name cls ^ ": breaker tripped once") 1
        (ifield st "breaker_trips");
      (* the tripped breaker now explains the floor: re-requesting the
         first key serves the kept floor as an explicit fallback *)
      let bench, seed = List.hd pairs in
      let again =
        request_exn conn
          (compile_req ~scheme:sname ~fault:(fault_str seed)
             ~oracle bench)
      in
      Alcotest.(check string) (Mutate.cls_name cls ^ ": floor kept after the trip")
        "floor" (sfield again "tier");
      Alcotest.(check string) (Mutate.cls_name cls ^ ": breaker reported open") "open"
        (sfield again "breaker");
      Alcotest.(check bool) (Mutate.cls_name cls ^ ": fallback now explicit") true
        (bfield again "fallback");
      Alcotest.(check bool)
        (Mutate.cls_name cls ^ ": the fallback explains itself with an incident")
        true
        (List.exists
           (fun i -> Json.str_member "pass" i = Some "service")
           (incidents again)))
    Mutate.all_classes

(* --- graceful drain -------------------------------------------------------- *)

let test_drain_loses_nothing () =
  let handler =
    {
      Server.handle =
        (fun req ->
          Unix.sleepf 0.05;
          Json.Obj
            [
              ("status", Json.Str "ok");
              ("echo", Option.value ~default:Json.Null (Json.member "id" req));
            ]);
      status_extra = (fun () -> []);
    }
  in
  with_server ~tune:(fun c -> { c with Server.jobs = 2 }) handler @@ fun path srv ->
  let n = 10 in
  let conn = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  for i = 0 to n - 1 do
    Client.send_line conn (Json.to_string (Json.Obj [ ("id", Json.Int i) ]))
  done;
  (* wait until every request is admitted (queued, running or done),
     then pull the plug mid-flight *)
  Client.with_conn path (fun stconn ->
      let rec wait k =
        if k = 0 then Alcotest.fail "requests never all admitted";
        let st = request_exn stconn status_req in
        if ifield st "queue_depth" + ifield st "inflight" + ifield st "served" < n
        then begin
          Unix.sleepf 0.01;
          wait (k - 1)
        end
      in
      wait 1000);
  Server.stop srv;
  (* a request sent AFTER stop is shed, not silently dropped *)
  (try
     Client.send_line conn
       (Json.to_string (Json.Obj [ ("id", Json.Str "late") ]))
   with Unix.Unix_error _ -> () (* connection may already be shut down *));
  let rec collect acc =
    if List.length acc >= n then acc
    else
      match Client.recv_line conn with
      | None -> acc
      | Some line -> (
          match Json.parse line with
          | Error e -> Alcotest.failf "bad drain response: %s" e
          | Ok resp ->
              if Json.member "echo" resp <> None then
                collect (ifield resp "id" :: acc)
              else (
                (* the late request's shed notice *)
                Alcotest.(check string) "late request shed" "shutting-down"
                  (sfield resp "code");
                collect acc))
  in
  let served = collect [] in
  Alcotest.(check (list int)) "zero in-flight loss across drain"
    (List.init n Fun.id) (List.sort compare served);
  Alcotest.(check bool) "socket file removed after drain" true
    (not (Sys.file_exists path))

(* One connection per request is nascentc's connection discipline: the
   server must release each one (fd, conn record, reader thread) once
   the client hangs up and its responses are out — a long-running
   daemon may not hold resources proportional to lifetime traffic. *)
let test_connection_resources_released () =
  with_service @@ fun path _ ->
  let churn = 8 in
  for i = 1 to churn do
    Client.with_conn path @@ fun conn ->
    ignore (request_exn conn (compile_req ~id:(Json.Int i) "simple"))
  done;
  Client.with_conn path @@ fun stconn ->
  (* EOF is noticed asynchronously by the reader threads: poll *)
  let rec poll n =
    let st = request_exn stconn status_req in
    if ifield st "open_connections" <= 1 then st
    else if n = 0 then
      Alcotest.failf "connections never released: %d still open after churn"
        (ifield st "open_connections")
    else begin
      Unix.sleepf 0.02;
      poll (n - 1)
    end
  in
  let st = poll 250 in
  Alcotest.(check int) "every churned connection was accepted" (churn + 1)
    (ifield st "connections");
  Alcotest.(check int) "none of the served requests were lost" churn
    (ifield st "served")

(* --- memory watchdog ---------------------------------------------------- *)

let test_mem_pressure_sheds_admission () =
  Fun.protect ~finally:(fun () -> Guard.set_mem_budget ~bytes:None ())
  @@ fun () ->
  with_service @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  (* a 1-byte budget: any heap is over it, so admission must shed *)
  Guard.set_mem_budget ~bytes:(Some 1) ();
  let shed = request_exn conn (compile_req "vortex") in
  Alcotest.(check string) "shed, not served" "error" (sfield shed "status");
  Alcotest.(check string) "shed as overloaded" "overloaded" (sfield shed "code");
  Alcotest.(check bool) "shed is retryable" true (bfield shed "retryable");
  (* pressure relieved: the same request is admitted and served — and
     status (answered off the admission path) stays reachable throughout *)
  Guard.set_mem_budget ~bytes:None ();
  let ok = request_exn conn (compile_req "vortex") in
  Alcotest.(check string) "served once pressure clears" "ok" (sfield ok "status");
  let st = request_exn conn status_req in
  Alcotest.(check int) "shed admissions counted" 1 (ifield st "mem_shed");
  Alcotest.(check int) "no request was aborted" 0 (ifield st "mem_aborts")

let test_mem_abort_is_retryable () =
  (* a handler that trips the watchdog mid-request: the server must
     answer mem-pressure/retryable and count the abort, not die *)
  let handler =
    {
      Server.handle =
        (fun req ->
          match Json.str_member "mode" req with
          | Some "boom" -> raise (Guard.Mem_exceeded "major heap over budget")
          | _ -> Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_server handler @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let boom =
    request_exn conn
      (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "x"); ("mode", Json.Str "boom") ])
  in
  Alcotest.(check string) "aborted request errors" "error" (sfield boom "status");
  Alcotest.(check string) "abort code is mem-pressure" "mem-pressure"
    (sfield boom "code");
  Alcotest.(check bool) "abort is retryable" true (bfield boom "retryable");
  (* the worker survives the abort *)
  let ok =
    request_exn conn (Json.Obj [ ("id", Json.Int 2); ("op", Json.Str "x") ])
  in
  Alcotest.(check string) "worker serves the next request" "ok" (sfield ok "status");
  let st = request_exn conn status_req in
  Alcotest.(check int) "abort counted" 1 (ifield st "mem_aborts");
  Alcotest.(check int) "nothing shed at admission" 0 (ifield st "mem_shed")

let suite =
  [
    Util.tc "compile request round-trips" test_compile_ok;
    Util.tc "oracle certificate round-trips" test_compile_oracle_certificate;
    Util.tc "status reports the full picture" test_status_shape;
    Util.tc "bad inputs get structured errors" test_bad_inputs;
    Util.tc "handler exception is isolated" test_handler_exception_isolated;
    Util.tc "deadline frees a hung worker" test_deadline_cuts_hung_request;
    Util.tc "deadline counts queue wait" test_deadline_counts_queue_wait;
    Util.tc "overload sheds retryably" test_overload_sheds_with_retryable;
    Util.tc "client retries through overload" test_client_retries_through_overload;
    Util.tc "mid-exchange close is retryable" test_retry_classifies_midexchange_close;
    Util.tc "connection resources released" test_connection_resources_released;
    Util.tc "breaker trips and recovers" test_breaker_trips_and_recovers;
    Util.tc "tier: floor then optimized" test_tier_floor_then_optimized;
    Util.tc "tier: sync opt-out and NI floor" test_tier_sync_optout;
    Util.tc "tier: unwired service stays sync" test_tier_unwired_stays_sync;
    Util.tc "tier: upgrade faults contained per class"
      test_upgrade_fault_containment_every_class;
    Util.tc "100 concurrent faulted requests" test_hundred_concurrent_faulted_requests;
    Util.tc "drain loses nothing" test_drain_loses_nothing;
    Util.tc "mem pressure sheds admission" test_mem_pressure_sheds_admission;
    Util.tc "mem abort is retryable" test_mem_abort_is_retryable;
  ]

let () =
  Alcotest.run "nascent-rco"
    [
      ("support", Test_support.suite);
      ("checks", Test_checks.suite);
      ("oracle", Test_oracle.suite);
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("ir", Test_ir.suite);
      ("verify", Test_verify.suite);
      ("fault", Test_fault.suite);
      ("interp", Test_interp.suite);
      ("optimizer", Test_optimizer.suite);
      ("core-passes", Test_core_passes.suite);
      ("induction", Test_induction.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("random", Test_random.suite);
      ("parallel", Test_parallel.suite);
      ("experiments", Test_experiments.suite);
      ("harness", Test_harness.suite);
      ("server", Test_server.suite);
      ("journal", Test_journal.suite);
      ("frame", Test_frame.suite);
      ("router", Test_router.suite);
      ("transport", Test_transport.suite);
    ]

(* The IR invariant verifier (Nascent_ir.Verify).

   Acceptance: the verifier, wired between optimizer passes via
   [Config.verify], accepts every (benchmark x scheme x check kind x
   implication mode) optimized output — a rejection rolls the pass
   back and records an incident, so a clean sweep is zero incidents
   across the whole matrix.
   Rejection: seeded corruption of each invariant class (broken CFG,
   malformed check, stale loop metadata, unsafe insertion) must be
   reported. *)

open Util
module Ir = Nascent_ir
module Verify = Ir.Verify
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
module Atom = Nascent_checks.Atom
module B = Nascent_benchmarks.Suite
open Ir.Types

let impls =
  [ Universe.All_implications; Universe.Cross_family_only; Universe.No_implications ]

let kinds = [ Config.PRX; Config.INX ]

(* --- acceptance -------------------------------------------------------- *)

(* The full matrix: every scheme, check kind and implication mode on
   every benchmark, inter-pass verification on. Also checks the final
   output structurally, so the last pass cannot hide anything. *)
let test_matrix_accepted () =
  List.iter
    (fun (b : B.benchmark) ->
      let ir = ir_of_source b.B.source in
      List.iter
        (fun scheme ->
          List.iter
            (fun kind ->
              List.iter
                (fun impl ->
                  let config = Config.make ~scheme ~kind ~impl ~verify:true () in
                  let opt, stats = Core.Optimizer.optimize ~config ir in
                  (* a verifier rejection no longer raises: it rolls
                     the pass back and records an incident, so a clean
                     sweep now means ZERO incidents *)
                  (match stats.Core.Optimizer.incidents with
                  | [] -> ()
                  | is ->
                      Alcotest.failf "%s under %a: %d pass(es) rolled back: %a"
                        b.B.name Config.pp config (List.length is)
                        (Fmt.list Core.Optimizer.pp_incident)
                        is);
                  match Verify.program opt with
                  | [] -> ()
                  | vs ->
                      Alcotest.failf "%s under %a: %a" b.B.name Config.pp config
                        (Fmt.list Verify.pp_violation) vs)
                impls)
            kinds)
        Config.extended_schemes)
    B.all

(* Lowered IR of every benchmark is well-formed before any pass runs. *)
let test_lowered_accepted () =
  List.iter
    (fun (b : B.benchmark) ->
      match Verify.program (ir_of_source b.B.source) with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s lowered: %a" b.B.name (Fmt.list Verify.pp_violation) vs)
    B.all

(* --- rejection: seeded corruption -------------------------------------- *)

let loop_src =
  "program l\ninteger a(1:10), i, s\ns = 0\ndo i = 1, 10\ns = s + a(i)\nenddo\nprint s\nend"

let straight_src = "program s\ninteger a(1:10), k\nk = 3\na(k) = 1\nend"

let has_rule rule vs = List.exists (fun v -> v.Verify.rule = rule) vs

let check_rejected name rule vs =
  Alcotest.(check bool)
    (Fmt.str "%s reports a %s violation" name (Verify.rule_name rule))
    true (has_rule rule vs)

let check_clean name vs =
  match vs with
  | [] -> ()
  | vs -> Alcotest.failf "%s: %a" name (Fmt.list Verify.pp_violation) vs

(* class 1: CFG corruption — terminator target out of range *)
let test_rejects_bad_terminator () =
  let f = Ir.Program.main_func (ir_of_source loop_src) in
  check_clean "initially clean" (Verify.func f);
  (Ir.Func.block f f.Ir.Func.entry).term <- Goto 9999;
  check_rejected "dangling goto" Verify.Cfg (Verify.func f)

(* class 2: check corruption — an atom the function never interned *)
let test_rejects_ghost_atom () =
  let f = Ir.Program.main_func (ir_of_source loop_src) in
  let ghost = Atom.make ~key:99999 ~name:"ghost" in
  let m =
    {
      chk = Check.make (Linexpr.of_atom ghost) 5;
      src_array = "a";
      src_dim = 0;
      kind = Upper;
    }
  in
  let b = Ir.Func.block f f.Ir.Func.entry in
  b.instrs <- Check m :: b.instrs;
  check_rejected "ghost atom" Verify.Check_form (Verify.func f)

(* class 2b: check corruption — dimension beyond the declared rank *)
let test_rejects_bad_dimension () =
  let f = Ir.Program.main_func (ir_of_source loop_src) in
  let corrupted = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      b.instrs <-
        List.map
          (fun i ->
            match i with
            | Check m when not !corrupted ->
                corrupted := true;
                Check { m with src_dim = 7 }
            | i -> i)
          b.instrs)
    f;
  Alcotest.(check bool) "found a check to corrupt" true !corrupted;
  check_rejected "rank overflow" Verify.Check_form (Verify.func f)

(* class 3: loop corruption — preheader metadata pointing elsewhere *)
let test_rejects_stale_preheader () =
  let f = Ir.Program.main_func (ir_of_source loop_src) in
  let saw_do = ref false in
  f.Ir.Func.loops <-
    List.map
      (function
        | Ldo d ->
            saw_do := true;
            Ldo { d with d_preheader = d.d_exit }
        | m -> m)
      f.Ir.Func.loops;
  Alcotest.(check bool) "program has a do loop" true !saw_do;
  check_rejected "stale preheader" Verify.Loop_structure (Verify.func f)

(* class 4: unsafe insertion — a check placed above the definition of
   its symbol (the paper's anticipatability safety rule) *)
let test_rejects_unsafe_insertion () =
  let f = Ir.Program.main_func (ir_of_source straight_src) in
  let before = Ir.Transform.copy_func f in
  let entry = Ir.Func.block f f.Ir.Func.entry in
  let meta =
    match
      List.find_opt (function Check _ -> true | _ -> false) entry.instrs
    with
    | Some (Check m) -> m
    | _ -> Alcotest.fail "expected a check in the entry block"
  in
  (* a physically fresh copy of an existing check, hoisted above the
     definition of k it guards *)
  entry.instrs <- Check meta :: entry.instrs;
  check_rejected "check above def" Verify.Insertion
    (Verify.func ~pass:Verify.Code_motion ~before f)

(* positive control for class 4: inserting the same check below the
   definition — where the original makes it anticipatable — is fine *)
let test_accepts_safe_insertion () =
  let f = Ir.Program.main_func (ir_of_source straight_src) in
  let before = Ir.Transform.copy_func f in
  let entry = Ir.Func.block f f.Ir.Func.entry in
  (* keep the original cell ([orig]) physically identical so the diff
     sees exactly one insertion *)
  let rec insert_before_check = function
    | (Check m as orig) :: rest -> Check m :: orig :: rest
    | i :: rest -> i :: insert_before_check rest
    | [] -> Alcotest.fail "expected a check in the entry block"
  in
  entry.instrs <- insert_before_check entry.instrs;
  check_clean "safe duplicate accepted"
    (Verify.func ~pass:Verify.Code_motion ~before f)

(* a strengthening that *weakens* (larger constant) must be rejected *)
let test_rejects_weakening () =
  let f = Ir.Program.main_func (ir_of_source loop_src) in
  let before = Ir.Transform.copy_func f in
  let weakened = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      b.instrs <-
        List.map
          (fun i ->
            match i with
            | Check m when (not !weakened) && Check.constant m.chk < 1000 ->
                weakened := true;
                Check
                  {
                    m with
                    chk =
                      Check.make (Check.lhs m.chk) (Check.constant m.chk + 1);
                  }
            | i -> i)
          b.instrs)
    f;
  Alcotest.(check bool) "found a check to weaken" true !weakened;
  check_rejected "weakened check" Verify.Insertion
    (Verify.func ~pass:Verify.Strengthen ~before f)

(* --- qcheck: corruption never slips through ---------------------------- *)

(* For a random benchmark and corruption class, the verifier reports at
   least one violation. *)
let prop_corruption_rejected =
  QCheck.Test.make ~name:"verifier rejects seeded corruption" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_bound (List.length B.all - 1)) (int_bound 2)))
    (fun (bi, ci) ->
      let b = List.nth B.all bi in
      let f = Ir.Program.main_func (ir_of_source b.B.source) in
      let applied =
        match ci with
        | 0 ->
            (Ir.Func.block f f.Ir.Func.entry).term <- Goto 9999;
            true
        | 1 ->
            let ghost = Atom.make ~key:99999 ~name:"ghost" in
            let m =
              {
                chk = Check.make (Linexpr.of_atom ghost) 1;
                src_array = "<corrupt>";
                src_dim = 0;
                kind = Lower;
              }
            in
            let blk = Ir.Func.block f f.Ir.Func.entry in
            blk.instrs <- Check m :: blk.instrs;
            true
        | _ -> (
            match f.Ir.Func.loops with
            | [] -> false (* nothing to corrupt; vacuously fine *)
            | metas ->
                f.Ir.Func.loops <-
                  List.mapi
                    (fun i meta ->
                      if i > 0 then meta
                      else
                        match meta with
                        | Ldo d -> Ldo { d with d_preheader = d.d_header }
                        | Lwhile w -> Lwhile { w with w_preheader = w.w_header })
                    metas;
                true)
      in
      (not applied) || Verify.func f <> [])

let suite =
  [
    tc "matrix: every config accepted" test_matrix_accepted;
    tc "lowered benchmarks accepted" test_lowered_accepted;
    tc "rejects dangling terminator" test_rejects_bad_terminator;
    tc "rejects ghost-atom check" test_rejects_ghost_atom;
    tc "rejects out-of-rank dimension" test_rejects_bad_dimension;
    tc "rejects stale loop preheader" test_rejects_stale_preheader;
    tc "rejects check above its def" test_rejects_unsafe_insertion;
    tc "accepts safe duplicate insertion" test_accepts_safe_insertion;
    tc "rejects weakening strengthen" test_rejects_weakening;
    QCheck_alcotest.to_alcotest prop_corruption_rejected;
  ]

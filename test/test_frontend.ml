(* Lexer, parser and semantic-analysis tests. *)

open Util
module Token = Nascent_frontend.Token
module Lexer = Nascent_frontend.Lexer
module Sema = Nascent_frontend.Sema

let toks src = List.map fst (Lexer.tokenize src)

let token = Alcotest.testable (Fmt.of_to_string Token.to_string) ( = )

let test_lex_simple () =
  Alcotest.(check (list token))
    "tokens"
    [ Token.IDENT "x"; Token.EQ; Token.INT 1; Token.PLUS; Token.INT 2; Token.EOF ]
    (toks "x = 1 + 2")

let test_lex_operators () =
  Alcotest.(check (list token))
    "tokens"
    [ Token.LE; Token.GE; Token.LT; Token.GT; Token.NE; Token.EQ; Token.SLASH; Token.EOF ]
    (toks "<= >= < > /= = /")

let test_lex_keywords_case_insensitive () =
  Alcotest.(check (list token))
    "tokens"
    [ Token.KW_DO; Token.KW_ENDDO; Token.KW_PROGRAM; Token.EOF ]
    (toks "DO EndDo PROGRAM")

let test_lex_comments () =
  Alcotest.(check (list token))
    "tokens"
    [ Token.INT 1; Token.INT 2; Token.EOF ]
    (toks "1 ! comment to eol\n2 # another")

let test_lex_reals () =
  match toks "1.5 2.0e3 7" with
  | [ Token.REAL a; Token.REAL b; Token.INT 7; Token.EOF ] ->
      Alcotest.(check (float 1e-9)) "a" 1.5 a;
      Alcotest.(check (float 1e-9)) "b" 2000.0 b
  | ts -> Alcotest.failf "unexpected tokens: %d" (List.length ts)

let test_lex_error () =
  match Lexer.tokenize "x = @" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_lex_positions () =
  let lx = Lexer.make "ab\n  cd" in
  let _, p1 = Lexer.next lx in
  let _, p2 = Lexer.next lx in
  Alcotest.(check int) "line1" 1 p1.Nascent_frontend.Srcloc.line;
  Alcotest.(check int) "line2" 2 p2.Nascent_frontend.Srcloc.line;
  Alcotest.(check int) "col2" 3 p2.Nascent_frontend.Srcloc.col

(* --- parser --- *)

let parse_ok src =
  match Frontend.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %a" Frontend.pp_error e

let parse_err src =
  match Frontend.parse src with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ()

let test_parse_minimal () =
  let p = parse_ok "program t\nend" in
  Alcotest.(check int) "units" 1 (List.length p.Ast.units);
  let u = List.hd p.Ast.units in
  Alcotest.(check string) "name" "t" u.Ast.uname

let test_parse_decls () =
  let p = parse_ok "program t\ninteger n, a(1:10), b(5, 0:4)\nreal x\nend" in
  let u = List.hd p.Ast.units in
  Alcotest.(check int) "decls" 4 (List.length u.Ast.udecls);
  let b = List.nth u.Ast.udecls 2 in
  Alcotest.(check int) "b dims" 2 (List.length b.Ast.ddims)

let test_parse_do_loop () =
  let p = parse_ok "program t\ninteger i, a(1:10)\ndo i = 1, 10\na(i) = i\nenddo\nend" in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.Do { index = "i"; step = None; body = [ _ ]; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected do structure"

let test_parse_do_step () =
  let p = parse_ok "program t\ninteger i\ndo i = 10, 1, -2\nenddo\nend" in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.Do { step = Some _; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected a step"

let test_parse_if_else () =
  let p =
    parse_ok "program t\ninteger n\nif n > 0 then\nn = 1\nelse\nn = 2\nendif\nend"
  in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.If (_, [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "unexpected if structure"

let test_parse_while () =
  let p = parse_ok "program t\ninteger n\nwhile n < 10 do\nn = n + 1\nendwhile\nend" in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.While (_, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "unexpected while structure"

let test_parse_subroutine_and_call () =
  let p =
    parse_ok
      "program t\ninteger n\ncall s(n)\nend\nsubroutine s(k)\ninteger k\nreturn\nend"
  in
  Alcotest.(check int) "units" 2 (List.length p.Ast.units)

let test_parse_precedence () =
  let p = parse_ok "program t\ninteger x\nx = 1 + 2 * 3\nend" in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.Assign ("x", { Ast.desc = Ast.Binary (Ast.Add, _, rhs); _ }); _ } ]
    -> (
      match rhs.Ast.desc with
      | Ast.Binary (Ast.Mul, _, _) -> ()
      | _ -> Alcotest.fail "expected * to bind tighter than +")
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_relational_chain_rejected () =
  (* Relational operators do not associate: a < b < c is a type error at
     best, a parse error otherwise; our grammar parses (a<b) then stops,
     leaving `< c` to fail. *)
  parse_err "program t\ninteger a\nif a < 1 < 2 then\nendif\nend"

let test_parse_intrinsics () =
  let p = parse_ok "program t\ninteger x\nx = mod(7, 3) + min(1, 2) + max(1, 2) + abs(-4)\nend" in
  ignore p

let test_parse_missing_end () = parse_err "program t\ninteger n\nn = 1"

let test_parse_array_assign () =
  let p = parse_ok "program t\nreal a(1:10, 1:10)\na(1, 2) = 3.0\nend" in
  let u = List.hd p.Ast.units in
  match u.Ast.ubody with
  | [ { Ast.sdesc = Ast.Store ("a", [ _; _ ], _); _ } ] -> ()
  | _ -> Alcotest.fail "unexpected store structure"

(* --- sema --- *)

let sema_ok src = ignore (analyze_exn src)

let sema_err src =
  match Frontend.analyze src with
  | Ok _ -> Alcotest.fail "expected sema error"
  | Error (Frontend.Sema_errors _) -> ()
  | Error e -> Alcotest.failf "expected sema error, got %a" Frontend.pp_error e

let test_sema_ok_program () =
  sema_ok
    "program t\n\
     integer i, n, a(1:10)\n\
     real x(0:99)\n\
     n = 10\n\
     do i = 1, n\n\
     a(i) = i\n\
     x(i) = 1.5\n\
     enddo\n\
     end"

let test_sema_undeclared_var () = sema_err "program t\ninteger n\nn = m\nend"
let test_sema_undeclared_array () = sema_err "program t\ninteger n\nn = a(1)\nend"
let test_sema_rank_mismatch () = sema_err "program t\ninteger a(1:10)\na(1, 2) = 0\nend"

let test_sema_real_subscript () =
  sema_err "program t\nreal x\ninteger a(1:10)\na(x) = 0\nend"

let test_sema_real_to_int_assign () =
  sema_err "program t\ninteger n\nn = 1.5\nend"

let test_sema_int_to_real_ok () = sema_ok "program t\nreal x\nx = 1\nend"

let test_sema_logical_if () = sema_err "program t\ninteger n\nif n then\nendif\nend"

let test_sema_do_index_must_be_int () =
  sema_err "program t\nreal x\ndo x = 1, 10\nenddo\nend"

let test_sema_call_arity () =
  sema_err
    "program t\ninteger n\ncall s(n, n)\nend\nsubroutine s(k)\ninteger k\nend"

let test_sema_call_array_param () =
  sema_ok
    "program t\n\
     integer a(1:10)\n\
     call s(a)\n\
     end\n\
     subroutine s(b)\n\
     integer b(1:10)\n\
     b(1) = 0\n\
     end"

let test_sema_scalar_for_array_param () =
  sema_err
    "program t\ninteger n\ncall s(n)\nend\nsubroutine s(b)\ninteger b(1:10)\nend"

let test_sema_duplicate_decl () = sema_err "program t\ninteger n\nreal n\nend"

let test_sema_two_mains () = sema_err "program a\nend\nprogram b\nend"

let test_sema_no_main () = sema_err "subroutine s()\nend"

let test_sema_param_without_decl () =
  sema_err "program t\nend\nsubroutine s(k)\nend"

let test_sema_intrinsic_reserved () = sema_err "program t\ninteger mod(1:3)\nend"

let test_sema_do_index_assignment_rejected () =
  (* Fortran's rule, and the assumption behind loop-limit substitution *)
  sema_err "program t\ninteger i\ndo i = 1, 5\ni = 3\nenddo\nend"

let test_sema_nested_do_index_reuse_rejected () =
  sema_err "program t\ninteger i\ndo i = 1, 5\ndo i = 1, 3\nenddo\nenddo\nend"

let test_sema_do_index_assignment_in_if_rejected () =
  sema_err
    "program t\ninteger i, n\nn = 1\ndo i = 1, 5\nif n > 0 then\ni = 2\nendif\nenddo\nend"

let test_sema_do_index_free_after_loop () =
  (* after the loop ends the variable is assignable again *)
  sema_ok "program t\ninteger i\ndo i = 1, 5\nenddo\ni = 7\ndo i = 2, 3\nenddo\nend"

let suite =
  [
    tc "lex: simple" test_lex_simple;
    tc "lex: operators" test_lex_operators;
    tc "lex: keywords case-insensitive" test_lex_keywords_case_insensitive;
    tc "lex: comments" test_lex_comments;
    tc "lex: reals" test_lex_reals;
    tc "lex: error" test_lex_error;
    tc "lex: positions" test_lex_positions;
    tc "parse: minimal" test_parse_minimal;
    tc "parse: decls" test_parse_decls;
    tc "parse: do loop" test_parse_do_loop;
    tc "parse: do step" test_parse_do_step;
    tc "parse: if/else" test_parse_if_else;
    tc "parse: while" test_parse_while;
    tc "parse: subroutine and call" test_parse_subroutine_and_call;
    tc "parse: precedence" test_parse_precedence;
    tc "parse: relational chain rejected" test_parse_relational_chain_rejected;
    tc "parse: intrinsics" test_parse_intrinsics;
    tc "parse: missing end" test_parse_missing_end;
    tc "parse: array assign" test_parse_array_assign;
    tc "sema: ok program" test_sema_ok_program;
    tc "sema: undeclared var" test_sema_undeclared_var;
    tc "sema: undeclared array" test_sema_undeclared_array;
    tc "sema: rank mismatch" test_sema_rank_mismatch;
    tc "sema: real subscript" test_sema_real_subscript;
    tc "sema: real to int assign" test_sema_real_to_int_assign;
    tc "sema: int to real ok" test_sema_int_to_real_ok;
    tc "sema: logical if" test_sema_logical_if;
    tc "sema: do index must be int" test_sema_do_index_must_be_int;
    tc "sema: call arity" test_sema_call_arity;
    tc "sema: call array param" test_sema_call_array_param;
    tc "sema: scalar for array param" test_sema_scalar_for_array_param;
    tc "sema: duplicate decl" test_sema_duplicate_decl;
    tc "sema: two mains" test_sema_two_mains;
    tc "sema: no main" test_sema_no_main;
    tc "sema: param without decl" test_sema_param_without_decl;
    tc "sema: intrinsic reserved" test_sema_intrinsic_reserved;
    tc "sema: do index assignment rejected" test_sema_do_index_assignment_rejected;
    tc "sema: nested do index reuse rejected" test_sema_nested_do_index_reuse_rejected;
    tc "sema: do index assignment in if rejected" test_sema_do_index_assignment_in_if_rejected;
    tc "sema: do index free after loop" test_sema_do_index_free_after_loop;
  ]

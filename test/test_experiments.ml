(* Programmatic assertions of the paper's experimental conclusions
   (EXPERIMENTS.md records the full numbers). These run the actual
   harness on the 10-program suite, so they are the slowest tests — but
   they are what makes the reproduction a regression test rather than a
   one-off measurement. *)

open Util
module B = Nascent_benchmarks.Suite
module E = Nascent_harness.Experiments
module Config = Nascent_core.Config

let chars = lazy (E.characterize_all ())

let avg cells =
  List.fold_left (fun a (c : E.cell) -> a +. c.E.pct_eliminated) 0.0 cells
  /. float_of_int (List.length cells)

let cell_for (row : E.row) name =
  let names = List.map (fun (c : E.characteristics) -> c.E.bench.B.name) (Lazy.force chars) in
  List.nth row.E.cells
    (Option.get (List.find_index (fun n -> n = name) names))

let rows kind table = List.assoc kind table

let row label kind table =
  List.find (fun (r : E.row) -> r.E.label = label) (rows kind table)

(* Table 1 conclusion: the dynamic check/instruction ratio is tens of
   percent for every program — naive checking is expensive. *)
let test_table1_ratio_band () =
  List.iter
    (fun (c : E.characteristics) ->
      let r = 100.0 *. float_of_int c.E.dyn_checks /. float_of_int c.E.dyn_instrs in
      Alcotest.(check bool)
        (Fmt.str "%s ratio %.0f%% in [15, 90]" c.E.bench.B.name r)
        true
        (r >= 15.0 && r <= 90.0))
    (Lazy.force chars)

(* Table 1: suite structure matches the paper's framing. *)
let test_table1_structure () =
  let cs = Lazy.force chars in
  Alcotest.(check int) "ten programs" 10 (List.length cs);
  List.iter
    (fun (c : E.characteristics) ->
      Alcotest.(check bool)
        (Fmt.str "%s has loops" c.E.bench.B.name)
        true (c.E.loops > 0);
      Alcotest.(check bool)
        (Fmt.str "%s multi-unit" c.E.bench.B.name)
        true (c.E.subroutines >= 3))
    cs

let table2 = lazy (E.table2 (Lazy.force chars))

(* Table 2, conclusion 3: "loop-based optimizations that hoist checks
   out of loops are effective in eliminating about 98% of the range
   checks". *)
let test_lls_eliminates_most () =
  let lls = row "LLS" Config.PRX (Lazy.force table2) in
  Alcotest.(check bool) (Fmt.str "PRX LLS mean %.1f >= 94" (avg lls.E.cells)) true
    (avg lls.E.cells >= 94.0);
  List.iter2
    (fun (c : E.characteristics) (cell : E.cell) ->
      Alcotest.(check bool)
        (Fmt.str "%s LLS %.1f >= 85" c.E.bench.B.name cell.E.pct_eliminated)
        true
        (cell.E.pct_eliminated >= 85.0))
    (Lazy.force chars) lls.E.cells

(* Table 2, conclusion 4: "more sophisticated analysis and optimization
   algorithms produce very marginal benefits" — ALL barely beats LLS,
   and the PRE schemes barely beat NI. *)
let test_sophistication_is_marginal () =
  let t = Lazy.force table2 in
  let lls = row "LLS" Config.PRX t and all = row "ALL" Config.PRX t in
  Alcotest.(check bool)
    (Fmt.str "ALL - LLS = %.2f <= 1.0" (avg all.E.cells -. avg lls.E.cells))
    true
    (avg all.E.cells -. avg lls.E.cells <= 1.0);
  let ni = row "NI" Config.PRX t and se = row "SE" Config.PRX t in
  Alcotest.(check bool)
    (Fmt.str "SE - NI = %.2f <= 8" (avg se.E.cells -. avg ni.E.cells))
    true
    (avg se.E.cells -. avg ni.E.cells <= 8.0)

(* Scheme ordering per program: NI <= CS <= SE, LNI <= SE, NI <= LI <= LLS <= ALL
   (dynamic % eliminated; all schemes end with the same elimination pass). *)
let test_scheme_ordering () =
  let t = Lazy.force table2 in
  List.iter
    (fun kind ->
      let get label = row label kind t in
      List.iter
        (fun (c : E.characteristics) ->
          let p label = (cell_for (get label) c.E.bench.B.name).E.pct_eliminated in
          let name = c.E.bench.B.name in
          let le a b la lb =
            Alcotest.(check bool)
              (Fmt.str "%s/%s: %s (%.2f) <= %s (%.2f)" name (Config.kind_name kind) la a
                 lb b)
              true
              (a <= b +. 1e-9)
          in
          le (p "NI") (p "CS") "NI" "CS";
          le (p "NI") (p "LNI") "NI" "LNI";
          le (p "LNI") (p "SE") "LNI" "SE";
          le (p "NI") (p "LI") "NI" "LI";
          le (p "LI") (p "LLS") "LI" "LLS")
        (Lazy.force chars))
    [ Config.PRX; Config.INX ]

(* The paper's Q3 (does IV analysis help?): the trfd LI case — INX-LI
   eliminates substantially more than PRX-LI. *)
let test_inx_li_trfd_case () =
  let t = Lazy.force table2 in
  let prx = (cell_for (row "LI" Config.PRX t) "trfd").E.pct_eliminated in
  let inx = (cell_for (row "LI" Config.INX t) "trfd").E.pct_eliminated in
  Alcotest.(check bool)
    (Fmt.str "trfd: INX-LI (%.1f) >= PRX-LI (%.1f) + 5" inx prx)
    true
    (inx >= prx +. 5.0)

(* ... and INX is "never very bad": no scheme loses more than a few
   points moving from PRX to INX. *)
let test_inx_never_very_bad () =
  let t = Lazy.force table2 in
  List.iter
    (fun scheme ->
      let label = Config.scheme_name scheme in
      let prx = row label Config.PRX t and inx = row label Config.INX t in
      List.iter
        (fun (c : E.characteristics) ->
          let p = (cell_for prx c.E.bench.B.name).E.pct_eliminated in
          let i = (cell_for inx c.E.bench.B.name).E.pct_eliminated in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: INX %.1f >= PRX %.1f - 4" c.E.bench.B.name label i p)
            true
            (i >= p -. 4.0))
        (Lazy.force chars))
    Config.all_schemes

let table3 = lazy (E.table3 ~kinds:[ Config.PRX ] (Lazy.force chars))

(* Table 3: dropping implications costs only a few points... *)
let test_implications_marginal () =
  let t = Lazy.force table3 in
  let pairs = [ ("NI", "NI'"); ("SE", "SE'"); ("LLS", "LLS'") ] in
  List.iter
    (fun (a, b) ->
      let ra = row a Config.PRX t and rb = row b Config.PRX t in
      List.iter
        (fun (c : E.characteristics) ->
          let pa = (cell_for ra c.E.bench.B.name).E.pct_eliminated in
          let pb = (cell_for rb c.E.bench.B.name).E.pct_eliminated in
          Alcotest.(check bool)
            (Fmt.str "%s: %s (%.1f) loses <= 15 vs %s (%.1f)" c.E.bench.B.name b pb a pa)
            true
            (pa -. pb <= 15.0);
          Alcotest.(check bool)
            (Fmt.str "%s: %s never beats %s" c.E.bench.B.name b a)
            true
            (pb <= pa +. 1e-9))
        (Lazy.force chars))
    pairs

(* ... and the preheader->body coverage is the implication that
   matters: LLS' stays within a point of LLS. *)
let test_lls_prime_close () =
  let t = Lazy.force table3 in
  let lls = row "LLS" Config.PRX t and lls' = row "LLS'" Config.PRX t in
  List.iter
    (fun (c : E.characteristics) ->
      let a = (cell_for lls c.E.bench.B.name).E.pct_eliminated in
      let b = (cell_for lls' c.E.bench.B.name).E.pct_eliminated in
      Alcotest.(check bool)
        (Fmt.str "%s: LLS' (%.2f) within 1.5 of LLS (%.2f)" c.E.bench.B.name b a)
        true
        (a -. b <= 1.5))
    (Lazy.force chars)

(* Compile-time ordering (Table 2/3 Range column): NI is the cheapest
   scheme; the primed NI' costs at least as much as NI despite doing
   less (the paper's CIG-blow-up effect). *)
let test_compile_time_ordering () =
  let t = Lazy.force table2 in
  let range label = (row label Config.PRX t).E.total_range_s in
  Alcotest.(check bool)
    (Fmt.str "NI (%.4fs) cheapest vs ALL (%.4fs)" (range "NI") (range "ALL"))
    true
    (range "NI" <= range "ALL")

(* Extension: the MCM comparison the paper proposes in section 5 — the
   restricted 1982 algorithm must fall well short of LLS on the suite
   mean (that is the motivation for the paper's relaxations). *)
let test_mcm_below_lls () =
  let ext = E.extensions (Lazy.force chars) in
  let mcm = row "MCM" Config.PRX ext and lls = row "LLS" Config.PRX ext in
  Alcotest.(check bool)
    (Fmt.str "MCM mean %.1f << LLS mean %.1f" (avg mcm.E.cells) (avg lls.E.cells))
    true
    (avg mcm.E.cells +. 5.0 <= avg lls.E.cells)

let suite =
  [
    tc "table1: ratio band" test_table1_ratio_band;
    tc "extension: MCM below LLS" test_mcm_below_lls;
    tc "table1: structure" test_table1_structure;
    tc "table2: LLS eliminates most" test_lls_eliminates_most;
    tc "table2: sophistication marginal" test_sophistication_is_marginal;
    tc "table2: scheme ordering" test_scheme_ordering;
    tc "table2: INX-LI trfd case" test_inx_li_trfd_case;
    tc "table2: INX never very bad" test_inx_never_very_bad;
    tc "table3: implications marginal" test_implications_marginal;
    tc "table3: LLS' close to LLS" test_lls_prime_close;
    tc "compile-time ordering" test_compile_time_ordering;
  ]

(* The parallel experiment engine: Pool semantics, the Memo cache, and
   the determinism contract of the table harness.

   The load-bearing property is the differential one: the experiment
   tables must be STRUCTURALLY IDENTICAL whether computed serially
   (jobs=1), on a pool (jobs=4), or replayed from a warm cache — and
   the warm replay must be byte-identical (timing columns included)
   with zero re-optimizations. bench/main.exe check-determinism runs
   the same gate over the full suite in CI; this test pins it on a
   3-benchmark subset so `dune runtest` catches pool/cache bugs
   without CI. *)

module Pool = Nascent_support.Pool
module Memo = Nascent_support.Memo
module E = Nascent_harness.Experiments
module B = Nascent_benchmarks.Suite
module Config = Nascent_core.Config

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* --- Pool: ordering, clamping, iteration ------------------------------ *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  with_pool 4 @@ fun p ->
  Alcotest.(check (list int))
    "same as List.map" (List.map (fun x -> x * x) xs)
    (Pool.parallel_map p (fun x -> x * x) xs)

let test_jobs_clamped () =
  with_pool 0 (fun p -> Alcotest.(check int) "low clamp" 1 (Pool.jobs p));
  with_pool 1000 (fun p -> Alcotest.(check int) "high clamp" 64 (Pool.jobs p))

let test_serial_fallback () =
  with_pool 1 @@ fun p ->
  Alcotest.(check (list int))
    "jobs=1 is List.map" [ 2; 4; 6 ]
    (Pool.parallel_map p (fun x -> 2 * x) [ 1; 2; 3 ])

let test_iter_visits_all () =
  let sum = Atomic.make 0 in
  with_pool 4 @@ fun p ->
  Pool.parallel_iter p (fun x -> ignore (Atomic.fetch_and_add sum x)) (List.init 50 succ);
  Alcotest.(check int) "sum 1..50" 1275 (Atomic.get sum)

(* The caller drains its own batch, so a worker may itself submit a
   batch to the same pool without deadlocking. *)
let test_nested_map_no_deadlock () =
  with_pool 3 @@ fun p ->
  let outer =
    Pool.parallel_map p
      (fun i -> Pool.parallel_map p (fun j -> (10 * i) + j) [ 1; 2; 3 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (list int)))
    "nested result"
    (List.map (fun i -> List.map (fun j -> (10 * i) + j) [ 1; 2; 3 ]) [ 1; 2; 3; 4 ])
    outer

(* --- Pool ≡ List.map, exceptions included (qcheck) --------------------- *)

exception Boom of int

(* Observable behaviour of a map: its results, or the exception it
   raises. [f] raises on x ≡ 3 (mod 7); List.map raises for the FIRST
   such element in list order, and parallel_map must agree no matter
   which domain hits one first. *)
let observe map xs =
  let f x = if x mod 7 = 3 then raise (Boom x) else (2 * x) + 1 in
  match map f xs with ys -> Ok ys | exception Boom v -> Error v

let prop_map_equiv_list_map =
  QCheck.Test.make ~name:"parallel_map ≡ List.map (ordering + exceptions)"
    ~count:30
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 0 40) small_signed_int))
    (fun (jobs, xs) ->
      with_pool jobs @@ fun p ->
      observe List.map xs = observe (Pool.parallel_map p) xs)

(* --- Memo: counters, disk store, key discipline ------------------------ *)

let test_memo_hit_miss () =
  let m : int Memo.t = Memo.create ~name:"t-hit-miss" () in
  let k = Memo.key [ "a"; "b" ] in
  Alcotest.(check int) "miss computes" 41 (Memo.find_or_compute m ~key:k (fun () -> 41));
  Alcotest.(check int) "hit replays" 41
    (Memo.find_or_compute m ~key:k (fun () -> Alcotest.fail "recomputed on hit"));
  let s = Memo.stats m in
  Alcotest.(check int) "misses" 1 s.Memo.misses;
  Alcotest.(check int) "hits" 1 s.Memo.hits;
  Alcotest.(check int) "no disk" 0 s.Memo.disk_hits

let test_memo_key_injective_on_structure () =
  (* The component list, not its concatenation, is what is digested:
     ["ab"] and ["a"; "b"] must not collide. *)
  Alcotest.(check bool) "split differs" true (Memo.key [ "ab" ] <> Memo.key [ "a"; "b" ]);
  Alcotest.(check bool) "order matters" true (Memo.key [ "a"; "b" ] <> Memo.key [ "b"; "a" ])

let test_memo_disk_roundtrip () =
  let dir = Filename.temp_dir "nascent-memo" "" in
  let k = Memo.key [ "cell" ] in
  let m1 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-disk" () in
  Alcotest.(check int) "computed once" 7 (Memo.find_or_compute m1 ~key:k (fun () -> 7));
  (* A fresh memo (fresh process, morally) reads the value back from
     disk instead of recomputing. *)
  let m2 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-disk" () in
  Alcotest.(check int) "served from disk" 7
    (Memo.find_or_compute m2 ~key:k (fun () -> Alcotest.fail "recomputed despite disk store"));
  let s = Memo.stats m2 in
  Alcotest.(check int) "disk hit" 1 s.Memo.disk_hits;
  Alcotest.(check int) "no miss" 0 s.Memo.misses;
  Memo.clear_disk m2;
  let m3 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-disk" () in
  Alcotest.(check int) "recomputes after clear_disk" 8
    (Memo.find_or_compute m3 ~key:k (fun () -> 8))

(* A corrupt or truncated disk entry must degrade to a recompute (miss)
   and be moved aside to <dir>/quarantine/, never crash the lookup. *)
let test_memo_corrupt_entry_quarantined () =
  let dir = Filename.temp_dir "nascent-memo" "" in
  let k = Memo.key [ "cell" ] in
  let m1 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-corrupt" () in
  Alcotest.(check int) "computed once" 9 (Memo.find_or_compute m1 ~key:k (fun () -> 9));
  let entry = Filename.concat (Filename.concat dir "t-corrupt") k in
  Alcotest.(check bool) "entry persisted" true (Sys.file_exists entry);
  (* flip bits: valid magic, torn payload *)
  let contents = In_channel.with_open_bin entry In_channel.input_all in
  Out_channel.with_open_bin entry (fun oc ->
      output_string oc (String.sub contents 0 (String.length contents - 3));
      output_string oc "???");
  let m2 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-corrupt" () in
  Alcotest.(check int) "recomputed, not crashed" 10
    (Memo.find_or_compute m2 ~key:k (fun () -> 10));
  let s = Memo.stats m2 in
  Alcotest.(check int) "counted as miss" 1 s.Memo.misses;
  Alcotest.(check int) "counted as quarantined" 1 s.Memo.quarantined;
  Alcotest.(check int) "not a disk hit" 0 s.Memo.disk_hits;
  Alcotest.(check bool) "moved to quarantine/" true
    (Sys.file_exists (Filename.concat (Filename.concat dir "quarantine") ("t-corrupt." ^ k)));
  (* the recompute re-persisted a good entry: next memo disk-hits *)
  let m3 : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-corrupt" () in
  Alcotest.(check int) "healed entry served from disk" 10
    (Memo.find_or_compute m3 ~key:k (fun () -> Alcotest.fail "recomputed healed entry"));
  Alcotest.(check int) "disk hit after heal" 1 (Memo.stats m3).Memo.disk_hits

let test_memo_truncated_and_garbage_entries () =
  let dir = Filename.temp_dir "nascent-memo" "" in
  let m : int Memo.t = Memo.create ~disk_dir:dir ~name:"t-garbage" () in
  let write key bytes =
    let d = Filename.concat dir "t-garbage" in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    Out_channel.with_open_bin (Filename.concat d key) (fun oc -> output_string oc bytes)
  in
  (* hand-written hostile entries: empty, short, foreign magic, v1-era *)
  List.iteri
    (fun i bytes ->
      let k = Memo.key [ "g"; string_of_int i ] in
      write k bytes;
      Alcotest.(check int)
        (Printf.sprintf "garbage entry %d degrades to recompute" i)
        i
        (Memo.find_or_compute m ~key:k (fun () -> i)))
    [ ""; "NASC"; "totally unrelated bytes"; "NASCENT-MEMO.v1\nstale-format" ];
  let s = Memo.stats m in
  Alcotest.(check int) "all four quarantined" 4 s.Memo.quarantined;
  Alcotest.(check int) "all four missed" 4 s.Memo.misses

let test_config_cache_key_covers_verify () =
  let base = Config.make ~scheme:Config.LLS () in
  Alcotest.(check bool) "verify is part of the key" true
    (Config.cache_key { base with Config.verify = true }
    <> Config.cache_key { base with Config.verify = false });
  Alcotest.(check bool) "kind is part of the key" true
    (Config.cache_key (Config.make ~scheme:Config.LLS ~kind:Config.PRX ())
    <> Config.cache_key (Config.make ~scheme:Config.LLS ~kind:Config.INX ()));
  Alcotest.(check bool) "fault is part of the key" true
    (Config.cache_key (Config.make ())
    <> Config.cache_key
         (Config.make
            ~fault:{ Nascent_ir.Mutate.cls = Nascent_ir.Mutate.Drop_check; seed = 1 }
            ()))

(* --- the determinism contract of the table harness --------------------- *)

(* Same projection as bench/main.exe check-determinism: everything but
   the timing columns. *)
let structural_row (r : E.row) =
  ( r.E.label,
    Config.cache_key r.E.config,
    List.map
      (fun (c : E.cell) ->
        (c.E.dyn_checks_after, c.E.pct_eliminated, List.map fst c.E.pass_times,
         c.E.incidents))
      r.E.cells )

let structural tables =
  List.map
    (fun (kind, rows) -> (Config.kind_name kind, List.map structural_row rows))
    (List.concat tables)

let test_tables_deterministic_across_jobs () =
  (* 3-benchmark subset of the full suite, PRX only: enough to exercise
     every scheme and the row-major fan-out, cheap enough for tier 1. *)
  let chars = List.map E.characterize (List.filteri (fun i _ -> i < 3) B.all) in
  let tables () = [ E.table2 ~kinds:[ Config.PRX ] chars; E.table3 ~kinds:[ Config.PRX ] chars; E.extensions chars ] in
  let saved = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) @@ fun () ->
  E.reset_cell_cache ();
  Pool.set_default_jobs 1;
  let serial = tables () in
  let serial_misses = (E.cell_cache_stats ()).Memo.misses in
  Alcotest.(check bool) "serial run computed cells" true (serial_misses > 0);
  E.reset_cell_cache ();
  Pool.set_default_jobs 4;
  let parallel = tables () in
  Alcotest.(check bool) "jobs=1 and jobs=4 structurally equal" true
    (structural serial = structural parallel);
  (* Warm rerun: byte-identical rows (timings included, replayed from
     the cache) and zero re-optimizations. *)
  let before = (E.cell_cache_stats ()).Memo.misses in
  let warm = tables () in
  let after = (E.cell_cache_stats ()).Memo.misses in
  Alcotest.(check int) "zero re-optimizations on warm cache" 0 (after - before);
  Alcotest.(check bool) "warm rerun byte-identical" true (warm = parallel)

(* --- task_fuel watchdog on the serial path ----------------------------- *)

(* jobs=1 degrades to plain List.map, but the per-task watchdog must
   still be installed there: a pathological task has to fail with
   Fuel_exhausted on every pool size, not only when a worker domain
   runs it. *)
let test_task_fuel_serial_path () =
  with_pool 1 @@ fun p ->
  (match
     Pool.parallel_map ~task_fuel:100 p
       (fun x -> if x = 2 then Nascent_support.Guard.exhaust_ambient () else x)
       [ 1; 2; 3 ]
   with
  | _ -> Alcotest.fail "expected Fuel_exhausted on the serial path"
  | exception Nascent_support.Guard.Fuel_exhausted _ -> ());
  (* well-behaved tasks are unaffected by the watchdog *)
  Alcotest.(check (list int))
    "fueled serial map ≡ List.map" [ 2; 3; 4 ]
    (Pool.parallel_map ~task_fuel:1000 p (fun x -> x + 1) [ 1; 2; 3 ]);
  (* the budget is per task, not shared: each task may spend up to the
     full budget without starving its successors *)
  Alcotest.(check (list int))
    "budget renews per task" [ 90; 90; 90 ]
    (Pool.parallel_map ~task_fuel:100 p
       (fun _ ->
         for _ = 1 to 90 do
           Nascent_support.Guard.tick_ambient ()
         done;
         90)
       [ 1; 2; 3 ])

(* --- quarantine cap ----------------------------------------------------- *)

(* The quarantine is a bounded post-mortem buffer: a flaky disk feeding
   corrupt entries forever must not grow it without bound. Oldest
   entries (by mtime) are evicted first. *)
let test_quarantine_capped_evicts_oldest () =
  let dir = Filename.temp_dir "nascent-quar" "" in
  let m : int Memo.t = Memo.create ~disk_dir:dir ~quarantine_max:3 ~name:"t-cap" () in
  let sub = Filename.concat dir "t-cap" in
  Sys.mkdir sub 0o755;
  let keys =
    List.init 6 (fun i ->
        let k = Memo.key [ "cap"; string_of_int i ] in
        let path = Filename.concat sub k in
        Out_channel.with_open_bin path (fun oc -> output_string oc "corrupt");
        (* distinct, strictly increasing mtimes (rename preserves them,
           so quarantine age is the corruption's age) *)
        let t = 1000000.0 +. float_of_int i in
        Unix.utimes path t t;
        k)
  in
  (* trigger the six quarantines in write order *)
  List.iteri
    (fun i k ->
      Alcotest.(check int)
        (Printf.sprintf "corrupt entry %d degrades to recompute" i)
        i
        (Memo.find_or_compute m ~key:k (fun () -> i)))
    keys;
  Alcotest.(check int) "all six quarantined (counter)" 6 (Memo.stats m).Memo.quarantined;
  let qd = Filename.concat dir "quarantine" in
  let entries = Array.to_list (Sys.readdir qd) in
  Alcotest.(check int) "directory capped at 3" 3 (List.length entries);
  (* survivors are the NEWEST three by mtime: the last three corrupted *)
  let expected =
    List.filteri (fun i _ -> i >= 3) keys |> List.map (fun k -> "t-cap." ^ k)
  in
  Alcotest.(check (slist string compare)) "oldest evicted first" expected entries

let test_quarantine_zero_keeps_nothing () =
  let dir = Filename.temp_dir "nascent-quar0" "" in
  let m : int Memo.t = Memo.create ~disk_dir:dir ~quarantine_max:0 ~name:"t-zero" () in
  let sub = Filename.concat dir "t-zero" in
  Sys.mkdir sub 0o755;
  let k = Memo.key [ "only" ] in
  Out_channel.with_open_bin (Filename.concat sub k) (fun oc ->
      output_string oc "corrupt");
  Alcotest.(check int) "recomputed" 5 (Memo.find_or_compute m ~key:k (fun () -> 5));
  Alcotest.(check int) "counted" 1 (Memo.stats m).Memo.quarantined;
  let qd = Filename.concat dir "quarantine" in
  let kept = match Sys.readdir qd with es -> Array.length es | exception Sys_error _ -> 0 in
  Alcotest.(check int) "nothing retained" 0 kept

let suite =
  [
    Util.tc "map preserves order" test_map_preserves_order;
    Util.tc "jobs clamped" test_jobs_clamped;
    Util.tc "serial fallback" test_serial_fallback;
    Util.tc "iter visits all" test_iter_visits_all;
    Util.tc "nested map no deadlock" test_nested_map_no_deadlock;
    QCheck_alcotest.to_alcotest prop_map_equiv_list_map;
    Util.tc "memo hit/miss counters" test_memo_hit_miss;
    Util.tc "memo key injective on structure" test_memo_key_injective_on_structure;
    Util.tc "memo disk roundtrip" test_memo_disk_roundtrip;
    Util.tc "memo corrupt entry quarantined" test_memo_corrupt_entry_quarantined;
    Util.tc "memo truncated/garbage entries" test_memo_truncated_and_garbage_entries;
    Util.tc "config cache key covers verify" test_config_cache_key_covers_verify;
    Util.tc "task_fuel on the serial path" test_task_fuel_serial_path;
    Util.tc "quarantine capped, oldest evicted" test_quarantine_capped_evicts_oldest;
    Util.tc "quarantine_max=0 keeps nothing" test_quarantine_zero_keeps_nothing;
    Util.tc "tables deterministic across jobs" test_tables_deterministic_across_jobs;
  ]

(* Smoke tests for the experiment harness's rendering paths: the table
   printers and figure reproductions must produce the expected
   structure without raising. *)

open Util
module E = Nascent_harness.Experiments
module Report = Nascent_harness.Report
module Figures = Nascent_harness.Figures
module Config = Nascent_core.Config

let capture f =
  let buf = Buffer.create 4096 in
  let old = Format.get_formatter_output_functions () in
  Format.set_formatter_output_functions (Buffer.add_substring buf) (fun () -> ());
  Fun.protect
    ~finally:(fun () ->
      Format.print_flush ();
      let out, flush = old in
      Format.set_formatter_output_functions out flush)
    f;
  Buffer.contents buf

let contains ~affix s =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  go 0

let chars = lazy (E.characterize_all ())

let test_table1_render () =
  let s = capture (fun () -> Report.table1 (Lazy.force chars)) in
  List.iter
    (fun b -> Alcotest.(check bool) (b ^ " listed") true (contains ~affix:b s))
    [ "vortex"; "arc2d"; "simple" ];
  Alcotest.(check bool) "conclusion line" true (contains ~affix:"optimization is warranted" s)

let test_table2_render () =
  let cs = Lazy.force chars in
  let s = capture (fun () -> Report.table2 cs (E.table2 ~kinds:[ Config.PRX ] cs)) in
  List.iter
    (fun row -> Alcotest.(check bool) (row ^ " row") true (contains ~affix:row s))
    [ "NI"; "CS"; "LNI"; "SE"; "LLS"; "ALL" ];
  Alcotest.(check bool) "suite means" true (contains ~affix:"suite means" s)

let test_figures_render () =
  let s = capture Figures.all in
  Alcotest.(check bool) "figure 1" true (contains ~affix:"Figure 1" s);
  Alcotest.(check bool) "figure 5" true (contains ~affix:"Figure 5" s);
  Alcotest.(check bool) "figure 6" true (contains ~affix:"Figure 6" s);
  (* Figure 6's transformation must actually show conditional checks *)
  Alcotest.(check bool) "cond-checks shown" true (contains ~affix:"Cond-check" s);
  (* Figure 1's staged counts *)
  Alcotest.(check bool) "naive 4" true (contains ~affix:"(dynamic checks: 4)" s);
  Alcotest.(check bool) "NI 3" true (contains ~affix:"(dynamic checks: 3)" s);
  Alcotest.(check bool) "CS 2" true (contains ~affix:"(dynamic checks: 2)" s)

let test_canon_render () =
  let s = capture (fun () -> Report.canon (E.canon_ablation (Lazy.force chars))) in
  Alcotest.(check bool) "mentions gcd" true (contains ~affix:"gcd" s)

let suite =
  [
    tc "table1 renders" test_table1_render;
    tc "table2 renders" test_table2_render;
    tc "figures render" test_figures_render;
    tc "canon renders" test_canon_render;
  ]

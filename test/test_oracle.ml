(* The Fourier–Motzkin implication oracle (lib/checks/oracle.ml).

   Three angles:
   - soundness: a [true] answer is checked against a brute-force
     enumeration of a finite integer box — if the oracle claims
     [hyps |= goal] then no assignment in the box may satisfy the
     hypotheses and violate the goal;
   - coverage: everything the CIG proves syntactically (within-family
     constant comparison) the oracle proves too, and so is every
     nonnegative linear combination of the hypotheses (the rational
     Farkas certificates FM is complete for);
   - degradation: coefficient overflow and fuel exhaustion answer
     [false] ("unknown"), never raise, never wedge. *)

open Util
module Atom = Nascent_checks.Atom
module Linexpr = Nascent_checks.Linexpr
module Check = Nascent_checks.Check
module Oracle = Nascent_checks.Oracle
module G = QCheck.Gen

let atoms = Array.init 3 (fun k -> Atom.make ~key:k ~name:(Printf.sprintf "v%d" k))
let x = atoms.(0)
let y = atoms.(1)
let z = atoms.(2)

(* --- brute-force reference over a finite box -------------------------- *)

let eval env c =
  List.fold_left
    (fun acc (a, coeff) -> acc + (coeff * env.(Atom.key a)))
    0
    (Linexpr.terms (Check.lhs c))
  <= Check.constant c

(* [-4, 4]^3: 729 assignments, enough to falsify any wrong implication
   the small-coefficient generator below can express. *)
let dom = 4

let forall_env f =
  let ok = ref true in
  for vx = -dom to dom do
    for vy = -dom to dom do
      for vz = -dom to dom do
        if !ok && not (f [| vx; vy; vz |]) then ok := false
      done
    done
  done;
  !ok

let box_implies hyps goal =
  forall_env (fun env -> (not (List.for_all (eval env) hyps)) || eval env goal)

let box_unsat cs = forall_env (fun env -> not (List.for_all (eval env) cs))

(* --- generators ------------------------------------------------------- *)

let mk coeffs k =
  Check.make (Linexpr.of_terms (List.mapi (fun i c -> (atoms.(i), c)) coeffs)) k

let gen_check : Check.t G.t =
  G.map2 mk (G.list_repeat 3 (G.int_range (-3) 3)) (G.int_range (-8) 8)

let pp_check c = Fmt.str "%a" Check.pp c

let print_query (hyps, goal) =
  Printf.sprintf "hyps=[%s] goal=%s"
    (String.concat "; " (List.map pp_check hyps))
    (pp_check goal)

let arb_query =
  QCheck.make ~print:print_query
    (G.pair (G.list_size (G.int_range 0 4) gen_check) gen_check)

(* --- soundness vs the enumerator -------------------------------------- *)

(* The oracle answers over ALL integers, so a [true] must in particular
   hold on the box; a box counterexample would be a refutation bug. *)
let prop_implies_sound =
  QCheck.Test.make ~name:"oracle: implies sound vs brute force" ~count:500
    arb_query (fun (hyps, goal) ->
      (not (Oracle.implies ~hyps goal)) || box_implies hyps goal)

let prop_unsat_sound =
  QCheck.Test.make ~name:"oracle: unsat sound vs brute force" ~count:500
    (QCheck.make
       ~print:(fun cs -> String.concat "; " (List.map pp_check cs))
       (G.list_size (G.int_range 1 5) gen_check))
    (fun cs -> (not (Oracle.unsat cs)) || box_unsat cs)

(* --- coverage: oracle >= CIG ------------------------------------------ *)

(* The CIG's universally sound rule is the within-family constant
   comparison; whatever it proves, the decision procedure must too. *)
let prop_covers_within_family =
  QCheck.Test.make ~name:"oracle: proves every within-family implication"
    ~count:500
    (QCheck.make ~print:print_query
       (G.map3
          (fun coeffs k1 k2 -> ([ mk coeffs k1 ], mk coeffs k2))
          (G.list_repeat 3 (G.int_range (-3) 3))
          (G.int_range (-8) 8) (G.int_range (-8) 8)))
    (fun (hyps, goal) ->
      (not (Check.implies_within_family (List.hd hyps) goal))
      || Oracle.implies ~hyps goal)

(* Rational completeness: any goal that is a nonnegative combination of
   the hypotheses plus nonnegative slack carries a Farkas certificate,
   and Fourier–Motzkin is complete for those. This is exactly the class
   of cross-family implications the CIG cannot see syntactically. *)
let prop_proves_farkas_combinations =
  let gen =
    G.map3
      (fun hyps lambdas slack ->
        let lambdas = List.filteri (fun i _ -> i < List.length hyps) lambdas in
        let lhs =
          List.fold_left2
            (fun acc h l -> Linexpr.add acc (Linexpr.scale l (Check.lhs h)))
            Linexpr.zero hyps lambdas
        in
        let k =
          List.fold_left2 (fun acc h l -> acc + (l * Check.constant h)) 0 hyps lambdas
        in
        (hyps, Check.make lhs (k + slack)))
      (G.list_size (G.int_range 1 3) gen_check)
      (G.list_repeat 3 (G.int_range 0 2))
      (G.int_range 0 5)
  in
  QCheck.Test.make ~name:"oracle: proves nonneg combinations of hyps" ~count:500
    (QCheck.make ~print:print_query gen) (fun (hyps, goal) ->
      Oracle.implies ~hyps goal)

(* --- deterministic cross-family cases --------------------------------- *)

let upper a k = Check.make (Linexpr.of_atom a) k
let le a b = Check.make (Linexpr.sub (Linexpr.of_atom a) (Linexpr.of_atom b)) 0

let test_transitive_chain () =
  (* x <= y, y <= z, z <= 7 |- x <= 7: the preheader-conditional
     reasoning (LLS) that needs two eliminations. *)
  Alcotest.(check bool)
    "x<=y, y<=z, z<=7 |- x<=7" true
    (Oracle.implies ~hyps:[ le x y; le y z; upper z 7 ] (upper x 7));
  Alcotest.(check bool)
    "chain cannot prove x<=6" false
    (Oracle.implies ~hyps:[ le x y; le y z; upper z 7 ] (upper x 6))

let test_gcd_tightening () =
  (* 2x <= 9 |- x <= 4 needs the integer floor; rationally x <= 4.5. *)
  Alcotest.(check bool)
    "2x<=9 |- x<=4" true
    (Oracle.implies ~hyps:[ Check.make (Linexpr.of_atom ~coeff:2 x) 9 ] (upper x 4));
  Alcotest.(check bool)
    "2x<=9 /|- x<=3" false
    (Oracle.implies ~hyps:[ Check.make (Linexpr.of_atom ~coeff:2 x) 9 ] (upper x 3))

let test_scaling () =
  (* x <= 5 |- 2x <= 10: different family, one combination step. *)
  Alcotest.(check bool)
    "x<=5 |- 2x<=10" true
    (Oracle.implies ~hyps:[ upper x 5 ] (Check.make (Linexpr.of_atom ~coeff:2 x) 10))

let test_unsat_detects_empty_interval () =
  (* x <= 3 and -x <= -5 (x >= 5): empty. *)
  Alcotest.(check bool)
    "x<=3, x>=5 unsat" true
    (Oracle.unsat [ upper x 3; Check.make (Linexpr.of_atom ~coeff:(-1) x) (-5) ]);
  Alcotest.(check bool)
    "x<=3, x>=3 sat" false
    (Oracle.unsat [ upper x 3; Check.make (Linexpr.of_atom ~coeff:(-1) x) (-3) ])

(* --- degradation: overflow and fuel are "unknown", not exceptions ----- *)

let test_overflow_is_unknown () =
  (* Eliminating x from [2x + y <= max_int-1] and the negated goal
     [-3x - y <= -1] scales the constant by 3, which overflows; the
     other elimination order projects the system to a satisfiable one.
     Either way the answer is false and no exception may escape. *)
  let h = mk [ 2; 1; 0 ] (max_int - 1) in
  Alcotest.(check bool)
    "overflowing combination is unknown" false
    (Oracle.implies ~hyps:[ h ] (mk [ 3; 1; 0 ] 0));
  (* Negating a min_int-constant goal overflows before elimination. *)
  Alcotest.(check bool)
    "un-negatable goal is unknown" false
    (Oracle.implies ~hyps:[ upper x 0 ] (Check.make (Linexpr.of_atom y) min_int))

(* Wild coefficients and constants: whatever they are, the oracle call
   must return a boolean — Overflow, fuel exhaustion and constraint
   blowup all degrade to "unknown" internally. *)
let prop_huge_inputs_never_raise =
  let gen_wild_int =
    G.oneof
      [
        G.int_range (-3) 3;
        G.oneofl [ max_int; min_int; max_int / 2; min_int / 2; max_int - 1 ];
      ]
  in
  let gen_wild_check =
    G.map2 mk (G.list_repeat 3 gen_wild_int) gen_wild_int
  in
  QCheck.Test.make ~name:"oracle: huge inputs never raise" ~count:300
    (QCheck.make ~print:print_query
       (G.pair (G.list_size (G.int_range 0 4) gen_wild_check) gen_wild_check))
    (fun (hyps, goal) ->
      let (_ : bool) = Oracle.implies ~hyps goal in
      let (_ : bool) = Oracle.unsat (goal :: hyps) in
      true)

let test_fuel_budget_positive () =
  Alcotest.(check bool) "fuel budget positive" true (Oracle.fuel_budget > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_implies_sound;
    QCheck_alcotest.to_alcotest prop_unsat_sound;
    QCheck_alcotest.to_alcotest prop_covers_within_family;
    QCheck_alcotest.to_alcotest prop_proves_farkas_combinations;
    tc "oracle: transitive chain" test_transitive_chain;
    tc "oracle: gcd tightening" test_gcd_tightening;
    tc "oracle: cross-family scaling" test_scaling;
    tc "oracle: unsat interval" test_unsat_detects_empty_interval;
    tc "oracle: overflow degrades to unknown" test_overflow_is_unknown;
    QCheck_alcotest.to_alcotest prop_huge_inputs_never_raise;
    tc "oracle: fuel budget positive" test_fuel_budget_positive;
  ]

(* End-to-end tests of lowering + the instrumented interpreter on
   naive-checked programs. *)

open Util

let test_arith () =
  let o = run_source "program t\ninteger x\nx = 2 + 3 * 4\nprint x\nend" in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 14 ] (printed_ints o)

let test_real_arith () =
  let o = run_source "program t\nreal x\nx = 1.5 * 4.0\nprint x\nend" in
  check_no_trap o;
  match o.printed with
  | [ Nascent_interp.Value.VReal f ] -> Alcotest.(check (float 1e-9)) "x" 6.0 f
  | _ -> Alcotest.fail "expected one real"

let test_int_promotes_to_real () =
  let o = run_source "program t\nreal x\nx = 1 + 0.5\nprint x\nend" in
  check_no_trap o;
  match o.printed with
  | [ Nascent_interp.Value.VReal f ] -> Alcotest.(check (float 1e-9)) "x" 1.5 f
  | _ -> Alcotest.fail "expected one real"

let test_intrinsics () =
  let o =
    run_source
      "program t\ninteger x\nx = mod(7, 3) + min(4, 2) + max(4, 2) + abs(-3)\nprint x\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 1 + 2 + 4 + 3 ] (printed_ints o)

let test_if_branches () =
  let o =
    run_source
      "program t\ninteger n, r\nn = 5\nif n > 3 then\nr = 1\nelse\nr = 2\nendif\nprint r\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 1 ] (printed_ints o)

let test_do_loop_sum () =
  let o =
    run_source
      "program t\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + i\nenddo\nprint s\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 55 ] (printed_ints o)

let test_do_loop_zero_trip () =
  let o =
    run_source
      "program t\ninteger i, s\ns = 0\ndo i = 5, 1\ns = s + 1\nenddo\nprint s\nprint i\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 0; 5 ] (printed_ints o)

let test_do_loop_negative_step () =
  let o =
    run_source
      "program t\ninteger i, s\ns = 0\ndo i = 10, 1, -2\ns = s + i\nenddo\nprint s\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 10 + 8 + 6 + 4 + 2 ] (printed_ints o)

let test_do_bounds_evaluated_once () =
  (* Fortran semantics: modifying n inside the loop does not change the
     trip count. *)
  let o =
    run_source
      "program t\ninteger i, n, s\nn = 5\ns = 0\ndo i = 1, n\nn = 0\ns = s + 1\nenddo\nprint s\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 5 ] (printed_ints o)

let test_while_loop () =
  let o =
    run_source
      "program t\ninteger n\nn = 1\nwhile n < 100 do\nn = n * 2\nendwhile\nprint n\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 128 ] (printed_ints o)

let test_array_store_load () =
  let o =
    run_source
      "program t\ninteger i, a(1:10)\ndo i = 1, 10\na(i) = i * i\nenddo\nprint a(7)\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 49 ] (printed_ints o)

let test_array_nonunit_lower_bound () =
  let o =
    run_source
      "program t\ninteger a(5:10)\na(5) = 1\na(10) = 2\nprint a(5) + a(10)\nend"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 3 ] (printed_ints o)

let test_array_2d () =
  let o =
    run_source
      "program t\n\
       integer i, j, m(1:3, 1:4)\n\
       do i = 1, 3\n\
       do j = 1, 4\n\
       m(i, j) = 10 * i + j\n\
       enddo\n\
       enddo\n\
       print m(2, 3)\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 23 ] (printed_ints o)

let test_trap_upper () =
  let o = run_source "program t\ninteger a(1:10), n\nn = 11\na(n) = 0\nend" in
  trap_expected o

let test_trap_lower () =
  let o = run_source "program t\ninteger a(5:10), n\nn = 4\na(n) = 0\nend" in
  trap_expected o

let test_trap_on_load () =
  let o = run_source "program t\ninteger a(1:10), n, x\nn = 0\nx = a(n)\nend" in
  trap_expected o

let test_no_trap_at_bounds () =
  let o = run_source "program t\ninteger a(1:10)\na(1) = 1\na(10) = 1\nend" in
  check_no_trap o

let test_checks_counted () =
  (* 10 iterations, 1 store with 1 dim = 2 checks per iteration. *)
  let o =
    run_source "program t\ninteger i, a(1:10)\ndo i = 1, 10\na(i) = 0\nenddo\nend"
  in
  check_no_trap o;
  Alcotest.(check int) "dynamic checks" 20 o.checks

let test_checks_counted_2d () =
  let o =
    run_source
      "program t\ninteger i, m(1:3, 1:4)\ndo i = 1, 3\nm(i, 2) = 0\nenddo\nend"
  in
  check_no_trap o;
  Alcotest.(check int) "dynamic checks" (3 * 4) o.checks

let test_symbolic_bounds () =
  let o =
    run_source
      "program t\n\
       integer n\n\
       n = 6\n\
       call fill(n)\n\
       end\n\
       subroutine fill(n)\n\
       integer n, i, a(1:n)\n\
       do i = 1, n\n\
       a(i) = i\n\
       enddo\n\
       print a(n)\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 6 ] (printed_ints o)

let test_symbolic_bounds_fixed_at_entry () =
  (* Reassigning n inside the subroutine must not move the array bound:
     a is dimensioned with the entry value of n. *)
  let o =
    run_source
      "program t\n\
       integer n\n\
       n = 6\n\
       call f(n)\n\
       end\n\
       subroutine f(n)\n\
       integer n, a(1:n)\n\
       n = 3\n\
       a(5) = 1\n\
       print a(5)\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 1 ] (printed_ints o)

let test_call_scalar_by_value () =
  let o =
    run_source
      "program t\n\
       integer n\n\
       n = 5\n\
       call bump(n)\n\
       print n\n\
       end\n\
       subroutine bump(k)\n\
       integer k\n\
       k = k + 1\n\
       print k\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 6; 5 ] (printed_ints o)

let test_call_array_by_reference () =
  let o =
    run_source
      "program t\n\
       integer a(1:5)\n\
       call setone(a)\n\
       print a(3)\n\
       end\n\
       subroutine setone(b)\n\
       integer i, b(1:5)\n\
       do i = 1, 5\n\
       b(i) = 1\n\
       enddo\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 1 ] (printed_ints o)

let test_division_by_zero_is_error () =
  let o = run_source "program t\ninteger x, y\ny = 0\nx = 1 / y\nend" in
  Alcotest.(check bool) "error" true (o.error <> None);
  Alcotest.(check (option string)) "no trap" None o.trap

(* The unhappy paths must keep their classification AND their counters
   honest — cached cells replay these counters, so they are pinned
   here. A range violation is a trap even when the same statement would
   also divide by zero: the check runs first. *)
let test_trap_beats_division_error () =
  let o =
    run_source
      "program t\ninteger a(1:10), n, z, x\nn = 11\nz = 0\nx = a(n) / z\nend"
  in
  trap_expected o;
  Alcotest.(check (option string)) "no error" None o.error

(* ... and when the subscript is in range, the division error is
   reported as an error, with the preceding checks still counted. *)
let test_error_keeps_check_counters () =
  let o =
    run_source
      "program t\ninteger a(1:10), n, z, x\nn = 10\nz = 0\nx = a(n) / z\nend"
  in
  Alcotest.(check bool) "error" true (o.error <> None);
  Alcotest.(check (option string)) "no trap" None o.trap;
  Alcotest.(check int) "checks before the error are counted" 2 o.checks

(* A Cond_check whose guard is false evaluates the guard (counted in
   cond_guards and instruction units) but performs NO range check. LLS
   on a zero-trip loop produces exactly this shape: the hoisted
   preheader checks are guarded by the trip condition. *)
let optimize_lls src =
  let ir = ir_of_source src in
  let opt, _ =
    Nascent_core.Optimizer.optimize
      ~config:(Nascent_core.Config.make ~scheme:Nascent_core.Config.LLS ())
      ir
  in
  opt

let test_cond_check_guard_false_not_counted () =
  let opt =
    optimize_lls
      "program t\ninteger i, n, a(1:10)\nn = 0\ndo i = 1, n\na(i) = i\nenddo\nend"
  in
  let o = Nascent_interp.Run.run opt in
  check_no_trap o;
  Alcotest.(check bool) "guard evaluated" true (o.cond_guards > 0);
  Alcotest.(check int) "no check counted" 0 o.checks

let test_cond_check_guard_true_counted () =
  let opt =
    optimize_lls
      "program t\ninteger i, n, a(1:10)\nn = 10\ndo i = 1, n\na(i) = i\nenddo\nend"
  in
  let o = Nascent_interp.Run.run opt in
  check_no_trap o;
  Alcotest.(check bool) "guard evaluated" true (o.cond_guards > 0);
  Alcotest.(check bool) "guarded check performed" true (o.checks > 0);
  Alcotest.(check bool) "fewer than naive's 20" true (o.checks < 20)

let test_fuel_exhaustion () =
  let o =
    run_source ~fuel:1000 "program t\ninteger n\nwhile 1 < 2 do\nn = n + 1\nendwhile\nend"
  in
  Alcotest.(check bool) "fuel exhausted" true o.fuel_exhausted

(* Fuel exhaustion is reported as neither trap nor error, and the
   counters accumulated up to the cutoff survive into the outcome. *)
let test_fuel_exhaustion_counters () =
  let o =
    run_source ~fuel:500
      "program t\ninteger a(1:10)\nwhile 1 < 2 do\na(1) = 1\nendwhile\nend"
  in
  Alcotest.(check bool) "fuel exhausted" true o.fuel_exhausted;
  Alcotest.(check (option string)) "no trap" None o.trap;
  Alcotest.(check (option string)) "no error" None o.error;
  Alcotest.(check bool) "checks counted up to cutoff" true (o.checks > 0);
  Alcotest.(check bool) "instrs counted up to cutoff" true
    (o.instrs > 0 && o.instrs <= 500)

let test_return_stops_unit () =
  let o = run_source "program t\ninteger n\nn = 1\nprint n\nreturn\nprint 2\nend" in
  check_no_trap o;
  Alcotest.(check (list int)) "output" [ 1 ] (printed_ints o)

let test_strip_checks () =
  let ir = ir_of_source "program t\ninteger i, a(1:10)\ndo i = 1, 10\na(i) = 0\nenddo\nend" in
  let bare = Nascent_ir.Transform.strip_checks ir in
  let o = Nascent_interp.Run.run bare in
  Alcotest.(check int) "no checks" 0 o.checks;
  let o2 = Nascent_interp.Run.run ir in
  Alcotest.(check int) "original unchanged" 20 o2.checks

let test_instr_counts_positive () =
  let o = run_source "program t\ninteger x\nx = 1\nend" in
  Alcotest.(check bool) "instrs > 0" true (o.instrs > 0)

let suite =
  [
    tc "arith" test_arith;
    tc "real arith" test_real_arith;
    tc "int promotes to real" test_int_promotes_to_real;
    tc "intrinsics" test_intrinsics;
    tc "if branches" test_if_branches;
    tc "do loop sum" test_do_loop_sum;
    tc "do loop zero trip" test_do_loop_zero_trip;
    tc "do loop negative step" test_do_loop_negative_step;
    tc "do bounds evaluated once" test_do_bounds_evaluated_once;
    tc "while loop" test_while_loop;
    tc "array store/load" test_array_store_load;
    tc "array non-unit lower bound" test_array_nonunit_lower_bound;
    tc "array 2d" test_array_2d;
    tc "trap: upper" test_trap_upper;
    tc "trap: lower" test_trap_lower;
    tc "trap: on load" test_trap_on_load;
    tc "no trap at bounds" test_no_trap_at_bounds;
    tc "checks counted" test_checks_counted;
    tc "checks counted 2d" test_checks_counted_2d;
    tc "symbolic bounds" test_symbolic_bounds;
    tc "symbolic bounds fixed at entry" test_symbolic_bounds_fixed_at_entry;
    tc "call: scalar by value" test_call_scalar_by_value;
    tc "call: array by reference" test_call_array_by_reference;
    tc "division by zero is error" test_division_by_zero_is_error;
    tc "trap beats division error" test_trap_beats_division_error;
    tc "error keeps check counters" test_error_keeps_check_counters;
    tc "cond check guard false not counted" test_cond_check_guard_false_not_counted;
    tc "cond check guard true counted" test_cond_check_guard_true_counted;
    tc "fuel exhaustion" test_fuel_exhaustion;
    tc "fuel exhaustion counters" test_fuel_exhaustion_counters;
    tc "return stops unit" test_return_stops_unit;
    tc "strip checks" test_strip_checks;
    tc "instr counts positive" test_instr_counts_positive;
  ]

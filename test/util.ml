(* Shared helpers for the test suites. *)

module Frontend = Nascent_frontend.Frontend
module Ast = Nascent_frontend.Ast
module Ir = Nascent_ir
module Interp = Nascent_interp

let analyze_exn = Frontend.analyze_exn

(* Source text -> naive-checked IR. *)
let ir_of_source src = Ir.Lower.of_source src

let run_source ?fuel src = Interp.Run.run ?fuel (ir_of_source src)

let check_no_trap (o : Interp.Run.outcome) =
  Alcotest.(check (option string)) "no trap" None o.trap;
  Alcotest.(check (option string)) "no error" None o.error;
  Alcotest.(check bool) "fuel ok" false o.fuel_exhausted

let printed_ints (o : Interp.Run.outcome) =
  List.map
    (function
      | Interp.Value.VInt n -> n
      | v -> Alcotest.failf "expected integer output, got %a" Interp.Value.pp v)
    o.printed

let trap_expected (o : Interp.Run.outcome) =
  match o.trap with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a range-check trap"

let tc name f = Alcotest.test_case name `Quick f

(* Canonical range expressions, checks, families, the check implication
   graph (paper Figures 3/4), and frozen universes. *)

open Util
module Atom = Nascent_checks.Atom
module Linexpr = Nascent_checks.Linexpr
module Check = Nascent_checks.Check
module Cig = Nascent_checks.Cig
module Universe = Nascent_checks.Universe
module Bitset = Nascent_support.Bitset

let atom k name = Atom.make ~key:k ~name
let x = atom 0 "x"
let y = atom 1 "y"
let z = atom 2 "z"

(* --- Linexpr ---------------------------------------------------------- *)

let test_linexpr_add_cancel () =
  let a = Linexpr.of_terms [ (x, 2); (y, 3) ] in
  let b = Linexpr.of_terms [ (x, -2); (y, 1) ] in
  let s = Linexpr.add a b in
  Alcotest.(check int) "x gone" 0 (Linexpr.coeff_of s x);
  Alcotest.(check int) "y = 4" 4 (Linexpr.coeff_of s y);
  Alcotest.(check bool) "sub self is zero" true (Linexpr.is_zero (Linexpr.sub a a))

let test_linexpr_canonical_order () =
  (* construction order must not matter *)
  let a = Linexpr.of_terms [ (y, 1); (x, 2); (z, -1) ] in
  let b = Linexpr.of_terms [ (z, -1); (x, 2); (y, 1) ] in
  Alcotest.(check bool) "equal" true (Linexpr.equal a b);
  Alcotest.(check int) "compare" 0 (Linexpr.compare a b)

let test_linexpr_scale_subst () =
  let a = Linexpr.of_terms [ (x, 2); (y, 1) ] in
  let s = Linexpr.scale 3 a in
  Alcotest.(check int) "6x" 6 (Linexpr.coeff_of s x);
  (* substitute x := y - (represented as linexpr [y]) *)
  let t = Linexpr.subst a x (Linexpr.of_atom y) in
  Alcotest.(check int) "x gone" 0 (Linexpr.coeff_of t x);
  Alcotest.(check int) "y = 1 + 2" 3 (Linexpr.coeff_of t y)

let test_linexpr_gcd () =
  Alcotest.(check int) "gcd" 6 (Linexpr.coeff_gcd (Linexpr.of_terms [ (x, 6); (y, -12) ]));
  Alcotest.(check int) "gcd zero" 0 (Linexpr.coeff_gcd Linexpr.zero)

let prop_add_commutative =
  let gen =
    QCheck.(small_list (pair (int_bound 5) (int_range (-4) 4)))
  in
  QCheck.Test.make ~name:"linexpr addition commutes" (QCheck.pair gen gen)
    (fun (ts1, ts2) ->
      let mk ts = Linexpr.of_terms (List.map (fun (k, c) -> (atom k (Printf.sprintf "v%d" k), c)) ts) in
      let a = mk ts1 and b = mk ts2 in
      Linexpr.equal (Linexpr.add a b) (Linexpr.add b a))

let prop_of_terms_idempotent =
  let gen = QCheck.(small_list (pair (int_bound 5) (int_range (-4) 4))) in
  QCheck.Test.make ~name:"linexpr of_terms/terms roundtrip canonical" gen (fun ts ->
      let mk ts = Linexpr.of_terms (List.map (fun (k, c) -> (atom k (Printf.sprintf "v%d" k), c)) ts) in
      let a = mk ts in
      Linexpr.equal a (Linexpr.of_terms (Linexpr.terms a)))

(* --- Check ------------------------------------------------------------ *)

let test_check_canonical_fig1 () =
  (* paper Figure 1: 2*N <= 10 and 2*N-1 <= 10 share a family with
     constants 10 and 11 *)
  let n = atom 7 "n" in
  let c2 = Check.upper ~sub:(Linexpr.of_atom ~coeff:2 n, 0) ~bound:(Linexpr.zero, 10) in
  let c4 = Check.upper ~sub:(Linexpr.of_atom ~coeff:2 n, -1) ~bound:(Linexpr.zero, 10) in
  Alcotest.(check bool) "same family" true (Check.same_family c2 c4);
  Alcotest.(check int) "c2 const" 10 (Check.constant c2);
  Alcotest.(check int) "c4 const" 11 (Check.constant c4);
  Alcotest.(check bool) "c2 => c4" true (Check.implies_within_family c2 c4);
  Alcotest.(check bool) "c4 /=> c2" false (Check.implies_within_family c4 c2)

let test_check_lower_negation () =
  (* lower bound check lo <= sub becomes -sub <= -lo *)
  let i = atom 8 "i" in
  let c = Check.lower ~sub:(Linexpr.of_atom i, 1) ~bound:(Linexpr.zero, 4) in
  (* i+1 >= 4  <=>  -i <= -3 *)
  Alcotest.(check int) "const" (-3) (Check.constant c);
  Alcotest.(check int) "coeff" (-1) (Linexpr.coeff_of (Check.lhs c) i)

let test_check_symbolic_bound () =
  (* i + 1 <= 4*n  becomes  i - 4n <= -1 (the paper's section 2.2 example) *)
  let i = atom 8 "i" and n = atom 7 "n" in
  let c =
    Check.upper ~sub:(Linexpr.of_atom i, 1) ~bound:(Linexpr.of_atom ~coeff:4 n, 0)
  in
  Alcotest.(check int) "const" (-1) (Check.constant c);
  Alcotest.(check int) "i coeff" 1 (Linexpr.coeff_of (Check.lhs c) i);
  Alcotest.(check int) "n coeff" (-4) (Linexpr.coeff_of (Check.lhs c) n)

let test_check_compile_time () =
  let t = Check.make Linexpr.zero 3 in
  let f = Check.make Linexpr.zero (-1) in
  let sym = Check.make (Linexpr.of_atom x) 3 in
  Alcotest.(check (option bool)) "true" (Some true) (Check.compile_time_value t);
  Alcotest.(check (option bool)) "false" (Some false) (Check.compile_time_value f);
  Alcotest.(check (option bool)) "symbolic" None (Check.compile_time_value sym)

let test_check_gcd_normalize () =
  let c = Check.make (Linexpr.of_atom ~coeff:2 x) 11 in
  let g = Check.gcd_normalize c in
  Alcotest.(check int) "coeff 1" 1 (Linexpr.coeff_of (Check.lhs g) x);
  Alcotest.(check int) "floor(11/2)" 5 (Check.constant g);
  (* negative constants floor too: 2x <= -3 <=> x <= -2 *)
  let g2 = Check.gcd_normalize (Check.make (Linexpr.of_atom ~coeff:2 x) (-3)) in
  Alcotest.(check int) "floor(-3/2)" (-2) (Check.constant g2)

let prop_gcd_preserves_integer_solutions =
  QCheck.Test.make ~name:"gcd normalization preserves satisfaction"
    QCheck.(triple (int_range 1 6) (int_range (-30) 30) (int_range (-20) 20))
    (fun (coef, k, v) ->
      let c = Check.make (Linexpr.of_atom ~coeff:coef x) k in
      let g = Check.gcd_normalize c in
      let sat (chk : Check.t) =
        Linexpr.coeff_of (Check.lhs chk) x * v <= Check.constant chk
      in
      sat c = sat g)

(* --- CIG (paper Figures 3/4) ------------------------------------------ *)

let test_cig_within_family () =
  let cig = Cig.create () in
  let c1 = Check.make (Linexpr.of_atom x) 5 in
  let c2 = Check.make (Linexpr.of_atom x) 9 in
  let f1 = Cig.family_of_check cig c1 and f2 = Cig.family_of_check cig c2 in
  Alcotest.(check int) "same family" f1 f2;
  Alcotest.(check bool) "strong" true (Cig.as_strong_as cig ~strong:(f1, 5) ~weak:(f2, 9));
  Alcotest.(check bool) "not strong" false
    (Cig.as_strong_as cig ~strong:(f1, 9) ~weak:(f2, 5))

let test_cig_figure4 () =
  (* paper Figure 4: from Check(n <= 6) => Check(m <= 10) infer an edge
     of weight 4; then Check(n <= 1) is as strong as Check(m <= 7) but
     NOT as strong as Check(m <= 3). *)
  let cig = Cig.create () in
  let n = Linexpr.of_atom (atom 20 "n") and m = Linexpr.of_atom (atom 21 "m") in
  Cig.add_implication cig ~from:(Check.make n 6) ~to_:(Check.make m 10);
  let fn = Cig.family_of_expr cig n and fm = Cig.family_of_expr cig m in
  Alcotest.(check bool) "n<=1 => m<=7" true
    (Cig.as_strong_as cig ~strong:(fn, 1) ~weak:(fm, 7));
  Alcotest.(check bool) "n<=1 /=> m<=3" false
    (Cig.as_strong_as cig ~strong:(fn, 1) ~weak:(fm, 3));
  Alcotest.(check bool) "no reverse edge" false
    (Cig.as_strong_as cig ~strong:(fm, 0) ~weak:(fn, 100))

let test_cig_min_weight_kept () =
  let cig = Cig.create () in
  let n = Linexpr.of_atom (atom 20 "n") and m = Linexpr.of_atom (atom 21 "m") in
  Cig.add_implication cig ~from:(Check.make n 0) ~to_:(Check.make m 8);
  Cig.add_implication cig ~from:(Check.make n 0) ~to_:(Check.make m 3);
  let fn = Cig.family_of_expr cig n and fm = Cig.family_of_expr cig m in
  (* the tighter weight-3 edge must win *)
  Alcotest.(check (option int)) "weight" (Some 3) (Cig.path_weight cig fn fm)

let test_cig_transitive_path () =
  let cig = Cig.create () in
  let a = Linexpr.of_atom (atom 30 "a")
  and b = Linexpr.of_atom (atom 31 "b")
  and c = Linexpr.of_atom (atom 32 "c") in
  Cig.add_implication cig ~from:(Check.make a 0) ~to_:(Check.make b 2);
  Cig.add_implication cig ~from:(Check.make b 0) ~to_:(Check.make c 5);
  let fa = Cig.family_of_expr cig a and fc = Cig.family_of_expr cig c in
  Alcotest.(check (option int)) "path weight 7" (Some 7) (Cig.path_weight cig fa fc);
  Alcotest.(check bool) "a<=1 => c<=8" true
    (Cig.as_strong_as cig ~strong:(fa, 1) ~weak:(fc, 8));
  Alcotest.(check bool) "a<=2 /=> c<=8" false
    (Cig.as_strong_as cig ~strong:(fa, 2) ~weak:(fc, 8))

let prop_cig_strength_preorder =
  (* as-strong-as is reflexive and transitive over a random CIG *)
  (* nonnegative weights: negative cycles would make shortest paths
     ill-defined (the implementation saturates conservatively, but the
     triangle inequality the property relies on needs convergence) *)
  let edge_gen = QCheck.(triple (int_bound 4) (int_bound 4) (int_bound 5)) in
  QCheck.Test.make ~name:"cig strength is a preorder" (QCheck.small_list edge_gen)
    (fun edges ->
      let cig = Cig.create () in
      let fam i = Linexpr.of_atom (atom (50 + i) (Printf.sprintf "f%d" i)) in
      let fams = Array.init 5 (fun i -> Cig.family_of_expr cig (fam i)) in
      List.iter
        (fun (f, g, w) ->
          if f <> g then
            Cig.add_implication cig
              ~from:(Check.make (fam f) 0)
              ~to_:(Check.make (fam g) w))
        edges;
      let checks = List.concat_map (fun f -> [ (fams.(f), 0); (fams.(f), 3) ]) [ 0; 1; 2; 3; 4 ] in
      let strong a b = Cig.as_strong_as cig ~strong:a ~weak:b in
      List.for_all (fun c -> strong c c) checks
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun c -> (not (strong a b && strong b c)) || strong a c)
                   checks)
               checks)
           checks)

(* --- Universe ---------------------------------------------------------- *)

let mk_universe mode checks =
  let cig = Cig.create () in
  Universe.build ~cig ~mode checks

let test_universe_dedup () =
  let c = Check.make (Linexpr.of_atom x) 5 in
  let uni = mk_universe Universe.All_implications [ c; c; c ] in
  Alcotest.(check int) "one check" 1 (Universe.size uni)

let test_universe_avail_gen_modes () =
  let c5 = Check.make (Linexpr.of_atom x) 5 in
  let c9 = Check.make (Linexpr.of_atom x) 9 in
  let test mode expected =
    let uni = mk_universe mode [ c5; c9 ] in
    let i5 = Universe.index_of_exn uni c5 in
    let i9 = Universe.index_of_exn uni c9 in
    let gen = Universe.avail_gen uni i5 in
    Alcotest.(check bool)
      (Fmt.str "strong gens weak under %s" (Universe.mode_name mode))
      expected (Bitset.mem gen i9);
    (* the weak check never generates the strong one *)
    Alcotest.(check bool) "weak does not gen strong" false
      (Bitset.mem (Universe.avail_gen uni i9) i5)
  in
  test Universe.All_implications true;
  test Universe.No_implications false;
  test Universe.Cross_family_only false

let test_universe_ant_gen_same_family_only () =
  let cig = Cig.create () in
  let n = Linexpr.of_atom (atom 20 "n") and m = Linexpr.of_atom (atom 21 "m") in
  let cn = Check.make n 0 and cm = Check.make m 10 in
  Cig.add_implication cig ~from:cn ~to_:cm;
  let uni = Universe.build ~cig ~mode:Universe.All_implications [ cn; cm ] in
  let i_n = Universe.index_of_exn uni cn and i_m = Universe.index_of_exn uni cm in
  (* availability crosses families via the CIG edge ... *)
  Alcotest.(check bool) "avail crosses" true (Bitset.mem (Universe.avail_gen uni i_n) i_m);
  (* ... anticipatability does not (the paper's stronger condition) *)
  Alcotest.(check bool) "ant does not" false (Bitset.mem (Universe.ant_gen uni i_n) i_m)

let test_universe_kills () =
  let c = Check.make (Linexpr.of_terms [ (x, 1); (y, -2) ]) 5 in
  let uni = mk_universe Universe.All_implications [ c ] in
  let i = Universe.index_of_exn uni c in
  Alcotest.(check bool) "killed by x" true (Bitset.mem (Universe.killed_by_key uni (Atom.key x)) i);
  Alcotest.(check bool) "killed by y" true (Bitset.mem (Universe.killed_by_key uni (Atom.key y)) i);
  Alcotest.(check bool) "not killed by z" true
    (Bitset.is_empty (Universe.killed_by_key uni (Atom.key z)))

let suite =
  [
    tc "linexpr: add/cancel" test_linexpr_add_cancel;
    tc "linexpr: canonical order" test_linexpr_canonical_order;
    tc "linexpr: scale/subst" test_linexpr_scale_subst;
    tc "linexpr: gcd" test_linexpr_gcd;
    QCheck_alcotest.to_alcotest prop_add_commutative;
    QCheck_alcotest.to_alcotest prop_of_terms_idempotent;
    tc "check: canonical fig1" test_check_canonical_fig1;
    tc "check: lower negation" test_check_lower_negation;
    tc "check: symbolic bound" test_check_symbolic_bound;
    tc "check: compile time" test_check_compile_time;
    tc "check: gcd normalize" test_check_gcd_normalize;
    QCheck_alcotest.to_alcotest prop_gcd_preserves_integer_solutions;
    tc "cig: within family" test_cig_within_family;
    tc "cig: figure 4" test_cig_figure4;
    tc "cig: min weight kept" test_cig_min_weight_kept;
    tc "cig: transitive path" test_cig_transitive_path;
    QCheck_alcotest.to_alcotest prop_cig_strength_preorder;
    tc "universe: dedup" test_universe_dedup;
    tc "universe: avail gen modes" test_universe_avail_gen_modes;
    tc "universe: ant gen same-family only" test_universe_ant_gen_same_family_only;
    tc "universe: kills" test_universe_kills;
  ]

(* SSA overlay, induction-variable classification (the paper's
   Figure 2), and the INX check-rewriting pass. *)

open Util
module Ir = Nascent_ir
module Ssa = Nascent_analysis.Ssa
module Loops = Nascent_analysis.Loops
module Induction = Nascent_analysis.Induction
module Core = Nascent_core
module Config = Core.Config

let main_func src =
  let ir = ir_of_source src in
  Ir.Program.main_func ir

(* The phi definition for variable [name] at the header of the loop
   whose do-index is [index]. *)
let header_phi_of f ~index ~name =
  let ssa = Ssa.compute f in
  let loops = Loops.compute f in
  let loop =
    List.find
      (fun (l : Loops.loop) ->
        match l.Loops.meta with
        | Some (Ir.Types.Ldo d) -> d.Ir.Types.d_index.Ir.Types.vname = index
        | _ -> false)
      loops
  in
  let phi =
    List.find_map
      (fun (vid, did) ->
        match Ssa.def ssa did with
        | Ssa.Dphi { v; _ } when v.Ir.Types.vname = name -> Some (vid, did)
        | _ -> None)
      (Ssa.phis_at ssa loop.Loops.header)
  in
  match phi with
  | Some (_, did) -> (ssa, loop, did)
  | None -> Alcotest.failf "no phi for %s at header of loop %s" name index

(* Figure 2's loop:  j = j+1; k = k+m; m invariant. *)
let figure2 =
  "program fig2\n\
   integer i, j, k, m, n, a(1:100)\n\
   j = 0\n\
   k = 3\n\
   m = 5\n\
   n = 10\n\
   do i = 0, n - 1\n\
   j = j + 1\n\
   k = k + m\n\
   a(k) = 2 * m + 1\n\
   enddo\n\
   print k\n\
   end"

let test_ssa_phi_structure () =
  let f = main_func figure2 in
  let ssa, loop, did = header_phi_of f ~index:"i" ~name:"k" in
  ignore loop;
  match Ssa.def ssa did with
  | Ssa.Dphi { args; _ } -> Alcotest.(check int) "two args" 2 (List.length args)
  | _ -> Alcotest.fail "expected phi"

let test_fig2_j_linear () =
  let f = main_func figure2 in
  let ssa, loop, did = header_phi_of f ~index:"i" ~name:"j" in
  match Induction.classify ssa loop did with
  | Induction.Linear { step = 1; _ } -> ()
  | _ -> Alcotest.fail "j should be linear with step 1"

let test_fig2_k_linear_step_m () =
  (* k = k + m with m = 5: the paper's 5*h + 8 induction expression. *)
  let f = main_func figure2 in
  let ssa, loop, did = header_phi_of f ~index:"i" ~name:"k" in
  match Induction.classify ssa loop did with
  | Induction.Linear { step = 5; _ } -> ()
  | Induction.Linear { step; _ } -> Alcotest.failf "k linear but step %d" step
  | _ -> Alcotest.fail "k should be linear"

let test_fig2_index_linear () =
  let f = main_func figure2 in
  let ssa, loop, did = header_phi_of f ~index:"i" ~name:"i" in
  match Induction.classify ssa loop did with
  | Induction.Linear { step = 1; _ } -> ()
  | _ -> Alcotest.fail "i should be linear with step 1"

let test_polynomial_classification () =
  (* j = j + i: the paper's h*(h+1)/2 polynomial example. *)
  let src =
    "program poly\n\
     integer i, j, n\n\
     j = 0\n\
     n = 10\n\
     do i = 0, n\n\
     j = j + i\n\
     enddo\n\
     print j\n\
     end"
  in
  let f = main_func src in
  let ssa, loop, did = header_phi_of f ~index:"i" ~name:"j" in
  match Induction.classify ssa loop did with
  | Induction.Polynomial -> ()
  | Induction.Linear _ -> Alcotest.fail "j misclassified as linear"
  | Induction.Inv -> Alcotest.fail "j misclassified as invariant"
  | Induction.Unknown -> Alcotest.fail "j should be polynomial, got unknown"

let test_invariant_classification () =
  let src =
    "program inv\n\
     integer i, n, m\n\
     m = 7\n\
     n = 5\n\
     do i = 1, n\n\
     n = n + 0\n\
     enddo\n\
     print m\n\
     end"
  in
  let f = main_func src in
  let ssa = Ssa.compute f in
  let loops = Loops.compute f in
  let loop = List.hd loops in
  (* m's entry def is outside the loop *)
  let m_def =
    let b = Ir.Func.block f f.Ir.Func.entry in
    ignore b;
    (* find the assignment m = 7 *)
    let found = ref None in
    Ir.Func.iter_blocks
      (fun blk ->
        List.iteri
          (fun idx i ->
            match i with
            | Ir.Types.Assign (v, Ir.Types.Cint 7) when v.Ir.Types.vname = "m" -> (
                match Ssa.snapshot ssa ~bid:blk.Ir.Types.bid ~idx with
                | Some _ -> found := Some (blk.Ir.Types.bid, idx)
                | None -> ())
            | _ -> ())
          blk.Ir.Types.instrs)
      f;
    match !found with
    | Some _ ->
        (* classification of an out-of-loop def *)
        ()
    | None -> Alcotest.fail "m assignment not found"
  in
  ignore m_def;
  ignore loop

(* --- INX end-to-end -------------------------------------------------- *)

let optimize ~scheme ~kind src =
  let ir = ir_of_source src in
  let opt, stats = Core.Optimizer.optimize ~config:(Config.make ~scheme ~kind ()) ir in
  (ir, opt, stats)

let checks_of o = o.Nascent_interp.Run.checks

let equivalent ir opt =
  let o1 = Nascent_interp.Run.run ir and o2 = Nascent_interp.Run.run opt in
  Alcotest.(check bool) "trap equivalence" (o1.trap <> None) (o2.trap <> None);
  if o1.trap = None && o1.error = None then
    Alcotest.(check bool)
      "same output" true
      (List.length o1.printed = List.length o2.printed
      && List.for_all2 Nascent_interp.Value.equal o1.printed o2.printed);
  (o1, o2)

(* trfd-style: k is assigned inside the loop from invariant operands.
   PRX-LI cannot hoist (k is defined in the loop); INX-LI resolves k to
   n + 7 and hoists. *)
let trfd_like =
  "program trf\n\
   integer a(1:100), i, k, n, s\n\
   n = 20\n\
   s = 0\n\
   do i = 1, 50\n\
   k = n + 7\n\
   s = s + a(k)\n\
   enddo\n\
   print s\n\
   end"

let test_inx_li_beats_prx_li () =
  let ir1, opt_prx, _ = optimize ~scheme:Config.LI ~kind:Config.PRX trfd_like in
  let _, o_prx = equivalent ir1 opt_prx in
  let ir2, opt_inx, _ = optimize ~scheme:Config.LI ~kind:Config.INX trfd_like in
  let _, o_inx = equivalent ir2 opt_inx in
  Alcotest.(check bool)
    (Fmt.str "INX-LI (%d) < PRX-LI (%d)" (checks_of o_inx) (checks_of o_prx))
    true
    (checks_of o_inx < checks_of o_prx)

(* accumulator k = k + 2: linear in h but not the do index; PRX-LLS
   keeps the checks in the loop, INX-LLS hoists via the trip count. *)
let accumulator =
  "program acc\n\
   integer a(1:200), i, k, s\n\
   k = 10\n\
   s = 0\n\
   do i = 1, 40\n\
   k = k + 2\n\
   s = s + a(k)\n\
   enddo\n\
   print s\n\
   end"

let test_inx_lls_hoists_accumulator () =
  let ir1, opt_prx, _ = optimize ~scheme:Config.LLS ~kind:Config.PRX accumulator in
  let _, o_prx = equivalent ir1 opt_prx in
  let ir2, opt_inx, _ = optimize ~scheme:Config.LLS ~kind:Config.INX accumulator in
  let _, o_inx = equivalent ir2 opt_inx in
  Alcotest.(check bool)
    (Fmt.str "INX-LLS (%d) < PRX-LLS (%d)" (checks_of o_inx) (checks_of o_prx))
    true
    (checks_of o_inx < checks_of o_prx);
  Alcotest.(check bool)
    (Fmt.str "INX-LLS nearly total (%d)" (checks_of o_inx))
    true
    (checks_of o_inx <= 6)

let test_inx_accumulator_trap_preserved () =
  (* Same accumulator but overrunning the array: k reaches 10+2*40=90
     with a(1:80): both versions trap. *)
  let src =
    "program acct\n\
     integer a(1:80), i, k, s\n\
     k = 10\n\
     s = 0\n\
     do i = 1, 40\n\
     k = k + 2\n\
     s = s + a(k)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS ~kind:Config.INX src in
  let o1, o2 = equivalent ir opt in
  Alcotest.(check bool) "naive traps" true (o1.trap <> None);
  Alcotest.(check bool) "optimized traps" true (o2.trap <> None)

let test_inx_zero_trip_accumulator () =
  let src =
    "program accz\n\
     integer a(1:10), i, k, n, s\n\
     k = 500\n\
     n = 0\n\
     s = 0\n\
     do i = 1, n\n\
     k = k + 2\n\
     s = s + a(k)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS ~kind:Config.INX src in
  let o1, o2 = equivalent ir opt in
  Alcotest.(check (option string)) "naive no trap" None o1.trap;
  Alcotest.(check (option string)) "optimized no trap" None o2.trap

let test_inx_all_schemes_sound () =
  List.iter
    (fun src ->
      let ir = ir_of_source src in
      List.iter
        (fun scheme ->
          let opt, _ =
            Core.Optimizer.optimize
              ~config:(Config.make ~scheme ~kind:Config.INX ())
              ir
          in
          let o1 = Nascent_interp.Run.run ir and o2 = Nascent_interp.Run.run opt in
          if (o1.trap <> None) <> (o2.trap <> None) then
            Alcotest.failf "trap mismatch under INX/%s" (Config.scheme_name scheme);
          if o1.trap = None && o1.error = None then begin
            if
              not
                (List.length o1.printed = List.length o2.printed
                && List.for_all2 Nascent_interp.Value.equal o1.printed o2.printed)
            then Alcotest.failf "output mismatch under INX/%s" (Config.scheme_name scheme);
            if o2.checks > o1.checks then
              Alcotest.failf "INX/%s increased checks %d -> %d"
                (Config.scheme_name scheme) o1.checks o2.checks
          end)
        Config.all_schemes)
    [ figure2; trfd_like; accumulator ]

let test_inx_rewrite_stats () =
  let ir = ir_of_source accumulator in
  let copy = Ir.Transform.copy_program ir in
  let f = Ir.Program.main_func copy in
  let st = Core.Induction_rewrite.run f in
  Alcotest.(check bool) "rewrote checks" true (st.Core.Induction_rewrite.rewritten > 0);
  Alcotest.(check bool)
    "materialized h" true
    (st.Core.Induction_rewrite.basics_materialized > 0);
  (* the rewritten program still runs identically *)
  let o1 = Nascent_interp.Run.run ir and o2 = Nascent_interp.Run.run copy in
  Alcotest.(check bool) "same trap" (o1.trap <> None) (o2.trap <> None);
  Alcotest.(check int) "same checks (rewrite only)" o1.checks o2.checks

let test_trip_count_expr () =
  let d : Ir.Types.do_info =
    {
      d_preheader = 0;
      d_header = 0;
      d_body_entry = 0;
      d_latch = 0;
      d_exit = 0;
      d_index = { vname = "i"; vid = 0; vty = Ir.Types.Int };
      d_lo = Ir.Types.Cint 1;
      d_hi = Ir.Types.Cint 10;
      d_step = 1;
      d_basic = None;
    }
  in
  match Induction.trip_count_expr d with
  | Ir.Types.Cint 10 -> ()
  | e -> Alcotest.failf "expected 10, got %a" Ir.Expr.pp e

let suite =
  [
    tc "ssa: phi structure" test_ssa_phi_structure;
    tc "fig2: j linear step 1" test_fig2_j_linear;
    tc "fig2: k linear step m=5" test_fig2_k_linear_step_m;
    tc "fig2: index linear" test_fig2_index_linear;
    tc "polynomial classification" test_polynomial_classification;
    tc "invariant classification" test_invariant_classification;
    tc "INX-LI beats PRX-LI (trfd case)" test_inx_li_beats_prx_li;
    tc "INX-LLS hoists accumulator" test_inx_lls_hoists_accumulator;
    tc "INX accumulator trap preserved" test_inx_accumulator_trap_preserved;
    tc "INX zero-trip accumulator" test_inx_zero_trip_accumulator;
    tc "INX all schemes sound" test_inx_all_schemes_sound;
    tc "INX rewrite stats" test_inx_rewrite_stats;
    tc "trip count expr" test_trip_count_expr;
  ]

(* Unit and property tests for the support library (Bitset, Vec). *)

open Util
module Bitset = Nascent_support.Bitset
module Vec = Nascent_support.Vec

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "mem 99" true (Bitset.mem b 99);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "elements" [ 0; 64; 99 ] (Bitset.elements b)

let test_bitset_full () =
  let b = Bitset.full 70 in
  Alcotest.(check int) "cardinal" 70 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 69" true (Bitset.mem b 69);
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b)

let test_bitset_fill_respects_universe () =
  let b = Bitset.create 65 in
  Bitset.fill b;
  Alcotest.(check int) "cardinal" 65 (Bitset.cardinal b);
  (* equality with a freshly built full set, exercising the last-word mask *)
  Alcotest.(check bool) "equal to full" true (Bitset.equal b (Bitset.full 65))

let test_bitset_set_ops () =
  let a = Bitset.of_list 32 [ 1; 5; 9 ] in
  let b = Bitset.of_list 32 [ 5; 9; 13 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 1; 5; 9; 13 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~into:i b;
  Alcotest.(check (list int)) "inter" [ 5; 9 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into ~into:d b;
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements d);
  Alcotest.(check bool) "subset" true (Bitset.subset i a);
  Alcotest.(check bool) "not subset" false (Bitset.subset a i);
  Alcotest.(check bool) "disjoint" true (Bitset.disjoint d i);
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b)

let test_bitset_universe_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  match Bitset.union_into ~into:a b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected universe mismatch"

let test_bitset_out_of_range () =
  let a = Bitset.create 10 in
  (match Bitset.add a 10 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected range error");
  match Bitset.mem a (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range error"

let test_bitset_zero_universe () =
  let b = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.fill b;
  Alcotest.(check int) "still empty" 0 (Bitset.cardinal b)

(* properties *)

let elems_gen = QCheck.(small_list (int_bound 199))

let prop_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" elems_gen (fun xs ->
      let b = Bitset.of_list 200 xs in
      Bitset.elements b = List.sort_uniq compare xs)

let prop_union_cardinal =
  QCheck.Test.make ~name:"bitset |A∪B| + |A∩B| = |A| + |B|"
    QCheck.(pair elems_gen elems_gen)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let u = Bitset.copy a and i = Bitset.copy a in
      Bitset.union_into ~into:u b;
      Bitset.inter_into ~into:i b;
      Bitset.cardinal u + Bitset.cardinal i = Bitset.cardinal a + Bitset.cardinal b)

let prop_demorgan =
  QCheck.Test.make ~name:"bitset A \\ B = A ∩ ¬B via diff"
    QCheck.(pair elems_gen elems_gen)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let d = Bitset.copy a in
      Bitset.diff_into ~into:d b;
      List.for_all (fun x -> Bitset.mem a x && not (Bitset.mem b x)) (Bitset.elements d)
      && List.for_all
           (fun x -> (not (List.mem x ys)) || not (Bitset.mem d x))
           (List.sort_uniq compare xs))

let test_vec_basic () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v))
    (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 1000) v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 in
  ignore (Vec.push v 1);
  match Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let suite =
  [
    tc "bitset: basic" test_bitset_basic;
    tc "bitset: full" test_bitset_full;
    tc "bitset: fill respects universe" test_bitset_fill_respects_universe;
    tc "bitset: set ops" test_bitset_set_ops;
    tc "bitset: universe mismatch" test_bitset_universe_mismatch;
    tc "bitset: out of range" test_bitset_out_of_range;
    tc "bitset: zero universe" test_bitset_zero_universe;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_union_cardinal;
    QCheck_alcotest.to_alcotest prop_demorgan;
    tc "vec: basic" test_vec_basic;
    tc "vec: bounds" test_vec_bounds;
  ]

(* Unit and property tests for the support library (Bitset, Vec, and
   the compile-service building blocks: Json, Retry, Breaker, Guard
   deadlines). *)

open Util
module Bitset = Nascent_support.Bitset
module Vec = Nascent_support.Vec
module Json = Nascent_support.Json
module Retry = Nascent_support.Retry
module Breaker = Nascent_support.Breaker
module Guard = Nascent_support.Guard

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "mem 99" true (Bitset.mem b 99);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "elements" [ 0; 64; 99 ] (Bitset.elements b)

let test_bitset_full () =
  let b = Bitset.full 70 in
  Alcotest.(check int) "cardinal" 70 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 69" true (Bitset.mem b 69);
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b)

let test_bitset_fill_respects_universe () =
  let b = Bitset.create 65 in
  Bitset.fill b;
  Alcotest.(check int) "cardinal" 65 (Bitset.cardinal b);
  (* equality with a freshly built full set, exercising the last-word mask *)
  Alcotest.(check bool) "equal to full" true (Bitset.equal b (Bitset.full 65))

let test_bitset_set_ops () =
  let a = Bitset.of_list 32 [ 1; 5; 9 ] in
  let b = Bitset.of_list 32 [ 5; 9; 13 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 1; 5; 9; 13 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~into:i b;
  Alcotest.(check (list int)) "inter" [ 5; 9 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into ~into:d b;
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements d);
  Alcotest.(check bool) "subset" true (Bitset.subset i a);
  Alcotest.(check bool) "not subset" false (Bitset.subset a i);
  Alcotest.(check bool) "disjoint" true (Bitset.disjoint d i);
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b)

let test_bitset_universe_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  match Bitset.union_into ~into:a b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected universe mismatch"

let test_bitset_out_of_range () =
  let a = Bitset.create 10 in
  (match Bitset.add a 10 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected range error");
  match Bitset.mem a (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range error"

let test_bitset_zero_universe () =
  let b = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.fill b;
  Alcotest.(check int) "still empty" 0 (Bitset.cardinal b)

(* properties *)

let elems_gen = QCheck.(small_list (int_bound 199))

let prop_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" elems_gen (fun xs ->
      let b = Bitset.of_list 200 xs in
      Bitset.elements b = List.sort_uniq compare xs)

let prop_union_cardinal =
  QCheck.Test.make ~name:"bitset |A∪B| + |A∩B| = |A| + |B|"
    QCheck.(pair elems_gen elems_gen)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let u = Bitset.copy a and i = Bitset.copy a in
      Bitset.union_into ~into:u b;
      Bitset.inter_into ~into:i b;
      Bitset.cardinal u + Bitset.cardinal i = Bitset.cardinal a + Bitset.cardinal b)

let prop_demorgan =
  QCheck.Test.make ~name:"bitset A \\ B = A ∩ ¬B via diff"
    QCheck.(pair elems_gen elems_gen)
    (fun (xs, ys) ->
      let a = Bitset.of_list 200 xs and b = Bitset.of_list 200 ys in
      let d = Bitset.copy a in
      Bitset.diff_into ~into:d b;
      List.for_all (fun x -> Bitset.mem a x && not (Bitset.mem b x)) (Bitset.elements d)
      && List.for_all
           (fun x -> (not (List.mem x ys)) || not (Bitset.mem d x))
           (List.sort_uniq compare xs))

let test_vec_basic () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v))
    (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 1000) v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 in
  ignore (Vec.push v 1);
  match Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

(* --- Json: the service wire format ------------------------------------- *)

let json = Alcotest.testable (fun ppf v -> Fmt.string ppf (Json.to_string v)) ( = )

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 1.5;
      Json.Str "";
      Json.Str "hello \"world\"\n\t\\";
      Json.Str "unicode: \xc3\xa9\xe2\x82\xac";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("op", Json.Str "compile");
          ("nested", Json.Obj [ ("deep", Json.List [ Json.Bool false ] ) ]);
        ];
    ]
  in
  List.iter
    (fun v -> Alcotest.check json "print/parse roundtrip" v (parse_ok (Json.to_string v)))
    samples

let test_json_parse_forms () =
  Alcotest.check json "escapes" (Json.Str "a\nb\"c")
    (parse_ok {|"a\nb\"c"|});
  Alcotest.check json "unicode escape" (Json.Str "\xc3\xa9") (parse_ok {|"\u00e9"|});
  Alcotest.check json "surrogate pair" (Json.Str "\xf0\x9d\x84\x9e")
    (parse_ok {|"\ud834\udd1e"|});
  Alcotest.check json "whitespace tolerated" (Json.List [ Json.Int 1; Json.Int 2 ])
    (parse_ok " [ 1 ,\t2 ] ");
  Alcotest.check json "integral number is Int" (Json.Int 3) (parse_ok "3");
  (match parse_ok "3.25" with
  | Json.Float f -> Alcotest.(check (float 0.0)) "fractional is Float" 3.25 f
  | v -> Alcotest.failf "expected Float, got %s" (Json.to_string v));
  Alcotest.check json "scientific" (parse_ok "1.5e2") (parse_ok "150.0")

let test_json_malformed () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v ->
          Alcotest.failf "expected parse error for %S, got %s" s (Json.to_string v)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "\"unterminated";
      "\"bad \\x escape\"";
      "nul";
      "1 2" (* trailing garbage *);
      "\"raw\tcontrol\"" (* literal control byte in a string *);
      "\"\\ud834\"" (* unpaired surrogate *);
      "{\"a\" 1}";
      "--3";
    ];
  (* the anti-DoS nesting bound *)
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  match Json.parse deep with
  | Ok _ -> Alcotest.fail "expected nesting-depth error"
  | Error _ -> ()

let test_json_accessors () =
  let v = parse_ok {|{"s":"x","i":7,"b":true,"f":2.5,"n":null}|} in
  Alcotest.(check (option string)) "str" (Some "x") (Json.str_member "s" v);
  Alcotest.(check (option int)) "int" (Some 7) (Json.int_member "i" v);
  Alcotest.(check (option bool)) "bool" (Some true) (Json.bool_member "b" v);
  Alcotest.(check (option (float 0.0))) "float" (Some 2.5) (Json.float_member "f" v);
  Alcotest.(check (option (float 0.0))) "float accepts int" (Some 7.0)
    (Json.float_member "i" v);
  Alcotest.(check (option int)) "missing member" None (Json.int_member "zz" v);
  Alcotest.(check (option int)) "shape mismatch" None (Json.int_member "s" v);
  Alcotest.(check (option int)) "non-object" None (Json.int_member "s" (Json.Int 3))

(* --- Retry: deterministic backoff -------------------------------------- *)

let test_retry_delay_deterministic () =
  let p = Retry.default in
  for attempt = 1 to 6 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "delay(seed=5, attempt=%d) is stable" attempt)
      (Retry.delay_s p ~seed:5 ~attempt)
      (Retry.delay_s p ~seed:5 ~attempt)
  done;
  (* different seeds de-synchronize: not every attempt may differ, but
     the whole schedule must *)
  let schedule seed = List.init 5 (fun i -> Retry.delay_s p ~seed ~attempt:(i + 1)) in
  Alcotest.(check bool) "seeds differ" true (schedule 1 <> schedule 2);
  (* delays stay within the jittered exponential envelope *)
  List.iter
    (fun seed ->
      List.iteri
        (fun i d ->
          let base =
            Float.min p.Retry.max_delay_s
              (p.Retry.base_delay_s *. (p.Retry.multiplier ** float_of_int i))
          in
          if d < base *. (1.0 -. p.Retry.jitter) -. 1e-9
             || d > base *. (1.0 +. p.Retry.jitter) +. 1e-9
          then
            Alcotest.failf "delay %g outside envelope around %g (attempt %d)" d base
              (i + 1))
        (schedule seed))
    [ 1; 2; 3; 17; 255 ]

let test_retry_outcomes () =
  let sleeps = ref [] in
  let sleep s = sleeps := s :: !sleeps in
  let policy = { Retry.default with Retry.max_attempts = 4 } in
  (* succeeds on attempt 3: two backoffs *)
  (match
     Retry.run ~sleep ~policy ~seed:1 (fun ~attempt ->
         if attempt < 3 then Error (`Retryable "not yet") else Ok attempt)
   with
  | Retry.Ok_after (3, 3) -> ()
  | Retry.Ok_after (n, _) -> Alcotest.failf "succeeded on attempt %d, wanted 3" n
  | Retry.Gave_up _ -> Alcotest.fail "should have succeeded");
  Alcotest.(check int) "one sleep per retry" 2 (List.length !sleeps);
  (* a fatal error short-circuits *)
  (match
     Retry.run ~sleep:ignore ~policy ~seed:1 (fun ~attempt:_ ->
         (Error (`Fatal "broken") : (unit, _) result))
   with
  | Retry.Gave_up (1, "broken") -> ()
  | _ -> Alcotest.fail "fatal must give up on attempt 1");
  (* retryable exhaustion stops at max_attempts *)
  let tries = ref 0 in
  (match
     Retry.run ~sleep:ignore ~policy ~seed:1 (fun ~attempt:_ ->
         incr tries;
         (Error (`Retryable "still down") : (unit, _) result))
   with
  | Retry.Gave_up (4, "still down") -> ()
  | _ -> Alcotest.fail "expected exhaustion at max_attempts");
  Alcotest.(check int) "tried exactly max_attempts times" 4 !tries

(* --- Breaker: the graceful-degradation state machine ------------------- *)

let test_breaker_state_machine () =
  let b = Breaker.create ~threshold:3 ~cooldown_s:10.0 () in
  let decide now = Breaker.decide b ~now "CS" in
  let record now ok = Breaker.record b ~now "CS" ~ok in
  Alcotest.(check bool) "unknown key allowed" true (decide 0.0 = `Allow);
  record 1.0 false;
  record 2.0 false;
  Alcotest.(check bool) "below threshold still allowed" true (decide 2.5 = `Allow);
  (* a success resets the consecutive count *)
  record 3.0 true;
  record 4.0 false;
  record 5.0 false;
  Alcotest.(check bool) "reset by success: still closed" true (decide 5.5 = `Allow);
  record 6.0 false;
  Alcotest.(check bool) "third consecutive failure trips" true
    (Breaker.state b "CS" = Breaker.Open);
  Alcotest.(check int) "trip counted" 1 (Breaker.trips b);
  Alcotest.(check bool) "open: fallback" true (decide 7.0 = `Fallback);
  Alcotest.(check bool) "still within cooldown" true (decide 15.9 = `Fallback);
  (* cooldown over: exactly one probe *)
  Alcotest.(check bool) "probe after cooldown" true (decide 16.1 = `Probe);
  Alcotest.(check bool) "second caller falls back during probe" true
    (decide 16.2 = `Fallback);
  (* failed probe re-opens; the next probe needs a fresh cooldown *)
  record 16.3 false;
  Alcotest.(check bool) "failed probe re-opens" true (decide 16.4 = `Fallback);
  Alcotest.(check bool) "cooldown restarts" true (decide 20.0 = `Fallback);
  Alcotest.(check bool) "second probe" true (decide 26.4 = `Probe);
  record 26.5 true;
  Alcotest.(check bool) "successful probe closes" true (decide 26.6 = `Allow);
  Alcotest.(check bool) "closed state visible" true
    (Breaker.state b "CS" = Breaker.Closed);
  (* keys are independent *)
  Alcotest.(check bool) "other keys unaffected" true
    (Breaker.decide b ~now:26.7 "LLS" = `Allow);
  Alcotest.(check int) "snapshot lists both keys" 2
    (List.length (Breaker.snapshot b))

(* A probe whose outcome is never recorded (its worker crashed, its
   deadline fired before the caller could report) must not wedge the
   key in `Fallback forever: after another cooldown the probe
   re-arms. *)
let test_breaker_stalled_probe_rearms () =
  let b = Breaker.create ~threshold:1 ~cooldown_s:10.0 () in
  Breaker.record b ~now:0.0 "CS" ~ok:false;
  Alcotest.(check bool) "tripped" true (Breaker.state b "CS" = Breaker.Open);
  Alcotest.(check bool) "probe after cooldown" true
    (Breaker.decide b ~now:11.0 "CS" = `Probe);
  (* the probe is lost: nothing records its outcome *)
  Alcotest.(check bool) "fresh probe blocks other callers" true
    (Breaker.decide b ~now:12.0 "CS" = `Fallback);
  Alcotest.(check bool) "stalled probe re-arms after another cooldown" true
    (Breaker.decide b ~now:21.5 "CS" = `Probe);
  (* and the re-armed probe can still close the key *)
  Breaker.record b ~now:22.0 "CS" ~ok:true;
  Alcotest.(check bool) "recovered" true (Breaker.state b "CS" = Breaker.Closed)

(* --- Guard: wall-clock deadlines over ambient ticking ------------------- *)

let test_deadline_expiry () =
  let d = Guard.deadline ~what:"t" ~seconds:10.0 in
  Alcotest.(check bool) "fresh deadline not expired" false (Guard.expired d);
  Alcotest.(check bool) "remaining positive" true (Guard.remaining_s d > 0.0);
  let z = Guard.deadline ~what:"z" ~seconds:0.0 in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "zero budget expires" true (Guard.expired z);
  Alcotest.(check (float 0.0)) "remaining clamped" 0.0 (Guard.remaining_s z)

let test_deadline_fires_on_ambient_tick () =
  let d = Guard.deadline ~what:"req" ~seconds:0.0 in
  Unix.sleepf 0.01;
  (match
     Guard.with_deadline d (fun () ->
         for _ = 1 to 100_000 do
           Guard.tick_ambient ()
         done)
   with
  | () -> Alcotest.fail "expected Deadline_exceeded from ambient ticking"
  | exception Guard.Deadline_exceeded what ->
      Alcotest.(check string) "names the deadline" "req" what);
  (* the deadline is popped on exit: ticking outside is free again *)
  Guard.tick_ambient ();
  (* check_deadlines bypasses the tick throttle *)
  match Guard.with_deadline d Guard.check_deadlines with
  | () -> Alcotest.fail "check_deadlines must raise on an expired deadline"
  | exception Guard.Deadline_exceeded _ -> ()

let test_deadline_generous_budget_no_fire () =
  let d = Guard.deadline ~what:"slow" ~seconds:60.0 in
  Guard.with_deadline d (fun () ->
      for _ = 1 to 10_000 do
        Guard.tick_ambient ()
      done);
  Alcotest.(check bool) "a minute was enough" false (Guard.expired d)

(* --- Retry: total-elapsed budget ---------------------------------------- *)

let test_retry_elapsed_budget () =
  (* fake time: the injected clock advances only when [sleep] is
     called, so the test is instant and fully deterministic *)
  let now = ref 0.0 in
  let clock () = !now in
  let sleep d = now := !now +. d in
  let policy =
    {
      Retry.max_attempts = 100;
      base_delay_s = 1.0;
      multiplier = 1.0;
      max_delay_s = 1.0;
      jitter = 0.0;
    }
  in
  (match
     Retry.run ~sleep ~clock ~policy ~max_elapsed_s:3.5 ~seed:1 (fun ~attempt:_ ->
         (Error (`Retryable "still down") : (unit, _) result))
   with
  | Retry.Gave_up (n, msg) ->
      (* 1s per backoff: attempts fire at t=0,1,2,3,4; the attempt at
         t=4 is the first to see the 3.5s budget spent — far short of
         the policy's 100 attempts *)
      Alcotest.(check int) "stopped by elapsed budget, not attempts" 5 n;
      let mentions_budget =
        let pat = "elapsed retry budget exhausted" in
        let n = String.length msg and m = String.length pat in
        let rec go i = i + m <= n && (String.sub msg i m = pat || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the exhausted budget" true mentions_budget
  | Retry.Ok_after _ -> Alcotest.fail "cannot succeed: every attempt fails");
  (* a success inside the window is unaffected by the budget *)
  now := 0.0;
  match
    Retry.run ~sleep ~clock ~policy ~max_elapsed_s:3.5 ~seed:1 (fun ~attempt ->
        if attempt < 3 then Error (`Retryable "not yet") else Ok attempt)
  with
  | Retry.Ok_after (3, 3) -> ()
  | Retry.Ok_after (n, _) -> Alcotest.failf "succeeded on attempt %d, wanted 3" n
  | Retry.Gave_up (_, msg) -> Alcotest.failf "gave up inside the window: %s" msg

(* --- Guard: memory watchdog --------------------------------------------- *)

let reset_mem_budget () = Guard.set_mem_budget ~bytes:None ()

let test_mem_watchdog_over () =
  Fun.protect ~finally:reset_mem_budget @@ fun () ->
  (* a 1-byte budget: any live heap is over it *)
  Guard.set_mem_budget ~bytes:(Some 1) ();
  Alcotest.(check bool) "budget installed" true (Guard.mem_budget () = Some 1);
  (match Guard.mem_level () with
  | `Over -> ()
  | `Pressure | `Ok -> Alcotest.fail "1-byte budget must report `Over");
  (match Guard.tick_ambient () with
  | () -> Alcotest.fail "ambient tick must raise over budget"
  | exception Guard.Mem_exceeded what ->
      Alcotest.(check bool) "message carries numbers" true
        (String.length what > 0));
  (* removing the budget silences the watchdog *)
  reset_mem_budget ();
  Guard.tick_ambient ();
  match Guard.mem_level () with
  | `Ok -> ()
  | `Pressure | `Over -> Alcotest.fail "no budget means `Ok"

let test_mem_watchdog_pressure_without_abort () =
  Fun.protect ~finally:reset_mem_budget @@ fun () ->
  (* budget far above the live heap, shed threshold far below it:
     admission-side pressure, but no request abort *)
  let heap = Guard.mem_heap_bytes () in
  Guard.set_mem_budget ~shed_fraction:0.1 ~bytes:(Some (heap * 4)) ();
  (match Guard.mem_level () with
  | `Pressure -> ()
  | `Over -> Alcotest.fail "heap is well under 4x its own size"
  | `Ok -> Alcotest.fail "shed threshold at 10% must report `Pressure");
  (* ticking does not raise: the heap is under the hard budget *)
  Guard.tick_ambient ()

(* --- Guard: advisory directory locks ------------------------------------ *)

let test_dir_lock_conflict_and_release () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nascent-lock-test-%d" (Unix.getpid ()))
  in
  let l1 =
    match Guard.lock_dir ~dir with
    | Ok l -> l
    | Error e -> Alcotest.failf "first acquire failed: %s" e
  in
  Alcotest.(check bool) "lock file created" true
    (Sys.file_exists (Filename.concat dir ".nascent-lock"));
  (match Guard.lock_dir ~dir with
  | Ok _ -> Alcotest.fail "second acquire of a held lock must be refused"
  | Error e -> Alcotest.(check bool) "refusal is explained" true (String.length e > 0));
  Guard.unlock_dir l1;
  (* released: the next acquire succeeds *)
  match Guard.lock_dir ~dir with
  | Ok l2 -> Guard.unlock_dir l2
  | Error e -> Alcotest.failf "reacquire after release failed: %s" e

let suite =
  [
    tc "bitset: basic" test_bitset_basic;
    tc "bitset: full" test_bitset_full;
    tc "bitset: fill respects universe" test_bitset_fill_respects_universe;
    tc "bitset: set ops" test_bitset_set_ops;
    tc "bitset: universe mismatch" test_bitset_universe_mismatch;
    tc "bitset: out of range" test_bitset_out_of_range;
    tc "bitset: zero universe" test_bitset_zero_universe;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_union_cardinal;
    QCheck_alcotest.to_alcotest prop_demorgan;
    tc "vec: basic" test_vec_basic;
    tc "vec: bounds" test_vec_bounds;
    tc "json: roundtrip" test_json_roundtrip;
    tc "json: parse forms" test_json_parse_forms;
    tc "json: malformed rejected" test_json_malformed;
    tc "json: accessors" test_json_accessors;
    tc "retry: deterministic jitter" test_retry_delay_deterministic;
    tc "retry: outcomes" test_retry_outcomes;
    tc "retry: elapsed budget" test_retry_elapsed_budget;
    tc "breaker: state machine" test_breaker_state_machine;
    tc "breaker: stalled probe re-arms" test_breaker_stalled_probe_rearms;
    tc "guard: deadline expiry" test_deadline_expiry;
    tc "guard: deadline fires on tick" test_deadline_fires_on_ambient_tick;
    tc "guard: generous deadline quiet" test_deadline_generous_budget_no_fire;
    tc "guard: mem watchdog aborts over budget" test_mem_watchdog_over;
    tc "guard: mem pressure without abort" test_mem_watchdog_pressure_without_abort;
    tc "guard: dir lock conflict and release" test_dir_lock_conflict_and_release;
  ]

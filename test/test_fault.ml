(* The fail-safe pipeline: fault injection, detection, rollback.

   The contract under test (DESIGN.md, "Failure domains and recovery
   contract"): every corruption class Nascent_ir.Mutate can inject is
   (1) detected — by the inter-pass verifier for structural faults, by
   the per-pass fuel budget for hangs; (2) rolled back — the function
   is restored to its pre-pass state byte-for-byte; and (3) recovered —
   compilation continues and the output still satisfies the interpreter
   differential against the naive-checked original. *)

open Util
module Ir = Nascent_ir
module Mutate = Ir.Mutate
module Core = Nascent_core
module Config = Core.Config
module Optimizer = Core.Optimizer
module Guard = Nascent_support.Guard
module Run = Nascent_interp.Run
module B = Nascent_benchmarks.Suite

(* A scheme whose pipeline runs the pass the class targets (mirrors the
   CLI's smoke matrix). *)
let scheme_for = function
  | Mutate.Drop_check | Mutate.Weaken_check -> Config.CS
  | Mutate.Unsafe_insert -> Config.SE
  | Mutate.Break_edge | Mutate.Hang_fixpoint -> Config.LLS
  | Mutate.Unsound_eliminate -> Config.NI

(* [Unsound_eliminate] is the class no differential rule can see; its
   cells compile with the oracle on so the translation validator — the
   only net that catches it — actually runs. *)
let fault_config ?(scheme = Config.LLS) cls seed =
  Config.make ~scheme
    ~fault:{ Mutate.cls; seed }
    ~oracle:(cls = Mutate.Unsound_eliminate) ()

(* --- rollback restores the pre-pass IR byte-for-byte ------------------- *)

(* Transform.restore_func is the rollback primitive: after arbitrary
   mutation of the function (here: a full optimizer run, the heaviest
   mutator in the tree), restoring from the snapshot must reproduce the
   original printing exactly. *)
let test_restore_func_byte_for_byte () =
  List.iter
    (fun (b : B.benchmark) ->
      let ir = ir_of_source b.B.source in
      Ir.Program.iter_funcs
        (fun f ->
          let s0 = Ir.Printer.func_to_string f in
          let before = Ir.Transform.copy_func f in
          ignore (Optimizer.optimize_func (Config.make ()) f);
          Ir.Transform.restore_func ~from_:before f;
          Alcotest.(check string)
            (b.B.name ^ "/" ^ f.Ir.Func.fname ^ ": restored byte-for-byte")
            s0
            (Ir.Printer.func_to_string f))
        ir)
    B.all

(* Same, but through each mutation class itself: corrupt, restore,
   compare. *)
let test_restore_after_each_mutation () =
  List.iter
    (fun cls ->
      List.iter
        (fun (b : B.benchmark) ->
          let ir = ir_of_source b.B.source in
          Ir.Program.iter_funcs
            (fun f ->
              let s0 = Ir.Printer.func_to_string f in
              let before = Ir.Transform.copy_func f in
              ignore (Mutate.apply ~seed:3 cls f : bool);
              Ir.Transform.restore_func ~from_:before f;
              Alcotest.(check string)
                (Fmt.str "%s/%s after %s" b.B.name f.Ir.Func.fname
                   (Mutate.cls_name cls))
                s0
                (Ir.Printer.func_to_string f))
            ir)
        B.all)
    [
      Mutate.Drop_check;
      Mutate.Weaken_check;
      Mutate.Break_edge;
      Mutate.Unsafe_insert;
      Mutate.Unsound_eliminate;
    ]

(* --- the per-class matrix: caught, rolled back, recovered -------------- *)

let expected_cause cls =
  if Mutate.hangs cls then Optimizer.Budget_exhausted else Optimizer.Verifier_rejected

let test_class_matrix () =
  List.iter
    (fun cls ->
      let scheme = scheme_for cls in
      let injected_somewhere = ref false in
      List.iter
        (fun (b : B.benchmark) ->
          let ir = ir_of_source b.B.source in
          let config = fault_config ~scheme cls 1 in
          let opt, stats = Optimizer.optimize ~config ir in
          let where = Fmt.str "%s under %a" b.B.name Config.pp config in
          if stats.Optimizer.faults_injected > 0 then begin
            injected_somewhere := true;
            (if cls = Mutate.Unsound_eliminate then begin
               (* invisible to every pass rule: nothing may roll back,
                  and the translation validator must refuse the
                  certificate *)
               Alcotest.(check int)
                 (where ^ ": unsound deletion draws no pass incident")
                 0
                 (List.length stats.Optimizer.incidents);
               Alcotest.(check (option bool))
                 (where ^ ": translation validator refuses the certificate")
                 (Some false) (Optimizer.validated stats)
             end
             else
               (* detected: the corruption drew at least one incident,
                  attributed to the targeted pass, with the right cause *)
               match stats.Optimizer.incidents with
               | [] -> Alcotest.failf "%s: injected fault drew no incident" where
               | is ->
                   Alcotest.(check bool)
                     (where ^ ": incident names the targeted pass")
                     true
                     (List.exists
                        (fun i ->
                          i.Optimizer.inc_pass = Mutate.target_pass cls
                          && i.Optimizer.inc_cause = expected_cause cls)
                        is));
            (* recovered: the output is valid IR... *)
            (match Ir.Verify.program opt with
            | [] -> ()
            | vs ->
                Alcotest.failf "%s: recovered program invalid: %a" where
                  (Fmt.list Ir.Verify.pp_violation) vs);
            (* ...and behaviourally indistinguishable from naive *)
            let o0 = Run.run ir and o = Run.run opt in
            Alcotest.(check bool)
              (where ^ ": same printed output")
              true
              (o.Run.printed = o0.Run.printed);
            Alcotest.(check bool)
              (where ^ ": same trap behaviour")
              true
              ((o.Run.trap = None) = (o0.Run.trap = None))
          end
          else
            (* fault-free cells must be incident-free *)
            Alcotest.(check int) (where ^ ": no incident without a fault") 0
              (List.length stats.Optimizer.incidents))
        B.all;
      Alcotest.(check bool)
        (Mutate.cls_name cls ^ " applied to at least one benchmark (not vacuous)")
        true !injected_somewhere)
    Mutate.all_classes

(* --- hang: fuel watchdog, degradation stays safe ----------------------- *)

(* A hung eliminate under plain NI: the fuel budget cuts it off, the
   rollback leaves the naive checks in place, and the result still runs
   clean — the "degrade to the NI floor" end of the contract. *)
let test_hang_degrades_to_safe () =
  let b = List.hd B.all in
  let ir = ir_of_source b.B.source in
  let config = fault_config ~scheme:Config.NI Mutate.Hang_fixpoint 1 in
  let opt, stats = Optimizer.optimize ~config ir in
  Alcotest.(check bool) "hang triggered" true (stats.Optimizer.faults_injected > 0);
  Alcotest.(check bool) "fuel incident recorded" true
    (List.exists
       (fun i -> i.Optimizer.inc_cause = Optimizer.Budget_exhausted)
       stats.Optimizer.incidents);
  (* no elimination happened in the rolled-back pass *)
  Alcotest.(check int) "rolled-back eliminate deleted nothing" 0
    stats.Optimizer.redundant_deleted;
  let o = Run.run opt in
  check_no_trap o;
  (* every naive check survived the failed optimization *)
  let o0 = Run.run ir in
  Alcotest.(check int) "dynamic checks at the NI floor or above" o0.Run.checks
    (max o.Run.checks o0.Run.checks)

(* Guard fuel in isolation: deterministic exhaustion point. *)
let test_fuel_deterministic () =
  let burn budget =
    let fu = Guard.fuel ~what:"t" ~budget in
    let n = ref 0 in
    (try
       Guard.with_fuel fu (fun () ->
           while true do
             Guard.tick_ambient ();
             incr n
           done)
     with Guard.Fuel_exhausted _ -> ());
    !n
  in
  (* the budget-th tick raises, so budget - 1 iterations complete *)
  Alcotest.(check int) "exhausts exactly at budget" 99 (burn 100);
  Alcotest.(check int) "replays identically" (burn 50) (burn 50)

(* --- unsound elimination: only the validator can see it ---------------- *)

(* The class the whole translation-validation tentpole exists for: a
   deleted live check is legal under every differential rule (deletion
   is what redundancy elimination does) and invisible to a trap-free
   run, so across benchmarks, schemes and seeds the only acceptable
   outcome is: no incident, certificate refused. A seed that finds no
   applicable site is vacuous and proves nothing, so the test also
   demands the fault applied somewhere. *)
let test_validator_catches_unsound_eliminate () =
  let applied = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun scheme ->
          List.iter
            (fun (b : B.benchmark) ->
              let ir = ir_of_source b.B.source in
              let config = fault_config ~scheme Mutate.Unsound_eliminate seed in
              let opt, stats = Optimizer.optimize ~config ir in
              let where =
                Fmt.str "%s under %a seed %d" b.B.name Config.pp config seed
              in
              if stats.Optimizer.faults_injected > 0 then begin
                incr applied;
                Alcotest.(check int)
                  (where ^ ": no pass rule caught the deletion")
                  0
                  (List.length stats.Optimizer.incidents);
                Alcotest.(check (option bool))
                  (where ^ ": validator refuses the certificate")
                  (Some false) (Optimizer.validated stats);
                (* the corrupted program still runs clean — exactly why
                   behaviour differencing cannot replace the validator *)
                let o = Run.run opt in
                Alcotest.(check bool)
                  (where ^ ": corruption is behaviourally silent")
                  true
                  (o.Run.printed = (Run.run ir).Run.printed)
              end
              else
                Alcotest.(check (option bool))
                  (where ^ ": clean compile keeps its certificate")
                  (Some true) (Optimizer.validated stats))
            [ List.nth B.all 0; List.nth B.all 3; List.nth B.all 9 ])
        [ Config.NI; Config.LLS ])
    [ 1; 7; 42; 1999 ];
  Alcotest.(check bool) "fault applied at least once (not vacuous)" true (!applied > 0)

(* --- incident accounting ----------------------------------------------- *)

let test_stats_json_reports_incidents () =
  let b = List.hd B.all in
  let ir = ir_of_source b.B.source in
  let _, stats =
    Optimizer.optimize ~config:(fault_config ~scheme:Config.CS Mutate.Drop_check 1) ir
  in
  Alcotest.(check bool) "fault applied" true (stats.Optimizer.faults_injected > 0);
  let json = Optimizer.stats_to_json stats in
  let has needle =
    let rec find i =
      if i + String.length needle > String.length json then false
      else String.sub json i (String.length needle) = needle || find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "json has incidents array" true (has "\"incidents\": [");
  Alcotest.(check bool) "json records the cause" true (has "\"cause\": \"verifier\"");
  Alcotest.(check bool) "json records the fault axis" true
    (has "\"fault\": \"drop-check:1\"");
  Alcotest.(check bool) "json counts injections" true (has "\"faults_injected\": ")

(* --- qcheck: random seeded faults never escape -------------------------- *)

(* For any (benchmark, class, seed, scheme): if the fault applied, it
   must draw an incident; applied or not, the output must be valid IR
   and print what the naive program prints. *)
let prop_faults_never_escape =
  QCheck.Test.make ~name:"random seeded faults never escape" ~count:60
    (QCheck.make
       ~print:(fun (bi, ci, seed, si) ->
         let cls = List.nth Mutate.all_classes ci in
         let scheme =
           if cls = Mutate.Unsound_eliminate then
             List.nth [ Config.NI; Config.LLS ] (si mod 2)
           else List.nth Config.extended_schemes si
         in
         Fmt.str "%s %s seed=%d %s"
           (List.nth B.all bi).B.name (Mutate.cls_name cls) seed
           (Config.scheme_name scheme))
       QCheck.Gen.(
         quad
           (int_bound (List.length B.all - 1))
           (int_bound (List.length Mutate.all_classes - 1))
           (int_bound 9999)
           (int_bound (List.length Config.extended_schemes - 1))))
    (fun (bi, ci, seed, si) ->
      let b = List.nth B.all bi in
      let cls = List.nth Mutate.all_classes ci in
      let scheme =
        (* unsound-eliminate's guarantee only holds for schemes whose
           residual in-place checks are reference checks (the CLI's
           fault matrix restricts it the same way) *)
        if cls = Mutate.Unsound_eliminate then
          List.nth [ Config.NI; Config.LLS ] (si mod 2)
        else List.nth Config.extended_schemes si
      in
      let ir = ir_of_source b.B.source in
      let opt, stats = Optimizer.optimize ~config:(fault_config ~scheme cls seed) ir in
      let detected =
        stats.Optimizer.faults_injected = 0
        || stats.Optimizer.incidents <> []
        || Optimizer.validated stats = Some false
      in
      detected
      && Ir.Verify.program opt = []
      && (Run.run opt).Run.printed = (Run.run ir).Run.printed)

let suite =
  [
    tc "restore_func round-trips the optimizer" test_restore_func_byte_for_byte;
    tc "restore_func round-trips each mutation" test_restore_after_each_mutation;
    tc "every fault class caught and recovered" test_class_matrix;
    tc "hang degrades to the safe NI floor" test_hang_degrades_to_safe;
    tc "validator catches unsound elimination" test_validator_catches_unsound_eliminate;
    tc "fuel exhaustion is deterministic" test_fuel_deterministic;
    tc "stats json reports incidents" test_stats_json_reports_incidents;
    QCheck_alcotest.to_alcotest prop_faults_never_escape;
  ]

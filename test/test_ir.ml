(* Lowering and IR structure: canonical check emission, loop shapes,
   bound-temp sharing, copying, printing. *)

open Util
module Ir = Nascent_ir
module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
open Ir.Types

let main_of src = Ir.Program.main_func (ir_of_source src)

let checks_of f = List.map (fun (m : check_meta) -> m.chk) (Ir.Func.all_check_metas f)

let test_store_emits_two_checks_per_dim () =
  let f = main_of "program t\ninteger a(1:10), n\nn = 1\na(n) = 0\nend" in
  Alcotest.(check int) "two checks" 2 (List.length (checks_of f));
  let f2 = main_of "program t\ninteger b(1:4, 0:5), n\nn = 1\nb(n, n) = 0\nend" in
  Alcotest.(check int) "four checks" 4 (List.length (checks_of f2))

let test_checks_precede_access () =
  let f = main_of "program t\ninteger a(1:10), n\nn = 1\na(n) = 0\nend" in
  (* within the entry block, both checks must appear before the store *)
  let b = Ir.Func.block f f.Ir.Func.entry in
  let rec scan seen_checks = function
    | [] -> Alcotest.fail "no store found"
    | Check _ :: rest -> scan (seen_checks + 1) rest
    | Store _ :: _ -> Alcotest.(check int) "checks before store" 2 seen_checks
    | _ :: rest -> scan seen_checks rest
  in
  scan 0 b.instrs

let test_canonical_forms_of_lowered_checks () =
  (* a(2*n - 1) on a(5:10): lower -2n <= -6, upper 2n <= 11 *)
  let f = main_of "program t\ninteger a(5:10), n\nn = 3\na(2*n - 1) = 0\nend" in
  let consts = List.sort compare (List.map Check.constant (checks_of f)) in
  Alcotest.(check (list int)) "constants" [ -6; 11 ] consts

let test_constant_subscript_checks_are_constant () =
  let f = main_of "program t\ninteger a(1:10)\na(5) = 0\nend" in
  List.iter
    (fun c ->
      match Check.compile_time_value c with
      | Some true -> ()
      | _ -> Alcotest.failf "expected compile-time true: %a" Check.pp c)
    (checks_of f)

let test_bound_temp_sharing () =
  (* two arrays with the same symbolic extent share one bound temp, so
     their upper checks are in one family *)
  let prog =
    ir_of_source
      "program t\n\
       integer n\n\
       n = 5\n\
       call s(n)\n\
       end\n\
       subroutine s(n)\n\
       integer n, i\n\
       real x(1:n), y(1:n)\n\
       do i = 1, n\n\
       x(i) = 1.0\n\
       y(i) = 2.0\n\
       enddo\n\
       end"
  in
  let f = Ir.Program.find_exn prog "s" in
  let uppers =
    List.filter_map
      (fun (m : check_meta) -> if m.kind = Upper then Some (Check.lhs m.chk) else None)
      (Ir.Func.all_check_metas f)
  in
  match uppers with
  | [ a; b ] -> Alcotest.(check bool) "same family" true (Linexpr.equal a b)
  | l -> Alcotest.failf "expected 2 upper checks, got %d" (List.length l)

let test_do_loop_shape () =
  let f = main_of "program t\ninteger i, s\ns = 0\ndo i = 1, 5\ns = s + 1\nenddo\nend" in
  match f.Ir.Func.loops with
  | [ Ldo d ] ->
      (* preheader ends in a goto to the header; header branches *)
      let pre = Ir.Func.block f d.d_preheader in
      (match pre.term with
      | Goto h -> Alcotest.(check int) "pre -> header" d.d_header h
      | _ -> Alcotest.fail "preheader must end in goto");
      let hd = Ir.Func.block f d.d_header in
      (match hd.term with
      | Branch (_, b, e) ->
          Alcotest.(check int) "then = body" d.d_body_entry b;
          Alcotest.(check int) "else = exit" d.d_exit e
      | _ -> Alcotest.fail "header must branch");
      let latch = Ir.Func.block f d.d_latch in
      (match latch.term with
      | Goto h -> Alcotest.(check int) "latch -> header" d.d_header h
      | _ -> Alcotest.fail "latch must loop");
      Alcotest.(check int) "step" 1 d.d_step
  | _ -> Alcotest.fail "expected one do loop"

let test_do_bounds_captured_in_temps () =
  (* symbolic bounds become entry temps; constants stay constants *)
  let f = main_of "program t\ninteger i, n\nn = 7\ndo i = 2, n\nenddo\nend" in
  match f.Ir.Func.loops with
  | [ Ldo d ] -> (
      (match d.d_lo with
      | Cint 2 -> ()
      | e -> Alcotest.failf "lo should be constant, got %a" Ir.Expr.pp e);
      match d.d_hi with
      | Evar v -> Alcotest.(check bool) "temp name" true (String.length v.vname > 1)
      | e -> Alcotest.failf "hi should be a temp, got %a" Ir.Expr.pp e)
  | _ -> Alcotest.fail "expected one do loop"

let test_nonliteral_step_rejected () =
  match ir_of_source "program t\ninteger i, s\ns = 2\ndo i = 1, 9, s\nenddo\nend" with
  | exception Ir.Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected lowering rejection of non-literal step"

let test_while_loop_shape () =
  let f = main_of "program t\ninteger n\nn = 0\nwhile n < 3 do\nn = n + 1\nendwhile\nend" in
  match f.Ir.Func.loops with
  | [ Lwhile w ] -> (
      let hd = Ir.Func.block f w.w_header in
      match hd.term with
      | Branch (_, b, e) ->
          Alcotest.(check int) "then = body" w.w_body_entry b;
          Alcotest.(check int) "else = exit" w.w_exit e
      | _ -> Alcotest.fail "header must branch")
  | _ -> Alcotest.fail "expected one while loop"

let test_copy_independent () =
  let prog = ir_of_source "program t\ninteger a(1:10), i\ndo i = 1, 10\na(i) = i\nenddo\nend" in
  let copy = Ir.Transform.copy_program prog in
  let f = Ir.Program.main_func copy in
  (* mutate the copy: drop all checks *)
  Ir.Transform.strip_checks_func f;
  let o_orig = Nascent_interp.Run.run prog in
  let o_copy = Nascent_interp.Run.run copy in
  Alcotest.(check int) "original keeps checks" 20 o_orig.checks;
  Alcotest.(check int) "copy stripped" 0 o_copy.checks

let test_opaque_subscript_atoms () =
  (* i*j is non-linear: one opaque atom, shared by both checks of the
     access and structurally hash-consed across accesses *)
  let f =
    main_of
      "program t\ninteger a(1:100), i, j, x\ni = 3\nj = 4\nx = a(i * j) + a(i * j)\nend"
  in
  let families =
    List.sort_uniq Linexpr.compare (List.map Check.lhs (checks_of f))
  in
  (* two families total: [i*j] upper and -[i*j] lower *)
  Alcotest.(check int) "two families" 2 (List.length families)

let contains ~affix s =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_printer_roundtrip_smoke () =
  let figure_src =
    "program t\ninteger a(5:10), n\nn = 3\na(2*n) = 0\na(2*n - 1) = 1\nprint n\nend"
  in
  let prog = ir_of_source figure_src in
  let s = Ir.Printer.program_to_string prog in
  Alcotest.(check bool) "mentions Check" true (contains ~affix:"Check" s);
  Alcotest.(check bool) "mentions goto" true (contains ~affix:"goto" s || contains ~affix:"return" s);
  Alcotest.(check bool) "nonempty" true (String.length s > 100)

let test_static_counts_skip_unreachable () =
  let f = main_of "program t\ninteger a(1:10)\nreturn\na(11) = 0\nend" in
  let _, checks = Ir.Func.static_counts f in
  Alcotest.(check int) "unreachable checks not counted" 0 checks

let suite =
  [
    tc "store emits two checks per dim" test_store_emits_two_checks_per_dim;
    tc "checks precede access" test_checks_precede_access;
    tc "canonical forms of lowered checks" test_canonical_forms_of_lowered_checks;
    tc "constant subscript checks are constant" test_constant_subscript_checks_are_constant;
    tc "bound temp sharing" test_bound_temp_sharing;
    tc "do loop shape" test_do_loop_shape;
    tc "do bounds captured in temps" test_do_bounds_captured_in_temps;
    tc "non-literal step rejected" test_nonliteral_step_rejected;
    tc "while loop shape" test_while_loop_shape;
    tc "copy independent" test_copy_independent;
    tc "opaque subscript atoms" test_opaque_subscript_atoms;
    tc "printer smoke" test_printer_roundtrip_smoke;
    tc "static counts skip unreachable" test_static_counts_skip_unreachable;
  ]

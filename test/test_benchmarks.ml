(* The 10-program suite: every benchmark must compile, run trap-free
   under naive checking, and stay behaviourally identical under every
   (scheme, kind, implication-mode) configuration. *)

open Util
module B = Nascent_benchmarks.Suite
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe

let ir_of b = ir_of_source b.B.source

let test_compiles (b : B.benchmark) () = ignore (ir_of b)

let test_runs_clean (b : B.benchmark) () =
  let o = Nascent_interp.Run.run (ir_of b) in
  check_no_trap o;
  Alcotest.(check bool) "prints a checksum" true (List.length o.printed >= 1);
  Alcotest.(check bool) "does real work" true (o.instrs > 1_000);
  Alcotest.(check bool) "has checks" true (o.checks > 100)

let test_check_ratio (b : B.benchmark) () =
  (* Table 1's conclusion: the naive dynamic check/instruction ratio is
     tens of percent. *)
  let ir = ir_of b in
  let bare = Nascent_ir.Transform.strip_checks ir in
  let oc = Nascent_interp.Run.run ir in
  let oi = Nascent_interp.Run.run bare in
  let ratio = 100.0 *. float_of_int oc.checks /. float_of_int oi.instrs in
  Alcotest.(check bool)
    (Fmt.str "ratio %.1f%% in [10, 90]" ratio)
    true
    (ratio >= 10.0 && ratio <= 90.0)

let equal_outcome (o1 : Nascent_interp.Run.outcome) (o2 : Nascent_interp.Run.outcome) =
  (o1.trap <> None) = (o2.trap <> None)
  && (o1.error <> None) = (o2.error <> None)
  && List.length o1.printed = List.length o2.printed
  && List.for_all2 Nascent_interp.Value.equal o1.printed o2.printed

let test_all_configs_sound (b : B.benchmark) () =
  let ir = ir_of b in
  let o1 = Nascent_interp.Run.run ir in
  check_no_trap o1;
  List.iter
    (fun kind ->
      List.iter
        (fun scheme ->
          List.iter
            (fun impl ->
              let opt, _ =
                Core.Optimizer.optimize ~config:(Config.make ~scheme ~kind ~impl ()) ir
              in
              let o2 = Nascent_interp.Run.run opt in
              if not (equal_outcome o1 o2) then
                Alcotest.failf "behaviour change under %s/%s/%s"
                  (Config.scheme_name scheme) (Config.kind_name kind)
                  (Universe.mode_name impl);
              if o2.checks > o1.checks then
                Alcotest.failf "%s/%s/%s increased checks %d -> %d"
                  (Config.scheme_name scheme) (Config.kind_name kind)
                  (Universe.mode_name impl) o1.checks o2.checks)
            [ Universe.All_implications; Universe.No_implications ])
        Config.extended_schemes)
    [ Config.PRX; Config.INX ]

let test_lls_eliminates_most (b : B.benchmark) () =
  let ir = ir_of b in
  let o1 = Nascent_interp.Run.run ir in
  let opt, _ = Core.Optimizer.optimize ~config:(Config.make ~scheme:Config.LLS ()) ir in
  let o2 = Nascent_interp.Run.run opt in
  let pct = 100.0 *. float_of_int (o1.checks - o2.checks) /. float_of_int o1.checks in
  Alcotest.(check bool) (Fmt.str "LLS eliminates %.1f%% (>= 80)" pct) true (pct >= 80.0)

let per_benchmark =
  List.concat_map
    (fun b ->
      [
        tc (b.B.name ^ ": compiles") (test_compiles b);
        tc (b.B.name ^ ": runs clean") (test_runs_clean b);
        tc (b.B.name ^ ": check ratio") (test_check_ratio b);
        tc (b.B.name ^ ": all configs sound") (test_all_configs_sound b);
        tc (b.B.name ^ ": LLS eliminates most") (test_lls_eliminates_most b);
      ])
    B.all

let test_suite_has_ten () = Alcotest.(check int) "ten benchmarks" 10 (List.length B.all)

let test_distinct_names () =
  let names = List.map (fun b -> b.B.name) B.all in
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare names))

let suite =
  tc "suite has ten programs" test_suite_has_ten
  :: tc "distinct names" test_distinct_names
  :: per_benchmark

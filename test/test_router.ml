(* The shard router: consistent-hash determinism and balance, the
   cache-locality routing key (envelope stripping), transport-level
   failover between live in-process shards, breaker ejection of a dead
   shard, probe-driven re-admission, and the all-down terminal error.

   The router's handler is exercised directly (it is just a function) —
   the shards behind it are real Server instances on real sockets, so
   forwards, refusals and EOFs are the genuine article. *)

module Server = Nascent_support.Server
module Client = Server.Client
module Router = Nascent_support.Router
module Json = Nascent_support.Json

let sfield resp key =
  match resp with
  | Json.Obj kvs -> (
      match List.assoc_opt key kvs with
      | Some (Json.Str s) -> s
      | _ -> Alcotest.failf "no string field %S in %s" key (Json.to_string resp))
  | _ -> Alcotest.failf "not an object: %s" (Json.to_string resp)

let bfield resp key =
  match resp with
  | Json.Obj kvs -> (
      match List.assoc_opt key kvs with
      | Some (Json.Bool b) -> b
      | _ -> Alcotest.failf "no bool field %S in %s" key (Json.to_string resp))
  | _ -> Alcotest.failf "not an object: %s" (Json.to_string resp)

(* a shard whose every response is stamped with its own name *)
let marker name =
  {
    Server.handle =
      (fun _ -> Json.Obj [ ("status", Json.Str "ok"); ("shard", Json.Str name) ]);
    status_extra = (fun () -> []);
  }

let shard_of path name = { Router.name; address = Client.Uds path }

let dead_shard name =
  (* an address nothing listens on: connect fails instantly *)
  shard_of
    (Filename.concat (Filename.get_temp_dir_name ())
       (Printf.sprintf "nascent-dead-%d-%s.sock" (Unix.getpid ()) name))
    name

let compile_req i =
  Json.Obj
    [
      ("op", Json.Str "compile");
      ("benchmark", Json.Str "linpackd");
      ("scheme", Json.Str "ALL");
      ("key", Json.Str (Printf.sprintf "k%d" i));
    ]

(* --- ring ------------------------------------------------------------- *)

let names_of shards = List.map (fun s -> s.Router.name) shards

let test_ring_deterministic () =
  let shards = [ dead_shard "a"; dead_shard "b"; dead_shard "c" ] in
  let r1 = Router.create ~shards () in
  let r2 = Router.create ~shards () in
  for i = 0 to 199 do
    let key = Printf.sprintf "key-%d" i in
    Alcotest.(check (list string))
      (Printf.sprintf "route %s identical across instances" key)
      (names_of (Router.route r1 key))
      (names_of (Router.route r2 key))
  done

let test_ring_covers_all_shards () =
  let shards = [ dead_shard "a"; dead_shard "b"; dead_shard "c" ] in
  let r = Router.create ~shards () in
  for i = 0 to 49 do
    let order = names_of (Router.route r (Printf.sprintf "key-%d" i)) in
    Alcotest.(check int) "every distinct shard appears once" 3
      (List.length order);
    Alcotest.(check (list string))
      "failover order is a permutation" [ "a"; "b"; "c" ]
      (List.sort compare order)
  done

let test_ring_balance () =
  let shards = [ dead_shard "a"; dead_shard "b"; dead_shard "c" ] in
  let r = Router.create ~shards () in
  let counts = Hashtbl.create 3 in
  let n = 3000 in
  for i = 0 to n - 1 do
    match Router.route r (Printf.sprintf "key-%d" i) with
    | first :: _ ->
        Hashtbl.replace counts first.Router.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts first.Router.name))
    | [] -> Alcotest.fail "empty route"
  done;
  List.iter
    (fun name ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts name) in
      (* perfectly even would be 1000; demand each shard owns at least
         half its fair share — consistent hashing with 64 points per
         shard is comfortably inside that *)
      if c < n / 6 then
        Alcotest.failf "shard %s owns only %d/%d keys" name c n)
    [ "a"; "b"; "c" ]

(* --- routing key ------------------------------------------------------- *)

let test_shard_key_strips_envelope () =
  let base = compile_req 1 in
  let with_envelope =
    Json.Obj
      [
        ("id", Json.Int 99);
        ("deadline_ms", Json.Int 5000);
        ("tier", Json.Str "auto");
        ("retries", Json.Int 3);
        ("lane", Json.Str "bg");
        ("bg_attempt", Json.Int 2);
        ("op", Json.Str "compile");
        ("benchmark", Json.Str "linpackd");
        ("scheme", Json.Str "ALL");
        ("key", Json.Str "k1");
      ]
  in
  Alcotest.(check string) "envelope fields do not affect routing"
    (Router.shard_key base)
    (Router.shard_key with_envelope)

let test_shard_key_canonical_order () =
  let a =
    Json.Obj [ ("op", Json.Str "compile"); ("benchmark", Json.Str "mdg") ]
  in
  let b =
    Json.Obj [ ("benchmark", Json.Str "mdg"); ("op", Json.Str "compile") ]
  in
  Alcotest.(check string) "field order is canonicalized" (Router.shard_key a)
    (Router.shard_key b)

let test_shard_key_content_sensitive () =
  if Router.shard_key (compile_req 1) = Router.shard_key (compile_req 2) then
    Alcotest.fail "different content hashed to the same routing key"

(* --- forwarding -------------------------------------------------------- *)

let test_forward_and_failover () =
  Test_server.with_server (marker "a") (fun path_a _ ->
      Test_server.with_server (marker "b") (fun path_b _ ->
          let shards = [ shard_of path_a "a"; shard_of path_b "b" ] in
          let r = Router.create ~threshold:100 ~shards () in
          let h = Router.handler r in
          (* live forwards land on the ring-first shard *)
          let hits = Hashtbl.create 2 in
          for i = 0 to 19 do
            let resp = h.Server.handle (compile_req i) in
            let s = sfield resp "shard" in
            Hashtbl.replace hits s ();
            let expected =
              match Router.route r (Router.shard_key (compile_req i)) with
              | first :: _ -> first.Router.name
              | [] -> Alcotest.fail "empty route"
            in
            Alcotest.(check string) "ring-first shard answered" expected s
          done;
          Alcotest.(check int) "both shards saw traffic" 2
            (Hashtbl.length hits);
          (* append a dead shard ahead in the ring somewhere: requests
             whose first candidate is dead must fail over to a live
             one, invisibly to the client *)
          let r2 =
            Router.create ~threshold:100
              ~shards:(dead_shard "zombie" :: shards)
              ()
          in
          let h2 = Router.handler r2 in
          for i = 0 to 29 do
            let resp = h2.Server.handle (compile_req i) in
            let s = sfield resp "shard" in
            if s <> "a" && s <> "b" then
              Alcotest.failf "request %d answered by %S" i s
          done))

let test_shard_errors_returned_as_is () =
  let erroring =
    {
      Server.handle =
        (fun _ ->
          Json.Obj [ ("code", Json.Str "boom"); ("detail", Json.Str "shard says no") ]);
      status_extra = (fun () -> []);
    }
  in
  Test_server.with_server erroring (fun path _ ->
      let r = Router.create ~shards:[ shard_of path "a" ] () in
      let resp = (Router.handler r).Server.handle (compile_req 0) in
      (* an error *response* is not a transport failure: no failover,
         no masking — the shard's backpressure belongs to the client *)
      Alcotest.(check string) "error code passed through" "boom"
        (sfield resp "code"))

let test_all_down () =
  let r =
    Router.create ~threshold:3 ~shards:[ dead_shard "a"; dead_shard "b" ] ()
  in
  let resp = (Router.handler r).Server.handle (compile_req 0) in
  Alcotest.(check string) "terminal error" "no-shard" (sfield resp "code");
  Alcotest.(check bool) "retryable" true (bfield resp "retryable")

let test_breaker_ejects_dead_shard () =
  Test_server.with_server (marker "live") (fun path _ ->
      let dead = dead_shard "dead" in
      let live = shard_of path "live" in
      let r =
        Router.create ~threshold:2 ~cooldown_s:600.0 ~shards:[ dead; live ] ()
      in
      let h = Router.handler r in
      Alcotest.(check bool) "dead shard starts admitted" true
        (Router.healthy r dead);
      (* enough forwards to hit the dead shard [threshold] times *)
      for i = 0 to 19 do
        let resp = h.Server.handle (compile_req i) in
        Alcotest.(check string) "live shard answers" "live" (sfield resp "shard")
      done;
      Alcotest.(check bool) "dead shard ejected" false (Router.healthy r dead);
      Alcotest.(check bool) "live shard stays admitted" true
        (Router.healthy r live))

let test_probe_readmits () =
  (* boot a shard, eject it by killing it, reboot it on the same
     socket, and watch the probe thread re-admit it *)
  let path = Test_server.fresh_socket () in
  let boot () =
    let cfg = Server.default_config ~socket_path:path in
    let srv = Server.create cfg (marker "s0") in
    let t = Thread.create (fun () -> Server.run srv) () in
    Test_server.wait_for_socket path;
    (srv, t)
  in
  let srv, t = boot () in
  let shard = shard_of path "s0" in
  let r =
    Router.create ~threshold:1 ~cooldown_s:0.05 ~probe_interval_s:0.05
      ~probe_timeout_s:1.0 ~shards:[ shard ] ()
  in
  Router.start r;
  Fun.protect
    ~finally:(fun () -> Router.stop r)
    (fun () ->
      let h = Router.handler r in
      Alcotest.(check string) "shard serving" "s0"
        (sfield (h.Server.handle (compile_req 0)) "shard");
      (* kill the shard; the next probe (or forward) trips the breaker *)
      Server.stop srv;
      Thread.join t;
      let rec wait_unhealthy n =
        if n <= 0 then Alcotest.fail "dead shard never ejected"
        else if Router.healthy r shard then begin
          ignore (h.Server.handle (compile_req 1));
          Unix.sleepf 0.05;
          wait_unhealthy (n - 1)
        end
      in
      wait_unhealthy 100;
      Alcotest.(check string) "all shards down" "no-shard"
        (sfield (h.Server.handle (compile_req 2)) "code");
      (* reboot on the same socket: a probe must re-admit it *)
      let srv2, t2 = boot () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv2;
          Thread.join t2;
          try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let rec wait_healthy n =
            if n <= 0 then Alcotest.fail "rebooted shard never re-admitted"
            else if not (Router.healthy r shard) then begin
              Unix.sleepf 0.05;
              wait_healthy (n - 1)
            end
          in
          wait_healthy 100;
          Alcotest.(check string) "rebooted shard serving again" "s0"
            (sfield (h.Server.handle (compile_req 3)) "shard")))

let suite =
  [
    Alcotest.test_case "ring is deterministic" `Quick test_ring_deterministic;
    Alcotest.test_case "route covers all shards" `Quick
      test_ring_covers_all_shards;
    Alcotest.test_case "ring balance" `Quick test_ring_balance;
    Alcotest.test_case "shard_key strips envelope" `Quick
      test_shard_key_strips_envelope;
    Alcotest.test_case "shard_key canonical order" `Quick
      test_shard_key_canonical_order;
    Alcotest.test_case "shard_key content sensitive" `Quick
      test_shard_key_content_sensitive;
    Alcotest.test_case "forward and failover" `Quick test_forward_and_failover;
    Alcotest.test_case "shard errors returned as-is" `Quick
      test_shard_errors_returned_as_is;
    Alcotest.test_case "all shards down" `Quick test_all_down;
    Alcotest.test_case "breaker ejects dead shard" `Quick
      test_breaker_ejects_dead_shard;
    Alcotest.test_case "probe re-admits rebooted shard" `Quick
      test_probe_readmits;
  ]

(* Crash durability, end to end: the write-ahead journal's recovery
   discipline (torn/corrupt records quarantined, done entries never
   replayed), the server's startup replay, SIGTERM mid-replay, the
   breaker/counter snapshot surviving a restart, and the acceptance
   criterion itself — the crash-recovery differential: a batch served
   uninterrupted and a batch recovered from a pre-crash journal produce
   byte-identical responses (modulo cache/timing fields), with no
   admitted request lost or compiled twice. *)

module Journal = Nascent_support.Journal
module Server = Nascent_support.Server
module Client = Server.Client
module Json = Nascent_support.Json
module Guard = Nascent_support.Guard
module Breaker = Nascent_support.Breaker
module Service = Nascent_harness.Service

let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nascent-journal-test-%d-%d" (Unix.getpid ()) !dir_counter)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nascent-jtest-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let openj_exn dir =
  match Journal.openj ~dir () with
  | Ok j -> j
  | Error e -> Alcotest.failf "journal open failed: %s" e

let payloads j = List.map (fun e -> e.Journal.payload) (Journal.pending j)

let log_path dir = Filename.concat dir "journal.log"

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* --- journal core ------------------------------------------------------- *)

let test_roundtrip_and_persistence () =
  let dir = fresh_dir () in
  let j = openj_exn dir in
  let s1 = Journal.append j {|{"op":"compile","benchmark":"vortex"}|} in
  let s2 = Journal.append j {|{"op":"compile","benchmark":"trfd"}|} in
  Alcotest.(check int) "two pending" 2 (Journal.pending_count j);
  Alcotest.(check (list string))
    "pending in admission order"
    [ {|{"op":"compile","benchmark":"vortex"}|}; {|{"op":"compile","benchmark":"trfd"}|} ]
    (payloads j);
  Journal.mark_done j s1;
  Alcotest.(check (list string))
    "done entry dropped" [ {|{"op":"compile","benchmark":"trfd"}|} ] (payloads j);
  Journal.close j;
  (* reopen: pending survives the process, done stays done *)
  let j2 = openj_exn dir in
  Alcotest.(check (list string))
    "pending survives reopen" [ {|{"op":"compile","benchmark":"trfd"}|} ] (payloads j2);
  (* replaying an already-done entry is a no-op: marking s1 done again
     (or any unknown seq) changes nothing *)
  Journal.mark_done j2 s1;
  Journal.mark_done j2 9999;
  Alcotest.(check int) "done-again is a no-op" 1 (Journal.pending_count j2);
  Journal.mark_done j2 s2;
  Alcotest.(check int) "all done" 0 (Journal.pending_count j2);
  Journal.close j2;
  let j3 = openj_exn dir in
  Alcotest.(check int) "empty after full drain" 0 (Journal.pending_count j3);
  (* a drained journal accepts new work *)
  let s3 = Journal.append j3 "late" in
  Alcotest.(check (list string)) "fresh append pending" [ "late" ] (payloads j3);
  Journal.mark_done j3 s3;
  Journal.close j3

let test_torn_trailing_entry_quarantined () =
  let dir = fresh_dir () in
  let j = openj_exn dir in
  let _ = Journal.append j {|{"op":"compile","benchmark":"vortex"}|} in
  let _ = Journal.append j {|{"op":"compile","benchmark":"qcd"}|} in
  Journal.close j;
  (* simulate a crash mid-append: a half-written record with no
     newline and a garbage digest at the tail of the log *)
  let raw = read_file (log_path dir) in
  write_file (log_path dir) (raw ^ "NJ1 deadbeefdeadbeefdeadbeefdeadbe A 77 {\"op\":\"compi");
  let j2 = openj_exn dir in
  Alcotest.(check int) "both real entries survive" 2 (Journal.pending_count j2);
  Alcotest.(check int) "torn tail quarantined, not fatal" 1 (Journal.quarantined j2);
  Alcotest.(check bool) "quarantine file exists" true
    (Sys.file_exists (Filename.concat dir "quarantine.log"));
  Journal.close j2

let test_corrupt_middle_entry_skipped () =
  let dir = fresh_dir () in
  let j = openj_exn dir in
  let _ = Journal.append j {|{"op":"compile","benchmark":"vortex"}|} in
  let _ = Journal.append j {|{"op":"compile","benchmark":"qcd"}|} in
  Journal.close j;
  (* flip a byte inside the FIRST record's payload: its digest no
     longer matches, the second record must still be recovered *)
  let raw = Bytes.of_string (read_file (log_path dir)) in
  let idx =
    match String.index_opt (Bytes.to_string raw) 'v' with
    | Some i -> i
    | None -> Alcotest.fail "payload byte not found"
  in
  Bytes.set raw idx 'X';
  write_file (log_path dir) (Bytes.to_string raw);
  let j2 = openj_exn dir in
  Alcotest.(check int) "intact record recovered" 1 (Journal.pending_count j2);
  Alcotest.(check int) "corrupt record quarantined" 1 (Journal.quarantined j2);
  Alcotest.(check (list string))
    "the survivor is the untouched one" [ {|{"op":"compile","benchmark":"qcd"}|} ]
    (payloads j2);
  Journal.close j2

let test_second_open_refused () =
  let dir = fresh_dir () in
  let j = openj_exn dir in
  (match Journal.openj ~dir () with
  | Ok _ -> Alcotest.fail "second open of a live journal must be refused"
  | Error e ->
      let contains_locked =
        let n = String.length e in
        let rec go i = i + 6 <= n && (String.sub e i 6 = "locked" || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the lock" true contains_locked);
  Journal.close j;
  (* the lock dies with its holder: reopen after close succeeds *)
  let j2 = openj_exn dir in
  Journal.close j2

(* --- server replay ------------------------------------------------------ *)

let wait_for_socket path =
  let rec go n =
    if n <= 0 then Alcotest.fail "server socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.01;
      go (n - 1)
    end
  in
  go 500

(* Boot a journaled server around an existing Service, run f, drain. *)
let with_journaled_server ~journal svc f =
  let path = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path:path) with Server.journal = Some journal }
  in
  let srv = Server.create cfg (Service.handler svc) in
  let runner = Thread.create (fun () -> Server.run srv) () in
  wait_for_socket path;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join runner;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path srv)

(* Same, with the service's tier-upgrade path wired to the server's
   background lane (the daemon's configuration). Wiring happens before
   the runner thread starts, so journal replay already sees it. *)
let with_tiered_journaled_server ?(tune = fun c -> c) ~journal svc f =
  let path = fresh_socket () in
  let cfg =
    tune
      { (Server.default_config ~socket_path:path) with Server.journal = Some journal }
  in
  let srv = Server.create cfg (Service.handler svc) in
  Service.set_upgrade_submit svc (Server.submit_background srv);
  let runner = Thread.create (fun () -> Server.run srv) () in
  wait_for_socket path;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join runner;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path srv)

let request_exn conn req =
  match Client.request conn req with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "request failed: %s" msg

let ifield resp name =
  match Json.int_member name resp with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int field %S: %s" name (Json.to_string resp)

let bfield resp name =
  match Json.bool_member name resp with
  | Some b -> b
  | None -> Alcotest.failf "response lacks bool field %S: %s" name (Json.to_string resp)

let sfield resp name =
  match Json.str_member name resp with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S: %s" name (Json.to_string resp)

let compile_req ?(id = Json.Int 0) ?(scheme = "LLS") ?fault benchmark =
  Json.Obj
    ([
       ("id", id);
       ("op", Json.Str "compile");
       ("benchmark", Json.Str benchmark);
       ("scheme", Json.Str scheme);
     ]
    @ match fault with None -> [] | Some f -> [ ("fault", Json.Str f) ])

let status_req = Json.Obj [ ("id", Json.Str "st"); ("op", Json.Str "status") ]

let test_server_replays_pending () =
  let dir = fresh_dir () in
  (* what a kill -9 leaves behind: one admitted-and-answered request,
     one admitted-but-unfinished one *)
  let j = openj_exn dir in
  let s_done = Journal.append j (Json.to_string (compile_req "vortex")) in
  let _s_pending = Journal.append j (Json.to_string (compile_req "trfd")) in
  Journal.mark_done j s_done;
  Journal.close j;
  let j = openj_exn dir in
  let svc = Service.create () in
  with_journaled_server ~journal:j svc @@ fun path _srv ->
  Client.with_conn path @@ fun conn ->
  let st = request_exn conn status_req in
  Alcotest.(check int) "exactly the unfinished entry was replayed" 1
    (ifield st "replayed");
  Alcotest.(check int) "journal drained by replay" 0 (ifield st "journal_pending");
  (* the replay went through the Memo-backed compile path: the
     recovering client's retry of the same request hits the warm cache *)
  let r_pending = request_exn conn (compile_req "trfd") in
  Alcotest.(check bool) "replayed request served from cache" true
    (bfield r_pending "cached");
  (* the done entry was NOT replayed: its compile is cold *)
  let r_done = request_exn conn (compile_req "vortex") in
  Alcotest.(check bool) "done entry was not replayed" false (bfield r_done "cached")

let test_sigterm_mid_replay_drains_cleanly () =
  let dir = fresh_dir () in
  let j = openj_exn dir in
  let _ = Journal.append j {|{"op":"noop","n":1}|} in
  let _ = Journal.append j {|{"op":"noop","n":2}|} in
  let _ = Journal.append j {|{"op":"noop","n":3}|} in
  Journal.close j;
  let j = openj_exn dir in
  let srv_ref = ref None in
  let handled = ref 0 in
  let handler =
    {
      Server.handle =
        (fun _req ->
          incr handled;
          (* the drain signal lands while entry 1 is replaying *)
          (match !srv_ref with Some srv -> Server.stop srv | None -> ());
          Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  let path = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path:path) with Server.journal = Some j }
  in
  let srv = Server.create cfg handler in
  srv_ref := Some srv;
  (* run synchronously: with stop arriving mid-replay it must return
     on its own, without ever binding the socket *)
  Server.run srv;
  Alcotest.(check int) "only the first entry was replayed" 1 !handled;
  Alcotest.(check bool) "socket never appeared" false (Sys.file_exists path);
  Alcotest.(check int) "the rest stays pending for the next start" 2
    (Journal.pending_count j);
  Journal.close j;
  (* the next start picks the remainder up *)
  let j2 = openj_exn dir in
  Alcotest.(check int) "pending survives to the successor" 2 (Journal.pending_count j2);
  Journal.close j2

(* --- the acceptance criterion: crash-recovery differential -------------- *)

let rec strip_volatile = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "cached" || k = "elapsed_ms" then None
             else Some (k, strip_volatile v))
           fields)
  | Json.List l -> Json.List (List.map strip_volatile l)
  | other -> other

let test_crash_recovery_differential () =
  let batch =
    [
      compile_req ~id:(Json.Int 1) ~scheme:"LLS" "vortex";
      compile_req ~id:(Json.Int 2) ~scheme:"CS" "trfd";
      compile_req ~id:(Json.Int 3) ~scheme:"SE" "qcd";
      compile_req ~id:(Json.Int 4) ~scheme:"LI" "mdg";
      compile_req ~id:(Json.Int 5) ~scheme:"ALL" "simple";
    ]
  in
  (* run A: uninterrupted *)
  let dir_a = fresh_dir () in
  let j_a = openj_exn dir_a in
  let responses_a =
    with_journaled_server ~journal:j_a (Service.create ()) @@ fun path _ ->
    Client.with_conn path @@ fun conn -> List.map (request_exn conn) batch
  in
  (* run B: every batch request was admitted (journaled) when the
     process was killed — nothing was answered, nothing marked done.
     The successor replays all of them, then the clients retry. *)
  let dir_b = fresh_dir () in
  let j_b = openj_exn dir_b in
  List.iter (fun req -> ignore (Journal.append j_b (Json.to_string req))) batch;
  Journal.close j_b;
  let j_b = openj_exn dir_b in
  let responses_b, status_b =
    with_journaled_server ~journal:j_b (Service.create ()) @@ fun path _ ->
    Client.with_conn path @@ fun conn ->
    let rs = List.map (request_exn conn) batch in
    (rs, request_exn conn status_req)
  in
  Alcotest.(check int) "every admitted request was replayed exactly once"
    (List.length batch) (ifield status_b "replayed");
  Alcotest.(check int) "journal fully drained" 0 (ifield status_b "journal_pending");
  (* replayed-then-retried must mean served-from-cache: the compile ran
     exactly once (during replay), the client response is the memo hit *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d served from the replay's cache entry"
           (ifield r "id"))
        true (bfield r "cached"))
    responses_b;
  (* the differential itself: byte-identical modulo cache/timing *)
  List.iter2
    (fun ra rb ->
      Alcotest.(check string)
        (Printf.sprintf "response %d identical across crash+recovery"
           (ifield ra "id"))
        (Json.to_string (strip_volatile ra))
        (Json.to_string (strip_volatile rb)))
    responses_a responses_b

(* --- crash mid-upgrade: replay priority and exactly-once ----------------- *)

let rec poll_until ?(n = 600) what f =
  if n = 0 then Alcotest.failf "timed out waiting for %s" what
  else if not (f ()) then begin
    Unix.sleepf 0.01;
    poll_until ~n:(n - 1) what f
  end

let ofield resp name =
  match Json.member name resp with
  | Some (Json.Obj _ as o) -> o
  | _ -> Alcotest.failf "response lacks object field %S: %s" name (Json.to_string resp)

(* The on-disk artifacts a run leaves behind, digested: the comparison
   unit for the crash differential below. *)
let cache_entries cache_dir =
  let d = Filename.concat cache_dir "service" in
  match Sys.readdir d with
  | entries ->
      Array.to_list entries |> List.sort compare
      |> List.map (fun e ->
             (e, Digest.to_hex (Digest.string (read_file (Filename.concat d e)))))
  | exception Sys_error _ -> Alcotest.failf "no cache artifacts under %s" d

(* Drive one tiered compile to its optimized tier and a drained lane,
   returning the status snapshot. *)
let drive_to_optimized conn =
  let cold = request_exn conn (compile_req "vortex") in
  poll_until "tier reaches optimized with the journal drained" (fun () ->
      let r = request_exn conn (compile_req "vortex") in
      let st = request_exn conn status_req in
      sfield r "tier" = "optimized"
      && ifield st "journal_pending" = 0
      && ifield (ofield st "upgrades") "pending" = 0);
  (cold, request_exn conn status_req)

(* kill -9 between the floor response and the upgrade's completion: the
   journal holds the admitted live request and its "lane":"bg" upgrade
   entry. The successor must (1) replay the live compile inline before
   the socket binds, (2) re-enqueue — not run — the upgrade, so it
   executes on the background lane behind live traffic, (3) run the
   hot-swap exactly once even though the live replay resubmits the same
   upgrade, and (4) leave byte-identical cache artifacts to a run that
   was never interrupted. *)
let test_upgrade_replay_exactly_once_byte_identical () =
  (* run A: uninterrupted tier lifecycle *)
  let cache_a = fresh_dir () in
  let svc_a = Service.create ~cache_dir:cache_a () in
  let cold_a, _ =
    with_tiered_journaled_server
      ~tune:(fun c -> { c with Server.jobs = 1 })
      ~journal:(openj_exn (fresh_dir ())) svc_a
    @@ fun path _ ->
    Client.with_conn path @@ fun conn -> drive_to_optimized conn
  in
  Alcotest.(check string) "run A began from the floor" "floor" (sfield cold_a "tier");
  (* run B: the journal a kill -9 mid-upgrade leaves behind *)
  let dir_b = fresh_dir () in
  let cache_b = fresh_dir () in
  let j = openj_exn dir_b in
  let _ = Journal.append j (Json.to_string (compile_req "vortex")) in
  let _ =
    Journal.append j
      (Json.to_string
         (Json.Obj
            [
              ("op", Json.Str "upgrade");
              ("lane", Json.Str "bg");
              ("benchmark", Json.Str "vortex");
              ("scheme", Json.Str "LLS");
            ]))
  in
  Journal.close j;
  let svc_b = Service.create ~cache_dir:cache_b () in
  (with_tiered_journaled_server
     ~tune:(fun c -> { c with Server.jobs = 1 })
     ~journal:(openj_exn dir_b) svc_b
   @@ fun path _ ->
   Client.with_conn path @@ fun conn ->
   let st0 = request_exn conn status_req in
   Alcotest.(check int) "both journal entries replayed" 2 (ifield st0 "replayed");
   (* the live entry completed during replay: the retry is a warm hit *)
   let warm = request_exn conn (compile_req "vortex") in
   Alcotest.(check bool) "replayed live compile served from cache" true
     (bfield warm "cached");
   poll_until "recovered upgrade completes on the background lane" (fun () ->
       let r = request_exn conn (compile_req "vortex") in
       let st = request_exn conn status_req in
       sfield r "tier" = "optimized"
       && ifield st "journal_pending" = 0
       && ifield (ofield st "upgrades") "pending" = 0);
   let st = request_exn conn status_req in
   (* exactly once: one hot-swap, one completed upgrade — the crashed
      entry and the replay's resubmission collapsed to a single
      promotion plus a noop, both on the background lane (bg_done),
      never inline during replay *)
   Alcotest.(check int) "one atomic hot-swap" 1 (ifield (ofield st "cache") "swaps");
   Alcotest.(check int) "one upgrade completed" 1
     (ifield (ofield st "upgrades") "done");
   Alcotest.(check int) "no upgrade failed or dropped" 0
     (ifield (ofield st "upgrades") "failed" + ifield (ofield st "upgrades") "dropped");
   Alcotest.(check int) "both jobs ran on the background lane" 2
     (ifield st "bg_done");
   let final = request_exn conn (compile_req "vortex") in
   Alcotest.(check string) "recovered artifact is the optimized tier" "LLS"
     (sfield final "scheme_used"));
  (* the differential: recovered artifacts byte-identical to run A's *)
  Alcotest.(check (list (pair string string)))
    "cache artifacts byte-identical across crash and recovery"
    (cache_entries cache_a) (cache_entries cache_b)

(* --- breaker / counter snapshot across restarts ------------------------- *)

let test_breaker_state_survives_restart () =
  let dir = fresh_dir () in
  let state_path = Filename.concat dir "state.json" in
  Unix.mkdir dir 0o755;
  (* life 1: trip the CS breaker with two faulty compiles *)
  let svc1 =
    Service.create ~breaker_threshold:2 ~breaker_cooldown_s:60.0 ~state_path ()
  in
  let dir_j1 = fresh_dir () in
  (with_journaled_server ~journal:(openj_exn dir_j1) svc1 @@ fun path _ ->
   Client.with_conn path @@ fun conn ->
   let r1 =
     request_exn conn (compile_req ~id:(Json.Int 1) ~scheme:"CS" ~fault:"drop-check:7" "vortex")
   in
   Alcotest.(check string) "faulty compile degrades" "degraded" (sfield r1 "status");
   let r2 =
     request_exn conn (compile_req ~id:(Json.Int 2) ~scheme:"CS" ~fault:"drop-check:7" "vortex")
   in
   Alcotest.(check string) "breaker open after threshold" "open" (sfield r2 "breaker"));
  Alcotest.(check bool) "state snapshot written" true (Sys.file_exists state_path);
  (* life 2: a fresh Service restores the snapshot — the tripped scheme
     stays routed to the NI floor (cooldown far from elapsed) *)
  let svc2 =
    Service.create ~breaker_threshold:2 ~breaker_cooldown_s:60.0 ~state_path ()
  in
  let dir_j2 = fresh_dir () in
  with_journaled_server ~journal:(openj_exn dir_j2) svc2 @@ fun path _ ->
  Client.with_conn path @@ fun conn ->
  let r = request_exn conn (compile_req ~id:(Json.Int 3) ~scheme:"CS" "vortex") in
  Alcotest.(check bool) "restored breaker routes to fallback" true (bfield r "fallback");
  Alcotest.(check string) "served at the NI floor" "NI" (sfield r "scheme_used");
  let st = request_exn conn status_req in
  Alcotest.(check int) "service counters restored across the restart" 3
    (ifield st "compiles")

let suite =
  [
    Util.tc "journal round-trips and persists" test_roundtrip_and_persistence;
    Util.tc "torn trailing entry quarantined" test_torn_trailing_entry_quarantined;
    Util.tc "corrupt middle entry skipped" test_corrupt_middle_entry_skipped;
    Util.tc "second open refused while locked" test_second_open_refused;
    Util.tc "server replays pending entries" test_server_replays_pending;
    Util.tc "SIGTERM mid-replay drains cleanly" test_sigterm_mid_replay_drains_cleanly;
    Util.tc "crash-recovery differential" test_crash_recovery_differential;
    Util.tc "crash mid-upgrade replays exactly once"
      test_upgrade_replay_exactly_once_byte_identical;
    Util.tc "breaker state survives restart" test_breaker_state_survives_restart;
  ]

(* The NF1 framed wire protocol, exercised as pure code: encode/decode
   roundtrips under every fragmentation, the full decode-error taxonomy
   (magic, version, length cap, CRC, id), decoder poisoning, and the
   blocking helpers driven through hostile partial-I/O schedules by
   Netfault's injectable reader/writer — a short read, a 1-byte drip,
   or an EINTR mid-frame must never surface a misparsed frame. *)

module Frame = Nascent_support.Frame
module Netfault = Nascent_support.Netfault
module Json = Nascent_support.Json

let frame_error =
  Alcotest.testable Frame.pp_error (fun a b -> a = b)

let next_exn d =
  match Frame.next d with
  | Ok (Some f) -> f
  | Ok None -> Alcotest.fail "expected a complete frame, got Ok None"
  | Error e -> Alcotest.failf "expected a frame, got %a" Frame.pp_error e

let check_no_frame d =
  match Frame.next d with
  | Ok None -> ()
  | Ok (Some f) -> Alcotest.failf "unexpected frame id=%d" f.Frame.id
  | Error e -> Alcotest.failf "unexpected decode error %a" Frame.pp_error e

(* --- roundtrips -------------------------------------------------------- *)

let test_roundtrip_single () =
  let payload = {|{"op":"status","id":7}|} in
  let d = Frame.decoder () in
  let s = Frame.encode ~id:42 payload in
  Frame.feed d s ~off:0 ~len:(String.length s);
  let f = next_exn d in
  Alcotest.(check int) "id" 42 f.Frame.id;
  Alcotest.(check string) "payload" payload f.Frame.payload;
  check_no_frame d;
  Alcotest.(check bool) "not mid-frame" false (Frame.mid_frame d)

let test_roundtrip_multi () =
  let d = Frame.decoder () in
  let frames = List.init 5 (fun i -> (i * 3, Printf.sprintf "payload-%d" i)) in
  let stream =
    String.concat "" (List.map (fun (id, p) -> Frame.encode ~id p) frames)
  in
  Frame.feed d stream ~off:0 ~len:(String.length stream);
  List.iter
    (fun (id, p) ->
      let f = next_exn d in
      Alcotest.(check int) "id" id f.Frame.id;
      Alcotest.(check string) "payload" p f.Frame.payload)
    frames;
  check_no_frame d

let test_roundtrip_byte_at_a_time () =
  let d = Frame.decoder () in
  let payload = String.init 257 (fun i -> Char.chr (i mod 256)) in
  let s = Frame.encode ~id:9000 payload in
  let got = ref None in
  String.iteri
    (fun i c ->
      Frame.feed d (String.make 1 c) ~off:0 ~len:1;
      match Frame.next d with
      | Ok None ->
          (* every prefix short of the whole frame is mid-frame *)
          if i < String.length s - 1 then
            Alcotest.(check bool) "mid-frame while partial" true
              (Frame.mid_frame d)
      | Ok (Some f) -> got := Some f
      | Error e -> Alcotest.failf "decode error at byte %d: %a" i Frame.pp_error e)
    s;
  match !got with
  | None -> Alcotest.fail "frame never completed"
  | Some f ->
      Alcotest.(check int) "id" 9000 f.Frame.id;
      Alcotest.(check string) "payload" payload f.Frame.payload;
      Alcotest.(check bool) "drained" false (Frame.mid_frame d)

let test_empty_payload () =
  let d = Frame.decoder () in
  let s = Frame.encode ~id:0 "" in
  Alcotest.(check int) "frame is bare header" Frame.header_bytes
    (String.length s);
  Frame.feed d s ~off:0 ~len:(String.length s);
  let f = next_exn d in
  Alcotest.(check int) "id" 0 f.Frame.id;
  Alcotest.(check string) "payload" "" f.Frame.payload

(* --- error taxonomy ---------------------------------------------------- *)

let feed_all d s = Frame.feed d s ~off:0 ~len:(String.length s)

let expect_error d expected =
  match Frame.next d with
  | Error e -> Alcotest.check frame_error "decode error" expected e
  | Ok (Some f) -> Alcotest.failf "expected error, decoded id=%d" f.Frame.id
  | Ok None -> Alcotest.fail "expected error, got Ok None"

let test_bad_magic () =
  let d = Frame.decoder () in
  feed_all d ("XYZ" ^ String.make 40 '\x00');
  expect_error d Frame.Bad_magic

let test_bad_version () =
  let s = Frame.encode ~id:1 "x" in
  let b = Bytes.of_string s in
  Bytes.set b 3 '\x63' (* version 99 *);
  let d = Frame.decoder () in
  feed_all d (Bytes.to_string b);
  expect_error d (Frame.Bad_version 99)

let test_crc_mismatch () =
  let s = Frame.encode ~id:5 "hello frame" in
  let b = Bytes.of_string s in
  let pos = Frame.header_bytes + 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let d = Frame.decoder () in
  feed_all d (Bytes.to_string b);
  expect_error d Frame.Crc_mismatch

let test_oversized () =
  (* forge a header declaring a payload past the cap; the decoder must
     reject on the header alone, before any payload arrives *)
  let s = Frame.encode ~id:1 "x" in
  let b = Bytes.of_string s in
  Bytes.set b 12 '\x7f';
  Bytes.set b 13 '\xff';
  Bytes.set b 14 '\xff';
  Bytes.set b 15 '\xff';
  let d = Frame.decoder () in
  (* header only — no payload bytes follow *)
  feed_all d (Bytes.sub_string b 0 Frame.header_bytes);
  expect_error d (Frame.Oversized 0x7fffffff)

let test_small_cap () =
  let d = Frame.decoder ~max_payload:8 () in
  feed_all d (Frame.encode ~id:1 "123456789");
  expect_error d (Frame.Oversized 9)

let test_bad_id () =
  let s = Frame.encode ~id:1 "x" in
  let b = Bytes.of_string s in
  Bytes.set b 4 '\xff' (* 8-byte id with the top bit set *);
  let d = Frame.decoder () in
  feed_all d (Bytes.to_string b);
  expect_error d Frame.Bad_id

let test_negative_id_encode () =
  match Frame.encode ~id:(-1) "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode accepted a negative id"

let test_poisoned_decoder () =
  let d = Frame.decoder () in
  feed_all d "garbage not a frame at all";
  expect_error d Frame.Bad_magic;
  (* feeding a perfectly valid frame afterwards must not revive it:
     framing has no resync point *)
  feed_all d (Frame.encode ~id:1 "ok");
  expect_error d Frame.Bad_magic;
  expect_error d Frame.Bad_magic

(* --- blocking helpers under hostile I/O schedules ---------------------- *)

let all_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* read_frame through Netfault.reader: seeded 1–4-byte reads plus EINTR
   at seeded points. For stream-preserving classes every frame must
   come back intact; for truncating classes (Truncated_write,
   Reset_mid_exchange: EOF mid-stream) the outcome must be a clean
   prefix of frames then Ok None — never an error, never a frame that
   was not sent. *)
let test_read_frame_faulty () =
  let payloads =
    [ {|{"op":"status"}|}; String.make 100 'a'; ""; "final" ]
  in
  let data =
    String.concat ""
      (List.mapi (fun i p -> Frame.encode ~id:(i + 1) p) payloads)
  in
  List.iter
    (fun cls ->
      List.iter
        (fun seed ->
          let spec = { Netfault.cls; seed } in
          let read = Netfault.reader spec ~data in
          let d = Frame.decoder () in
          let truncating =
            match cls with
            | Netfault.Truncated_write | Netfault.Reset_mid_exchange -> true
            | _ -> false
          in
          let rec drain acc =
            match Frame.read_frame ~read d with
            | Ok (Some f) -> drain (f :: acc)
            | Ok None -> List.rev acc
            | Error e ->
                Alcotest.failf "%s seed %d: decode error %a"
                  (Netfault.to_string spec) seed Frame.pp_error e
          in
          let got = drain [] in
          (* every decoded frame is one that was actually sent, in order *)
          List.iteri
            (fun i f ->
              Alcotest.(check int)
                (Printf.sprintf "%s seed %d: frame %d id"
                   (Netfault.to_string spec) seed i)
                (i + 1) f.Frame.id;
              Alcotest.(check string)
                "payload intact" (List.nth payloads i) f.Frame.payload)
            got;
          if truncating then begin
            (* EOF landed somewhere inside the stream: fewer frames, and
               if it fell mid-frame the decoder says so *)
            if List.length got = List.length payloads then
              Alcotest.failf "%s seed %d: truncated stream decoded fully"
                (Netfault.to_string spec) seed
          end
          else begin
            Alcotest.(check int)
              (Printf.sprintf "%s seed %d: all frames arrive"
                 (Netfault.to_string spec) seed)
              (List.length payloads) (List.length got);
            Alcotest.(check bool) "clean end" false (Frame.mid_frame d)
          end)
        all_seeds)
    [ Netfault.Delayed_bytes; Netfault.Stalled_reader;
      Netfault.Truncated_write; Netfault.Reset_mid_exchange ]

(* write_all through Netfault.writer: short writes and EINTR must never
   lose or reorder a byte. *)
let test_write_all_faulty () =
  let s = Frame.encode ~id:77 (String.init 300 (fun i -> Char.chr (i mod 256))) in
  List.iter
    (fun seed ->
      let spec = { Netfault.cls = Netfault.Delayed_bytes; seed } in
      let out = Buffer.create 64 in
      Frame.write_all ~write:(Netfault.writer spec ~out) s;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: bytes preserved" seed)
        s (Buffer.contents out))
    all_seeds

(* the mangler must actually break what it claims to break *)
let test_mangle_torn_fails_crc () =
  List.iter
    (fun seed ->
      let spec = { Netfault.cls = Netfault.Torn_frame; seed } in
      let s = Frame.encode ~id:3 "a payload long enough to tear" in
      let m = Netfault.mangle spec s in
      Alcotest.(check int) "same length" (String.length s) (String.length m);
      let d = Frame.decoder () in
      feed_all d m;
      match Frame.next d with
      | Error Frame.Crc_mismatch -> ()
      | Error e ->
          Alcotest.failf "seed %d: expected Crc_mismatch, got %a" seed
            Frame.pp_error e
      | Ok _ -> Alcotest.failf "seed %d: torn frame decoded" seed)
    all_seeds

(* --- hello handshake --------------------------------------------------- *)

let test_hello_roundtrip () =
  match Frame.check_hello (Frame.hello ()) with
  | Ok v -> Alcotest.(check int) "version" Frame.version v
  | Error e -> Alcotest.failf "own hello rejected: %s" e

let test_hello_rejects () =
  let bad j =
    match Frame.check_hello j with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "accepted bad hello as version %d" v
  in
  bad Json.Null;
  bad (Json.Obj [ ("hello", Json.Str "nf1") ]);
  bad (Json.Obj [ ("hello", Json.Str "nf1"); ("version", Json.Int 99) ]);
  bad (Json.Obj [ ("hello", Json.Str "nf2"); ("version", Json.Int 1) ])

(* --- netfault spec plumbing ------------------------------------------- *)

let test_spec_parse () =
  List.iter
    (fun cls ->
      let name = Netfault.cls_name cls in
      (match Netfault.parse name with
      | Ok s ->
          Alcotest.(check bool) "cls" true (s.Netfault.cls = cls);
          Alcotest.(check int) "default seed" 0 s.Netfault.seed
      | Error e -> Alcotest.failf "parse %s: %s" name e);
      match Netfault.parse (name ^ ":7") with
      | Ok s -> Alcotest.(check int) "seed" 7 s.Netfault.seed
      | Error e -> Alcotest.failf "parse %s:7: %s" name e)
    Netfault.all_classes;
  (match Netfault.parse "no-such-class" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown class");
  match Netfault.parse "torn-frame:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted negative seed"

let test_should_fault_periodic () =
  List.iter
    (fun seed ->
      let spec = { Netfault.cls = Netfault.Torn_frame; seed } in
      let faulted =
        List.filter (Netfault.should_fault spec) (List.init 30 Fun.id)
      in
      Alcotest.(check int) "one in three" 10 (List.length faulted);
      (* strictly periodic: a retrying client reaches a clean
         connection within two more attempts *)
      List.iter
        (fun n ->
          Alcotest.(check bool) "period 3" true
            (Netfault.should_fault spec (n + 3) = Netfault.should_fault spec n))
        (List.init 27 Fun.id))
    [ 0; 1; 2; 5 ]

let suite =
  [
    Alcotest.test_case "roundtrip single frame" `Quick test_roundtrip_single;
    Alcotest.test_case "roundtrip multiple frames" `Quick test_roundtrip_multi;
    Alcotest.test_case "roundtrip byte-at-a-time" `Quick
      test_roundtrip_byte_at_a_time;
    Alcotest.test_case "empty payload" `Quick test_empty_payload;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "bad version" `Quick test_bad_version;
    Alcotest.test_case "crc mismatch" `Quick test_crc_mismatch;
    Alcotest.test_case "oversized header rejected early" `Quick test_oversized;
    Alcotest.test_case "custom payload cap" `Quick test_small_cap;
    Alcotest.test_case "bad id" `Quick test_bad_id;
    Alcotest.test_case "negative id refused" `Quick test_negative_id_encode;
    Alcotest.test_case "decoder poisons on error" `Quick test_poisoned_decoder;
    Alcotest.test_case "read_frame under faulty reader" `Quick
      test_read_frame_faulty;
    Alcotest.test_case "write_all under faulty writer" `Quick
      test_write_all_faulty;
    Alcotest.test_case "torn mangle fails CRC" `Quick
      test_mangle_torn_fails_crc;
    Alcotest.test_case "hello roundtrip" `Quick test_hello_roundtrip;
    Alcotest.test_case "hello rejects mismatches" `Quick test_hello_rejects;
    Alcotest.test_case "fault spec parse" `Quick test_spec_parse;
    Alcotest.test_case "should_fault is periodic" `Quick
      test_should_fault_periodic;
  ]

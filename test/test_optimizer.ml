(* Scheme-level tests of the range check optimizer, including the
   paper's Figure 1 / Figure 6 transformations. *)

open Util
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe

let optimize ?(scheme = Config.LLS) ?(impl = Universe.All_implications)
    ?(kind = Config.PRX) src =
  let ir = ir_of_source src in
  let opt, stats = Core.Optimizer.optimize ~config:(Config.make ~scheme ~kind ~impl ()) ir in
  (ir, opt, stats)

let run = Nascent_interp.Run.run

(* naive and optimized runs must agree on output and trap behaviour,
   and the optimized program must never perform more checks. *)
let assert_equivalent ?(allow_equal = true) naive_ir opt_ir =
  let o1 = run naive_ir and o2 = run opt_ir in
  Alcotest.(check bool) "trap equivalence" (o1.trap <> None) (o2.trap <> None);
  Alcotest.(check bool) "error equivalence" (o1.error <> None) (o2.error <> None);
  if o1.trap = None && o1.error = None then
    Alcotest.(check bool)
      "same output" true
      (List.length o1.printed = List.length o2.printed
      && List.for_all2 Nascent_interp.Value.equal o1.printed o2.printed);
  if allow_equal then
    Alcotest.(check bool)
      (Fmt.str "fewer-or-equal checks (%d -> %d)" o1.checks o2.checks)
      true (o2.checks <= o1.checks);
  (o1, o2)

(* The paper's Figure 1 program: A declared 5..10, subscripts 2*N and
   2*N-1, N = 3 so everything is in range. *)
let figure1 =
  "program fig1\n\
   integer a(5:10), n\n\
   n = 3\n\
   a(2*n) = 0\n\
   a(2*n - 1) = 1\n\
   print n\n\
   end"

let test_fig1_naive_has_4_checks () =
  let ir = ir_of_source figure1 in
  let o = run ir in
  check_no_trap o;
  Alcotest.(check int) "4 checks" 4 o.checks

let test_fig1_ni_eliminates_one () =
  (* Figure 1(b): C2 (2n <= 10) implies C4 (2n-1 <= 10): three checks
     remain. *)
  let ir, opt, _ = optimize ~scheme:Config.NI figure1 in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "3 checks" 3 o2.checks

let test_fig1_cs_eliminates_two () =
  (* Figure 1(c): strengthening C1 to C3 makes C3 redundant: two checks
     remain. *)
  let ir, opt, stats = optimize ~scheme:Config.CS figure1 in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "strengthened something" true (stats.Core.Optimizer.strengthened > 0);
  Alcotest.(check int) "2 checks" 2 o2.checks

let test_fig1_no_implications_keeps_4 () =
  (* NI': without implications only exact duplicates are redundant. *)
  let ir, opt, _ = optimize ~scheme:Config.NI ~impl:Universe.No_implications figure1 in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "4 checks" 4 o2.checks

(* Figure 6: an invariant check and a linear check in a loop; both
   hoistable by preheader insertion. *)
let figure6 =
  "program fig6\n\
   integer a(1:10), j, k, n\n\
   n = 4\n\
   k = 2\n\
   do j = 1, 2 * n\n\
   a(k) = a(k) + 1\n\
   a(j) = a(j) + 1\n\
   enddo\n\
   print n\n\
   end"

let test_fig6_naive_checks () =
  let o = run (ir_of_source figure6) in
  check_no_trap o;
  (* 8 iterations x 2 accesses x 2 checks x 2 (load+store of same ref) *)
  Alcotest.(check int) "naive checks" (8 * 2 * 2 * 2) o.checks

let test_fig6_lls_hoists_everything () =
  let ir, opt, stats = optimize ~scheme:Config.LLS figure6 in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted linear" true (stats.Core.Optimizer.hoisted_linear > 0);
  Alcotest.(check bool) "hoisted invariant" true (stats.Core.Optimizer.hoisted_invariant > 0);
  (* All loop checks collapse to a handful of preheader checks. *)
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 8)

let test_fig6_li_hoists_only_invariant () =
  let ir, opt, stats = optimize ~scheme:Config.LI figure6 in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted invariant" true (stats.Core.Optimizer.hoisted_invariant > 0);
  Alcotest.(check int) "no linear hoists" 0 stats.Core.Optimizer.hoisted_linear;
  (* The linear checks on j remain in the loop. *)
  Alcotest.(check bool) (Fmt.str "some checks remain (%d)" o2.checks) true (o2.checks > 8)

let test_fig6_zero_trip_guard () =
  (* n = 0 gives an empty loop; the conditional checks must not fire. *)
  let src =
    "program fig6z\n\
     integer a(1:10), j, k, n\n\
     n = 0\n\
     k = 99\n\
     do j = 1, 2 * n\n\
     a(k) = 0\n\
     enddo\n\
     print 1\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check (option string)) "naive no trap" None o1.trap;
  Alcotest.(check (option string)) "optimized no trap" None o2.trap

let test_lls_trap_preserved () =
  (* The loop walks past the array bound: both versions must trap. *)
  let src =
    "program over\n\
     integer a(1:10), j\n\
     do j = 1, 11\n\
     a(j) = 0\n\
     enddo\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS src in
  let o1, o2 = assert_equivalent ir opt in
  trap_expected o1;
  trap_expected o2

let test_lls_downward_loop () =
  let src =
    "program down\n\
     integer a(1:10), j, s\n\
     s = 0\n\
     do j = 10, 1, -1\n\
     s = s + a(j)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, stats = optimize ~scheme:Config.LLS src in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted" true (stats.Core.Optimizer.hoisted_linear > 0);
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 4)

let test_lls_step2_constant_bounds () =
  let src =
    "program st2\n\
     integer a(1:10), j, s\n\
     s = 0\n\
     do j = 1, 9, 2\n\
     s = s + a(j)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, stats = optimize ~scheme:Config.LLS src in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted" true (stats.Core.Optimizer.hoisted_linear > 0);
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 4)

let test_lls_step2_exact_extreme () =
  (* do j = 1, 10, 3 visits 1,4,7,10; a(j+1) touches 11 > 10: trap.
     With last-value substitution the hoisted check must still trap —
     and for do j = 1, 9, 3 (last 7) it must NOT trap on a(1:8). *)
  let trap_src =
    "program s3a\ninteger a(1:10), j\ndo j = 1, 10, 3\na(j + 1) = 0\nenddo\nend"
  in
  let ok_src =
    "program s3b\ninteger a(1:8), j\ndo j = 1, 9, 3\na(j + 1) = 0\nenddo\nprint 1\nend"
  in
  let ir1, opt1, _ = optimize ~scheme:Config.LLS trap_src in
  ignore (assert_equivalent ir1 opt1);
  let ir2, opt2, _ = optimize ~scheme:Config.LLS ok_src in
  let o1, o2 = assert_equivalent ir2 opt2 in
  Alcotest.(check (option string)) "no trap naive" None o1.trap;
  Alcotest.(check (option string)) "no trap opt" None o2.trap

let test_lls_symbolic_bounds () =
  let src =
    "program sym\n\
     integer a(1:100), j, n, s\n\
     n = 50\n\
     s = 0\n\
     do j = 1, n\n\
     s = s + a(j)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS src in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 4)

let test_lls_nested_hoists_to_outermost () =
  (* The inner access a(i) is invariant in j and linear in i: it should
     end up as O(1) preheader checks of the outer loop. *)
  let src =
    "program nest\n\
     integer a(1:100), i, j, s\n\
     s = 0\n\
     do i = 1, 10\n\
     do j = 1, 10\n\
     s = s + a(i)\n\
     enddo\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "naive" 200 o1.checks;
  Alcotest.(check bool) (Fmt.str "O(1) checks (%d)" o2.checks) true (o2.checks <= 4)

let test_lls_triangular_nest () =
  (* do i = 1,n; do j = 1,i — the inner limit depends on the outer
     index; the hoisted inner check is linear in i and hoists again. *)
  let src =
    "program tri\n\
     integer a(1:100), i, j, s\n\
     s = 0\n\
     do i = 1, 10\n\
     do j = 1, i\n\
     s = s + a(j)\n\
     enddo\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LLS src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "naive" 110 o1.checks;
  Alcotest.(check bool)
    (Fmt.str "hoisted out of inner loop at least (%d)" o2.checks)
    true
    (o2.checks <= 24)

let test_while_li_hoist () =
  (* Invariant check in a while loop: LI hoists it with the loop
     condition as guard. *)
  let src =
    "program wli\n\
     integer a(1:10), k, n\n\
     k = 3\n\
     n = 0\n\
     while n < 20 do\n\
     a(k) = a(k) + 1\n\
     n = n + 1\n\
     endwhile\n\
     print n\n\
     end"
  in
  let ir, opt, stats = optimize ~scheme:Config.LI src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted" true (stats.Core.Optimizer.hoisted_invariant > 0);
  Alcotest.(check int) "naive" 80 o1.checks;
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 4)

let test_while_guard_false_never_checks () =
  let src =
    "program wgf\n\
     integer a(1:10), k, n\n\
     k = 99\n\
     n = 100\n\
     while n < 20 do\n\
     a(k) = 0\n\
     n = n + 1\n\
     endwhile\n\
     print 1\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.LI src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check (option string)) "naive no trap" None o1.trap;
  Alcotest.(check (option string)) "optimized no trap" None o2.trap

let test_se_eliminates_across_branches () =
  (* The same access appears on both branches; SE moves the check above
     the branch, halving the per-path count downstream. *)
  let src =
    "program br\n\
     integer a(1:10), n, i\n\
     n = 4\n\
     do i = 1, 5\n\
     if i > 2 then\n\
     a(n) = 1\n\
     else\n\
     a(n) = 2\n\
     endif\n\
     enddo\n\
     print a(4)\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.SE src in
  ignore (assert_equivalent ir opt)

let test_ni_straightline_duplicates () =
  let src =
    "program dup\ninteger a(1:10), n\nn = 5\na(n) = 1\na(n) = 2\nprint n\nend"
  in
  let ir, opt, _ = optimize ~scheme:Config.NI src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "naive 4" 4 o1.checks;
  Alcotest.(check int) "optimized 2" 2 o2.checks

let test_ni_kill_blocks_elimination () =
  (* n is redefined between the two accesses: the second pair of checks
     must survive. *)
  let src =
    "program kil\n\
     integer a(1:10), n\n\
     n = 5\n\
     a(n) = 1\n\
     n = 6\n\
     a(n) = 2\n\
     print n\n\
     end"
  in
  let ir, opt, _ = optimize ~scheme:Config.NI src in
  let o1, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "naive 4" 4 o1.checks;
  Alcotest.(check int) "optimized 4" 4 o2.checks

let test_compile_time_true_checks_removed () =
  let src = "program ctt\ninteger a(1:10)\na(5) = 1\nprint a(5)\nend" in
  let ir, opt, stats = optimize ~scheme:Config.NI src in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check int) "no runtime checks" 0 o2.checks;
  Alcotest.(check bool) "ct-deleted" true (stats.Core.Optimizer.compile_time_deleted > 0)

let test_compile_time_false_becomes_trap () =
  let src = "program ctf\ninteger a(1:10)\na(11) = 1\nend" in
  let ir, opt, stats = optimize ~scheme:Config.NI src in
  Alcotest.(check bool) "trap inserted" true (stats.Core.Optimizer.compile_time_traps > 0);
  let o1 = run ir and o2 = run opt in
  trap_expected o1;
  trap_expected o2

let test_all_schemes_sound_on_mixed_program () =
  let src =
    "program mix\n\
     integer a(1:50), b(0:9, 0:9), i, j, k, n, s\n\
     n = 10\n\
     k = 7\n\
     s = 0\n\
     do i = 1, n\n\
     a(i) = i\n\
     a(k) = a(k) + 1\n\
     if i > 5 then\n\
     a(i + 10) = 2\n\
     endif\n\
     do j = 1, 5\n\
     b(i - 1, j) = i + j\n\
     enddo\n\
     enddo\n\
     while k > 0 do\n\
     s = s + a(k)\n\
     k = k - 1\n\
     endwhile\n\
     print s\n\
     end"
  in
  let ir = ir_of_source src in
  List.iter
    (fun scheme ->
      List.iter
        (fun impl ->
          let opt, _ =
            Core.Optimizer.optimize ~config:(Config.make ~scheme ~impl ()) ir
          in
          let o1 = run ir and o2 = run opt in
          if not ((o1.trap <> None) = (o2.trap <> None)) then
            Alcotest.failf "trap mismatch under %s"
              (Config.scheme_name scheme);
          if o1.trap = None then begin
            if
              not
                (List.length o1.printed = List.length o2.printed
                && List.for_all2 Nascent_interp.Value.equal o1.printed o2.printed)
            then Alcotest.failf "output mismatch under %s" (Config.scheme_name scheme);
            if o2.checks > o1.checks then
              Alcotest.failf "%s increased dynamic checks %d -> %d"
                (Config.scheme_name scheme) o1.checks o2.checks
          end)
        [ Universe.All_implications; Universe.Cross_family_only; Universe.No_implications ])
    Config.all_schemes

let test_lls_beats_ni () =
  let src =
    "program cmp\n\
     integer a(1:100), i, s\n\
     s = 0\n\
     do i = 1, 100\n\
     s = s + a(i)\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir = ir_of_source src in
  let pct scheme =
    let opt, _ = Core.Optimizer.optimize ~config:(Config.make ~scheme ()) ir in
    let o0 = run ir and o = run opt in
    100.0 *. float_of_int (o0.checks - o.checks) /. float_of_int o0.checks
  in
  let ni = pct Config.NI and lls = pct Config.LLS in
  Alcotest.(check bool) (Fmt.str "LLS (%.1f%%) > NI (%.1f%%)" lls ni) true (lls > ni);
  Alcotest.(check bool) (Fmt.str "LLS ~ 98%% (%.1f%%)" lls) true (lls >= 95.0)

let test_lls_index_integrity_at_ir_level () =
  (* The frontend rejects assignments to an active do index, but the
     optimizer must not rely on that: inject `j = 0` into the loop body
     at the IR level and verify LLS refuses the substitution (the naive
     program never sees j = 6 at the access, so a hoisted extreme check
     against a(1:5) would trap spuriously). *)
  let src =
    "program inj\ninteger a(1:5), j\ndo j = 1, 6\na(j) = 0\nenddo\nprint j\nend"
  in
  let ir = ir_of_source src in
  let f = Nascent_ir.Program.main_func ir in
  let open Nascent_ir.Types in
  (* find the body block holding the store and prepend j = 0 *)
  let d =
    List.find_map (function Ldo d -> Some d | _ -> None) f.Nascent_ir.Func.loops
    |> Option.get
  in
  let body = Nascent_ir.Func.block f d.d_body_entry in
  body.instrs <- Assign (d.d_index, Cint 0) :: body.instrs;
  (* with the injection, the loop stores a(0)... that traps: adjust by
     assigning a safe constant value 1 instead *)
  body.instrs <-
    (match body.instrs with
    | Assign (v, Cint 0) :: rest -> Assign (v, Cint 1) :: rest
    | l -> l);
  let o1 = run ir in
  Alcotest.(check (option string)) "injected program does not trap" None o1.trap;
  let opt, stats = Core.Optimizer.optimize ~config:(Config.make ~scheme:Config.LLS ()) ir in
  Alcotest.(check int) "no linear hoist of the corrupted index" 0
    stats.Core.Optimizer.hoisted_linear;
  let o2 = run opt in
  Alcotest.(check (option string)) "optimized does not trap" None o2.trap

(* --- MCM (Markstein et al.), the paper's proposed comparison --------- *)

let test_mcm_hoists_simple_straightline_loop () =
  let src =
    "program m1\ninteger a(1:10), j, s\ns = 0\ndo j = 1, 10\ns = s + a(j)\nenddo\nprint s\nend"
  in
  let ir, opt, stats = optimize ~scheme:Config.MCM src in
  let _, o2 = assert_equivalent ir opt in
  Alcotest.(check bool) "hoisted" true (stats.Core.Optimizer.hoisted_linear > 0);
  Alcotest.(check bool) (Fmt.str "few checks (%d)" o2.checks) true (o2.checks <= 4)

let test_mcm_skips_branchy_body () =
  (* the access sits under an if: not an articulation node *)
  let src =
    "program m2\n\
     integer a(1:10), j, s\n\
     s = 0\n\
     do j = 1, 10\n\
     if j > 5 then\n\
     s = s + a(j)\n\
     endif\n\
     enddo\n\
     print s\n\
     end"
  in
  let ir, opt, stats = optimize ~scheme:Config.MCM src in
  ignore (assert_equivalent ir opt);
  ignore ir;
  Alcotest.(check int) "nothing hoisted" 0
    (stats.Core.Optimizer.hoisted_linear + stats.Core.Optimizer.hoisted_invariant)

let test_mcm_skips_complex_expressions () =
  (* 2*j - 1 is not a "simple" range expression for MCM, but LLS takes it *)
  let src =
    "program m3\ninteger a(1:19), j, s\ns = 0\ndo j = 1, 10\ns = s + a(2 * j - 1)\nenddo\nprint s\nend"
  in
  let _, opt_mcm, stats_mcm = optimize ~scheme:Config.MCM src in
  let ir, opt_lls, stats_lls = optimize ~scheme:Config.LLS src in
  ignore (assert_equivalent ir opt_lls);
  let o_mcm = run opt_mcm and o_lls = run opt_lls in
  Alcotest.(check int) "MCM hoists nothing linear" 0 stats_mcm.Core.Optimizer.hoisted_linear;
  Alcotest.(check bool) "LLS hoists it" true (stats_lls.Core.Optimizer.hoisted_linear > 0);
  Alcotest.(check bool)
    (Fmt.str "LLS (%d) < MCM (%d)" o_lls.checks o_mcm.checks)
    true
    (o_lls.checks < o_mcm.checks)

let test_mcm_trap_preserved () =
  let src =
    "program m4\ninteger a(1:10), j\ndo j = 1, 11\na(j) = 0\nenddo\nend"
  in
  let ir, opt, _ = optimize ~scheme:Config.MCM src in
  let o1, o2 = assert_equivalent ir opt in
  trap_expected o1;
  trap_expected o2

let suite =
  [
    tc "fig1: naive has 4 checks" test_fig1_naive_has_4_checks;
    tc "LLS: index integrity at IR level" test_lls_index_integrity_at_ir_level;
    tc "MCM: hoists simple straight-line loop" test_mcm_hoists_simple_straightline_loop;
    tc "MCM: skips branchy body" test_mcm_skips_branchy_body;
    tc "MCM: skips complex expressions" test_mcm_skips_complex_expressions;
    tc "MCM: trap preserved" test_mcm_trap_preserved;
    tc "fig1: NI eliminates one (implication)" test_fig1_ni_eliminates_one;
    tc "fig1: CS eliminates two (strengthening)" test_fig1_cs_eliminates_two;
    tc "fig1: NI' keeps all four" test_fig1_no_implications_keeps_4;
    tc "fig6: naive checks" test_fig6_naive_checks;
    tc "fig6: LLS hoists everything" test_fig6_lls_hoists_everything;
    tc "fig6: LI hoists only invariant" test_fig6_li_hoists_only_invariant;
    tc "fig6: zero-trip guard" test_fig6_zero_trip_guard;
    tc "LLS: trap preserved" test_lls_trap_preserved;
    tc "LLS: downward loop" test_lls_downward_loop;
    tc "LLS: step 2, constant bounds" test_lls_step2_constant_bounds;
    tc "LLS: step 3, exact extreme" test_lls_step2_exact_extreme;
    tc "LLS: symbolic bounds" test_lls_symbolic_bounds;
    tc "LLS: nested hoists to outermost" test_lls_nested_hoists_to_outermost;
    tc "LLS: triangular nest" test_lls_triangular_nest;
    tc "while: LI hoist with condition guard" test_while_li_hoist;
    tc "while: false guard never checks" test_while_guard_false_never_checks;
    tc "SE: sound across branches" test_se_eliminates_across_branches;
    tc "NI: straight-line duplicates" test_ni_straightline_duplicates;
    tc "NI: kill blocks elimination" test_ni_kill_blocks_elimination;
    tc "compile-time true checks removed" test_compile_time_true_checks_removed;
    tc "compile-time false becomes trap" test_compile_time_false_becomes_trap;
    tc "all schemes sound on mixed program" test_all_schemes_sound_on_mixed_program;
    tc "LLS beats NI (~98%)" test_lls_beats_ni;
  ]

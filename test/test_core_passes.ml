(* Unit-level tests of the core optimizer machinery: the analyses
   environment, availability/anticipatability block values, and the
   elimination pass internals — complementing the scheme-level tests in
   test_optimizer.ml. *)

open Util
module Ir = Nascent_ir
module Core = Nascent_core
module Checkctx = Core.Checkctx
module Analyses = Core.Analyses
module Universe = Nascent_checks.Universe
module Bitset = Nascent_support.Bitset
open Ir.Types

let ctx_of src =
  let prog = ir_of_source src in
  let f = Ir.Program.main_func prog in
  (prog, Checkctx.create_prx ~mode:Universe.All_implications f)

let straightline = "program t\ninteger a(1:10), n\nn = 5\na(n) = 1\na(n) = 2\nprint n\nend"

let test_universe_built_from_function () =
  let _, ctx = ctx_of straightline in
  let env = Analyses.make_env ctx in
  (* a(n) twice: families (n - 10-const? bounds constant) -> upper n <= 10,
     lower -n <= -1: 2 distinct checks *)
  Alcotest.(check int) "two distinct checks" 2 (Analyses.n_checks env)

let test_availability_flows_forward () =
  let _, ctx = ctx_of straightline in
  let env = Analyses.make_env ctx in
  let av = Analyses.availability env in
  let f = ctx.Checkctx.func in
  (* at function exit everything performed is available (no kills after) *)
  let exit_blocks =
    List.filter (fun b -> Ir.Func.succs f b = []) (Ir.Func.rpo f)
  in
  List.iter
    (fun b ->
      Alcotest.(check int) "all available at exit" (Analyses.n_checks env)
        (Bitset.cardinal av.Nascent_analysis.Dataflow.out.(b)))
    exit_blocks

let test_availability_killed_by_assignment () =
  let _, ctx =
    ctx_of "program t\ninteger a(1:10), n\nn = 5\na(n) = 1\nn = 6\na(n) = 2\nprint n\nend"
  in
  let env = Analyses.make_env ctx in
  let uni = env.Analyses.uni in
  (* walk the entry block: after `n = 6` the n-checks must not be
     available (simulated via instr_kills) *)
  let f = ctx.Checkctx.func in
  let b = Ir.Func.block f f.Ir.Func.entry in
  let killed =
    List.concat_map
      (fun i ->
        match i with
        | Assign (v, _) when v.vname = "n" ->
            Bitset.elements
              (let s = Bitset.create (Universe.size uni) in
               List.iter
                 (fun k -> Bitset.union_into ~into:s (Universe.killed_by_key uni k))
                 (ctx.Checkctx.instr_kill_keys i);
               s)
        | _ -> [])
      b.instrs
  in
  Alcotest.(check bool) "assignment to n kills checks" true (List.length killed > 0)

let test_anticipatability_at_entry () =
  let _, ctx = ctx_of straightline in
  let env = Analyses.make_env ctx in
  let ant = Analyses.anticipatability env in
  let f = ctx.Checkctx.func in
  (* after `n = 5`, both checks are anticipatable — but at the very
     function entry n is about to be assigned, so ANT-IN(entry) is
     empty only if the checks mention n (they do) *)
  Alcotest.(check bool) "nothing anticipatable before n defined" true
    (Bitset.is_empty ant.Nascent_analysis.Dataflow.in_.(f.Ir.Func.entry))

let test_eliminate_counts () =
  let prog, _ = ctx_of straightline in
  let copy = Ir.Transform.copy_program prog in
  let f = Ir.Program.main_func copy in
  let ctx = Checkctx.create_prx ~mode:Universe.All_implications f in
  let st = Core.Eliminate.run ctx in
  (* duplicate pair eliminated *)
  Alcotest.(check int) "redundant deleted" 2 st.Core.Eliminate.redundant_deleted;
  let _, remaining = Ir.Func.static_counts f in
  Alcotest.(check int) "two remain" 2 remaining

let test_compile_time_fold_guard () =
  (* a cond-check whose guard folds to false disappears; to true becomes
     a plain check *)
  let prog, _ = ctx_of "program t\ninteger a(1:10), n\nn = 5\na(n) = 1\nend" in
  let f = Ir.Program.main_func (Ir.Transform.copy_program prog) in
  let m =
    match Ir.Func.all_check_metas f with
    | m :: _ -> m
    | [] -> Alcotest.fail "no checks"
  in
  let b = Ir.Func.block f f.Ir.Func.entry in
  b.instrs <-
    b.instrs
    @ [
        Cond_check (Cbool false, m);
        Cond_check (Cbool true, m);
        Cond_check (Ebin (Le, Cint 1, Cint 2), m);
      ];
  let st = Core.Eliminate.new_stats () in
  Core.Eliminate.compile_time_checks f st;
  let plain, conds =
    List.fold_left
      (fun (p, c) i ->
        match i with
        | Check _ -> (p + 1, c)
        | Cond_check _ -> (p, c + 1)
        | _ -> (p, c))
      (0, 0) b.instrs
  in
  (* original 2 checks + 2 guards folded to true = 4 plain, 0 cond *)
  Alcotest.(check int) "plain checks" 4 plain;
  Alcotest.(check int) "cond checks left" 0 conds

let test_strengthen_stats_on_fig1 () =
  let prog, _ =
    ctx_of "program t\ninteger a(5:10), n\nn = 3\na(2*n) = 0\na(2*n - 1) = 1\nprint n\nend"
  in
  let f = Ir.Program.main_func (Ir.Transform.copy_program prog) in
  let ctx = Checkctx.create_prx ~mode:Universe.All_implications f in
  let st = Core.Strengthen.run ctx in
  Alcotest.(check int) "one check strengthened" 1 st.Core.Strengthen.strengthened

(* --- interpreter arithmetic edges ------------------------------------- *)

let test_interp_negative_mod () =
  let o = run_source "program t\ninteger x\nx = mod(-7, 3)\nprint x\nend" in
  check_no_trap o;
  (* OCaml/Fortran truncation: mod(-7,3) = -1 *)
  Alcotest.(check (list int)) "mod" [ -1 ] (printed_ints o)

let test_interp_integer_division_truncates () =
  let o = run_source "program t\ninteger x, y\nx = (0 - 7) / 2\ny = 7 / 2\nprint x\nprint y\nend" in
  check_no_trap o;
  Alcotest.(check (list int)) "division" [ -3; 3 ] (printed_ints o)

let test_interp_deep_call_chain () =
  let o =
    run_source
      "program t\n\
       integer n\n\
       n = 3\n\
       call f1(n)\n\
       end\n\
       subroutine f1(k)\n\
       integer k\n\
       call f2(k + 1)\n\
       end\n\
       subroutine f2(k)\n\
       integer k\n\
       print k\n\
       end"
  in
  check_no_trap o;
  Alcotest.(check (list int)) "chained" [ 4 ] (printed_ints o)

let test_interp_zero_size_array_always_traps () =
  let o = run_source "program t\ninteger a(5:4), n\nn = 5\na(n) = 1\nend" in
  trap_expected o

let suite =
  [
    tc "universe built from function" test_universe_built_from_function;
    tc "availability flows forward" test_availability_flows_forward;
    tc "availability killed by assignment" test_availability_killed_by_assignment;
    tc "anticipatability at entry" test_anticipatability_at_entry;
    tc "eliminate counts" test_eliminate_counts;
    tc "compile-time guard folding" test_compile_time_fold_guard;
    tc "strengthen stats on fig1" test_strengthen_stats_on_fig1;
    tc "interp: negative mod" test_interp_negative_mod;
    tc "interp: integer division truncates" test_interp_integer_division_truncates;
    tc "interp: deep call chain" test_interp_deep_call_chain;
    tc "interp: zero-size array always traps" test_interp_zero_size_array_always_traps;
  ]

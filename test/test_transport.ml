(* The framed TCP transport end to end: the NF1 hello handshake,
   per-connection pipelining with out-of-order completion, protocol
   rejection of legacy/mismatched clients, torn-frame containment, the
   idle reaper and slow-loris I/O deadline on both transports, client
   receive timeouts, and — the capstone — every Netfault class driven
   through a real chaos proxy in front of a real server, with
   request_retry recovering each time. *)

module Server = Nascent_support.Server
module Client = Server.Client
module Frame = Nascent_support.Frame
module Netfault = Nascent_support.Netfault
module Json = Nascent_support.Json
module Retry = Nascent_support.Retry

let sfield = Test_server.sfield
let ifield = Test_server.ifield
let request_exn = Test_server.request_exn
let status_req = Json.Obj [ ("op", Json.Str "status") ]

let parse_exn s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable JSON %S: %s" s e

(* every test here boots its server with a TCP listener on an
   ephemeral port alongside the Unix socket *)
let with_tcp ?(tune = fun c -> c) handler f =
  Test_server.with_server
    ~tune:(fun c -> tune { c with Server.tcp = Some ("127.0.0.1", 0) })
    handler
    (fun path srv ->
      match Server.tcp_port srv with
      | Some port -> f path srv port
      | None -> Alcotest.fail "TCP listener reported no bound port")

let ok_handler =
  {
    Server.handle =
      (fun req ->
        let tag =
          match Json.member "tag" req with Some t -> t | None -> Json.Null
        in
        Json.Obj [ ("status", Json.Str "ok"); ("tag", tag) ]);
    status_extra = (fun () -> []);
  }

(* --- raw NF1 plumbing (a hand-rolled client, for hostile sends) -------- *)

let tcp_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

let send_raw fd s =
  Frame.write_all ~write:(fun b off len -> Unix.write fd b off len) s

let read_one_frame fd dec =
  Frame.read_frame ~read:(fun b off len -> Unix.read fd b off len) dec

(* perform the hello handshake on a raw socket; return the decoder
   (which may already hold buffered bytes past the ack) *)
let raw_handshake fd =
  send_raw fd (Frame.encode ~id:0 (Json.to_string (Frame.hello ())));
  let dec = Frame.decoder () in
  (match read_one_frame fd dec with
  | Ok (Some f) -> (
      match Frame.check_hello (parse_exn f.Frame.payload) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad hello ack: %s" e)
  | Ok None -> Alcotest.fail "EOF during handshake"
  | Error e -> Alcotest.failf "handshake decode error: %a" Frame.pp_error e);
  dec

let read_all_raw fd =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 | (exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)) ->
        Buffer.contents out
    | n ->
        Buffer.add_subbytes out buf 0 n;
        go ()
  in
  go ()

(* --- handshake + pipelining ------------------------------------------- *)

let test_tcp_hello_and_request () =
  with_tcp ok_handler (fun path _ port ->
      let conn = Client.connect_addr (Client.Tcp ("127.0.0.1", port)) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          Alcotest.(check bool) "connection is framed" true (Client.framed conn);
          let resp =
            request_exn conn (Json.Obj [ ("id", Json.Int 7); ("op", Json.Str "status") ])
          in
          Alcotest.(check string) "status over TCP" "ok" (sfield resp "status"));
      (* the UDS side still speaks lines on the same server *)
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check int) "no proto rejects from a correct client" 0
            (ifield resp "proto_rejects")))

let test_pipelining_out_of_order () =
  let slow_fast =
    {
      Server.handle =
        (fun req ->
          (match Json.member "sleep_ms" req with
          | Some (Json.Int ms) -> Thread.delay (float_of_int ms /. 1000.0)
          | _ -> ());
          Json.Obj [ ("status", Json.Str "ok") ]);
      status_extra = (fun () -> []);
    }
  in
  with_tcp slow_fast (fun _ _ port ->
      let conn = Client.connect_addr ~recv_timeout_s:10.0 (Client.Tcp ("127.0.0.1", port)) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let slow =
            Client.pipeline_send conn
              (Json.Obj [ ("id", Json.Int 1); ("sleep_ms", Json.Int 400) ])
          in
          let fast =
            Client.pipeline_send conn (Json.Obj [ ("id", Json.Int 2) ])
          in
          let recv_tag () =
            match Client.pipeline_recv conn with
            | Ok (Some (fid, _)) -> fid
            | Ok None -> Alcotest.fail "EOF mid-pipeline"
            | Error _ -> Alcotest.fail "decode error mid-pipeline"
          in
          (* two workers: the fast request finishes and is written back
             while the slow one still sleeps *)
          Alcotest.(check int) "fast response overtakes slow" fast (recv_tag ());
          Alcotest.(check int) "slow response still arrives" slow (recv_tag ())))

(* --- protocol rejection ------------------------------------------------ *)

let test_legacy_client_rejected () =
  with_tcp ok_handler (fun path _ port ->
      let fd = tcp_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_raw fd (Json.to_string status_req ^ "\n");
          let got = read_all_raw fd in
          (* one clear line, then close *)
          let resp = parse_exn (String.trim got) in
          Alcotest.(check string) "proto-mismatch code" "proto-mismatch"
            (sfield resp "code"));
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "proto_rejects counted" true
            (ifield resp "proto_rejects" >= 1)))

let test_version_mismatch_rejected () =
  with_tcp ok_handler (fun path _ port ->
      let fd = tcp_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let hello = Frame.encode ~id:0 (Json.to_string (Frame.hello ())) in
          let b = Bytes.of_string hello in
          Bytes.set b 3 '\x02' (* a future protocol version *);
          send_raw fd (Bytes.to_string b);
          let got = read_all_raw fd in
          let resp = parse_exn (String.trim got) in
          Alcotest.(check string) "proto-mismatch code" "proto-mismatch"
            (sfield resp "code"));
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "counted as proto reject" true
            (ifield resp "proto_rejects" >= 1)))

let test_torn_frame_after_hello () =
  with_tcp ok_handler (fun path _ port ->
      let fd = tcp_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let dec = raw_handshake fd in
          (* a frame whose payload byte was flipped: CRC must catch it *)
          let torn =
            let s = Frame.encode ~id:1 {|{"op":"status"}|} in
            let b = Bytes.of_string s in
            Bytes.set b Frame.header_bytes 'X';
            Bytes.to_string b
          in
          send_raw fd torn;
          (* a greeted connection gets a *framed* error before the
             close, so a pipelining client sees a well-formed stream
             end, not garbage *)
          (match read_one_frame fd dec with
          | Ok (Some f) ->
              let resp = parse_exn f.Frame.payload in
              Alcotest.(check string) "framed frame-error" "frame-error"
                (sfield resp "code")
          | Ok None -> Alcotest.fail "closed without the framed error"
          | Error e ->
              Alcotest.failf "server sent undecodable bytes: %a" Frame.pp_error e);
          match read_one_frame fd dec with
          | Ok None -> () (* EOF: the connection is terminal *)
          | Ok (Some _) -> Alcotest.fail "connection survived a torn frame"
          | Error e -> Alcotest.failf "garbage after error: %a" Frame.pp_error e);
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "frame_errors counted" true
            (ifield resp "frame_errors" >= 1)))

let test_oversized_frame_rejected () =
  with_tcp ok_handler (fun path _ port ->
      let fd = tcp_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let dec = raw_handshake fd in
          let forged =
            let b = Bytes.of_string (Frame.encode ~id:1 "x") in
            Bytes.set b 12 '\x7f';
            Bytes.set b 13 '\xff';
            Bytes.set b 14 '\xff';
            Bytes.set b 15 '\xff';
            Bytes.sub_string b 0 Frame.header_bytes
          in
          send_raw fd forged;
          (match read_one_frame fd dec with
          | Ok (Some f) ->
              Alcotest.(check string) "framed frame-error" "frame-error"
                (sfield (parse_exn f.Frame.payload) "code")
          | Ok None -> Alcotest.fail "closed without the framed error"
          | Error e -> Alcotest.failf "undecodable: %a" Frame.pp_error e);
          match read_one_frame fd dec with
          | Ok None -> ()
          | _ -> Alcotest.fail "connection survived an oversized header");
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "frame_errors counted" true
            (ifield resp "frame_errors" >= 1)))

(* --- reaper and deadlines ---------------------------------------------- *)

let test_idle_reaper_uds () =
  Test_server.with_server
    ~tune:(fun c -> { c with Server.idle_timeout_s = Some 0.2 })
    ok_handler
    (fun path _ ->
      let conn = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* a silent connection with nothing owed is reaped *)
          match Client.recv_line conn with
          | None -> ()
          | Some l -> Alcotest.failf "reaped connection produced %S" l);
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "idle_closed counted" true
            (ifield resp "idle_closed" >= 1)))

let test_idle_reaper_tcp () =
  with_tcp
    ~tune:(fun c -> { c with Server.idle_timeout_s = Some 0.2 })
    ok_handler
    (fun path _ port ->
      let conn = Client.connect_addr (Client.Tcp ("127.0.0.1", port)) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* greeted, then silent: the reaper closes it *)
          match Client.pipeline_recv conn with
          | Ok None -> ()
          | Ok (Some _) -> Alcotest.fail "reaped connection produced a frame"
          | Error e ->
              Alcotest.failf "reaped connection garbled: %s"
                (match e with
                | `Frame fe -> Frame.error_name fe
                | `Garbled s -> s));
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "idle_closed counted" true
            (ifield resp "idle_closed" >= 1)))

let test_io_deadline_cuts_slow_loris () =
  with_tcp
    ~tune:(fun c -> { c with Server.io_deadline_s = Some 0.3 })
    ok_handler
    (fun path _ port ->
      let fd = tcp_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let dec = raw_handshake fd in
          (* start a frame and stall: the mid-frame deadline must cut
             us off rather than hold the reader hostage *)
          let frame = Frame.encode ~id:1 {|{"op":"status"}|} in
          send_raw fd (String.sub frame 0 10);
          let rec drain () =
            match read_one_frame fd dec with
            | Ok (Some _) -> drain ()
            | Ok None -> ()
            | Error e -> Alcotest.failf "garbage at close: %a" Frame.pp_error e
          in
          drain ());
      Client.with_conn path (fun c ->
          let resp = request_exn c status_req in
          Alcotest.(check bool) "io_timeouts counted" true
            (ifield resp "io_timeouts" >= 1)))

let test_client_recv_timeout () =
  (* a listener that accepts and never answers: the client's receive
     deadline must fire instead of hanging forever *)
  let path = Test_server.fresh_socket () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let accepted = ref None in
  let acceptor =
    Thread.create
      (fun () ->
        match Unix.accept lfd with
        | fd, _ -> accepted := Some fd
        | exception _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with _ -> ());
      Thread.join acceptor;
      (match !accepted with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let conn = Client.connect_addr ~recv_timeout_s:0.3 (Client.Uds path) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.exchange conn status_req with
          | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> ()
          | Ok _ -> Alcotest.fail "silent server produced a response"
          | Error _ -> Alcotest.fail "expected ETIMEDOUT, got a protocol error"))

let test_dribbled_line_response () =
  (* a server that answers one byte at a time: the client line reader
     must reassemble it *)
  let path = Test_server.fresh_socket () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let server =
    Thread.create
      (fun () ->
        match Unix.accept lfd with
        | exception _ -> ()
        | fd, _ ->
            let buf = Bytes.create 1024 in
            let _ = Unix.read fd buf 0 (Bytes.length buf) in
            let resp = {|{"id": 1, "status": "ok"}|} ^ "\n" in
            String.iter
              (fun c ->
                ignore (Unix.write fd (Bytes.make 1 c) 0 1);
                Thread.delay 0.002)
              resp;
            Unix.close fd)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with _ -> ());
      Thread.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Client.with_conn path (fun conn ->
          let resp = request_exn conn (Json.Obj [ ("id", Json.Int 1) ]) in
          Alcotest.(check string) "reassembled" "ok" (sfield resp "status")))

(* --- chaos e2e --------------------------------------------------------- *)

(* Every fault class, through a real proxy in front of a real TCP
   server: request_retry must recover every time — the faulted
   connection costs a retry, never an error. Deterministic in the
   seed. *)
let test_chaos_classes_recover () =
  with_tcp
    ~tune:(fun c -> { c with Server.io_deadline_s = Some 0.3 })
    ok_handler
    (fun _ _ port ->
      let upstream = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      List.iter
        (fun cls ->
          List.iter
            (fun seed ->
              let spec = { Netfault.cls; seed } in
              let stop = ref false in
              let proxy_port = ref 0 in
              let bound = Mutex.create () in
              let bound_cv = Condition.create () in
              let proxy =
                Thread.create
                  (fun () ->
                    Netfault.proxy
                      ~listen:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                      ~upstream
                      ~stop:(fun () -> !stop)
                      ~delay_s:1.0
                      ~on_listen:(fun addr ->
                        Mutex.lock bound;
                        (match addr with
                        | Unix.ADDR_INET (_, p) -> proxy_port := p
                        | _ -> ());
                        Condition.signal bound_cv;
                        Mutex.unlock bound)
                      spec)
                  ()
              in
              Mutex.lock bound;
              while !proxy_port = 0 do
                Condition.wait bound_cv bound
              done;
              let addr = Printf.sprintf "127.0.0.1:%d" !proxy_port in
              Mutex.unlock bound;
              Fun.protect
                ~finally:(fun () ->
                  stop := true;
                  Thread.join proxy)
                (fun () ->
                  (* connection 0 is faulted for seed 0; later seeds
                     shift the faulted residue — both paths must end Ok *)
                  for i = 0 to 2 do
                    match
                      Client.request_retry ~recv_timeout_s:2.0 ~seed:i addr
                        (Json.Obj
                           [ ("id", Json.Int i); ("tag", Json.Int (100 + i)) ])
                    with
                    | Ok resp ->
                        Alcotest.(check string)
                          (Printf.sprintf "%s req %d recovered"
                             (Netfault.to_string spec) i)
                          "ok" (sfield resp "status")
                    | Error e ->
                        Alcotest.failf "%s req %d failed: %s"
                          (Netfault.to_string spec) i e
                  done))
            [ 0; 1 ])
        Netfault.all_classes)

let suite =
  [
    Alcotest.test_case "TCP hello and request" `Quick test_tcp_hello_and_request;
    Alcotest.test_case "pipelining completes out of order" `Quick
      test_pipelining_out_of_order;
    Alcotest.test_case "legacy line client rejected" `Quick
      test_legacy_client_rejected;
    Alcotest.test_case "version mismatch rejected" `Quick
      test_version_mismatch_rejected;
    Alcotest.test_case "torn frame answered framed, then closed" `Quick
      test_torn_frame_after_hello;
    Alcotest.test_case "oversized header rejected" `Quick
      test_oversized_frame_rejected;
    Alcotest.test_case "idle reaper on UDS" `Quick test_idle_reaper_uds;
    Alcotest.test_case "idle reaper on TCP" `Quick test_idle_reaper_tcp;
    Alcotest.test_case "io deadline cuts slow loris" `Quick
      test_io_deadline_cuts_slow_loris;
    Alcotest.test_case "client recv timeout" `Quick test_client_recv_timeout;
    Alcotest.test_case "dribbled line response reassembled" `Quick
      test_dribbled_line_response;
    Alcotest.test_case "chaos classes recover through proxy" `Slow
      test_chaos_classes_recover;
  ]

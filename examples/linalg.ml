(* Domain example: dense linear algebra (the linpackd-style workload).

   Demonstrates the library as an embedded compiler: build a MiniF
   matrix-vector kernel, optimize it under PRX and INX check
   construction, and inspect which checks each leaves behind — the
   pivot row index loaded from memory is the classic check that no
   static scheme can hoist.

   Run with:  dune exec examples/linalg.exe
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Run = Nascent_interp.Run

let source =
  {|
program linalg
  integer n, i, j
  real a(1:24, 1:24), x(1:24), y(1:24)
  integer perm(1:24)
  real s

  n = 24

  do j = 1, n
    do i = 1, n
      a(i, j) = 1.0 / (i + j - 1)
    enddo
    x(j) = 1.0
    perm(j) = n - j + 1
  enddo

  ! y = A x, column order
  do i = 1, n
    y(i) = 0.0
  enddo
  do j = 1, n
    do i = 1, n
      y(i) = y(i) + a(i, j) * x(j)
    enddo
  enddo

  ! permuted gather: the subscript perm(i) is loaded from memory, so
  ! its range checks cannot be hoisted by any placement scheme
  s = 0.0
  do i = 1, n
    s = s + y(perm(i))
  enddo
  print s
end
|}

let count_remaining_checks prog =
  List.fold_left
    (fun acc f ->
      let _, c = Ir.Func.static_counts f in
      acc + c)
    0
    (Ir.Program.funcs_sorted prog)

let () =
  let naive = Ir.Lower.of_source source in
  let o0 = Run.run naive in
  Format.printf "naive: %d dynamic checks (%d static)@.@." o0.Run.checks
    (count_remaining_checks naive);
  List.iter
    (fun kind ->
      Format.printf "-- %s checks --@." (Config.kind_name kind);
      List.iter
        (fun scheme ->
          let config = Config.make ~scheme ~kind () in
          let optimized, _ = Core.Optimizer.optimize ~config naive in
          let o = Run.run optimized in
          assert (o.Run.printed = o0.Run.printed);
          Format.printf "  %-4s: %6d dynamic, %3d static remain@."
            (Config.scheme_name scheme) o.Run.checks (count_remaining_checks optimized))
        [ Config.NI; Config.SE; Config.LI; Config.LLS ])
    [ Config.PRX; Config.INX ];
  (* The checks LLS cannot remove: show them. *)
  let optimized, _ =
    Core.Optimizer.optimize ~config:(Config.make ~scheme:Config.LLS ()) naive
  in
  Format.printf "@.checks remaining after LLS (the perm(i) gather):@.";
  Ir.Program.iter_funcs
    (fun f ->
      List.iter
        (fun (m : Ir.Types.check_meta) ->
          Format.printf "  %a@." Ir.Printer.pp_check_meta m)
        (Ir.Func.all_check_metas f))
    optimized

(* Quickstart: the whole pipeline on a small program.

   Parse MiniF source, lower it to checked IR, optimize with the
   paper's winning scheme (LLS: preheader insertion with loop-limit
   substitution), and compare dynamic counts.

   Run with:  dune exec examples/quickstart.exe
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Run = Nascent_interp.Run

let source =
  {|
program quickstart
  integer i, n, a(1:100)
  integer total
  n = 100
  do i = 1, n
    a(i) = i * i
  enddo
  total = 0
  do i = 1, n
    total = total + a(i)
  enddo
  print total
end
|}

let () =
  (* 1. front end + lowering: every array access gets a lower and an
        upper canonical range check. *)
  let naive = Ir.Lower.of_source source in
  Format.printf "=== naive-checked IR ===@.%s@." (Ir.Printer.program_to_string naive);

  (* 2. run the instrumented interpreter: dynamic counts. *)
  let o0 = Run.run naive in
  Format.printf "naive run: %a@.@." Run.pp_outcome o0;

  (* 3. optimize (LLS) and run again. *)
  let config = Core.Config.make ~scheme:Core.Config.LLS () in
  let optimized, stats = Core.Optimizer.optimize ~config naive in
  Format.printf "=== optimizer statistics ===@.%a@.@." Core.Optimizer.pp_stats stats;
  Format.printf "=== optimized IR ===@.%s@." (Ir.Printer.program_to_string optimized);

  let o1 = Run.run optimized in
  Format.printf "optimized run: %a@.@." Run.pp_outcome o1;

  let pct =
    100.0 *. float_of_int (o0.Run.checks - o1.Run.checks) /. float_of_int o0.Run.checks
  in
  Format.printf "dynamic range checks: %d -> %d (%.1f%% eliminated)@." o0.Run.checks
    o1.Run.checks pct;
  assert (o1.Run.printed = o0.Run.printed)

(* Domain example: a 2-D five-point stencil sweep (the arc2d-style
   workload from the paper's motivation) compared under every placement
   scheme.

   Shows the canonical experiment a compiler writer would run: how many
   of the naive per-access checks does each scheme remove on a real
   loop nest, and what does each scheme actually do to the IR?

   Run with:  dune exec examples/stencil.exe
*)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Run = Nascent_interp.Run

let source =
  {|
program stencil
  integer m, i, j, t, iters
  real grid(0:33, 0:33), next(0:33, 0:33)
  real total
  m = 32
  iters = 4

  do j = 0, m + 1
    do i = 0, m + 1
      grid(i, j) = 0.01 * (i + j)
      next(i, j) = 0.0
    enddo
  enddo

  do t = 1, iters
    ! interior five-point update
    do j = 1, m
      do i = 1, m
        next(i, j) = 0.25 * (grid(i - 1, j) + grid(i + 1, j) + grid(i, j - 1) + grid(i, j + 1))
      enddo
    enddo
    do j = 1, m
      do i = 1, m
        grid(i, j) = next(i, j)
      enddo
    enddo
  enddo

  total = 0.0
  do j = 1, m
    do i = 1, m
      total = total + grid(i, j)
    enddo
  enddo
  print total
end
|}

let () =
  let naive = Ir.Lower.of_source source in
  let o0 = Run.run naive in
  Format.printf "naive: %d dynamic checks, %d instruction units@.@." o0.Run.checks
    o0.Run.instrs;
  Format.printf "%-6s %14s %12s %10s@." "scheme" "checks after" "%eliminated" "hoisted";
  List.iter
    (fun scheme ->
      let config = Config.make ~scheme () in
      let optimized, stats = Core.Optimizer.optimize ~config naive in
      let o = Run.run optimized in
      assert (o.Run.printed = o0.Run.printed);
      Format.printf "%-6s %14d %11.1f%% %10d@." (Config.scheme_name scheme) o.Run.checks
        (100.0 *. float_of_int (o0.Run.checks - o.Run.checks) /. float_of_int o0.Run.checks)
        (stats.Core.Optimizer.hoisted_invariant + stats.Core.Optimizer.hoisted_linear))
    Config.all_schemes;
  (* show what LLS left in the hot loop *)
  let optimized, _ =
    Core.Optimizer.optimize ~config:(Config.make ~scheme:Config.LLS ()) naive
  in
  Format.printf "@.=== IR after LLS ===@.%s@." (Ir.Printer.program_to_string optimized)

(* Reproduces the paper's worked examples (Figures 1, 5 and 6) —
   prints each program fragment before and after the relevant
   transformation, with dynamic check counts.

   Run with:  dune exec examples/figures.exe
*)

let () = Nascent_harness.Figures.all ()

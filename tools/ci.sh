#!/bin/sh
# One-command CI gate: build + tests + verifier sweep (the @ci alias).
set -eu
cd "$(dirname "$0")/.."
exec dune build @ci

#!/bin/sh
# One-command CI gate (the @ci alias): build + tests + verifier sweep
# (zero incidents), the fault-injection smoke matrix (`nascentc verify
# --inject-fault smoke`: every mutation class must be detected, rolled
# back and behaviour-preserving; a fault-free cell reporting an
# incident also fails), then the evaluation tables on a 2-domain pool
# (NASCENT_JOBS=2) with the serial-vs-parallel-vs-warm-cache
# determinism check — the gate fails if pool size or caching changes a
# single table cell.
set -eu
cd "$(dirname "$0")/.."
exec dune build @ci

#!/bin/sh
# One-command CI gate: `dune build @ci` (build + tests + verifier sweep
# with zero incidents + the fault-injection smoke matrix + the
# serial-vs-parallel-vs-warm-cache determinism check on a 2-domain
# pool), followed by the compile-service smoke — boot nascentd, drive
# it with the real client (plain compile, status, injected fault,
# deadline-exceeded), then prove the SIGTERM drain exits 0. Every
# client step runs under `timeout`, so a wedged daemon fails the gate
# instead of hanging it.
set -eu
cd "$(dirname "$0")/.."

dune build @ci

# --- compile-service smoke --------------------------------------------

SOCK="${TMPDIR:-/tmp}/nascent-ci-$$.sock"
LOG="${TMPDIR:-/tmp}/nascent-ci-$$.log"

fail() {
    echo "FAIL: $1" >&2
    [ -f "$LOG" ] && sed 's/^/  nascentd: /' "$LOG" >&2
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$SOCK" --jobs 2 >"$LOG" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -f "$SOCK" "$LOG"' EXIT INT TERM

client() {
    timeout 30 ./_build/default/bin/nascentc.exe client --connect "$SOCK" "$@"
}

i=0
while [ ! -S "$SOCK" ]; do
    kill -0 "$DAEMON" 2>/dev/null || fail "nascentd died on startup"
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd never bound $SOCK"
    sleep 0.1
done

# plain compile answers ok (exit 0)
client vortex >/dev/null || fail "service compile exited $?, want 0"

# an oracle compile answers ok and carries its validation certificate
OUT=$(client trfd --oracle) || fail "oracle compile exited $?, want 0"
echo "$OUT" | grep -q '"validated":true' \
    || fail "oracle compile response lacks \"validated\":true: $OUT"

# status answers inline (exit 0)
client --status >/dev/null || fail "service status exited $?, want 0"

# an injected fault compiles degraded, with incident records (exit 4)
rc=0; client vortex -s CS --inject-fault drop-check:7 >/dev/null || rc=$?
[ "$rc" -eq 4 ] || fail "injected-fault compile exited $rc, want 4"

# a hung request is cut off by its deadline (exit 6), worker freed
rc=0; client --burn --deadline-ms 300 >/dev/null || rc=$?
[ "$rc" -eq 6 ] || fail "deadline-exceeded request exited $rc, want 6"

# ...freed enough to keep serving
client vortex >/dev/null || fail "compile after deadline exited $?, want 0"

# SIGTERM drains gracefully: prompt exit, code 0
kill -TERM "$DAEMON"
i=0
while kill -0 "$DAEMON" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd did not drain within 10s of SIGTERM"
    sleep 0.1
done
rc=0; wait "$DAEMON" || rc=$?
[ "$rc" -eq 0 ] || fail "nascentd exited $rc after SIGTERM drain, want 0"

trap - EXIT INT TERM
rm -f "$SOCK" "$LOG"
echo "service smoke OK: compile, status, fault->4, deadline->6, SIGTERM drain->0"

# --- chaos smoke: supervision + journal replay ------------------------
# Boot a supervised, journaled daemon; prove a second daemon on the
# same journal is refused; kill -9 the serving child mid-request; the
# supervisor restarts it, the journal replays the orphaned request
# exactly once, and clients ride through the restart on retries.

CSOCK="${TMPDIR:-/tmp}/nascent-chaos-$$.sock"
CLOG="${TMPDIR:-/tmp}/nascent-chaos-$$.log"
CJDIR="${TMPDIR:-/tmp}/nascent-chaos-$$.journal"
BURNOUT="${TMPDIR:-/tmp}/nascent-chaos-$$.burn"

cfail() {
    echo "FAIL: $1" >&2
    [ -f "$CLOG" ] && sed 's/^/  nascentd: /' "$CLOG" >&2
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$CSOCK" --jobs 2 \
    --supervise --journal-dir "$CJDIR" >"$CLOG" 2>&1 &
SUPER=$!
trap 'kill "$SUPER" 2>/dev/null || true; rm -rf "$CSOCK" "$CLOG" "$CJDIR" "$BURNOUT"' EXIT INT TERM

cclient() {
    timeout 60 ./_build/default/bin/nascentc.exe client --connect "$CSOCK" "$@"
}

i=0
while [ ! -S "$CSOCK" ]; do
    kill -0 "$SUPER" 2>/dev/null || cfail "supervised nascentd died on startup"
    i=$((i + 1))
    [ "$i" -le 100 ] || cfail "supervised nascentd never bound $CSOCK"
    sleep 0.1
done

# a second daemon on the same journal directory is refused promptly
rc=0
timeout 10 ./_build/default/bin/nascentd.exe \
    --socket "$CSOCK.dup" --journal-dir "$CJDIR" >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || cfail "second daemon on a locked journal dir exited 0, want nonzero"

# park a long request so the kill orphans an admitted journal entry;
# its client rides the restart on retries and still ends at its own
# deadline (exit 6), not at a connection error
( rc=0; cclient --burn --deadline-ms 4000 --retries 10 --max-wait-ms 40000 \
      >/dev/null 2>&1 || rc=$?; echo "$rc" >"$BURNOUT" ) &
BURNER=$!
sleep 0.5

# kill -9 the serving child (its pid is in the supervisor's log)
CHILD=$(awk '/serving pid/ { pid = $(NF-1) } END { print pid }' "$CLOG")
case "$CHILD" in *[!0-9]*|"") cfail "could not parse serving pid from log" ;; esac
kill -9 "$CHILD" 2>/dev/null || cfail "serving child $CHILD already gone"

# clients ride through the restart: retries + total-elapsed budget
for bench in vortex trfd qcd mdg simple; do
    cclient "$bench" --retries 12 --max-wait-ms 40000 >/dev/null \
        || cfail "compile of $bench across restart exited $?, want 0"
done

# the parked burn client finished with its own deadline, not a transport error
wait "$BURNER" 2>/dev/null || true
[ -f "$BURNOUT" ] || cfail "burn client never finished"
[ "$(cat "$BURNOUT")" = "6" ] || cfail "burn client across restart exited $(cat "$BURNOUT"), want 6"

# status shows exactly one restart and the replayed orphan
STATUS=$(cclient --status) || cfail "status after restart exited $?"
echo "$STATUS" | grep -q '"restarts":1' \
    || cfail "status lacks \"restarts\":1: $STATUS"
echo "$STATUS" | grep -Eq '"replayed":[1-9]' \
    || cfail "status lacks a nonzero \"replayed\": $STATUS"
echo "$STATUS" | grep -q '"journal_pending":0' \
    || cfail "journal not drained after replay: $STATUS"

# SIGTERM on the supervisor passes through: child drains, both exit 0
kill -TERM "$SUPER"
i=0
while kill -0 "$SUPER" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || cfail "supervisor did not drain within 10s of SIGTERM"
    sleep 0.1
done
rc=0; wait "$SUPER" || rc=$?
[ "$rc" -eq 0 ] || cfail "supervisor exited $rc after SIGTERM drain, want 0"

trap - EXIT INT TERM
rm -rf "$CSOCK" "$CLOG" "$CJDIR" "$BURNOUT"
echo "chaos smoke OK: double-daemon refused, kill -9 -> restart, journal replay, clients ride through, SIGTERM drain->0"

#!/bin/sh
# One-command CI gate: `dune build @ci` (build + tests + verifier sweep
# with zero incidents + the fault-injection smoke matrix + the
# serial-vs-parallel-vs-warm-cache determinism check on a 2-domain
# pool), followed by the compile-service smoke — boot nascentd, drive
# it with the real client (plain compile, status, injected fault,
# deadline-exceeded), then prove the SIGTERM drain exits 0. Every
# client step runs under `timeout`, so a wedged daemon fails the gate
# instead of hanging it.
set -eu
cd "$(dirname "$0")/.."

dune build @ci

# --- compile-service smoke --------------------------------------------

SOCK="${TMPDIR:-/tmp}/nascent-ci-$$.sock"
LOG="${TMPDIR:-/tmp}/nascent-ci-$$.log"

fail() {
    echo "FAIL: $1" >&2
    [ -f "$LOG" ] && sed 's/^/  nascentd: /' "$LOG" >&2
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$SOCK" --jobs 2 >"$LOG" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -f "$SOCK" "$LOG"' EXIT INT TERM

client() {
    timeout 30 ./_build/default/bin/nascentc.exe client --connect "$SOCK" "$@"
}

i=0
while [ ! -S "$SOCK" ]; do
    kill -0 "$DAEMON" 2>/dev/null || fail "nascentd died on startup"
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd never bound $SOCK"
    sleep 0.1
done

# plain compile answers ok (exit 0)
client vortex >/dev/null || fail "service compile exited $?, want 0"

# tiered compilation: a cold miss answers instantly from the NI floor...
OUT=$(client qcd -s LLS) || fail "cold tier compile exited $?, want 0"
echo "$OUT" | grep -q '"tier":"floor"' \
    || fail "cold miss did not serve the floor tier: $OUT"
echo "$OUT" | grep -q '"scheme_used":"NI"' \
    || fail "floor response not compiled at NI: $OUT"
# ...and the background upgrade hot-swaps in the optimized artifact
i=0
until client qcd -s LLS | grep -q '"tier":"optimized"'; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "background upgrade to tier:optimized never landed"
    sleep 0.1
done

# an oracle compile (pinned synchronous) carries its validation certificate
OUT=$(client trfd --oracle --tier sync) || fail "oracle compile exited $?, want 0"
echo "$OUT" | grep -q '"validated":true' \
    || fail "oracle compile response lacks \"validated\":true: $OUT"

# status answers inline (exit 0)
client --status >/dev/null || fail "service status exited $?, want 0"

# an injected fault compiles degraded, with incident records (exit 4);
# --tier sync pins the faulted scheme on the live request — in auto
# mode the client would get the clean NI floor while the fault is
# contained in the background upgrade
rc=0; client vortex -s CS --inject-fault drop-check:7 --tier sync >/dev/null || rc=$?
[ "$rc" -eq 4 ] || fail "injected-fault compile exited $rc, want 4"

# a hung request is cut off by its deadline (exit 6), worker freed
rc=0; client --burn --deadline-ms 300 >/dev/null || rc=$?
[ "$rc" -eq 6 ] || fail "deadline-exceeded request exited $rc, want 6"

# ...freed enough to keep serving
client vortex >/dev/null || fail "compile after deadline exited $?, want 0"

# SIGTERM drains gracefully: prompt exit, code 0
kill -TERM "$DAEMON"
i=0
while kill -0 "$DAEMON" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd did not drain within 10s of SIGTERM"
    sleep 0.1
done
rc=0; wait "$DAEMON" || rc=$?
[ "$rc" -eq 0 ] || fail "nascentd exited $rc after SIGTERM drain, want 0"

trap - EXIT INT TERM
rm -f "$SOCK" "$LOG"
echo "service smoke OK: compile, tier floor->optimized, status, fault->4, deadline->6, SIGTERM drain->0"

# --- chaos smoke: supervision + journal replay ------------------------
# Boot a supervised, journaled daemon; prove a second daemon on the
# same journal is refused; kill -9 the serving child mid-request; the
# supervisor restarts it, the journal replays the orphaned request
# exactly once, and clients ride through the restart on retries.

CSOCK="${TMPDIR:-/tmp}/nascent-chaos-$$.sock"
CLOG="${TMPDIR:-/tmp}/nascent-chaos-$$.log"
CJDIR="${TMPDIR:-/tmp}/nascent-chaos-$$.journal"
BURNOUT="${TMPDIR:-/tmp}/nascent-chaos-$$.burn"

cfail() {
    echo "FAIL: $1" >&2
    [ -f "$CLOG" ] && sed 's/^/  nascentd: /' "$CLOG" >&2
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$CSOCK" --jobs 2 \
    --supervise --journal-dir "$CJDIR" >"$CLOG" 2>&1 &
SUPER=$!
trap 'kill "$SUPER" 2>/dev/null || true; rm -rf "$CSOCK" "$CLOG" "$CJDIR" "$BURNOUT"' EXIT INT TERM

cclient() {
    timeout 60 ./_build/default/bin/nascentc.exe client --connect "$CSOCK" "$@"
}

i=0
while [ ! -S "$CSOCK" ]; do
    kill -0 "$SUPER" 2>/dev/null || cfail "supervised nascentd died on startup"
    i=$((i + 1))
    [ "$i" -le 100 ] || cfail "supervised nascentd never bound $CSOCK"
    sleep 0.1
done

# a second daemon on the same journal directory is refused promptly
rc=0
timeout 10 ./_build/default/bin/nascentd.exe \
    --socket "$CSOCK.dup" --journal-dir "$CJDIR" >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || cfail "second daemon on a locked journal dir exited 0, want nonzero"

# park a long request so the kill orphans an admitted journal entry;
# its client rides the restart on retries and still ends at its own
# deadline (exit 6), not at a connection error
( rc=0; cclient --burn --deadline-ms 4000 --retries 10 --max-wait-ms 40000 \
      >/dev/null 2>&1 || rc=$?; echo "$rc" >"$BURNOUT" ) &
BURNER=$!
sleep 0.5

# kill -9 the serving child (its pid is in the supervisor's log)
CHILD=$(awk '/serving pid/ { pid = $(NF-1) } END { print pid }' "$CLOG")
case "$CHILD" in *[!0-9]*|"") cfail "could not parse serving pid from log" ;; esac
kill -9 "$CHILD" 2>/dev/null || cfail "serving child $CHILD already gone"

# clients ride through the restart: retries + total-elapsed budget
for bench in vortex trfd qcd mdg simple; do
    cclient "$bench" --retries 12 --max-wait-ms 40000 >/dev/null \
        || cfail "compile of $bench across restart exited $?, want 0"
done

# the parked burn client finished with its own deadline, not a transport error
wait "$BURNER" 2>/dev/null || true
[ -f "$BURNOUT" ] || cfail "burn client never finished"
[ "$(cat "$BURNOUT")" = "6" ] || cfail "burn client across restart exited $(cat "$BURNOUT"), want 6"

# status shows exactly one restart and the replayed orphan
STATUS=$(cclient --status) || cfail "status after restart exited $?"
echo "$STATUS" | grep -q '"restarts":1' \
    || cfail "status lacks \"restarts\":1: $STATUS"
echo "$STATUS" | grep -Eq '"replayed":[1-9]' \
    || cfail "status lacks a nonzero \"replayed\": $STATUS"
echo "$STATUS" | grep -q '"journal_pending":0' \
    || cfail "journal not drained after replay: $STATUS"

# --- kill -9 mid-upgrade: the journaled upgrade survives the restart --
# Trip the CS breaker (3 synchronous faulted compiles), then request a
# clean tiered CS compile: the client gets the floor at once, while the
# background upgrade is deferred by the open breaker — a deterministic
# window in which its journal entry is pending. kill -9 in that window;
# the restarted child replays the upgrade onto the background lane and,
# once the restored breaker's cooldown passes, completes it.
for n in 1 2 3; do
    rc=0; cclient vortex -s CS --inject-fault drop-check:7 --tier sync \
        --retries 12 --max-wait-ms 40000 >/dev/null 2>&1 || rc=$?
    [ "$rc" -eq 4 ] || cfail "breaker-trip compile $n exited $rc, want 4"
done
OUT=$(cclient qcd -s CS --retries 12 --max-wait-ms 40000) || true
echo "$OUT" | grep -q '"tier":"floor"' \
    || cfail "tiered compile under an open breaker did not serve the floor: $OUT"
sleep 0.3
CHILD=$(awk '/serving pid/ { pid = $(NF-1) } END { print pid }' "$CLOG")
case "$CHILD" in *[!0-9]*|"") cfail "could not parse serving pid for mid-upgrade kill" ;; esac
kill -9 "$CHILD" 2>/dev/null || cfail "serving child $CHILD already gone before mid-upgrade kill"
i=0
until OUT=$(cclient qcd -s CS --retries 12 --max-wait-ms 40000 2>/dev/null) \
    && echo "$OUT" | grep -q '"tier":"optimized"'; do
    i=$((i + 1))
    [ "$i" -le 200 ] || cfail "recovered upgrade never reached tier:optimized: $OUT"
    sleep 0.1
done
STATUS=$(cclient --status --retries 12 --max-wait-ms 40000) \
    || cfail "status after mid-upgrade restart exited $?"
echo "$STATUS" | grep -q '"restarts":2' \
    || cfail "status lacks \"restarts\":2 after the mid-upgrade kill: $STATUS"
echo "$STATUS" | grep -Eq '"done":[1-9]' \
    || cfail "no completed upgrade recorded after the restart: $STATUS"
# the replayed entry and the live resubmission dedup to one swap; the
# loser resolves as a noop on its next backoff tick — poll for the drain
i=0
until cclient --status --retries 12 --max-wait-ms 40000 \
    | grep -q '"journal_pending":0'; do
    i=$((i + 1))
    [ "$i" -le 100 ] || cfail "upgrade journal entry not drained after recovery"
    sleep 0.1
done

# SIGTERM on the supervisor passes through: child drains, both exit 0
kill -TERM "$SUPER"
i=0
while kill -0 "$SUPER" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || cfail "supervisor did not drain within 10s of SIGTERM"
    sleep 0.1
done
rc=0; wait "$SUPER" || rc=$?
[ "$rc" -eq 0 ] || cfail "supervisor exited $rc after SIGTERM drain, want 0"

trap - EXIT INT TERM
rm -rf "$CSOCK" "$CLOG" "$CJDIR" "$BURNOUT"
echo "chaos smoke OK: double-daemon refused, kill -9 -> restart, journal replay, kill -9 mid-upgrade -> upgrade completes, clients ride through, SIGTERM drain->0"

# --- shard smoke: framed TCP, router, chaos proxy, kill -9 a shard ----
# Three shards behind a consistent-hash router on a framed TCP port,
# with a torn-frame chaos proxy in front. A client batch runs through
# the proxy while one (supervised) shard is kill -9'd mid-burst: every
# request must still exit 0 — the dead shard costs failovers and
# retries, never a client-visible error — and the restarted shard must
# rejoin the ring. Finally, a quick open-loop load run must emit a
# well-formed BENCH_load.json with a zero-error chaos rung.

ROOT=$(pwd)
SBASE="${TMPDIR:-/tmp}/nascent-shard-$$"
S0="$SBASE-s0.sock"; S1="$SBASE-s1.sock"; S2="$SBASE-s2.sock"
RSOCK="$SBASE-router.sock"
S1LOG="$SBASE-s1.log"; RLOG="$SBASE-router.log"; PLOG="$SBASE-proxy.log"
BOUT="$SBASE-batch.out"

sfail() {
    echo "FAIL: $1" >&2
    for f in "$S1LOG" "$RLOG" "$PLOG"; do
        [ -f "$f" ] && sed "s|^|  $(basename "$f"): |" "$f" >&2
    done
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$S0" -j 1 --shard-name s0 \
    >/dev/null 2>&1 &
SH0=$!
./_build/default/bin/nascentd.exe --socket "$S1" -j 1 --shard-name s1 \
    --supervise >"$S1LOG" 2>&1 &
SH1=$!
./_build/default/bin/nascentd.exe --socket "$S2" -j 1 --shard-name s2 \
    >/dev/null 2>&1 &
SH2=$!
trap 'kill "$SH0" "$SH1" "$SH2" "$ROUTER" "$PROXY" 2>/dev/null || true; rm -f "$SBASE"-*' EXIT INT TERM
ROUTER=""; PROXY=""

for s in "$S0" "$S1" "$S2"; do
    i=0
    while [ ! -S "$s" ]; do
        i=$((i + 1)); [ "$i" -le 100 ] || sfail "shard never bound $s"
        sleep 0.1
    done
done

./_build/default/bin/nascentd.exe --socket "$RSOCK" --tcp 127.0.0.1:0 \
    --router --shard s0="$S0" --shard s1="$S1" --shard s2="$S2" \
    --probe-interval-s 0.2 >"$RLOG" 2>&1 &
ROUTER=$!
i=0
while [ ! -S "$RSOCK" ]; do
    kill -0 "$ROUTER" 2>/dev/null || sfail "router died on startup"
    i=$((i + 1)); [ "$i" -le 100 ] || sfail "router never bound $RSOCK"
    sleep 0.1
done

rstatus() {
    timeout 30 ./_build/default/bin/nascentc.exe client --connect "$RSOCK" --status
}

RPORT=$(rstatus | grep -o '"tcp_port":[0-9]*' | cut -d: -f2)
case "$RPORT" in *[!0-9]*|"") sfail "router status reported no tcp_port" ;; esac

# the chaos proxy tears one framed connection in three
CPORT=$((20000 + $$ % 20000))
./_build/default/bin/nascentd.exe --chaos torn-frame:1 \
    --tcp "127.0.0.1:$CPORT" --upstream "127.0.0.1:$RPORT" >"$PLOG" 2>&1 &
PROXY=$!
sleep 0.3
kill -0 "$PROXY" 2>/dev/null || sfail "chaos proxy died on startup"

pclient() {
    timeout 60 ./_build/default/bin/nascentc.exe client \
        --connect "127.0.0.1:$CPORT" --retries 12 --max-wait-ms 40000 \
        --recv-timeout-ms 5000 "$@"
}

# warm the path through proxy -> router -> shards
pclient vortex >/dev/null || sfail "compile through chaos proxy exited $?, want 0"

# full batch in the background; kill -9 the supervised shard mid-burst
( rc=0
  for bench in vortex arc2d bdna dyfesm mdg qcd spec77 trfd linpackd simple; do
      pclient "$bench" >/dev/null 2>&1 || { rc=$?; break; }
  done
  echo "$rc" >"$BOUT" ) &
BATCH=$!
sleep 0.4
CHILD=$(awk '/serving pid/ { pid = $(NF-1) } END { print pid }' "$S1LOG")
case "$CHILD" in *[!0-9]*|"") sfail "could not parse s1 serving pid" ;; esac
kill -9 "$CHILD" 2>/dev/null || sfail "s1 serving child $CHILD already gone"
wait "$BATCH" 2>/dev/null || true
[ -f "$BOUT" ] || sfail "client batch never finished"
[ "$(cat "$BOUT")" = "0" ] \
    || sfail "client batch across shard kill exited $(cat "$BOUT"), want 0"

# the supervisor restarted s1 and it rejoined the ring
S1STATUS=$(timeout 30 ./_build/default/bin/nascentc.exe client \
    --connect "$S1" --status --retries 12 --max-wait-ms 40000) \
    || sfail "s1 status after restart exited $?"
echo "$S1STATUS" | grep -q '"restarts":1' \
    || sfail "s1 status lacks \"restarts\":1: $S1STATUS"
i=0
until rstatus | grep -Eq '"name":"s1"[^}]*"state":"closed"'; do
    i=$((i + 1)); [ "$i" -le 100 ] || sfail "s1 never re-admitted to the ring"
    sleep 0.1
done

# drain everything: router and shards all exit 0 on SIGTERM
for p in "$PROXY" "$ROUTER" "$SH0" "$SH1" "$SH2"; do
    kill -TERM "$p" 2>/dev/null || sfail "process $p already dead at drain"
done
for p in "$PROXY" "$ROUTER" "$SH0" "$SH1" "$SH2"; do
    i=0
    while kill -0 "$p" 2>/dev/null; do
        i=$((i + 1)); [ "$i" -le 100 ] || sfail "pid $p did not drain in 10s"
        sleep 0.1
    done
    rc=0; wait "$p" || rc=$?
    [ "$rc" -eq 0 ] || sfail "pid $p exited $rc after SIGTERM, want 0"
done

trap - EXIT INT TERM
rm -f "$SBASE"-*
echo "shard smoke OK: chaos proxy batch->0 errors, kill -9 shard mid-burst ridden out, supervised shard rejoined, drains->0"

# --- quick open-loop load run -----------------------------------------
# A shrunk ladder (NASCENT_LOAD_QUICK=1) in a scratch directory, so the
# committed full-ladder BENCH_load.json is not clobbered. The bench
# itself exits nonzero if the chaos rung sees any client error.

LTMP=$(mktemp -d "${TMPDIR:-/tmp}/nascent-load-XXXXXX")
trap 'rm -rf "$LTMP"' EXIT INT TERM
( cd "$LTMP" && NASCENT_LOAD_QUICK=1 timeout 300 \
      "$ROOT/_build/default/bench/main.exe" load >load.log 2>&1 ) \
    || { sed 's/^/  bench load: /' "$LTMP/load.log" >&2
         echo "FAIL: quick bench load exited nonzero" >&2; exit 1; }
for key in '"one_shard"' '"three_shards"' '"chaos"' '"max_sustained_rps"'; do
    grep -q "$key" "$LTMP/BENCH_load.json" \
        || { echo "FAIL: BENCH_load.json lacks $key" >&2; exit 1; }
done
trap - EXIT INT TERM
rm -rf "$LTMP"
echo "load smoke OK: quick ladder + zero-error chaos rung, BENCH_load.json well-formed"

#!/bin/sh
# One-command CI gate: `dune build @ci` (build + tests + verifier sweep
# with zero incidents + the fault-injection smoke matrix + the
# serial-vs-parallel-vs-warm-cache determinism check on a 2-domain
# pool), followed by the compile-service smoke — boot nascentd, drive
# it with the real client (plain compile, status, injected fault,
# deadline-exceeded), then prove the SIGTERM drain exits 0. Every
# client step runs under `timeout`, so a wedged daemon fails the gate
# instead of hanging it.
set -eu
cd "$(dirname "$0")/.."

dune build @ci

# --- compile-service smoke --------------------------------------------

SOCK="${TMPDIR:-/tmp}/nascent-ci-$$.sock"
LOG="${TMPDIR:-/tmp}/nascent-ci-$$.log"

fail() {
    echo "FAIL: $1" >&2
    [ -f "$LOG" ] && sed 's/^/  nascentd: /' "$LOG" >&2
    exit 1
}

./_build/default/bin/nascentd.exe --socket "$SOCK" --jobs 2 >"$LOG" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -f "$SOCK" "$LOG"' EXIT INT TERM

client() {
    timeout 30 ./_build/default/bin/nascentc.exe client --connect "$SOCK" "$@"
}

i=0
while [ ! -S "$SOCK" ]; do
    kill -0 "$DAEMON" 2>/dev/null || fail "nascentd died on startup"
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd never bound $SOCK"
    sleep 0.1
done

# plain compile answers ok (exit 0)
client vortex >/dev/null || fail "service compile exited $?, want 0"

# status answers inline (exit 0)
client --status >/dev/null || fail "service status exited $?, want 0"

# an injected fault compiles degraded, with incident records (exit 4)
rc=0; client vortex -s CS --inject-fault drop-check:7 >/dev/null || rc=$?
[ "$rc" -eq 4 ] || fail "injected-fault compile exited $rc, want 4"

# a hung request is cut off by its deadline (exit 6), worker freed
rc=0; client --burn --deadline-ms 300 >/dev/null || rc=$?
[ "$rc" -eq 6 ] || fail "deadline-exceeded request exited $rc, want 6"

# ...freed enough to keep serving
client vortex >/dev/null || fail "compile after deadline exited $?, want 0"

# SIGTERM drains gracefully: prompt exit, code 0
kill -TERM "$DAEMON"
i=0
while kill -0 "$DAEMON" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "nascentd did not drain within 10s of SIGTERM"
    sleep 0.1
done
rc=0; wait "$DAEMON" || rc=$?
[ "$rc" -eq 0 ] || fail "nascentd exited $rc after SIGTERM drain, want 0"

trap - EXIT INT TERM
rm -f "$SOCK" "$LOG"
echo "service smoke OK: compile, status, fault->4, deadline->6, SIGTERM drain->0"

(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 4) on the 10-program MiniF suite, and
   times the optimizer configurations with Bechamel (one Test.make
   group per table).

   Usage:
     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- table1     # just Table 1
     dune exec bench/main.exe -- table2 | table3 | figures | canon | bech
*)

module E = Nascent_harness.Experiments
module Report = Nascent_harness.Report
module Figures = Nascent_harness.Figures
module Config = Nascent_core.Config
module B = Nascent_benchmarks.Suite

let chars = lazy (E.characterize_all ())

let run_table1 () = Report.table1 (Lazy.force chars)

let run_table2 () =
  let chars = Lazy.force chars in
  Report.table2 chars (E.table2 chars)

let run_table3 () =
  let chars = Lazy.force chars in
  Report.table3 chars (E.table3 chars)

let run_canon () = Report.canon (E.canon_ablation (Lazy.force chars))

let run_extensions () =
  let chars = Lazy.force chars in
  Report.extensions chars (E.extensions chars)

(* --- Bechamel: one Test.make per table ------------------------------- *)

let bech_tests () =
  let open Bechamel in
  let sources = List.map (fun b -> b.B.source) B.all in
  let irs () = List.map Nascent_ir.Lower.of_source sources in
  (* Table 1's measurement pipeline: characterize the suite
     (lower + loop analysis + static counts; dynamic runs excluded to
     keep the timer on compiler-side work). *)
  let t_table1 =
    Test.make ~name:"table1-characterize"
      (Staged.stage (fun () ->
           List.iter
             (fun ir ->
               Nascent_ir.Program.iter_funcs
                 (fun f -> ignore (Nascent_analysis.Loops.compute f))
                 ir;
               ignore (Nascent_ir.Program.static_counts ir))
             (irs ())))
  in
  (* Table 2's dominant cost: one full optimizer run per scheme (PRX). *)
  let t_table2 =
    Test.make ~name:"table2-optimize-all-schemes"
      (Staged.stage (fun () ->
           let irs = irs () in
           List.iter
             (fun scheme ->
               List.iter
                 (fun ir ->
                   ignore
                     (Nascent_core.Optimizer.optimize
                        ~config:(Config.make ~scheme ())
                        ir))
                 irs)
             Config.all_schemes))
  in
  (* Table 3's extra cost: the primed variants (implications off). *)
  let t_table3 =
    Test.make ~name:"table3-optimize-impl-ablation"
      (Staged.stage (fun () ->
           let irs = irs () in
           List.iter
             (fun (scheme, impl) ->
               List.iter
                 (fun ir ->
                   ignore
                     (Nascent_core.Optimizer.optimize
                        ~config:(Config.make ~scheme ~impl ())
                        ir))
                 irs)
             [
               (Config.NI, Nascent_checks.Universe.No_implications);
               (Config.SE, Nascent_checks.Universe.No_implications);
               (Config.LLS, Nascent_checks.Universe.Cross_family_only);
             ]))
  in
  [ t_table1; t_table2; t_table3 ]

let run_bech () =
  let open Bechamel in
  print_endline "";
  print_endline "Bechamel timers (one Test.make per table):";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all
             (Analyze.ols ~bootstrap:0 ~r_square:false
                ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    (bech_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let what = match args with [] -> [ "all" ] | xs -> xs in
  let run = function
    | "table1" -> run_table1 ()
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "figures" -> Figures.all ()
    | "canon" -> run_canon ()
    | "extensions" -> run_extensions ()
    | "bech" -> run_bech ()
    | "all" ->
        run_table1 ();
        run_table2 ();
        run_table3 ();
        run_extensions ();
        run_canon ();
        Figures.all ();
        run_bech ()
    | other ->
        Printf.eprintf "unknown target %s\n" other;
        exit 1
  in
  List.iter run what

(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 4) on the 10-program MiniF suite, and
   times the optimizer configurations with Bechamel (one Test.make
   group per table).

   Table generation fans the (benchmark × config) matrix over the
   domain pool (NASCENT_JOBS, default: host core count) and serves
   repeated cells from the content-addressed cache; per-target cache
   hit/miss counts are reported after each table.

   Usage:
     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- table1     # just Table 1
     dune exec bench/main.exe -- table2 | table3 | figures | canon | bech
     dune exec bench/main.exe -- tables     # tables only, no Bechamel (CI mode)
     dune exec bench/main.exe -- check-determinism  # serial vs parallel vs warm cache + oracle differential
     dune exec bench/main.exe -- oracle-diff  # --oracle vs baseline observable-identity matrix
     dune exec bench/main.exe -- speedup    # serial vs parallel wall-clock, JSON record
     dune exec bench/main.exe -- service    # warm-daemon latency vs cold nascentc startup
     dune exec bench/main.exe -- load       # open-loop RPS/latency ladder, 1 vs 3 shards + chaos
*)

module E = Nascent_harness.Experiments
module Report = Nascent_harness.Report
module Figures = Nascent_harness.Figures
module Config = Nascent_core.Config
module Core = Nascent_core
module Ir = Nascent_ir
module Run = Nascent_interp.Run
module B = Nascent_benchmarks.Suite
module Pool = Nascent_support.Pool
module Memo = Nascent_support.Memo
module Mclock = Nascent_support.Mclock

let chars = lazy (E.characterize_all ())

(* Per-target cache accounting: delta of the cell cache counters.
   Quarantined entries — corrupt disk-cache files detected, moved aside
   and recomputed — are reported whenever nonzero: they mean the cache
   directory is being damaged by something. *)
let with_cache_report what f =
  let b = E.cell_cache_stats () in
  f ();
  let a = E.cell_cache_stats () in
  let quarantined = a.Memo.quarantined - b.Memo.quarantined in
  Printf.printf "[cache] %s: %d hit(s) (%d from disk), %d miss(es)%s, jobs=%d\n%!" what
    (a.Memo.hits - b.Memo.hits)
    (a.Memo.disk_hits - b.Memo.disk_hits)
    (a.Memo.misses - b.Memo.misses)
    (if quarantined = 0 then ""
     else Printf.sprintf ", %d corrupt entr(ies) quarantined" quarantined)
    (Pool.default_jobs ())

(* Incident accounting: any cell that compiled degraded (a rolled-back
   optimizer pass) taints the numbers it contributed to — say so next
   to the table rather than leaving it buried in a stats record. *)
let incident_report what (tables : (Config.check_kind * E.row list) list) =
  let n =
    List.fold_left
      (fun acc (_, rows) ->
        List.fold_left
          (fun acc (r : E.row) ->
            List.fold_left (fun acc (c : E.cell) -> acc + c.E.incidents) acc r.E.cells)
          acc rows)
      0 tables
  in
  if n > 0 then
    Printf.printf "[incidents] %s: %d optimizer pass(es) rolled back — the affected \
                   cells report degraded (but safe) numbers\n%!"
      what n

let run_table1 () = Report.table1 (Lazy.force chars)

let run_table2 () =
  with_cache_report "table2" @@ fun () ->
  let chars = Lazy.force chars in
  let tables = E.table2 chars in
  Report.table2 chars tables;
  incident_report "table2" tables

let run_table3 () =
  with_cache_report "table3" @@ fun () ->
  let chars = Lazy.force chars in
  let tables = E.table3 chars in
  Report.table3 chars tables;
  incident_report "table3" tables

let run_canon () = Report.canon (E.canon_ablation (Lazy.force chars))

let run_extensions () =
  with_cache_report "extensions" @@ fun () ->
  let chars = Lazy.force chars in
  let tables = E.extensions chars in
  Report.extensions chars tables;
  incident_report "extensions" tables

(* Table-only mode: everything except the Bechamel timers, for CI. *)
let run_tables () =
  run_table1 ();
  run_table2 ();
  run_table3 ();
  run_extensions ();
  run_canon ()

(* --- oracle differential: --oracle vs baseline ------------------------ *)

(* The decision-procedure sweep (--oracle) may only delete checks it
   has proved can never trap, so across the whole benchmark × scheme ×
   kind matrix an oracle compile must be interpreter-observably
   identical to the baseline compile — same printed values, same
   trap/error behaviour — while executing no more dynamic checks. Each
   oracle cell must also carry a translation-validation certificate.
   Any divergence is a soundness bug, so the determinism gate fails on
   it. *)
let run_oracle_differential () =
  let failures = ref 0 in
  let cells = ref 0 in
  let strict = ref 0 in
  List.iter
    (fun (b : B.benchmark) ->
      let ir = Ir.Lower.of_source b.B.source in
      List.iter
        (fun scheme ->
          List.iter
            (fun kind ->
              incr cells;
              let compile oracle =
                let config = Config.make ~scheme ~kind ~oracle () in
                let opt, stats = Core.Optimizer.optimize ~config ir in
                (Run.run opt, stats)
              in
              let base, _ = compile false in
              let orac, stats = compile true in
              let where =
                Printf.sprintf "%s %s/%s" b.B.name
                  (Config.scheme_name scheme) (Config.kind_name kind)
              in
              let fail msg =
                incr failures;
                Printf.eprintf "FAIL: oracle differential: %s: %s\n%!" where msg
              in
              if orac.Run.printed <> base.Run.printed then
                fail "prints different values under --oracle";
              if orac.Run.trap <> base.Run.trap then
                fail
                  (Printf.sprintf "trap diverges under --oracle (%s vs %s)"
                     (Option.value ~default:"-" orac.Run.trap)
                     (Option.value ~default:"-" base.Run.trap));
              if orac.Run.error <> base.Run.error then
                fail "runtime error diverges under --oracle";
              if orac.Run.checks > base.Run.checks then
                fail
                  (Printf.sprintf "executes more checks than baseline (%d > %d)"
                     orac.Run.checks base.Run.checks);
              if orac.Run.checks < base.Run.checks then incr strict;
              if Core.Optimizer.validated stats <> Some true then
                fail "oracle compile carries no validation certificate")
            [ Config.PRX; Config.INX ])
        Config.extended_schemes)
    B.all;
  if !failures > 0 then begin
    Printf.eprintf "FAIL: oracle differential: %d violation(s) in %d cell(s)\n%!"
      !failures !cells;
    exit 1
  end;
  Printf.printf
    "oracle differential OK: %d cell(s) observably identical, oracle strictly \
     cheaper on %d\n\
     %!"
    !cells !strict

(* --- determinism gate: serial vs parallel vs warm cache --------------- *)

(* The full table suite minus timing columns: what must be invariant
   across pool sizes. Timings (range/compile seconds) legitimately
   differ between cold runs; everything else diverging means a pool or
   cache bug, so CI fails on it. *)
let structural_row (r : E.row) =
  ( r.E.label,
    Config.cache_key r.E.config,
    List.map
      (fun (c : E.cell) ->
        (c.E.dyn_checks_after, c.E.pct_eliminated, List.map fst c.E.pass_times,
         c.E.incidents))
      r.E.cells )

let structural tables =
  List.map
    (fun (kind, rows) -> (Config.kind_name kind, List.map structural_row rows))
    (List.concat tables)

let full_suite () =
  let chars = E.characterize_all () in
  (chars, [ E.table2 chars; E.table3 chars; E.extensions chars ])

let run_check_determinism () =
  let par_jobs = max 2 (Pool.default_jobs ()) in
  print_endline "";
  Printf.printf "determinism gate: serial vs jobs=%d vs warm cache\n%!" par_jobs;
  E.reset_cell_cache ();
  Pool.set_default_jobs 1;
  let _, serial = full_suite () in
  let serial_misses = (E.cell_cache_stats ()).Memo.misses in
  E.reset_cell_cache ();
  Pool.set_default_jobs par_jobs;
  let _, parallel = full_suite () in
  let parallel_misses = (E.cell_cache_stats ()).Memo.misses in
  if structural serial <> structural parallel then begin
    Printf.eprintf "FAIL: parallel tables diverge from the serial run\n%!";
    exit 1
  end;
  (* Warm rerun: every cell must come from the cache (zero
     re-optimizations) and the rows must be byte-identical, timing
     columns included. *)
  let before = E.cell_cache_stats () in
  let _, warm = full_suite () in
  let after = E.cell_cache_stats () in
  if after.Memo.misses <> before.Memo.misses then begin
    Printf.eprintf "FAIL: warm cache rerun re-optimized %d cell(s)\n%!"
      (after.Memo.misses - before.Memo.misses);
    exit 1
  end;
  if warm <> parallel then begin
    Printf.eprintf "FAIL: warm cache rerun is not byte-identical\n%!";
    exit 1
  end;
  Printf.printf
    "determinism gate OK: %d serial cell(s) == %d parallel cell(s), warm rerun \
     byte-identical with 0 re-optimizations\n\
     %!"
    serial_misses parallel_misses;
  run_oracle_differential ()

(* --- speedup baseline: serial vs parallel wall-clock ------------------ *)

let speedup_json_path = "BENCH_parallel.json"

let run_speedup () =
  let par_jobs = max 2 (Pool.default_jobs ()) in
  (* Cold-cache wall clock of the full table suite (characterization +
     Tables 2/3 + extensions), monotonic clock. *)
  let timed jobs =
    E.reset_cell_cache ();
    Pool.set_default_jobs jobs;
    let t0 = Mclock.counter () in
    ignore (full_suite ());
    Mclock.elapsed_s t0
  in
  let serial_s = timed 1 in
  let cells = (E.cell_cache_stats ()).Memo.misses in
  let parallel_s = timed par_jobs in
  let warm_t0 = Mclock.counter () in
  ignore (full_suite ());
  let warm_s = Mclock.elapsed_s warm_t0 in
  let speedup = serial_s /. parallel_s in
  Printf.printf
    "\nspeedup (full table suite, %d cells): serial %.3fs, jobs=%d %.3fs (%.2fx), \
     warm cache %.3fs (%.1fx)\n\
     %!"
    cells serial_s par_jobs parallel_s speedup warm_s (serial_s /. warm_s);
  let json =
    Printf.sprintf
      "{\n\
      \  \"suite\": \"characterize + table2 + table3 + extensions\",\n\
      \  \"cells\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"serial_s\": %.6f,\n\
      \  \"parallel_s\": %.6f,\n\
      \  \"speedup\": %.4f,\n\
      \  \"warm_cache_s\": %.6f,\n\
      \  \"warm_speedup\": %.4f\n\
       }\n"
      cells
      (Domain.recommended_domain_count ())
      par_jobs serial_s parallel_s speedup warm_s (serial_s /. warm_s)
  in
  (* temp + rename: a partially-written record never survives a crash *)
  Nascent_support.Guard.write_atomic ~path:speedup_json_path json;
  Printf.printf "wrote %s\n%!" speedup_json_path

(* --- service: warm-daemon latency vs cold CLI startup ------------------ *)

let service_json_path = "BENCH_service.json"

(* The case for compile-as-a-service, quantified: per-request latency
   against a warm daemon (socket round-trip + cache hit) vs a cold
   nascentc process per compile (exec + runtime init + lower +
   optimize). The daemon runs in-process on a thread — same code path
   as nascentd — and the cold runs exec the real binary. *)
let run_service () =
  let module Server = Nascent_support.Server in
  let module Service = Nascent_harness.Service in
  let module Json = Nascent_support.Json in
  let module Client = Nascent_support.Server.Client in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nascent-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg = { (Server.default_config ~socket_path:path) with Server.jobs = 2 } in
  let srv = Server.create cfg (Service.handler (Service.create ())) in
  let runner = Thread.create (fun () -> Server.run srv) () in
  let rec wait n =
    if n = 0 then failwith "bench service: daemon socket never appeared"
    else if not (Sys.file_exists path) then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  let req =
    Json.Obj
      [
        ("op", Json.Str "compile");
        ("benchmark", Json.Str "vortex");
        ("scheme", Json.Str "LLS");
      ]
  in
  let warm_n = 50 in
  let warm =
    Client.with_conn path (fun conn ->
        let once () =
          let t0 = Mclock.counter () in
          (match Client.request conn req with
          | Ok _ -> ()
          | Error e -> failwith ("bench service: warm request failed: " ^ e));
          Mclock.elapsed_s t0
        in
        ignore (once ()) (* populate the result cache *);
        List.init warm_n (fun _ -> once ()))
  in
  (* Recovery/watchdog counters (journal replay, restarts, memory
     shedding) from the status op — all zero in this in-process run,
     printed so the bench output shape matches a production daemon's. *)
  let robustness_line =
    Client.with_conn path (fun conn ->
        match Client.request conn (Json.Obj [ ("op", Json.Str "status") ]) with
        | Error e -> "status unavailable: " ^ e
        | Ok st ->
            let geti name =
              match Json.member name st with Some (Json.Int n) -> n | _ -> 0
            in
            Printf.sprintf
              "replayed=%d journal_quarantined=%d restarts=%d mem_shed=%d"
              (geti "replayed")
              (geti "journal_quarantined")
              (geti "restarts") (geti "mem_shed"))
  in
  Server.stop srv;
  Thread.join runner;
  (* Cold baseline: one full nascentc process per compile. The binary
     lives next to this one in _build/default. *)
  let nascentc =
    Filename.concat
      (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
      "nascentc.exe"
  in
  let cold_n = 5 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let cold =
    List.init cold_n (fun _ ->
        let t0 = Mclock.counter () in
        let pid =
          Unix.create_process nascentc
            [| nascentc; "dump"; "vortex"; "-s"; "LLS" |]
            Unix.stdin devnull devnull
        in
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> failwith "bench service: cold nascentc run failed");
        Mclock.elapsed_s t0)
  in
  Unix.close devnull;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let minimum xs = List.fold_left Float.min infinity xs in
  let warm_mean = mean warm and warm_min = minimum warm in
  let cold_mean = mean cold and cold_min = minimum cold in
  Printf.printf
    "\nservice latency (vortex, LLS): warm daemon %.3f ms/request (min %.3f, %d \
     requests), cold nascentc %.1f ms/compile (min %.1f, %d runs) — %.0fx\n\
     %!"
    (1000.0 *. warm_mean) (1000.0 *. warm_min) warm_n (1000.0 *. cold_mean)
    (1000.0 *. cold_min) cold_n (cold_mean /. warm_mean);
  Printf.printf "service robustness counters: %s\n%!" robustness_line;
  let json =
    Printf.sprintf
      "{\n\
      \  \"request\": \"compile vortex LLS\",\n\
      \  \"warm_requests\": %d,\n\
      \  \"warm_mean_s\": %.6f,\n\
      \  \"warm_min_s\": %.6f,\n\
      \  \"cold_runs\": %d,\n\
      \  \"cold_mean_s\": %.6f,\n\
      \  \"cold_min_s\": %.6f,\n\
      \  \"warm_over_cold_speedup\": %.4f\n\
       }\n"
      warm_n warm_mean warm_min cold_n cold_mean cold_min (cold_mean /. warm_mean)
  in
  Nascent_support.Guard.write_atomic ~path:service_json_path json;
  Printf.printf "wrote %s\n%!" service_json_path

(* --- tiers: instant floor, background upgrade, fault containment ------- *)

let tiers_json_path = "BENCH_tiers.json"

(* The tentpole quantified: a cold cache miss answered from the NI
   floor must cost about as much as a warm NI hit (the acceptance bar
   is 2x — both are one cache operation plus the round trip), the
   background upgrade must land promptly, and a fault-injected upgrade
   must degrade to a served floor with a recorded incident, never an
   error or a stall. The daemon runs in-process with the background
   lane wired exactly as nascentd wires it; floor and optimized
   artifacts are additionally checked observably identical (same
   trap/error under the interpreter). *)
let run_tiers () =
  let module Server = Nascent_support.Server in
  let module Service = Nascent_harness.Service in
  let module Json = Nascent_support.Json in
  let module Client = Nascent_support.Server.Client in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nascent-tiers-%d.sock" (Unix.getpid ()))
  in
  let cfg = { (Server.default_config ~socket_path:path) with Server.jobs = 2 } in
  let service = Service.create ~breaker_threshold:3 () in
  let srv = Server.create cfg (Service.handler service) in
  Service.set_upgrade_submit service (Server.submit_background srv);
  let runner = Thread.create (fun () -> Server.run srv) () in
  let rec wait n =
    if n = 0 then failwith "bench tiers: daemon socket never appeared"
    else if not (Sys.file_exists path) then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let req ?fault ~scheme name =
    Json.Obj
      ([
         ("op", Json.Str "compile");
         ("benchmark", Json.Str name);
         ("scheme", Json.Str scheme);
         ("run", Json.Bool true);
       ]
      @ match fault with None -> [] | Some f -> [ ("fault", Json.Str f) ])
  in
  let exchange conn r =
    match Client.request conn r with
    | Ok resp -> resp
    | Error e -> fail "request failed: %s" e
  in
  let timed conn r =
    let t0 = Mclock.counter () in
    let resp = exchange conn r in
    (Mclock.elapsed_s t0, resp)
  in
  let sfield resp name =
    match Json.str_member name resp with
    | Some s -> s
    | None -> fail "response lacks %s: %s" name (Json.to_string resp)
  in
  let median xs =
    let a = List.sort compare xs in
    List.nth a (List.length a / 2)
  in
  let names = List.map (fun b -> b.B.name) B.all in
  let warm_reps = 20 in
  let within, ratio =
    Client.with_conn path @@ fun conn ->
    (* 1. Warm the NI floor cells, then measure the warm NI hit. *)
  List.iter (fun n -> ignore (exchange conn (req ~scheme:"NI" n))) names;
  let warm_ni =
    median
      (List.concat_map
         (fun n ->
           List.init warm_reps (fun _ -> fst (timed conn (req ~scheme:"NI" n))))
         names)
  in
  (* 2. Cold miss at the requested scheme: served from the floor. *)
  let cold_samples =
    List.map
      (fun n ->
        let dt, resp = timed conn (req ~scheme:"LLS" n) in
        if sfield resp "tier" <> "floor" then
          fail "%s: cold miss served tier %s, want floor" n (sfield resp "tier");
        (n, dt, resp))
      names
  in
  let cold_floor = median (List.map (fun (_, dt, _) -> dt) cold_samples) in
  (* 3. Poll each request until the background upgrade hot-swaps it. *)
  let time_to_optimized =
    List.map
      (fun (n, _, floor_resp) ->
        let t0 = Mclock.counter () in
        let rec poll () =
          let resp = exchange conn (req ~scheme:"LLS" n) in
          match sfield resp "tier" with
          | "optimized" -> (Mclock.elapsed_s t0, resp)
          | _ when Mclock.elapsed_s t0 > 60.0 ->
              fail "%s: upgrade did not land within 60s" n
          | _ ->
              Unix.sleepf 0.005;
              poll ()
        in
        let dt, opt_resp = poll () in
        (* Floor and optimized artifacts must be observably identical:
           fewer checks, same interpreter outcome. *)
        let run_of resp =
          match Json.member "run" resp with
          | Some r -> (Json.str_member "trap" r, Json.str_member "error" r)
          | None -> fail "%s: response lacks a run object" n
        in
        if run_of floor_resp <> run_of opt_resp then
          fail "%s: floor and optimized runs diverge observably" n;
        dt)
      cold_samples
  in
  (* 4. The whole matrix upgraded: measure the warm optimized hit. *)
  let warm_opt =
    median
      (List.concat_map
         (fun n ->
           List.init warm_reps (fun _ ->
               let dt, resp = timed conn (req ~scheme:"LLS" n) in
               if sfield resp "tier" <> "optimized" then
                 fail "%s: warm request regressed to tier %s" n (sfield resp "tier");
               dt))
         names)
  in
  (* 5. Fault containment: an injected upgrade fault degrades to a
     served floor with a recorded incident — no error, no stall. *)
  let fresp = exchange conn (req ~scheme:"CS" ~fault:"drop-check:7" "vortex") in
  if sfield fresp "status" = "error" then
    fail "fault-injected request errored: %s" (Json.to_string fresp);
  if sfield fresp "tier" <> "floor" then
    fail "fault-injected request served tier %s, want floor" (sfield fresp "tier");
  let status_req = Json.Obj [ ("op", Json.Str "status") ] in
  let upgrades_failed st =
    match Json.member "upgrades" st with
    | Some o -> ( match Json.int_member "failed" o with Some n -> n | None -> 0)
    | None -> 0
  in
  let t0 = Mclock.counter () in
  let rec wait_failed () =
    let st = exchange conn status_req in
    if upgrades_failed st >= 1 then st
    else if Mclock.elapsed_s t0 > 60.0 then
      fail "fault-injected upgrade never recorded its failure"
    else begin
      Unix.sleepf 0.01;
      wait_failed ()
    end
  in
  let st = wait_failed () in
  let fresp2 = exchange conn (req ~scheme:"CS" ~fault:"drop-check:7" "vortex") in
  if sfield fresp2 "tier" <> "floor" then
    fail "faulted cell upgraded to tier %s, want a kept floor" (sfield fresp2 "tier");
  let ttodo_max = List.fold_left Float.max 0.0 time_to_optimized in
  let ratio = cold_floor /. warm_ni in
  let within = ratio <= 2.0 in
  Printf.printf
    "\ntiers (%d benchmarks): warm NI hit %.3f ms, cold-miss floor %.3f ms \
     (%.2fx%s), time-to-optimized max %.3f s, warm optimized %.3f ms\n\
     tiers fault containment: injected upgrade fault -> tier:floor kept, \
     %d failed upgrade(s) recorded, no client error\n\
     %!"
    (List.length names) (1000.0 *. warm_ni) (1000.0 *. cold_floor) ratio
    (if within then "" else " — OVER THE 2x BAR")
    ttodo_max (1000.0 *. warm_opt) (upgrades_failed st);
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmarks\": %d,\n\
      \  \"warm_ni_hit_ms\": %.6f,\n\
      \  \"cold_floor_ms\": %.6f,\n\
      \  \"floor_over_warm_ni\": %.4f,\n\
      \  \"floor_within_2x\": %b,\n\
      \  \"time_to_optimized_max_s\": %.6f,\n\
      \  \"warm_optimized_ms\": %.6f,\n\
      \  \"fault_upgrades_failed\": %d,\n\
      \  \"fault_tier_served\": \"%s\"\n\
       }\n"
      (List.length names) (1000.0 *. warm_ni) (1000.0 *. cold_floor) ratio
      within ttodo_max (1000.0 *. warm_opt) (upgrades_failed st)
      (sfield fresp2 "tier")
  in
  Nascent_support.Guard.write_atomic ~path:tiers_json_path json;
    Printf.printf "wrote %s\n%!" tiers_json_path;
    (within, ratio)
  in
  Server.stop srv;
  Thread.join runner;
  if not within then fail "cold-miss floor %.2fx the warm NI hit (bar: 2x)" ratio

(* --- load: open-loop generator over the sharded service ---------------- *)

let load_json_path = "BENCH_load.json"

type load_rung = {
  offered_rps : float;
  achieved_rps : float;
  sent : int;
  ok : int;
  errors : int;
  floor : int; (* responses served from the cold-cache NI floor tier *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  elapsed_s : float;
}

(* Fault-tolerant sharded serving, quantified on the wire. An
   open-loop generator — arrivals on a fixed schedule regardless of
   completions, the honest way to load a service, since a closed loop
   self-throttles into flattering latencies — drives real nascentd
   processes over the framed TCP transport with pipelined
   connections: one shard direct, then three shards behind the
   consistent-hash router. Each rate rung reports p50/p99/p999
   (completion minus scheduled arrival, so queueing and schedule slip
   count) and how many responses came off the cold-cache NI floor
   tier; the highest rung with zero errors and >= 90% of the offered
   rate completed is the recorded max sustained RPS. A final chaos
   pass kills -9 one shard at load mid-run and demands the batch
   still complete with zero failed requests — health ejection plus
   ring failover, measured rather than asserted.

   NASCENT_LOAD_QUICK=1 shrinks the ladder for CI. *)
let run_load () =
  let module Json = Nascent_support.Json in
  let module Client = Nascent_support.Server.Client in
  let quick = Sys.getenv_opt "NASCENT_LOAD_QUICK" <> None in
  let bindir =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin"
  in
  let nascentd = Filename.concat bindir "nascentd.exe" in
  let tmp = Filename.get_temp_dir_name () in
  let mypid = Unix.getpid () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let children = ref [] in
  let spawn argv =
    let pid =
      Unix.create_process nascentd
        (Array.of_list (nascentd :: argv))
        Unix.stdin devnull devnull
    in
    children := pid :: !children;
    pid
  in
  let kill_all () =
    List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) !children;
    List.iter
      (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      !children;
    children := []
  in
  let wait_socket path =
    let rec go n =
      if n = 0 then failwith ("bench load: socket never appeared: " ^ path)
      else if not (Sys.file_exists path) then begin
        Unix.sleepf 0.05;
        go (n - 1)
      end
    in
    go 400
  in
  let tcp_port_of path =
    match
      Client.request_retry ~seed:1 path (Json.Obj [ ("op", Json.Str "status") ])
    with
    | Error e -> failwith ("bench load: status: " ^ e)
    | Ok st -> (
        match Json.int_member "tcp_port" st with
        | Some p -> p
        | None -> failwith "bench load: no tcp_port in status")
  in
  (* The request stream cycles the (benchmark x scheme) matrix, so the
     leading edge of every run is all cold-cache misses: the daemon
     answers those from the instant NI floor while upgrades compile on
     the background lane — the tier path under high concurrency is
     exactly what this generator exists to exercise. *)
  let cells =
    List.concat_map
      (fun b -> List.map (fun s -> (b.B.name, s)) [ "NI"; "LLS"; "CS"; "ALL" ])
      B.all
    |> Array.of_list
  in
  let request_of i =
    let b, s = cells.(i mod Array.length cells) in
    Json.Obj
      [
        ("id", Json.Str (Printf.sprintf "load-%d" i));
        ("op", Json.Str "compile");
        ("benchmark", Json.Str b);
        ("scheme", Json.Str s);
        ("tier", Json.Str "auto");
      ]
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))
  in
  (* One open-loop phase: [workers] pipelined connections share the
     arrival schedule round-robin; each worker's receiver thread
     matches completions to frame tags while the sender holds the
     schedule. Latency is completion minus scheduled (not actual)
     send time, so a generator that falls behind cannot hide service
     queueing. *)
  let run_phase ~addr ~rate ~duration ~workers ~kill_at =
    let reqs_total = max workers (int_of_float (rate *. duration)) in
    let t0 = Mclock.counter () in
    (match kill_at with
    | None -> ()
    | Some (after_s, pid) ->
        ignore
          (Thread.create
             (fun () ->
               Thread.delay after_s;
               try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
             ()));
    let worker w =
      (* this worker's slice of the schedule: slots w, w+workers, ... *)
      let n_w = if reqs_total <= w then 0 else ((reqs_total - 1 - w) / workers) + 1 in
      let conn = Client.connect_addr ~recv_timeout_s:60.0 addr in
      let lock = Mutex.create () in
      let pending = Hashtbl.create 64 in
      let lats = ref [] in
      let okc = ref 0 and errc = ref 0 and floorc = ref 0 in
      let sent = ref 0 and received = ref 0 in
      (* The receiver owns a fixed quota — n_w completions — so there
         is no handoff race with the sender: blocking in pipeline_recv
         with the quota unmet is just waiting for a response that is
         owed (or for the sender to put it on the wire). *)
      let receiver =
        Thread.create
          (fun () ->
            let rec loop () =
              let more =
                Mutex.lock lock;
                let m = !received < n_w in
                Mutex.unlock lock;
                m
              in
              if more then
                match Client.pipeline_recv conn with
                | Ok (Some (fid, resp)) ->
                    let now = Mclock.elapsed_s t0 in
                    Mutex.lock lock;
                    incr received;
                    (match Hashtbl.find_opt pending fid with
                    | Some sched ->
                        Hashtbl.remove pending fid;
                        lats := (now -. sched) :: !lats
                    | None -> ());
                    (if Json.str_member "status" resp = Some "error" then
                       incr errc
                     else begin
                       incr okc;
                       if Json.str_member "tier" resp = Some "floor" then
                         incr floorc
                     end);
                    Mutex.unlock lock;
                    loop ()
                | Ok None | Error _ ->
                    Mutex.lock lock;
                    errc := !errc + (n_w - !received);
                    received := n_w;
                    Mutex.unlock lock
                | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
                    Mutex.lock lock;
                    errc := !errc + (n_w - !received);
                    received := n_w;
                    Mutex.unlock lock
            in
            loop ())
          ()
      in
      let i = ref w in
      while !i < reqs_total do
        let sched = float_of_int !i /. rate in
        let now = Mclock.elapsed_s t0 in
        if sched > now then Thread.delay (sched -. now);
        (* register the tag under the lock before the receiver can
           possibly see its response *)
        Mutex.lock lock;
        (match Client.pipeline_send conn (request_of !i) with
        | fid ->
            incr sent;
            Hashtbl.replace pending fid sched
        | exception _ ->
            (* a dead connection still consumes its quota slot *)
            incr sent;
            incr received;
            incr errc);
        Mutex.unlock lock;
        i := !i + workers
      done;
      Thread.join receiver;
      (try Client.close conn with _ -> ());
      (!sent, !okc, !errc, !floorc, !lats)
    in
    let out = Array.make workers (0, 0, 0, 0, []) in
    let threads =
      List.init workers (fun w ->
          Thread.create (fun () -> out.(w) <- worker w) ())
    in
    List.iter Thread.join threads;
    let elapsed = Mclock.elapsed_s t0 in
    let sent = Array.fold_left (fun a (s, _, _, _, _) -> a + s) 0 out in
    let ok = Array.fold_left (fun a (_, o, _, _, _) -> a + o) 0 out in
    let errors = Array.fold_left (fun a (_, _, e, _, _) -> a + e) 0 out in
    let floor = Array.fold_left (fun a (_, _, _, f, _) -> a + f) 0 out in
    let lats =
      Array.fold_left (fun a (_, _, _, _, l) -> List.rev_append l a) [] out
      |> Array.of_list
    in
    Array.sort compare lats;
    {
      offered_rps = rate;
      achieved_rps = (if elapsed > 0.0 then float_of_int ok /. elapsed else 0.0);
      sent;
      ok;
      errors;
      floor;
      p50_ms = 1000.0 *. percentile lats 0.50;
      p99_ms = 1000.0 *. percentile lats 0.99;
      p999_ms = 1000.0 *. percentile lats 0.999;
      elapsed_s = elapsed;
    }
  in
  let rung_json r =
    Json.Obj
      [
        ("offered_rps", Json.Float r.offered_rps);
        ("achieved_rps", Json.Float r.achieved_rps);
        ("sent", Json.Int r.sent);
        ("ok", Json.Int r.ok);
        ("errors", Json.Int r.errors);
        ("floor_tier", Json.Int r.floor);
        ("p50_ms", Json.Float r.p50_ms);
        ("p99_ms", Json.Float r.p99_ms);
        ("p999_ms", Json.Float r.p999_ms);
        ("elapsed_s", Json.Float r.elapsed_s);
      ]
  in
  let sustained r = r.errors = 0 && r.achieved_rps >= 0.9 *. r.offered_rps in
  let rates = if quick then [ 40.0; 80.0 ] else [ 50.0; 100.0; 200.0; 400.0 ] in
  let duration = if quick then 1.0 else 3.0 in
  let workers = if quick then 4 else 8 in
  let ladder ~addr =
    let rungs = List.map (fun r -> run_phase ~addr ~rate:r ~duration ~workers ~kill_at:None) rates in
    let max_sustained =
      List.fold_left
        (fun acc r -> if sustained r then Float.max acc r.achieved_rps else acc)
        0.0 rungs
    in
    (rungs, max_sustained)
  in
  let report label (rungs, max_sustained) =
    Printf.printf "\n%s:\n" label;
    List.iter
      (fun r ->
        Printf.printf
          "  offered %6.0f rps: achieved %7.1f rps, %d/%d ok (%d floor-tier), \
           p50 %.1f ms, p99 %.1f ms, p999 %.1f ms%s\n\
           %!"
          r.offered_rps r.achieved_rps r.ok r.sent r.floor r.p50_ms r.p99_ms
          r.p999_ms
          (if sustained r then "" else "  [not sustained]"))
      rungs;
    Printf.printf "  max sustained: %.1f rps\n%!" max_sustained
  in
  Fun.protect ~finally:(fun () -> kill_all (); Unix.close devnull) @@ fun () ->
  (* --- one shard, direct over TCP ----------------------------------- *)
  let s1_sock = Filename.concat tmp (Printf.sprintf "nload-one-%d.sock" mypid) in
  ignore
    (spawn [ "--socket"; s1_sock; "--tcp"; "127.0.0.1:0"; "-j"; "2" ]);
  wait_socket s1_sock;
  let one_addr = Printf.sprintf "127.0.0.1:%d" (tcp_port_of s1_sock) in
  let one = ladder ~addr:(Client.parse_address one_addr) in
  report "1 shard (direct TCP)" one;
  kill_all ();
  (* --- three shards behind the router -------------------------------- *)
  let shard_socks =
    List.init 3 (fun i ->
        Filename.concat tmp (Printf.sprintf "nload-s%d-%d.sock" i mypid))
  in
  let shard_pids =
    List.mapi
      (fun i sock ->
        spawn
          [ "--socket"; sock; "-j"; "1"; "--shard-name"; Printf.sprintf "s%d" i ])
      shard_socks
  in
  List.iter wait_socket shard_socks;
  let r_sock = Filename.concat tmp (Printf.sprintf "nload-r-%d.sock" mypid) in
  ignore
    (spawn
       ([ "--socket"; r_sock; "--tcp"; "127.0.0.1:0"; "--router" ]
       @ List.concat
           (List.mapi
              (fun i sock -> [ "--shard"; Printf.sprintf "s%d=%s" i sock ])
              shard_socks)));
  wait_socket r_sock;
  let router_addr = Client.parse_address (Printf.sprintf "127.0.0.1:%d" (tcp_port_of r_sock)) in
  let three = ladder ~addr:router_addr in
  report "3 shards (router, TCP)" three;
  (* --- chaos: kill -9 one shard at load ------------------------------ *)
  let chaos_rate = if quick then 40.0 else 100.0 in
  let chaos_duration = if quick then 2.0 else 6.0 in
  let victim = List.nth shard_pids 1 in
  let chaos =
    run_phase ~addr:router_addr ~rate:chaos_rate ~duration:chaos_duration
      ~workers ~kill_at:(Some (chaos_duration /. 2.0, victim))
  in
  Printf.printf
    "\nchaos (kill -9 shard s1 at %.1fs of %.1fs, %.0f rps): %d/%d ok, %d \
     error(s), p99 %.1f ms — %s\n\
     %!"
    (chaos_duration /. 2.0) chaos_duration chaos_rate chaos.ok chaos.sent
    chaos.errors chaos.p99_ms
    (if chaos.errors = 0 then "zero failed requests" else "FAILURES");
  let json =
    Json.Obj
      [
        ("quick", Json.Bool quick);
        ("workers", Json.Int workers);
        ("duration_s", Json.Float duration);
        ( "one_shard",
          Json.Obj
            [
              ("rungs", Json.List (List.map rung_json (fst one)));
              ("max_sustained_rps", Json.Float (snd one));
            ] );
        ( "three_shards",
          Json.Obj
            [
              ("rungs", Json.List (List.map rung_json (fst three)));
              ("max_sustained_rps", Json.Float (snd three));
            ] );
        ( "chaos",
          Json.Obj
            [
              ("killed_shard", Json.Str "s1");
              ("kill_after_s", Json.Float (chaos_duration /. 2.0));
              ("rate_rps", Json.Float chaos_rate);
              ("rung", rung_json chaos);
            ] );
      ]
  in
  Nascent_support.Guard.write_atomic ~path:load_json_path
    (Nascent_support.Json.to_string json ^ "\n");
  Printf.printf "wrote %s\n%!" load_json_path;
  if chaos.errors > 0 then begin
    prerr_endline "FAIL: chaos run had failed client requests";
    exit 1
  end

(* --- Bechamel: one Test.make per table ------------------------------- *)

let bech_tests () =
  let open Bechamel in
  let sources = List.map (fun b -> b.B.source) B.all in
  let irs () = List.map Nascent_ir.Lower.of_source sources in
  (* Table 1's measurement pipeline: characterize the suite
     (lower + loop analysis + static counts; dynamic runs excluded to
     keep the timer on compiler-side work). *)
  let t_table1 =
    Test.make ~name:"table1-characterize"
      (Staged.stage (fun () ->
           List.iter
             (fun ir ->
               Nascent_ir.Program.iter_funcs
                 (fun f -> ignore (Nascent_analysis.Loops.compute f))
                 ir;
               ignore (Nascent_ir.Program.static_counts ir))
             (irs ())))
  in
  (* Table 2's dominant cost: one full optimizer run per scheme (PRX). *)
  let t_table2 =
    Test.make ~name:"table2-optimize-all-schemes"
      (Staged.stage (fun () ->
           let irs = irs () in
           List.iter
             (fun scheme ->
               List.iter
                 (fun ir ->
                   ignore
                     (Nascent_core.Optimizer.optimize
                        ~config:(Config.make ~scheme ())
                        ir))
                 irs)
             Config.all_schemes))
  in
  (* Table 3's extra cost: the primed variants (implications off). *)
  let t_table3 =
    Test.make ~name:"table3-optimize-impl-ablation"
      (Staged.stage (fun () ->
           let irs = irs () in
           List.iter
             (fun (scheme, impl) ->
               List.iter
                 (fun ir ->
                   ignore
                     (Nascent_core.Optimizer.optimize
                        ~config:(Config.make ~scheme ~impl ())
                        ir))
                 irs)
             [
               (Config.NI, Nascent_checks.Universe.No_implications);
               (Config.SE, Nascent_checks.Universe.No_implications);
               (Config.LLS, Nascent_checks.Universe.Cross_family_only);
             ]))
  in
  [ t_table1; t_table2; t_table3 ]

let run_bech () =
  let open Bechamel in
  print_endline "";
  print_endline "Bechamel timers (one Test.make per table):";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all
             (Analyze.ols ~bootstrap:0 ~r_square:false
                ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    (bech_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let what = match args with [] -> [ "all" ] | xs -> xs in
  let run = function
    | "table1" -> run_table1 ()
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "figures" -> Figures.all ()
    | "canon" -> run_canon ()
    | "extensions" -> run_extensions ()
    | "tables" -> run_tables ()
    | "check-determinism" ->
        run_check_determinism ();
        (* The tier ladder is part of the determinism contract: a floor
           response and its upgraded replacement must be observably
           identical artifacts of the same source, and the
           latency/containment record regenerates alongside it. *)
        run_tiers ()
    | "oracle-diff" -> run_oracle_differential ()
    | "speedup" -> run_speedup ()
    | "service" -> run_service ()
    | "tiers" -> run_tiers ()
    | "load" -> run_load ()
    | "bech" -> run_bech ()
    | "all" ->
        run_tables ();
        Figures.all ();
        run_bech ()
    | other ->
        Printf.eprintf "unknown target %s\n" other;
        exit 1
  in
  List.iter run what

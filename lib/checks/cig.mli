(** Check Implication Graph (paper section 3.1).

    Nodes are {e families} of checks (checks sharing a range
    expression); an edge [F -> G] with weight [w] asserts that for
    every constant [c], [Check (e_F <= c)] implies
    [Check (e_G <= c + w)]. A check [(F, cf)] is then as strong as
    [(G, cg)] iff [cf + W(F, G) <= cg], where [W] is the shortest
    implication-path weight (the trivial path gives the within-family
    rule [cf <= cg]).

    When two edges connect the same pair of families the minimum weight
    is kept — the tighter implication subsumes the looser one (the
    paper's Figure 4 bookkeeping). *)

type t

type family_id = int

val create : unit -> t

val num_families : t -> int

val family_of_expr : t -> Linexpr.t -> family_id
(** Intern a range expression, allocating a fresh family id on first
    sight. *)

val family_of_check : t -> Check.t -> family_id

val expr_of_family : t -> family_id -> Linexpr.t

val add_edge : t -> from:family_id -> to_:family_id -> weight:int -> unit
(** Record the implication [e_from <= c  =>  e_to <= c + weight] for
    all [c]; self-edges are ignored, parallel edges keep the minimum
    weight. *)

val add_implication : t -> from:Check.t -> to_:Check.t -> unit
(** [add_implication t ~from ~to_] records that [from] implies [to_],
    generalized shift-invariantly to their families (edge weight
    [constant to_ - constant from]). *)

val path_weight : t -> family_id -> family_id -> int option
(** Shortest implication-path weight ([Some 0] for [f = g]); [None]
    when no implication path exists. Computed by Floyd–Warshall over
    the (small) family graph and cached until the graph changes. *)

val as_strong_as : t -> strong:family_id * int -> weak:family_id * int -> bool
(** [as_strong_as t ~strong:(f, cf) ~weak:(g, cg)]: does performing
    check [(f, cf)] make [(g, cg)] redundant? *)

val edge_list : t -> (family_id * family_id * int) list
(** All explicit edges (not the transitive closure), for inspection. *)

(* Canonical range checks: [Check (range-expression <= range-constant)]
   (paper section 2.2).

   Construction normalizes:
   - all constants folded into the range constant;
   - lower-bound checks [lo <= e] negated into [-e <= -lo].

   The normalization makes semantically equivalent checks fall in the
   same family: the paper's Figure 1 checks [2*N <= 10] and
   [2*N-1 <= 10] become family [2*N] with constants 10 and 11, and the
   implication between them is a constant comparison.

   A stronger normalization also divides the coefficients by their gcd
   [g] and floors the constant, exact over the integers:
   [g*e <= k <=> e <= floor(k/g)] — it would merge [2*N <= 10] and
   [2*N <= 11] into one check [N <= 5] outright. The paper's canonical
   form does not do this (the Figure 1 example relies on the two checks
   staying distinct), so [make] leaves coefficients alone and the gcd
   variant is exposed separately as [make_gcd] (measured as an ablation
   in the benchmark harness). *)

type t = { lhs : Linexpr.t; k : int }

(* floor division for possibly-negative dividends *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* [make lhs k] is the canonical form of [lhs <= k]. *)
let make lhs k : t = { lhs; k }

(* gcd-normalizing constructor, see above. *)
let make_gcd lhs k : t =
  let g = Linexpr.coeff_gcd lhs in
  if g > 1 then
    {
      lhs = Linexpr.of_terms (List.map (fun (a, c) -> (a, c / g)) (Linexpr.terms lhs));
      k = fdiv k g;
    }
  else { lhs; k }

(* Re-normalize an existing check with the gcd rule. *)
let gcd_normalize t = make_gcd t.lhs t.k

(* [upper ~sub ~bound] is the canonical upper-bound check [sub <= bound]
   where both sides are (linexpr, constant) pairs. *)
let upper ~sub:(se, sc) ~bound:(be, bc) = make (Linexpr.sub se be) (bc - sc)

(* [lower ~sub ~bound] is the canonical lower-bound check [bound <= sub],
   i.e. [-sub <= -bound]. *)
let lower ~sub:(se, sc) ~bound:(be, bc) = make (Linexpr.sub be se) (sc - bc)

let lhs t = t.lhs
let constant t = t.k

let family_key t = t.lhs

(* Within a family, smaller constant = stronger check:
   [e <= 5] implies [e <= 7]. *)
let same_family a b = Linexpr.equal a.lhs b.lhs

let implies_within_family a b = same_family a b && a.k <= b.k

let equal a b = same_family a b && a.k = b.k

let compare a b =
  let c = Linexpr.compare a.lhs b.lhs in
  if c <> 0 then c else Int.compare a.k b.k

(* A check with no symbolic terms is decidable at compile time:
   [0 <= k]. *)
let compile_time_value t = if Linexpr.is_zero t.lhs then Some (0 <= t.k) else None

let mentions_key t k = Linexpr.mentions_key t.lhs k

let atom_keys t = Linexpr.atom_keys t.lhs

let hash t = (Linexpr.hash t.lhs * 31) + t.k

let pp ppf t = Fmt.pf ppf "Check (%a <= %d)" Linexpr.pp t.lhs t.k

(** Canonical range checks:
    [Check (range-expression <= range-constant)] (paper section 2.2).

    Construction normalizes:
    - all constants folded into the range constant;
    - lower-bound checks [lo <= e] negated into [-e <= -lo].

    Semantically equivalent checks therefore fall in the same {e family}
    (same range expression): the paper's Figure 1 checks [2*N <= 10]
    and [2*N-1 <= 10] become family [2*N] with constants 10 and 11, and
    the implication between them is a constant comparison — within a
    family, {e smaller constant = stronger check}. *)

type t

val make : Linexpr.t -> int -> t
(** [make e k] is the canonical form of [e <= k]. *)

val upper : sub:Linexpr.t * int -> bound:Linexpr.t * int -> t
(** [upper ~sub:(se, sc) ~bound:(be, bc)] is the canonical upper-bound
    check [se + sc <= be + bc], i.e. [se - be <= bc - sc]. *)

val lower : sub:Linexpr.t * int -> bound:Linexpr.t * int -> t
(** [lower ~sub ~bound] is the canonical lower-bound check
    [bound <= sub], negated into [<=] form. *)

val lhs : t -> Linexpr.t
(** The range expression (the family key). *)

val constant : t -> int
(** The range constant. *)

val family_key : t -> Linexpr.t

val same_family : t -> t -> bool
(** Do the two checks share a range expression? *)

val implies_within_family : t -> t -> bool
(** [implies_within_family a b] iff [a] and [b] are in the same family
    and [a] is at least as strong ([constant a <= constant b]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val compile_time_value : t -> bool option
(** [Some v] when the check has no symbolic terms ([0 <= k]); step 5 of
    the optimizer deletes true checks and turns false ones into TRAPs. *)

val mentions_key : t -> int -> bool
(** Is the check killed by a definition of the atom with this key? *)

val atom_keys : t -> int list

val make_gcd : Linexpr.t -> int -> t
(** Like {!make} but additionally divides the coefficients by their gcd
    [g] and floors the constant — exact over the integers:
    [g*e <= k <=> e <= floor(k/g)]. The paper's canonical form does
    {e not} do this (Figure 1 relies on [2*N <= 10] and [2*N <= 11]
    staying distinct); it is provided for the canonical-form ablation. *)

val gcd_normalize : t -> t
(** Re-normalize an existing check with the gcd rule. *)

val pp : t Fmt.t
(** Prints in the paper's notation, [Check (e <= k)]. *)

(* Omega-lite implication oracle over canonical checks.

   The CIG proves implications only *within* a syntactic family (same
   range expression, constant comparison). This module decides the
   cross-family cases — conjunctions of linear inequalities over the
   same atom vocabulary — by refutation with Fourier–Motzkin variable
   elimination plus gcd tightening:

     hyps |= goal   iff   hyps /\ not(goal) is unsatisfiable

   where not(e <= k) is (-e <= -k-1) over the integers.

   Soundness: every elimination step is satisfiability-preserving in
   one direction — an integer solution of the input system yields a
   solution of the projected system, and gcd tightening
   (g*e <= k <=> e <= floor(k/g), g > 0) is an integer equivalence. So
   a derived contradiction (0 <= k with k < 0) really refutes the
   system and [implies] answering [true] is always sound.

   Incompleteness: integer projection can need Omega's dark shadow,
   which we do not implement, and the fuel bound can stop elimination
   early. Both cases answer [false] ("unknown"), which merely keeps a
   check the optimizer might have deleted — conservative in the safe
   direction.

   Never hangs: the engine charges a local {!Guard} fuel budget per
   combination step and additionally ticks the ambient budgets, so a
   pathological system exhausts the oracle's own fuel (answer: false)
   long before it could wedge a pass, and the per-pass watchdog still
   observes the work. *)

module Guard = Nascent_support.Guard

let fuel_budget = 4096
let budget_name = "oracle"

let max_constraints = 256
(* Growth cap per elimination round: FM is worst-case quadratic per
   variable; past this many live constraints we give up (unknown)
   rather than churn fuel on a system we will not refute. *)

(* A constraint is a canonical check: lhs <= k. *)

(* gcd-tighten: g*e <= k  <=>  e <= floor(k/g). Detects the empty-lhs
   contradiction as a side effect. *)
let tighten (c : Check.t) : Check.t =
  let lhs = Check.lhs c in
  let g = Linexpr.coeff_gcd lhs in
  if g > 1 then Check.make_gcd lhs (Check.constant c) else c

(* [Some false] = refuted, [Some true] = trivially true (drop),
   [None] = still symbolic. *)
let decided (c : Check.t) = Check.compile_time_value c

(* Keep only the strongest constraint per family. Bounds growth and
   makes the pos*neg pairing below cheaper. *)
let dedup (cs : Check.t list) : Check.t list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = Check.family_key c in
      match Hashtbl.find_opt tbl key with
      | Some k when k <= Check.constant c -> ()
      | _ -> Hashtbl.replace tbl key (Check.constant c))
    cs;
  Hashtbl.fold (fun lhs k acc -> Check.make lhs k :: acc) tbl []

exception Refuted
exception Unknown

(* Pick the variable with the fewest pos*neg pairings (the classic FM
   heuristic); atoms are identified by key. *)
let pick_var (cs : Check.t list) : int option =
  let score = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (a, coeff) ->
          let k = Atom.key a in
          let pos, neg = Option.value (Hashtbl.find_opt score k) ~default:(0, 0) in
          let entry = if coeff > 0 then (pos + 1, neg) else (pos, neg + 1) in
          Hashtbl.replace score k entry)
        (Linexpr.terms (Check.lhs c)))
    cs;
  Hashtbl.fold
    (fun k (pos, neg) best ->
      let cost = pos * neg in
      match best with
      | Some (_, best_cost) when best_cost <= cost -> best
      | _ -> Some (k, cost))
    score None
  |> Option.map fst

(* Eliminate atom key [x]: pair every constraint where x has positive
   coefficient with every one where it is negative. For a*x + p <= kp
   (a > 0) and -b*x + n <= kn (b > 0):
     b*(a*x + p) + a*(-b*x + n) <= b*kp + a*kn
   cancels x exactly. *)
let eliminate fuel x (cs : Check.t list) : Check.t list =
  let pos, neg, rest =
    List.fold_left
      (fun (pos, neg, rest) c ->
        let coeff = Linexpr.coeff_of_key (Check.lhs c) x in
        if coeff > 0 then (c :: pos, neg, rest)
        else if coeff < 0 then (pos, c :: neg, rest)
        else (pos, neg, c :: rest))
      ([], [], []) cs
  in
  let combined = ref rest in
  List.iter
    (fun p ->
      let a = Linexpr.coeff_of_key (Check.lhs p) x in
      List.iter
        (fun n ->
          Guard.tick fuel;
          Guard.tick_ambient ();
          let b = -Linexpr.coeff_of_key (Check.lhs n) x in
          let lhs =
            Linexpr.add
              (Linexpr.scale b (Check.lhs p))
              (Linexpr.scale a (Check.lhs n))
          in
          let k =
            Linexpr.checked_add
              (Linexpr.checked_mul b (Check.constant p))
              (Linexpr.checked_mul a (Check.constant n))
          in
          let c = tighten (Check.make lhs k) in
          match decided c with
          | Some false -> raise Refuted
          | Some true -> ()
          | None -> combined := c :: !combined)
        neg)
    pos;
  !combined

let unsat_exn fuel (cs : Check.t list) : bool =
  let prepare cs =
    List.filter_map
      (fun c ->
        let c = tighten c in
        match decided c with
        | Some false -> raise Refuted
        | Some true -> None
        | None -> Some c)
      cs
  in
  let rec go cs =
    Guard.tick fuel;
    Guard.tick_ambient ();
    let cs = dedup cs in
    if List.length cs > max_constraints then raise Unknown;
    match pick_var cs with
    | None -> false (* purely constant system, nothing refuted: sat *)
    | Some x -> go (prepare (eliminate fuel x cs))
  in
  match prepare cs with [] -> false | cs -> go cs

module Key_set = Set.Make (Int)

(* Slice the hypotheses to the connected component of the goal's atom
   vocabulary: a hypothesis whose atoms never (transitively) touch the
   goal's cannot participate in a refutation, and dropping it up front
   keeps elimination from burning fuel on irrelevant constraints. *)
let slice ~(hyps : Check.t list) (goal : Check.t) : Check.t list =
  (* A constant hypothesis (empty atom set) never "touches" anything,
     but must survive the slice: when false (0 <= -1) it refutes the
     whole system by itself — [prepare] raises Refuted on it — and when
     true it is dropped for free. Slicing it away would lose exactly
     the Farkas certificates built on a contradictory hypothesis. *)
  let constant, hyps = List.partition (fun h -> Check.atom_keys h = []) hyps in
  let rec grow keys pending kept =
    let touching, rest =
      List.partition
        (fun h -> List.exists (fun k -> Key_set.mem k keys) (Check.atom_keys h))
        pending
    in
    match touching with
    | [] -> kept
    | _ ->
        let keys =
          List.fold_left
            (fun ks h -> List.fold_left (fun ks k -> Key_set.add k ks) ks (Check.atom_keys h))
            keys touching
        in
        grow keys rest (List.rev_append touching kept)
  in
  grow (Key_set.of_list (Check.atom_keys goal)) hyps constant

(* not(e <= k) = (e > k) = (-e <= -k-1). *)
let negate (c : Check.t) : Check.t =
  Check.make
    (Linexpr.neg (Check.lhs c))
    (Linexpr.checked_add (-Check.constant c) (-1))

let unsat (cs : Check.t list) : bool =
  let fuel = Guard.fuel ~what:budget_name ~budget:fuel_budget in
  try unsat_exn fuel cs
  with
  | Refuted -> true
  | Unknown | Linexpr.Overflow -> false
  | Guard.Fuel_exhausted w when w = budget_name -> false

let implies ~hyps (goal : Check.t) : bool =
  (* Fast path: the within-family constant comparison needs no
     elimination and covers most queries the CIG already answers. *)
  List.exists (fun h -> Check.implies_within_family h goal) hyps
  ||
  match negate goal with
  | exception Linexpr.Overflow -> false
  | ng ->
      let connected = slice ~hyps goal in
      unsat (ng :: connected)
      || (* The sliced-away hypotheses share no atoms with the goal's
            component, so they cannot interact with [ng] — but they can
            be unsatisfiable among THEMSELVES, and a contradictory
            hypothesis set implies everything. Variable-disjoint blocks
            are unsat iff some block is: checking the remainder
            separately restores exactly the refutations the slice
            removed, and costs nothing when the slice kept every
            hypothesis. *)
      (match List.filter (fun h -> not (List.memq h connected)) hyps with
      | [] -> false
      | rest -> unsat rest)

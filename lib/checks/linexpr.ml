(* Canonical linear range expressions: sums [c1*a1 + c2*a2 + ...] with
   non-zero integer coefficients and atoms in strictly increasing key
   order (the paper's "canonical order of symbolic terms", section 2.2).

   The constant part of a check is *not* stored here; it is folded into
   the check's range constant (see {!Check}). *)

type t = (Atom.t * int) list (* strictly increasing by atom key, coeff <> 0 *)

exception Overflow

(* Checked coefficient arithmetic. Coefficients live in OCaml's native
   [int]; silently wrapping at [Int.max_int] would turn a strong check
   into a wrong one, so every sum/product either yields the exact
   mathematical result or raises {!Overflow} — callers doing
   speculative reasoning (the oracle, gcd normalization) treat it as
   "unknown" and bail. *)
let cadd a b =
  let s = a + b in
  (* Signed overflow iff both operands share a sign and the sum does
     not. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then raise Overflow;
  s

let cmul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    (* min_int / -1 itself overflows, so test it first. *)
    if (a = Int.min_int && b = -1) || (b = Int.min_int && a = -1) then raise Overflow
    else if p / b <> a then raise Overflow
    else p

let checked_add = cadd
let checked_mul = cmul

let zero : t = []

let is_zero (t : t) = t = []

let of_atom ?(coeff = 1) a : t = if coeff = 0 then [] else [ (a, coeff) ]

(* Merge two sorted term lists, summing coefficients. *)
let rec add (a : t) (b : t) : t =
  match (a, b) with
  | [], t | t, [] -> t
  | (xa, ca) :: ra, (xb, cb) :: rb ->
      let c = Atom.compare xa xb in
      if c < 0 then (xa, ca) :: add ra b
      else if c > 0 then (xb, cb) :: add a rb
      else
        let s = cadd ca cb in
        if s = 0 then add ra rb else (xa, s) :: add ra rb

let scale k (t : t) : t = if k = 0 then [] else List.map (fun (a, c) -> (a, cmul c k)) t

let neg t = scale (-1) t

let sub a b = add a (neg b)

let of_terms terms =
  List.fold_left (fun acc (a, c) -> add acc (of_atom ~coeff:c a)) zero terms

let terms (t : t) = t

let atoms (t : t) = List.map fst t

let atom_keys (t : t) = List.map (fun (a, _) -> Atom.key a) t

let mentions_key (t : t) k = List.exists (fun (a, _) -> Atom.key a = k) t

let coeff_of (t : t) a =
  match List.assoc_opt a (List.map (fun (x, c) -> (x, c)) t) with
  | Some c -> c
  | None -> 0

let coeff_of_key (t : t) k =
  match List.find_opt (fun (a, _) -> Atom.key a = k) t with
  | Some (_, c) -> c
  | None -> 0

(* Remove the term for atom [a] (if any), returning its coefficient and
   the remaining expression. *)
let split_atom (t : t) a =
  let c = coeff_of t a in
  (c, List.filter (fun (x, _) -> not (Atom.equal x a)) t)

(* Substitute atom [a] by linear expression [e] (used by loop-limit
   substitution: replace the index variable by its extreme value). *)
let subst (t : t) a (e : t) =
  let c, rest = split_atom t a in
  if c = 0 then t else add rest (scale c e)

let compare (a : t) (b : t) =
  List.compare
    (fun (xa, ca) (xb, cb) ->
      let c = Atom.compare xa xb in
      if c <> 0 then c else Int.compare ca cb)
    a b

let equal a b = compare a b = 0

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Greatest common divisor of all coefficients; 0 for the zero expr. *)
let coeff_gcd (t : t) = List.fold_left (fun g (_, c) -> gcd g c) 0 t

let hash (t : t) =
  List.fold_left (fun h (a, c) -> (h * 31) + (Atom.key a * 7) + c) 17 t

let pp ppf (t : t) =
  match t with
  | [] -> Fmt.string ppf "0"
  | (a0, c0) :: rest ->
      let pp_first ppf (a, c) =
        if c = 1 then Atom.pp ppf a
        else if c = -1 then Fmt.pf ppf "-%a" Atom.pp a
        else Fmt.pf ppf "%d*%a" c Atom.pp a
      in
      let pp_next ppf (a, c) =
        if c = 1 then Fmt.pf ppf "+%a" Atom.pp a
        else if c = -1 then Fmt.pf ppf "-%a" Atom.pp a
        else if c > 0 then Fmt.pf ppf "+%d*%a" c Atom.pp a
        else Fmt.pf ppf "-%d*%a" (-c) Atom.pp a
      in
      pp_first ppf (a0, c0);
      List.iter (pp_next ppf) rest

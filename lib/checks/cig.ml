(* Check Implication Graph (paper section 3.1).

   Nodes are *families* of checks (checks sharing a range expression);
   an edge [F -> G] with weight [w] asserts that for every constant [c],
   [Check (e_F <= c)] implies [Check (e_G <= c + w)]. A check [(F, cf)]
   is then as strong as [(G, cg)] iff [cf + W(F, G) <= cg] where
   [W(F, G)] is the shortest-path weight from F to G (a trivial path
   gives the within-family rule [cf <= cg]).

   When two edges connect the same pair of families, the minimum weight
   is kept — the tighter implication subsumes the looser one. *)

type family_id = int

type t = {
  families : (Linexpr.t, family_id) Hashtbl.t;
  mutable exprs : Linexpr.t array; (* family id -> range expression *)
  mutable nfam : int;
  edges : (family_id * family_id, int) Hashtbl.t;
  mutable closure : int option array array; (* shortest paths; lazily rebuilt *)
  mutable closure_valid : bool;
}

let create () =
  {
    families = Hashtbl.create 64;
    exprs = Array.make 16 Linexpr.zero;
    nfam = 0;
    edges = Hashtbl.create 16;
    closure = [||];
    closure_valid = false;
  }

let num_families t = t.nfam

let family_of_expr t (e : Linexpr.t) : family_id =
  match Hashtbl.find_opt t.families e with
  | Some id -> id
  | None ->
      let id = t.nfam in
      t.nfam <- id + 1;
      if id >= Array.length t.exprs then begin
        let exprs = Array.make (max 16 (2 * Array.length t.exprs)) Linexpr.zero in
        Array.blit t.exprs 0 exprs 0 (Array.length t.exprs);
        t.exprs <- exprs
      end;
      t.exprs.(id) <- e;
      Hashtbl.replace t.families e id;
      t.closure_valid <- false;
      id

let family_of_check t (c : Check.t) = family_of_expr t (Check.family_key c)

let expr_of_family t id = t.exprs.(id)

(* [add_implication t ~from:(F, cf) ~to_:(G, cg)] records that the check
   [(F <= cf)] implies [(G <= cg)], generalized shift-invariantly to the
   whole families via an edge of weight [cg - cf]. *)
let add_edge t ~from ~to_ ~weight =
  if from <> to_ then begin
    let key = (from, to_) in
    (match Hashtbl.find_opt t.edges key with
    | Some w when w <= weight -> ()
    | _ ->
        Hashtbl.replace t.edges key weight;
        t.closure_valid <- false)
  end

let add_implication t ~from:(cf : Check.t) ~to_:(cg : Check.t) =
  let f = family_of_check t cf and g = family_of_check t cg in
  add_edge t ~from:f ~to_:g ~weight:(Check.constant cg - Check.constant cf)

(* Floyd–Warshall over the (small) family graph. Negative cycles would
   mean the recorded implications are contradictory; we saturate at the
   iteration bound instead of looping, which can only make strength
   queries more conservative. *)
let rebuild_closure t =
  let n = t.nfam in
  let m = Array.make_matrix n n None in
  for i = 0 to n - 1 do
    m.(i).(i) <- Some 0
  done;
  Hashtbl.iter
    (fun (f, g) w ->
      match m.(f).(g) with
      | Some w0 when w0 <= w -> ()
      | _ -> m.(f).(g) <- Some w)
    t.edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      match m.(i).(k) with
      | None -> ()
      | Some wik ->
          for j = 0 to n - 1 do
            match m.(k).(j) with
            | None -> ()
            | Some wkj -> (
                let w = wik + wkj in
                match m.(i).(j) with
                | Some w0 when w0 <= w -> ()
                | _ -> m.(i).(j) <- Some w)
          done
    done
  done;
  t.closure <- m;
  t.closure_valid <- true

(* Shortest implication-path weight from family [f] to family [g];
   [Some 0] when [f = g]. *)
let path_weight t f g =
  if f = g then Some 0
  else begin
    if not t.closure_valid then rebuild_closure t;
    if f < Array.length t.closure && g < Array.length t.closure then t.closure.(f).(g)
    else None
  end

(* Is check [(f, cf)] as strong as check [(g, cg)]? *)
let as_strong_as t ~strong:(f, cf) ~weak:(g, cg) =
  match path_weight t f g with Some w -> cf + w <= cg | None -> false

let edge_list t = Hashtbl.fold (fun (f, g) w acc -> (f, g, w) :: acc) t.edges []

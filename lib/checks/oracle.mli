(** Omega-lite implication oracle over canonical checks.

    Decides [hyps |= goal] for conjunctions of linear inequalities
    [e <= k] over {!Atom.t}s by refutation: negate the goal
    ([not (e <= k)] is [-e <= -k-1] over the integers) and run
    Fourier–Motzkin variable elimination with gcd tightening until a
    constant contradiction [0 <= k], [k < 0] appears.

    Pure OCaml, no external solver. Every combination step charges a
    local {!Nascent_support.Guard} fuel budget (and ticks the ambient
    budgets, so per-pass watchdogs observe the work); exhaustion,
    coefficient {!Linexpr.Overflow}, and the incompleteness of rational
    projection over the integers all degrade to [false] ("unknown") —
    the conservative answer that merely keeps a check.

    A [true] answer is always sound: the refutation is a genuine
    integer-arithmetic proof that every model of the hypotheses
    satisfies the goal. *)

val fuel_budget : int
(** Combination-step budget per query (the bound that guarantees the
    oracle can never hang a pass). *)

val implies : hyps:Check.t list -> Check.t -> bool
(** [implies ~hyps goal]: does the conjunction of [hyps] entail [goal]?
    Sound when [true]; [false] means "could not prove", not "refuted". *)

val unsat : Check.t list -> bool
(** Is the conjunction of constraints unsatisfiable over the integers?
    Sound when [true]. *)

(** Symbolic atoms of canonical range expressions.

    A range expression is a linear combination of atoms. An atom is
    usually a program variable, but clients may introduce synthetic
    atoms: an opaque non-linear subexpression, or the basic loop
    variable of induction analysis. The checks library only needs a
    total order and a printable name, so an atom is a client-allocated
    integer key plus a display name. Keys must be unique within one
    function's atom environment ({!Nascent_ir.Atoms} manages this). *)

type t

val make : key:int -> name:string -> t
(** [make ~key ~name] is the atom with unique key [key], displayed as
    [name]. Equality and ordering use only [key]. *)

val key : t -> int
(** The client-allocated unique key. *)

val name : t -> string
(** The display name, used only for printing. *)

val compare : t -> t -> int
(** Total order by key; the canonical term order of range expressions. *)

val equal : t -> t -> bool
(** [equal a b] iff the keys coincide. *)

val pp : t Fmt.t
(** Prints the display name. *)

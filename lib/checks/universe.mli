(** A frozen universe of canonical checks with precomputed implication
    relations — the set domain of the optimizer's data-flow analyses.

    The three implication modes correspond to the paper's Table 3
    ablations:
    - [All_implications]: full use of the CIG (the default);
    - [No_implications]: a check implies only itself (the primed NI'
      and SE' variants);
    - [Cross_family_only]: within-family implication disabled, edges
      between different families kept (the LLS' variant, which
      preserves the implications from preheader conditional checks to
      the loop-body checks they cover). *)

type mode = No_implications | Cross_family_only | All_implications

val mode_name : mode -> string

type t

val build : cig:Cig.t -> mode:mode -> ?oracle:bool -> Check.t list -> t
(** Freeze the distinct checks of the list into an indexed universe.
    Implication queries go through [cig], which the caller has already
    populated with any cross-family edges. With [~oracle:true], the
    availability-generation sets are additionally widened by the
    {!Oracle} decision procedure: cross-family pairs the CIG cannot
    relate syntactically gain an implication edge when the oracle
    proves it. [ant_gen] is never widened — insertion safety depends
    on the paper's same-family restriction (section 3.2). *)

val size : t -> int
val mode : t -> mode

val check : t -> int -> Check.t
(** The check at an index. *)

val index_of : t -> Check.t -> int option
val index_of_exn : t -> Check.t -> int

val family : t -> int -> Cig.family_id

val avail_gen : t -> int -> Nascent_support.Bitset.t
(** Checks made {e available} by performing check [i]: [i] itself plus
    every check it implies (mode-permitting, CIG-wide). *)

val ant_gen : t -> int -> Nascent_support.Bitset.t
(** Checks made {e anticipatable} by performing check [i]: restricted
    to weaker checks of the same family — the paper's stronger
    condition that keeps insertion points below the definitions of a
    check's symbols (section 3.2). *)

val killed_by_key : t -> int -> Nascent_support.Bitset.t
(** Checks whose range expression mentions the atom with this key
    (killed by a definition of that atom). *)

val implies_avail : t -> int -> int -> bool
(** Does performing check [i] make check [j] redundant? *)

val iter_checks : (int -> Check.t -> unit) -> t -> unit
val pp : t Fmt.t

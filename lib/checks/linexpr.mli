(** Canonical linear range expressions: sums [c1*a1 + c2*a2 + ...] over
    {!Atom.t}s with non-zero integer coefficients, atoms in strictly
    increasing key order — the paper's "canonical order of symbolic
    terms" (section 2.2).

    The constant part of a check is {e not} stored here; it is folded
    into the check's range constant (see {!Check}). *)

type t

exception Overflow
(** Raised by any coefficient computation whose exact mathematical
    result does not fit in a native [int]. Silent wrapping would turn a
    strong check into a wrong one, so arithmetic here is checked;
    speculative callers (the implication oracle, gcd normalization)
    catch this and degrade to "unknown". *)

val zero : t
(** The empty sum. *)

val is_zero : t -> bool

val of_atom : ?coeff:int -> Atom.t -> t
(** [of_atom ~coeff a] is the single-term expression [coeff * a]
    ([coeff] defaults to 1; a zero coefficient yields {!zero}). *)

val of_terms : (Atom.t * int) list -> t
(** Build from an arbitrary term list: coefficients of repeated atoms
    are summed, zero terms dropped, atoms sorted — the result is
    canonical regardless of input order. *)

val terms : t -> (Atom.t * int) list
(** The canonical term list (sorted, non-zero coefficients). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val scale : int -> t -> t
(** [scale k e] is [k * e]; [scale 0 e] is {!zero}. *)

val subst : t -> Atom.t -> t -> t
(** [subst e a limit] replaces atom [a] by the expression [limit]
    (loop-limit substitution: the index variable replaced by its
    extreme value). If [a] does not occur, [e] is returned unchanged. *)

val split_atom : t -> Atom.t -> int * t
(** [split_atom e a] is [(coeff of a in e, e without a's term)]. *)

val atoms : t -> Atom.t list
val atom_keys : t -> int list

val mentions_key : t -> int -> bool
(** Does the expression contain the atom with this key? (The kill test
    of the check data-flow analyses.) *)

val coeff_of : t -> Atom.t -> int
(** Coefficient of an atom, 0 if absent. *)

val coeff_of_key : t -> int -> int

val coeff_gcd : t -> int
(** Gcd of the absolute coefficients; 0 for {!zero}. *)

val checked_add : int -> int -> int
(** Exact integer sum, or raise {!Overflow}. *)

val checked_mul : int -> int -> int
(** Exact integer product, or raise {!Overflow}. *)

val compare : t -> t -> int
(** Total order; expressions are equal iff they have identical terms,
    so this is the family key order. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t

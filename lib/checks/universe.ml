(* A frozen universe of canonical checks with precomputed implication
   relations, the set domain of the optimizer's data-flow analyses.

   The three implication modes correspond to the paper's Table 3
   ablations:
   - [All_implications]  — full use of the CIG (the default);
   - [No_implications]   — a check implies only itself (the primed NI'
                           and SE' variants);
   - [Cross_family_only] — within-family implication disabled, edges
                           between different families kept (the LLS'
                           variant, which preserves the implications
                           from preheader conditional checks to the
                           loop-body checks they cover). *)

type mode = No_implications | Cross_family_only | All_implications

let mode_name = function
  | No_implications -> "no-impl"
  | Cross_family_only -> "cross-family-only"
  | All_implications -> "all-impl"

type t = {
  cig : Cig.t;
  index : (Check.t, int) Hashtbl.t;
  checks : Check.t array;
  families : int array; (* check index -> family id *)
  mode : mode;
  avail_gen : Nascent_support.Bitset.t array;
      (* checks made available by performing check i *)
  ant_gen : Nascent_support.Bitset.t array;
      (* checks made anticipatable by performing check i (same-family only,
         per the paper's stronger anticipatability conditions) *)
  kills : (int, Nascent_support.Bitset.t) Hashtbl.t; (* atom key -> checks killed *)
}

module Bitset = Nascent_support.Bitset

let size t = Array.length t.checks

let mode t = t.mode

let check t i = t.checks.(i)

let index_of t c = Hashtbl.find_opt t.index c

let index_of_exn t c =
  match index_of t c with
  | Some i -> i
  | None -> invalid_arg "Universe.index_of_exn: unregistered check"

let family t i = t.families.(i)

(* Same atom vocabulary (as key sets)? A single-hypothesis implication
   [ci => cj] can only hold when every atom is shared: a variable
   occurring in just one of the two constraints is unbounded in the
   direction the refutation would need. Cheap pre-filter that keeps the
   O(n^2) oracle sweep of [build] from querying hopeless pairs. *)
let same_atom_keys a b =
  let ka = Check.atom_keys a and kb = Check.atom_keys b in
  List.length ka = List.length kb && List.for_all2 ( = ) ka kb

(* Build a frozen universe from the distinct checks of [checks].
   Implication queries go through [cig], which the caller has already
   populated with cross-family edges (e.g. from loop-limit
   substitution). With [~oracle:true], availability-generation is
   additionally widened by the decision procedure ({!Oracle}): pairs
   the CIG cannot relate syntactically (different families, e.g.
   [2*i <= 10 => i <= 5]) gain an implication when the oracle proves
   it. Only [avail_gen] is widened — [ant_gen] keeps the paper's
   same-family restriction (section 3.2), because insertion safety
   depends on it, not on implication strength. *)
let build ~cig ~mode ?(oracle = false) (checks : Check.t list) : t =
  let index = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun c ->
        if Hashtbl.mem index c then false
        else begin
          Hashtbl.replace index c (Hashtbl.length index);
          true
        end)
      checks
  in
  let arr = Array.of_list distinct in
  let n = Array.length arr in
  let families = Array.map (Cig.family_of_check cig) arr in
  let avail_gen = Array.init n (fun _ -> Bitset.create n) in
  let ant_gen = Array.init n (fun _ -> Bitset.create n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let same_fam = families.(i) = families.(j) in
      let ci = Check.constant arr.(i) and cj = Check.constant arr.(j) in
      let strong () =
        Cig.as_strong_as cig ~strong:(families.(i), ci) ~weak:(families.(j), cj)
      in
      let oracle_proves () =
        oracle && i <> j && (not same_fam)
        && same_atom_keys arr.(i) arr.(j)
        && Oracle.implies ~hyps:[ arr.(i) ] arr.(j)
      in
      let avail_implies =
        match mode with
        | No_implications -> i = j
        | Cross_family_only ->
            i = j || ((not same_fam) && (strong () || oracle_proves ()))
        | All_implications -> strong () || oracle_proves ()
      in
      if avail_implies then Bitset.add avail_gen.(i) j;
      let ant_implies =
        match mode with
        | No_implications | Cross_family_only -> i = j
        | All_implications -> same_fam && ci <= cj
      in
      if ant_implies then Bitset.add ant_gen.(i) j
    done
  done;
  let kills = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      List.iter
        (fun key ->
          let set =
            match Hashtbl.find_opt kills key with
            | Some s -> s
            | None ->
                let s = Bitset.create n in
                Hashtbl.replace kills key s;
                s
          in
          Bitset.add set i)
        (Check.atom_keys c))
    arr;
  { cig; index; checks = arr; families; mode; avail_gen; ant_gen; kills }

(* Set of checks made available by performing check [i]. *)
let avail_gen t i = t.avail_gen.(i)

(* Set of checks made anticipatable by performing check [i]. *)
let ant_gen t i = t.ant_gen.(i)

(* Set of checks whose range expression mentions the atom with key [k]
   (i.e. killed by a definition of that atom). *)
let killed_by_key t k =
  match Hashtbl.find_opt t.kills k with
  | Some s -> s
  | None -> Bitset.create (size t)

(* Does performing check [i] make check [j] redundant (availability
   sense, mode-aware)? *)
let implies_avail t i j = Bitset.mem t.avail_gen.(i) j

let iter_checks f t = Array.iteri f t.checks

let pp ppf t =
  Array.iteri (fun i c -> Fmt.pf ppf "%d: %a@." i Check.pp c) t.checks

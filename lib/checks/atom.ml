(* Symbolic atoms of canonical range expressions.

   A range expression is a linear combination of atoms. An atom is
   usually a program variable, but clients may also introduce synthetic
   atoms (an opaque non-linear subexpression, an SSA name, or the basic
   loop variable of induction analysis). The checks library only needs a
   total order and a printable name, so an atom is a client-allocated
   integer key plus a display name. *)

type t = { key : int; name : string }

let make ~key ~name = { key; name }

let key t = t.key
let name t = t.name

let compare a b = Int.compare a.key b.key
let equal a b = a.key = b.key

let pp ppf a = Fmt.string ppf a.name

(** INX pre-pass (paper section 2.3): rewrite each check's canonical
    form into {e induction-expression} form.

    Every program-variable term of a check's range expression is
    resolved by {!Nascent_analysis.Induction} into basic-loop-variable
    plus stable-leaf form; if all terms resolve, the check instruction
    is replaced in place by the equivalent induction-expression check.
    Needed basic variables are {e materialized} as real variables
    (h = 0 in the preheader, h = h + 1 in each latch), so rewritten
    checks stay executable and the ordinary kill rules apply.

    After this pass the whole PRX machinery runs unchanged on the
    rewritten checks — that is what the INX configuration axis means. *)

type stats = { mutable rewritten : int; mutable basics_materialized : int }

val run : Nascent_ir.Func.t -> stats

(* Per-function optimization context.

   Abstracts over the PRX/INX axis: every analysis and placement pass
   asks the context (a) which *analysis check* a check instruction
   denotes and (b) which atom keys an instruction (or a block entry)
   kills. Under PRX the analysis check is the instruction's own
   canonical check; under INX it is the induction-expression rewriting
   provided by the induction-analysis overlay. *)

module Ir = Nascent_ir
module Check = Nascent_checks.Check
module Cig = Nascent_checks.Cig
module Universe = Nascent_checks.Universe
module Loops = Nascent_analysis.Loops

type t = {
  func : Ir.Func.t;
  mutable loops : Loops.loop list; (* innermost-first; see [refresh] *)
  mutable loops_num_blocks : int; (* block count [loops] was computed at *)
  cig : Cig.t;
  mode : Universe.mode;
  oracle : bool;
  site_check : Ir.Types.check_meta -> Check.t;
  instr_kill_keys : Ir.Types.instr -> int list;
  block_entry_kill_keys : int -> int list;
}

let prx_kills (atoms : Ir.Atoms.t) (i : Ir.Types.instr) : int list =
  match i with
  | Ir.Types.Assign (v, _) -> Ir.Atoms.killed_by_def atoms v
  | Ir.Types.Store _ | Ir.Types.Call _ -> Ir.Atoms.killed_by_store atoms
  | _ -> []

let create_prx ~mode ?(oracle = false) (func : Ir.Func.t) : t =
  {
    func;
    loops = Loops.compute func;
    loops_num_blocks = Ir.Func.num_blocks func;
    cig = Cig.create ();
    mode;
    oracle;
    site_check = (fun m -> m.Ir.Types.chk);
    instr_kill_keys = prx_kills func.Ir.Func.atoms;
    block_entry_kill_keys = (fun _ -> []);
  }

(* The context is built once per function (canonicalizing every check
   and interning families is the expensive part) and shared by all
   passes; only the loop structure can go stale — edge splitting adds
   blocks — so recompute it exactly when the block count moved. *)
let refresh (t : t) : unit =
  let n = Ir.Func.num_blocks t.func in
  if n <> t.loops_num_blocks then begin
    t.loops <- Loops.compute t.func;
    t.loops_num_blocks <- n
  end

(* Build the frozen check universe from the checks currently present in
   the function (placement passes rebuild it after inserting). *)
let universe (t : t) : Universe.t =
  let metas = Ir.Func.all_check_metas t.func in
  Universe.build ~cig:t.cig ~mode:t.mode ~oracle:t.oracle
    (List.map t.site_check metas)

(** Availability and anticipatability of checks (paper section 3.2).

    Both are {e must} data-flow problems over a frozen check universe:
    - availability (forward): a check statement generates itself and
      all weaker checks (CIG-wide, mode-permitting); a definition of
      any symbol of a check's range expression kills it;
    - anticipatability (backward): generation is restricted to weaker
      checks {e of the same family} — the paper's stronger condition
      that keeps insertion points below the definitions of a check's
      symbols. *)

type env = { ctx : Checkctx.t; uni : Nascent_checks.Universe.t }

val make_env : Checkctx.t -> env

val n_checks : env -> int

val instr_kills : env -> Nascent_ir.Types.instr -> Nascent_support.Bitset.t

val availability : ?cond_gens:bool -> env -> Nascent_analysis.Dataflow.result
(** Block-level availability. [cond_gens] makes a [Cond_check] generate
    its check: off for global elimination (a guarded check is not
    unconditionally performed), on inside the preheader pass, whose
    guards are exactly loop-entry conditions. *)

val anticipatability : ?cond_gens:bool -> env -> Nascent_analysis.Dataflow.result
(** Block-level anticipatability; [result.in_] is ANTIN (block entry),
    [result.out] ANTOUT. *)

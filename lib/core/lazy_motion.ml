(* PRE placement of checks: the safe-earliest and latest-not-isolated
   transformations of Knoop, Rüthing & Steffen ("Lazy Code Motion"),
   adapted to range checks (paper sections 2.1 and 3.3).

   Differences from arithmetic PRE, per the paper:
   - a check defines no value, so there is nothing to rewire — the pass
     only *inserts* checks at the chosen edges; the shared elimination
     pass afterwards deletes everything that became redundant;
   - generation is implication-aware: an occurrence of a strong check
     locally anticipates/computes its weaker family members;
   - safety = down-safety (anticipatability): inserting a check where a
     check at least as strong is anticipatable can only move the trap
     earlier, never invent one.

   Safe-earliest (SE) inserts at the EARLIEST edges; latest-not-isolated
   (LNI) delays insertions as long as profitable (LATER system) —
   pointless for register pressure here (checks produce no value,
   section 3.3) but measured by the paper, so both are implemented.

   Critical edges are split before the edge systems are solved. *)

module Ir = Nascent_ir
module Bitset = Nascent_support.Bitset
module Universe = Nascent_checks.Universe
module Dataflow = Nascent_analysis.Dataflow
open Ir.Types

type placement = Safe_earliest | Latest_not_isolated

type stats = { mutable inserted : int }

(* Local predicates per block:
   ANTLOC — check locally anticipatable (performed before any kill);
   COMP   — check locally available at block end (performed, not killed after);
   TRANSP — block does not kill the check. *)
type local = { antloc : Bitset.t; comp : Bitset.t; transp : Bitset.t }

let locals (env : Analyses.env) (b : block) : local =
  let ctx = env.Analyses.ctx in
  let uni = env.Analyses.uni in
  let n = Universe.size uni in
  let antloc = Bitset.create n and comp = Bitset.create n in
  let killed = Bitset.create n in
  let kill_of i =
    let k = Bitset.create n in
    List.iter
      (fun key -> Bitset.union_into ~into:k (Universe.killed_by_key uni key))
      (ctx.Checkctx.instr_kill_keys i);
    k
  in
  (* entry kills count as kills-before-everything for ANTLOC *)
  List.iter
    (fun key -> Bitset.union_into ~into:killed (Universe.killed_by_key uni key))
    (ctx.Checkctx.block_entry_kill_keys b.bid);
  List.iter
    (fun i ->
      (match i with
      | Check m -> (
          match Universe.index_of uni (ctx.Checkctx.site_check m) with
          | None -> ()
          | Some j ->
              let g = Bitset.copy (Universe.ant_gen uni j) in
              Bitset.diff_into ~into:g killed;
              Bitset.union_into ~into:antloc g)
      | _ -> ());
      Bitset.union_into ~into:killed (kill_of i))
    b.instrs;
  (* backward scan for COMP *)
  Bitset.clear killed;
  List.iter
    (fun i ->
      (match i with
      | Check m -> (
          match Universe.index_of uni (ctx.Checkctx.site_check m) with
          | None -> ()
          | Some j ->
              let g = Bitset.copy (Universe.avail_gen uni j) in
              Bitset.diff_into ~into:g killed;
              Bitset.union_into ~into:comp g)
      | _ -> ());
      Bitset.union_into ~into:killed (kill_of i))
    (List.rev b.instrs);
  let transp = Bitset.full n in
  List.iter (fun i -> Bitset.diff_into ~into:transp (kill_of i)) b.instrs;
  List.iter
    (fun key -> Bitset.diff_into ~into:transp (Universe.killed_by_key uni key))
    (ctx.Checkctx.block_entry_kill_keys b.bid);
  { antloc; comp; transp }

(* Insert the checks of [set] on edge (m, n). Because critical edges
   were split, either m has a single successor (append before its
   terminator) or n has a single predecessor (prepend). Within a family
   the strongest check is inserted first, so elimination keeps only it. *)
let insert_on_edge (env : Analyses.env) preds (st : stats) m n (set : Bitset.t) =
  if not (Bitset.is_empty set) then begin
    let uni = env.Analyses.uni in
    let f = env.Analyses.ctx.Checkctx.func in
    let checks =
      Bitset.elements set
      |> List.map (fun j -> Universe.check uni j)
      |> List.sort Nascent_checks.Check.compare
    in
    let instrs =
      List.map
        (fun c ->
          Check { chk = c; src_array = "<pre>"; src_dim = 0; kind = Upper })
        checks
    in
    st.inserted <- st.inserted + List.length instrs;
    if m = -1 then begin
      (* virtual entry edge: insert at the top of the entry block *)
      let nb = Ir.Func.block f n in
      nb.instrs <- instrs @ nb.instrs
    end
    else begin
      let mb = Ir.Func.block f m and nb = Ir.Func.block f n in
      if Ir.Func.succs f m = [ n ] then mb.instrs <- mb.instrs @ instrs
      else if List.length preds.(n) = 1 then nb.instrs <- instrs @ nb.instrs
      else
        (* Cannot happen after critical-edge splitting. *)
        invalid_arg "Lazy_motion.insert_on_edge: unsplit critical edge"
    end
  end

let run (ctx : Checkctx.t) ~(placement : placement) : stats =
  let st = { inserted = 0 } in
  let f = ctx.Checkctx.func in
  ignore (Ir.Func.split_critical_edges f);
  (* Splitting added blocks: recompute loops lazily by rebuilding the
     env (the context's loop list is only used by the preheader pass,
     which runs on its own context). *)
  let env = Analyses.make_env ctx in
  let uni = env.Analyses.uni in
  let n = Universe.size uni in
  let nb = Ir.Func.num_blocks f in
  let loc = Array.init nb (fun bid -> locals env (Ir.Func.block f bid)) in
  (* Down-safety (anticipatability) and up-safety (availability). *)
  let ant = Analyses.anticipatability env in
  let av = Analyses.availability env in
  let preds = Ir.Func.preds_array f in
  let entry = f.Ir.Func.entry in
  (* EARLIEST(m,n) = ANTIN(n) ∧ ¬AVOUT(m) ∧ (¬TRANSP(m) ∨ ¬ANTOUT(m));
     m = -1 is the virtual edge into the entry block, where nothing is
     available and nothing can move higher. *)
  let earliest m nd =
    let e = Bitset.copy ant.Dataflow.in_.(nd) in
    if m <> -1 then begin
      Bitset.diff_into ~into:e av.Dataflow.out.(m);
      let blocked = Bitset.copy loc.(m).transp in
      Bitset.inter_into ~into:blocked ant.Dataflow.out.(m);
      (* blocked = TRANSP(m) ∧ ANTOUT(m): placement can still move up *)
      Bitset.diff_into ~into:e blocked
    end;
    e
  in
  let edges =
    (-1, entry)
    :: List.concat_map
         (fun m -> List.map (fun nd -> (m, nd)) (Ir.Func.succs f m))
         (Ir.Func.rpo f)
  in
  (match placement with
  | Safe_earliest ->
      List.iter (fun (m, nd) -> insert_on_edge env preds st m nd (earliest m nd)) edges
  | Latest_not_isolated ->
      (* LATER system (Knoop et al. 92):
         LATERIN(n) = ∧_{(m,n)} LATER(m,n)   (entry: ∅)
         LATER(m,n) = EARLIEST(m,n) ∨ (LATERIN(m) ∧ ¬ANTLOC(m))
         INSERT(m,n) = LATER(m,n) ∧ ¬LATERIN(n) *)
      let laterin = Array.init nb (fun _ -> Bitset.full n) in
      (* the entry block's only incoming edge is the virtual one *)
      Bitset.assign ~into:laterin.(entry) (earliest (-1) entry);
      let later (m, nd) =
        let l = earliest m nd in
        if m <> -1 then begin
          let pass = Bitset.copy laterin.(m) in
          Bitset.diff_into ~into:pass loc.(m).antloc;
          Bitset.union_into ~into:l pass
        end;
        l
      in
      let changed = ref true in
      while !changed do
        (* charge any enclosing pass/task fuel budget per sweep *)
        Nascent_support.Guard.tick_ambient ();
        changed := false;
        List.iter
          (fun nd ->
            if nd <> entry then begin
              let v = Bitset.full n in
              List.iter (fun m -> Bitset.inter_into ~into:v (later (m, nd))) preds.(nd);
              if preds.(nd) = [] then Bitset.clear v;
              if not (Bitset.equal v laterin.(nd)) then begin
                Bitset.assign ~into:laterin.(nd) v;
                changed := true
              end
            end)
          (Ir.Func.rpo f)
      done;
      List.iter
        (fun (m, nd) ->
          let ins = later (m, nd) in
          Bitset.diff_into ~into:ins laterin.(nd);
          insert_on_edge env preds st m nd ins)
        edges);
  st

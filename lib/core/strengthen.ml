(* Check strengthening (Gupta; paper section 3.3).

   For each check C, compute the strongest anticipatable check C' of
   C's family at C's program point and replace C by C'. C' is
   guaranteed to be performed later anyway (anticipatable), so doing it
   here is safe, and it makes the later weaker checks redundant — the
   elimination pass then deletes them. This realizes the paper's
   Figure 1(b) -> 1(c) transformation. *)

module Ir = Nascent_ir
module Bitset = Nascent_support.Bitset
module Check = Nascent_checks.Check
module Universe = Nascent_checks.Universe
open Ir.Types

type stats = { mutable strengthened : int }

let run (ctx : Checkctx.t) : stats =
  let st = { strengthened = 0 } in
  let env = Analyses.make_env ctx in
  let uni = env.Analyses.uni in
  let ant = Analyses.anticipatability env in
  let f = ctx.Checkctx.func in
  let reach = Ir.Func.reachable f in
  Ir.Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        (* Backward in-block scan: [cur] is the anticipatable set just
           before the instruction under consideration. *)
        let cur = Bitset.copy ant.Nascent_analysis.Dataflow.out.(b.bid) in
        let strengthened_instr (i : instr) : instr =
          match i with
          | Check m -> (
              match Universe.index_of uni (ctx.Checkctx.site_check m) with
              | None -> i
              | Some j ->
                  (* After this check executes, its family-weaker checks
                     are anticipatable here. *)
                  Bitset.union_into ~into:cur (Universe.ant_gen uni j);
                  (* Strongest anticipatable check of the same family at
                     this point. *)
                  let best = ref j in
                  Bitset.iter
                    (fun j' ->
                      if
                        Universe.family uni j' = Universe.family uni j
                        && Check.constant (Universe.check uni j')
                           < Check.constant (Universe.check uni !best)
                      then best := j')
                    cur;
                  if !best <> j then begin
                    (* The replacement performs a stronger check, whose
                       family-weaker checks become anticipatable for
                       instructions earlier in the block. *)
                    Bitset.union_into ~into:cur (Universe.ant_gen uni !best);
                    (* Strengthening rewrites the executed check, so it
                       only applies when the analysis check is the
                       instruction's own check (always true under PRX,
                       and under INX after the rewriting pre-pass). *)
                    if Check.equal m.chk (ctx.Checkctx.site_check m) then begin
                      st.strengthened <- st.strengthened + 1;
                      Check { m with chk = Universe.check uni !best }
                    end
                    else i
                  end
                  else i)
          | _ ->
              List.iter
                (fun k -> Bitset.diff_into ~into:cur (Universe.killed_by_key uni k))
                (ctx.Checkctx.instr_kill_keys i);
              i
        in
        (* rev_map evaluates front-to-back, so feeding it the reversed
           list visits instructions backward (as the analysis needs) and
           returns them in the original order. *)
        b.instrs <- List.rev_map strengthened_instr (List.rev b.instrs)
      end)
    f;
  st

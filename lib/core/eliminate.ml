(* Steps 4 and 5 of the optimizer (paper section 3): eliminate checks
   that are available (hence redundant), then fold compile-time
   checks. *)

module Ir = Nascent_ir
module Bitset = Nascent_support.Bitset
module Check = Nascent_checks.Check
module Universe = Nascent_checks.Universe
module Expr = Nascent_ir.Expr
open Ir.Types

type stats = {
  mutable redundant_deleted : int;
  mutable compile_time_deleted : int;
  mutable compile_time_traps : int;
}

let new_stats () =
  { redundant_deleted = 0; compile_time_deleted = 0; compile_time_traps = 0 }

(* covered_by.(j) = the set of checks whose execution makes j redundant
   (the transpose of the availability generation relation). *)
let covered_by (uni : Universe.t) : Bitset.t array =
  let n = Universe.size uni in
  let cov = Array.init n (fun _ -> Bitset.create n) in
  for i = 0 to n - 1 do
    Bitset.iter (fun j -> Bitset.add cov.(j) i) (Universe.avail_gen uni i)
  done;
  cov

(* Step 4: remove every check instruction whose check is available at
   its own program point. One forward scan per block, seeded with the
   block-entry availability. *)
let redundancy_elimination (env : Analyses.env) (st : stats) : unit =
  let ctx = env.Analyses.ctx in
  let f = ctx.Checkctx.func in
  let avail = Analyses.availability env in
  let cov = covered_by env.Analyses.uni in
  let reach = Ir.Func.reachable f in
  (* Oracle mode only: is the check at index [j] entailed by the
     *conjunction* of the currently available checks? Every check in
     [cur] was performed (and passed) on every path here with no
     intervening kill of its atoms, so the conjunction of their
     constraints holds at this point; if it implies [j]'s constraint,
     executing [j] cannot trap. The single-hypothesis cases are already
     folded into [cov] by the universe's oracle widening — this covers
     genuinely conjunctive facts like [x <= y /\ y <= 5 |- x <= 5]. *)
  let conjunction_implies cur j =
    ctx.Checkctx.oracle
    &&
    let hyps = ref [] in
    Bitset.iter
      (fun i -> hyps := Universe.check env.Analyses.uni i :: !hyps)
      cur;
    Nascent_checks.Oracle.implies ~hyps:!hyps
      (Universe.check env.Analyses.uni j)
  in
  Ir.Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        let cur = Bitset.copy avail.Nascent_analysis.Dataflow.in_.(b.bid) in
        List.iter
          (fun k -> Bitset.diff_into ~into:cur (Universe.killed_by_key env.Analyses.uni k))
          (ctx.Checkctx.block_entry_kill_keys b.bid);
        let keep =
          List.filter
            (fun i ->
              match i with
              | Check m -> (
                  match Universe.index_of env.Analyses.uni (ctx.Checkctx.site_check m) with
                  | None -> true (* not in universe: leave untouched *)
                  | Some j ->
                      if
                        (not (Bitset.disjoint cur cov.(j)))
                        || conjunction_implies cur j
                      then begin
                        st.redundant_deleted <- st.redundant_deleted + 1;
                        false
                      end
                      else begin
                        Bitset.union_into ~into:cur (Universe.avail_gen env.Analyses.uni j);
                        true
                      end)
              | Cond_check _ -> true (* guarded: generates nothing *)
              | _ ->
                  List.iter
                    (fun k ->
                      Bitset.diff_into ~into:cur
                        (Universe.killed_by_key env.Analyses.uni k))
                    (ctx.Checkctx.instr_kill_keys i);
                  true)
            b.instrs
        in
        b.instrs <- keep
      end)
    f

(* Step 4b, oracle mode only: delete every check provable from the
   {e ambient} facts of its program point — the branch conditions
   holding on every path in, assignment postconditions, and affine loop
   invariants, with check instructions contributing nothing
   ({!Ir.Validate.Facts}). The CIG-based elimination above only sees
   pairwise syntactic implications between checks; this sweep decides
   arbitrary linear consequences (conjunctions across families,
   equalities threaded through assignments), so it reaches checks —
   typically hoisted preheader checks over loop-invariant bounds — the
   paper's machinery cannot.

   Ambient (check-independent) proofs are what keep the deletions
   stable under each other: deleting check A never invalidates the
   proof that justified deleting check B, so the per-compile
   translation validator re-derives every proof on the post-deletion
   function. A [Cond_check] whose check is provable outright is deleted
   too — if its guard is true the check runs and passes, and if false
   the instruction was a no-op either way. *)
let oracle_elimination (f : Ir.Func.t) (st : stats) : unit =
  let atoms = f.Ir.Func.atoms in
  let entry = Ir.Validate.Facts.ambient_entry f in
  let reach = Ir.Func.reachable f in
  Ir.Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        let state = ref (Some entry.(b.bid)) in
        b.instrs <-
          List.filter
            (fun i ->
              let provable m =
                match !state with
                | Some s -> Ir.Validate.Facts.proves s m.chk
                | None -> true (* dead past an unconditional trap *)
              in
              match i with
              | (Check m | Cond_check (_, m)) when provable m ->
                  st.redundant_deleted <- st.redundant_deleted + 1;
                  false
              | _ ->
                  state := Ir.Validate.Facts.step atoms !state i;
                  true)
            b.instrs
      end)
    f

(* Step 5: checks whose range expression has no symbolic term are
   decided now; true ones disappear, false ones become TRAP
   instructions reported to the programmer. Conditional checks also
   fold their guard when it is constant. *)
let compile_time_checks (f : Ir.Func.t) (st : stats) : unit =
  (* [orig] is returned whenever the instruction is unchanged so the
     verifier's physical-identity diff sees only genuine rewrites. *)
  let fold_check ~(orig : instr) (m : check_meta) ~(guard : expr option) :
      instr option =
    match Check.compile_time_value m.chk with
    | Some true ->
        st.compile_time_deleted <- st.compile_time_deleted + 1;
        None
    | Some false -> (
        let msg =
          Fmt.str "%s dimension %d %s bound violated: %a" m.src_array m.src_dim
            (match m.kind with Lower -> "lower" | Upper -> "upper")
            Check.pp m.chk
        in
        match guard with
        | None ->
            st.compile_time_traps <- st.compile_time_traps + 1;
            Some (Trap msg)
        | Some g -> (
            match Expr.fold g with
            | Cbool true ->
                st.compile_time_traps <- st.compile_time_traps + 1;
                Some (Trap msg)
            | Cbool false ->
                st.compile_time_deleted <- st.compile_time_deleted + 1;
                None
            | g' -> if Expr.equal g' g then Some orig else Some (Cond_check (g', m))))
    | None -> (
        match guard with
        | None -> Some orig
        | Some g -> (
            match Expr.fold g with
            | Cbool true -> Some (Check m) (* guard statically true: unconditional *)
            | Cbool false ->
                st.compile_time_deleted <- st.compile_time_deleted + 1;
                None
            | g' -> if Expr.equal g' g then Some orig else Some (Cond_check (g', m))))
  in
  Ir.Func.iter_blocks
    (fun b ->
      b.instrs <-
        List.filter_map
          (fun i ->
            match i with
            | Check m -> fold_check ~orig:i m ~guard:None
            | Cond_check (g, m) -> fold_check ~orig:i m ~guard:(Some g)
            | _ -> Some i)
          b.instrs)
    f

(* The standard tail of every scheme: redundancy elimination followed
   by compile-time folding. *)
let run (ctx : Checkctx.t) : stats =
  let st = new_stats () in
  let env = Analyses.make_env ctx in
  redundancy_elimination env st;
  if ctx.Checkctx.oracle then oracle_elimination ctx.Checkctx.func st;
  compile_time_checks ctx.Checkctx.func st;
  st

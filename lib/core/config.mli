(** Optimizer configuration: the axes of the paper's experiments. *)

module Universe = Nascent_checks.Universe

(** The seven check placement schemes of Table 2 (sections 3.3/4.2),
    plus {!MCM} — the Markstein/Cocke/Markstein 1982 algorithm the
    paper's related-work section proposes comparing against. *)
type scheme =
  | NI  (** redundancy elimination, no insertion *)
  | CS  (** check strengthening (Gupta) *)
  | LNI  (** latest-not-isolated PRE placement *)
  | SE  (** safe-earliest PRE placement *)
  | LI  (** preheader insertion of loop-invariant checks *)
  | LLS  (** preheader insertion with loop-limit substitution *)
  | ALL  (** LLS followed by SE *)
  | MCM  (** articulation-node preheader insertion, simple checks only *)

(** PRX-checks are built from program expressions; INX-checks from the
    induction expressions of SSA-based induction variable analysis
    (section 2.3). *)
type check_kind = PRX | INX

type t = {
  scheme : scheme;
  kind : check_kind;
  impl : Universe.mode;  (** Table 3's implication ablation axis *)
  verify : bool;
      (** run the IR invariant verifier ({!Nascent_ir.Verify}) between
          optimizer steps; on by default, disabled by the benchmark
          harness for timing runs *)
  fault : Nascent_ir.Mutate.spec option;
      (** deliberately corrupt one pass's output ([--inject-fault]) to
          exercise the detect-and-rollback path; forces verification
          on. [None] in every normal compile. *)
  oracle : bool;
      (** consult the decision-procedure oracle
          ({!Nascent_checks.Oracle}) during elimination — cross-family
          implications beyond the CIG's syntactic edges — and run
          per-compile translation validation ({!Nascent_ir.Validate})
          after optimization. Off by default. *)
}

val default : t
(** LLS / PRX / all implications / verify / no fault — the paper's
    winner. *)

val make :
  ?scheme:scheme ->
  ?kind:check_kind ->
  ?impl:Universe.mode ->
  ?verify:bool ->
  ?fault:Nascent_ir.Mutate.spec ->
  ?oracle:bool ->
  unit ->
  t

val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
val kind_name : check_kind -> string

val fault_name : Nascent_ir.Mutate.spec option -> string
(** ["none"] or {!Nascent_ir.Mutate.spec_name}, for cache keys and
    reports. *)

val all_schemes : scheme list
(** The paper's Table 2 rows (no MCM). *)

val extended_schemes : scheme list
(** Everything implemented, including the MCM extension. *)

val pp : t Fmt.t

val cache_key : t -> string
(** Stable serialization of every axis — scheme, kind, implication
    mode {e and} [verify] — for use in content-addressed cache keys
    ({!Nascent_support.Memo}). *)

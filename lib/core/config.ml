(* Optimizer configuration: the axes of the paper's experiments. *)

module Universe = Nascent_checks.Universe

(* The seven check placement schemes of Table 2 (section 3.3/4.2),
   plus MCM — the Markstein/Cocke/Markstein 1982 algorithm the paper's
   related-work section proposes comparing against: preheader insertion
   restricted to checks in articulation nodes of the loop body with
   simple (single-variable) range expressions. *)
type scheme =
  | NI (* redundancy elimination, no insertion *)
  | CS (* check strengthening *)
  | LNI (* latest-not-isolated PRE placement *)
  | SE (* safe-earliest PRE placement *)
  | LI (* preheader insertion of loop-invariant checks *)
  | LLS (* preheader insertion with loop-limit substitution *)
  | ALL (* LLS followed by SE *)
  | MCM (* Markstein et al.: articulation-node preheader insertion *)

(* PRX-checks are built from program expressions; INX-checks from the
   induction expressions of SSA-based induction variable analysis
   (section 2.3). *)
type check_kind = PRX | INX

type t = {
  scheme : scheme;
  kind : check_kind;
  impl : Universe.mode; (* Table 3's implication ablation axis *)
  verify : bool;
      (* run the IR invariant verifier between optimizer steps; on by
         default (and in tests), disabled by the benchmark harness so
         Table 2/3 compile-time columns measure only the passes *)
  fault : Nascent_ir.Mutate.spec option;
      (* deliberately corrupt one pass's output (--inject-fault): the
         fault-tolerance harness. Forces the verifier on. *)
  oracle : bool;
      (* consult the decision-procedure oracle (Nascent_checks.Oracle)
         during elimination: cross-family implications beyond the CIG's
         syntactic edges, plus per-compile translation validation *)
}

let default =
  {
    scheme = LLS;
    kind = PRX;
    impl = Universe.All_implications;
    verify = true;
    fault = None;
    oracle = false;
  }

let make ?(scheme = LLS) ?(kind = PRX) ?(impl = Universe.All_implications)
    ?(verify = true) ?fault ?(oracle = false) () =
  { scheme; kind; impl; verify; fault; oracle }

let scheme_name = function
  | NI -> "NI"
  | CS -> "CS"
  | LNI -> "LNI"
  | SE -> "SE"
  | LI -> "LI"
  | LLS -> "LLS"
  | ALL -> "ALL"
  | MCM -> "MCM"

let scheme_of_name = function
  | "NI" | "ni" -> Some NI
  | "CS" | "cs" -> Some CS
  | "LNI" | "lni" -> Some LNI
  | "SE" | "se" -> Some SE
  | "LI" | "li" -> Some LI
  | "LLS" | "lls" -> Some LLS
  | "ALL" | "all" -> Some ALL
  | "MCM" | "mcm" -> Some MCM
  | _ -> None

let kind_name = function PRX -> "PRX" | INX -> "INX"

(* The paper's Table 2 rows. *)
let all_schemes = [ NI; CS; LNI; SE; LI; LLS; ALL ]

(* Everything the optimizer implements, including the MCM extension. *)
let extended_schemes = all_schemes @ [ MCM ]

let fault_name = function
  | None -> "none"
  | Some s -> Nascent_ir.Mutate.spec_name s

let pp ppf t =
  Fmt.pf ppf "%s/%s/%s%s%a" (scheme_name t.scheme) (kind_name t.kind)
    (Universe.mode_name t.impl)
    (if t.oracle then "+O" else "")
    (fun ppf -> function
      | None -> ()
      | Some s -> Fmt.pf ppf "+%s" (Nascent_ir.Mutate.spec_name s))
    t.fault

(* Stable serialization of EVERY axis for content-addressed caching.
   [verify] is included deliberately: the verifier changes no output,
   but a cached cell must record exactly the configuration that
   produced it, so verifier-on and verifier-off runs never share
   entries. [fault] likewise: a deliberately degraded compile must
   never serve a fault-free lookup. *)
let cache_key t =
  Printf.sprintf "%s/%s/%s/verify=%b/fault=%s/oracle=%b" (scheme_name t.scheme)
    (kind_name t.kind)
    (Universe.mode_name t.impl) t.verify (fault_name t.fault) t.oracle

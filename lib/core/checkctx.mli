(** Per-function optimization context.

    Bundles the function with its loop structure, a check implication
    graph, the configured implication mode, and the two oracles every
    analysis and placement pass consults:
    - [site_check]: the {e analysis check} a check instruction denotes
      (the instruction's own canonical check under PRX; the INX
      pre-pass rewrites instructions in place, so it is the identity
      there too);
    - [instr_kill_keys] / [block_entry_kill_keys]: which atom keys an
      instruction (or a block entry) invalidates. *)

type t = {
  func : Nascent_ir.Func.t;
  mutable loops : Nascent_analysis.Loops.loop list;
      (** innermost-first; kept fresh via {!refresh} *)
  mutable loops_num_blocks : int;
      (** block count {!loops} was computed at *)
  cig : Nascent_checks.Cig.t;
  mode : Nascent_checks.Universe.mode;
  oracle : bool;
      (** widen availability with the {!Nascent_checks.Oracle} decision
          procedure (the [--oracle] axis) *)
  site_check : Nascent_ir.Types.check_meta -> Nascent_checks.Check.t;
  instr_kill_keys : Nascent_ir.Types.instr -> int list;
  block_entry_kill_keys : int -> int list;
}

val create_prx :
  mode:Nascent_checks.Universe.mode -> ?oracle:bool -> Nascent_ir.Func.t -> t
(** The standard context: site checks are the instructions' own
    canonical checks; assignments kill their variable's atoms, stores
    and calls kill load-bearing opaque atoms. *)

val refresh : t -> unit
(** Recompute the loop structure if a pass changed the CFG shape (edge
    splitting adds blocks). Cheap no-op when the block count is
    unchanged; the rest of the context — atom kills, site checks, the
    CIG — depends only on the atom table and stays valid, which is why
    one context can serve the whole pass pipeline instead of being
    rebuilt (and every check re-canonicalized) per pass. *)

val universe : t -> Nascent_checks.Universe.t
(** Freeze the checks currently present in the function into a
    {!Nascent_checks.Universe} (placement passes rebuild this after
    inserting). *)

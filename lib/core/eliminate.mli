(** Steps 4 and 5 of the optimizer (paper section 3): eliminate checks
    that are available (hence redundant), then fold compile-time
    checks — true ones disappear, false ones become [TRAP] instructions
    reported to the programmer. Every placement scheme ends with this
    pass. *)

type stats = {
  mutable redundant_deleted : int;
  mutable compile_time_deleted : int;
  mutable compile_time_traps : int;
}

val new_stats : unit -> stats

val redundancy_elimination : Analyses.env -> stats -> unit
(** Step 4: one forward scan per block seeded with block-entry
    availability; a check instruction whose check is covered by an
    available one is deleted, otherwise it generates. *)

val compile_time_checks : Nascent_ir.Func.t -> stats -> unit
(** Step 5; also folds constant conditional-check guards. *)

val run : Checkctx.t -> stats

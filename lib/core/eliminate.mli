(** Steps 4 and 5 of the optimizer (paper section 3): eliminate checks
    that are available (hence redundant), then fold compile-time
    checks — true ones disappear, false ones become [TRAP] instructions
    reported to the programmer. Every placement scheme ends with this
    pass. *)

type stats = {
  mutable redundant_deleted : int;
  mutable compile_time_deleted : int;
  mutable compile_time_traps : int;
}

val new_stats : unit -> stats

val redundancy_elimination : Analyses.env -> stats -> unit
(** Step 4: one forward scan per block seeded with block-entry
    availability; a check instruction whose check is covered by an
    available one is deleted, otherwise it generates. *)

val oracle_elimination : Nascent_ir.Func.t -> stats -> unit
(** Step 4b ([--oracle] only): delete every check (and every guarded
    check) provable from the {e ambient} facts of its program point —
    branch conditions, assignment postconditions, and affine loop
    invariants, with check instructions contributing nothing
    ({!Nascent_ir.Validate.Facts}). Check-independence keeps the
    deletions stable under each other, so the per-compile translation
    validator re-proves every one on the post-deletion function. *)

val compile_time_checks : Nascent_ir.Func.t -> stats -> unit
(** Step 5; also folds constant conditional-check guards. *)

val run : Checkctx.t -> stats

(** Check strengthening (Gupta; paper section 3.3) — the CS scheme.

    For each check C, compute the strongest anticipatable check C' of
    C's family at C's program point and replace C by C'. C' is
    guaranteed to be performed later anyway, so performing it here is
    safe, and it makes the later weaker checks redundant — the
    elimination pass then deletes them. This realizes the paper's
    Figure 1(b) -> 1(c) transformation. *)

type stats = { mutable strengthened : int }

val run : Checkctx.t -> stats

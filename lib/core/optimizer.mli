(** The five-step range check optimizer (paper section 3):

    + construct the check implication graph ({!Nascent_checks.Cig},
      built implicitly as families are interned);
    + compute safe insertion points ({!Analyses.anticipatability});
    + insert checks per the configured scheme ({!Strengthen},
      {!Lazy_motion}, {!Preheader});
    + compute availability and eliminate redundant checks
      ({!Eliminate});
    + evaluate compile-time checks
      ({!Eliminate.compile_time_checks}).

    Behaviour preservation (enforced by the test suite on the full
    benchmark matrix and on random programs): the optimized program
    traps iff the original does and no later, prints the same values,
    and — for the non-PRE schemes — never performs more dynamic
    checks.

    When [Config.verify] is set, {!Nascent_ir.Verify} additionally
    checks the IR between every step, and every step is always timed
    with a monotonic clock into per-pass {!pass_stat} records. Pass
    progress is traced on the {!log_src} log source at debug level.

    {b Fail-safe contract.} Every pass runs against a snapshot of the
    function IR. If the pass raises, the verifier rejects its output,
    or the per-pass fuel budget ({!pass_fuel_budget}) is exhausted, the
    snapshot is restored in place, an {!incident} is recorded in
    {!stats}, and compilation continues with the remaining passes — in
    the limit every pass rolls back and the function degrades to the
    always-safe NI form. {!optimize} and {!optimize_func} therefore no
    longer raise on a mid-pipeline verifier violation; only the
    {e input} verification (pass [Lowered], nothing to roll back to)
    still raises {!Nascent_ir.Verify.Invalid_ir}.

    [Config.fault] (the [--inject-fault] CLI flag) deliberately
    corrupts one pass's output via {!Nascent_ir.Mutate} to exercise
    this detect-and-rollback path; it forces verification on. *)

val log_src : Logs.src
(** The ["nascent.optimizer"] log source carrying per-pass traces. *)

type pass_stat = {
  pass : string;  (** "context", "strengthen", "hoist", "eliminate", ... *)
  pass_time_s : float;  (** monotonic; summed across functions by {!add} *)
  pass_checks_before : int;
  pass_checks_after : int;
}

(** Why a pass was rolled back. *)
type cause =
  | Pass_exception  (** the pass body raised *)
  | Verifier_rejected  (** {!Nascent_ir.Verify} refused the pass output *)
  | Budget_exhausted  (** the per-pass fuel budget ran out *)

val cause_name : cause -> string
(** ["exception"], ["verifier"] or ["fuel"]. *)

(** One rolled-back pass: the recovery path's audit record. *)
type incident = {
  inc_pass : string;
  inc_func : string;
  inc_cause : cause;
  inc_detail : string;  (** verifier message / exception text / fuel tag *)
  inc_elapsed_s : float;  (** time burned by the failed attempt *)
}

val pass_fuel_budget : int
(** Iteration budget per pass: dataflow fixpoint sweeps charge one
    ambient {!Nascent_support.Guard} tick each, so this bounds sweep
    counts deterministically, not wall-clock. *)

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  passes : pass_stat list;  (** pipeline order *)
  incidents : incident list;  (** rolled-back passes, pipeline order *)
  faults_injected : int;
      (** corruptions {!Nascent_ir.Mutate} actually applied or
          triggered; [0] in every fault-free compile *)
  elapsed_s : float;
      (** monotonic optimization time — Table 2/3's "Range" column *)
  validation : Nascent_ir.Validate.t option;
      (** the translation-validation certificate ({!Nascent_ir.Validate}):
          proven/failed coverage of every reference check site. [None]
          unless the compile ran with [Config.oracle]. *)
}

val empty_stats : Config.t -> stats

val validated : stats -> bool option
(** The certificate folded to its wire form: [None] when validation did
    not run (no [--oracle]), [Some ok] otherwise. *)

val add : stats -> stats -> stats
(** Sums counters and per-pass records (merged by pass name). *)

val optimize_func : Config.t -> Nascent_ir.Func.t -> stats
(** Optimize one function in place. A pass that faults is rolled back
    and reported in [stats.incidents]; the function is always left in a
    verified-safe state.
    @raise Nascent_ir.Verify.Invalid_ir when verification is on and the
    {e input} function is already invalid (pass [Lowered] — there is no
    earlier state to roll back to). *)

val optimize :
  ?config:Config.t -> Nascent_ir.Program.t -> Nascent_ir.Program.t * stats
(** Optimize a whole program. The input is not modified: optimization
    runs on a copy, which is returned with aggregated statistics.
    Check [stats.incidents] to learn whether any function compiled
    degraded. *)

val pp_pass_stat : pass_stat Fmt.t
val pp_incident : incident Fmt.t
val pp_stats : stats Fmt.t

val stats_to_json : stats -> string
(** Stable JSON rendering of {!stats} (including the per-pass
    breakdown) for the [--stats-json] CLI flag. *)

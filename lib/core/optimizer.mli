(** The five-step range check optimizer (paper section 3):

    + construct the check implication graph ({!Nascent_checks.Cig},
      built implicitly as families are interned);
    + compute safe insertion points ({!Analyses.anticipatability});
    + insert checks per the configured scheme ({!Strengthen},
      {!Lazy_motion}, {!Preheader});
    + compute availability and eliminate redundant checks
      ({!Eliminate});
    + evaluate compile-time checks
      ({!Eliminate.compile_time_checks}).

    Behaviour preservation (enforced by the test suite on the full
    benchmark matrix and on random programs): the optimized program
    traps iff the original does and no later, prints the same values,
    and — for the non-PRE schemes — never performs more dynamic
    checks. *)

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  elapsed_s : float;
      (** wall-clock optimization time — Table 2/3's "Range" column *)
}

val empty_stats : Config.t -> stats
val add : stats -> stats -> stats

val optimize_func : Config.t -> Nascent_ir.Func.t -> stats
(** Optimize one function in place. *)

val optimize :
  ?config:Config.t -> Nascent_ir.Program.t -> Nascent_ir.Program.t * stats
(** Optimize a whole program. The input is not modified: optimization
    runs on a copy, which is returned with aggregated statistics. *)

val pp_stats : stats Fmt.t

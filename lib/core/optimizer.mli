(** The five-step range check optimizer (paper section 3):

    + construct the check implication graph ({!Nascent_checks.Cig},
      built implicitly as families are interned);
    + compute safe insertion points ({!Analyses.anticipatability});
    + insert checks per the configured scheme ({!Strengthen},
      {!Lazy_motion}, {!Preheader});
    + compute availability and eliminate redundant checks
      ({!Eliminate});
    + evaluate compile-time checks
      ({!Eliminate.compile_time_checks}).

    Behaviour preservation (enforced by the test suite on the full
    benchmark matrix and on random programs): the optimized program
    traps iff the original does and no later, prints the same values,
    and — for the non-PRE schemes — never performs more dynamic
    checks.

    When [Config.verify] is set, {!Nascent_ir.Verify} additionally
    checks the IR between every step (raising
    {!Nascent_ir.Verify.Invalid_ir} on a violation), and every step is
    always timed with a monotonic clock into per-pass {!pass_stat}
    records. Pass progress is traced on the {!log_src} log source at
    debug level. *)

val log_src : Logs.src
(** The ["nascent.optimizer"] log source carrying per-pass traces. *)

type pass_stat = {
  pass : string;  (** "context", "strengthen", "hoist", "eliminate", ... *)
  pass_time_s : float;  (** monotonic; summed across functions by {!add} *)
  pass_checks_before : int;
  pass_checks_after : int;
}

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  passes : pass_stat list;  (** pipeline order *)
  elapsed_s : float;
      (** monotonic optimization time — Table 2/3's "Range" column *)
}

val empty_stats : Config.t -> stats

val add : stats -> stats -> stats
(** Sums counters and per-pass records (merged by pass name). *)

val optimize_func : Config.t -> Nascent_ir.Func.t -> stats
(** Optimize one function in place.
    @raise Nascent_ir.Verify.Invalid_ir when [Config.verify] is set and
    a pass breaks an IR invariant. *)

val optimize :
  ?config:Config.t -> Nascent_ir.Program.t -> Nascent_ir.Program.t * stats
(** Optimize a whole program. The input is not modified: optimization
    runs on a copy, which is returned with aggregated statistics. *)

val pp_pass_stat : pass_stat Fmt.t
val pp_stats : stats Fmt.t

val stats_to_json : stats -> string
(** Stable JSON rendering of {!stats} (including the per-pass
    breakdown) for the [--stats-json] CLI flag. *)

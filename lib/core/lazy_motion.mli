(** PRE placement of checks: the safe-earliest and latest-not-isolated
    transformations of Knoop, Rüthing & Steffen ("Lazy Code Motion"),
    adapted to range checks (paper sections 2.1 and 3.3).

    Differences from arithmetic PRE, per the paper:
    - a check defines no value, so the pass only {e inserts} checks at
      the chosen edges; the shared elimination pass afterwards deletes
      everything that became redundant;
    - generation is implication-aware;
    - safety = down-safety: inserting where a check at least as strong
      is anticipatable can only move the trap earlier, never invent
      one. Down-safe placement is {e not} always profitable — the
      paper's Figure 5.

    Critical edges are split before the edge systems are solved. *)

type placement = Safe_earliest | Latest_not_isolated

type stats = { mutable inserted : int }

val run : Checkctx.t -> placement:placement -> stats

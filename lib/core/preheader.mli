(** Preheader insertion (paper section 3.3): hoist checks out of
    loops — the LI, LLS and (extension) MCM schemes.

    A hoistable check becomes a conditional check in the loop
    preheader, guarded by "the loop executes at least once"; the
    covered body check is deleted directly (this is the implication
    from preheader conditional checks to loop-body checks that the
    paper's LLS' ablation preserves). Loops are processed inner to
    outer, so hoisted conditional checks can be hoisted again with
    conjoined guards — "to the outermost loop possible".

    Eligibility and safety conditions are documented in the
    implementation; the key ones are the paper's anticipatability-at-
    body-start rule for plain checks and, for loop-limit substitution,
    index integrity (nothing but the latch increment assigns the
    index — Fortran's do-variable rule, re-verified at the IR level). *)

type variant =
  | Invariant_only  (** LI: invariant checks only *)
  | Loop_limit  (** LLS: also index-linear checks, extreme substituted *)
  | Markstein
      (** MCM (Markstein/Cocke/Markstein 1982): only checks in
          articulation nodes of the loop body, with simple
          (single-atom, unit-coefficient) range expressions — dominance
          reasoning instead of data-flow anticipatability. *)

type stats = {
  mutable hoisted_invariant : int;
  mutable hoisted_linear : int;
  mutable guards_inserted : int;  (** conditional checks inserted *)
  mutable plain_inserted : int;  (** guard known true at compile time *)
}

val run : Checkctx.t -> variant:variant -> stats

(* The five-step range check optimizer (paper section 3):

   1. construct the check implication graph     — {!Nascent_checks.Cig},
      built implicitly as families are interned;
   2. compute safe insertion points             — {!Analyses.anticipatability};
   3. insert checks per the configured scheme   — {!Strengthen},
      {!Lazy_motion}, {!Preheader};
   4. compute availability, eliminate redundant — {!Eliminate};
   5. evaluate compile-time checks              — {!Eliminate.compile_time_checks}.

   The input program is not modified: optimization runs on a copy. *)

module Ir = Nascent_ir

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  elapsed_s : float; (* wall-clock optimization time, Table 2/3's Range column *)
}

let empty_stats config =
  {
    config;
    strengthened = 0;
    pre_inserted = 0;
    hoisted_invariant = 0;
    hoisted_linear = 0;
    guards_inserted = 0;
    plain_inserted = 0;
    redundant_deleted = 0;
    compile_time_deleted = 0;
    compile_time_traps = 0;
    static_checks_before = 0;
    static_checks_after = 0;
    elapsed_s = 0.0;
  }

let add a b =
  {
    a with
    strengthened = a.strengthened + b.strengthened;
    pre_inserted = a.pre_inserted + b.pre_inserted;
    hoisted_invariant = a.hoisted_invariant + b.hoisted_invariant;
    hoisted_linear = a.hoisted_linear + b.hoisted_linear;
    guards_inserted = a.guards_inserted + b.guards_inserted;
    plain_inserted = a.plain_inserted + b.plain_inserted;
    redundant_deleted = a.redundant_deleted + b.redundant_deleted;
    compile_time_deleted = a.compile_time_deleted + b.compile_time_deleted;
    compile_time_traps = a.compile_time_traps + b.compile_time_traps;
    static_checks_before = a.static_checks_before + b.static_checks_before;
    static_checks_after = a.static_checks_after + b.static_checks_after;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
  }

(* Optimize one function in place. *)
let optimize_func (config : Config.t) (f : Ir.Func.t) : stats =
  let t0 = Unix.gettimeofday () in
  let _, checks_before = Ir.Func.static_counts f in
  (* INX: rewrite checks into induction-expression form first, so every
     later pass sees induction checks (section 2.3). *)
  if config.Config.kind = Config.INX then ignore (Induction_rewrite.run f);
  let fresh_ctx () = Checkctx.create_prx ~mode:config.Config.impl f in
  let st = ref (empty_stats config) in
  (match config.Config.scheme with
  | Config.NI -> ()
  | Config.CS ->
      let s = Strengthen.run (fresh_ctx ()) in
      st := { !st with strengthened = s.Strengthen.strengthened }
  | Config.SE ->
      let s = Lazy_motion.run (fresh_ctx ()) ~placement:Lazy_motion.Safe_earliest in
      st := { !st with pre_inserted = s.Lazy_motion.inserted }
  | Config.LNI ->
      let s = Lazy_motion.run (fresh_ctx ()) ~placement:Lazy_motion.Latest_not_isolated in
      st := { !st with pre_inserted = s.Lazy_motion.inserted }
  | Config.LI ->
      let s = Preheader.run (fresh_ctx ()) ~variant:Preheader.Invariant_only in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.LLS ->
      let s = Preheader.run (fresh_ctx ()) ~variant:Preheader.Loop_limit in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          hoisted_linear = s.Preheader.hoisted_linear;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.MCM ->
      let s = Preheader.run (fresh_ctx ()) ~variant:Preheader.Markstein in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          hoisted_linear = s.Preheader.hoisted_linear;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.ALL ->
      let s1 = Preheader.run (fresh_ctx ()) ~variant:Preheader.Loop_limit in
      let s2 = Lazy_motion.run (fresh_ctx ()) ~placement:Lazy_motion.Safe_earliest in
      st :=
        {
          !st with
          hoisted_invariant = s1.Preheader.hoisted_invariant;
          hoisted_linear = s1.Preheader.hoisted_linear;
          guards_inserted = s1.Preheader.guards_inserted;
          plain_inserted = s1.Preheader.plain_inserted;
          pre_inserted = s2.Lazy_motion.inserted;
        });
  let e = Eliminate.run (fresh_ctx ()) in
  let _, checks_after = Ir.Func.static_counts f in
  {
    !st with
    redundant_deleted = e.Eliminate.redundant_deleted;
    compile_time_deleted = e.Eliminate.compile_time_deleted;
    compile_time_traps = e.Eliminate.compile_time_traps;
    static_checks_before = checks_before;
    static_checks_after = checks_after;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* Optimize a whole program, returning the optimized copy and the
   aggregated statistics. *)
let optimize ?(config = Config.default) (p : Ir.Program.t) : Ir.Program.t * stats =
  let q = Ir.Transform.copy_program p in
  let st = ref (empty_stats config) in
  List.iter (fun f -> st := add !st (optimize_func config f)) (Ir.Program.funcs_sorted q);
  (q, !st)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>config: %a@,\
     static checks: %d -> %d@,\
     strengthened: %d, PRE-inserted: %d@,\
     hoisted: %d invariant + %d linear (%d cond + %d plain inserted)@,\
     deleted: %d redundant + %d compile-time (%d traps)@,\
     time: %.4fs@]"
    Config.pp s.config s.static_checks_before s.static_checks_after s.strengthened
    s.pre_inserted s.hoisted_invariant s.hoisted_linear s.guards_inserted
    s.plain_inserted s.redundant_deleted s.compile_time_deleted s.compile_time_traps
    s.elapsed_s

(* The five-step range check optimizer (paper section 3):

   1. construct the check implication graph     — {!Nascent_checks.Cig},
      built implicitly as families are interned;
   2. compute safe insertion points             — {!Analyses.anticipatability};
   3. insert checks per the configured scheme   — {!Strengthen},
      {!Lazy_motion}, {!Preheader};
   4. compute availability, eliminate redundant — {!Eliminate};
   5. evaluate compile-time checks              — {!Eliminate.compile_time_checks}.

   The input program is not modified: optimization runs on a copy.

   Observability: every step is timed with a monotonic clock and
   recorded as a {!pass_stat}; with [Config.verify] set, a snapshot is
   taken before each step and {!Nascent_ir.Verify} checks the result
   against the step's differential rules. Per-pass progress is traced
   on the "nascent.optimizer" log source at debug level. *)

module Ir = Nascent_ir
module Mclock = Nascent_support.Mclock

let log_src =
  Logs.Src.create "nascent.optimizer" ~doc:"Range-check optimizer pass pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type pass_stat = {
  pass : string;
  pass_time_s : float;
  pass_checks_before : int;
  pass_checks_after : int;
}

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  passes : pass_stat list; (* pipeline order *)
  elapsed_s : float; (* monotonic optimization time, Table 2/3's Range column *)
}

let empty_stats config =
  {
    config;
    strengthened = 0;
    pre_inserted = 0;
    hoisted_invariant = 0;
    hoisted_linear = 0;
    guards_inserted = 0;
    plain_inserted = 0;
    redundant_deleted = 0;
    compile_time_deleted = 0;
    compile_time_traps = 0;
    static_checks_before = 0;
    static_checks_after = 0;
    passes = [];
    elapsed_s = 0.0;
  }

(* Merge per-pass records by pass name, keeping [a]'s pipeline order
   and appending passes only [b] ran. *)
let merge_passes (a : pass_stat list) (b : pass_stat list) : pass_stat list =
  List.fold_left
    (fun acc p ->
      if List.exists (fun q -> q.pass = p.pass) acc then
        List.map
          (fun q ->
            if q.pass = p.pass then
              {
                q with
                pass_time_s = q.pass_time_s +. p.pass_time_s;
                pass_checks_before = q.pass_checks_before + p.pass_checks_before;
                pass_checks_after = q.pass_checks_after + p.pass_checks_after;
              }
            else q)
          acc
      else acc @ [ p ])
    a b

let add a b =
  {
    a with
    strengthened = a.strengthened + b.strengthened;
    pre_inserted = a.pre_inserted + b.pre_inserted;
    hoisted_invariant = a.hoisted_invariant + b.hoisted_invariant;
    hoisted_linear = a.hoisted_linear + b.hoisted_linear;
    guards_inserted = a.guards_inserted + b.guards_inserted;
    plain_inserted = a.plain_inserted + b.plain_inserted;
    redundant_deleted = a.redundant_deleted + b.redundant_deleted;
    compile_time_deleted = a.compile_time_deleted + b.compile_time_deleted;
    compile_time_traps = a.compile_time_traps + b.compile_time_traps;
    static_checks_before = a.static_checks_before + b.static_checks_before;
    static_checks_after = a.static_checks_after + b.static_checks_after;
    passes = merge_passes a.passes b.passes;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
  }

(* Optimize one function in place. *)
let optimize_func (config : Config.t) (f : Ir.Func.t) : stats =
  let t0 = Mclock.counter () in
  let verify = config.Config.verify in
  let _, checks_before = Ir.Func.static_counts f in
  if verify then Ir.Verify.func_exn ~pass:Ir.Verify.Lowered f;
  let passes = ref [] in
  (* Time [body], record its pass stats, and — when verifying — check
     the function against [vpass]'s differential rules relative to a
     snapshot taken just before. [vpass = None] marks steps that do not
     mutate the IR (context construction), which are timed but not
     re-verified. *)
  let run_pass name ?vpass body =
    let before =
      match vpass with
      | Some _ when verify -> Some (Ir.Transform.copy_func f)
      | _ -> None
    in
    let _, cb = Ir.Func.static_counts f in
    let t = Mclock.counter () in
    let result = body () in
    let dt = Mclock.elapsed_s t in
    let _, ca = Ir.Func.static_counts f in
    (match (vpass, before) with
    | Some pass, Some before -> Ir.Verify.func_exn ~pass ~before f
    | _ -> ());
    passes :=
      { pass = name; pass_time_s = dt; pass_checks_before = cb; pass_checks_after = ca }
      :: !passes;
    Log.debug (fun m ->
        m "%s: %-12s checks %3d -> %3d  %8.3f ms%s" f.Ir.Func.fname name cb ca
          (1000.0 *. dt)
          (if verify && vpass <> None then "  [verified]" else ""));
    result
  in
  (* INX: rewrite checks into induction-expression form first, so every
     later pass sees induction checks (section 2.3). *)
  if config.Config.kind = Config.INX then
    ignore
      (run_pass "inx-rewrite" ~vpass:Ir.Verify.Rewrite (fun () ->
           Induction_rewrite.run f));
  (* The context — canonical site checks, kill oracles, loop structure,
     CIG — is built once and shared by every pass; [Checkctx.refresh]
     revalidates the loop structure after CFG-shaping passes instead of
     rebuilding (and re-canonicalizing) from scratch. *)
  let ctx = run_pass "context" (fun () -> Checkctx.create_prx ~mode:config.Config.impl f) in
  let st = ref (empty_stats config) in
  (match config.Config.scheme with
  | Config.NI -> ()
  | Config.CS ->
      let s = run_pass "strengthen" ~vpass:Ir.Verify.Strengthen (fun () -> Strengthen.run ctx) in
      st := { !st with strengthened = s.Strengthen.strengthened }
  | Config.SE ->
      let s =
        run_pass "pre-insert" ~vpass:Ir.Verify.Code_motion (fun () ->
            Lazy_motion.run ctx ~placement:Lazy_motion.Safe_earliest)
      in
      st := { !st with pre_inserted = s.Lazy_motion.inserted }
  | Config.LNI ->
      let s =
        run_pass "pre-insert" ~vpass:Ir.Verify.Code_motion (fun () ->
            Lazy_motion.run ctx ~placement:Lazy_motion.Latest_not_isolated)
      in
      st := { !st with pre_inserted = s.Lazy_motion.inserted }
  | Config.LI ->
      let s =
        run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () ->
            Preheader.run ctx ~variant:Preheader.Invariant_only)
      in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.LLS ->
      let s =
        run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () ->
            Preheader.run ctx ~variant:Preheader.Loop_limit)
      in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          hoisted_linear = s.Preheader.hoisted_linear;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.MCM ->
      let s =
        run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () ->
            Preheader.run ctx ~variant:Preheader.Markstein)
      in
      st :=
        {
          !st with
          hoisted_invariant = s.Preheader.hoisted_invariant;
          hoisted_linear = s.Preheader.hoisted_linear;
          guards_inserted = s.Preheader.guards_inserted;
          plain_inserted = s.Preheader.plain_inserted;
        }
  | Config.ALL ->
      let s1 =
        run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () ->
            Preheader.run ctx ~variant:Preheader.Loop_limit)
      in
      let s2 =
        run_pass "pre-insert" ~vpass:Ir.Verify.Code_motion (fun () ->
            Checkctx.refresh ctx;
            Lazy_motion.run ctx ~placement:Lazy_motion.Safe_earliest)
      in
      st :=
        {
          !st with
          hoisted_invariant = s1.Preheader.hoisted_invariant;
          hoisted_linear = s1.Preheader.hoisted_linear;
          guards_inserted = s1.Preheader.guards_inserted;
          plain_inserted = s1.Preheader.plain_inserted;
          pre_inserted = s2.Lazy_motion.inserted;
        });
  let e = Eliminate.new_stats () in
  run_pass "eliminate" ~vpass:Ir.Verify.Elimination (fun () ->
      Checkctx.refresh ctx;
      Eliminate.redundancy_elimination (Analyses.make_env ctx) e);
  run_pass "fold" ~vpass:Ir.Verify.Fold (fun () -> Eliminate.compile_time_checks f e);
  let _, checks_after = Ir.Func.static_counts f in
  let result =
    {
      !st with
      redundant_deleted = e.Eliminate.redundant_deleted;
      compile_time_deleted = e.Eliminate.compile_time_deleted;
      compile_time_traps = e.Eliminate.compile_time_traps;
      static_checks_before = checks_before;
      static_checks_after = checks_after;
      passes = List.rev !passes;
      elapsed_s = Mclock.elapsed_s t0;
    }
  in
  Log.info (fun m ->
      m "%s: %a checks %d -> %d in %.3f ms" f.Ir.Func.fname Config.pp config
        checks_before checks_after (1000.0 *. result.elapsed_s));
  result

(* Optimize a whole program, returning the optimized copy and the
   aggregated statistics. *)
let optimize ?(config = Config.default) (p : Ir.Program.t) : Ir.Program.t * stats =
  let q = Ir.Transform.copy_program p in
  let st = ref (empty_stats config) in
  List.iter (fun f -> st := add !st (optimize_func config f)) (Ir.Program.funcs_sorted q);
  (q, !st)

let pp_pass_stat ppf p =
  Fmt.pf ppf "%-12s checks %3d -> %3d  %8.3f ms" p.pass p.pass_checks_before
    p.pass_checks_after (1000.0 *. p.pass_time_s)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>config: %a@,\
     static checks: %d -> %d@,\
     strengthened: %d, PRE-inserted: %d@,\
     hoisted: %d invariant + %d linear (%d cond + %d plain inserted)@,\
     deleted: %d redundant + %d compile-time (%d traps)@,\
     %a@,\
     time: %.4fs@]"
    Config.pp s.config s.static_checks_before s.static_checks_after s.strengthened
    s.pre_inserted s.hoisted_invariant s.hoisted_linear s.guards_inserted
    s.plain_inserted s.redundant_deleted s.compile_time_deleted s.compile_time_traps
    (Fmt.list pp_pass_stat) s.passes s.elapsed_s

(* Hand-rolled JSON (no JSON library in the tree): every emitted value
   is a number or a fixed-alphabet name, so quoting is trivial. *)
let stats_to_json (s : stats) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.bprintf buf fmt in
  pf "{\n";
  pf "  \"config\": {\"scheme\": %S, \"kind\": %S, \"impl\": %S, \"verify\": %b},\n"
    (Config.scheme_name s.config.Config.scheme)
    (Config.kind_name s.config.Config.kind)
    (Nascent_checks.Universe.mode_name s.config.Config.impl)
    s.config.Config.verify;
  pf "  \"static_checks_before\": %d,\n" s.static_checks_before;
  pf "  \"static_checks_after\": %d,\n" s.static_checks_after;
  pf "  \"strengthened\": %d,\n" s.strengthened;
  pf "  \"pre_inserted\": %d,\n" s.pre_inserted;
  pf "  \"hoisted_invariant\": %d,\n" s.hoisted_invariant;
  pf "  \"hoisted_linear\": %d,\n" s.hoisted_linear;
  pf "  \"guards_inserted\": %d,\n" s.guards_inserted;
  pf "  \"plain_inserted\": %d,\n" s.plain_inserted;
  pf "  \"redundant_deleted\": %d,\n" s.redundant_deleted;
  pf "  \"compile_time_deleted\": %d,\n" s.compile_time_deleted;
  pf "  \"compile_time_traps\": %d,\n" s.compile_time_traps;
  pf "  \"elapsed_s\": %.9f,\n" s.elapsed_s;
  pf "  \"passes\": [";
  List.iteri
    (fun i p ->
      if i > 0 then pf ",";
      pf
        "\n    {\"pass\": %S, \"time_s\": %.9f, \"checks_before\": %d, \
         \"checks_after\": %d}"
        p.pass p.pass_time_s p.pass_checks_before p.pass_checks_after)
    s.passes;
  pf "\n  ]\n}\n";
  Buffer.contents buf

(* The five-step range check optimizer (paper section 3):

   1. construct the check implication graph     — {!Nascent_checks.Cig},
      built implicitly as families are interned;
   2. compute safe insertion points             — {!Analyses.anticipatability};
   3. insert checks per the configured scheme   — {!Strengthen},
      {!Lazy_motion}, {!Preheader};
   4. compute availability, eliminate redundant — {!Eliminate};
   5. evaluate compile-time checks              — {!Eliminate.compile_time_checks}.

   The input program is not modified: optimization runs on a copy.

   Observability: every step is timed with a monotonic clock and
   recorded as a {!pass_stat}; with [Config.verify] set, a snapshot is
   taken before each step and {!Nascent_ir.Verify} checks the result
   against the step's differential rules. Per-pass progress is traced
   on the "nascent.optimizer" log source at debug level. *)

module Ir = Nascent_ir
module Mclock = Nascent_support.Mclock
module Guard = Nascent_support.Guard

let log_src =
  Logs.Src.create "nascent.optimizer" ~doc:"Range-check optimizer pass pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type pass_stat = {
  pass : string;
  pass_time_s : float;
  pass_checks_before : int;
  pass_checks_after : int;
}

(* Why a pass was rolled back. *)
type cause = Pass_exception | Verifier_rejected | Budget_exhausted

let cause_name = function
  | Pass_exception -> "exception"
  | Verifier_rejected -> "verifier"
  | Budget_exhausted -> "fuel"

(* One rolled-back pass: the recovery path's audit record. *)
type incident = {
  inc_pass : string;
  inc_func : string;
  inc_cause : cause;
  inc_detail : string;
  inc_elapsed_s : float;
}

(* Per-pass fuel: every dataflow fixpoint sweep charges one ambient
   tick, so this bounds iteration counts, not wall-clock. Benchmarks
   converge in tens of sweeps per solve; a pass that burns through six
   figures of sweeps is hung, not slow. *)
let pass_fuel_budget = 200_000

type stats = {
  config : Config.t;
  strengthened : int;
  pre_inserted : int;
  hoisted_invariant : int;
  hoisted_linear : int;
  guards_inserted : int;
  plain_inserted : int;
  redundant_deleted : int;
  compile_time_deleted : int;
  compile_time_traps : int;
  static_checks_before : int;
  static_checks_after : int;
  passes : pass_stat list; (* pipeline order *)
  incidents : incident list; (* rolled-back passes, pipeline order *)
  faults_injected : int; (* corruptions Mutate actually applied/triggered *)
  elapsed_s : float; (* monotonic optimization time, Table 2/3's Range column *)
  validation : Ir.Validate.t option;
      (* the translation-validation certificate; [None] unless the
         compile ran with [Config.oracle] *)
}

let empty_stats config =
  {
    config;
    strengthened = 0;
    pre_inserted = 0;
    hoisted_invariant = 0;
    hoisted_linear = 0;
    guards_inserted = 0;
    plain_inserted = 0;
    redundant_deleted = 0;
    compile_time_deleted = 0;
    compile_time_traps = 0;
    static_checks_before = 0;
    static_checks_after = 0;
    passes = [];
    incidents = [];
    faults_injected = 0;
    elapsed_s = 0.0;
    validation = None;
  }

(* [validated] folds the certificate to the wire-friendly triple:
   [None] = validation did not run, [Some ok] otherwise. *)
let validated (s : stats) : bool option =
  Option.map Ir.Validate.validated s.validation

(* Merge per-pass records by pass name, keeping [a]'s pipeline order
   and appending passes only [b] ran. *)
let merge_passes (a : pass_stat list) (b : pass_stat list) : pass_stat list =
  List.fold_left
    (fun acc p ->
      if List.exists (fun q -> q.pass = p.pass) acc then
        List.map
          (fun q ->
            if q.pass = p.pass then
              {
                q with
                pass_time_s = q.pass_time_s +. p.pass_time_s;
                pass_checks_before = q.pass_checks_before + p.pass_checks_before;
                pass_checks_after = q.pass_checks_after + p.pass_checks_after;
              }
            else q)
          acc
      else acc @ [ p ])
    a b

let add a b =
  {
    a with
    strengthened = a.strengthened + b.strengthened;
    pre_inserted = a.pre_inserted + b.pre_inserted;
    hoisted_invariant = a.hoisted_invariant + b.hoisted_invariant;
    hoisted_linear = a.hoisted_linear + b.hoisted_linear;
    guards_inserted = a.guards_inserted + b.guards_inserted;
    plain_inserted = a.plain_inserted + b.plain_inserted;
    redundant_deleted = a.redundant_deleted + b.redundant_deleted;
    compile_time_deleted = a.compile_time_deleted + b.compile_time_deleted;
    compile_time_traps = a.compile_time_traps + b.compile_time_traps;
    static_checks_before = a.static_checks_before + b.static_checks_before;
    static_checks_after = a.static_checks_after + b.static_checks_after;
    passes = merge_passes a.passes b.passes;
    incidents = a.incidents @ b.incidents;
    faults_injected = a.faults_injected + b.faults_injected;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
    validation =
      (match (a.validation, b.validation) with
      | None, v | v, None -> v
      | Some va, Some vb -> Some (Ir.Validate.merge va vb));
  }

(* Optimize one function in place.

   Fail-safe contract: every pass runs against a snapshot of the
   function. If the pass raises, the post-pass verifier rejects its
   output, or the per-pass fuel budget runs out, the snapshot is
   restored in place ({!Ir.Transform.restore_func}), an {!incident} is
   recorded, and the pipeline continues with the remaining passes — in
   the limit (every pass rolled back) the output degrades to the
   always-safe NI configuration instead of the compile failing. *)
let optimize_func (config : Config.t) (f : Ir.Func.t) : stats =
  let t0 = Mclock.counter () in
  let fault = config.Config.fault in
  (* Fault injection is only meaningful under the detection oracle. *)
  let verify = config.Config.verify || fault <> None in
  let _, checks_before = Ir.Func.static_counts f in
  (* The input is verified outside the guard: a broken lowered function
     has no earlier safe state to roll back to, so it still raises. *)
  if verify then Ir.Verify.func_exn ~pass:Ir.Verify.Lowered f;
  let passes = ref [] in
  let incidents = ref [] in
  let faults_injected = ref 0 in
  (* Time [body] under a fuel budget, record its pass stats, and — when
     verifying — check the function against [vpass]'s differential
     rules relative to the snapshot. [vpass = None] marks steps that do
     not mutate the IR (context construction), which are timed and
     guarded but not re-verified. Any fault (exception, verifier
     rejection, fuel exhaustion) rolls the snapshot back and records an
     incident instead of propagating. *)
  let run_pass : type a. string -> ?vpass:Ir.Verify.pass -> (unit -> a) -> (a, unit) result
      =
   fun name ?vpass body ->
    let before = Ir.Transform.copy_func f in
    let _, cb = Ir.Func.static_counts f in
    let t = Mclock.counter () in
    let outcome =
      try
        let r =
          Guard.with_fuel
            (Guard.fuel ~what:(f.Ir.Func.fname ^ ":" ^ name) ~budget:pass_fuel_budget)
            (fun () ->
              let r = body () in
              (* Deliberate corruption of this pass's output, if the
                 configured fault targets it. *)
              (match fault with
              | Some s when Ir.Mutate.target_pass s.Ir.Mutate.cls = name ->
                  if Ir.Mutate.hangs s.Ir.Mutate.cls then begin
                    incr faults_injected;
                    Guard.exhaust_ambient ()
                  end
                  else if Ir.Mutate.apply ~seed:s.Ir.Mutate.seed s.Ir.Mutate.cls f then
                    incr faults_injected
              | _ -> ());
              r)
        in
        (match vpass with
        | Some pass when verify -> Ir.Verify.func_exn ~pass ~before f
        | _ -> ());
        Ok r
      with
      | Ir.Verify.Invalid_ir msg -> Error (Verifier_rejected, msg)
      | Guard.Fuel_exhausted what ->
          Error (Budget_exhausted, "fuel budget exhausted: " ^ what)
      | Stack_overflow -> Error (Pass_exception, "stack overflow")
      | e -> Error (Pass_exception, Printexc.to_string e)
    in
    let dt = Mclock.elapsed_s t in
    match outcome with
    | Ok r ->
        let _, ca = Ir.Func.static_counts f in
        passes :=
          { pass = name; pass_time_s = dt; pass_checks_before = cb; pass_checks_after = ca }
          :: !passes;
        Log.debug (fun m ->
            m "%s: %-12s checks %3d -> %3d  %8.3f ms%s" f.Ir.Func.fname name cb ca
              (1000.0 *. dt)
              (if verify && vpass <> None then "  [verified]" else ""));
        Ok r
    | Error (cause, detail) ->
        Ir.Transform.restore_func ~from_:before f;
        incidents :=
          {
            inc_pass = name;
            inc_func = f.Ir.Func.fname;
            inc_cause = cause;
            inc_detail = detail;
            inc_elapsed_s = dt;
          }
          :: !incidents;
        (* The rolled-back attempt still consumed time; account for it
           with an unchanged check count (the rollback's net effect). *)
        passes :=
          { pass = name; pass_time_s = dt; pass_checks_before = cb; pass_checks_after = cb }
          :: !passes;
        Log.warn (fun m ->
            m "%s: %-12s ROLLED BACK (%s): %s" f.Ir.Func.fname name (cause_name cause)
              detail);
        Error ()
  in
  let st = ref (empty_stats config) in
  (* INX: rewrite checks into induction-expression form first, so every
     later pass sees induction checks (section 2.3). A rolled-back
     rewrite leaves PRX-form checks — weaker, still sound. *)
  if config.Config.kind = Config.INX then
    ignore
      (run_pass "inx-rewrite" ~vpass:Ir.Verify.Rewrite (fun () ->
           Induction_rewrite.run f));
  (* Translation validation compares the final function against the
     state entering the optimization pipeline proper (the INX rewrite
     above is certified by its own differential rules); snapshot it
     only when the certificate was asked for. *)
  let reference =
    if config.Config.oracle then Some (Ir.Transform.copy_func f) else None
  in
  (* The context — canonical site checks, kill oracles, loop structure,
     CIG — is built once and shared by every pass; [Checkctx.refresh]
     revalidates the loop structure after CFG-shaping passes instead of
     rebuilding (and re-canonicalizing) from scratch. Without a context
     no pass can run: a context fault degrades this function all the
     way to its naive-checked form (the NI floor). *)
  (match
     run_pass "context" (fun () ->
         Checkctx.create_prx ~mode:config.Config.impl ~oracle:config.Config.oracle f)
   with
  | Error () -> ()
  | Ok ctx ->
      (match config.Config.scheme with
      | Config.NI -> ()
      | Config.CS -> (
          match
            run_pass "strengthen" ~vpass:Ir.Verify.Strengthen (fun () -> Strengthen.run ctx)
          with
          | Ok s -> st := { !st with strengthened = s.Strengthen.strengthened }
          | Error () -> ())
      | Config.SE | Config.LNI -> (
          let placement =
            if config.Config.scheme = Config.SE then Lazy_motion.Safe_earliest
            else Lazy_motion.Latest_not_isolated
          in
          match
            run_pass "pre-insert" ~vpass:Ir.Verify.Code_motion (fun () ->
                Lazy_motion.run ctx ~placement)
          with
          | Ok s -> st := { !st with pre_inserted = s.Lazy_motion.inserted }
          | Error () -> ())
      | Config.LI | Config.LLS | Config.MCM -> (
          let variant =
            match config.Config.scheme with
            | Config.LI -> Preheader.Invariant_only
            | Config.MCM -> Preheader.Markstein
            | _ -> Preheader.Loop_limit
          in
          match
            run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () -> Preheader.run ctx ~variant)
          with
          | Ok s ->
              st :=
                {
                  !st with
                  hoisted_invariant = s.Preheader.hoisted_invariant;
                  hoisted_linear =
                    (if config.Config.scheme = Config.LI then 0
                     else s.Preheader.hoisted_linear);
                  guards_inserted = s.Preheader.guards_inserted;
                  plain_inserted = s.Preheader.plain_inserted;
                }
          | Error () -> ())
      | Config.ALL ->
          (match
             run_pass "hoist" ~vpass:Ir.Verify.Hoist (fun () ->
                 Preheader.run ctx ~variant:Preheader.Loop_limit)
           with
          | Ok s1 ->
              st :=
                {
                  !st with
                  hoisted_invariant = s1.Preheader.hoisted_invariant;
                  hoisted_linear = s1.Preheader.hoisted_linear;
                  guards_inserted = s1.Preheader.guards_inserted;
                  plain_inserted = s1.Preheader.plain_inserted;
                }
          | Error () -> ());
          (match
             run_pass "pre-insert" ~vpass:Ir.Verify.Code_motion (fun () ->
                 Checkctx.refresh ctx;
                 Lazy_motion.run ctx ~placement:Lazy_motion.Safe_earliest)
           with
          | Ok s2 -> st := { !st with pre_inserted = s2.Lazy_motion.inserted }
          | Error () -> ()));
      (* A rolled-back eliminate/fold leaves counters [e] accumulated
         mid-flight; read them only from passes that committed. *)
      let e = Eliminate.new_stats () in
      let elim =
        run_pass "eliminate" ~vpass:Ir.Verify.Elimination (fun () ->
            Checkctx.refresh ctx;
            Eliminate.redundancy_elimination (Analyses.make_env ctx) e)
      in
      (* The decision-procedure sweep is its own pass so a rollback
         (fuel, verifier) costs only the oracle's extra deletions, not
         the syntactic elimination above; its counters are likewise
         separate so a rolled-back sweep contributes zero. *)
      let eo = Eliminate.new_stats () in
      let oelim =
        if config.Config.oracle then
          run_pass "oracle-elim" ~vpass:Ir.Verify.Elimination (fun () ->
              Eliminate.oracle_elimination f eo)
        else Ok ()
      in
      let fold =
        run_pass "fold" ~vpass:Ir.Verify.Fold (fun () -> Eliminate.compile_time_checks f e)
      in
      st :=
        {
          !st with
          redundant_deleted =
            (match elim with Ok () -> e.Eliminate.redundant_deleted | Error () -> 0)
            + (match oelim with Ok () -> eo.Eliminate.redundant_deleted | Error () -> 0);
          compile_time_deleted =
            (match fold with Ok () -> e.Eliminate.compile_time_deleted | Error () -> 0);
          compile_time_traps =
            (match fold with Ok () -> e.Eliminate.compile_time_traps | Error () -> 0);
        });
  let _, checks_after = Ir.Func.static_counts f in
  (* The certificate: prove every reference check site is still covered
     by the residual checks plus dominating guards. Runs outside the
     pass guard — it never mutates the IR and carries its own fuel
     budget — but is timed like a pass so the [--oracle] compile-time
     columns account for it. *)
  let validation =
    match reference with
    | None -> None
    | Some orig ->
        let t = Mclock.counter () in
        let v = Ir.Validate.func_guarded ~original:orig ~optimized:f in
        let dt = Mclock.elapsed_s t in
        passes :=
          {
            pass = "validate";
            pass_time_s = dt;
            pass_checks_before = checks_after;
            pass_checks_after = checks_after;
          }
          :: !passes;
        if not (Ir.Validate.validated v) then
          Log.warn (fun m ->
              m "%s: translation validation FAILED: %a" f.Ir.Func.fname
                Ir.Validate.pp v);
        Some v
  in
  let result =
    {
      !st with
      static_checks_before = checks_before;
      static_checks_after = checks_after;
      passes = List.rev !passes;
      incidents = List.rev !incidents;
      faults_injected = !faults_injected;
      elapsed_s = Mclock.elapsed_s t0;
      validation;
    }
  in
  Log.info (fun m ->
      m "%s: %a checks %d -> %d in %.3f ms%s" f.Ir.Func.fname Config.pp config
        checks_before checks_after (1000.0 *. result.elapsed_s)
        (match result.incidents with
        | [] -> ""
        | is -> Fmt.str " (%d pass(es) rolled back)" (List.length is)));
  result

(* Optimize a whole program, returning the optimized copy and the
   aggregated statistics. *)
let optimize ?(config = Config.default) (p : Ir.Program.t) : Ir.Program.t * stats =
  let q = Ir.Transform.copy_program p in
  let st = ref (empty_stats config) in
  List.iter (fun f -> st := add !st (optimize_func config f)) (Ir.Program.funcs_sorted q);
  (q, !st)

let pp_pass_stat ppf p =
  Fmt.pf ppf "%-12s checks %3d -> %3d  %8.3f ms" p.pass p.pass_checks_before
    p.pass_checks_after (1000.0 *. p.pass_time_s)

let pp_incident ppf (i : incident) =
  Fmt.pf ppf "%s: %-12s rolled back (%s): %s  %8.3f ms" i.inc_func i.inc_pass
    (cause_name i.inc_cause) i.inc_detail
    (1000.0 *. i.inc_elapsed_s)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>config: %a@,\
     static checks: %d -> %d@,\
     strengthened: %d, PRE-inserted: %d@,\
     hoisted: %d invariant + %d linear (%d cond + %d plain inserted)@,\
     deleted: %d redundant + %d compile-time (%d traps)@,\
     %a@,\
     %atime: %.4fs@]"
    Config.pp s.config s.static_checks_before s.static_checks_after s.strengthened
    s.pre_inserted s.hoisted_invariant s.hoisted_linear s.guards_inserted
    s.plain_inserted s.redundant_deleted s.compile_time_deleted s.compile_time_traps
    (Fmt.list pp_pass_stat) s.passes
    (fun ppf -> function
      | [] -> ()
      | is ->
          Fmt.pf ppf "incidents: %d (%d fault(s) injected)@,%a@,"
            (List.length is) s.faults_injected (Fmt.list pp_incident) is)
    s.incidents s.elapsed_s;
  match s.validation with
  | None -> ()
  | Some v -> Fmt.pf ppf "@,%a" Ir.Validate.pp v

(* Hand-rolled JSON (no JSON library in the tree): every emitted value
   is a number or a fixed-alphabet name, except incident details —
   verifier messages and exception texts — which [%S] escapes. OCaml's
   [%S] and JSON string syntax agree on every character these can
   contain (printable ASCII, backslash, quote). *)
let stats_to_json (s : stats) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.bprintf buf fmt in
  pf "{\n";
  pf
    "  \"config\": {\"scheme\": %S, \"kind\": %S, \"impl\": %S, \"verify\": %b, \
     \"fault\": %S, \"oracle\": %b},\n"
    (Config.scheme_name s.config.Config.scheme)
    (Config.kind_name s.config.Config.kind)
    (Nascent_checks.Universe.mode_name s.config.Config.impl)
    s.config.Config.verify
    (Config.fault_name s.config.Config.fault)
    s.config.Config.oracle;
  pf "  \"static_checks_before\": %d,\n" s.static_checks_before;
  pf "  \"static_checks_after\": %d,\n" s.static_checks_after;
  pf "  \"strengthened\": %d,\n" s.strengthened;
  pf "  \"pre_inserted\": %d,\n" s.pre_inserted;
  pf "  \"hoisted_invariant\": %d,\n" s.hoisted_invariant;
  pf "  \"hoisted_linear\": %d,\n" s.hoisted_linear;
  pf "  \"guards_inserted\": %d,\n" s.guards_inserted;
  pf "  \"plain_inserted\": %d,\n" s.plain_inserted;
  pf "  \"redundant_deleted\": %d,\n" s.redundant_deleted;
  pf "  \"compile_time_deleted\": %d,\n" s.compile_time_deleted;
  pf "  \"compile_time_traps\": %d,\n" s.compile_time_traps;
  pf "  \"elapsed_s\": %.9f,\n" s.elapsed_s;
  pf "  \"passes\": [";
  List.iteri
    (fun i p ->
      if i > 0 then pf ",";
      pf
        "\n    {\"pass\": %S, \"time_s\": %.9f, \"checks_before\": %d, \
         \"checks_after\": %d}"
        p.pass p.pass_time_s p.pass_checks_before p.pass_checks_after)
    s.passes;
  pf "\n  ],\n";
  pf "  \"faults_injected\": %d,\n" s.faults_injected;
  pf "  \"incidents\": [";
  List.iteri
    (fun i inc ->
      if i > 0 then pf ",";
      pf
        "\n    {\"pass\": %S, \"func\": %S, \"cause\": %S, \"detail\": %S, \
         \"elapsed_s\": %.9f}"
        inc.inc_pass inc.inc_func (cause_name inc.inc_cause) inc.inc_detail
        inc.inc_elapsed_s)
    s.incidents;
  pf "\n  ],\n";
  (match s.validation with
  | None ->
      pf "  \"validated\": null,\n";
      pf "  \"validation\": null\n"
  | Some v ->
      pf "  \"validated\": %b,\n" (Ir.Validate.validated v);
      pf "  \"validation\": {\"sites\": %d, \"proven\": %d, \"failures\": ["
        v.Ir.Validate.total_sites v.Ir.Validate.proven_sites;
      List.iteri
        (fun i (f : Ir.Validate.site) ->
          if i > 0 then pf ",";
          pf "\n    {\"func\": %S, \"bid\": %d, \"check\": %S, \"reason\": %S}"
            f.Ir.Validate.s_func f.Ir.Validate.s_bid
            (Fmt.str "%a" Nascent_checks.Check.pp f.Ir.Validate.s_check)
            f.Ir.Validate.s_reason)
        v.Ir.Validate.failures;
      pf "%s]}\n" (if v.Ir.Validate.failures = [] then "" else "\n  "));
  pf "}\n";
  Buffer.contents buf

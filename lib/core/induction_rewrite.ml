(* INX pre-pass (paper section 2.3): rewrite each check's canonical
   form into *induction-expression* form.

   For every check instruction, each program-variable term of its range
   expression is resolved by the SSA-based induction analysis into
       Σ coeff * h_L  +  stable leaves  +  constant
   where the h_L are the basic variables (0, 1, 2, ... per iteration)
   of the loops enclosing the site and every leaf is a definition whose
   variable still holds that value at the check site. If all terms
   resolve, the check is replaced by the equivalent
   induction-expression check; each needed h_L is *materialized* as a
   real variable (h = 0 in the preheader, h = h + 1 in each latch) so
   the rewritten check remains executable and the ordinary kill rules
   apply to it.

   Effects the paper measures:
   - values assigned inside a loop from invariant operands (k = n + 1)
     become loop-invariant checks that LI can hoist — the paper's trfd
     case, where "induction variable analysis could detect more loop
     invariant checks";
   - general linear recurrences (k = k + m with m invariant-constant)
     become linear in h, so LLS can hoist them via the trip count even
     though k is not the do index;
   - checks on different variables with the same induction expression
     fall into one family, enlarging equivalence classes — crucially,
     a variable linear in an *outer* loop resolves to the same form at
     every nesting depth, and checks outside all loops still resolve
     their invariant operands (bound temps), so families never split
     between rewritten and unrewritten sites.

   Basic variables are only materialized for counted (do) loops, where
   the trip count gives LLS a substitution range; a check needing the
   basic variable of a while loop is left unrewritten. *)

module Ir = Nascent_ir
module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
module Atom = Nascent_checks.Atom
module Loops = Nascent_analysis.Loops
module Ssa = Nascent_analysis.Ssa
module Induction = Nascent_analysis.Induction
open Ir.Types

type stats = { mutable rewritten : int; mutable basics_materialized : int }

let new_stats () = { rewritten = 0; basics_materialized = 0 }

(* Rewrite the terms of [chk] at a site with environment [env] enclosed
   by [loops] (innermost first). [h_atom_for] yields the atom of the
   materialized basic variable of the loop with the given header, or
   None when that loop cannot have one. *)
let rewrite_check (f : Ir.Func.t) (ssa : Ssa.t) (loops : Loops.loop list)
    ~(env : int array) (chk : Check.t) ~(h_atom_for : int -> Atom.t option) :
    Check.t option =
  let atoms = f.Ir.Func.atoms in
  let exception Fail in
  try
    let terms = ref [] in
    let const = ref 0 in
    let changed = ref false in
    List.iter
      (fun (a, c) ->
        match Ir.Atoms.payload atoms (Atom.key a) with
        | Some (Ir.Atoms.Avar v) -> (
            match Induction.form_of_var ssa loops ~site_env:env v with
            | None -> raise Fail
            | Some form ->
                if not (Induction.is_identity_leaf env.(v.vid) form) then changed := true;
                const := !const + (c * form.Induction.const);
                List.iter
                  (fun (leaf, lc) ->
                    match leaf with
                    | Induction.Ldef d ->
                        let lv = Ssa.var_of_def ssa d in
                        terms := (Ir.Atoms.of_var atoms lv, c * lc) :: !terms
                    | Induction.Lbasic header -> (
                        match h_atom_for header with
                        | Some h -> terms := (h, c * lc) :: !terms
                        | None -> raise Fail))
                  form.Induction.leaves)
        | Some (Ir.Atoms.Aopaque _) | Some (Ir.Atoms.Asynth _) ->
            terms := (a, c) :: !terms
        | None -> raise Fail)
      (Linexpr.terms (Check.lhs chk));
    if not !changed then None
    else Some (Check.make (Linexpr.of_terms !terms) (Check.constant chk - !const))
  with Fail -> None

let run (f : Ir.Func.t) : stats =
  let st = new_stats () in
  let ssa = Ssa.compute f in
  let loops = Loops.compute f in
  let preds = Ir.Func.preds_array f in
  (* basic variables, materialized lazily per loop header *)
  let h_vars : (int, var) Hashtbl.t = Hashtbl.create 4 in
  let loop_by_header header = List.find_opt (fun l -> l.Loops.header = header) loops in
  let h_atom_for header : Atom.t option =
    match loop_by_header header with
    | Some ({ Loops.meta = Some (Ldo d); _ } as _l) ->
        let h =
          match Hashtbl.find_opt h_vars header with
          | Some h -> h
          | None ->
              let h =
                Ir.Func.fresh_var f ~name:(Printf.sprintf "h$%d" header) ~ty:Int
              in
              Hashtbl.replace h_vars header h;
              d.d_basic <- Some h;
              st.basics_materialized <- st.basics_materialized + 1;
              h
        in
        Some (Ir.Atoms.of_var f.Ir.Func.atoms h)
    | _ -> None
  in
  let reach = Ir.Func.reachable f in
  Ir.Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        (* loops enclosing this block, innermost first (the loop list
           is innermost-first already) *)
        let enclosing = List.filter (fun l -> Loops.in_loop l b.bid) loops in
        b.instrs <-
          List.mapi
            (fun idx (i : instr) ->
              match i with
              | Check m -> (
                  match Ssa.snapshot ssa ~bid:b.bid ~idx with
                  | None -> i
                  | Some env -> (
                      match rewrite_check f ssa enclosing ~env m.chk ~h_atom_for with
                      | Some chk' when not (Check.equal chk' m.chk) ->
                          st.rewritten <- st.rewritten + 1;
                          Check { m with chk = chk' }
                      | _ -> i))
              | _ -> i)
            b.instrs
      end)
    f;
  (* materialize the basic variables *)
  Hashtbl.iter
    (fun header h ->
      match loop_by_header header with
      | Some ({ Loops.meta = Some (Ldo d); _ } as l) ->
          let pre = Ir.Func.block f d.d_preheader in
          pre.instrs <- pre.instrs @ [ Assign (h, Cint 0) ];
          List.iter
            (fun latch ->
              if Loops.in_loop l latch then begin
                let lb = Ir.Func.block f latch in
                lb.instrs <- lb.instrs @ [ Assign (h, Ebin (Add, Evar h, Cint 1)) ]
              end)
            preds.(header)
      | _ -> ())
    h_vars;
  st

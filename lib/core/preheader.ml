(* Preheader insertion (paper section 3.3): hoist checks out of loops.

   Two variants:
   - [Invariant_only] (LI): a check whose range expression is invariant
     in the loop is inserted in the preheader as a conditional check,
     guarded by "the loop executes at least once";
   - [Loop_limit] (LLS): additionally, a check *linear* in the loop
     index variable is hoisted after substituting the extreme value the
     index takes, in the direction given by the sign of its
     coefficient — the substituted check holds for every iteration iff
     it holds at the extreme.

   Loops are processed inner to outer, so checks hoisted from an inner
   loop (now conditional checks in the inner preheader, which lies
   inside the outer loop) can be hoisted again, with conjoined guards —
   "checks from inner loops are hoisted to the outermost loop
   possible".

   Hoisting deletes the covered body check directly: it is implied by
   the inserted check for every iteration by construction (this is the
   implication the paper's LLS' variant preserves, from preheader
   conditional checks to the checks in the loop bodies they cover).

   Eligibility to hoist from loop L:
   - a plain check must be anticipatable at the beginning of L's body
     (the paper's rule — it ensures a check at least as strong executes
     on every iteration before its operands are redefined);
   - a conditional check (produced by hoisting out of an inner loop)
     must sit in a block that dominates every latch of L — it executes
     exactly once per iteration — and both its guard and its check must
     be invariant (or index-linear, for the check, under LLS). *)

module Ir = Nascent_ir
module Bitset = Nascent_support.Bitset
module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
module Atom = Nascent_checks.Atom
module Universe = Nascent_checks.Universe
module Loops = Nascent_analysis.Loops
module Dominance = Nascent_analysis.Dominance
module Expr = Nascent_ir.Expr
open Ir.Types

type variant =
  | Invariant_only (* LI *)
  | Loop_limit (* LLS *)
  | Markstein
      (* MCM, the Markstein/Cocke/Markstein 1982 restriction the paper
         suggests comparing against (section 5): only checks sitting in
         *articulation nodes* of the loop body (blocks on every path
         through an iteration) with *simple* range expressions (a
         single atom with unit coefficient) are hoisted — dominance
         reasoning instead of data-flow anticipatability. *)

type stats = {
  mutable hoisted_invariant : int;
  mutable hoisted_linear : int;
  mutable guards_inserted : int; (* conditional checks inserted *)
  mutable plain_inserted : int; (* unconditional (guard known true) *)
}

let new_stats () =
  { hoisted_invariant = 0; hoisted_linear = 0; guards_inserted = 0; plain_inserted = 0 }

(* --- classification ------------------------------------------------- *)

let atom_invariant (atoms : Ir.Atoms.t) (l : Loops.loop) (a : Atom.t) : bool =
  match Ir.Atoms.payload atoms (Atom.key a) with
  | Some (Ir.Atoms.Avar v) -> not (Loops.defines l v.vid)
  | Some (Ir.Atoms.Aopaque e) ->
      List.for_all (fun (v : var) -> not (Loops.defines l v.vid)) (Expr.vars_of e)
      && not (Expr.has_load e && l.Loops.has_store)
  | Some (Ir.Atoms.Asynth _) | None -> false

let expr_invariant (l : Loops.loop) (e : expr) : bool =
  List.for_all (fun (v : var) -> not (Loops.defines l v.vid)) (Expr.vars_of e)
  && not (Expr.has_load e)

(* The range of an index-like variable: the set of values it takes when
   the loop executes, described by the two extreme values as
   linearizable expressions (or compile-time computation for non-unit
   steps). *)
type index_range = { min_e : expr; max_e : expr }

let index_range_of_do (d : do_info) : (var * index_range) option =
  let lo = d.d_lo and hi = d.d_hi and s = d.d_step in
  if s = 1 then Some (d.d_index, { min_e = lo; max_e = hi })
  else if s = -1 then Some (d.d_index, { min_e = hi; max_e = lo })
  else
    match (lo, hi) with
    | Cint lo, Cint hi ->
        (* exact last value; the loop body sees lo, lo+s, ..., last *)
        if s > 0 then
          let last = lo + (max 0 (hi - lo) / s * s) in
          Some (d.d_index, { min_e = Cint lo; max_e = Cint last })
        else
          let last = lo - (max 0 (lo - hi) / -s * -s) in
          Some (d.d_index, { min_e = Cint last; max_e = Cint lo })
    | _ -> None (* symbolic bounds with |step| > 1: skip LLS *)

(* Value range of the basic loop variable h (materialized by the INX
   pre-pass): 0 .. trip-1, when the loop executes at all. *)
let basic_range_of_do (d : do_info) : (var * index_range) option =
  match d.d_basic with
  | None -> None
  | Some h -> (
      let s = d.d_step in
      if s = 1 then Some (h, { min_e = Cint 0; max_e = Expr.fold (Ebin (Sub, d.d_hi, d.d_lo)) })
      else if s = -1 then
        Some (h, { min_e = Cint 0; max_e = Expr.fold (Ebin (Sub, d.d_lo, d.d_hi)) })
      else
        match (d.d_lo, d.d_hi) with
        | Cint lo, Cint hi ->
            let span = if s > 0 then max 0 (hi - lo) else max 0 (lo - hi) in
            Some (h, { min_e = Cint 0; max_e = Cint (span / abs s) })
        | _ -> None)

type classification =
  | Invariant
  | Linear of { coeff : int; range : index_range; index : var }
  | Not_hoistable

(* Loop-limit substitution is only valid when the index variable takes
   exactly the values lo, lo+step, ...: nothing but the latch increment
   may assign it inside the loop. The frontend enforces this for do
   indices (Fortran's rule) and the INX pass for basic variables; this
   re-verifies at the IR level, so hand-built IR cannot subvert it. *)
let index_integrity (f : Ir.Func.t) (l : Loops.loop) (d : do_info) (index : var) : bool =
  List.for_all
    (fun bid ->
      bid = d.d_latch
      || List.for_all
           (fun i ->
             match i with Assign (v, _) -> v.vid <> index.vid | _ -> true)
           (Ir.Func.block f bid).instrs)
    l.Loops.blocks

(* MCM's "simple range expression": one symbolic term, unit
   coefficient (e.g. checks on [i] or [-i], not on [2*i - j]). *)
let simple_lhs (chk : Check.t) =
  match Linexpr.terms (Check.lhs chk) with
  | [] | [ (_, 1) ] | [ (_, -1) ] -> true
  | _ -> false

let classify ~variant (f : Ir.Func.t) (atoms : Ir.Atoms.t) (l : Loops.loop)
    (chk : Check.t) : classification =
  let lhs = Check.lhs chk in
  if variant = Markstein && not (simple_lhs chk) then Not_hoistable
  else if List.for_all (fun (a, _) -> atom_invariant atoms l a) (Linexpr.terms lhs) then
    Invariant
  else
    match (variant, l.Loops.meta) with
    | (Loop_limit | Markstein), Some (Ldo d) -> (
        let try_linear (index, range) =
          let ikey = Atom.key (Ir.Atoms.of_var atoms index) in
          let coeff = Linexpr.coeff_of_key lhs ikey in
          let rest =
            List.filter (fun (a, _) -> Atom.key a <> ikey) (Linexpr.terms lhs)
          in
          if
            coeff <> 0
            && List.for_all (fun (a, _) -> atom_invariant atoms l a) rest
            && index_integrity f l d index
          then Some (Linear { coeff; range; index })
          else None
        in
        let candidates =
          List.filter_map (fun x -> x) [ index_range_of_do d; basic_range_of_do d ]
        in
        match List.find_map try_linear candidates with
        | Some c -> c
        | None -> Not_hoistable)
    | _ -> Not_hoistable

(* Loop-limit substitution: replace the index by its extreme value.
   For [coeff > 0] the check is hardest at the maximum index, for
   [coeff < 0] at the minimum. Returns [None] when the extreme is not
   linearizable. *)
let substitute (atoms : Ir.Atoms.t) (chk : Check.t) ~coeff ~(range : index_range)
    ~(index : var) : Check.t option =
  let limit = if coeff > 0 then range.max_e else range.min_e in
  let llx, lc = Nascent_ir.Canon.linearize atoms limit in
  (* Reject substitutions whose limit expression is itself opaque over
     values that may change: bound temps and constants are always fine. *)
  let ikey = Atom.key (Ir.Atoms.of_var atoms index) in
  let lhs = Check.lhs chk in
  let rest =
    Linexpr.of_terms
      (List.filter (fun (a, _) -> Atom.key a <> ikey) (Linexpr.terms lhs))
  in
  let lhs' = Linexpr.add rest (Linexpr.scale coeff llx) in
  Some (Check.make lhs' (Check.constant chk - (coeff * lc)))

(* --- guards ---------------------------------------------------------- *)

(* Guard expressing "the loop executes at least once". *)
let trip_guard (l : Loops.loop) : expr option =
  match l.Loops.meta with
  | Some (Ldo d) ->
      Some
        (Expr.fold
           (if d.d_step > 0 then Ebin (Le, d.d_lo, d.d_hi) else Ebin (Ge, d.d_lo, d.d_hi)))
  | Some (Lwhile w) ->
      (* The preheader directly precedes the header's test, so the
         condition value is the same at both points. Conditions that
         read arrays are not hoisted: re-evaluating a raw load outside
         its checks could fault where the original would trap. *)
      if Expr.has_load w.w_cond then None else Some w.w_cond
  | None -> None

let conjoin g1 g2 =
  match (g1, g2) with
  | Cbool true, g | g, Cbool true -> g
  | _ -> Expr.fold (Ebin (And, g1, g2))

(* --- the pass -------------------------------------------------------- *)

type candidate = {
  c_bid : int;
  c_instr : instr; (* physical identity used for deletion *)
  c_meta : check_meta;
  c_guard : expr option; (* Some g for Cond_check sites *)
}

let preheader_of (l : Loops.loop) : int option =
  match l.Loops.meta with
  | Some (Ldo d) -> Some d.d_preheader
  | Some (Lwhile w) -> Some w.w_preheader
  | None -> None

let body_entry_of (l : Loops.loop) : int option =
  match l.Loops.meta with
  | Some (Ldo d) -> Some d.d_body_entry
  | Some (Lwhile w) -> Some w.w_body_entry
  | None -> None

(* Is block [b] an articulation node of the loop body: on every path of
   an iteration from [body_entry] to a latch? Tested by removing [b]
   and asking whether any latch is still reachable inside the loop. *)
let articulation (f : Ir.Func.t) (l : Loops.loop) ~body_entry ~latches b =
  b = body_entry
  || latches <> []
     &&
     let seen = Array.make (Ir.Func.num_blocks f) false in
     let rec go x =
       if (not seen.(x)) && x <> b && Loops.in_loop l x then begin
         seen.(x) <- true;
         List.iter go (Ir.Func.succs f x)
       end
     in
     go body_entry;
     not (List.exists (fun latch -> seen.(latch)) latches)

(* A conditional check equal to (or within-family stronger than) the
   one we are about to insert, with the same guard, already present? *)
let already_covered (pre : block) ~guard ~(chk : Check.t) ~mode =
  let covers (c' : Check.t) =
    match mode with
    | Universe.No_implications | Universe.Cross_family_only -> Check.equal c' chk
    | Universe.All_implications -> Check.implies_within_family c' chk
  in
  List.exists
    (fun i ->
      match (i, guard) with
      | Check m', None -> covers m'.chk
      | Cond_check (g', m'), Some g -> Expr.equal g g' && covers m'.chk
      | Check m', Some _ ->
          (* an unconditional check subsumes any guarded insertion *)
          covers m'.chk
      | _ -> false)
    pre.instrs

let process_loop (ctx : Checkctx.t) ~variant (st : stats) (l : Loops.loop) : bool =
  let f = ctx.Checkctx.func in
  let atoms = f.Ir.Func.atoms in
  match (preheader_of l, body_entry_of l) with
  | None, _ | _, None -> false
  | Some pre_bid, Some body_bid ->
      let env = Analyses.make_env ctx in
      let uni = env.Analyses.uni in
      let ant = Analyses.anticipatability ~cond_gens:true env in
      let dom = Dominance.compute f in
      let preds = Ir.Func.preds_array f in
      let latches =
        List.filter (fun p -> Loops.in_loop l p) preds.(l.Loops.header)
      in
      let ant_at_body = ant.Nascent_analysis.Dataflow.in_.(body_bid) in
      (* candidates: check sites inside the loop *)
      let candidates = ref [] in
      List.iter
        (fun bid ->
          let b = Ir.Func.block f bid in
          List.iter
            (fun i ->
              match i with
              | Check m ->
                  candidates :=
                    { c_bid = bid; c_instr = i; c_meta = m; c_guard = None }
                    :: !candidates
              | Cond_check (g, m) ->
                  candidates :=
                    { c_bid = bid; c_instr = i; c_meta = m; c_guard = Some g }
                    :: !candidates
              | _ -> ())
            b.instrs)
        l.Loops.blocks;
      let eligible (c : candidate) : bool =
        match c.c_guard with
        | None -> (
            match variant with
            | Markstein ->
                (* dominance-style reasoning only: the check must sit on
                   every path through an iteration *)
                articulation f l ~body_entry:body_bid ~latches c.c_bid
            | Invariant_only | Loop_limit -> (
                match Universe.index_of uni (ctx.Checkctx.site_check c.c_meta) with
                | Some j -> Bitset.mem ant_at_body j
                | None -> false))
        | Some g ->
            (* once-per-iteration and guard stable across the loop *)
            latches <> []
            && List.for_all (fun latch -> Dominance.dominates dom c.c_bid latch) latches
            && expr_invariant l g
      in
      let to_delete = ref [] in
      let inserted = ref [] in
      let hoist (c : candidate) =
        let chk = c.c_meta.chk in
        let mk_hoisted () =
          match classify ~variant f atoms l chk with
          | Invariant -> Some (chk, false)
          | Linear { coeff; range; index } -> (
              match substitute atoms chk ~coeff ~range ~index with
              | Some chk' -> Some (chk', true)
              | None -> None)
          | Not_hoistable -> None
        in
        match (trip_guard l, mk_hoisted ()) with
        | None, _ | _, None -> ()
        | Some tg, Some (chk', linear) -> (
            let guard = match c.c_guard with None -> tg | Some g -> conjoin tg g in
            to_delete := c.c_instr :: !to_delete;
            if linear then st.hoisted_linear <- st.hoisted_linear + 1
            else st.hoisted_invariant <- st.hoisted_invariant + 1;
            let meta' = { c.c_meta with chk = chk' } in
            let pre = Ir.Func.block f pre_bid in
            let covered guard =
              already_covered pre ~guard ~chk:chk' ~mode:ctx.Checkctx.mode
              || already_covered
                   { pre with instrs = List.rev !inserted }
                   ~guard ~chk:chk' ~mode:ctx.Checkctx.mode
            in
            match Expr.fold guard with
            | Cbool false -> () (* loop never runs: body check unreachable *)
            | Cbool true ->
                if not (covered None) then begin
                  inserted := Check meta' :: !inserted;
                  st.plain_inserted <- st.plain_inserted + 1
                end
            | g ->
                if not (covered (Some g)) then begin
                  inserted := Cond_check (g, meta') :: !inserted;
                  st.guards_inserted <- st.guards_inserted + 1
                end)
      in
      List.iter (fun c -> if eligible c then hoist c) (List.rev !candidates);
      (* mutate: delete hoisted sites, append insertions to the preheader *)
      if !to_delete <> [] || !inserted <> [] then begin
        List.iter
          (fun bid ->
            let b = Ir.Func.block f bid in
            b.instrs <- List.filter (fun i -> not (List.memq i !to_delete)) b.instrs)
          l.Loops.blocks;
        let pre = Ir.Func.block f pre_bid in
        pre.instrs <- pre.instrs @ List.rev !inserted;
        true
      end
      else false

let run (ctx : Checkctx.t) ~variant : stats =
  let st = new_stats () in
  (* innermost-first; each hoist can enable hoisting from the enclosing
     loop, so anticipatability is recomputed per loop (process_loop
     builds a fresh env). *)
  List.iter (fun l -> ignore (process_loop ctx ~variant st l)) ctx.Checkctx.loops;
  st

(* Text rendering of the experiment tables, in the layout of the
   paper's Tables 1-3. *)

module B = Nascent_benchmarks.Suite
module Config = Nascent_core.Config
module E = Experiments

let pf = Format.printf

let program_names (chars : E.characteristics list) =
  List.map (fun c -> c.E.bench.B.name) chars

let hrule cols = pf "%s@." (String.make cols '-')

(* --- Table 1 ---------------------------------------------------------- *)

let table1 (chars : E.characteristics list) =
  pf "@.Table 1: program characteristics of benchmark programs@.";
  hrule 106;
  pf "%-8s %-10s %5s %5s %6s | %9s %12s | %8s %12s | %6s %7s@." "suite" "program"
    "lines" "subr" "loops" "instr(s)" "instr(d)" "chk(s)" "chk(d)" "s-rat%" "d-rat%";
  hrule 106;
  List.iter
    (fun (c : E.characteristics) ->
      let srat = 100.0 *. float_of_int c.E.static_checks /. float_of_int c.E.static_instrs in
      let drat = 100.0 *. float_of_int c.E.dyn_checks /. float_of_int c.E.dyn_instrs in
      pf "%-8s %-10s %5d %5d %6d | %9d %12d | %8d %12d | %6.0f %7.0f@."
        c.E.bench.B.bsuite c.E.bench.B.name c.E.lines c.E.subroutines c.E.loops
        c.E.static_instrs c.E.dyn_instrs c.E.static_checks c.E.dyn_checks srat drat)
    chars;
  hrule 106;
  let min_r, max_r =
    List.fold_left
      (fun (mn, mx) (c : E.characteristics) ->
        let r = 100.0 *. float_of_int c.E.dyn_checks /. float_of_int c.E.dyn_instrs in
        (Float.min mn r, Float.max mx r))
      (infinity, neg_infinity) chars
  in
  pf "dynamic check/instr ratio: %.0f%% .. %.0f%% (paper: 22%%..66%%) => naive range@." min_r max_r;
  pf "checking costs tens of percent of execution: optimization is warranted.@."

(* --- Tables 2 and 3 --------------------------------------------------- *)

let pct_table ~title (chars : E.characteristics list)
    (groups : (Config.check_kind * E.row list) list) =
  pf "@.%s@." title;
  let names = program_names chars in
  let w = 110 in
  hrule w;
  pf "%-11s" "";
  List.iter (fun n -> pf "%9s" (String.sub n 0 (min 8 (String.length n)))) names;
  pf "%9s %9s@." "Range(s)" "Compile(s)";
  hrule w;
  List.iter
    (fun (kind, rows) ->
      pf "-- %s checks --@." (Config.kind_name kind);
      List.iter
        (fun (r : E.row) ->
          pf "%-11s" r.E.label;
          List.iter (fun (c : E.cell) -> pf "%9.2f" c.E.pct_eliminated) r.E.cells;
          pf "%9.3f %9.3f@." r.E.total_range_s r.E.total_compile_s)
        rows)
    groups;
  hrule w;
  (* the Range column, decomposed: suite-summed monotonic time per
     optimizer pass *)
  pf "per-pass range-time breakdown (suite totals, ms):@.";
  List.iter
    (fun (kind, rows) ->
      List.iter
        (fun (r : E.row) ->
          pf "  %s/%-8s" (Config.kind_name kind) r.E.label;
          List.iter (fun (name, t) -> pf " %s %.3f" name (1000.0 *. t)) r.E.pass_totals;
          pf "@.")
        rows)
    groups;
  hrule w

let table2 chars groups =
  pct_table
    ~title:
      "Table 2: percentage of dynamic checks eliminated by each placement scheme\n\
       (NI = no insertion, CS = strengthening, LNI = latest-not-isolated,\n\
       SE = safe-earliest, LI = invariant preheader, LLS = loop-limit\n\
       substitution, ALL = LLS + SE)"
    chars groups;
  (* headline conclusions, checked programmatically by the test suite *)
  let find kind label =
    let rows = List.assoc kind groups in
    List.find (fun (r : E.row) -> r.E.label = label) rows
  in
  let avg (r : E.row) =
    List.fold_left (fun a (c : E.cell) -> a +. c.E.pct_eliminated) 0.0 r.E.cells
    /. float_of_int (List.length r.E.cells)
  in
  let ni = avg (find Config.PRX "NI")
  and lls = avg (find Config.PRX "LLS")
  and all = avg (find Config.PRX "ALL") in
  pf "suite means (PRX): NI %.1f%%  LLS %.1f%%  ALL %.1f%%@." ni lls all;
  pf "=> loop-based hoisting eliminates ~%.0f%% of checks; ALL adds only %+.2f points@."
    lls (all -. lls)

let table3 chars groups =
  pct_table
    ~title:
      "Table 3: implication ablation (primed rows disable implications:\n\
       NI'/SE' entirely, LLS' within-family only; ALL+O adds the\n\
       Fourier-Motzkin implication oracle on top of the syntactic CIG)"
    chars groups

let extensions chars groups =
  pct_table
    ~title:
      "Extension (paper section 5): Markstein/Cocke/Markstein 1982 vs the\n\
       paper's preheader schemes (MCM hoists only simple checks from\n\
       articulation nodes, by dominance reasoning alone)"
    chars groups

(* --- canonical-form ablation ------------------------------------------ *)

let canon (a : E.canon_ablation) =
  pf "@.Canonical-form ablation (DESIGN.md decision 1):@.";
  pf "  distinct static checks: %d, with gcd normalization: %d@." a.E.distinct_checks
    a.E.distinct_checks_gcd;
  pf "  families: %d, with gcd normalization: %d@." a.E.families a.E.families_gcd;
  pf "  (the paper's canonical form corresponds to the non-gcd columns)@."

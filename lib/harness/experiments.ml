(* Experiment harness: computes the data behind the paper's Tables 1-3
   over the 10-program MiniF suite.

   Measurements mirror the paper's methodology:
   - dynamic counts come from the instrumented interpreter (the paper's
     instrumented-C back-end);
   - "% of checks eliminated" is relative to the dynamic check count of
     the naively checked program;
   - the "Range" column is the wall-clock time of the range-check
     optimization phase, and "Nascent" the whole compile (parse +
     semantic analysis + lowering + optimization), both summed over the
     suite. *)

module B = Nascent_benchmarks.Suite
module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Loops = Nascent_analysis.Loops
module Run = Nascent_interp.Run
module Pool = Nascent_support.Pool
module Memo = Nascent_support.Memo

(* Every (benchmark × configuration) cell is a pure function of its
   inputs and runs on its own lowered copy, so the matrix fans out over
   the process-wide domain pool (NASCENT_JOBS / --jobs /
   Pool.set_default_jobs; jobs=1 is the serial path) and lands in a
   content-addressed cache. Determinism across pool sizes and the
   byte-identity of warm-cache reruns are pinned by
   test/test_parallel.ml. *)
let pool () = Pool.global ()

(* Per-cell watchdog: every cell runs under its own Guard fuel budget,
   charged one tick per dataflow/PRE fixpoint sweep, so one divergent
   cell fails (lowest-index exception, per the pool contract) instead
   of wedging a worker domain for the whole matrix. The default is ~3
   orders of magnitude above what the suite's hottest cell uses;
   [NASCENT_CELL_FUEL=0] disables the watchdog, any other positive
   value overrides it. *)
let default_cell_fuel = 50_000_000

let cell_fuel () =
  match Sys.getenv_opt "NASCENT_CELL_FUEL" with
  | None -> Some default_cell_fuel
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> None
      | Some n when n > 0 -> Some n
      | _ -> Some default_cell_fuel)

let parallel_map f xs = Pool.parallel_map ?task_fuel:(cell_fuel ()) (pool ()) f xs

(* --- Table 1: program characteristics -------------------------------- *)

type characteristics = {
  bench : B.benchmark;
  ir : Ir.Program.t; (* naive-checked IR *)
  lines : int;
  subroutines : int;
  loops : int;
  static_instrs : int;
  static_checks : int;
  dyn_instrs : int; (* of the program without any checks *)
  dyn_checks : int; (* of the naively checked program *)
}

let characterize (bench : B.benchmark) : characteristics =
  let ir = Ir.Lower.of_source bench.B.source in
  let funcs = Ir.Program.funcs_sorted ir in
  let subroutines = List.length funcs in
  let loops =
    List.fold_left (fun acc f -> acc + List.length (Loops.compute f)) 0 funcs
  in
  let static_instrs, static_checks = Ir.Program.static_counts ir in
  let bare = Ir.Transform.strip_checks ir in
  let o_bare = Run.run bare in
  let o_naive = Run.run ir in
  (match (o_naive.Run.trap, o_naive.Run.error) with
  | None, None -> ()
  | Some t, _ -> invalid_arg (bench.B.name ^ " traps under naive checking: " ^ t)
  | _, Some e -> invalid_arg (bench.B.name ^ " errors: " ^ e));
  {
    bench;
    ir;
    lines = B.line_count bench;
    subroutines;
    loops;
    static_instrs;
    static_checks;
    dyn_instrs = o_bare.Run.instrs;
    dyn_checks = o_naive.Run.checks;
  }

let characterize_all () = parallel_map characterize B.all

(* --- Tables 2 and 3: per-configuration runs -------------------------- *)

type cell = {
  pct_eliminated : float;
  dyn_checks_after : int;
  range_time_s : float; (* optimization phase *)
  compile_time_s : float; (* parse + lower + optimize *)
  pass_times : (string * float) list; (* per-pass range-time breakdown *)
  incidents : int;
      (* optimizer passes rolled back while computing this cell; 0 in a
         healthy run, structural (invariant across pool sizes) *)
}

(* Cache key version: bump when [cell]'s shape or the counting model
   changes, or stale on-disk entries would replay the old shape. *)
let cell_version = "cell-v3"

let cell_cache : cell Memo.t = Memo.create ~name:"cells" ()
let cell_cache_stats () = Memo.stats cell_cache
let reset_cell_cache () = Memo.clear cell_cache

let run_config (c : characteristics) (config : Config.t) : cell =
  (* Timing run: the invariant verifier is a measurement harness, not a
     compiler pass, so it is switched off here (the test suite runs the
     same matrix with it on). *)
  let config = { config with Config.verify = false } in
  let key =
    Memo.key
      [ cell_version; c.bench.B.name; c.bench.B.source; Config.cache_key config ]
  in
  Memo.find_or_compute cell_cache ~key @@ fun () ->
  let t0 = Nascent_support.Mclock.counter () in
  let ir = Ir.Lower.of_source c.bench.B.source in
  let opt, stats = Core.Optimizer.optimize ~config ir in
  let compile_time_s = Nascent_support.Mclock.elapsed_s t0 in
  let o = Run.run opt in
  (match (o.Run.trap, o.Run.error) with
  | None, None -> ()
  | Some t, _ ->
      invalid_arg
        (Fmt.str "%s traps under %a: %s" c.bench.B.name Config.pp config t)
  | _, Some e -> invalid_arg (Fmt.str "%s errors under %a: %s" c.bench.B.name Config.pp config e));
  let eliminated = c.dyn_checks - o.Run.checks in
  {
    pct_eliminated = 100.0 *. float_of_int eliminated /. float_of_int c.dyn_checks;
    dyn_checks_after = o.Run.checks;
    range_time_s = stats.Core.Optimizer.elapsed_s;
    compile_time_s;
    pass_times =
      List.map
        (fun p -> (p.Core.Optimizer.pass, p.Core.Optimizer.pass_time_s))
        stats.Core.Optimizer.passes;
    incidents = List.length stats.Core.Optimizer.incidents;
  }

(* A table row: one (scheme, kind, impl) configuration across all
   programs, plus summed times. *)
type row = {
  label : string;
  config : Config.t;
  cells : cell list; (* one per program, suite order *)
  total_range_s : float;
  total_compile_s : float;
  pass_totals : (string * float) list; (* suite-summed per-pass breakdown *)
}

(* Sum per-pass times across the suite, keeping pipeline order. *)
let sum_pass_times (cells : cell list) : (string * float) list =
  List.fold_left
    (fun acc c ->
      List.fold_left
        (fun acc (name, t) ->
          if List.mem_assoc name acc then
            List.map (fun (n, t0) -> if n = name then (n, t0 +. t) else (n, t0)) acc
          else acc @ [ (name, t) ])
        acc c.pass_times)
    [] cells

let make_row ~label ~config cells =
  {
    label =
      (match label with Some l -> l | None -> Config.scheme_name config.Config.scheme);
    config;
    cells;
    total_range_s = List.fold_left (fun a c -> a +. c.range_time_s) 0.0 cells;
    total_compile_s = List.fold_left (fun a c -> a +. c.compile_time_s) 0.0 cells;
    pass_totals = sum_pass_times cells;
  }

let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []
let rec drop n = function _ :: rest when n > 0 -> drop (n - 1) rest | xs -> xs

(* Compute several rows' cells in ONE fan-out: the whole
   (benchmark × config) matrix flattens into a single parallel_map
   whose row-major result order rebuilds the rows deterministically. *)
let run_rows (chars : characteristics list)
    (specs : (string option * Config.t) list) : row list =
  let tasks =
    List.concat_map (fun (_, config) -> List.map (fun c -> (c, config)) chars) specs
  in
  let cells = parallel_map (fun (c, config) -> run_config c config) tasks in
  let n = List.length chars in
  let rec rows specs cells =
    match specs with
    | [] -> []
    | (label, config) :: rest ->
        make_row ~label ~config (take n cells) :: rows rest (drop n cells)
  in
  rows specs cells

let run_row ?label (chars : characteristics list) (config : Config.t) : row =
  List.hd (run_rows chars [ (label, config) ])

(* Group labelled per-kind specs, fan the whole table out at once, and
   chunk the rows back under their kinds. *)
let run_table (chars : characteristics list)
    (groups : (Config.check_kind * (string option * Config.t) list) list) :
    (Config.check_kind * row list) list =
  let rows = run_rows chars (List.concat_map snd groups) in
  let rec regroup groups rows =
    match groups with
    | [] -> []
    | (kind, specs) :: rest ->
        let k = List.length specs in
        (kind, take k rows) :: regroup rest (drop k rows)
  in
  regroup groups rows

(* Table 2: the seven placement schemes x {PRX, INX}, full implications. *)
let table2 ?(kinds = [ Config.PRX; Config.INX ]) (chars : characteristics list) :
    (Config.check_kind * row list) list =
  run_table chars
    (List.map
       (fun kind ->
         ( kind,
           List.map
             (fun scheme -> (None, Config.make ~scheme ~kind ()))
             Config.all_schemes ))
       kinds)

(* Table 3: implication ablation — NI/NI', SE/SE' (no implications at
   all), LLS/LLS' (cross-family only), and ALL/ALL+O (the syntactic CIG
   alone vs CIG plus the Fourier–Motzkin implication oracle, which adds
   cross-family availability edges and conjunction-level redundancy). *)
let table3 ?(kinds = [ Config.PRX; Config.INX ]) (chars : characteristics list) :
    (Config.check_kind * row list) list =
  let variants =
    [
      ("NI", Config.NI, Universe.All_implications, false);
      ("NI'", Config.NI, Universe.No_implications, false);
      ("SE", Config.SE, Universe.All_implications, false);
      ("SE'", Config.SE, Universe.No_implications, false);
      ("LLS", Config.LLS, Universe.All_implications, false);
      ("LLS'", Config.LLS, Universe.Cross_family_only, false);
      ("ALL", Config.ALL, Universe.All_implications, false);
      ("ALL+O", Config.ALL, Universe.All_implications, true);
    ]
  in
  run_table chars
    (List.map
       (fun kind ->
         ( kind,
           List.map
             (fun (label, scheme, impl, oracle) ->
               (Some label, Config.make ~scheme ~kind ~impl ~oracle ()))
             variants ))
       kinds)

(* Extension experiment (paper section 5): the comparison the paper
   proposes — Markstein/Cocke/Markstein's restricted preheader
   insertion vs LI and LLS. *)
let extensions (chars : characteristics list) : (Config.check_kind * row list) list =
  run_table chars
    [
      ( Config.PRX,
        List.map
          (fun scheme -> (None, Config.make ~scheme ()))
          [ Config.LI; Config.MCM; Config.LLS ] );
    ]

(* --- canonical-form ablation (design decision 1 in DESIGN.md) --------- *)

(* How much does gcd-normalizing the canonical form shrink the check
   population? Counts distinct canonical checks and families across the
   suite, with and without the gcd rule. *)
type canon_ablation = {
  distinct_checks : int;
  distinct_checks_gcd : int;
  families : int;
  families_gcd : int;
}

let canon_ablation (chars : characteristics list) : canon_ablation =
  let module Check = Nascent_checks.Check in
  let module CS = Set.Make (struct
    type t = Check.t

    let compare = Check.compare
  end) in
  let module LS = Set.Make (struct
    type t = Nascent_checks.Linexpr.t

    let compare = Nascent_checks.Linexpr.compare
  end) in
  let plain = ref CS.empty
  and gcd = ref CS.empty
  and fam = ref LS.empty
  and famg = ref LS.empty in
  List.iter
    (fun c ->
      Ir.Program.iter_funcs
        (fun f ->
          List.iter
            (fun (m : Ir.Types.check_meta) ->
              let chk = m.Ir.Types.chk in
              let g = Check.gcd_normalize chk in
              plain := CS.add chk !plain;
              gcd := CS.add g !gcd;
              fam := LS.add (Check.lhs chk) !fam;
              famg := LS.add (Check.lhs g) !famg)
            (Ir.Func.all_check_metas f))
        c.ir)
    chars;
  {
    distinct_checks = CS.cardinal !plain;
    distinct_checks_gcd = CS.cardinal !gcd;
    families = LS.cardinal !fam;
    families_gcd = LS.cardinal !famg;
  }

(* Reproductions of the paper's worked figures: each prints the
   program fragment before and after the relevant transformation and
   the dynamic check counts. *)

module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Run = Nascent_interp.Run

let pf = Format.printf

let show ~title ~src ~configs =
  pf "@.=== %s ===@." title;
  let ir = Ir.Lower.of_source src in
  let o0 = Run.run ir in
  pf "--- naive (dynamic checks: %d) ---@.%s@." o0.Run.checks
    (Ir.Printer.program_to_string ir);
  List.iter
    (fun (label, config) ->
      let opt, _ = Core.Optimizer.optimize ~config ir in
      let o = Run.run opt in
      pf "--- %s (dynamic checks: %d) ---@.%s@." label o.Run.checks
        (Ir.Printer.program_to_string opt))
    configs

(* Figure 1: two statements, four checks; availability + implication
   removes C4, strengthening then removes C1. *)
let figure1 () =
  show ~title:"Figure 1: implication and strengthening"
    ~src:
      "program fig1\n\
       integer a(5:10), n\n\
       n = 3\n\
       a(2*n) = 0\n\
       a(2*n - 1) = 1\n\
       print n\n\
       end"
    ~configs:
      [
        ("Figure 1(b): NI (redundancy elimination)", Config.make ~scheme:Config.NI ());
        ("Figure 1(c): CS (check strengthening)", Config.make ~scheme:Config.CS ());
      ]

(* Figure 5: safe-earliest placement is safe but not always profitable:
   hoisting the stronger then-branch check above the branch adds work
   on the else path. *)
let figure5 () =
  show
    ~title:
      "Figure 5: safe-earliest placement need not be profitable\n\
       (check of a(i) hoisted above the branch also runs on the else path)"
    ~src:
      "program fig5\n\
       integer a(1:10), i, t\n\
       do t = 1, 6\n\
       i = t\n\
       if t > 3 then\n\
       a(i) = 1\n\
       else\n\
       a(i + 4) = 2\n\
       endif\n\
       enddo\n\
       print i\n\
       end"
    ~configs:[ ("SE (safe-earliest)", Config.make ~scheme:Config.SE ()) ]

(* Figure 6: preheader insertion with loop-limit substitution: the
   invariant check on k and the linear check on j become two
   conditional checks in the preheader. *)
let figure6 () =
  show ~title:"Figure 6: preheader insertion with loop-limit substitution"
    ~src:
      "program fig6\n\
       integer a(1:10), j, k, n\n\
       n = 4\n\
       k = 2\n\
       do j = 1, 2 * n\n\
       a(k) = a(k) + 1\n\
       a(j) = a(j) + 1\n\
       enddo\n\
       print n\n\
       end"
    ~configs:[ ("LLS (preheader + loop-limit substitution)", Config.make ~scheme:Config.LLS ()) ]

let all () =
  figure1 ();
  figure5 ();
  figure6 ()

(* The compile service's request handler: what a request MEANS, layered
   on Nascent_support.Server's transport (which owns sockets, admission
   control, deadlines and drain).

   Operations:
   - "compile": lower + optimize (+ optionally interpret) one program —
     a MiniF source string or a built-in benchmark name — under a
     requested (scheme, kind, impl, verify, oracle, fault) configuration
     — "oracle": true additionally runs the Fourier-Motzkin elimination
     sweep and the per-compile translation validator, whose verdict is
     returned as "validated" (a refused certificate degrades the
     response and feeds the breaker like a rolled-back pass).
     Results are served through a content-addressed Memo cache (same
     key discipline as the experiment harness: source + full
     Config.cache_key), so a warm daemon answers repeated requests
     without re-optimizing.
   - "burn": spin on the ambient tick until a budget fires — the
     deterministic stand-in for a hung compile, used by the CI smoke
     and the tests to exercise the deadline path end to end.

   Graceful degradation: a per-scheme circuit breaker. Every compile at
   the requested scheme records success (no incidents) or failure (at
   least one rolled-back pass); after [breaker_threshold] consecutive
   failures the scheme trips and requests for it are routed to the
   always-safe NI floor — still a correct, fully checked compile, per
   the fail-safe pipeline's contract — until a cooldown probe at the
   real scheme succeeds. A compile aborted by its deadline or fuel
   budget records a failure too (so a lost probe cannot wedge the
   breaker half-open); invalid-program errors record nothing — they
   are the input's fault. Fallback compiles never feed the breaker:
   they say nothing about the failing scheme's health. NI itself is
   the floor and bypasses the breaker entirely. *)

module B = Nascent_benchmarks.Suite
module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module Json = Nascent_support.Json
module Server = Nascent_support.Server
module Breaker = Nascent_support.Breaker
module Memo = Nascent_support.Memo
module Guard = Nascent_support.Guard
module Mclock = Nascent_support.Mclock
module Retry = Nascent_support.Retry

(* Everything deterministic about a compile, in cacheable form. *)
type compiled = {
  r_incidents : (string * string * string) list; (* pass, cause, detail *)
  r_faults_injected : int;
  r_checks_before : int;
  r_checks_after : int;
  r_validated : bool option;
      (* [--oracle] requests: did the per-compile translation validator
         certify every reference check site? [None] = not requested *)
  r_run : run_outcome option;
  r_floor : bool;
      (* tiered compilation: this cell holds the NI floor artifact
         standing in for the requested scheme until the background
         upgrade hot-swaps the optimized form into its place *)
}

and run_outcome = {
  ro_checks : int;
  ro_instrs : int;
  ro_trap : string option;
  ro_error : string option;
}

type t = {
  breaker : Breaker.t;
  clock : Mclock.counter; (* breaker time base: uptime seconds *)
  cache : compiled Memo.t;
  cooldown_s : float; (* the breaker's cooldown, for upgrade deferral *)
  lock : Mutex.t; (* guards the counters + tables below *)
  mutable compiles : int;
  mutable degraded : int; (* responses carrying incidents *)
  mutable fallbacks : int; (* breaker-routed to the NI floor *)
  mutable incidents_total : int;
  mutable floor_served : int; (* tier:"floor" compile responses *)
  mutable optimized_served : int; (* tier:"optimized" compile responses *)
  mutable upgrades_submitted : int;
  mutable upgrades_done : int; (* hot-swapped to the optimized tier *)
  mutable upgrades_failed : int; (* degraded upgrade compile: floor kept *)
  mutable upgrades_dropped : int; (* gave up (breaker / budget retries) *)
  upgrading : (string, float) Hashtbl.t;
      (* cache keys with an upgrade in flight -> enqueue uptime;
         dedups submissions and feeds the oldest-pending-age gauge *)
  mutable submit_bg : (Json.t -> bool) option;
      (* the server's background lane, wired after both exist
         (Server.create needs the handler, the handler needs [t]) *)
  state_path : string option; (* snapshot file for restart survival *)
  shard_name : string option;
      (* identity behind a shard router, echoed as the "shard" status
         field so one status sweep tells which daemon answered *)
}

(* v3: compiled cells gained [r_floor] (tiered compilation).
   v2: compiled cells gained [r_validated] (the --oracle certificate). *)
let cache_version = "service-v3"

let counted t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- state snapshot ----------------------------------------------------

   Breaker states and service counters survive a daemon restart: a
   scheme that was tripped keeps being routed to the NI floor by its
   successor until a cooldown probe (clock restarted at load) succeeds.
   The snapshot is a small JSON file written atomically after every
   handled compile; written-then-renamed means a kill -9 leaves either
   the previous snapshot or the new one, never a torn file — and a
   snapshot that is missing or fails to parse just means starting
   fresh, which is always safe (breakers re-learn). *)

let snapshot_json t =
  let ( compiles,
        degraded,
        fallbacks,
        incidents_total,
        floor_served,
        optimized_served,
        upgrades_submitted,
        upgrades_done,
        upgrades_failed,
        upgrades_dropped ) =
    counted t (fun () ->
        ( t.compiles,
          t.degraded,
          t.fallbacks,
          t.incidents_total,
          t.floor_served,
          t.optimized_served,
          t.upgrades_submitted,
          t.upgrades_done,
          t.upgrades_failed,
          t.upgrades_dropped ))
  in
  Json.Obj
    [
      ("version", Json.Int 2);
      ("compiles", Json.Int compiles);
      ("degraded", Json.Int degraded);
      ("fallbacks", Json.Int fallbacks);
      ("incidents_total", Json.Int incidents_total);
      ("floor_served", Json.Int floor_served);
      ("optimized_served", Json.Int optimized_served);
      ("upgrades_submitted", Json.Int upgrades_submitted);
      ("upgrades_done", Json.Int upgrades_done);
      ("upgrades_failed", Json.Int upgrades_failed);
      ("upgrades_dropped", Json.Int upgrades_dropped);
      ( "breakers",
        Json.List
          (List.map
             (fun (key, st, failures) ->
               Json.Obj
                 [
                   ("scheme", Json.Str key);
                   ("state", Json.Str (Breaker.state_name st));
                   ("failures", Json.Int failures);
                 ])
             (Breaker.snapshot t.breaker)) );
    ]

let save_state t =
  match t.state_path with
  | None -> ()
  | Some path -> (
      try Guard.write_atomic ~path (Json.to_string (snapshot_json t) ^ "\n")
      with Sys_error _ | Unix.Unix_error _ -> ())

let load_state t path =
  match
    if Sys.file_exists path then
      try Some (In_channel.with_open_bin path In_channel.input_all)
      with Sys_error _ -> None
    else None
  with
  | None -> ()
  | Some raw -> (
      match Json.parse raw with
      | Error _ -> () (* torn or foreign file: start fresh *)
      | Ok j ->
          let geti name =
            match Json.member name j with Some (Json.Int n) when n >= 0 -> n | _ -> 0
          in
          counted t (fun () ->
              t.compiles <- geti "compiles";
              t.degraded <- geti "degraded";
              t.fallbacks <- geti "fallbacks";
              t.incidents_total <- geti "incidents_total";
              t.floor_served <- geti "floor_served";
              t.optimized_served <- geti "optimized_served";
              t.upgrades_submitted <- geti "upgrades_submitted";
              t.upgrades_done <- geti "upgrades_done";
              t.upgrades_failed <- geti "upgrades_failed";
              t.upgrades_dropped <- geti "upgrades_dropped");
          let entries =
            match Json.member "breakers" j with
            | Some (Json.List l) ->
                List.filter_map
                  (fun b ->
                    match
                      ( Json.str_member "scheme" b,
                        Option.bind (Json.str_member "state" b) Breaker.state_of_name,
                        Json.member "failures" b )
                    with
                    | Some key, Some st, Some (Json.Int f) -> Some (key, st, f)
                    | _ -> None)
                  l
            | _ -> []
          in
          Breaker.restore t.breaker ~now:(Mclock.elapsed_s t.clock) entries)

let create ?(breaker_threshold = 3) ?(breaker_cooldown_s = 2.0) ?state_path
    ?cache_dir ?shard_name () =
  let t =
    {
      breaker = Breaker.create ~threshold:breaker_threshold ~cooldown_s:breaker_cooldown_s ();
      clock = Mclock.counter ();
      cache = Memo.create ?disk_dir:cache_dir ~name:"service" ();
      cooldown_s = breaker_cooldown_s;
      lock = Mutex.create ();
      compiles = 0;
      degraded = 0;
      fallbacks = 0;
      incidents_total = 0;
      floor_served = 0;
      optimized_served = 0;
      upgrades_submitted = 0;
      upgrades_done = 0;
      upgrades_failed = 0;
      upgrades_dropped = 0;
      upgrading = Hashtbl.create 16;
      submit_bg = None;
      state_path;
      shard_name;
    }
  in
  Option.iter (load_state t) state_path;
  t

(* Late binding for the background lane: Server.create needs the
   handler, the handler needs the service, and the service's tier
   upgrades need the server — wired by the daemon after both exist.
   Without it (tests, bench targets that want pure synchronous
   behaviour) tiering is off: every compile runs at its requested
   scheme, exactly the pre-tier semantics. *)
let set_upgrade_submit t f = t.submit_bg <- Some f

exception Bad_request of string

(* --- request parsing --------------------------------------------------- *)

let parse_scheme req =
  match Json.str_member "scheme" req with
  | None -> Config.LLS
  | Some s -> (
      match Config.scheme_of_name s with
      | Some sc -> sc
      | None -> raise (Bad_request ("unknown scheme " ^ s)))

let parse_kind req =
  match Json.str_member "kind" req with
  | None -> Config.PRX
  | Some ("prx" | "PRX") -> Config.PRX
  | Some ("inx" | "INX") -> Config.INX
  | Some s -> raise (Bad_request ("unknown check kind " ^ s))

let parse_impl req =
  match Json.str_member "impl" req with
  | None -> Universe.All_implications
  | Some "all" -> Universe.All_implications
  | Some "none" -> Universe.No_implications
  | Some "cross" -> Universe.Cross_family_only
  | Some s -> raise (Bad_request ("unknown implication mode " ^ s))

let parse_fault req =
  match Json.str_member "fault" req with
  | None | Some "none" -> None
  | Some s -> (
      match Ir.Mutate.parse_request s with
      | Ok (Ir.Mutate.Single spec) -> Some spec
      | Ok Ir.Mutate.Smoke -> raise (Bad_request "fault \"smoke\" is CLI-only")
      | Error e -> raise (Bad_request e))

let parse_source req =
  match (Json.str_member "source" req, Json.str_member "benchmark" req) with
  | Some src, None -> ("<request>", src)
  | None, Some name -> (
      match B.find name with
      | Some b -> (name, b.B.source)
      | None -> raise (Bad_request ("no such built-in benchmark: " ^ name)))
  | Some _, Some _ -> raise (Bad_request "give either \"source\" or \"benchmark\", not both")
  | None, None -> raise (Bad_request "compile request needs \"source\" or \"benchmark\"")

(* --- compile ----------------------------------------------------------- *)

let cell_key ~src ~config ~want_run =
  Memo.key
    [ cache_version; src; Config.cache_key config; (if want_run then "run" else "norun") ]

(* The pure compile: lower, optimize, optionally interpret. No memo —
   the tier-upgrade path computes through this directly and hot-swaps
   the result over the floor cell it must not consult. *)
let compute_cell ~src ~config ~want_run =
  let ir = Ir.Lower.of_source src in
  let opt, stats = Core.Optimizer.optimize ~config ir in
  let r_run =
    if want_run then
      let o = Run.run opt in
      Some
        {
          ro_checks = o.Run.checks;
          ro_instrs = o.Run.instrs;
          ro_trap = o.Run.trap;
          ro_error = o.Run.error;
        }
    else None
  in
  {
    r_incidents =
      List.map
        (fun (i : Core.Optimizer.incident) ->
          ( i.Core.Optimizer.inc_pass,
            Core.Optimizer.cause_name i.Core.Optimizer.inc_cause,
            i.Core.Optimizer.inc_detail ))
        stats.Core.Optimizer.incidents;
    r_faults_injected = stats.Core.Optimizer.faults_injected;
    r_checks_before = stats.Core.Optimizer.static_checks_before;
    r_checks_after = stats.Core.Optimizer.static_checks_after;
    r_validated = Core.Optimizer.validated stats;
    r_run;
    r_floor = false;
  }

let compile_cell t ~src ~config ~want_run =
  let key = cell_key ~src ~config ~want_run in
  let computed = ref false in
  let cell =
    Memo.find_or_compute t.cache ~key @@ fun () ->
    computed := true;
    compute_cell ~src ~config ~want_run
  in
  (cell, not !computed)

let svc_error ~code detail =
  Json.Obj
    [
      ("status", Json.Str "error");
      ("code", Json.Str code);
      ("retryable", Json.Bool false);
      ("detail", Json.Str detail);
    ]

let tier_mode req =
  match Json.str_member "tier" req with
  | None | Some "auto" -> `Auto
  | Some "sync" -> `Sync
  | Some s -> raise (Bad_request ("unknown tier mode " ^ s ^ " (want auto|sync)"))

(* Dedup horizon for in-flight upgrades: an [upgrading] entry this old
   is presumed lost (its background job crashed terminally before the
   handler could clean up) and a fresh submission replaces it. *)
let upgrade_stale_s = 120.0

(* Enqueue the background upgrade for a floor cell, at most one in
   flight per cache key. The payload round-trips through the same
   request parsers, so the background job re-derives exactly the cell
   the live request served the floor for. A refused submission (drain,
   lane at capacity, memory pressure) just forgets the reservation:
   the floor keeps serving and a later cold request resubmits. *)
(* The protocol spelling [parse_impl] accepts (Universe.mode_name is
   the human/report one). *)
let impl_wire = function
  | Universe.All_implications -> "all"
  | Universe.No_implications -> "none"
  | Universe.Cross_family_only -> "cross"

let maybe_submit_upgrade t ~key ~name ~src ~scheme ~kind ~impl ~verify ~oracle
    ~fault ~want_run =
  match t.submit_bg with
  | None -> ()
  | Some submit ->
      let now = Mclock.elapsed_s t.clock in
      let fresh =
        counted t (fun () ->
            let stale =
              match Hashtbl.find_opt t.upgrading key with
              | None -> true
              | Some since -> now -. since > upgrade_stale_s
            in
            if stale then begin
              Hashtbl.replace t.upgrading key now;
              t.upgrades_submitted <- t.upgrades_submitted + 1;
              true
            end
            else false)
      in
      if fresh then begin
        let payload =
          Json.Obj
            ([ ("op", Json.Str "upgrade") ]
            @ (if name = "<request>" then [ ("source", Json.Str src) ]
               else [ ("benchmark", Json.Str name) ])
            @ [
                ("scheme", Json.Str (Config.scheme_name scheme));
                ("kind", Json.Str (Config.kind_name kind));
                ("impl", Json.Str (impl_wire impl));
                ("verify", Json.Bool verify);
                ("oracle", Json.Bool oracle);
                ("fault", Json.Str (Config.fault_name fault));
                ("run", Json.Bool want_run);
              ])
        in
        if not (submit payload) then
          counted t (fun () -> Hashtbl.remove t.upgrading key)
      end

let handle_compile t req =
  let name, src = parse_source req in
  let scheme = parse_scheme req in
  let kind = parse_kind req in
  let impl = parse_impl req in
  let verify = Option.value ~default:true (Json.bool_member "verify" req) in
  let oracle = Option.value ~default:false (Json.bool_member "oracle" req) in
  let fault = parse_fault req in
  let want_run = Option.value ~default:false (Json.bool_member "run" req) in
  let mode = tier_mode req in
  let sname = Config.scheme_name scheme in
  let now () = Mclock.elapsed_s t.clock in
  let t0 = Mclock.counter () in
  (* Shared response assembly + accounting for both tiers and modes. *)
  let respond ~used_scheme ~tier ~fallback ~cached (cell : compiled) =
    let ok = cell.r_incidents = [] && cell.r_validated <> Some false in
    counted t (fun () ->
        t.compiles <- t.compiles + 1;
        if tier = "floor" then t.floor_served <- t.floor_served + 1
        else t.optimized_served <- t.optimized_served + 1;
        if fallback then t.fallbacks <- t.fallbacks + 1;
        if not ok then t.degraded <- t.degraded + 1;
        t.incidents_total <-
          t.incidents_total
          + List.length cell.r_incidents
          + (if cell.r_validated = Some false then 1 else 0));
    save_state t;
    let degraded = (not ok) || fallback in
    let validated_json =
      match cell.r_validated with None -> Json.Null | Some b -> Json.Bool b
    in
    Json.Obj
      ([
         ("status", Json.Str (if degraded then "degraded" else "ok"));
         ("code", Json.Int (if degraded then 4 else 0));
         ("op", Json.Str "compile");
         ("program", Json.Str name);
         ("scheme_requested", Json.Str sname);
         ("scheme_used", Json.Str (Config.scheme_name used_scheme));
         ("tier", Json.Str tier);
         ("kind", Json.Str (Config.kind_name kind));
         ("impl", Json.Str (Universe.mode_name impl));
         ("verify", Json.Bool verify);
         ("oracle", Json.Bool oracle);
         ("validated", validated_json);
         ("fault", Json.Str (Config.fault_name fault));
         ("breaker", Json.Str (Breaker.state_name (Breaker.state t.breaker sname)));
         ("fallback", Json.Bool fallback);
         ("checks_before", Json.Int cell.r_checks_before);
         ("checks_after", Json.Int cell.r_checks_after);
         ("faults_injected", Json.Int cell.r_faults_injected);
         (* every degraded response carries at least one incident: a
            breaker fallback explains itself as a service-level record *)
         ( "incidents",
           Json.List
             ((if fallback then
                 [
                   Json.Obj
                     [
                       ("pass", Json.Str "service");
                       ("cause", Json.Str "breaker");
                       ( "detail",
                         Json.Str
                           (Printf.sprintf
                              "scheme %s breaker open; compiled at the NI floor"
                              sname) );
                     ];
                 ]
               else [])
             @ (if cell.r_validated = Some false then
                  [
                    Json.Obj
                      [
                        ("pass", Json.Str "validate");
                        ("cause", Json.Str "validation");
                        ( "detail",
                          Json.Str
                            "translation validation refused the certificate: some \
                             reference check site is no longer provably covered" );
                      ];
                  ]
                else [])
             @ List.map
                 (fun (pass, cause, detail) ->
                   Json.Obj
                     [
                       ("pass", Json.Str pass);
                       ("cause", Json.Str cause);
                       ("detail", Json.Str detail);
                     ])
                 cell.r_incidents) );
         ("cached", Json.Bool cached);
         ("elapsed_ms", Json.Float (1000.0 *. Mclock.elapsed_s t0));
       ]
      @
      match cell.r_run with
      | None -> []
      | Some ro ->
          [
            ( "run",
              Json.Obj
                [
                  ("checks", Json.Int ro.ro_checks);
                  ("instrs", Json.Int ro.ro_instrs);
                  ( "trap",
                    match ro.ro_trap with None -> Json.Null | Some s -> Json.Str s );
                  ( "error",
                    match ro.ro_error with None -> Json.Null | Some s -> Json.Str s );
                ] );
          ])
  in
  if mode = `Sync || scheme = Config.NI || Option.is_none t.submit_bg then begin
    (* Synchronous mode: compile the requested scheme on the live
       request — the pre-tier semantics, still pinned by the CLI smoke,
       the latency bench and the breaker tests. NI requests are always
       synchronous (the floor cannot be upgraded), and so is every
       request when no background lane is wired (tests, bench targets
       that embed the handler without a server). *)
    (* The NI floor bypasses the breaker: it IS the fallback. *)
    let decision =
      if scheme = Config.NI then `Allow else Breaker.decide t.breaker ~now:(now ()) sname
    in
    let fallback = decision = `Fallback in
    let used_scheme = if fallback then Config.NI else scheme in
    let config = Config.make ~scheme:used_scheme ~kind ~impl ~verify ~oracle ?fault () in
    (* Only compiles at the REQUESTED scheme feed its breaker. *)
    let record_attempt ok =
      if (not fallback) && scheme <> Config.NI then
        Breaker.record t.breaker ~now:(now ()) sname ~ok
    in
    let cell, cached =
      match compile_cell t ~src ~config ~want_run with
      | result -> result
      | exception ((Failure _ | Ir.Lower.Lower_error _ | Ir.Verify.Invalid_ir _) as e)
        ->
          (* the program's fault, not the scheme's: never feeds the breaker *)
          raise e
      | exception e ->
          (* A deadline, fuel exhaustion or internal error aborted the
             attempt before it could produce incidents. The breaker must
             still hear about it — in particular a `Probe that dies here
             would otherwise leave the key half-open with no recorded
             outcome. *)
          record_attempt false;
          save_state t;
          raise e
    in
    (* A refused translation-validation certificate is a scheme failure
       exactly like a rolled-back pass: the optimizer produced output it
       could not prove safe, so the breaker hears about it. *)
    let ok = cell.r_incidents = [] && cell.r_validated <> Some false in
    record_attempt ok;
    respond ~used_scheme
      ~tier:(if fallback then "floor" else "optimized")
      ~fallback ~cached cell
  end
  else begin
    (* Tiered path (the daemon's default): answer from the request's
       cell if it is already optimized; otherwise serve the NI floor —
       computed through the ordinary NI cell, so a prewarmed floor is a
       cache hit — and enqueue the background upgrade that will
       hot-swap the optimized artifact into this key. The live request
       never compiles at the requested scheme and never feeds its
       breaker; upgrade outcomes do that from the background lane. *)
    let config_req = Config.make ~scheme ~kind ~impl ~verify ~oracle ?fault () in
    let key_req = cell_key ~src ~config:config_req ~want_run in
    let computed = ref false in
    let cell =
      Memo.find_or_compute t.cache ~key:key_req (fun () ->
          computed := true;
          let config_ni =
            Config.make ~scheme:Config.NI ~kind ~impl ~verify ~oracle ?fault ()
          in
          let fc, _ = compile_cell t ~src ~config:config_ni ~want_run in
          { fc with r_floor = true })
    in
    if cell.r_floor then
      maybe_submit_upgrade t ~key:key_req ~name ~src ~scheme ~kind ~impl ~verify
        ~oracle ~fault ~want_run;
    (* An open breaker explains a floor that will not upgrade soon; a
       cached optimized artifact is proven work and serves regardless. *)
    let fallback =
      cell.r_floor && Breaker.state t.breaker sname <> Breaker.Closed
    in
    respond
      ~used_scheme:(if cell.r_floor then Config.NI else scheme)
      ~tier:(if cell.r_floor then "floor" else "optimized")
      ~fallback ~cached:(not !computed) cell
  end

(* The background lane retries on our ["retry_after_s"] responses and on
   exceptions; cap the total runs per job here too so a breaker that
   stays open cannot keep a job circulating forever. *)
let upgrade_max_attempts = 6

let upgrade_backoff =
  {
    Retry.default with
    max_attempts = upgrade_max_attempts;
    base_delay_s = 0.05;
    max_delay_s = 2.0;
  }

(* Background half of the tier lifecycle: compile the requested scheme
   off the live path and hot-swap the optimized artifact over the floor
   entry. This is the ONLY place tiered traffic feeds a scheme's
   breaker — a contained failure domain: a budget abort or a degraded
   result here records against the scheme and backs off (or gives up),
   while the floor entry keeps serving untouched. *)
let handle_upgrade t req =
  let name, src = parse_source req in
  let scheme = parse_scheme req in
  let kind = parse_kind req in
  let impl = parse_impl req in
  let verify = Option.value ~default:true (Json.bool_member "verify" req) in
  let oracle = Option.value ~default:false (Json.bool_member "oracle" req) in
  let fault = parse_fault req in
  let want_run = Option.value ~default:false (Json.bool_member "run" req) in
  let attempt = Option.value ~default:0 (Json.int_member "bg_attempt" req) in
  let sname = Config.scheme_name scheme in
  let now () = Mclock.elapsed_s t.clock in
  let config_req = Config.make ~scheme ~kind ~impl ~verify ~oracle ?fault () in
  let key = cell_key ~src ~config:config_req ~want_run in
  (* Terminal outcome: the job leaves the pending set. *)
  let finish outcome extra =
    counted t (fun () -> Hashtbl.remove t.upgrading key);
    save_state t;
    Json.Obj
      ([
         ("op", Json.Str "upgrade");
         ("upgrade", Json.Str outcome);
         ("program", Json.Str name);
         ("scheme", Json.Str sname);
       ]
      @ extra)
  in
  let drop reason =
    counted t (fun () -> t.upgrades_dropped <- t.upgrades_dropped + 1);
    finish "dropped" [ ("reason", Json.Str reason) ]
  in
  (* Non-terminal: keep the pending reservation, ask the lane to retry. *)
  let defer after =
    Json.Obj
      [
        ("op", Json.Str "upgrade");
        ("upgrade", Json.Str "deferred");
        ("program", Json.Str name);
        ("scheme", Json.Str sname);
        ("retry_after_s", Json.Float after);
      ]
  in
  if scheme = Config.NI then finish "noop" []
  else
    match Memo.find_opt t.cache ~key with
    | Some c when not c.r_floor ->
        (* already optimized — a replayed duplicate or a racing
           submission got here first; nothing to do *)
        finish "noop" []
    | _ -> (
        match Breaker.decide t.breaker ~now:(now ()) sname with
        | `Fallback ->
            if attempt + 1 >= upgrade_max_attempts then
              drop (Printf.sprintf "scheme %s breaker open" sname)
            else defer (Float.max 0.05 t.cooldown_s)
        | `Allow | `Probe -> (
            match compute_cell ~src ~config:config_req ~want_run with
            | exception
                ((Failure _ | Ir.Lower.Lower_error _ | Ir.Verify.Invalid_ir _) as e)
              ->
                (* the program's fault, not the scheme's (and the floor
                   compiled the same source): never feeds the breaker *)
                drop (Printexc.to_string e)
            | exception e ->
                (* A deadline, fuel, memory abort or internal error: the
                   breaker must hear about it (a `Probe dying here would
                   otherwise wedge the key half-open), then retry with
                   backoff — transient pressure may clear. *)
                Breaker.record t.breaker ~now:(now ()) sname ~ok:false;
                if attempt + 1 >= upgrade_max_attempts then
                  drop (Printexc.to_string e)
                else begin
                  save_state t;
                  defer
                    (Retry.delay_s upgrade_backoff ~seed:(Hashtbl.hash key)
                       ~attempt:(attempt + 1))
                end
            | cell ->
                let ok = cell.r_incidents = [] && cell.r_validated <> Some false in
                Breaker.record t.breaker ~now:(now ()) sname ~ok;
                counted t (fun () ->
                    t.incidents_total <-
                      t.incidents_total
                      + List.length cell.r_incidents
                      + (if cell.r_validated = Some false then 1 else 0));
                if ok then begin
                  (* hot-swap: the floor entry is promoted in place; a
                     racing reader sees floor or optimized, never a gap *)
                  Memo.replace t.cache ~key cell;
                  counted t (fun () -> t.upgrades_done <- t.upgrades_done + 1);
                  finish "done"
                    [
                      ("checks_after", Json.Int cell.r_checks_after);
                      ("cache_key", Json.Str key);
                    ]
                end
                else begin
                  (* A degraded artifact never replaces a clean floor:
                     the tier contract is "fast but unoptimized", not
                     "optimized but incident-laden" — and compiles are
                     deterministic, so a retry cannot change the
                     outcome. Terminal; the breaker heard the failure. *)
                  counted t (fun () ->
                      t.upgrades_failed <- t.upgrades_failed + 1);
                  finish "failed"
                    [
                      ("incidents", Json.Int (List.length cell.r_incidents));
                      ( "validated",
                        match cell.r_validated with
                        | None -> Json.Null
                        | Some b -> Json.Bool b );
                    ]
                end))

(* Deterministic stand-in for a hung compile: spins on the ambient tick
   until the request's deadline or fuel budget fires (the server maps
   either to a "deadline" response). Its own local budget bounds even a
   server configured with no deadline and no request fuel. *)
let handle_burn () =
  Guard.with_fuel (Guard.fuel ~what:"burn" ~budget:200_000_000) (fun () ->
      let rec spin () =
        Guard.tick_ambient ();
        spin ()
      in
      spin ())

let handle t req =
  match Json.str_member "op" req with
  | Some "compile" -> (
      try handle_compile t req with
      | Bad_request msg -> svc_error ~code:"bad-request" msg
      | Failure msg | Ir.Lower.Lower_error msg -> svc_error ~code:"invalid-program" msg
      | Ir.Verify.Invalid_ir msg -> svc_error ~code:"invalid-program" msg)
  | Some "upgrade" -> (
      try handle_upgrade t req with
      | Bad_request msg -> svc_error ~code:"bad-request" msg
      | Failure msg | Ir.Lower.Lower_error msg -> svc_error ~code:"invalid-program" msg
      | Ir.Verify.Invalid_ir msg -> svc_error ~code:"invalid-program" msg)
  | Some "burn" -> handle_burn ()
  | Some op -> svc_error ~code:"bad-op" ("unknown op " ^ op)
  | None -> svc_error ~code:"bad-op" "request has no \"op\" field"

let status_extra t () =
  let ( compiles,
        degraded,
        fallbacks,
        incidents_total,
        floor_served,
        optimized_served,
        up_submitted,
        up_done,
        up_failed,
        up_dropped,
        up_pending,
        up_oldest ) =
    counted t (fun () ->
        let now = Mclock.elapsed_s t.clock in
        let pending = Hashtbl.length t.upgrading in
        let oldest =
          Hashtbl.fold
            (fun _ since acc -> Float.max acc (now -. since))
            t.upgrading 0.0
        in
        ( t.compiles,
          t.degraded,
          t.fallbacks,
          t.incidents_total,
          t.floor_served,
          t.optimized_served,
          t.upgrades_submitted,
          t.upgrades_done,
          t.upgrades_failed,
          t.upgrades_dropped,
          pending,
          oldest ))
  in
  let cache = Memo.stats t.cache in
  (match t.shard_name with
  | None -> []
  | Some n -> [ ("shard", Json.Str n) ])
  @ [
    ("compiles", Json.Int compiles);
    ("degraded", Json.Int degraded);
    ("fallbacks", Json.Int fallbacks);
    ("incidents_total", Json.Int incidents_total);
    ( "tiers",
      Json.Obj
        [
          ("floor", Json.Int floor_served);
          ("optimized", Json.Int optimized_served);
        ] );
    ( "upgrades",
      Json.Obj
        [
          ("submitted", Json.Int up_submitted);
          ("pending", Json.Int up_pending);
          ("oldest_pending_age_s", Json.Float up_oldest);
          ("done", Json.Int up_done);
          ("failed", Json.Int up_failed);
          ("dropped", Json.Int up_dropped);
        ] );
    ("breaker_trips", Json.Int (Breaker.trips t.breaker));
    ( "breakers",
      Json.List
        (List.map
           (fun (key, st, failures) ->
             Json.Obj
               [
                 ("scheme", Json.Str key);
                 ("state", Json.Str (Breaker.state_name st));
                 ("consecutive_failures", Json.Int failures);
               ])
           (Breaker.snapshot t.breaker)) );
    ( "cache",
      Json.Obj
        [
          ("hits", Json.Int cache.Memo.hits);
          ("disk_hits", Json.Int cache.Memo.disk_hits);
          ("misses", Json.Int cache.Memo.misses);
          ("quarantined", Json.Int cache.Memo.quarantined);
          ("swaps", Json.Int cache.Memo.swaps);
        ] );
  ]

let handler t : Server.handler =
  { Server.handle = handle t; status_extra = status_extra t }

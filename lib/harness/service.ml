(* The compile service's request handler: what a request MEANS, layered
   on Nascent_support.Server's transport (which owns sockets, admission
   control, deadlines and drain).

   Operations:
   - "compile": lower + optimize (+ optionally interpret) one program —
     a MiniF source string or a built-in benchmark name — under a
     requested (scheme, kind, impl, verify, oracle, fault) configuration
     — "oracle": true additionally runs the Fourier-Motzkin elimination
     sweep and the per-compile translation validator, whose verdict is
     returned as "validated" (a refused certificate degrades the
     response and feeds the breaker like a rolled-back pass).
     Results are served through a content-addressed Memo cache (same
     key discipline as the experiment harness: source + full
     Config.cache_key), so a warm daemon answers repeated requests
     without re-optimizing.
   - "burn": spin on the ambient tick until a budget fires — the
     deterministic stand-in for a hung compile, used by the CI smoke
     and the tests to exercise the deadline path end to end.

   Graceful degradation: a per-scheme circuit breaker. Every compile at
   the requested scheme records success (no incidents) or failure (at
   least one rolled-back pass); after [breaker_threshold] consecutive
   failures the scheme trips and requests for it are routed to the
   always-safe NI floor — still a correct, fully checked compile, per
   the fail-safe pipeline's contract — until a cooldown probe at the
   real scheme succeeds. A compile aborted by its deadline or fuel
   budget records a failure too (so a lost probe cannot wedge the
   breaker half-open); invalid-program errors record nothing — they
   are the input's fault. Fallback compiles never feed the breaker:
   they say nothing about the failing scheme's health. NI itself is
   the floor and bypasses the breaker entirely. *)

module B = Nascent_benchmarks.Suite
module Ir = Nascent_ir
module Core = Nascent_core
module Config = Core.Config
module Universe = Nascent_checks.Universe
module Run = Nascent_interp.Run
module Json = Nascent_support.Json
module Server = Nascent_support.Server
module Breaker = Nascent_support.Breaker
module Memo = Nascent_support.Memo
module Guard = Nascent_support.Guard
module Mclock = Nascent_support.Mclock

(* Everything deterministic about a compile, in cacheable form. *)
type compiled = {
  r_incidents : (string * string * string) list; (* pass, cause, detail *)
  r_faults_injected : int;
  r_checks_before : int;
  r_checks_after : int;
  r_validated : bool option;
      (* [--oracle] requests: did the per-compile translation validator
         certify every reference check site? [None] = not requested *)
  r_run : run_outcome option;
}

and run_outcome = {
  ro_checks : int;
  ro_instrs : int;
  ro_trap : string option;
  ro_error : string option;
}

type t = {
  breaker : Breaker.t;
  clock : Mclock.counter; (* breaker time base: uptime seconds *)
  cache : compiled Memo.t;
  lock : Mutex.t; (* guards the counters below *)
  mutable compiles : int;
  mutable degraded : int; (* responses carrying incidents *)
  mutable fallbacks : int; (* breaker-routed to the NI floor *)
  mutable incidents_total : int;
  state_path : string option; (* snapshot file for restart survival *)
}

(* v2: compiled cells gained [r_validated] (the --oracle certificate). *)
let cache_version = "service-v2"

let counted t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- state snapshot ----------------------------------------------------

   Breaker states and service counters survive a daemon restart: a
   scheme that was tripped keeps being routed to the NI floor by its
   successor until a cooldown probe (clock restarted at load) succeeds.
   The snapshot is a small JSON file written atomically after every
   handled compile; written-then-renamed means a kill -9 leaves either
   the previous snapshot or the new one, never a torn file — and a
   snapshot that is missing or fails to parse just means starting
   fresh, which is always safe (breakers re-learn). *)

let snapshot_json t =
  let compiles, degraded, fallbacks, incidents_total =
    counted t (fun () -> (t.compiles, t.degraded, t.fallbacks, t.incidents_total))
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("compiles", Json.Int compiles);
      ("degraded", Json.Int degraded);
      ("fallbacks", Json.Int fallbacks);
      ("incidents_total", Json.Int incidents_total);
      ( "breakers",
        Json.List
          (List.map
             (fun (key, st, failures) ->
               Json.Obj
                 [
                   ("scheme", Json.Str key);
                   ("state", Json.Str (Breaker.state_name st));
                   ("failures", Json.Int failures);
                 ])
             (Breaker.snapshot t.breaker)) );
    ]

let save_state t =
  match t.state_path with
  | None -> ()
  | Some path -> (
      try Guard.write_atomic ~path (Json.to_string (snapshot_json t) ^ "\n")
      with Sys_error _ | Unix.Unix_error _ -> ())

let load_state t path =
  match
    if Sys.file_exists path then
      try Some (In_channel.with_open_bin path In_channel.input_all)
      with Sys_error _ -> None
    else None
  with
  | None -> ()
  | Some raw -> (
      match Json.parse raw with
      | Error _ -> () (* torn or foreign file: start fresh *)
      | Ok j ->
          let geti name =
            match Json.member name j with Some (Json.Int n) when n >= 0 -> n | _ -> 0
          in
          counted t (fun () ->
              t.compiles <- geti "compiles";
              t.degraded <- geti "degraded";
              t.fallbacks <- geti "fallbacks";
              t.incidents_total <- geti "incidents_total");
          let entries =
            match Json.member "breakers" j with
            | Some (Json.List l) ->
                List.filter_map
                  (fun b ->
                    match
                      ( Json.str_member "scheme" b,
                        Option.bind (Json.str_member "state" b) Breaker.state_of_name,
                        Json.member "failures" b )
                    with
                    | Some key, Some st, Some (Json.Int f) -> Some (key, st, f)
                    | _ -> None)
                  l
            | _ -> []
          in
          Breaker.restore t.breaker ~now:(Mclock.elapsed_s t.clock) entries)

let create ?(breaker_threshold = 3) ?(breaker_cooldown_s = 2.0) ?state_path () =
  let t =
    {
      breaker = Breaker.create ~threshold:breaker_threshold ~cooldown_s:breaker_cooldown_s ();
      clock = Mclock.counter ();
      cache = Memo.create ~name:"service" ();
      lock = Mutex.create ();
      compiles = 0;
      degraded = 0;
      fallbacks = 0;
      incidents_total = 0;
      state_path;
    }
  in
  Option.iter (load_state t) state_path;
  t

exception Bad_request of string

(* --- request parsing --------------------------------------------------- *)

let parse_scheme req =
  match Json.str_member "scheme" req with
  | None -> Config.LLS
  | Some s -> (
      match Config.scheme_of_name s with
      | Some sc -> sc
      | None -> raise (Bad_request ("unknown scheme " ^ s)))

let parse_kind req =
  match Json.str_member "kind" req with
  | None -> Config.PRX
  | Some ("prx" | "PRX") -> Config.PRX
  | Some ("inx" | "INX") -> Config.INX
  | Some s -> raise (Bad_request ("unknown check kind " ^ s))

let parse_impl req =
  match Json.str_member "impl" req with
  | None -> Universe.All_implications
  | Some "all" -> Universe.All_implications
  | Some "none" -> Universe.No_implications
  | Some "cross" -> Universe.Cross_family_only
  | Some s -> raise (Bad_request ("unknown implication mode " ^ s))

let parse_fault req =
  match Json.str_member "fault" req with
  | None | Some "none" -> None
  | Some s -> (
      match Ir.Mutate.parse_request s with
      | Ok (Ir.Mutate.Single spec) -> Some spec
      | Ok Ir.Mutate.Smoke -> raise (Bad_request "fault \"smoke\" is CLI-only")
      | Error e -> raise (Bad_request e))

let parse_source req =
  match (Json.str_member "source" req, Json.str_member "benchmark" req) with
  | Some src, None -> ("<request>", src)
  | None, Some name -> (
      match B.find name with
      | Some b -> (name, b.B.source)
      | None -> raise (Bad_request ("no such built-in benchmark: " ^ name)))
  | Some _, Some _ -> raise (Bad_request "give either \"source\" or \"benchmark\", not both")
  | None, None -> raise (Bad_request "compile request needs \"source\" or \"benchmark\"")

(* --- compile ----------------------------------------------------------- *)

let compile_cell t ~src ~config ~want_run =
  let key =
    Memo.key
      [ cache_version; src; Config.cache_key config; (if want_run then "run" else "norun") ]
  in
  let computed = ref false in
  let cell =
    Memo.find_or_compute t.cache ~key @@ fun () ->
    computed := true;
    let ir = Ir.Lower.of_source src in
    let opt, stats = Core.Optimizer.optimize ~config ir in
    let r_run =
      if want_run then
        let o = Run.run opt in
        Some
          {
            ro_checks = o.Run.checks;
            ro_instrs = o.Run.instrs;
            ro_trap = o.Run.trap;
            ro_error = o.Run.error;
          }
      else None
    in
    {
      r_incidents =
        List.map
          (fun (i : Core.Optimizer.incident) ->
            ( i.Core.Optimizer.inc_pass,
              Core.Optimizer.cause_name i.Core.Optimizer.inc_cause,
              i.Core.Optimizer.inc_detail ))
          stats.Core.Optimizer.incidents;
      r_faults_injected = stats.Core.Optimizer.faults_injected;
      r_checks_before = stats.Core.Optimizer.static_checks_before;
      r_checks_after = stats.Core.Optimizer.static_checks_after;
      r_validated = Core.Optimizer.validated stats;
      r_run;
    }
  in
  (cell, not !computed)

let svc_error ~code detail =
  Json.Obj
    [
      ("status", Json.Str "error");
      ("code", Json.Str code);
      ("retryable", Json.Bool false);
      ("detail", Json.Str detail);
    ]

let handle_compile t req =
  let name, src = parse_source req in
  let scheme = parse_scheme req in
  let kind = parse_kind req in
  let impl = parse_impl req in
  let verify = Option.value ~default:true (Json.bool_member "verify" req) in
  let oracle = Option.value ~default:false (Json.bool_member "oracle" req) in
  let fault = parse_fault req in
  let want_run = Option.value ~default:false (Json.bool_member "run" req) in
  let sname = Config.scheme_name scheme in
  let now () = Mclock.elapsed_s t.clock in
  (* The NI floor bypasses the breaker: it IS the fallback. *)
  let decision = if scheme = Config.NI then `Allow else Breaker.decide t.breaker ~now:(now ()) sname in
  let fallback = decision = `Fallback in
  let used_scheme = if fallback then Config.NI else scheme in
  let config = Config.make ~scheme:used_scheme ~kind ~impl ~verify ~oracle ?fault () in
  let t0 = Mclock.counter () in
  (* Only compiles at the REQUESTED scheme feed its breaker. *)
  let record_attempt ok =
    if (not fallback) && scheme <> Config.NI then
      Breaker.record t.breaker ~now:(now ()) sname ~ok
  in
  let cell, cached =
    match compile_cell t ~src ~config ~want_run with
    | result -> result
    | exception ((Failure _ | Ir.Lower.Lower_error _ | Ir.Verify.Invalid_ir _) as e)
      ->
        (* the program's fault, not the scheme's: never feeds the breaker *)
        raise e
    | exception e ->
        (* A deadline, fuel exhaustion or internal error aborted the
           attempt before it could produce incidents. The breaker must
           still hear about it — in particular a `Probe that dies here
           would otherwise leave the key half-open with no recorded
           outcome. *)
        record_attempt false;
        save_state t;
        raise e
  in
  (* A refused translation-validation certificate is a scheme failure
     exactly like a rolled-back pass: the optimizer produced output it
     could not prove safe, so the breaker hears about it. *)
  let ok = cell.r_incidents = [] && cell.r_validated <> Some false in
  record_attempt ok;
  counted t (fun () ->
      t.compiles <- t.compiles + 1;
      if fallback then t.fallbacks <- t.fallbacks + 1;
      if not ok then t.degraded <- t.degraded + 1;
      t.incidents_total <-
        t.incidents_total
        + List.length cell.r_incidents
        + (if cell.r_validated = Some false then 1 else 0));
  save_state t;
  let degraded = (not ok) || fallback in
  let validated_json =
    match cell.r_validated with None -> Json.Null | Some b -> Json.Bool b
  in
  Json.Obj
    ([
       ("status", Json.Str (if degraded then "degraded" else "ok"));
       ("code", Json.Int (if degraded then 4 else 0));
       ("op", Json.Str "compile");
       ("program", Json.Str name);
       ("scheme_requested", Json.Str sname);
       ("scheme_used", Json.Str (Config.scheme_name used_scheme));
       ("kind", Json.Str (Config.kind_name kind));
       ("impl", Json.Str (Universe.mode_name impl));
       ("verify", Json.Bool verify);
       ("oracle", Json.Bool oracle);
       ("validated", validated_json);
       ("fault", Json.Str (Config.fault_name fault));
       ("breaker", Json.Str (Breaker.state_name (Breaker.state t.breaker sname)));
       ("fallback", Json.Bool fallback);
       ("checks_before", Json.Int cell.r_checks_before);
       ("checks_after", Json.Int cell.r_checks_after);
       ("faults_injected", Json.Int cell.r_faults_injected);
       (* every degraded response carries at least one incident: a
          breaker fallback explains itself as a service-level record *)
       ( "incidents",
         Json.List
           ((if fallback then
               [
                 Json.Obj
                   [
                     ("pass", Json.Str "service");
                     ("cause", Json.Str "breaker");
                     ( "detail",
                       Json.Str
                         (Printf.sprintf
                            "scheme %s breaker open; compiled at the NI floor"
                            sname) );
                   ];
               ]
             else [])
           @ (if cell.r_validated = Some false then
                [
                  Json.Obj
                    [
                      ("pass", Json.Str "validate");
                      ("cause", Json.Str "validation");
                      ( "detail",
                        Json.Str
                          "translation validation refused the certificate: some \
                           reference check site is no longer provably covered" );
                    ];
                ]
              else [])
           @ List.map
               (fun (pass, cause, detail) ->
                 Json.Obj
                   [
                     ("pass", Json.Str pass);
                     ("cause", Json.Str cause);
                     ("detail", Json.Str detail);
                   ])
               cell.r_incidents) );
       ("cached", Json.Bool cached);
       ("elapsed_ms", Json.Float (1000.0 *. Mclock.elapsed_s t0));
     ]
    @
    match cell.r_run with
    | None -> []
    | Some ro ->
        [
          ( "run",
            Json.Obj
              [
                ("checks", Json.Int ro.ro_checks);
                ("instrs", Json.Int ro.ro_instrs);
                ( "trap",
                  match ro.ro_trap with None -> Json.Null | Some s -> Json.Str s );
                ( "error",
                  match ro.ro_error with None -> Json.Null | Some s -> Json.Str s );
              ] );
        ])

(* Deterministic stand-in for a hung compile: spins on the ambient tick
   until the request's deadline or fuel budget fires (the server maps
   either to a "deadline" response). Its own local budget bounds even a
   server configured with no deadline and no request fuel. *)
let handle_burn () =
  Guard.with_fuel (Guard.fuel ~what:"burn" ~budget:200_000_000) (fun () ->
      let rec spin () =
        Guard.tick_ambient ();
        spin ()
      in
      spin ())

let handle t req =
  match Json.str_member "op" req with
  | Some "compile" -> (
      try handle_compile t req with
      | Bad_request msg -> svc_error ~code:"bad-request" msg
      | Failure msg | Ir.Lower.Lower_error msg -> svc_error ~code:"invalid-program" msg
      | Ir.Verify.Invalid_ir msg -> svc_error ~code:"invalid-program" msg)
  | Some "burn" -> handle_burn ()
  | Some op -> svc_error ~code:"bad-op" ("unknown op " ^ op)
  | None -> svc_error ~code:"bad-op" "request has no \"op\" field"

let status_extra t () =
  let compiles, degraded, fallbacks, incidents_total =
    counted t (fun () -> (t.compiles, t.degraded, t.fallbacks, t.incidents_total))
  in
  let cache = Memo.stats t.cache in
  [
    ("compiles", Json.Int compiles);
    ("degraded", Json.Int degraded);
    ("fallbacks", Json.Int fallbacks);
    ("incidents_total", Json.Int incidents_total);
    ("breaker_trips", Json.Int (Breaker.trips t.breaker));
    ( "breakers",
      Json.List
        (List.map
           (fun (key, st, failures) ->
             Json.Obj
               [
                 ("scheme", Json.Str key);
                 ("state", Json.Str (Breaker.state_name st));
                 ("consecutive_failures", Json.Int failures);
               ])
           (Breaker.snapshot t.breaker)) );
    ( "cache",
      Json.Obj
        [
          ("hits", Json.Int cache.Memo.hits);
          ("disk_hits", Json.Int cache.Memo.disk_hits);
          ("misses", Json.Int cache.Memo.misses);
          ("quarantined", Json.Int cache.Memo.quarantined);
        ] );
  ]

let handler t : Server.handler =
  { Server.handle = handle t; status_extra = status_extra t }

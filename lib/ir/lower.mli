(** AST -> IR lowering with naive range-check insertion.

    Every array access gets a lower and an upper canonical check per
    dimension, emitted immediately before the access — the
    "unoptimized range checking" measured in Table 1. Counted loops are
    lowered with an explicit preheader, bounds captured once in fresh
    temps (Fortran's once-only trip evaluation); while loops get a
    preheader directly preceding their test. Symbolic array bounds are
    evaluated into entry temps, hash-consed per bound expression so
    same-extent arrays share one check family. *)

exception Lower_error of string

val lower_unit : Nascent_frontend.Sema.unit_env -> Func.t
val lower_program : Nascent_frontend.Sema.env -> Program.t

val of_source : string -> Program.t
(** Parse, type-check and lower; raises on any frontend error
    ([Failure]) or lowering error ({!Lower_error}). *)

(* Seeded fault injection for the fail-safe optimizer pipeline.

   Each mutation class deliberately corrupts a pass's output in a way
   the inter-pass contract (the {!Verify} differential rules, or the
   per-pass fuel budget) must catch; the optimizer then proves the
   recovery path by rolling the pass back and continuing. The classes
   map onto the verifier's failure domains:

   - [Drop_check]    removes a check            -> count preservation
   - [Weaken_check]  raises a check constant    -> strengthening rule
   - [Break_edge]    dangles a terminator       -> structural CFG rule
   - [Unsafe_insert] re-inserts a check above a
     definition of one of its symbols           -> anticipatability
   - [Hang_fixpoint] spins on the ambient fuel  -> per-pass budget
   - [Unsound_eliminate] deletes a live check   -> translation validator

   [Unsound_eliminate] is deliberately invisible to every differential
   rule: redundancy elimination is {e allowed} to delete checks, so the
   deletion sails through the Elimination rule, and a trap-free run
   cannot tell the difference either. Only the per-compile translation
   validator ({!Validate}) — which must re-prove every reference check
   site from what remains — can catch it, which is exactly what the
   class exists to demonstrate.

   Every choice is driven by a caller-supplied seed through a small
   LCG, so a failing injection replays exactly from its seed. Faults
   attach to a fixed target pass per class ({!target_pass}); a
   configuration whose pipeline never runs that pass simply applies
   nothing (the driver treats "not applied" as vacuous, not as a
   recovery success). *)

module Check = Nascent_checks.Check
open Types

type cls =
  | Drop_check
  | Weaken_check
  | Break_edge
  | Unsafe_insert
  | Hang_fixpoint
  | Unsound_eliminate

let all_classes =
  [
    Drop_check;
    Weaken_check;
    Break_edge;
    Unsafe_insert;
    Hang_fixpoint;
    Unsound_eliminate;
  ]

let cls_name = function
  | Drop_check -> "drop-check"
  | Weaken_check -> "weaken-check"
  | Break_edge -> "break-edge"
  | Unsafe_insert -> "unsafe-insert"
  | Hang_fixpoint -> "hang-fixpoint"
  | Unsound_eliminate -> "unsound-eliminate"

let cls_of_name s =
  List.find_opt (fun c -> cls_name c = s) all_classes

(* The optimizer pass after whose body the corruption is applied. The
   strengthening classes need a count-preserving differential rule;
   the structural and fuel classes attach to "eliminate" because every
   scheme's pipeline runs it. *)
let target_pass = function
  | Drop_check | Weaken_check -> "strengthen"
  | Break_edge | Hang_fixpoint | Unsound_eliminate -> "eliminate"
  | Unsafe_insert -> "pre-insert"

let hangs = function Hang_fixpoint -> true | _ -> false

type spec = { cls : cls; seed : int }

let spec_name { cls; seed } = Printf.sprintf "%s:%d" (cls_name cls) seed

type request = Smoke | Single of spec

let parse_request s =
  match String.trim s with
  | "smoke" -> Ok Smoke
  | s -> (
      let cls_str, seed =
        match String.index_opt s ':' with
        | None -> (s, Ok 0)
        | Some i -> (
            ( String.sub s 0 i,
              let tail = String.sub s (i + 1) (String.length s - i - 1) in
              match int_of_string_opt tail with
              | Some n -> Ok n
              | None -> Error (Printf.sprintf "bad fault seed %S" tail) ))
      in
      match (cls_of_name cls_str, seed) with
      | _, Error e -> Error e
      | None, _ ->
          Error
            (Printf.sprintf "unknown fault class %S (expected %s, or \"smoke\")"
               cls_str
               (String.concat ", " (List.map cls_name all_classes)))
      | Some cls, Ok seed -> Ok (Single { cls; seed }))

(* --- seeded choice ----------------------------------------------------- *)

(* MINSTD LCG: deterministic, stdlib-free, replayable from the seed. *)
let next_state st = (st * 48271 + 1) land 0x3FFFFFFF
let pick st n = if n <= 0 then invalid_arg "Mutate.pick" else st mod n

let nth_opt xs n = List.nth_opt xs n

(* --- per-class corruption ---------------------------------------------- *)

(* Positions of check-bearing instructions in reachable blocks. *)
let check_sites (f : Func.t) : (block * int * check_meta) list =
  let reach = Func.reachable f in
  let acc = ref [] in
  Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then
        List.iteri
          (fun j i ->
            match i with
            | Check m | Cond_check (_, m) -> acc := (b, j, m) :: !acc
            | _ -> ())
          b.instrs)
    f;
  List.rev !acc

let remove_at j instrs = List.filteri (fun k _ -> k <> j) instrs

let replace_at j i' instrs = List.mapi (fun k i -> if k = j then i' else i) instrs

let insert_at j i' instrs =
  let rec go k = function
    | rest when k = j -> i' :: rest
    | x :: rest -> x :: go (k + 1) rest
    | [] -> [ i' ]
  in
  go 0 instrs

let apply_drop_check st (f : Func.t) =
  match check_sites f with
  | [] -> false
  | sites ->
      let b, j, _ = List.nth sites (pick st (List.length sites)) in
      b.instrs <- remove_at j b.instrs;
      true

(* Raising the constant weakens the check: the strengthening rule
   demands the replacement imply a removed same-family original, and a
   million-weaker check implies nothing the suite contains. *)
let apply_weaken_check st (f : Func.t) =
  let sites =
    List.filter
      (fun (b, j, _) ->
        match nth_opt b.instrs j with Some (Check _) -> true | _ -> false)
      (check_sites f)
  in
  match sites with
  | [] -> false
  | sites ->
      let b, j, m = List.nth sites (pick st (List.length sites)) in
      let weakened = Check.make (Check.lhs m.chk) (Check.constant m.chk + 1_000_003) in
      b.instrs <- replace_at j (Check { m with chk = weakened }) b.instrs;
      true

let apply_break_edge st (f : Func.t) =
  let reach = Func.reachable f in
  let acc = ref [] in
  Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then
        match b.term with Goto _ | Branch _ -> acc := b :: !acc | Ret -> ())
    f;
  match List.rev !acc with
  | [] -> false
  | bs ->
      let b = List.nth bs (pick st (List.length bs)) in
      let dangling = Func.num_blocks f + 7 in
      (match b.term with
      | Goto _ -> b.term <- Goto dangling
      | Branch (c, x, _) -> b.term <- Branch (c, x, dangling)
      | Ret -> assert false);
      true

(* Insert a fresh copy of an existing check immediately above an
   assignment to one of the variables its range expression mentions:
   the copy checks the variable's PRE-assignment value, which no
   execution of the original program checked there — exactly the
   "inserted check above a definition of one of its symbols" unsafety
   the anticipatability rule (DESIGN.md 5.4) exists to reject. *)
let apply_unsafe_insert st (f : Func.t) =
  let metas = List.map (fun (_, _, m) -> m) (check_sites f) in
  let reach = Func.reachable f in
  let candidates = ref [] in
  Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then
        List.iteri
          (fun j i ->
            match i with
            | Assign (v, _) ->
                let kills = Atoms.killed_by_def f.Func.atoms v in
                List.iter
                  (fun (m : check_meta) ->
                    if List.exists (fun k -> Check.mentions_key m.chk k) kills then
                      candidates := (b, j, m) :: !candidates)
                  metas
            | _ -> ())
          b.instrs)
    f;
  match List.rev !candidates with
  | [] -> false
  | cs ->
      let b, j, m = List.nth cs (pick st (List.length cs)) in
      b.instrs <- insert_at j (Check { m with src_array = m.src_array }) b.instrs;
      true

(* Delete a check the residual program still relies on: a {e fragile}
   site ({!Validate.fragile_sites}) — a plain check whose constraint
   the validator could not re-prove from its region's hypotheses with
   the site itself excluded. The deletion is legal under every
   differential rule — elimination may delete checks — so nothing rolls
   back; the per-compile translation validator is the only mechanism
   left that can notice the reference site is no longer covered.
   Vacuous (returns [false]) when every remaining check is re-provable
   without itself. *)
let apply_unsound_eliminate st (f : Func.t) =
  match Validate.fragile_sites f with
  | [] -> false
  | cs ->
      let b, j = List.nth cs (pick st (List.length cs)) in
      b.instrs <- remove_at j b.instrs;
      true

let apply ~seed cls (f : Func.t) : bool =
  let st = next_state (seed land 0x3FFFFFFF) in
  match cls with
  | Drop_check -> apply_drop_check st f
  | Weaken_check -> apply_weaken_check st f
  | Break_edge -> apply_break_edge st f
  | Unsafe_insert -> apply_unsafe_insert st f
  | Hang_fixpoint -> false (* not a structural corruption; see {!hangs} *)
  | Unsound_eliminate -> apply_unsound_eliminate st f

(* AST -> IR lowering with naive range-check insertion.

   Every array access gets a lower and an upper canonical check per
   dimension, emitted immediately before the access (this is the
   "unoptimized range checking" measured in Table 1). Loop bounds of
   counted [do] loops are captured in entry... no: in fresh temps at the
   loop preheader, matching Fortran's once-only trip evaluation and
   making them loop-invariant by construction.

   Every loop (do and while) is lowered with an explicit preheader
   block, the insertion point of the LI/LLS schemes. *)

module Sema = Nascent_frontend.Sema
module Ast = Nascent_frontend.Ast
open Types

exception Lower_error of string

type ctx = {
  func : Func.t;
  scalars : (string, var) Hashtbl.t;
  arrays : (string, arr) Hashtbl.t;
  mutable cur : block; (* block under construction *)
  mutable next_arr_id : int;
  mutable temp_count : int;
}

let emit ctx i = ctx.cur.instrs <- ctx.cur.instrs @ [ i ]

let set_term ctx t = ctx.cur.term <- t

let ty_of_ast : Ast.ty -> ty = function Ast.TInt -> Int | Ast.TReal -> Real

let fresh_temp ctx ~hint ~ty =
  ctx.temp_count <- ctx.temp_count + 1;
  Func.fresh_var ctx.func ~name:(Printf.sprintf "%s$%d" hint ctx.temp_count) ~ty

let scalar ctx name =
  match Hashtbl.find_opt ctx.scalars name with
  | Some v -> v
  | None -> raise (Lower_error ("unknown scalar " ^ name))

let array ctx name =
  match Hashtbl.find_opt ctx.arrays name with
  | Some a -> a
  | None -> raise (Lower_error ("unknown array " ^ name))

let binop_of_ast : Ast.binop -> binop = function
  | Ast.Add -> Add
  | Ast.Sub -> Sub
  | Ast.Mul -> Mul
  | Ast.Div -> Div
  | Ast.Eq -> Eq
  | Ast.Ne -> Ne
  | Ast.Lt -> Lt
  | Ast.Le -> Le
  | Ast.Gt -> Gt
  | Ast.Ge -> Ge
  | Ast.And -> And
  | Ast.Or -> Or

(* Lower an expression, emitting the range checks of every array read
   it contains into the current block (checks precede the access). *)
let rec lower_expr ctx (e : Ast.expr) : expr =
  match e.desc with
  | Ast.Int n -> Cint n
  | Ast.Real f -> Creal f
  | Ast.Bool b -> Cbool b
  | Ast.Var v -> Evar (scalar ctx v)
  | Ast.Index (aname, idxs) ->
      let a = array ctx aname in
      let idxs = List.map (lower_expr ctx) idxs in
      emit_subscript_checks ctx a idxs;
      Eload (a, idxs)
  | Ast.Unary (Ast.Neg, a) -> Eun (Neg, lower_expr ctx a)
  | Ast.Unary (Ast.Not, a) -> Eun (Not, lower_expr ctx a)
  | Ast.Binary (op, a, b) ->
      let a = lower_expr ctx a in
      let b = lower_expr ctx b in
      Ebin (binop_of_ast op, a, b)
  | Ast.Intrinsic (i, args) -> (
      let args = List.map (lower_expr ctx) args in
      match (i, args) with
      | Ast.Imod, [ a; b ] -> Ebin (Mod, a, b)
      | Ast.Imin, [ a; b ] -> Ebin (Min, a, b)
      | Ast.Imax, [ a; b ] -> Ebin (Max, a, b)
      | Ast.Iabs, [ a ] -> Eun (Abs, a)
      | _ -> raise (Lower_error "bad intrinsic arity"))

and emit_subscript_checks ctx (a : arr) (idxs : expr list) =
  List.iteri
    (fun dim sub ->
      List.iter
        (fun m -> emit ctx (Check m))
        (Canon.checks_for_subscript ctx.func.Func.atoms a ~dim ~sub))
    idxs

(* Lower an expression that must be loop-invariant-capturable: constants
   stay as constants (so compile-time check evaluation sees them);
   anything else is evaluated once into a fresh temp. *)
let capture ctx ~hint (e : Ast.expr) : expr =
  match Expr.fold (lower_expr ctx e) with
  | Cint n -> Cint n
  | ir ->
      let t = fresh_temp ctx ~hint ~ty:Int in
      emit ctx (Assign (t, ir));
      Evar t

let const_step (e : Ast.expr option) : int =
  match e with
  | None -> 1
  | Some { desc = Ast.Int n; _ } when n <> 0 -> n
  | Some { desc = Ast.Unary (Ast.Neg, { desc = Ast.Int n; _ }); _ } when n <> 0 -> -n
  | Some _ -> raise (Lower_error "do step must be a nonzero integer literal")

let rec lower_stmts ctx (stmts : Ast.stmt list) =
  List.iter (lower_stmt ctx) stmts

and lower_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (v, e) ->
      let ir = lower_expr ctx e in
      emit ctx (Assign (scalar ctx v, ir))
  | Ast.Store (aname, idxs, e) ->
      let a = array ctx aname in
      let idxs = List.map (lower_expr ctx) idxs in
      let ir = lower_expr ctx e in
      emit_subscript_checks ctx a idxs;
      emit ctx (Store (a, idxs, ir))
  | Ast.If (c, then_, else_) ->
      let cond = lower_expr ctx c in
      let bthen = Func.new_block ctx.func in
      let belse = Func.new_block ctx.func in
      let bjoin = Func.new_block ctx.func in
      set_term ctx (Branch (cond, bthen.bid, belse.bid));
      ctx.cur <- bthen;
      lower_stmts ctx then_;
      set_term ctx (Goto bjoin.bid);
      ctx.cur <- belse;
      lower_stmts ctx else_;
      set_term ctx (Goto bjoin.bid);
      ctx.cur <- bjoin
  | Ast.Do { index; lo; hi; step; body } ->
      let iv = scalar ctx index in
      let step = const_step step in
      (* Preheader: evaluate the bounds once, initialize the index. *)
      let pre = Func.new_block ctx.func in
      set_term ctx (Goto pre.bid);
      ctx.cur <- pre;
      let lo_e = capture ctx ~hint:(index ^ "$lo") lo in
      let hi_e = capture ctx ~hint:(index ^ "$hi") hi in
      emit ctx (Assign (iv, lo_e));
      let header = Func.new_block ctx.func in
      let bodyb = Func.new_block ctx.func in
      let latch = Func.new_block ctx.func in
      let exit = Func.new_block ctx.func in
      set_term ctx (Goto header.bid);
      let test = if step > 0 then Ebin (Le, Evar iv, hi_e) else Ebin (Ge, Evar iv, hi_e) in
      header.term <- Branch (test, bodyb.bid, exit.bid);
      ctx.cur <- bodyb;
      lower_stmts ctx body;
      set_term ctx (Goto latch.bid);
      latch.instrs <- [ Assign (iv, Ebin (Add, Evar iv, Cint step)) ];
      latch.term <- Goto header.bid;
      ctx.func.Func.loops <-
        Ldo
          {
            d_preheader = pre.bid;
            d_header = header.bid;
            d_body_entry = bodyb.bid;
            d_latch = latch.bid;
            d_exit = exit.bid;
            d_index = iv;
            d_lo = lo_e;
            d_hi = hi_e;
            d_step = step;
            d_basic = None;
          }
        :: ctx.func.Func.loops;
      ctx.cur <- exit
  | Ast.While (c, body) ->
      let pre = Func.new_block ctx.func in
      set_term ctx (Goto pre.bid);
      let header = Func.new_block ctx.func in
      let bodyb = Func.new_block ctx.func in
      let exit = Func.new_block ctx.func in
      pre.term <- Goto header.bid;
      (* The condition is lowered into the header (checks of any array
         reads it contains are re-executed per iteration, as in source). *)
      ctx.cur <- header;
      let cond = lower_expr ctx c in
      set_term ctx (Branch (cond, bodyb.bid, exit.bid));
      ctx.cur <- bodyb;
      lower_stmts ctx body;
      set_term ctx (Goto header.bid);
      ctx.func.Func.loops <-
        Lwhile
          {
            w_preheader = pre.bid;
            w_header = header.bid;
            w_body_entry = bodyb.bid;
            w_exit = exit.bid;
            w_cond = cond;
          }
        :: ctx.func.Func.loops;
      ctx.cur <- exit
  | Ast.Call (name, args) ->
      let args =
        List.map
          (fun (a : Ast.expr) ->
            match a.desc with
            | Ast.Var v when Hashtbl.mem ctx.arrays v -> Aarr (array ctx v)
            | _ -> Aexpr (lower_expr ctx a))
          args
      in
      emit ctx (Call (name, args))
  | Ast.Print e ->
      let ir = lower_expr ctx e in
      emit ctx (Print ir)
  | Ast.Return -> begin
      set_term ctx Ret;
      (* Statements after return are unreachable; park them in a fresh
         dead block to keep lowering simple. *)
      ctx.cur <- Func.new_block ctx.func
    end

(* Lower one compilation unit. *)
let lower_unit (uenv : Sema.unit_env) : Func.t =
  let u = uenv.Sema.unit_ast in
  (* Pass 1: scalars (params included), so array bounds can reference
     them. *)
  let scalars = Hashtbl.create 16 in
  let arrays = Hashtbl.create 8 in
  let param_names = uenv.Sema.params in
  let func = Func.create ~name:u.Ast.uname ~params:[] in
  List.iter
    (fun (d : Ast.decl) ->
      if d.ddims = [] then
        Hashtbl.replace scalars d.dname
          (Func.fresh_var func ~name:d.dname ~ty:(ty_of_ast d.dty)))
    u.udecls;
  let entry = Func.new_block func in
  func.Func.entry <- entry.bid;
  let ctx = { func; scalars; arrays; cur = entry; next_arr_id = 0; temp_count = 0 } in
  (* Pass 2: arrays; symbolic bounds are captured in entry temps.
     Temps are hash-consed by the (folded) bound expression, so arrays
     declared with the same symbolic extent share one temp — and hence
     their checks share one canonical family, which the redundancy
     analyses rely on (as Nascent's canonicalization against the
     original bound symbol would). *)
  let bound_cache : (expr * bound) list ref = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      if d.ddims <> [] then begin
        let adims =
          List.map
            (fun { Ast.dlo; dhi } ->
              let lower_bound (e : Ast.expr option) ~default ~hint =
                match e with
                | None -> Bconst default
                | Some e -> (
                    match Expr.fold (lower_expr ctx e) with
                    | Cint n -> Bconst n
                    | ir -> (
                        match
                          List.find_opt (fun (e', _) -> Expr.equal ir e') !bound_cache
                        with
                        | Some (_, b) -> b
                        | None ->
                            let t = fresh_temp ctx ~hint ~ty:Int in
                            emit ctx (Assign (t, ir));
                            bound_cache := (ir, Bvar t) :: !bound_cache;
                            Bvar t))
              in
              let lo = lower_bound dlo ~default:1 ~hint:(d.dname ^ "$lo") in
              let hi = lower_bound (Some dhi) ~default:1 ~hint:(d.dname ^ "$hi") in
              (lo, hi))
            d.ddims
        in
        let a =
          { aname = d.dname; aid = ctx.next_arr_id; aty = ty_of_ast d.dty; adims }
        in
        ctx.next_arr_id <- ctx.next_arr_id + 1;
        Hashtbl.replace arrays d.dname a;
        Func.add_array func a
      end)
    u.udecls;
  (* Parameters, in declaration order. *)
  let params =
    List.map
      (fun pname ->
        match Hashtbl.find_opt scalars pname with
        | Some v -> Pscalar v
        | None -> Parr (array ctx pname))
      param_names
  in
  func.Func.params <- params;
  lower_stmts ctx u.ubody;
  set_term ctx Ret;
  func

let lower_program (env : Sema.env) : Program.t =
  let prog = Program.create ~main:env.Sema.main in
  Hashtbl.iter (fun _ uenv -> Program.add prog (lower_unit uenv)) env.Sema.units;
  prog

(* Convenience: source text to naive-checked IR. *)
let of_source src : Program.t =
  let _, env = Nascent_frontend.Frontend.analyze_exn src in
  lower_program env

(* A whole IR program: one function per compilation unit. *)

type t = { funcs : (string, Func.t) Hashtbl.t; main : string }

let create ~main = { funcs = Hashtbl.create 8; main }

let add t (f : Func.t) = Hashtbl.replace t.funcs f.Func.fname f

let find t name = Hashtbl.find_opt t.funcs name

let find_exn t name =
  match find t name with
  | Some f -> f
  | None -> invalid_arg ("Program.find_exn: no function " ^ name)

let main_func t = find_exn t t.main

let iter_funcs f t = Hashtbl.iter (fun _ fn -> f fn) t.funcs

(* Deterministic order (by name) for printing and statistics. *)
let funcs_sorted t =
  Hashtbl.fold (fun _ fn acc -> fn :: acc) t.funcs []
  |> List.sort (fun a b -> String.compare a.Func.fname b.Func.fname)

let static_counts t =
  List.fold_left
    (fun (i, c) f ->
      let i', c' = Func.static_counts f in
      (i + i', c + c'))
    (0, 0) (funcs_sorted t)

(* Human-readable dump of the IR, in the notation of the paper's
   figures: [Check (e <= k)] and [Cond-check (g, e <= k)]. *)

module Check = Nascent_checks.Check
open Types

let pp_check_meta ppf (m : check_meta) =
  Fmt.pf ppf "%a  ! %s dim %d %s" Check.pp m.chk m.src_array m.src_dim
    (match m.kind with Lower -> "lower" | Upper -> "upper")

let pp_call_arg ppf = function
  | Aexpr e -> Expr.pp ppf e
  | Aarr a -> Fmt.string ppf a.aname

let pp_instr ppf = function
  | Assign (v, e) -> Fmt.pf ppf "%s = %a" v.vname Expr.pp e
  | Store (a, idxs, e) ->
      Fmt.pf ppf "%s(%a) = %a" a.aname Fmt.(list ~sep:comma Expr.pp) idxs Expr.pp e
  | Check m -> pp_check_meta ppf m
  | Cond_check (g, m) ->
      Fmt.pf ppf "Cond-check (%a, %a <= %d)  ! %s" Expr.pp g
        Nascent_checks.Linexpr.pp (Check.lhs m.chk) (Check.constant m.chk) m.src_array
  | Trap msg -> Fmt.pf ppf "TRAP %S" msg
  | Call (f, args) -> Fmt.pf ppf "call %s(%a)" f Fmt.(list ~sep:comma pp_call_arg) args
  | Print e -> Fmt.pf ppf "print %a" Expr.pp e

let pp_terminator ppf = function
  | Goto l -> Fmt.pf ppf "goto B%d" l
  | Branch (c, t, f) -> Fmt.pf ppf "if %a goto B%d else B%d" Expr.pp c t f
  | Ret -> Fmt.string ppf "return"

let pp_block ppf (b : block) =
  Fmt.pf ppf "@[<v2>B%d:@,%a%a@]" b.bid
    Fmt.(list ~sep:(any "") (fun ppf i -> Fmt.pf ppf "%a@," pp_instr i))
    b.instrs pp_terminator b.term

let pp_func ppf (f : Func.t) =
  let pp_param ppf = function
    | Pscalar v -> Fmt.string ppf v.vname
    | Parr a -> Fmt.pf ppf "%s(...)" a.aname
  in
  Fmt.pf ppf "@[<v>function %s(%a)  entry=B%d@,%a@]" f.Func.fname
    Fmt.(list ~sep:comma pp_param)
    f.Func.params f.Func.entry
    Fmt.(list ~sep:cut pp_block)
    (Nascent_support.Vec.to_list f.Func.blocks)

let pp_program ppf (p : Program.t) =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any "@,@,") pp_func)
    (Program.funcs_sorted p)

let func_to_string f = Fmt.str "%a" pp_func f
let program_to_string p = Fmt.str "%a" pp_program p

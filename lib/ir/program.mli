(** A whole IR program: one function per compilation unit. *)

type t = { funcs : (string, Func.t) Hashtbl.t; main : string }

val create : main:string -> t
val add : t -> Func.t -> unit
val find : t -> string -> Func.t option
val find_exn : t -> string -> Func.t
val main_func : t -> Func.t
val iter_funcs : (Func.t -> unit) -> t -> unit

val funcs_sorted : t -> Func.t list
(** Deterministic (name) order, for printing and statistics. *)

val static_counts : t -> int * int
(** Program-wide [(instructions, checks)], summed over functions. *)

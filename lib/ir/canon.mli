(** Canonicalization of subscript and bound expressions into the
    paper's canonical check form (section 2.2). *)

val linearize : Atoms.t -> Types.expr -> Nascent_checks.Linexpr.t * int
(** Rewrite an integer IR expression as a linear combination of atoms
    plus a constant. Non-linear subexpressions (products of variables,
    divisions, array loads, ...) become a single opaque atom, so every
    expression has a canonical form — a non-linear one simply has
    coarser kill behaviour. *)

val of_bound : Atoms.t -> Types.bound -> Nascent_checks.Linexpr.t * int

val checks_for_subscript :
  Atoms.t -> Types.arr -> dim:int -> sub:Types.expr -> Types.check_meta list
(** The lower and upper canonical checks guarding subscript [sub] of
    dimension [dim] of the array — what naive lowering emits before
    every access. *)

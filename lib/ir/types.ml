(* Core IR type definitions.

   The IR is a control-flow graph of basic blocks whose instructions
   keep structured expressions (the paper's analyses are about checks,
   not about three-address scheduling, and the instrumented interpreter
   charges per expression node, which approximates instruction counts).

   Range checks appear as first-class [Check] / [Cond_check]
   instructions carrying their canonical form, exactly as in the
   paper's Nascent compiler. *)

type ty = Int | Real | Bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not | Abs

type var = { vname : string; vid : int; vty : ty }

(* An array bound: either a compile-time constant or a dedicated temp
   evaluated once at function entry (Fortran adjustable-dimension
   semantics: bounds are fixed on entry even if the bounding variable
   is later reassigned). *)
type bound = Bconst of int | Bvar of var

type arr = { aname : string; aid : int; aty : ty; adims : (bound * bound) list }

type expr =
  | Cint of int
  | Creal of float
  | Cbool of bool
  | Evar of var
  | Eload of arr * expr list
  | Eun of unop * expr
  | Ebin of binop * expr * expr

type check_kind = Lower | Upper

(* Provenance of a check, for trap messages and reporting. *)
type check_meta = {
  chk : Nascent_checks.Check.t;
  src_array : string; (* array access being guarded *)
  src_dim : int; (* which dimension, 0-based *)
  kind : check_kind;
}

type call_arg = Aexpr of expr | Aarr of arr

type instr =
  | Assign of var * expr
  | Store of arr * expr list * expr
  | Check of check_meta
  | Cond_check of expr * check_meta (* perform the check only if the guard holds *)
  | Trap of string (* compile-time-false check, reported to the programmer *)
  | Call of string * call_arg list
  | Print of expr

type terminator =
  | Goto of int
  | Branch of expr * int * int (* cond, then-target, else-target *)
  | Ret

type block = {
  bid : int;
  mutable instrs : instr list;
  mutable term : terminator;
}

type param = Pscalar of var | Parr of arr

(* Metadata for a counted [do] loop, recorded at lowering time and used
   by the preheader insertion schemes (LI/LLS). Bounds are captured in
   fresh temps, so they are loop-invariant by construction. *)
type do_info = {
  d_preheader : int;
  d_header : int;
  d_body_entry : int;
  d_latch : int;
  d_exit : int;
  d_index : var;
  d_lo : expr; (* loop-invariant: a constant or an entry temp *)
  d_hi : expr; (* loop-invariant: a constant or an entry temp *)
  d_step : int; (* nonzero constant step (a MiniF restriction) *)
  mutable d_basic : var option;
      (* the materialized basic loop variable h (0, 1, 2, ... per
         iteration), created on demand by the INX rewriting pass *)
}

(* Metadata for a [while] loop: only invariant hoisting applies. The
   guard for a hoisted check is a copy of the loop condition, valid
   because the preheader directly precedes the test with no intervening
   definitions. *)
type while_info = {
  w_preheader : int;
  w_header : int;
  w_body_entry : int;
  w_exit : int;
  w_cond : expr;
}

type loop_meta = Ldo of do_info | Lwhile of while_info

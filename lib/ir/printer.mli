(** Human-readable dump of the IR, in the notation of the paper's
    figures: [Check (e <= k)] and [Cond-check (g, e <= k)]. *)

val pp_check_meta : Types.check_meta Fmt.t
val pp_instr : Types.instr Fmt.t
val pp_terminator : Types.terminator Fmt.t
val pp_block : Types.block Fmt.t
val pp_func : Func.t Fmt.t
val pp_program : Program.t Fmt.t
val func_to_string : Func.t -> string
val program_to_string : Program.t -> string

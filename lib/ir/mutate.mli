(** Seeded fault injection for the fail-safe optimizer pipeline.

    A mutation deliberately corrupts the output of one optimizer pass
    (the {!target_pass} of its class) so the tests and the
    [--inject-fault] CLI can prove that every corruption class is
    caught by the inter-pass verifier (or the per-pass fuel budget) and
    recovered by rollback. All choices are seeded and replayable. *)

type cls =
  | Drop_check  (** remove a check — caught by count preservation *)
  | Weaken_check  (** raise a check constant — caught by the strengthening rule *)
  | Break_edge  (** dangle a terminator target — caught by the CFG rule *)
  | Unsafe_insert
      (** re-insert a check above a definition of one of its symbols —
          caught by the anticipatability (safety) rule *)
  | Hang_fixpoint
      (** spin the pass forever — caught by the per-pass fuel budget *)
  | Unsound_eliminate
      (** delete a live (family-unique, not ambient-provable) check —
          legal under every differential rule, caught only by the
          per-compile translation validator ({!Validate}) *)

val all_classes : cls list
val cls_name : cls -> string
val cls_of_name : string -> cls option

val target_pass : cls -> string
(** Optimizer pass after whose body the corruption is applied
    ("strengthen", "eliminate" or "pre-insert"); configurations whose
    pipeline never runs that pass apply nothing. *)

val hangs : cls -> bool
(** [true] for {!Hang_fixpoint}: instead of a structural corruption,
    the injector spins on the ambient fuel budget
    ({!Nascent_support.Guard.exhaust_ambient}). *)

type spec = { cls : cls; seed : int }

val spec_name : spec -> string
(** ["<class>:<seed>"] — stable, used in cache keys and reports. *)

type request = Smoke | Single of spec

val parse_request : string -> (request, string) result
(** Parse an [--inject-fault] argument: ["smoke"], ["<class>"] or
    ["<class>:<seed>"]. *)

val apply : seed:int -> cls -> Func.t -> bool
(** Corrupt [f] in place; [false] when the class found no applicable
    site (or for {!Hang_fixpoint}, which corrupts nothing). *)

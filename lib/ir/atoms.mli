(** Per-function atom environment.

    Maps IR entities to the symbolic atoms of canonical range
    expressions:
    - a scalar variable maps to a stable atom;
    - a non-linear subscript subexpression maps to a hash-consed
      {e opaque} atom (the whole subexpression is one symbolic term);
    - analyses may allocate {e synthetic} atoms.

    The environment also answers the kill question of the check data
    flow: which atom keys does a definition of variable [v] (or a store
    to memory) invalidate? *)

type payload =
  | Avar of Types.var
  | Aopaque of Types.expr
  | Asynth of string
      (** descriptive name; kill rules are the creating analysis's
          business *)

type t

val create : unit -> t

val clone : t -> t
(** Independent copy. Optimization runs on program copies that allocate
    new atoms (INX basic variables); sharing the tables would leak
    state between runs. Atom values themselves are immutable and
    shareable. *)

val of_var : t -> Types.var -> Nascent_checks.Atom.t
(** The (interned) atom of a scalar variable. *)

val of_opaque : t -> Types.expr -> Nascent_checks.Atom.t
(** The (hash-consed, by structural equality) atom of an opaque
    subscript subexpression. *)

val fresh_synth : t -> string -> Nascent_checks.Atom.t
(** A fresh synthetic atom. *)

val payload : t -> int -> payload option
(** What an atom key denotes. *)

val payload_exn : t -> int -> payload

val killed_by_def : t -> Types.var -> int list
(** Atom keys invalidated by a definition of [v]: [v]'s own atom plus
    every opaque atom whose expression mentions [v]. *)

val killed_by_store : t -> int list
(** Atom keys invalidated by any array store or call: the opaque atoms
    whose expressions read memory. *)

val expr_of_atom : t -> Nascent_checks.Atom.t -> Types.expr option
(** The IR expression whose runtime value the atom denotes; [None] for
    synthetic atoms (they are never materialized in instructions). *)

(* Canonicalization of subscript and bound expressions into the
   paper's canonical check form (section 2.2).

   [linearize] rewrites an integer IR expression as a linear
   combination of atoms plus a constant. Non-linear subexpressions
   (products of variables, divisions, mods, array loads, ...) become a
   single opaque atom, so the check on e.g. [a(i*j+1)] still has a
   canonical form — family [i*j], constant folded — it simply has
   coarser kill behaviour. *)

module Linexpr = Nascent_checks.Linexpr
module Check = Nascent_checks.Check
open Types

let rec linearize (atoms : Atoms.t) (e : expr) : Linexpr.t * int =
  match e with
  | Cint n -> (Linexpr.zero, n)
  | Evar v when v.vty = Int -> (Linexpr.of_atom (Atoms.of_var atoms v), 0)
  | Eun (Neg, a) ->
      let la, ca = linearize atoms a in
      (Linexpr.neg la, -ca)
  | Ebin (Add, a, b) ->
      let la, ca = linearize atoms a and lb, cb = linearize atoms b in
      (Linexpr.add la lb, ca + cb)
  | Ebin (Sub, a, b) ->
      let la, ca = linearize atoms a and lb, cb = linearize atoms b in
      (Linexpr.sub la lb, ca - cb)
  | Ebin (Mul, a, b) -> (
      let la, ca = linearize atoms a and lb, cb = linearize atoms b in
      match (Linexpr.is_zero la, Linexpr.is_zero lb) with
      | true, _ -> (Linexpr.scale ca lb, ca * cb)
      | _, true -> (Linexpr.scale cb la, ca * cb)
      | false, false -> (Linexpr.of_atom (Atoms.of_opaque atoms e), 0))
  | _ -> (Linexpr.of_atom (Atoms.of_opaque atoms e), 0)

let of_bound (atoms : Atoms.t) : bound -> Linexpr.t * int = function
  | Bconst n -> (Linexpr.zero, n)
  | Bvar v -> (Linexpr.of_atom (Atoms.of_var atoms v), 0)

(* The two canonical checks guarding subscript [sub] of dimension
   [dim] (bounds [lo], [hi]) of array [a]. *)
let checks_for_subscript atoms (a : arr) ~dim ~(sub : expr) : check_meta list =
  let lo, hi = List.nth a.adims dim in
  let lsub = linearize atoms sub in
  let lower =
    {
      chk = Check.lower ~sub:lsub ~bound:(of_bound atoms lo);
      src_array = a.aname;
      src_dim = dim;
      kind = Lower;
    }
  in
  let upper =
    {
      chk = Check.upper ~sub:lsub ~bound:(of_bound atoms hi);
      src_array = a.aname;
      src_dim = dim;
      kind = Upper;
    }
  in
  [ lower; upper ]

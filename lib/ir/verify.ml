(* IR invariant verifier.

   Every optimization scheme mutates the CFG, the check instructions,
   or both; this module is the correctness oracle that runs between
   optimizer steps (behind [Config.verify]) and after lowering. It
   checks four invariant classes:

   - [Cfg]: the block vector is self-consistent — ids match positions,
     terminator targets are in range, the entry block exists. (The
     pred/succ relation is derived from terminators, so its symmetry
     is structural once targets are in range.)
   - [Check_form]: every [Check]/[Cond_check] carries a canonical
     linear form whose atoms resolve in the function's atom table to
     live variables, whose source dimension is within the declared
     rank, and whose guard (if any) is an effect-free expression over
     known variables.
   - [Loop_structure]: lowering-time loop metadata stays valid — the
     recorded preheader still has an edge to, and dominates, its
     header; the latch still closes the loop.
   - [Insertion]: differential rules keyed by the pass that just ran.
     In particular, a check inserted by partial redundancy elimination
     must be anticipatable at its insertion point (the paper's safety
     rule, DESIGN.md section 5.4): no inserted check may sit above a
     definition of one of its symbols unless the check is re-generated
     before that definition on every path to an exit.

   The anticipatability oracle is self-contained (this library sits
   below [Nascent_analysis]) and uses a per-family lattice: a state
   maps each family lhs to the smallest constant [m] generated on
   every path to an exit, so [Check (e <= k)] is anticipated iff the
   state binds [e] to some [m <= k] (within-family implication). This
   is the widest gen relation any implication mode uses, so a program
   valid under a stricter mode is accepted. Blocks in no-exit regions
   anticipate nothing (matching the dataflow solver's pessimistic
   boundary). *)

module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
module Atom = Nascent_checks.Atom
open Types

type pass =
  | Lowered  (** structural rules only; no differential check *)
  | Rewrite  (** INX induction rewriting: check count preserved *)
  | Strengthen  (** in-place same-family strengthening *)
  | Code_motion  (** PRE insertion: inserted checks must be anticipatable *)
  | Hoist  (** preheader insertion: only checks/guards, only in preheaders *)
  | Elimination  (** redundancy elimination: deletions only *)
  | Fold  (** compile-time folding: deletions, traps, guard folding *)

let pass_name = function
  | Lowered -> "lowered"
  | Rewrite -> "inx-rewrite"
  | Strengthen -> "strengthen"
  | Code_motion -> "pre-insert"
  | Hoist -> "hoist"
  | Elimination -> "eliminate"
  | Fold -> "fold"

type rule = Cfg | Check_form | Loop_structure | Insertion

let rule_name = function
  | Cfg -> "cfg"
  | Check_form -> "check-form"
  | Loop_structure -> "loop-structure"
  | Insertion -> "insertion"

type violation = { rule : rule; where : string; what : string }

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %s" (rule_name v.rule) v.where v.what

exception Invalid_ir of string

(* ------------------------------------------------------------------ *)
(* Self-contained dominators (Cooper–Harvey–Kennedy over RPO numbers). *)

let dominators (f : Func.t) : int array =
  let n = Func.num_blocks f in
  let rpo = Func.rpo f in
  let rpo_num = Array.make n (-1) in
  List.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  let preds = Func.preds_array f in
  let idom = Array.make n (-1) in
  let entry = f.Func.entry in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then
          match List.filter (fun p -> idom.(p) <> -1) preds.(b) with
          | [] -> ()
          | p0 :: rest ->
              let ni = List.fold_left intersect p0 rest in
              if idom.(b) <> ni then begin
                idom.(b) <- ni;
                changed := true
              end)
      rpo
  done;
  idom

(* Does [a] dominate [b]? (Reflexive; false if either is unreachable.) *)
let dominates (idom : int array) a b =
  if a < 0 || b < 0 || idom.(b) = -1 || idom.(a) = -1 then false
  else
    let rec up b = a = b || (idom.(b) <> b && up idom.(b)) in
    up b

(* ------------------------------------------------------------------ *)
(* Structural rules.                                                   *)

let check_cfg (f : Func.t) add =
  let n = Func.num_blocks f in
  if n = 0 then add Cfg f.Func.fname "function has no blocks"
  else if f.Func.entry < 0 || f.Func.entry >= n then
    add Cfg f.Func.fname (Fmt.str "entry block %d out of range" f.Func.entry)
  else
    for i = 0 to n - 1 do
      let b = Func.block f i in
      if b.bid <> i then
        add Cfg (Fmt.str "block %d" i) (Fmt.str "carries id %d" b.bid);
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            add Cfg
              (Fmt.str "block %d" i)
              (Fmt.str "terminator target %d out of range [0,%d)" s n))
        (Func.succs_of_term b.term)
    done

let check_checks (f : Func.t) add =
  let known_vids = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace known_vids v.vid ()) f.Func.vars;
  List.iter
    (function Pscalar v -> Hashtbl.replace known_vids v.vid () | Parr _ -> ())
    f.Func.params;
  let array_rank name =
    let ranked a = if a.aname = name then Some (List.length a.adims) else None in
    match List.find_map ranked f.Func.arrays with
    | Some r -> Some r
    | None ->
        List.find_map
          (function Parr a -> ranked a | Pscalar _ -> None)
          f.Func.params
  in
  let known_var where v =
    if not (Hashtbl.mem known_vids v.vid) then
      add Check_form where (Fmt.str "references undeclared variable %s#%d" v.vname v.vid)
  in
  let check_lhs where (chk : Check.t) =
    let rec canonical prev = function
      | [] -> ()
      | (a, c) :: rest ->
          let k = Atom.key a in
          if c = 0 then add Check_form where "zero coefficient in canonical form";
          if k <= prev then
            add Check_form where "canonical form not strictly key-sorted";
          (match Atoms.payload f.Func.atoms k with
          | None ->
              add Check_form where
                (Fmt.str "atom %s#%d not in the function's atom table" (Atom.name a) k)
          | Some (Atoms.Avar v) -> known_var where v
          | Some (Atoms.Aopaque _) | Some (Atoms.Asynth _) -> ());
          canonical k rest
    in
    canonical min_int (Linexpr.terms (Check.lhs chk))
  in
  let check_meta where (m : check_meta) =
    check_lhs where m.chk;
    if m.src_dim < 0 then
      add Check_form where (Fmt.str "negative source dimension %d" m.src_dim);
    match array_rank m.src_array with
    | Some rank when m.src_dim >= rank ->
        add Check_form where
          (Fmt.str "dimension %d out of range for %s (rank %d)" m.src_dim m.src_array
             rank)
    | _ -> () (* synthetic provenance (e.g. PRE's "<pre>") carries no rank *)
  in
  let reach = Func.reachable f in
  Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then
        List.iter
          (fun i ->
            let where = Fmt.str "block %d: %a" b.bid Printer.pp_instr i in
            match i with
            | Check m -> check_meta where m
            | Cond_check (g, m) ->
                check_meta where m;
                if Expr.has_load g then
                  add Check_form where "guard reads memory (must be effect-free)";
                List.iter (known_var where) (Expr.vars_of g)
            | _ -> ())
          b.instrs)
    f

let check_loops (f : Func.t) (idom : int array) add =
  let n = Func.num_blocks f in
  let in_range = List.for_all (fun b -> b >= 0 && b < n) in
  let reach = Func.reachable f in
  let edge_to where ~src ~dst what =
    if not (List.mem dst (Func.succs f src)) then
      add Loop_structure where (Fmt.str "%s: no edge %d -> %d" what src dst)
  in
  let check_shape where ~preheader ~header =
    if preheader = header then
      add Loop_structure where "preheader coincides with header"
    else begin
      edge_to where ~src:preheader ~dst:header "preheader must enter the header";
      if reach.(header) && not (dominates idom preheader header) then
        add Loop_structure where
          (Fmt.str "preheader %d does not dominate header %d" preheader header)
    end
  in
  List.iter
    (fun meta ->
      match meta with
      | Ldo d ->
          let where = Fmt.str "do-loop@%d" d.d_header in
          if not (in_range [ d.d_preheader; d.d_header; d.d_body_entry; d.d_latch; d.d_exit ])
          then add Loop_structure where "loop metadata references out-of-range block"
          else begin
            check_shape where ~preheader:d.d_preheader ~header:d.d_header;
            edge_to where ~src:d.d_latch ~dst:d.d_header "latch must close the loop"
          end
      | Lwhile w ->
          let where = Fmt.str "while-loop@%d" w.w_header in
          if not (in_range [ w.w_preheader; w.w_header; w.w_body_entry; w.w_exit ]) then
            add Loop_structure where "loop metadata references out-of-range block"
          else check_shape where ~preheader:w.w_preheader ~header:w.w_header)
    f.Func.loops

(* ------------------------------------------------------------------ *)
(* Differential rules: compare against a snapshot taken before the
   pass. Passes rebuild instruction lists but preserve the physical
   identity of instructions they do not touch, so [memq] separates the
   pass's insertions from what it merely moved or kept. *)

let instrs_of (f : Func.t) : instr list =
  let acc = ref [] in
  Func.iter_blocks (fun b -> acc := List.rev_append b.instrs !acc) f;
  !acc

let diff ~(before : Func.t) (f : Func.t) =
  let old_instrs = instrs_of before in
  let inserted = ref [] in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun i -> if not (List.memq i old_instrs) then inserted := (b.bid, i) :: !inserted)
        b.instrs)
    f;
  let new_instrs = instrs_of f in
  let removed = List.filter (fun i -> not (List.memq i new_instrs)) old_instrs in
  (List.rev !inserted, removed)

let is_check = function Check _ | Cond_check _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Anticipatability oracle (see the module comment).                   *)

module FMap = Map.Make (struct
  type t = Linexpr.t

  let compare = Linexpr.compare
end)

(* state: family lhs -> smallest generated constant on every path *)
type ant_state = int FMap.t

let kill_keys atoms (i : instr) : int list =
  match i with
  | Assign (v, _) -> Atoms.killed_by_def atoms v
  | Store _ | Call _ -> Atoms.killed_by_store atoms
  | Check _ | Cond_check _ | Trap _ | Print _ -> []

let apply_kills atoms i (st : ant_state) : ant_state =
  match kill_keys atoms i with
  | [] -> st
  | keys ->
      FMap.filter
        (fun lhs _ -> not (List.exists (fun k -> Linexpr.mentions_key lhs k) keys))
        st

let gen_check (chk : Check.t) (st : ant_state) : ant_state =
  FMap.update (Check.lhs chk)
    (function
      | None -> Some (Check.constant chk)
      | Some m -> Some (min m (Check.constant chk)))
    st

(* Backward transfer over a whole block; [is_inserted] gens are
   excluded so an inserted check cannot justify itself. Conditional
   checks generate nothing (they may not execute). *)
let transfer_block atoms ~is_inserted instrs (out_state : ant_state) : ant_state =
  List.fold_left
    (fun st i ->
      let st =
        match i with
        | Check m when not (is_inserted i) -> gen_check m.chk st
        | _ -> st
      in
      apply_kills atoms i st)
    out_state (List.rev instrs)

let ant_solve (f : Func.t) ~is_inserted : ant_state option array * ant_state option array =
  let n = Func.num_blocks f in
  let preds = Func.preds_array f in
  let reaches_exit =
    let r = Array.make n false in
    let rec mark b =
      if not r.(b) then begin
        r.(b) <- true;
        List.iter mark preds.(b)
      end
    in
    Func.iter_blocks (fun b -> if Func.succs_of_term b.term = [] then mark b.bid) f;
    r
  in
  (* None is top; meet is pointwise max over common families *)
  let meet a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some m1, Some m2 ->
        Some
          (FMap.merge
             (fun _ a b ->
               match (a, b) with Some x, Some y -> Some (max x y) | _ -> None)
             m1 m2)
  in
  let state_equal a b =
    match (a, b) with
    | None, None -> true
    | Some m1, Some m2 -> FMap.equal Int.equal m1 m2
    | _ -> false
  in
  let in_ = Array.make n None and out = Array.make n None in
  let order = List.rev (Func.rpo f) in
  let atoms = f.Func.atoms in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        let succs = Func.succs_of_term b.term in
        let o =
          if succs = [] || not reaches_exit.(bid) then Some FMap.empty
          else List.fold_left (fun acc s -> meet acc in_.(s)) None succs
        in
        out.(bid) <- o;
        let i = Option.map (transfer_block atoms ~is_inserted b.instrs) o in
        if not (state_equal in_.(bid) i) then begin
          in_.(bid) <- i;
          changed := true
        end)
      order
  done;
  (in_, out)

(* ------------------------------------------------------------------ *)
(* Per-pass differential rules.                                        *)

let instr_where bid i = Fmt.str "block %d: inserted %a" bid Printer.pp_instr i

(* Every inserted plain check must be anticipatable at its insertion
   point, counting only checks the pass did not itself insert. *)
let check_insertion_safety (f : Func.t) ~inserted add =
  let ins_instrs = List.map snd inserted in
  let is_inserted i = List.memq i ins_instrs in
  let _, out = ant_solve f ~is_inserted in
  let reach = Func.reachable f in
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun (bid, i) ->
      Hashtbl.replace by_block bid (i :: (Option.value ~default:[] (Hashtbl.find_opt by_block bid))))
    inserted;
  Hashtbl.iter
    (fun bid _ ->
      if reach.(bid) then begin
        let b = Func.block f bid in
        let atoms = f.Func.atoms in
        let st = ref (Option.value ~default:FMap.empty out.(bid)) in
        List.iter
          (fun i ->
            (match i with
            | Check m when is_inserted i -> (
                let ok =
                  match FMap.find_opt (Check.lhs m.chk) !st with
                  | Some bound -> bound <= Check.constant m.chk
                  | None -> false
                in
                if not ok then
                  add Insertion (instr_where bid i)
                    "check is not anticipatable at its insertion point (may sit \
                     above a definition of one of its symbols, or trap on a path \
                     that did not)")
            | Check m -> st := gen_check m.chk !st
            | _ -> ());
            st := apply_kills atoms i !st)
          (List.rev b.instrs)
      end)
    by_block

(* Natural loop of [header]: header plus the backward closure of its
   dominated back-edge sources. *)
let natural_loop (f : Func.t) (idom : int array) (preds : int list array) header =
  let n = Func.num_blocks f in
  let inloop = Array.make n false in
  inloop.(header) <- true;
  let rec pull b =
    if not inloop.(b) then begin
      inloop.(b) <- true;
      List.iter pull preds.(b)
    end
  in
  List.iter
    (fun p -> if dominates idom header p then pull p)
    preds.(header);
  inloop

let scalars_defined_in (f : Func.t) (inloop : bool array) =
  let defined = Hashtbl.create 16 in
  Func.iter_blocks
    (fun b ->
      if inloop.(b.bid) then
        List.iter
          (function Assign (v, _) -> Hashtbl.replace defined v.vid () | _ -> ())
          b.instrs)
    f;
  defined

let check_hoist (f : Func.t) (idom : int array) ~inserted ~removed add =
  let preds = Func.preds_array f in
  let preheaders = Hashtbl.create 4 in
  List.iter
    (fun meta ->
      let pre, header =
        match meta with
        | Ldo d -> (d.d_preheader, d.d_header)
        | Lwhile w -> (w.w_preheader, w.w_header)
      in
      Hashtbl.replace preheaders pre header)
    f.Func.loops;
  let invariant_cache = Hashtbl.create 4 in
  let defined_for header =
    match Hashtbl.find_opt invariant_cache header with
    | Some d -> d
    | None ->
        let d = scalars_defined_in f (natural_loop f idom preds header) in
        Hashtbl.replace invariant_cache header d;
        d
  in
  let check_invariant where defined (v : var) =
    if Hashtbl.mem defined v.vid then
      add Insertion where
        (Fmt.str "mentions %s#%d, defined inside the loop it was hoisted out of"
           v.vname v.vid)
  in
  let lhs_vars (chk : Check.t) =
    List.concat_map
      (fun a ->
        match Atoms.payload f.Func.atoms (Atom.key a) with
        | Some (Atoms.Avar v) -> [ v ]
        | Some (Atoms.Aopaque e) -> Expr.vars_of e
        | _ -> [])
      (Linexpr.atoms (Check.lhs chk))
  in
  List.iter
    (fun (bid, i) ->
      let where = instr_where bid i in
      match Hashtbl.find_opt preheaders bid with
      | None ->
          add Insertion where "hoisting pass inserted outside a loop preheader"
      | Some header -> (
          let defined = defined_for header in
          match i with
          | Check m -> List.iter (check_invariant where defined) (lhs_vars m.chk)
          | Cond_check (_, m) ->
              (* The guard may mention loop-variant variables: a
                 while-loop's guard is a copy of the loop condition,
                 evaluated in the preheader where it equals the
                 first-iteration test. Only the check itself must be
                 invariant. *)
              List.iter (check_invariant where defined) (lhs_vars m.chk)
          | _ -> add Insertion where "hoisting pass inserted a non-check instruction"))
    inserted;
  List.iter
    (fun i ->
      match i with
      | Check _ -> ()
      | i ->
          add Insertion
            (Fmt.str "removed %a" Printer.pp_instr i)
            "hoisting pass removed a non-check instruction")
    removed

let check_diff (f : Func.t) (idom : int array) ~(before : Func.t) ~pass add =
  let inserted, removed = diff ~before f in
  let counts g = snd (Func.static_counts g) in
  let require_count_preserved () =
    let cb = counts before and ca = counts f in
    if cb <> ca then
      add Insertion f.Func.fname
        (Fmt.str "%s must preserve the check count (%d -> %d)" (pass_name pass) cb ca)
  in
  let require_removed_checks () =
    List.iter
      (fun i ->
        if not (is_check i) then
          add Insertion
            (Fmt.str "removed %a" Printer.pp_instr i)
            (Fmt.str "%s removed a non-check instruction" (pass_name pass)))
      removed
  in
  match pass with
  | Lowered -> ()
  | Rewrite ->
      require_count_preserved ();
      List.iter
        (fun (bid, i) ->
          match i with
          | Check _ | Assign _ -> () (* rewritten checks + materialized basics *)
          | _ ->
              add Insertion (instr_where bid i)
                "induction rewriting may only rewrite checks and materialize basics")
        inserted
  | Strengthen ->
      require_count_preserved ();
      List.iter
        (fun (bid, i) ->
          match i with
          | Check m ->
              let justified =
                List.exists
                  (fun r ->
                    match r with
                    | Check r ->
                        Linexpr.equal (Check.lhs r.chk) (Check.lhs m.chk)
                        && Check.constant m.chk <= Check.constant r.chk
                    | _ -> false)
                  removed
              in
              if not justified then
                add Insertion (instr_where bid i)
                  "strengthened check has no same-family original it implies"
          | _ ->
              add Insertion (instr_where bid i)
                "strengthening may only rewrite check instructions")
        inserted
  | Code_motion ->
      List.iter
        (fun (bid, i) ->
          if not (match i with Check _ -> true | _ -> false) then
            add Insertion (instr_where bid i)
              "code motion may only insert plain check instructions")
        inserted;
      check_insertion_safety f ~inserted add
  | Hoist -> check_hoist f idom ~inserted ~removed add
  | Elimination ->
      require_removed_checks ();
      List.iter
        (fun (bid, i) ->
          add Insertion (instr_where bid i) "redundancy elimination may only delete")
        inserted
  | Fold ->
      require_removed_checks ();
      List.iter
        (fun (bid, i) ->
          let matches_removed_cond m =
            List.exists
              (function
                | Cond_check (_, r) -> Check.equal r.chk m.chk
                | _ -> false)
              removed
          in
          match i with
          | Trap _ -> () (* compile-time-false check *)
          | Check m | Cond_check (_, m) ->
              if not (matches_removed_cond m) then
                add Insertion (instr_where bid i)
                  "folding may only simplify an existing conditional check"
          | _ ->
              add Insertion (instr_where bid i)
                "folding may only delete, trap, or simplify guards")
        inserted

(* ------------------------------------------------------------------ *)

let func ?(pass = Lowered) ?before (f : Func.t) : violation list =
  let vs = ref [] in
  let add rule where what = vs := { rule; where; what } :: !vs in
  check_cfg f add;
  (* A broken CFG makes preds/dominators meaningless; report it alone. *)
  if !vs <> [] then List.rev !vs
  else begin
    let idom = dominators f in
    check_checks f add;
    check_loops f idom add;
    (match before with
    | None -> ()
    | Some before -> check_diff f idom ~before ~pass add);
    List.rev !vs
  end

let func_exn ?(pass = Lowered) ?before (f : Func.t) : unit =
  match func ~pass ?before f with
  | [] -> ()
  | vs ->
      raise
        (Invalid_ir
           (Fmt.str "@[<v>IR verification failed: %s after %s (%d violation%s)@,%a@]"
              f.Func.fname (pass_name pass) (List.length vs)
              (if List.length vs = 1 then "" else "s")
              (Fmt.list pp_violation) vs))

let program ?pass (p : Program.t) : violation list =
  List.concat_map
    (fun f ->
      List.map
        (fun v -> { v with where = Fmt.str "%s: %s" f.Func.fname v.where })
        (func ?pass f))
    (Program.funcs_sorted p)

(** Whole-IR copying and check stripping.

    The experiment harness optimizes the same naive-checked program
    under many configurations; each run works on its own copy. Block
    ids are preserved, so loop metadata remains valid; the atom
    environment is cloned (it is mutable and append-only). *)

val copy_func : Func.t -> Func.t
val copy_program : Program.t -> Program.t

val restore_func : from_:Func.t -> Func.t -> unit
(** [restore_func ~from_:snapshot f] rolls [f] back to [snapshot] (a
    {!copy_func} of [f] taken earlier), in place: block records and the
    [Func.t] record keep their physical identity, blocks appended since
    the snapshot are dropped, and instruction lists / terminators /
    scalar tables / loop metadata are restored to the snapshot's
    values. The append-only atom table is deliberately left alone —
    entries interned by a rolled-back pass are unused, not wrong. *)

val strip_checks_func : Func.t -> unit

val strip_checks : Program.t -> Program.t
(** A copy with every check-related instruction removed — the "without
    range checking" baseline of Table 1. *)

(** Whole-IR copying and check stripping.

    The experiment harness optimizes the same naive-checked program
    under many configurations; each run works on its own copy. Block
    ids are preserved, so loop metadata remains valid; the atom
    environment is cloned (it is mutable and append-only). *)

val copy_func : Func.t -> Func.t
val copy_program : Program.t -> Program.t

val strip_checks_func : Func.t -> unit

val strip_checks : Program.t -> Program.t
(** A copy with every check-related instruction removed — the "without
    range checking" baseline of Table 1. *)

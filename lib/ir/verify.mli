(** IR invariant verifier — the correctness oracle run between
    optimizer steps (behind [Config.verify]).

    Four invariant classes are checked:

    - {b cfg}: block ids match positions, terminator targets are in
      range, the entry block exists (pred/succ symmetry is structural
      once targets are in range);
    - {b check-form}: every [Check]/[Cond_check] carries a canonical
      linear form over atoms that resolve to live variables, with an
      in-range source dimension and an effect-free guard;
    - {b loop-structure}: recorded preheaders still enter and dominate
      their headers, latches still close their loops;
    - {b insertion}: differential rules keyed by the pass that just
      ran — most importantly, a check inserted by code motion must be
      anticipatable at its insertion point (the paper's safety rule,
      DESIGN.md section 5.4), so no inserted check sits above a
      definition of one of its symbols.

    Differential checking relies on passes preserving the physical
    identity of instructions they do not touch (they all rebuild
    [instrs] lists with [List.filter]/[List.map]-style traversals). *)

type pass =
  | Lowered  (** structural rules only; no differential check *)
  | Rewrite  (** INX induction rewriting: check count preserved *)
  | Strengthen  (** in-place same-family strengthening *)
  | Code_motion  (** PRE insertion: inserted checks must be anticipatable *)
  | Hoist  (** preheader insertion: only checks/guards, only in preheaders *)
  | Elimination  (** redundancy elimination: deletions only *)
  | Fold  (** compile-time folding: deletions, traps, guard folding *)

val pass_name : pass -> string

type rule = Cfg | Check_form | Loop_structure | Insertion

val rule_name : rule -> string

type violation = { rule : rule; where : string; what : string }

val pp_violation : violation Fmt.t

exception Invalid_ir of string
(** Raised by {!func_exn} with a formatted report. *)

val func : ?pass:pass -> ?before:Func.t -> Func.t -> violation list
(** [func ~pass ~before f] checks the structural invariants of [f] and,
    when [before] (a {!Transform.copy_func} snapshot taken before the
    pass ran) is given, the differential rules for [pass]. Returns all
    violations found; [[]] means the IR is well-formed. *)

val func_exn : ?pass:pass -> ?before:Func.t -> Func.t -> unit
(** Like {!func} but raises {!Invalid_ir} on the first report. *)

val program : ?pass:pass -> Program.t -> violation list
(** Structural verification of every function, violations prefixed with
    the function name. *)

(** IR functions: a CFG of basic blocks plus the tables the analyses
    need (atoms, declared arrays, loop metadata from lowering).

    Blocks are integer-addressed; instruction lists are mutable — the
    optimization passes rebuild them in place. *)

open Types

type t = {
  fname : string;
  mutable params : param list;
  mutable vars : var list;
      (** every scalar, including temps; zero-initialized at entry *)
  mutable arrays : arr list;
  blocks : block Nascent_support.Vec.t;
  mutable entry : int;
  atoms : Atoms.t;
  mutable loops : loop_meta list;  (** lowering-time loop structure *)
  mutable next_vid : int;
}

val dummy_block : block

val create : name:string -> params:param list -> t

val fresh_var : t -> name:string -> ty:ty -> var
(** Allocate a scalar with a fresh vid, registered in [vars]. *)

val add_array : t -> arr -> unit

val new_block : t -> block
(** Append an empty block (terminator [Ret]) and return it. *)

val block : t -> int -> block
val num_blocks : t -> int
val iter_blocks : (block -> unit) -> t -> unit

val succs_of_term : terminator -> int list
val succs : t -> int -> int list
val preds_array : t -> int list array

val reachable : t -> bool array
(** Blocks reachable from entry; analyses ignore the rest. *)

val rpo : t -> int list
(** Reverse postorder over reachable blocks — the iteration order of
    the forward data-flow solvers. *)

val split_critical_edges : t -> bool
(** Split every edge from a multi-successor block to a
    multi-predecessor block by inserting an empty block, giving PRE
    edge insertions a place to live. Returns true if anything changed. *)

val fold_checks : ('a -> block -> instr -> check_meta -> 'a) -> 'a -> t -> 'a
(** Fold over every [Check] and [Cond_check] instruction. *)

val all_check_metas : t -> check_meta list

val static_counts : t -> int * int
(** [(instructions, checks)] over reachable blocks — Table 1's static
    columns (checks counted separately, as in the paper). *)

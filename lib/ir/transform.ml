(* Whole-IR copying and check stripping.

   The experiment harness optimizes the same naive-checked program
   under many configurations; each run works on its own copy. Block ids
   are preserved, so loop metadata and atom tables can be shared. *)

module Vec = Nascent_support.Vec
open Types

let copy_func (f : Func.t) : Func.t =
  let blocks = Vec.create ~dummy:Func.dummy_block in
  Vec.iter
    (fun (b : block) -> ignore (Vec.push blocks { bid = b.bid; instrs = b.instrs; term = b.term }))
    f.Func.blocks;
  let loops =
    List.map
      (function
        | Ldo d -> Ldo { d with d_basic = d.d_basic } (* fresh record: d_basic is mutable *)
        | Lwhile w -> Lwhile w)
      f.Func.loops
  in
  {
    f with
    Func.blocks;
    loops;
    atoms = Atoms.clone f.Func.atoms;
    (* vars/arrays are immutable values: shared. *)
  }

let copy_program (p : Program.t) : Program.t =
  let q = Program.create ~main:p.Program.main in
  Program.iter_funcs (fun f -> Program.add q (copy_func f)) p;
  q

(* Remove every check-related instruction: the "without range checking"
   baseline of Table 1. *)
let strip_checks_func (f : Func.t) =
  Func.iter_blocks
    (fun b ->
      b.instrs <-
        List.filter
          (fun i -> match i with Check _ | Cond_check _ | Trap _ -> false | _ -> true)
          b.instrs)
    f

let strip_checks (p : Program.t) : Program.t =
  let q = copy_program p in
  Program.iter_funcs strip_checks_func q;
  q

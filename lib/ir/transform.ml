(* Whole-IR copying and check stripping.

   The experiment harness optimizes the same naive-checked program
   under many configurations; each run works on its own copy. Block ids
   are preserved, so loop metadata and atom tables can be shared. *)

module Vec = Nascent_support.Vec
open Types

let copy_func (f : Func.t) : Func.t =
  let blocks = Vec.create ~dummy:Func.dummy_block in
  Vec.iter
    (fun (b : block) -> ignore (Vec.push blocks { bid = b.bid; instrs = b.instrs; term = b.term }))
    f.Func.blocks;
  let loops =
    List.map
      (function
        | Ldo d -> Ldo { d with d_basic = d.d_basic } (* fresh record: d_basic is mutable *)
        | Lwhile w -> Lwhile w)
      f.Func.loops
  in
  {
    f with
    Func.blocks;
    loops;
    atoms = Atoms.clone f.Func.atoms;
    (* vars/arrays are immutable values: shared. *)
  }

(* Roll a function back to a [copy_func] snapshot, in place: the
   [Func.t] record (and the block records the snapshot shares ids
   with) keep their physical identity, so contexts holding the
   function stay valid. Blocks a failed pass appended beyond the
   snapshot are dropped; blocks the snapshot knows are restored
   field-by-field. The atom table is NOT rewound: it is append-only
   and interning is keyed by content, so entries a rolled-back pass
   interned are merely unused. *)
let restore_func ~(from_ : Func.t) (f : Func.t) : unit =
  let n = Vec.length from_.Func.blocks in
  if Vec.length f.Func.blocks > n then Vec.truncate f.Func.blocks n;
  Vec.iteri
    (fun i (s : block) ->
      if i < Vec.length f.Func.blocks then begin
        let b = Vec.get f.Func.blocks i in
        b.instrs <- s.instrs;
        b.term <- s.term
      end
      else ignore (Vec.push f.Func.blocks { bid = s.bid; instrs = s.instrs; term = s.term }))
    from_.Func.blocks;
  f.Func.params <- from_.Func.params;
  f.Func.vars <- from_.Func.vars;
  f.Func.arrays <- from_.Func.arrays;
  f.Func.entry <- from_.Func.entry;
  f.Func.loops <-
    List.map
      (function Ldo d -> Ldo { d with d_basic = d.d_basic } | Lwhile w -> Lwhile w)
      from_.Func.loops;
  f.Func.next_vid <- from_.Func.next_vid

let copy_program (p : Program.t) : Program.t =
  let q = Program.create ~main:p.Program.main in
  Program.iter_funcs (fun f -> Program.add q (copy_func f)) p;
  q

(* Remove every check-related instruction: the "without range checking"
   baseline of Table 1. *)
let strip_checks_func (f : Func.t) =
  Func.iter_blocks
    (fun b ->
      b.instrs <-
        List.filter
          (fun i -> match i with Check _ | Cond_check _ | Trap _ -> false | _ -> true)
          b.instrs)
    f

let strip_checks (p : Program.t) : Program.t =
  let q = copy_program p in
  Program.iter_funcs strip_checks_func q;
  q

(* IR functions: a CFG of basic blocks plus the tables the analyses
   need (atoms, declared arrays, loop metadata from lowering). *)

module Vec = Nascent_support.Vec
open Types

type t = {
  fname : string;
  mutable params : param list;
  mutable vars : var list; (* every scalar, including temps; entry-initialized *)
  mutable arrays : arr list;
  blocks : block Vec.t;
  mutable entry : int;
  atoms : Atoms.t;
  mutable loops : loop_meta list; (* innermost-last, in lowering order *)
  mutable next_vid : int;
}

let dummy_block = { bid = -1; instrs = []; term = Ret }

let create ~name ~params =
  {
    fname = name;
    params;
    vars = [];
    arrays = [];
    blocks = Vec.create ~dummy:dummy_block;
    entry = 0;
    atoms = Atoms.create ();
    loops = [];
    next_vid = 0;
  }

let fresh_var t ~name ~ty : var =
  let v = { vname = name; vid = t.next_vid; vty = ty } in
  t.next_vid <- t.next_vid + 1;
  t.vars <- v :: t.vars;
  v

let add_array t (a : arr) = t.arrays <- a :: t.arrays

let new_block t : block =
  let b = { bid = Vec.length t.blocks; instrs = []; term = Ret } in
  ignore (Vec.push t.blocks b);
  b

let block t bid = Vec.get t.blocks bid

let num_blocks t = Vec.length t.blocks

let iter_blocks f t = Vec.iter f t.blocks

let succs_of_term = function
  | Goto l -> [ l ]
  | Branch (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret -> []

let succs t bid = succs_of_term (block t bid).term

let preds_array t : int list array =
  let preds = Array.make (num_blocks t) [] in
  iter_blocks
    (fun b -> List.iter (fun s -> preds.(s) <- b.bid :: preds.(s)) (succs_of_term b.term))
    t;
  Array.map List.rev preds

(* Blocks reachable from entry; unreachable blocks are ignored by the
   analyses and the interpreter never visits them. *)
let reachable t : bool array =
  let seen = Array.make (num_blocks t) false in
  let rec go bid =
    if not seen.(bid) then begin
      seen.(bid) <- true;
      List.iter go (succs t bid)
    end
  in
  if num_blocks t > 0 then go t.entry;
  seen

(* Reverse postorder over reachable blocks, the iteration order of the
   forward data-flow solvers. *)
let rpo t : int list =
  let seen = Array.make (num_blocks t) false in
  let order = ref [] in
  let rec go bid =
    if not seen.(bid) then begin
      seen.(bid) <- true;
      List.iter go (succs t bid);
      order := bid :: !order
    end
  in
  if num_blocks t > 0 then go t.entry;
  !order

(* Split every critical edge (from a multi-successor block to a
   multi-predecessor block) by inserting an empty block, so PRE edge
   insertions have a place to live. Returns true if anything changed. *)
let split_critical_edges t : bool =
  let changed = ref false in
  let preds = preds_array t in
  let split_target from_bid to_bid =
    let mid = new_block t in
    mid.term <- Goto to_bid;
    let b = block t from_bid in
    (match b.term with
    | Branch (c, x, y) ->
        let x = if x = to_bid then mid.bid else x in
        let y = if y = to_bid then mid.bid else y in
        b.term <- Branch (c, x, y)
    | Goto _ | Ret -> invalid_arg "split_critical_edges: not a branch");
    changed := true
  in
  let n = num_blocks t in
  for bid = 0 to n - 1 do
    let b = block t bid in
    match b.term with
    | Branch (_, x, y) when x <> y ->
        if List.length preds.(x) > 1 then split_target bid x;
        if List.length preds.(y) > 1 then split_target bid y
    | _ -> ()
  done;
  !changed

(* Fold over every check-bearing instruction of the function. *)
let fold_checks f init t =
  Vec.fold
    (fun acc b ->
      List.fold_left
        (fun acc i ->
          match i with
          | Check m -> f acc b i m
          | Cond_check (_, m) -> f acc b i m
          | _ -> acc)
        acc b.instrs)
    init t.blocks

let all_check_metas t : check_meta list =
  List.rev (fold_checks (fun acc _ _ m -> m :: acc) [] t)

(* Static instruction counts, as reported in Table 1: range checks are
   counted separately from other instructions. *)
let static_counts t =
  let instrs = ref 0 and checks = ref 0 in
  let reach = reachable t in
  iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        List.iter
          (fun i ->
            match i with
            | Check _ | Cond_check _ -> incr checks
            | _ -> incr instrs)
          b.instrs;
        match b.term with Branch _ -> incr instrs | Goto _ | Ret -> ()
      end)
    t;
  (!instrs, !checks)

(* Per-compile translation validation (the oracle reused as a checker).

   After optimization, prove — for every check site of the reference
   function — that the optimized function still performs that check or
   renders it unnecessary: the residual check set available at the
   corresponding program point, plus the branch conditions known on
   every path into the block, implies the original check's constraint.
   The proof engine is {!Nascent_checks.Oracle}; a successful run is a
   certificate that no execution the original program would have
   trapped on slips through the optimized one.

   Why a lockstep walk is enough: every optimizer pass preserves block
   ids ({!Transform.copy_func} snapshots keep them; new blocks from
   edge splitting or preheaders are appended past the reference range)
   and never removes or reorders non-check instructions. So reference
   and optimized block [bid] agree on their non-check instruction
   sequence — modulo assignments to variables the reference never
   mentions (the INX rewrite's materialized basic variables), which the
   walk skips while still applying their transfer — and check
   obligations can be discharged region by region between matching
   instructions.

   Hypotheses are a must-state over the optimized function with two
   parts:
   - {e facts}: canonical constraints guaranteed to hold — performed
     checks, linearizable branch conditions of the edges leading in
     (the "dominating guards"), and the strongest postconditions of
     assignments: [v := v + c] shifts every fact mentioning [v]'s atom
     ([a*v + r <= k] becomes [a*v + r <= k + a*c]), and [v := e] with a
     [v]-free linear [e] contributes the equality [v = e] as two
     inequalities. This is what lets loop-body obligations discharge:
     the preheader's [i := lo] plus the latch's shifted facts and the
     trip-test edge fact reconstruct the induction variable's range.
   - {e conditional facts} [guards => check] from [Cond_check]s (the
     insertion scheme's hoisted, trip-guarded checks). They flow along
     and activate by closure wherever the current facts prove their
     guards — inside the loop the trip condition is an edge fact, so
     the preheader's guarded bound check becomes available exactly
     where the deleted body checks need it.

   Block entry states come from a forward data-flow. The meet is
   semantic: a candidate fact (drawn from every incoming path) survives
   if {e every} path proves it — plain set intersection would lose
   facts that hold on all paths under different spellings ([i = lo] on
   the preheader path versus [i <= hi] on the back edge). Conditional
   facts meet by intersection. A [Trap] makes everything after it dead,
   so remaining obligations are vacuous.

   The validator is total and fail-safe: anything it cannot relate —
   structure mismatch, unlinearizable guard, oracle "unknown" — is a
   reported failure, never an exception, and the whole run is bounded
   by its own {!Guard} fuel budget. *)

module Atom = Nascent_checks.Atom
module Check = Nascent_checks.Check
module Linexpr = Nascent_checks.Linexpr
module Oracle = Nascent_checks.Oracle
module Guard = Nascent_support.Guard
open Types

let fuel_budget = 2_000_000
let budget_name = "validate"

type site = {
  s_func : string;
  s_bid : int;
  s_check : Check.t;
  s_reason : string;
}

type t = {
  total_sites : int;
  proven_sites : int;
  failures : site list; (* reference order; empty iff validated *)
}

let validated t = t.failures = []

let empty = { total_sites = 0; proven_sites = 0; failures = [] }

let merge a b =
  {
    total_sites = a.total_sites + b.total_sites;
    proven_sites = a.proven_sites + b.proven_sites;
    failures = a.failures @ b.failures;
  }

module CSet = Set.Make (Check)

module Cond = struct
  (* guards => fact, from a [Cond_check]; guards sorted for canonical
     set membership *)
  type t = Check.t list * Check.t

  let compare (g1, c1) (g2, c2) =
    match List.compare Check.compare g1 g2 with
    | 0 -> Check.compare c1 c2
    | n -> n
end

module CondSet = Set.Make (Cond)

type hstate = { facts : CSet.t; conds : CondSet.t }

let h_empty = { facts = CSet.empty; conds = CondSet.empty }

let h_equal a b =
  CSet.equal a.facts b.facts && CondSet.equal a.conds b.conds

(* --- boolean exprs as conjunctions of canonical constraints --------- *)

let rec ty_of (e : expr) : ty option =
  match e with
  | Cint _ -> Some Int
  | Creal _ -> Some Real
  | Cbool _ -> Some Bool
  | Evar v -> Some v.vty
  | Eload (a, _) -> Some a.aty
  | Eun (Neg, e) | Eun (Abs, e) -> ty_of e
  | Eun (Not, _) -> Some Bool
  | Ebin ((Add | Sub | Mul | Div | Mod | Min | Max), a, b) -> (
      match (ty_of a, ty_of b) with
      | Some Int, Some Int -> Some Int
      | Some Real, _ | _, Some Real -> Some Real
      | _ -> None)
  | Ebin ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Some Bool

let int_operands a b = ty_of a = Some Int && ty_of b = Some Int

(* [Some cs]: the expr holds iff every constraint in [cs] holds.
   [None]: not a conjunction of integer comparisons (disjunctions,
   real comparisons, opaque booleans) — contributes no hypotheses.
   The [Lt]/[Gt] strict forms use the integer tightening [a < b <=>
   a <= b-1], which is why real operands are rejected. *)
let rec constraints_of ~(positive : bool) (atoms : Atoms.t) (e : expr) :
    Check.t list option =
  let lin e = Canon.linearize atoms e in
  (* a <= b + slack *)
  let le a b ~slack =
    let be, bc = lin b in
    Some [ Check.upper ~sub:(lin a) ~bound:(be, Linexpr.checked_add bc slack) ]
  in
  let both a b =
    match (a, b) with Some a, Some b -> Some (a @ b) | _ -> None
  in
  match (e, positive) with
  | Cbool b, _ -> if b = positive then Some [] else None
  | Eun (Not, e), _ -> constraints_of ~positive:(not positive) atoms e
  | Ebin (And, a, b), true | Ebin (Or, a, b), false ->
      both (constraints_of ~positive atoms a) (constraints_of ~positive atoms b)
  | Ebin (Le, a, b), true when int_operands a b -> le a b ~slack:0
  | Ebin (Lt, a, b), true when int_operands a b -> le a b ~slack:(-1)
  | Ebin (Ge, a, b), true when int_operands a b -> le b a ~slack:0
  | Ebin (Gt, a, b), true when int_operands a b -> le b a ~slack:(-1)
  | Ebin (Le, a, b), false when int_operands a b -> le b a ~slack:(-1)
  | Ebin (Lt, a, b), false when int_operands a b -> le b a ~slack:0
  | Ebin (Ge, a, b), false when int_operands a b -> le a b ~slack:(-1)
  | Ebin (Gt, a, b), false when int_operands a b -> le a b ~slack:0
  | Ebin (Eq, a, b), true when int_operands a b ->
      both (le a b ~slack:0) (le b a ~slack:0)
  | _ -> None

let constraints_of_opt ~positive atoms e =
  match constraints_of ~positive atoms e with
  | exception Linexpr.Overflow -> []
  | None -> []
  | Some cs -> cs

(* --- proofs ---------------------------------------------------------- *)

let entails (facts : CSet.t) (goal : Check.t) : bool =
  Guard.tick_ambient ();
  Oracle.implies ~hyps:(CSet.elements facts) goal

(* Activate every conditional fact whose guards the current facts
   prove, to fixpoint (each round either fires at least one pending
   conditional or stops, so it terminates in at most |conds| rounds). *)
let close (h : hstate) : CSet.t =
  let facts = ref h.facts in
  let pending = ref (CondSet.elements h.conds) in
  let continue = ref (!pending <> []) in
  while !continue do
    continue := false;
    Guard.tick_ambient ();
    pending :=
      List.filter
        (fun (gs, c) ->
          if List.for_all (fun g -> entails !facts g) gs then begin
            facts := CSet.add c !facts;
            continue := true;
            false
          end
          else true)
        !pending
  done;
  !facts

(* --- hypothesis-state transfer over optimized instructions ---------- *)

let cond_mentions ((gs, c) : Cond.t) (k : int) : bool =
  Check.mentions_key c k || List.exists (fun g -> Check.mentions_key g k) gs

let kill_state (keys : int list) (h : hstate) : hstate =
  if keys = [] then h
  else
    {
      facts =
        CSet.filter
          (fun c -> not (List.exists (fun k -> Check.mentions_key c k) keys))
          h.facts;
      conds =
        CondSet.filter
          (fun cd -> not (List.exists (cond_mentions cd) keys))
          h.conds;
    }

(* Strongest postcondition of [v := e] over the hypothesis state:
   - pure self-increment [v := v + c]: every fact whose only killed
     atom is [v]'s own shifts exactly — [a*v_old + r <= k] becomes
     [a*v + r <= k + a*c];
   - [v := e] where the linearized [e] mentions nothing a definition
     of [v] kills: facts mentioning [v] die, and the equality
     [v = e] enters as two inequalities;
   - anything else (opaque right-hand side, self-reference through an
     opaque atom): plain kill. Conditional facts never shift. *)
let assign_transfer atoms (v : var) (e : expr) (h : hstate) : hstate =
  let killed = Atoms.killed_by_def atoms v in
  let plain_kill () = kill_state killed h in
  if v.vty <> Int then plain_kill ()
  else
    match Canon.linearize atoms e with
    | exception Linexpr.Overflow -> plain_kill ()
    | le, c -> (
        let kv = Atom.key (Atoms.of_var atoms v) in
        match Linexpr.terms le with
        | [ (a, 1) ] when Atom.key a = kv ->
            (* v := v + c *)
            let others = List.filter (fun k -> k <> kv) killed in
            let shift chk acc =
              if List.exists (fun k -> Check.mentions_key chk k) others then
                acc
              else
                let co = Linexpr.coeff_of_key (Check.lhs chk) kv in
                if co = 0 then CSet.add chk acc
                else
                  match
                    Linexpr.checked_add (Check.constant chk)
                      (Linexpr.checked_mul co c)
                  with
                  | k' -> CSet.add (Check.make (Check.lhs chk) k') acc
                  | exception Linexpr.Overflow -> acc
            in
            {
              facts = CSet.fold shift h.facts CSet.empty;
              conds =
                CondSet.filter
                  (fun cd -> not (List.exists (cond_mentions cd) killed))
                  h.conds;
            }
        | _
          when (not (Linexpr.mentions_key le kv))
               && not (List.exists (Linexpr.mentions_key le) killed) -> (
            let h = plain_kill () in
            let lv = Linexpr.of_atom (Atoms.of_var atoms v) in
            match
              ( Check.make (Linexpr.sub lv le) c,
                Check.make (Linexpr.sub le lv) (Linexpr.checked_mul (-1) c) )
            with
            | lo, hi -> { h with facts = CSet.add lo (CSet.add hi h.facts) }
            | exception Linexpr.Overflow -> h)
        | _ -> plain_kill ())

(* Transfer for one optimized-side instruction; [None] = code past an
   unconditional trap (dead, hypotheses irrelevant). [checks:false] is
   the {e ambient} variant: check instructions contribute nothing, so
   the resulting facts depend only on assignments and branch structure
   — exactly the facts that survive any further check deletion. *)
let transfer ?(checks = true) atoms (h : hstate option) (i : instr) :
    hstate option =
  match h with
  | None -> None
  | Some h -> (
      match i with
      | Check m ->
          if checks then Some { h with facts = CSet.add m.chk h.facts }
          else Some h
      | Cond_check _ when not checks -> Some h
      | Cond_check (g, m) -> (
          match constraints_of ~positive:true atoms g with
          | exception Linexpr.Overflow -> Some h
          | None -> Some h
          | Some [] -> Some { h with facts = CSet.add m.chk h.facts }
          | Some gs ->
              let conds =
                CondSet.add (List.sort Check.compare gs, m.chk) h.conds
              in
              let facts =
                if List.for_all (entails h.facts) gs then
                  CSet.add m.chk h.facts
                else h.facts
              in
              Some { facts; conds })
      | Trap _ -> None
      | Assign (v, e) -> Some (assign_transfer atoms v e h)
      | Store _ | Call _ -> Some (kill_state (Atoms.killed_by_store atoms) h)
      | Print _ -> Some h)

(* --- block-entry hypotheses: must-availability + edge facts --------- *)

(* Forward data-flow over the optimized function. out.(b) = None means
   "not yet reached" (top); in(b) is the semantic meet over reachable
   predecessors of out(p) + the constraints of the edge p->b's branch
   condition. A block ending in (or past) a trap propagates top. *)
let entry_hyps ?(checks = true) (f : Func.t) : hstate array =
  let atoms = f.Func.atoms in
  let n = Func.num_blocks f in
  let reach = Func.reachable f in
  let preds = Func.preds_array f in
  let out : hstate option option array = Array.make n None in
  (* outer None = unvisited(top); inner option = trap-dead *)
  let edge_facts p b =
    match (Func.block f p).term with
    | Branch (c, t, e) when t <> e ->
        if b = t then constraints_of_opt ~positive:true atoms c
        else if b = e then constraints_of_opt ~positive:false atoms c
        else []
    | _ -> []
  in
  (* Affine loop invariants as meet {e candidates}: a counted loop whose
     basic variable [h] was materialized by the INX rewrite maintains
     [index = lo + step*h] at its header (established by the
     preheader's [index := lo; h := 0], preserved by the latch's
     paired increments). The data-flow cannot invent this family on its
     own — the meet only keeps facts some incoming path already spells
     out — so the loop metadata {e suggests} the equality and every
     incoming path must still {e prove} it before it is admitted.
     Nothing is trusted: an invariant the code does not actually
     maintain simply fails its proof and is dropped. *)
  let inv_candidates : (int, Check.t list) Hashtbl.t =
    let tbl = Hashtbl.create 8 in
    List.iter
      (function
        | Lwhile _ | Ldo { d_basic = None; _ } -> ()
        | Ldo ({ d_basic = Some h; _ } as d) -> (
            match
              let le, lc = Canon.linearize atoms d.d_lo in
              let li = Linexpr.of_atom (Atoms.of_var atoms d.d_index) in
              let lh = Linexpr.of_atom (Atoms.of_var atoms h) in
              let lhs =
                Linexpr.sub (Linexpr.sub li (Linexpr.scale d.d_step lh)) le
              in
              ( Check.make lhs lc,
                Check.make (Linexpr.neg lhs) (Linexpr.checked_mul (-1) lc) )
            with
            | c1, c2 ->
                let prev =
                  Option.value (Hashtbl.find_opt tbl d.d_header) ~default:[]
                in
                Hashtbl.replace tbl d.d_header (c1 :: c2 :: prev)
            | exception Linexpr.Overflow -> ()))
      f.Func.loops;
    tbl
  in
  let in_of b =
    if b = f.Func.entry then h_empty
    else
      let paths =
        List.filter_map
          (fun p ->
            if not reach.(p) then None
            else
              match out.(p) with
              | None (* unvisited: top *) | Some None (* trap-dead *) -> None
              | Some (Some op) ->
                  Some
                    {
                      op with
                      facts =
                        List.fold_left
                          (fun s c -> CSet.add c s)
                          op.facts (edge_facts p b);
                    })
          preds.(b)
      in
      match paths with
      | [] -> h_empty
      | _ ->
          let judged = List.map (fun h -> (h.facts, lazy (close h))) paths in
          let proven_on_all c =
            List.for_all
              (fun (facts, closed) ->
                CSet.mem c facts || entails (Lazy.force closed) c)
              judged
          in
          let base =
            match paths with
            | [ h ] -> h
            | h0 :: rest ->
                (* Semantic meet: keep a candidate fact iff every path
                   proves it; conditional facts meet structurally. *)
                let conds =
                  List.fold_left
                    (fun acc h -> CondSet.inter acc h.conds)
                    h0.conds rest
                in
                let candidates =
                  List.fold_left
                    (fun acc h -> CSet.union acc h.facts)
                    h0.facts rest
                in
                { facts = CSet.filter proven_on_all candidates; conds }
            | [] -> assert false
          in
          List.fold_left
            (fun st c ->
              if CSet.mem c st.facts || not (proven_on_all c) then st
              else { st with facts = CSet.add c st.facts })
            base
            (Option.value (Hashtbl.find_opt inv_candidates b) ~default:[])
  in
  let same_out a b =
    match (a, b) with
    | None, None | Some None, Some None -> true
    | Some (Some x), Some (Some y) -> h_equal x y
    | _ -> false
  in
  let rpo = Func.rpo f in
  let changed = ref true in
  let ins = Array.make n h_empty in
  (* The semantic meet is not a lattice meet: a loop-carried bound can
     creep ([i <= 1], then [i <= 2], ... — each weakening provable from
     the entry path) and never settle. Widen from the third sweep on:
     keep only facts already present in the previous solution, so the
     per-block state is non-increasing and the solve terminates. Any
     fixpoint reached is sound — widening only removes facts, and a
     subset of a sound must-set is still a sound must-set. The sweep
     cap is a backstop for the fuel-bounded (hence not perfectly
     monotone) oracle inside [transfer]; on non-convergence fall back
     to the sound weak seed (empty hypothesis states). *)
  let max_sweeps = (2 * n) + 8 in
  let sweeps = ref 0 in
  while !changed && !sweeps <= max_sweeps do
    changed := false;
    incr sweeps;
    Guard.tick_ambient ();
    List.iter
      (fun b ->
        let i = in_of b in
        let i =
          if !sweeps <= 2 then i
          else
            {
              facts = CSet.inter i.facts ins.(b).facts;
              conds = CondSet.inter i.conds ins.(b).conds;
            }
        in
        ins.(b) <- i;
        let o =
          List.fold_left (transfer ~checks atoms) (Some i) (Func.block f b).instrs
        in
        if not (same_out out.(b) (Some o)) then begin
          out.(b) <- Some o;
          changed := true
        end)
      rpo
  done;
  (if Sys.getenv_opt "NASCENT_VALIDATE_DEBUG" <> None then begin
     Printf.eprintf "[validate] %s: sweeps=%d converged=%b\n%!" f.Func.fname
       !sweeps (not !changed);
     Array.iteri
       (fun b h ->
         if reach.(b) then
           Printf.eprintf "  b%d: %d facts, %d conds\n%!" b
             (CSet.cardinal h.facts) (CondSet.cardinal h.conds))
       ins
   end);
  if !changed then Array.make n h_empty else ins

(* --- the lockstep walk ---------------------------------------------- *)

let is_checkish = function Check _ | Cond_check _ | Trap _ -> true | _ -> false

let span p xs =
  let rec go acc = function
    | x :: rest when p x -> go (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] xs

(* Structural match for the non-check instructions both sides share. *)
let same_instr (a : instr) (b : instr) =
  match (a, b) with
  | Assign (v, e), Assign (v', e') -> v.vid = v'.vid && Expr.equal e e'
  | Store (r, ixs, e), Store (r', ixs', e') ->
      r.aid = r'.aid
      && List.length ixs = List.length ixs'
      && List.for_all2 Expr.equal ixs ixs'
      && Expr.equal e e'
  | Print e, Print e' -> Expr.equal e e'
  | Call (n, args), Call (n', args') -> n = n' && args = args'
  | _ -> false

let validate_block ~fname ~atoms ~orig_vids (entry : hstate) (ob : block)
    (pb : block) : t =
  let results = ref [] in
  let record chk ok reason =
    results := (chk, ok, reason) :: !results
  in
  (* Discharge the reference-side check region against the closed fact
     set; [dead] means the optimized side already trapped
     unconditionally. *)
  let discharge ~dead ~opt_region facts orig_region =
    List.iter
      (fun i ->
        Guard.tick_ambient ();
        match i with
        | Check m ->
            if dead then record m.chk true "dead-after-trap"
            else if entails facts m.chk then record m.chk true "implied"
            else if
              (* a trap in this region is justified replacement for a
                 compile-time-false check *)
              Check.compile_time_value m.chk = Some false
              && List.exists (function Trap _ -> true | _ -> false) opt_region
            then record m.chk true "trap"
            else record m.chk false "no proof"
        | Cond_check (g, m) ->
            if dead then record m.chk true "dead-after-trap"
            else if
              List.exists
                (function
                  | Cond_check (g', m') ->
                      Expr.equal g g' && Check.equal m.chk m'.chk
                  | _ -> false)
                opt_region
            then record m.chk true "retained"
            else if entails facts m.chk then record m.chk true "implied"
            else record m.chk false "guarded check lost"
        | Trap _ ->
            if not (dead || List.exists (function Trap _ -> true | _ -> false) opt_region)
            then record (Check.make Linexpr.zero (-1)) false "trap lost"
        | _ -> assert false)
      orig_region
  in
  let fail_rest reason orig_rest =
    List.iter
      (fun i ->
        match i with
        | Check m | Cond_check (_, m) -> record m.chk false reason
        | _ -> ())
      orig_rest
  in
  let step h i = Option.value (transfer atoms (Some h) i) ~default:h_empty in
  let rec walk ~dead hyps orig opt =
    let orig_region, orig_rest = span is_checkish orig in
    let opt_region, opt_rest = span is_checkish opt in
    (* All checks of the optimized region strengthen the hypotheses
       before obligations are discharged: within a region there are no
       kills, and a region check that traps makes the remaining
       obligations vacuous anyway. *)
    let hyps' =
      List.fold_left (transfer atoms) (Some hyps) opt_region
    in
    let dead' = dead || hyps' = None in
    let hyps' = Option.value hyps' ~default:h_empty in
    discharge ~dead ~opt_region (close hyps') orig_region;
    match (orig_rest, opt_rest) with
    | [], _ ->
        (* No obligations left; any trailing optimized-side
           instructions (inserted checks, materialized-variable
           assignments) carry no proof burden of their own. *)
        ()
    | o :: _, (Assign (v, _) as p) :: ps
      when (not (same_instr o p)) && not (Hashtbl.mem orig_vids v.vid) ->
        (* INX-materialized basic variable: skip, keep its transfer *)
        walk ~dead:dead' (step hyps' p) orig_rest ps
    | o :: os, p :: ps when same_instr o p ->
        walk ~dead:dead' (step hyps' p) os ps
    | _, _ -> fail_rest "structure mismatch" orig_rest
  in
  walk ~dead:false entry ob.instrs pb.instrs;
  let results = List.rev !results in
  {
    total_sites = List.length results;
    proven_sites = List.length (List.filter (fun (_, ok, _) -> ok) results);
    failures =
      List.filter_map
        (fun (chk, ok, reason) ->
          if ok then None
          else
            Some { s_func = fname; s_bid = ob.bid; s_check = chk; s_reason = reason })
        results;
  }

let func ~(original : Func.t) ~(optimized : Func.t) : t =
  let atoms = optimized.Func.atoms in
  let entry = entry_hyps optimized in
  let reach = Func.reachable original in
  (* Variables the reference function mentions anywhere: assignments to
     anything else on the optimized side are compiler-materialized. *)
  let orig_vids = Hashtbl.create 64 in
  List.iter
    (fun (v : var) -> Hashtbl.replace orig_vids v.vid ())
    original.Func.vars;
  List.iter
    (function Pscalar v -> Hashtbl.replace orig_vids v.vid () | Parr _ -> ())
    original.Func.params;
  let acc = ref empty in
  Func.iter_blocks
    (fun ob ->
      if reach.(ob.bid) && ob.bid < Func.num_blocks optimized then
        let pb = Func.block optimized ob.bid in
        acc :=
          merge !acc
            (validate_block ~fname:original.Func.fname ~atoms ~orig_vids
               entry.(ob.bid) ob pb))
    original;
  !acc

let func_guarded ~original ~optimized : t =
  let fuel = Guard.fuel ~what:budget_name ~budget:fuel_budget in
  try Guard.with_fuel fuel (fun () -> func ~original ~optimized)
  with Guard.Fuel_exhausted w when w = budget_name ->
    let _, checks = Func.static_counts original in
    {
      total_sites = checks;
      proven_sites = 0;
      failures =
        [
          {
            s_func = original.Func.fname;
            s_bid = original.Func.entry;
            s_check = Check.make Linexpr.zero 0;
            s_reason = "validation fuel exhausted";
          };
        ];
    }

let program ~(original : Program.t) ~(optimized : Program.t) : t =
  List.fold_left
    (fun acc (f : Func.t) ->
      match Program.find optimized f.Func.fname with
      | None ->
          merge acc
            {
              total_sites = 0;
              proven_sites = 0;
              failures =
                [
                  {
                    s_func = f.Func.fname;
                    s_bid = 0;
                    s_check = Check.make Linexpr.zero 0;
                    s_reason = "function missing from optimized program";
                  };
                ];
            }
      | Some opt -> merge acc (func_guarded ~original:f ~optimized:opt))
    empty
    (Program.funcs_sorted original)

let pp_site ppf s =
  Fmt.pf ppf "%s.b%d: %a — %s" s.s_func s.s_bid Check.pp s.s_check s.s_reason

let pp ppf t =
  if validated t then
    Fmt.pf ppf "validated: %d/%d check sites proven" t.proven_sites t.total_sites
  else
    Fmt.pf ppf "@[<v>NOT validated: %d/%d check sites proven@,%a@]"
      t.proven_sites t.total_sites (Fmt.list pp_site) t.failures

(* Positions of plain check instructions the validator could not
   re-prove if they were deleted: the check's constraint is unprovable
   from the full hypothesis state of its check region with the site
   itself excluded — exactly the discharge the lockstep walk would
   attempt for that obligation after the deletion. Used by
   {!Mutate.Unsound_eliminate} to pick deletions the validator is
   guaranteed to catch (under schemes whose residual in-place checks
   are reference checks). *)
let fragile_sites (f : Func.t) : (block * int) list =
  let atoms = f.Func.atoms in
  let entry = entry_hyps f in
  let reach = Func.reachable f in
  let acc = ref [] in
  Func.iter_blocks
    (fun b ->
      if reach.(b.bid) then begin
        let instrs = Array.of_list b.instrs in
        let n = Array.length instrs in
        let h = ref (Some entry.(b.bid)) in
        let i = ref 0 in
        while !i < n do
          if is_checkish instrs.(!i) then begin
            (* a check region [j0, j1), as the walk spans them *)
            let j0 = !i in
            while !i < n && is_checkish instrs.(!i) do
              incr i
            done;
            let j1 = !i in
            (match !h with
            | None -> () (* dead past a trap: obligations are vacuous *)
            | Some h0 ->
                for j = j0 to j1 - 1 do
                  match instrs.(j) with
                  | Check m ->
                      let hyps = ref (Some h0) in
                      for k = j0 to j1 - 1 do
                        if k <> j then hyps := transfer atoms !hyps instrs.(k)
                      done;
                      (match !hyps with
                      | Some s when not (entails (close s) m.chk) ->
                          acc := (b, j) :: !acc
                      | _ -> ())
                  | _ -> ()
                done);
            for k = j0 to j1 - 1 do
              h := transfer atoms !h instrs.(k)
            done
          end
          else begin
            h := transfer atoms !h instrs.(!i);
            incr i
          end
        done
      end)
    f;
  List.rev !acc

(* --- the ambient fact engine, exposed for oracle elimination --------- *)

module Facts = struct
  type state = hstate

  let ambient_entry (f : Func.t) : state array = entry_hyps ~checks:false f

  let step atoms (s : state option) (i : instr) : state option =
    transfer ~checks:false atoms s i

  let proves (s : state) (goal : Check.t) : bool = entails (close s) goal
end

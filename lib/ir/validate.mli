(** Per-compile translation validation.

    Proves, for every check site of a reference function, that the
    optimized function still performs that check or renders it
    unnecessary: the residual checks available at the corresponding
    program point, plus the branch conditions holding on every path
    into the block (the dominating guards), imply the original check's
    constraint — with {!Nascent_checks.Oracle} as the proof engine.

    The reference is the function as it entered the optimization
    pipeline (after the INX canonicalization pre-pass, whose own
    rewrite is covered by {!Verify}'s differential rules). A successful
    run is a machine-checked certificate that the optimizer deleted
    only checks it could prove redundant; the result is surfaced as the
    [validated] field of [--stats-json] and of the [nascentd] response,
    and a failure feeds the service breaker as an incident.

    Total and fail-safe: anything the validator cannot relate —
    structure mismatch, unlinearizable guard, oracle "unknown", fuel
    exhaustion — is a reported failure, never an exception or a hang
    (the run is bounded by its own {!Nascent_support.Guard} budget). *)

type site = {
  s_func : string;
  s_bid : int;  (** reference block id of the unproven site *)
  s_check : Nascent_checks.Check.t;
  s_reason : string;  (** why the obligation failed *)
}

type t = {
  total_sites : int;  (** check sites of the reference program *)
  proven_sites : int;
  failures : site list;  (** reference order; empty iff validated *)
}

val validated : t -> bool

val empty : t
val merge : t -> t -> t

val func : original:Func.t -> optimized:Func.t -> t
(** Validate one function pair (unbounded — callers wanting the fuel
    guarantee use {!func_guarded} or {!program}). *)

val func_guarded : original:Func.t -> optimized:Func.t -> t
(** {!func} under the validator's own fuel budget; exhaustion reports a
    single "validation fuel exhausted" failure instead of raising. *)

val program : original:Program.t -> optimized:Program.t -> t
(** Validate every function of the reference program against its
    optimized counterpart (missing counterparts are failures). *)

val pp_site : site Fmt.t
val pp : t Fmt.t

val fragile_sites : Func.t -> (Types.block * int) list
(** Positions [(block, index)] of plain check instructions whose
    constraint the validator could not re-prove were the instruction
    deleted: unprovable from the full hypothesis state of its check
    region with the site itself excluded. {!Mutate}'s
    [Unsound_eliminate] class picks its deletions here, so the
    translation validator is guaranteed to refuse the certificate. *)

(** The validator's hypothesis engine in {e ambient} mode: check
    instructions contribute no facts, so the state at a point depends
    only on assignments and the branch conditions holding on every path
    in. A check provable from ambient facts stays provable after {e
    any} set of check deletions — the proof ingredients survive in the
    program text — which is what lets the oracle elimination pass
    delete such checks while the per-compile translation validator
    still re-derives every proof on the post-deletion function. *)
module Facts : sig
  type state

  val ambient_entry : Func.t -> state array
  (** Per-block entry states from the validator's forward data-flow
      (semantic meet, affine loop-invariant candidates, widening) with
      check contributions disabled. *)

  val step : Atoms.t -> state option -> Types.instr -> state option
  (** Ambient transfer of one instruction; [None] = dead past an
      unconditional trap. *)

  val proves : state -> Nascent_checks.Check.t -> bool
  (** Sound, fuel-bounded entailment: [true] means every execution
      reaching a point with this state satisfies the constraint. *)
end

(* Per-function atom environment.

   Maps IR entities to the symbolic atoms of canonical range
   expressions:
   - a scalar variable maps to a stable atom;
   - a non-linear subscript subexpression maps to a hash-consed
     *opaque* atom (the whole subexpression is one symbolic term);
   - analyses may allocate *synthetic* atoms (basic loop variables of
     induction analysis, SSA names).

   The environment also answers the kill question of the check data
   flow: which atom keys does a definition of variable [v] invalidate?
   (The atom of [v] itself plus every opaque atom whose expression
   mentions [v]; synthetic atoms have their own kill rules, managed by
   the analysis that created them.) *)

module Atom = Nascent_checks.Atom

type payload =
  | Avar of Types.var
  | Aopaque of Types.expr
  | Asynth of string (* descriptive name; kill rules are the creator's business *)

type t = {
  mutable next : int;
  var_atoms : (int, Atom.t) Hashtbl.t; (* vid -> atom *)
  mutable opaques : (Types.expr * Atom.t) list; (* hash-consed via Expr.equal *)
  payloads : (int, payload) Hashtbl.t; (* atom key -> payload *)
  killed : (int, int list) Hashtbl.t; (* vid -> atom keys killed by defining it *)
  mutable load_opaques : int list;
      (* opaque atoms whose expression reads an array: killed by any
         store or call, since memory may change under them *)
}

let create () =
  {
    next = 0;
    var_atoms = Hashtbl.create 32;
    opaques = [];
    payloads = Hashtbl.create 32;
    killed = Hashtbl.create 32;
    load_opaques = [];
  }

(* Independent copy: optimization runs on program copies that allocate
   new atoms (INX basic variables); sharing the tables would leak state
   between runs. Atom values themselves are immutable and shareable. *)
let clone t =
  {
    next = t.next;
    var_atoms = Hashtbl.copy t.var_atoms;
    opaques = t.opaques;
    payloads = Hashtbl.copy t.payloads;
    killed = Hashtbl.copy t.killed;
    load_opaques = t.load_opaques;
  }

let fresh_key t =
  let k = t.next in
  t.next <- k + 1;
  k

let add_kill t vid key =
  let old = Option.value ~default:[] (Hashtbl.find_opt t.killed vid) in
  Hashtbl.replace t.killed vid (key :: old)

let of_var t (v : Types.var) : Atom.t =
  match Hashtbl.find_opt t.var_atoms v.vid with
  | Some a -> a
  | None ->
      let a = Atom.make ~key:(fresh_key t) ~name:v.vname in
      Hashtbl.replace t.var_atoms v.vid a;
      Hashtbl.replace t.payloads (Atom.key a) (Avar v);
      add_kill t v.vid (Atom.key a);
      a

let of_opaque t (e : Types.expr) : Atom.t =
  match List.find_opt (fun (e', _) -> Expr.equal e e') t.opaques with
  | Some (_, a) -> a
  | None ->
      let a = Atom.make ~key:(fresh_key t) ~name:(Fmt.str "[%a]" Expr.pp e) in
      t.opaques <- (e, a) :: t.opaques;
      Hashtbl.replace t.payloads (Atom.key a) (Aopaque e);
      List.iter (fun (v : Types.var) -> add_kill t v.vid (Atom.key a)) (Expr.vars_of e);
      if Expr.has_load e then t.load_opaques <- Atom.key a :: t.load_opaques;
      a

let fresh_synth t name : Atom.t =
  let a = Atom.make ~key:(fresh_key t) ~name in
  Hashtbl.replace t.payloads (Atom.key a) (Asynth name);
  a

let payload t key = Hashtbl.find_opt t.payloads key

let payload_exn t key =
  match payload t key with
  | Some p -> p
  | None -> invalid_arg "Atoms.payload_exn: unknown atom key"

(* Atom keys invalidated by a definition of variable [v]. *)
let killed_by_def t (v : Types.var) : int list =
  Option.value ~default:[] (Hashtbl.find_opt t.killed v.vid)

(* Atom keys invalidated by any store to an array (or call, which may
   store). *)
let killed_by_store t : int list = t.load_opaques

(* The IR expression whose runtime value an atom denotes; synthetic
   atoms have none (they are never materialized in instructions). *)
let expr_of_atom t (a : Atom.t) : Types.expr option =
  match payload t (Atom.key a) with
  | Some (Avar v) -> Some (Types.Evar v)
  | Some (Aopaque e) -> Some e
  | Some (Asynth _) | None -> None

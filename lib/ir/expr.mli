(** IR expression utilities. *)

open Types

val vars_of : ?acc:var list -> expr -> var list
(** The distinct scalar variables read by the expression (accumulated
    onto [acc]). *)

val has_load : expr -> bool
(** Does the expression read any array element? Loads matter for
    invariance: a store may change them even when no scalar is
    redefined. *)

val size : expr -> int
(** Node count — the instrumented interpreter's per-evaluation
    instruction charge. *)

val equal : expr -> expr -> bool
(** Structural equality (used to hash-cons opaque atoms and deduplicate
    guards). *)

val fold : expr -> expr
(** Constant folding; used by compile-time check evaluation (step 5)
    and guard simplification. Preserves semantics exactly (integer
    division by zero is left unfolded). *)

val bound_expr : bound -> expr
(** The expression reading an array bound (a constant or its temp). *)

val binop_name : binop -> string
val pp : expr Fmt.t

(* IR expression utilities. *)

open Types

let rec vars_of ?(acc = []) (e : expr) : var list =
  match e with
  | Cint _ | Creal _ | Cbool _ -> acc
  | Evar v -> if List.exists (fun w -> w.vid = v.vid) acc then acc else v :: acc
  | Eload (_, idxs) -> List.fold_left (fun acc i -> vars_of ~acc i) acc idxs
  | Eun (_, a) -> vars_of ~acc a
  | Ebin (_, a, b) -> vars_of ~acc:(vars_of ~acc a) b

(* Does the expression read any array element? Matters for invariance:
   stores can change loads even when no scalar is redefined. *)
let rec has_load = function
  | Cint _ | Creal _ | Cbool _ | Evar _ -> false
  | Eload _ -> true
  | Eun (_, a) -> has_load a
  | Ebin (_, a, b) -> has_load a || has_load b

(* Node count, used as the interpreter's per-evaluation instruction
   charge: one "instruction" per operator/operand node. *)
let rec size = function
  | Cint _ | Creal _ | Cbool _ | Evar _ -> 1
  | Eload (_, idxs) -> 1 + List.fold_left (fun s i -> s + size i) 0 idxs
  | Eun (_, a) -> 1 + size a
  | Ebin (_, a, b) -> 1 + size a + size b

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Min -> "min"
  | Max -> "max"
  | Eq -> "="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let rec pp ppf (e : expr) =
  match e with
  | Cint n -> Fmt.int ppf n
  | Creal f -> Fmt.float ppf f
  | Cbool b -> Fmt.bool ppf b
  | Evar v -> Fmt.string ppf v.vname
  | Eload (a, idxs) -> Fmt.pf ppf "%s(%a)" a.aname Fmt.(list ~sep:comma pp) idxs
  | Eun (Neg, a) -> Fmt.pf ppf "(-%a)" pp a
  | Eun (Not, a) -> Fmt.pf ppf "(not %a)" pp a
  | Eun (Abs, a) -> Fmt.pf ppf "abs(%a)" pp a
  | Ebin ((Mod | Min | Max) as op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Ebin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b

(* Structural equality; used for hash-consing opaque atoms and for
   guard deduplication. (Polymorphic equality would also work but this
   is explicit about float comparison.) *)
let rec equal (a : expr) (b : expr) =
  match (a, b) with
  | Cint x, Cint y -> x = y
  | Creal x, Creal y -> Float.equal x y
  | Cbool x, Cbool y -> x = y
  | Evar x, Evar y -> x.vid = y.vid
  | Eload (x, xi), Eload (y, yi) ->
      x.aid = y.aid && List.length xi = List.length yi && List.for_all2 equal xi yi
  | Eun (ox, x), Eun (oy, y) -> ox = oy && equal x y
  | Ebin (ox, xa, xb), Ebin (oy, ya, yb) -> ox = oy && equal xa ya && equal xb yb
  | _ -> false

let bound_expr = function Bconst n -> Cint n | Bvar v -> Evar v

(* Constant folding of the operators the lowerer produces for guards
   and bounds; used by step 5 (compile-time checks) and by guard
   simplification. *)
let rec fold (e : expr) : expr =
  match e with
  | Cint _ | Creal _ | Cbool _ | Evar _ -> e
  | Eload (a, idxs) -> Eload (a, List.map fold idxs)
  | Eun (op, a) -> (
      let a = fold a in
      match (op, a) with
      | Neg, Cint n -> Cint (-n)
      | Neg, Creal f -> Creal (-.f)
      | Not, Cbool b -> Cbool (not b)
      | Abs, Cint n -> Cint (abs n)
      | Abs, Creal f -> Creal (Float.abs f)
      | _ -> Eun (op, a))
  | Ebin (op, a, b) -> (
      let a = fold a and b = fold b in
      match (op, a, b) with
      | Add, Cint x, Cint y -> Cint (x + y)
      | Sub, Cint x, Cint y -> Cint (x - y)
      | Mul, Cint x, Cint y -> Cint (x * y)
      | Div, Cint x, Cint y when y <> 0 -> Cint (x / y)
      | Mod, Cint x, Cint y when y <> 0 -> Cint (x mod y)
      | Min, Cint x, Cint y -> Cint (min x y)
      | Max, Cint x, Cint y -> Cint (max x y)
      | Eq, Cint x, Cint y -> Cbool (x = y)
      | Ne, Cint x, Cint y -> Cbool (x <> y)
      | Lt, Cint x, Cint y -> Cbool (x < y)
      | Le, Cint x, Cint y -> Cbool (x <= y)
      | Gt, Cint x, Cint y -> Cbool (x > y)
      | Ge, Cint x, Cint y -> Cbool (x >= y)
      | And, Cbool x, Cbool y -> Cbool (x && y)
      | And, Cbool true, e | And, e, Cbool true -> e
      | And, Cbool false, _ | And, _, Cbool false -> Cbool false
      | Or, Cbool x, Cbool y -> Cbool (x || y)
      | Or, Cbool false, e | Or, e, Cbool false -> e
      | Or, Cbool true, _ | Or, _, Cbool true -> Cbool true
      | _ -> Ebin (op, a, b))

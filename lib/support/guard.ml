(* Fault-containment primitives for the fail-safe pipeline.

   Three small mechanisms, shared by the optimizer, the analyses and
   the harness:

   - explicit fuel counters: a mutable iteration budget whose
     exhaustion raises [Fuel_exhausted] — the deterministic analogue of
     a wall-clock watchdog, so a hung dataflow fixpoint is caught at
     the same tick on every run;
   - an ambient per-domain fuel stack: [with_fuel] installs a budget
     for the dynamic extent of a computation, and [tick_ambient]
     (called from fixpoint loops) charges every installed budget, so an
     outer watchdog (a pool task) bounds everything nested under it;
   - atomic file writes (temp file + rename in the target directory),
     so an interrupted run never leaves a half-written JSON or cache
     entry behind. *)

exception Fuel_exhausted of string

type fuel = { what : string; mutable remaining : int }

let fuel ~what ~budget = { what; remaining = max 1 budget }

let remaining f = f.remaining

let tick f =
  f.remaining <- f.remaining - 1;
  if f.remaining <= 0 then raise (Fuel_exhausted f.what)

(* The ambient stack is per-domain state: pool workers each carry their
   own, so one task's budget never charges another's. *)
let ambient : fuel list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_fuel f body =
  let stack = Domain.DLS.get ambient in
  stack := f :: !stack;
  Fun.protect ~finally:(fun () -> stack := List.tl !stack) body

let tick_ambient () = List.iter tick !(Domain.DLS.get ambient)

let rec exhaust_ambient () =
  match !(Domain.DLS.get ambient) with
  | [] -> raise (Fuel_exhausted "exhaust_ambient: no ambient budget installed")
  | _ ->
      tick_ambient ();
      exhaust_ambient ()

(* --- atomic writes ---------------------------------------------------- *)

(* The temp file lives in the target's own directory so the final
   [Sys.rename] stays within one filesystem (rename is atomic there). *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* Fault-containment primitives for the fail-safe pipeline.

   Four small mechanisms, shared by the optimizer, the analyses, the
   harness and the compile server:

   - explicit fuel counters: a mutable iteration budget whose
     exhaustion raises [Fuel_exhausted] — the deterministic analogue of
     a wall-clock watchdog, so a hung dataflow fixpoint is caught at
     the same tick on every run;
   - an ambient per-domain fuel stack: [with_fuel] installs a budget
     for the dynamic extent of a computation, and [tick_ambient]
     (called from fixpoint loops) charges every installed budget, so an
     outer watchdog (a pool task) bounds everything nested under it;
   - ambient wall-clock deadlines: [with_deadline] rides the same
     ticking — every [deadline_stride]-th ambient tick reads the
     monotonic clock and raises [Deadline_exceeded] past the budget.
     Fuel stays the deterministic bound; the deadline is the server's
     latency contract layered on top of it;
   - atomic file writes (temp file + rename in the target directory),
     so an interrupted run never leaves a half-written JSON or cache
     entry behind. *)

exception Fuel_exhausted of string
exception Deadline_exceeded of string
exception Mem_exceeded of string

type fuel = { what : string; mutable remaining : int }

let fuel ~what ~budget = { what; remaining = max 1 budget }

let remaining f = f.remaining

let tick f =
  f.remaining <- f.remaining - 1;
  if f.remaining <= 0 then raise (Fuel_exhausted f.what)

type deadline = { dwhat : string; started : Mclock.counter; budget_s : float }

let deadline ~what ~seconds = { dwhat = what; started = Mclock.counter (); budget_s = seconds }

let expired d = Mclock.elapsed_s d.started > d.budget_s

let remaining_s d = Float.max 0.0 (d.budget_s -. Mclock.elapsed_s d.started)

let check d = if expired d then raise (Deadline_exceeded d.dwhat)

(* --- memory watchdog --------------------------------------------------- *)

(* The budget bounds the major heap (in bytes) of the whole process. A
   Gc alarm — run at the end of every major collection, on whichever
   domain finished it — samples the heap and sets [mem_over]; the
   ambient ticking reads that one atomic flag (cheap) and only
   re-samples when it is set, so a collection that freed enough memory
   clears the flag instead of killing the next request. Budget 0 means
   "no budget installed". *)

let word_bytes = Sys.word_size / 8
let mem_budget_bytes = Atomic.make 0
let mem_shed_permille = Atomic.make 800
let mem_over = Atomic.make false
let mem_alarm_installed = Atomic.make false

let mem_heap_bytes () = (Gc.quick_stat ()).Gc.heap_words * word_bytes

let mem_sample_over () =
  let b = Atomic.get mem_budget_bytes in
  b > 0 && mem_heap_bytes () >= b

let set_mem_budget ?(shed_fraction = 0.8) ~bytes () =
  let permille =
    int_of_float (1000.0 *. Float.min 1.0 (Float.max 0.0 shed_fraction))
  in
  Atomic.set mem_shed_permille permille;
  (match bytes with
  | None ->
      Atomic.set mem_budget_bytes 0;
      Atomic.set mem_over false
  | Some b ->
      Atomic.set mem_budget_bytes (max 1 b);
      Atomic.set mem_over (mem_sample_over ());
      if not (Atomic.exchange mem_alarm_installed true) then
        ignore
          (Gc.create_alarm (fun () -> Atomic.set mem_over (mem_sample_over ()))))

let mem_budget () =
  match Atomic.get mem_budget_bytes with 0 -> None | b -> Some b

let mem_level () =
  let b = Atomic.get mem_budget_bytes in
  if b = 0 then `Ok
  else begin
    let h = mem_heap_bytes () in
    if h >= b then begin
      Atomic.set mem_over true;
      `Over
    end
    else begin
      if Atomic.get mem_over then Atomic.set mem_over false;
      if h * 1000 >= b * Atomic.get mem_shed_permille then `Pressure else `Ok
    end
  end

let mem_budget_from_env () =
  match Sys.getenv_opt "NASCENT_MEM_BUDGET" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> Some (mb * 1024 * 1024)
      | _ -> None)

let check_mem () =
  if Atomic.get mem_over then begin
    if mem_sample_over () then
      raise
        (Mem_exceeded
           (Printf.sprintf "major heap %d bytes over budget %d" (mem_heap_bytes ())
              (Atomic.get mem_budget_bytes)))
    else Atomic.set mem_over false
  end

(* The ambient state is per-domain: pool workers each carry their own,
   so one task's budget never charges another's. Deadlines are checked
   only every [deadline_stride]-th tick — the clock read is ~25ns, the
   stride keeps it off the fixpoint loops' critical path. *)
type ambient_state = {
  mutable fuels : fuel list;
  mutable deadlines : deadline list;
  mutable ticks : int;
}

let deadline_stride = 128 (* power of two: the throttle is a mask *)

let ambient : ambient_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { fuels = []; deadlines = []; ticks = 0 })

let with_fuel f body =
  let st = Domain.DLS.get ambient in
  st.fuels <- f :: st.fuels;
  Fun.protect ~finally:(fun () -> st.fuels <- List.tl st.fuels) body

let with_deadline d body =
  let st = Domain.DLS.get ambient in
  st.deadlines <- d :: st.deadlines;
  Fun.protect ~finally:(fun () -> st.deadlines <- List.tl st.deadlines) body

let check_deadlines () = List.iter check (Domain.DLS.get ambient).deadlines

let tick_ambient () =
  let st = Domain.DLS.get ambient in
  List.iter tick st.fuels;
  check_mem ();
  match st.deadlines with
  | [] -> ()
  | ds ->
      st.ticks <- st.ticks + 1;
      if st.ticks land (deadline_stride - 1) = 0 then List.iter check ds

let rec exhaust_ambient () =
  let st = Domain.DLS.get ambient in
  match (st.fuels, st.deadlines) with
  | [], [] ->
      raise (Fuel_exhausted "exhaust_ambient: no ambient budget installed")
  | _ ->
      tick_ambient ();
      exhaust_ambient ()

(* --- atomic writes ---------------------------------------------------- *)

(* The temp file lives in the target's own directory so the final
   [Sys.rename] stays within one filesystem (rename is atomic there). *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* --- advisory directory locks ------------------------------------------ *)

(* One daemon per shared on-disk directory (memo cache, journal). The
   lock is a POSIX record lock ([Unix.lockf], fcntl underneath) on a
   [.nascent-lock] file inside the directory: the kernel releases it
   even on [kill -9], so a restarted daemon can always reacquire, while
   a concurrently *running* second daemon is refused with a clear
   error. fcntl locks never conflict within one process, so a
   process-local registry backs them up — a double acquire in the same
   process is refused too. *)

type dir_lock = { lkey : string; lfd : Unix.file_descr }

let locked_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let locked_dirs_mutex = Mutex.create ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let lock_file_name = ".nascent-lock"

let forget_dir key =
  Mutex.lock locked_dirs_mutex;
  Hashtbl.remove locked_dirs key;
  Mutex.unlock locked_dirs_mutex

let lock_dir ~dir =
  match mkdir_p dir with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))
  | () -> (
      let key = try Unix.realpath dir with Unix.Unix_error _ -> dir in
      Mutex.lock locked_dirs_mutex;
      let dup = Hashtbl.mem locked_dirs key in
      if not dup then Hashtbl.replace locked_dirs key ();
      Mutex.unlock locked_dirs_mutex;
      if dup then
        Error (Printf.sprintf "%s is already locked by this process" dir)
      else
        let path = Filename.concat dir lock_file_name in
        match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
            forget_dir key;
            Error (Printf.sprintf "cannot open %s: %s" path (Unix.error_message e))
        | fd -> (
            match Unix.lockf fd Unix.F_TLOCK 0 with
            | () ->
                (* Best-effort pid breadcrumb for post-mortems. *)
                (try
                   ignore (Unix.ftruncate fd 0);
                   let pid = string_of_int (Unix.getpid ()) ^ "\n" in
                   ignore (Unix.write_substring fd pid 0 (String.length pid))
                 with Unix.Unix_error _ -> ());
                Ok { lkey = key; lfd = fd }
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EACCES), _, _) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                forget_dir key;
                Error
                  (Printf.sprintf "%s is locked by another process (another daemon?)" dir)
            | exception Unix.Unix_error (e, _, _) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                forget_dir key;
                Error (Printf.sprintf "cannot lock %s: %s" path (Unix.error_message e))))

let unlock_dir l =
  forget_dir l.lkey;
  (try Unix.lockf l.lfd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  try Unix.close l.lfd with Unix.Unix_error _ -> ()

(* Fault-containment primitives for the fail-safe pipeline.

   Four small mechanisms, shared by the optimizer, the analyses, the
   harness and the compile server:

   - explicit fuel counters: a mutable iteration budget whose
     exhaustion raises [Fuel_exhausted] — the deterministic analogue of
     a wall-clock watchdog, so a hung dataflow fixpoint is caught at
     the same tick on every run;
   - an ambient per-domain fuel stack: [with_fuel] installs a budget
     for the dynamic extent of a computation, and [tick_ambient]
     (called from fixpoint loops) charges every installed budget, so an
     outer watchdog (a pool task) bounds everything nested under it;
   - ambient wall-clock deadlines: [with_deadline] rides the same
     ticking — every [deadline_stride]-th ambient tick reads the
     monotonic clock and raises [Deadline_exceeded] past the budget.
     Fuel stays the deterministic bound; the deadline is the server's
     latency contract layered on top of it;
   - atomic file writes (temp file + rename in the target directory),
     so an interrupted run never leaves a half-written JSON or cache
     entry behind. *)

exception Fuel_exhausted of string
exception Deadline_exceeded of string

type fuel = { what : string; mutable remaining : int }

let fuel ~what ~budget = { what; remaining = max 1 budget }

let remaining f = f.remaining

let tick f =
  f.remaining <- f.remaining - 1;
  if f.remaining <= 0 then raise (Fuel_exhausted f.what)

type deadline = { dwhat : string; started : Mclock.counter; budget_s : float }

let deadline ~what ~seconds = { dwhat = what; started = Mclock.counter (); budget_s = seconds }

let expired d = Mclock.elapsed_s d.started > d.budget_s

let remaining_s d = Float.max 0.0 (d.budget_s -. Mclock.elapsed_s d.started)

let check d = if expired d then raise (Deadline_exceeded d.dwhat)

(* The ambient state is per-domain: pool workers each carry their own,
   so one task's budget never charges another's. Deadlines are checked
   only every [deadline_stride]-th tick — the clock read is ~25ns, the
   stride keeps it off the fixpoint loops' critical path. *)
type ambient_state = {
  mutable fuels : fuel list;
  mutable deadlines : deadline list;
  mutable ticks : int;
}

let deadline_stride = 128 (* power of two: the throttle is a mask *)

let ambient : ambient_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { fuels = []; deadlines = []; ticks = 0 })

let with_fuel f body =
  let st = Domain.DLS.get ambient in
  st.fuels <- f :: st.fuels;
  Fun.protect ~finally:(fun () -> st.fuels <- List.tl st.fuels) body

let with_deadline d body =
  let st = Domain.DLS.get ambient in
  st.deadlines <- d :: st.deadlines;
  Fun.protect ~finally:(fun () -> st.deadlines <- List.tl st.deadlines) body

let check_deadlines () = List.iter check (Domain.DLS.get ambient).deadlines

let tick_ambient () =
  let st = Domain.DLS.get ambient in
  List.iter tick st.fuels;
  match st.deadlines with
  | [] -> ()
  | ds ->
      st.ticks <- st.ticks + 1;
      if st.ticks land (deadline_stride - 1) = 0 then List.iter check ds

let rec exhaust_ambient () =
  let st = Domain.DLS.get ambient in
  match (st.fuels, st.deadlines) with
  | [], [] ->
      raise (Fuel_exhausted "exhaust_ambient: no ambient budget installed")
  | _ ->
      tick_ambient ();
      exhaust_ambient ()

(* --- atomic writes ---------------------------------------------------- *)

(* The temp file lives in the target's own directory so the final
   [Sys.rename] stays within one filesystem (rename is atomic there). *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

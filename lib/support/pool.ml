(* Fixed-size domain pool: [jobs - 1] worker domains blocked on a
   mutex/condition-protected task queue, plus the submitting domain,
   which always helps drain its own batch (so nested parallel_map
   calls cannot deadlock: a batch never waits on a worker that is
   waiting on the batch).

   Determinism contract (pinned by test/test_parallel.ml): results are
   stored by input index, and when tasks raise, the lowest-index
   exception is re-raised — parallel_map is observably List.map. *)

(* OCaml caps the number of live domains (128 including the main one);
   stay well below so nested pools and tests never hit the limit. *)
let max_jobs = 64

type t = {
  jobs : int;
  tasks : (unit -> unit) Queue.t; (* guarded by [lock] *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.tasks with
    | Some task ->
        Mutex.unlock t.lock;
        Some task
    | None ->
        if t.closed then begin
          Mutex.unlock t.lock;
          None
        end
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
  in
  match next () with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ~jobs =
  let jobs = max 1 (min jobs max_jobs) in
  let t =
    {
      jobs;
      tasks = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  (* The submitting domain drains its own batches, so [jobs - 1]
     workers saturate [jobs] cores. *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit t task =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task t.tasks;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

(* Optional per-task watchdog: run [f] under its own ambient fuel
   budget (Guard), so a task whose fixpoints stop converging is cut off
   at a deterministic tick count instead of wedging a worker domain
   forever. The budget is per task, not per batch. *)
let with_task_fuel ?task_fuel f x =
  match task_fuel with
  | None -> f x
  | Some budget ->
      Guard.with_fuel (Guard.fuel ~what:"pool-task" ~budget) (fun () -> f x)

let parallel_map (type b) ?task_fuel t (f : 'a -> b) (xs : 'a list) : b list =
  let f x = with_task_fuel ?task_fuel f x in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.jobs = 1 -> List.map f xs (* serial fallback *)
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : (b, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      let next = Atomic.make 0 in
      let remaining = Atomic.make n in
      let flock = Mutex.create () in
      let finished = Condition.create () in
      let run_one i =
        let r =
          try Ok (f input.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        (* Publish the (non-atomic) result slot via the atomic counter;
           the submitter only reads [results] after seeing it hit 0. *)
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock flock;
          Condition.broadcast finished;
          Mutex.unlock flock
        end
      in
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          drain ()
        end
      in
      for _ = 1 to min (t.jobs - 1) (n - 1) do
        submit t drain
      done;
      drain ();
      Mutex.lock flock;
      while Atomic.get remaining > 0 do
        Condition.wait finished flock
      done;
      Mutex.unlock flock;
      (* Lowest-index exception wins: observably left-to-right. *)
      let first_error = ref None in
      let out =
        Array.map
          (function
            | Some (Ok v) -> Some v
            | Some (Error e) ->
                if !first_error = None then first_error := Some e;
                None
            | None -> assert false)
          results
      in
      (match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list out |> List.map Option.get

let parallel_iter ?task_fuel t f xs =
  ignore (parallel_map ?task_fuel t (fun x -> f x) xs : unit list)

(* --- the process-wide jobs knob and pool ------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "NASCENT_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n max_jobs)
      | _ -> None)

let override = ref None

let set_default_jobs n = override := Some (max 1 (min n max_jobs))

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> min max_jobs (Domain.recommended_domain_count ()))

let global_pool = ref None
let global_lock = Mutex.create ()

let global () =
  Mutex.lock global_lock;
  let jobs = default_jobs () in
  let p =
    match !global_pool with
    | Some p when p.jobs = jobs && not p.closed -> p
    | prev ->
        Option.iter shutdown prev;
        let p = create ~jobs in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_lock;
  p

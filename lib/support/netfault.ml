(* Deterministic seeded network fault injection: pure byte mangling, a
   send-schedule planner, injectable faulty reader/writer for in-process
   tests, and a standalone chaos proxy. See netfault.mli for the
   fault-class -> detection -> recovery table this module exists to
   exercise. *)

type cls =
  | Torn_frame
  | Truncated_write
  | Delayed_bytes
  | Reset_mid_exchange
  | Garbage_frame
  | Oversized_frame
  | Stalled_reader

type spec = { cls : cls; seed : int }

let all_classes =
  [
    Torn_frame;
    Truncated_write;
    Delayed_bytes;
    Reset_mid_exchange;
    Garbage_frame;
    Oversized_frame;
    Stalled_reader;
  ]

let cls_name = function
  | Torn_frame -> "torn-frame"
  | Truncated_write -> "truncated-write"
  | Delayed_bytes -> "delayed-bytes"
  | Reset_mid_exchange -> "reset-mid-exchange"
  | Garbage_frame -> "garbage-frame"
  | Oversized_frame -> "oversized-frame"
  | Stalled_reader -> "stalled-reader"

let cls_of_name s = List.find_opt (fun c -> cls_name c = s) all_classes

let parse s =
  let name, seed =
    match String.index_opt s ':' with
    | None -> (s, Ok 0)
    | Some i ->
        let tail = String.sub s (i + 1) (String.length s - i - 1) in
        ( String.sub s 0 i,
          match int_of_string_opt tail with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "bad seed %S" tail) )
  in
  match (cls_of_name name, seed) with
  | _, Error e -> Error e
  | Some cls, Ok seed -> Ok { cls; seed }
  | None, _ ->
      Error
        (Printf.sprintf "unknown fault class %S (one of: %s)" name
           (String.concat ", " (List.map cls_name all_classes)))

let to_string spec = Printf.sprintf "%s:%d" (cls_name spec.cls) spec.seed

(* Every third connection is faulted — strictly periodic, so a client
   that retries on a fresh connection always reaches a clean one within
   two more attempts. The seed rotates which residue is hit. *)
let should_fault spec n = (n + spec.seed) mod 3 = 0

(* --- seeded PRNG (LCG over the 63-bit int range) -------------------- *)

let cls_index c =
  let rec go i = function
    | [] -> 0
    | x :: tl -> if x = c then i else go (i + 1) tl
  in
  go 0 all_classes

let rng_make spec =
  ref ((spec.seed * 0x9e3779b1) + (cls_index spec.cls * 0x85ebca6b) + 1)

let rng_next st =
  (* the 48-bit LCG from POSIX drand48: fits OCaml's 63-bit ints *)
  st := ((!st * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  !st lsr 17

(* --- byte mangling --------------------------------------------------- *)

let mangle spec s =
  let len = String.length s in
  let st = rng_make spec in
  match spec.cls with
  | Torn_frame when len > 0 ->
      (* flip one payload byte so the frame CRC fails; fall back to the
         header on a stream too short to carry a payload, where the
         magic/version check catches it instead *)
      let pos =
        if len > Frame.header_bytes then
          Frame.header_bytes + (rng_next st mod (len - Frame.header_bytes))
        else rng_next st mod len
      in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code s.[pos] lxor (1 + (rng_next st mod 255))));
      Bytes.unsafe_to_string b
  | Truncated_write when len > 1 -> String.sub s 0 (max 1 (len / 2))
  | Garbage_frame ->
      let junk =
        String.init 8 (fun _ ->
            let c = rng_next st land 0xff in
            (* never start with 'N': the garbage must fail the magic *)
            Char.chr (if Char.chr c = 'N' then c lxor 0xff else c))
      in
      junk ^ s
  | Oversized_frame ->
      (* a well-formed header declaring an absurd payload: the length
         cap must reject it before buffering anything *)
      let b = Bytes.of_string (Frame.encode ~id:1 "x") in
      Bytes.set b 12 '\x7f';
      Bytes.set b 13 '\xff';
      Bytes.set b 14 '\xff';
      Bytes.set b 15 '\xff';
      Bytes.unsafe_to_string b
  | _ -> s

(* --- send schedule --------------------------------------------------- *)

type step = Write of string | Delay_s of float | Close_now

let plan spec ~delay_s s =
  let m = mangle spec s in
  match spec.cls with
  | Truncated_write -> [ Write m; Close_now ]
  | Delayed_bytes ->
      let cut = max 1 (String.length m / 2) in
      if String.length m <= cut then [ Write m ]
      else
        [
          Write (String.sub m 0 cut);
          Delay_s delay_s;
          Write (String.sub m cut (String.length m - cut));
        ]
  | Reset_mid_exchange -> [ Write m; Close_now ]
  | Oversized_frame -> [ Write m; Close_now ]
  | _ -> [ Write m ]

(* --- injectable faulty reader / writer ------------------------------- *)

let reader spec ~data =
  let st = rng_make spec in
  let pos = ref 0 in
  let stop =
    match spec.cls with
    | Truncated_write | Reset_mid_exchange ->
        (* EOF mid-stream: two thirds in, clamped inside the data *)
        max 1 (String.length data * 2 / 3)
    | _ -> String.length data
  in
  fun buf off len ->
    if len > 0 && rng_next st mod 5 = 0 then
      raise (Unix.Unix_error (Unix.EINTR, "read", ""));
    let remaining = stop - !pos in
    if remaining <= 0 || len = 0 then 0
    else begin
      let n = min (min len remaining) (1 + (rng_next st mod 4)) in
      Bytes.blit_string data !pos buf off n;
      pos := !pos + n;
      n
    end

let writer spec ~out =
  let st = rng_make spec in
  fun buf off len ->
    if len > 0 && rng_next st mod 5 = 0 then
      raise (Unix.Unix_error (Unix.EINTR, "write", ""));
    let n = min len (1 + (rng_next st mod 4)) in
    Buffer.add_subbytes out buf off n;
    n

(* --- chaos proxy ------------------------------------------------------ *)

let sock_for = function
  | Unix.ADDR_UNIX _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Unix.ADDR_INET _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let shutdown_quiet fd cmd = try Unix.shutdown fd cmd with _ -> ()
let close_quiet fd = try Unix.close fd with _ -> ()

let write_all_quiet fd s =
  try
    Frame.write_all
      ~write:(fun b off len -> Unix.write fd b off len)
      s;
    true
  with _ -> false

(* Pump upstream->client. On faulted connections, Reset_mid_exchange
   drops the response and cuts the wire (EOF before response at the
   client); Stalled_reader swallows it, stalls, then closes — the
   client's receive deadline is the detection. The first [skip]
   response chunks pass through clean (the NF1 hello-ack on a framed
   connection: faulting the handshake would read as a protocol
   mismatch, not a network fault). *)
let pump_response ~faulted ~skip spec ufd cfd =
  let buf = Bytes.create 8192 in
  let chunk_no = ref 0 in
  let rec loop () =
    match Unix.read ufd buf 0 (Bytes.length buf) with
    | exception _ -> ()
    | 0 -> shutdown_quiet cfd Unix.SHUTDOWN_SEND
    | n -> (
        let k = !chunk_no in
        incr chunk_no;
        let forward () =
          if write_all_quiet cfd (Bytes.sub_string buf 0 n) then loop ()
        in
        if (not faulted) || k < skip then forward ()
        else
          match spec.cls with
          | Reset_mid_exchange -> shutdown_quiet cfd Unix.SHUTDOWN_ALL
          | Stalled_reader ->
              Thread.delay 1.0;
              shutdown_quiet cfd Unix.SHUTDOWN_ALL
          | _ -> forward ())
  in
  loop ()

(* Pump client->upstream; chunk [skip] of a faulted connection gets
   the fault class's send plan (a client writes a whole frame or line
   in one write and the hello is answered before the request follows,
   so chunk boundaries align with protocol messages: chunk 0 is the
   hello on a framed connection, the request itself on a line one). *)
let pump_request ~faulted ~delay_s ~skip spec cfd ufd =
  let buf = Bytes.create 8192 in
  let chunk_no = ref 0 in
  let rec loop () =
    match Unix.read cfd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception _ -> ()
    | 0 -> shutdown_quiet ufd Unix.SHUTDOWN_SEND
    | n ->
        let k = !chunk_no in
        incr chunk_no;
        let chunk = Bytes.sub_string buf 0 n in
        if faulted && k = skip then begin
          let closed =
            List.exists
              (function
                | Write s -> not (write_all_quiet ufd s)
                | Delay_s d ->
                    Thread.delay d;
                    false
                | Close_now ->
                    shutdown_quiet ufd Unix.SHUTDOWN_ALL;
                    shutdown_quiet cfd Unix.SHUTDOWN_ALL;
                    true)
              (plan spec ~delay_s chunk)
          in
          if not closed then loop ()
        end
        else if write_all_quiet ufd chunk then loop ()
  in
  loop ()

let handle_conn ~faulted ~delay_s ~skip spec upstream cfd =
  match
    let ufd = sock_for upstream in
    (try Unix.connect ufd upstream
     with e ->
       close_quiet ufd;
       raise e);
    ufd
  with
  | exception _ -> close_quiet cfd
  | ufd ->
      let resp =
        Thread.create (fun () -> pump_response ~faulted ~skip spec ufd cfd) ()
      in
      pump_request ~faulted ~delay_s ~skip spec cfd ufd;
      Thread.join resp;
      close_quiet ufd;
      close_quiet cfd

let proxy ~listen ~upstream ?(stop = fun () -> false) ?(delay_s = 3.0)
    ?(on_listen = fun (_ : Unix.sockaddr) -> ()) spec =
  (match listen with
  | Unix.ADDR_UNIX p when p <> "" -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  let lfd = sock_for listen in
  (match listen with
  | Unix.ADDR_INET _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind lfd listen;
  Unix.listen lfd 64;
  on_listen (Unix.getsockname lfd);
  (* On a TCP listener the peers speak NF1: the first exchange is the
     hello handshake, which must pass clean (see pump_request). *)
  let skip = match listen with Unix.ADDR_INET _ -> 1 | _ -> 0 in
  let idx = ref 0 in
  let rec loop () =
    if not (stop ()) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept lfd with
          | exception _ -> ()
          | cfd, _ ->
              let n = !idx in
              incr idx;
              let faulted = should_fault spec n in
              ignore
                (Thread.create
                   (fun () ->
                     handle_conn ~faulted ~delay_s ~skip spec upstream cfd)
                   ())));
      loop ()
    end
  in
  loop ();
  close_quiet lfd;
  match listen with
  | Unix.ADDR_UNIX p when p <> "" -> ( try Unix.unlink p with _ -> ())
  | _ -> ()

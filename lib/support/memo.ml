(* Content-addressed result cache: a mutex-protected in-memory table
   keyed by input digests, with an optional Marshal-based on-disk
   store. Timing inside the harness stays on Mclock; the memo itself
   never reads a clock — cached cells replay their recorded values
   bit-for-bit, which is what makes warm parallel reruns byte-identical
   to the serial run. *)

type counters = {
  hits : int;
  disk_hits : int;
  misses : int;
  quarantined : int;
  swaps : int;
}

type 'v t = {
  name : string;
  table : (string, 'v) Hashtbl.t; (* guarded by [lock] *)
  lock : Mutex.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable quarantined : int;
  mutable swaps : int;
  disk_dir : string option;
  quarantine_max : int; (* cap on retained quarantine entries *)
}

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let default_disk_dir = Filename.concat "_build" ".nascent-cache"

let disk_dir_from_env () =
  match Sys.getenv_opt "NASCENT_CACHE_DIR" with
  | Some d when String.trim d <> "" -> Some d
  | _ -> (
      match Sys.getenv_opt "NASCENT_CACHE" with
      | Some ("1" | "true" | "on") -> Some default_disk_dir
      | _ -> None)

let env_disk_dir = disk_dir_from_env

let default_quarantine_max = 64

let quarantine_max_from_env () =
  match Sys.getenv_opt "NASCENT_QUARANTINE_MAX" with
  | None -> default_quarantine_max
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> default_quarantine_max)

let create ?disk_dir ?quarantine_max ~name () =
  let disk_dir =
    match disk_dir with Some d -> Some d | None -> disk_dir_from_env ()
  in
  let quarantine_max =
    match quarantine_max with
    | Some n -> max 0 n
    | None -> quarantine_max_from_env ()
  in
  {
    name;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    disk_hits = 0;
    misses = 0;
    quarantined = 0;
    swaps = 0;
    disk_dir;
    quarantine_max;
  }

(* --- disk store ------------------------------------------------------- *)

(* Entry layout, v2:

     NASCENT-MEMO.v2\n
     <32 hex chars: MD5 of the payload>\n
     <payload: Marshal.to_string of the value>

   The magic string guards against reading foreign files; the embedded
   payload digest guards against truncated or bit-flipped entries —
   Marshal.from_string on torn input can raise (or worse, succeed with
   garbage), so the digest is verified BEFORE unmarshalling. Marshal is
   still not type-safe across incompatible readers, which is why
   callers version their keys. Any entry that fails validation is moved
   aside to [<dir>/quarantine/] — preserved for post-mortems, never
   read again — and the lookup degrades to a miss. *)
let file_magic = "NASCENT-MEMO.v2\n"

let digest_hex_len = 32

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> () (* lost a race: fine *)
  end

let entry_path t k dir = Filename.concat (Filename.concat dir t.name) k

let quarantine_dir dir = Filename.concat dir "quarantine"

(* The quarantine is a post-mortem buffer, not an archive: a flaky disk
   (or a hostile writer) could otherwise corrupt entries forever and
   grow it without bound. Keep the newest [quarantine_max] entries by
   mtime (name as tie-break) and evict the rest, best-effort. *)
let prune_quarantine qd ~max_entries =
  match Sys.readdir qd with
  | exception Sys_error _ -> ()
  | entries ->
      if Array.length entries > max_entries then begin
        let dated =
          Array.to_list entries
          |> List.filter_map (fun e ->
                 let p = Filename.concat qd e in
                 match Unix.stat p with
                 | st -> Some (st.Unix.st_mtime, e)
                 | exception Unix.Unix_error _ -> None)
          |> List.sort compare
        in
        let excess = List.length dated - max_entries in
        List.iteri
          (fun i (_, e) ->
            if i < excess then
              try Sys.remove (Filename.concat qd e) with Sys_error _ -> ())
          dated
      end

(* Move a failed entry aside (best effort — a removal-racing reader or
   a read-only tree just leaves it), cap the quarantine, and count it. *)
let quarantine t ~path ~key dir reason =
  let qd = quarantine_dir dir in
  (try
     mkdir_p qd;
     Sys.rename path (Filename.concat qd (t.name ^ "." ^ key))
   with Sys_error _ -> ());
  prune_quarantine qd ~max_entries:t.quarantine_max;
  Mutex.lock t.lock;
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.lock;
  Logs.warn (fun m ->
      m "memo %s: quarantined corrupt cache entry %s (%s)" t.name key reason)

(* Parse and validate one entry file; [Error reason] covers every
   corruption mode: foreign/old magic, truncation anywhere, payload
   digest mismatch. *)
let read_entry path =
  match
    In_channel.with_open_bin path (fun ic ->
        let m = really_input_string ic (String.length file_magic) in
        let dh = really_input_string ic (digest_hex_len + 1) in
        let payload = In_channel.input_all ic in
        (m, dh, payload))
  with
  | exception End_of_file -> Error "truncated header"
  | m, _, _ when m <> file_magic -> Error "bad magic"
  | _, dh, _ when dh.[digest_hex_len] <> '\n' -> Error "malformed digest line"
  | _, dh, payload ->
      let dh = String.sub dh 0 digest_hex_len in
      if Digest.to_hex (Digest.string payload) <> dh then
        Error "payload digest mismatch"
      else
        (* The digest matched, so this is byte-for-byte what a writer
           marshalled; from_string can still raise on reader/writer
           value-shape skew, which key versioning is meant to prevent —
           treat it as corruption all the same. *)
        (try Ok (Marshal.from_string payload 0)
         with Failure _ -> Error "unmarshal failed")

let disk_read t k =
  match t.disk_dir with
  | None -> None
  | Some dir -> (
      let path = entry_path t k dir in
      match read_entry path with
      | Ok v -> Some v
      | Error reason ->
          quarantine t ~path ~key:k dir reason;
          None
      | exception Sys_error _ -> None (* absent entry: a plain miss *))

let disk_write t k v =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
      try
        let d = Filename.concat dir t.name in
        mkdir_p d;
        let payload = Marshal.to_string v [] in
        (* temp + rename: concurrent writers of the same key never
           expose a torn entry *)
        Guard.write_atomic ~path:(entry_path t k dir)
          (String.concat ""
             [ file_magic; Digest.to_hex (Digest.string payload); "\n"; payload ])
      with Sys_error _ -> () (* a read-only tree disables persistence *))

let clear_disk t =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
      let d = Filename.concat dir t.name in
      match Sys.readdir d with
      | entries ->
          Array.iter
            (fun e -> try Sys.remove (Filename.concat d e) with Sys_error _ -> ())
            entries
      | exception Sys_error _ -> ())

(* --- lookup ----------------------------------------------------------- *)

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None -> (
      Mutex.unlock t.lock;
      match disk_read t key with
      | Some v ->
          Mutex.lock t.lock;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          Hashtbl.replace t.table key v;
          Mutex.unlock t.lock;
          v
      | None ->
          let v = f () in
          Mutex.lock t.lock;
          t.misses <- t.misses + 1;
          Hashtbl.replace t.table key v;
          Mutex.unlock t.lock;
          disk_write t key v;
          v)

(* Peek without computing: the in-memory table, then the disk store.
   A present entry counts as a hit (a disk entry is cached in memory on
   the way through, like [find_or_compute]); an absent one counts
   nothing — no recomputation happened, so it is not a miss. *)
let find_opt t ~key =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Some v
  | None -> (
      Mutex.unlock t.lock;
      match disk_read t key with
      | Some v ->
          Mutex.lock t.lock;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          Hashtbl.replace t.table key v;
          Mutex.unlock t.lock;
          Some v
      | None -> None)

(* Hot-swap: atomically replace the cached value for [key]. The
   in-memory table flips under the lock, so a concurrent reader sees
   the old value or the new one, never a torn state; the disk entry is
   rewritten through [Guard.write_atomic] (temp + rename), so a reader
   racing the swap — or a crash mid-swap — can likewise only observe
   one complete entry. *)
let replace t ~key v =
  Mutex.lock t.lock;
  Hashtbl.replace t.table key v;
  t.swaps <- t.swaps + 1;
  Mutex.unlock t.lock;
  disk_write t key v

let stats t =
  Mutex.lock t.lock;
  let c =
    {
      hits = t.hits;
      disk_hits = t.disk_hits;
      misses = t.misses;
      quarantined = t.quarantined;
      swaps = t.swaps;
    }
  in
  Mutex.unlock t.lock;
  c

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  t.quarantined <- 0;
  t.swaps <- 0;
  Mutex.unlock t.lock

(* Content-addressed result cache: a mutex-protected in-memory table
   keyed by input digests, with an optional Marshal-based on-disk
   store. Timing inside the harness stays on Mclock; the memo itself
   never reads a clock — cached cells replay their recorded values
   bit-for-bit, which is what makes warm parallel reruns byte-identical
   to the serial run. *)

type counters = { hits : int; disk_hits : int; misses : int }

type 'v t = {
  name : string;
  table : (string, 'v) Hashtbl.t; (* guarded by [lock] *)
  lock : Mutex.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  disk_dir : string option;
}

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let default_disk_dir = Filename.concat "_build" ".nascent-cache"

let disk_dir_from_env () =
  match Sys.getenv_opt "NASCENT_CACHE_DIR" with
  | Some d when String.trim d <> "" -> Some d
  | _ -> (
      match Sys.getenv_opt "NASCENT_CACHE" with
      | Some ("1" | "true" | "on") -> Some default_disk_dir
      | _ -> None)

let create ?disk_dir ~name () =
  let disk_dir =
    match disk_dir with Some d -> Some d | None -> disk_dir_from_env ()
  in
  {
    name;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    disk_hits = 0;
    misses = 0;
    disk_dir;
  }

(* --- disk store ------------------------------------------------------- *)

(* A fixed magic string guards against reading foreign files; the
   content digest in the filename guards against stale values. Marshal
   is not type-safe across incompatible readers, which is why callers
   version their keys. *)
let file_magic = "NASCENT-MEMO.v1\n"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> () (* lost a race: fine *)
  end

let entry_path t k dir = Filename.concat (Filename.concat dir t.name) k

let disk_read t k =
  match t.disk_dir with
  | None -> None
  | Some dir -> (
      let path = entry_path t k dir in
      try
        In_channel.with_open_bin path (fun ic ->
            let m = really_input_string ic (String.length file_magic) in
            if m <> file_magic then None else Some (Marshal.from_channel ic))
      with _ -> None)

let disk_write t k v =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
      try
        let d = Filename.concat dir t.name in
        mkdir_p d;
        (* write-then-rename: concurrent writers of the same key never
           expose a torn entry *)
        let tmp = Filename.temp_file ~temp_dir:d "entry" ".tmp" in
        Out_channel.with_open_bin tmp (fun oc ->
            output_string oc file_magic;
            Marshal.to_channel oc v []);
        Sys.rename tmp (entry_path t k dir)
      with Sys_error _ -> () (* a read-only tree disables persistence *))

let clear_disk t =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
      let d = Filename.concat dir t.name in
      match Sys.readdir d with
      | entries ->
          Array.iter
            (fun e -> try Sys.remove (Filename.concat d e) with Sys_error _ -> ())
            entries
      | exception Sys_error _ -> ())

(* --- lookup ----------------------------------------------------------- *)

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None -> (
      Mutex.unlock t.lock;
      match disk_read t key with
      | Some v ->
          Mutex.lock t.lock;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          Hashtbl.replace t.table key v;
          Mutex.unlock t.lock;
          v
      | None ->
          let v = f () in
          Mutex.lock t.lock;
          t.misses <- t.misses + 1;
          Hashtbl.replace t.table key v;
          Mutex.unlock t.lock;
          disk_write t key v;
          v)

let stats t =
  Mutex.lock t.lock;
  let c = { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses } in
  Mutex.unlock t.lock;
  c

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

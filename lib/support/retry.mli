(** Exponential backoff with deterministic jitter.

    Used by [nascentc client] against the compile server's retryable
    errors (overload shedding, shutdown drain) and connection refusals.
    The jittered schedule is a pure function of [(seed, attempt)]:
    replayable in tests, de-synchronized across clients with different
    seeds. *)

type policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay_s : float;  (** un-jittered delay before attempt 2 *)
  multiplier : float;  (** exponential growth per attempt *)
  max_delay_s : float;  (** cap on the un-jittered delay *)
  jitter : float;  (** +/- fraction of each delay, clamped to [0, 1] *)
}

val default : policy
(** 5 attempts, 50ms base, x2 growth, 1s cap, 25% jitter. *)

val delay_s : policy -> seed:int -> attempt:int -> float
(** Sleep before attempt [attempt + 1], after failed attempt
    [attempt] (1-based). Deterministic: equal arguments, equal
    delay. Always non-negative. *)

type 'a outcome =
  | Ok_after of int * 'a  (** succeeded on the given attempt *)
  | Gave_up of int * string
      (** last attempt number and its error — a fatal error
          immediately, a retryable one after [max_attempts] tries *)

val run :
  ?sleep:(float -> unit) ->
  ?policy:policy ->
  ?max_elapsed_s:float ->
  ?clock:(unit -> float) ->
  seed:int ->
  (attempt:int -> ('a, [ `Retryable of string | `Fatal of string ]) result) ->
  'a outcome
(** Run [f] until it succeeds, fails fatally, or exhausts the policy,
    sleeping {!delay_s} between retryable failures. [?sleep] defaults
    to [Unix.sleepf] and is injectable for tests.

    [?max_elapsed_s] additionally caps the {e total} elapsed time of
    the whole schedule: once a retryable failure lands past the
    budget, [run] gives up instead of sleeping again, so
    retry-through-a-restart cannot wait unboundedly however generous
    [max_attempts] is. [?clock] (seconds, monotonic) is injectable for
    tests and defaults to the monotonic clock. *)

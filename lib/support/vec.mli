(** Growable arrays with O(1) index access.

    Basic blocks, CFG node tables and check universes grow as the
    optimizer inserts blocks and checks; this keeps those tables dense
    and integer-addressed. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity (never observable). *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Append; returns the new element's index. *)

val truncate : 'a t -> int -> unit
(** [truncate t n] drops every element at index [>= n] (used by
    rollback to discard blocks a failed pass appended).
    @raise Invalid_argument unless [0 <= n <= length t]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool

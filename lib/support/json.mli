(** Minimal JSON for the compile-service wire protocol.

    One value per line: {!parse} accepts exactly one RFC 8259 value
    (full string escapes including surrogate pairs, a nesting bound
    against hostile input) and {!to_string} prints a single line with
    no trailing newline. Numbers parse to [Int] when they are integral
    and fit, [Float] otherwise; non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an
    error. Never raises — malformed input, truncation, raw control
    bytes in strings, unpaired surrogates and nesting beyond 512
    levels all return [Error] with a byte offset. *)

val to_string : t -> string
(** Compact single-line rendering (the wire format). *)

(** {2 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option

val to_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish). *)

val str_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option
val float_member : string -> t -> float option

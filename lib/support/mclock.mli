(** Monotonic timing for pass and benchmark measurements.

    Backed by [CLOCK_MONOTONIC] (via bechamel's clock stubs), so
    elapsed times are never negative regardless of wall-clock steps. *)

type counter = int64
(** An opaque instant, in nanoseconds since an arbitrary origin. *)

val counter : unit -> counter
(** The current instant. *)

val elapsed_ns : counter -> int64
(** Nanoseconds elapsed since [c]. Never negative. *)

val elapsed_s : counter -> float
(** Seconds elapsed since [c]. Never negative. *)

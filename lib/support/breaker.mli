(** Per-key circuit breaker — the compile server's graceful-degradation
    switch.

    One breaker instance tracks many keys (placement schemes). A key
    starts [Closed]; [threshold] {e consecutive} recorded failures open
    it. While [Open], {!decide} answers [`Fallback] (route the request
    to the always-safe floor) until [cooldown_s] has elapsed, then
    admits exactly one [`Probe]; the probe's {!record} result closes
    ([ok = true]) or re-opens ([ok = false]) the key. A probe whose
    outcome is never recorded (lost to a crash or a deadline) stops
    blocking after another [cooldown_s]: {!decide} re-arms the probe
    rather than letting [Half_open] wedge the key in fallback
    forever.

    Time is an explicit [~now] (monotonic seconds, any epoch): the
    state machine is a pure function of its call sequence, so tests
    drive it without sleeping. All operations are mutex-protected and
    callable from concurrent worker domains. *)

type t

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half-open"]. *)

val state_of_name : string -> state option
(** Inverse of {!state_name}; [None] on anything else. *)

val create : ?threshold:int -> ?cooldown_s:float -> unit -> t
(** [threshold] consecutive failures trip a key (default 3, clamped to
    >= 1); [cooldown_s] is the open-to-probe delay (default 2s). *)

val decide : t -> now:float -> string -> [ `Allow | `Probe | `Fallback ]
(** What to do with a request for [key]: [`Allow] (closed), [`Probe]
    (first caller after cooldown — run the real thing and {!record}
    the outcome), or [`Fallback] (open, or a probe already in flight;
    a probe older than [cooldown_s] is presumed lost and re-armed). *)

val record : t -> now:float -> string -> ok:bool -> unit
(** Record a request outcome for [key]. Success closes and zeroes the
    failure count; failure increments it (tripping at [threshold]) or
    re-opens a half-open key. Fallback requests must NOT be recorded —
    they say nothing about the key's health. *)

val state : t -> string -> state

val trips : t -> int
(** Lifetime count of Closed -> Open transitions (all keys). *)

val snapshot : t -> (string * state * int) list
(** Every key seen, with its state and current consecutive-failure
    count, sorted by key. *)

val restore : t -> now:float -> (string * state * int) list -> unit
(** Re-seed the table from a persisted {!snapshot}, e.g. across a
    daemon restart: a scheme that was tripped stays routed to the
    fallback floor after recovery. [Half_open] is restored as [Open]
    (the probe died with the old process) and every restored key's
    cooldown clock restarts at [now] — the snapshot's clock epoch is
    meaningless in the new process. Existing entries for the same keys
    are overwritten. *)

(* Minimal JSON for the compile-service wire protocol (one value per
   line, RFC 8259 subset). The tree deliberately has no JSON library;
   the optimizer's stats records hand-roll their output, but the server
   must PARSE untrusted request lines, and parsing is where hand-rolled
   code grows holes — so the protocol gets a real recursive-descent
   parser with a depth bound, full string escapes, and precise error
   positions, and every caller shares it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string (* byte offset, message *)

(* Nesting bound: a hostile request of 100k '[' characters must produce
   an error response, not a stack overflow in a worker domain. *)
let max_depth = 512

(* --- parsing ----------------------------------------------------------- *)

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Parse_error (c.i, msg))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c ("expected " ^ word)

let hex_digit c =
  match peek c with
  | Some ch ->
      c.i <- c.i + 1;
      (match ch with
      | '0' .. '9' -> Char.code ch - Char.code '0'
      | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "bad hex digit in \\u escape")
  | None -> fail c "truncated \\u escape"

let hex4 c =
  let a = hex_digit c in
  let b = hex_digit c in
  let d = hex_digit c in
  let e = hex_digit c in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
        c.i <- c.i + 1;
        match peek c with
        | None -> fail c "truncated escape"
        | Some e ->
            c.i <- c.i + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 c in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: a \uXXXX low surrogate must follow *)
                  expect c '\\';
                  expect c 'u';
                  let lo = hex4 c in
                  if lo < 0xDC00 || lo > 0xDFFF then fail c "unpaired surrogate"
                  else
                    add_utf8 buf
                      (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if u >= 0xDC00 && u <= 0xDFFF then fail c "unpaired surrogate"
                else add_utf8 buf u
            | _ -> fail c "bad escape");
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c "raw control byte in string"
    | Some ch ->
        c.i <- c.i + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let is_float = ref false in
  let adv () = c.i <- c.i + 1 in
  if peek c = Some '-' then adv ();
  while (match peek c with Some '0' .. '9' -> true | _ -> false) do
    adv ()
  done;
  if peek c = Some '.' then begin
    is_float := true;
    adv ();
    while (match peek c with Some '0' .. '9' -> true | _ -> false) do
      adv ()
    done
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      adv ();
      (match peek c with Some ('+' | '-') -> adv () | _ -> ());
      while (match peek c with Some '0' .. '9' -> true | _ -> false) do
        adv ()
      done
  | _ -> ());
  let text = String.sub c.s start (c.i - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "malformed number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail c "malformed number")

let rec parse_value c ~depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c ~depth:(depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ()
          | Some '}' -> c.i <- c.i + 1
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c ~depth:(depth + 1) in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elements ()
          | Some ']' -> c.i <- c.i + 1
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse s =
  let c = { s; i = 0 } in
  match
    let v = parse_value c ~depth:0 in
    skip_ws c;
    if c.i <> String.length s then fail c "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (i, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" i msg)

(* --- printing ---------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if not (Float.is_finite f) then
        (* nan/inf are not JSON: degrade to null rather than emit garbage *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  print_into buf v;
  Buffer.contents buf

(* --- accessors --------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let str_member k j = Option.bind (member k j) to_str
let int_member k j = Option.bind (member k j) to_int
let bool_member k j = Option.bind (member k j) to_bool
let float_member k j = Option.bind (member k j) to_float

(* Consistent-hash shard router with Breaker-backed health. See
   router.mli for the routing/health/failover contract. *)

type shard = { name : string; address : Server.Client.address }

type counters = {
  mutable forwards : int; (* requests forwarded (first attempts) *)
  mutable failovers : int; (* transport failures moved to the next shard *)
  mutable no_shard : int; (* requests that exhausted every candidate *)
  mutable probes : int; (* health probes sent *)
  mutable probe_failures : int;
}

type t = {
  shards : shard array;
  ring : (int * int) array; (* (point, shard index), sorted by point *)
  breaker : Breaker.t;
  probe_interval_s : float;
  probe_timeout_s : float;
  forward_timeout_s : float;
  clock : Mclock.counter;
  c : counters;
  lock : Mutex.t; (* counters + per-shard forwarded *)
  forwarded : int array; (* per-shard forwarded requests *)
  mutable prober : Thread.t option;
  stop_flag : bool Atomic.t;
}

(* First 62 bits of the md5 — stable across runs and processes, which
   is what keeps shard caches hot across router restarts. *)
let hash_point s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let create ?(replicas = 64) ?(threshold = 3) ?(cooldown_s = 2.0)
    ?(probe_interval_s = 0.5) ?(probe_timeout_s = 2.0) ?(forward_timeout_s = 35.0)
    ~shards () =
  if shards = [] then invalid_arg "Router.create: no shards";
  let shards = Array.of_list shards in
  let ring =
    Array.init
      (Array.length shards * replicas)
      (fun i ->
        let s = i / replicas and r = i mod replicas in
        (hash_point (Printf.sprintf "%s#%d" shards.(s).name r), s))
  in
  Array.sort compare ring;
  {
    shards;
    ring;
    breaker = Breaker.create ~threshold ~cooldown_s ();
    probe_interval_s;
    probe_timeout_s;
    forward_timeout_s;
    clock = Mclock.counter ();
    c = { forwards = 0; failovers = 0; no_shard = 0; probes = 0; probe_failures = 0 };
    lock = Mutex.create ();
    forwarded = Array.make (Array.length shards) 0;
    prober = None;
    stop_flag = Atomic.make false;
  }

let now_s t = Mclock.elapsed_s t.clock

(* The routing key: the request's content fields in canonical (sorted)
   order, with the per-call envelope stripped — two requests that
   would hit the same memo cell must hash identically, or routing
   would scatter a client's retries across shards and throw away the
   cache locality sharding exists to preserve. *)
let envelope_fields = [ "id"; "deadline_ms"; "tier"; "retries"; "lane"; "bg_attempt" ]

let shard_key (req : Json.t) =
  match req with
  | Json.Obj fields ->
      let content =
        List.filter (fun (k, _) -> not (List.mem k envelope_fields)) fields
      in
      let content = List.sort (fun (a, _) (b, _) -> compare a b) content in
      Json.to_string (Json.Obj content)
  | other -> Json.to_string other

(* Ring walk: start at the key's point, collect each shard the first
   time it appears — the failover order. *)
let route t key =
  let point = hash_point key in
  let n = Array.length t.ring in
  let rec bsearch lo hi =
    (* first ring index with point >= key point (wrapping) *)
    if lo >= hi then lo mod n
    else
      let mid = (lo + hi) / 2 in
      if fst t.ring.(mid) < point then bsearch (mid + 1) hi else bsearch lo mid
  in
  let start = bsearch 0 n in
  let seen = Array.make (Array.length t.shards) false in
  let order = ref [] in
  for i = 0 to n - 1 do
    let _, s = t.ring.((start + i) mod n) in
    if not seen.(s) then begin
      seen.(s) <- true;
      order := s :: !order
    end
  done;
  List.rev_map (fun s -> t.shards.(s)) !order

let healthy t shard = Breaker.state t.breaker shard.name <> Breaker.Open

let shard_index t shard =
  let rec go i = if t.shards.(i).name = shard.name then i else go (i + 1) in
  go 0

let record t shard ~ok = Breaker.record t.breaker ~now:(now_s t) shard.name ~ok

(* The receive budget for one forwarded request: its own deadline plus
   slack when it carries one (the shard will answer "deadline" well
   inside that), the configured default otherwise. Never unbounded — a
   wedged shard must cost this router worker a bounded wait, then a
   failover, not a hang. *)
let forward_timeout t req =
  match Json.float_member "deadline_ms" req with
  | Some ms when ms > 0.0 -> (ms /. 1000.0) +. 5.0
  | _ -> t.forward_timeout_s

(* Forward [req] along the failover order: unhealthy shards are
   skipped (unless every candidate is unhealthy — then trying beats
   refusing), transport-level failures record a breaker failure and
   move on, and any complete response is THE response. *)
let forward t (req : Json.t) =
  let candidates = route t (shard_key req) in
  let all_open = not (List.exists (healthy t) candidates) in
  let timeout = forward_timeout t req in
  let rec go tried = function
    | [] ->
        Mutex.lock t.lock;
        t.c.no_shard <- t.c.no_shard + 1;
        Mutex.unlock t.lock;
        Json.Obj
          [
            ("status", Json.Str "error");
            ("code", Json.Str "no-shard");
            ("retryable", Json.Bool true);
            ( "detail",
              Json.Str
                (Printf.sprintf "no shard could serve the request (%d tried)" tried)
            );
          ]
    | shard :: rest when all_open || healthy t shard -> (
        Mutex.lock t.lock;
        if tried = 0 then t.c.forwards <- t.c.forwards + 1
        else t.c.failovers <- t.c.failovers + 1;
        t.forwarded.(shard_index t shard) <-
          t.forwarded.(shard_index t shard) + 1;
        Mutex.unlock t.lock;
        match
          Server.Client.with_addr ~recv_timeout_s:timeout shard.address
            (fun conn -> Server.Client.exchange conn req)
        with
        | Ok resp ->
            record t shard ~ok:true;
            resp
        | Error (`Garbled msg) ->
            (* a response arrived but does not parse: the shard is
               alive; surface the protocol bug instead of retrying it
               elsewhere *)
            record t shard ~ok:true;
            Json.Obj
              [
                ("status", Json.Str "error");
                ("code", Json.Str "bad-upstream");
                ("retryable", Json.Bool false);
                ("detail", Json.Str ("unparseable shard response: " ^ msg));
              ]
        | Error `Closed | Error (`Frame _) ->
            record t shard ~ok:false;
            go (tried + 1) rest
        | exception Unix.Unix_error (_, _, _) ->
            record t shard ~ok:false;
            go (tried + 1) rest
        | exception Server.Client.Handshake _ ->
            record t shard ~ok:false;
            go (tried + 1) rest)
    | _ :: rest -> go tried rest
  in
  go 0 candidates

(* --- health probes ---------------------------------------------------- *)

let probe_once t =
  Array.iter
    (fun shard ->
      if not (Atomic.get t.stop_flag) then begin
        Mutex.lock t.lock;
        t.c.probes <- t.c.probes + 1;
        Mutex.unlock t.lock;
        let ok =
          match
            Server.Client.with_addr ~recv_timeout_s:t.probe_timeout_s
              shard.address
              (fun conn ->
                Server.Client.exchange conn (Json.Obj [ ("op", Json.Str "status") ]))
          with
          | Ok _ -> true
          | Error _ -> false
          | exception _ -> false
        in
        if not ok then begin
          Mutex.lock t.lock;
          t.c.probe_failures <- t.c.probe_failures + 1;
          Mutex.unlock t.lock
        end;
        record t shard ~ok
      end)
    t.shards

let start t =
  if t.prober = None then begin
    Atomic.set t.stop_flag false;
    t.prober <-
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get t.stop_flag) do
               probe_once t;
               (* sleep in small steps so stop is prompt *)
               let slept = ref 0.0 in
               while
                 (not (Atomic.get t.stop_flag)) && !slept < t.probe_interval_s
               do
                 Thread.delay 0.05;
                 slept := !slept +. 0.05
               done
             done)
           ())
  end

let stop t =
  Atomic.set t.stop_flag true;
  match t.prober with
  | None -> ()
  | Some th ->
      Thread.join th;
      t.prober <- None

(* --- the Server handler ------------------------------------------------ *)

let status_extra t () =
  let shards =
    Array.to_list
      (Array.mapi
         (fun i shard ->
           Json.Obj
             [
               ("name", Json.Str shard.name);
               ("address", Json.Str (Server.Client.address_to_string shard.address));
               ( "state",
                 Json.Str (Breaker.state_name (Breaker.state t.breaker shard.name))
               );
               ("forwarded", Json.Int t.forwarded.(i));
             ])
         t.shards)
  in
  let c = t.c in
  [
    ( "router",
      Json.Obj
        [
          ("shards", Json.List shards);
          ("forwards", Json.Int c.forwards);
          ("failovers", Json.Int c.failovers);
          ("no_shard", Json.Int c.no_shard);
          ("probes", Json.Int c.probes);
          ("probe_failures", Json.Int c.probe_failures);
          ("ejections", Json.Int (Breaker.trips t.breaker));
        ] );
  ]

let handler t = { Server.handle = (fun req -> forward t req); status_extra = status_extra t }

(** NF1 — the compile service's length-prefixed framed wire protocol
    (the TCP transport; the Unix socket keeps newline JSON).

    A frame is a fixed 20-byte header followed by the payload:

    {v
      offset  size  field
      0       3     magic "NF1"
      3       1     protocol version (currently 1)
      4       8     request id, unsigned big-endian
      12      4     payload length, unsigned big-endian
      16      4     CRC32 (IEEE) of the payload, big-endian
      20      len   payload bytes (the same JSON the line protocol carries)
    v}

    The id is the pipelining tag: many requests may be in flight on one
    connection, each response frame carries the id of the request it
    answers, and responses may arrive in any order. The CRC plus the
    length field make every fault class detectable at the frame layer:
    a torn or bit-flipped frame fails the CRC, a truncated stream ends
    mid-frame (visible via {!mid_frame}, never parsed as a request), a
    garbage prefix fails the magic, and a forged header past
    [max_payload] is rejected {e before} any payload is buffered. All
    decoder errors are terminal for the stream — framing offers no
    resync point, so the connection must be closed. *)

val version : int
(** The protocol version this build speaks (1). *)

val header_bytes : int
(** Fixed header size (20). *)

val default_max_payload : int
(** Default payload cap, 4 MiB. *)

val crc32 : string -> int
(** IEEE CRC32 of a string (the checksum the header carries). *)

val encode : id:int -> string -> string
(** One encoded frame. [id] must be non-negative.
    @raise Invalid_argument on a negative id. *)

type frame = { id : int; payload : string }

type error =
  | Bad_magic  (** the stream does not start with "NF1" *)
  | Bad_version of int  (** a frame header with an unknown version *)
  | Oversized of int  (** declared payload length beyond the cap *)
  | Crc_mismatch  (** payload checksum does not match the header *)
  | Bad_id  (** id field does not fit a non-negative OCaml int *)

val error_name : error -> string
val pp_error : Format.formatter -> error -> unit

(** {2 Incremental decoder}

    Feed bytes as they arrive (in any fragmentation — one byte at a
    time is fine), pull complete frames out. After an [Error] the
    decoder is poisoned: every later {!next} returns the same error. *)

type decoder

val decoder : ?max_payload:int -> unit -> decoder

val feed : decoder -> string -> off:int -> len:int -> unit
val feed_bytes : decoder -> bytes -> off:int -> len:int -> unit

val next : decoder -> (frame option, error) result
(** The next complete frame; [Ok None] means more bytes are needed. *)

val mid_frame : decoder -> bool
(** Some bytes of an incomplete frame (or header) are buffered — the
    server's mid-frame read deadline keys off this: a peer may be
    silent between frames for as long as the idle budget allows, but
    once a frame has started it must finish within the I/O budget. *)

val buffered : decoder -> int
(** Bytes currently buffered (header + partial payload). *)

(** {2 Blocking helpers with injectable I/O}

    [read] and [write] have the shape of [Unix.read]/[Unix.write] on a
    connected socket. Both helpers retry [EINTR] and short transfers —
    a signal landing mid-frame must never tear the stream — and the
    injectable functions let tests (and {!Netfault}) drive every
    partial-I/O schedule deterministically. *)

val read_frame :
  read:(bytes -> int -> int -> int) ->
  decoder ->
  (frame option, error) result
(** Pump [read] until a complete frame, EOF, or a decode error. A
    truncated stream is not a decode error — nothing was misparsed —
    so EOF returns [Ok None] whether it lands cleanly between frames
    or mid-frame; the caller distinguishes the two via {!mid_frame}.
    Raises whatever [read] raises, except [EINTR], which is retried. *)

val write_all :
  write:(bytes -> int -> int -> int) -> string -> unit
(** Write the whole string, retrying short writes and [EINTR]. *)

(** {2 Hello handshake}

    The first frame on a connection (each direction) is a hello
    carrying the protocol version, so a mismatched peer gets a clear
    error instead of undefined behaviour deeper in the stream. *)

val hello : unit -> Json.t
(** [{"hello": "nf1", "version": 1}]. *)

val check_hello : Json.t -> (int, string) result
(** Validate a received hello payload; [Ok version] on a version this
    build speaks, [Error reason] otherwise (wrong shape, wrong
    version). *)

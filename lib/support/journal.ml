(* Append-only request journal: the daemon's write-ahead log.

   One record per line:

     NJ1 <32-hex md5(body)> <body>\n

   with body either "A <seq> <payload>" (admitted) or "D <seq>"
   (done). The digest makes every record self-verifying — the same
   discipline as Memo's digest-checked disk entries — so recovery
   never has to trust a line a crash may have torn: a record that
   fails the check is copied to <dir>/quarantine.log and skipped.
   Appends are fsync'd before [append] returns (the admission path
   waits on durability); the opening scan and periodic online
   compaction rewrite the log to pending-only records through
   [Guard.write_atomic]. The directory lock ([Guard.lock_dir]) is held
   for the journal's lifetime, so two live daemons cannot share one
   journal — while a kill -9'd daemon's lock is released by the
   kernel, letting its successor recover. *)

type entry = { seq : int; payload : string }

type t = {
  dir : string;
  log_path : string;
  mutable fd : Unix.file_descr;
  fsync : bool;
  lock : Mutex.t;
  dlock : Guard.dir_lock;
  pending_tbl : (int, string) Hashtbl.t;
  mutable next_seq : int;
  mutable quarantined : int;
  mutable dones_since_compact : int;
}

let magic = "NJ1"
let digest_hex_len = 32
let compact_every = 512 (* done-markers between online compactions *)

let record_line body =
  Printf.sprintf "%s %s %s\n" magic (Digest.to_hex (Digest.string body)) body

let admit_body seq payload = Printf.sprintf "A %d %s" seq payload
let done_body seq = Printf.sprintf "D %d" seq

(* [line] has no trailing newline. *)
let parse_line line =
  let mlen = String.length magic in
  let body_off = mlen + 1 + digest_hex_len + 1 in
  if String.length line < body_off + 1 then `Bad
  else if not (String.sub line 0 mlen = magic && line.[mlen] = ' ') then `Bad
  else if line.[mlen + 1 + digest_hex_len] <> ' ' then `Bad
  else
    let hex = String.sub line (mlen + 1) digest_hex_len in
    let body = String.sub line body_off (String.length line - body_off) in
    if Digest.to_hex (Digest.string body) <> hex then `Bad
    else if String.length body >= 2 && body.[0] = 'D' && body.[1] = ' ' then
      match int_of_string_opt (String.sub body 2 (String.length body - 2)) with
      | Some seq -> `Done seq
      | None -> `Bad
    else if String.length body >= 2 && body.[0] = 'A' && body.[1] = ' ' then
      match String.index_from_opt body 2 ' ' with
      | None -> `Bad
      | Some sp -> (
          match int_of_string_opt (String.sub body 2 (sp - 2)) with
          | Some seq ->
              `Admit (seq, String.sub body (sp + 1) (String.length body - sp - 1))
          | None -> `Bad)
    else `Bad

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let quarantine_record t fragment =
  t.quarantined <- t.quarantined + 1;
  try
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644
      (Filename.concat t.dir "quarantine.log")
      (fun oc ->
        Out_channel.output_string oc fragment;
        Out_channel.output_char oc '\n')
  with Sys_error _ -> ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let pending_locked t =
  Hashtbl.fold (fun seq payload acc -> { seq; payload } :: acc) t.pending_tbl []
  |> List.sort (fun a b -> compare a.seq b.seq)

(* Rewrite the log to pending-only records and reopen the append fd.
   Atomic: readers of a crashed compaction see either the old log or
   the complete new one. *)
let compact_locked t =
  let contents =
    pending_locked t
    |> List.map (fun e -> record_line (admit_body e.seq e.payload))
    |> String.concat ""
  in
  Guard.write_atomic ~path:t.log_path contents;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- Unix.openfile t.log_path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o644;
  if t.fsync then Unix.fsync t.fd;
  t.dones_since_compact <- 0

let openj ?(fsync = true) ~dir () =
  match Guard.lock_dir ~dir with
  | Error e -> Error ("journal: " ^ e)
  | Ok dlock -> (
      let log_path = Filename.concat dir "journal.log" in
      let raw =
        if Sys.file_exists log_path then
          try Ok (In_channel.with_open_bin log_path In_channel.input_all)
          with Sys_error e -> Error ("journal: cannot read " ^ log_path ^ ": " ^ e)
        else Ok ""
      in
      match raw with
      | Error _ as e ->
          Guard.unlock_dir dlock;
          e
      | Ok raw -> (
          match
            Unix.openfile log_path
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
              0o644
          with
          | exception e ->
              Guard.unlock_dir dlock;
              Error ("journal: cannot open " ^ log_path ^ ": " ^ Printexc.to_string e)
          | fd0 -> (
          let t =
            {
              dir;
              log_path;
              fd = fd0 (* replaced by compaction below *);
              fsync;
              lock = Mutex.create ();
              dlock;
              pending_tbl = Hashtbl.create 32;
              next_seq = 1;
              quarantined = 0;
              dones_since_compact = 0;
            }
          in
          (* Scan every newline-terminated record; a trailing fragment
             without its newline is a torn final append. Digest
             verification catches torn and corrupt lines alike; all go
             to quarantine.log and the scan continues. *)
          let n = String.length raw in
          let pos = ref 0 in
          while !pos < n do
            match String.index_from_opt raw !pos '\n' with
            | None ->
                quarantine_record t (String.sub raw !pos (n - !pos));
                pos := n
            | Some nl ->
                let line = String.sub raw !pos (nl - !pos) in
                (if line <> "" then
                   match parse_line line with
                   | `Admit (seq, payload) ->
                       Hashtbl.replace t.pending_tbl seq payload;
                       if seq >= t.next_seq then t.next_seq <- seq + 1
                   | `Done seq ->
                       Hashtbl.remove t.pending_tbl seq;
                       if seq >= t.next_seq then t.next_seq <- seq + 1
                   | `Bad -> quarantine_record t line);
                pos := nl + 1
          done;
          match compact_locked t with
          | () -> Ok t
          | exception e ->
              (try Unix.close t.fd with Unix.Unix_error _ -> ());
              Guard.unlock_dir dlock;
              Error ("journal: cannot write " ^ log_path ^ ": " ^ Printexc.to_string e))))

let append t payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.append: payload contains a newline";
  locked t @@ fun () ->
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  write_all t.fd (record_line (admit_body seq payload));
  if t.fsync then Unix.fsync t.fd;
  Hashtbl.replace t.pending_tbl seq payload;
  seq

let mark_done t seq =
  locked t @@ fun () ->
  if Hashtbl.mem t.pending_tbl seq then begin
    Hashtbl.remove t.pending_tbl seq;
    write_all t.fd (record_line (done_body seq));
    if t.fsync then Unix.fsync t.fd;
    t.dones_since_compact <- t.dones_since_compact + 1;
    if t.dones_since_compact >= compact_every then compact_locked t
  end

let pending t = locked t @@ fun () -> pending_locked t
let pending_count t = locked t @@ fun () -> Hashtbl.length t.pending_tbl
let quarantined t = locked t @@ fun () -> t.quarantined
let compact t = locked t @@ fun () -> compact_locked t

let close t =
  locked t (fun () ->
      (try compact_locked t with _ -> ());
      try Unix.close t.fd with Unix.Unix_error _ -> ());
  Guard.unlock_dir t.dlock

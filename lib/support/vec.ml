(* Growable arrays.

   Basic blocks, CFG node tables and check universes all grow as the
   optimizer inserts blocks and checks; a resizable array with O(1)
   index access keeps those tables dense and integer-addressed. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  (* Release dropped elements so the dummy is the only thing kept
     alive beyond [n]. *)
  Array.fill t.data n (t.len - n) t.dummy;
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

(* Compile-as-a-service transport, robust by construction: a
   Unix-domain socket speaking newline-delimited JSON, plus an optional
   TCP listener speaking the NF1 framed protocol (Frame) with
   per-connection pipelining — many in-flight requests tagged by frame
   id on one socket, responses written in completion order.

   Layering: this module owns everything about *serving* — the sockets,
   connection reader threads, the bounded request queue (admission
   control), worker domains with crash supervision, per-request
   wall-clock deadlines layered on Guard fuel, drain-on-stop, and the
   status counters. What a request *means* is the handler's business
   (the compile handler lives in Nascent_harness.Service); the server
   only understands the envelope: the "id" field it echoes back, the
   "op":"status" request it answers itself so observability survives a
   full queue, and the "deadline_ms" override.

   Robustness contract (pinned by test/test_server.ml and the CI
   smoke):
   - admission control: once the queue holds [queue_depth] requests,
     new ones are shed immediately with {"code":"overloaded",
     "retryable":true} — the server degrades by refusing work, never by
     wedging or growing without bound;
   - per-request deadlines: a request carries its wall budget from
     admission (queue wait included); a compile that outlives it is cut
     off at the next ambient tick and answered with
     {"code":"deadline"}, freeing the worker. Fuel exhaustion is
     reported the same way — both are resource-bound responses;
   - worker crash isolation: a handler exception answers that request
     with {"code":"internal"} and the worker survives; anything that
     escapes even that guard restarts the worker loop (counted in
     [worker_restarts]) instead of silently losing a domain;
   - connection lifecycle: a connection's fd, conn record and reader
     thread are released as soon as the client hangs up AND its last
     queued response has been written (a refcount on the conn), so a
     long-running daemon serving one-connection-per-request clients
     holds resources proportional to the live connection count, never
     to the lifetime request count;
   - accept resilience: accept(2) failures (ECONNABORTED, EMFILE under
     fd pressure, ...) are counted and absorbed — the accept loop backs
     off briefly on fd exhaustion and keeps serving instead of crashing
     the daemon with admitted requests still queued;
   - network failure domain: a slow-loris peer cannot wedge a reader or
     leak a connection record — a frame (or line) that stays incomplete
     past [io_deadline_s] closes the connection (io_timeouts), a
     connected-but-silent client is reaped after [idle_timeout_s]
     (idle_closed), a response write blocked past the I/O budget gives
     up (the peer is not draining), torn/oversized/garbage frames are
     terminal for their connection only (frame_errors), and a legacy or
     version-mismatched client on the TCP port gets one clear error
     line and a close (proto_rejects) instead of a hang;
   - graceful drain: [stop] (wired to SIGTERM/SIGINT by nascentd) stops
     accepting, sheds NEW requests with {"code":"shutting-down",
     "retryable":true}, finishes every admitted request, flushes
     responses, then joins workers and readers — zero in-flight loss,
     exit 0. *)

type handler = {
  handle : Json.t -> Json.t;
      (* request object -> response object; the server adds "id" *)
  status_extra : unit -> (string * Json.t) list;
      (* appended to "op":"status" responses *)
}

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (* additional TCP listener (host, port; port 0 = ephemeral),
         speaking the NF1 framed protocol *)
  jobs : int; (* worker domains *)
  queue_depth : int; (* admission bound on queued requests *)
  default_deadline_s : float option; (* per-request wall budget *)
  request_fuel : int option; (* per-request Guard fuel budget *)
  journal : Journal.t option;
      (* write-ahead log: admitted requests are recorded before a
         worker touches them and replayed by [run] after a crash *)
  restarts : int; (* supervisor restart count, reported in status *)
  idle_timeout_s : float option;
      (* reap a connected-but-silent client (no partial input, no
         response owed) after this long without a byte *)
  io_deadline_s : float option;
      (* slow-loris bound: a frame/line that stays incomplete this
         long closes the connection; also the response-write budget *)
  max_frame_bytes : int; (* frame payload / request line cap *)
}

let default_config ~socket_path =
  {
    socket_path;
    tcp = None;
    jobs = 2;
    queue_depth = 64;
    default_deadline_s = Some 30.0;
    request_fuel = Some 50_000_000;
    journal = None;
    restarts = 0;
    idle_timeout_s = None;
    io_deadline_s = Some 10.0;
    max_frame_bytes = Frame.default_max_payload;
  }

type counters = {
  mutable served : int; (* requests answered by the handler *)
  mutable shed : int; (* overload + drain rejections *)
  mutable timeouts : int; (* deadline / fuel responses *)
  mutable internal_errors : int; (* handler exceptions *)
  mutable bad_requests : int; (* unparseable lines *)
  mutable worker_restarts : int; (* escaped-exception supervisions *)
  mutable connections : int; (* lifetime accepted connections *)
  mutable accept_errors : int; (* absorbed accept(2) failures *)
  mutable replayed : int; (* journal entries replayed at startup *)
  mutable mem_shed : int; (* admissions shed under memory pressure *)
  mutable mem_aborts : int; (* requests aborted by the memory watchdog *)
  mutable bg_run : int; (* background job executions (incl. retries) *)
  mutable bg_done : int; (* background jobs that reached a terminal run *)
  mutable bg_retried : int; (* background re-enqueues (backoff) *)
  mutable bg_dropped : int; (* background jobs abandoned after retries *)
  mutable bg_shed : int; (* background submissions refused *)
  mutable proto_rejects : int; (* legacy / version-mismatched TCP clients *)
  mutable idle_closed : int; (* silent connections reaped *)
  mutable frame_errors : int; (* torn / oversized / garbage frames *)
  mutable io_timeouts : int; (* mid-frame read or response-write overruns *)
}

(* What the reader thread is parsing on this connection. UDS starts (and
   stays) in line mode; a TCP connection starts in sniff mode until its
   first bytes prove it speaks NF1 — anything else is answered with one
   clear error line and closed (proto_rejects), never left hanging. *)
type proto =
  | P_line of Buffer.t (* newline-JSON accumulator *)
  | P_sniff of Buffer.t (* TCP, transport not yet identified *)
  | P_framed of Frame.decoder

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t; (* one response line at a time; guards the fields below *)
  mutable alive : bool; (* writing still makes sense *)
  mutable pending : int; (* admitted jobs that will answer on this conn *)
  mutable eof : bool; (* reader finished: no more requests coming *)
  mutable closed : bool; (* fd closed — never touch it again (fd reuse) *)
  (* reader-thread private state — no lock needed *)
  mutable proto : proto;
  mutable greeted : bool; (* framed: hello exchanged *)
  mutable last_rx : float; (* uptime at the last byte received *)
  mutable in_started : float option; (* uptime when partial input began *)
}

type job = {
  jconn : conn;
  jid : Json.t;
  jreq : Json.t;
  jframe : int option; (* NF1 frame id to tag the response with *)
  jdeadline : Guard.deadline option;
  jseq : int option; (* journal sequence number, when journaling *)
}

(* A background job: handler work with NO client attached — the compile
   service's tier upgrades ride this lane. Background jobs run only
   when the live queue is empty (idle workers), each under a fresh
   per-run deadline/fuel budget, and their journal entries are marked
   done only after a terminal run — so a kill -9 mid-upgrade replays
   the job, and replay re-enqueues it here (at lower priority than
   live traffic) instead of running it before the socket binds. *)
type bgjob = {
  breq : Json.t;
  mutable battempt : int; (* completed runs of this job *)
  mutable bnot_before : float; (* uptime before which it must not run *)
  benqueued : float; (* uptime at first enqueue, for age reporting *)
  bseq : int option; (* journal sequence number, when journaling *)
}

type t = {
  cfg : config;
  handler : handler;
  queue : job Queue.t; (* guarded by [lock] *)
  lock : Mutex.t; (* queue + counters + conns *)
  nonempty : Condition.t;
  drained : Condition.t; (* queue empty and nothing in flight *)
  mutable inflight : int;
  mutable admitting : int; (* slots reserved while journaling an admission *)
  mutable bgq : bgjob list; (* background lane, FIFO by eligibility; guarded by [lock] *)
  mutable bg_inflight : int;
  mutable bg_admitting : int; (* slots reserved while journaling a bg submission *)
  stopping : bool Atomic.t;
  c : counters;
  started : Mclock.counter;
  stop_r : Unix.file_descr; (* self-pipe: stop() wakes the accept loop *)
  stop_w : Unix.file_descr;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable tcp_bound : int option; (* actual TCP port once bound *)
}

let create cfg handler =
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  {
    cfg = { cfg with jobs = max 1 cfg.jobs; queue_depth = max 1 cfg.queue_depth };
    handler;
    queue = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    drained = Condition.create ();
    inflight = 0;
    admitting = 0;
    bgq = [];
    bg_inflight = 0;
    bg_admitting = 0;
    stopping = Atomic.make false;
    c =
      {
        served = 0;
        shed = 0;
        timeouts = 0;
        internal_errors = 0;
        bad_requests = 0;
        worker_restarts = 0;
        connections = 0;
        accept_errors = 0;
        replayed = 0;
        mem_shed = 0;
        mem_aborts = 0;
        bg_run = 0;
        bg_done = 0;
        bg_retried = 0;
        bg_dropped = 0;
        bg_shed = 0;
        proto_rejects = 0;
        idle_closed = 0;
        frame_errors = 0;
        io_timeouts = 0;
      };
    started = Mclock.counter ();
    stop_r;
    stop_w;
    conns = [];
    readers = [];
    tcp_bound = None;
  }

let uptime_s t = Mclock.elapsed_s t.started
let tcp_port t = t.tcp_bound

(* Callable from a signal handler: no locks, just a flag and a
   self-pipe write to break the accept loop out of select(). *)
let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ()

let stopping t = Atomic.get t.stopping

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- connection lifecycle ---------------------------------------------- *)

(* A connection is released (fd closed, record dropped from [t.conns])
   as soon as BOTH hold: the reader saw EOF, and no admitted job still
   owes it a response. [pending] is the refcount for the second half;
   jobs retain at admission and release after answering. The [closed]
   flag makes close idempotent and — because every fd touch is guarded
   by [wlock] + [closed] — prevents writes or shutdowns landing on a
   reused fd number. t.lock and conn.wlock are never held together:
   a client too slow to drain its responses (a write blocked under
   wlock) must never stall the global lock. *)

let close_conn_locked conn =
  if not conn.closed then begin
    conn.closed <- true;
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let forget_conn t conn =
  locked t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns)

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.pending <- conn.pending + 1;
  Mutex.unlock conn.wlock

let conn_release t conn =
  Mutex.lock conn.wlock;
  conn.pending <- conn.pending - 1;
  let done_with = conn.eof && conn.pending = 0 && not conn.closed in
  if done_with then close_conn_locked conn;
  Mutex.unlock conn.wlock;
  if done_with then forget_conn t conn

(* --- responses --------------------------------------------------------- *)

(* Whole-string write, restarted across EINTR and short writes: a
   signal landing mid-response must never tear a frame or a line. *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | w -> go (off + w)
  in
  go 0

(* Best-effort response write: a client that hung up loses its answer,
   nobody else does (EPIPE never escapes into a worker). With an I/O
   deadline configured the socket carries SO_SNDTIMEO, so a peer that
   stops draining its responses surfaces here as EAGAIN — the write
   gives up, the connection dies, and the overrun is counted instead of
   parking a worker on a full socket buffer forever. [frame] tags the
   response for the NF1 transport; [None] writes a JSON line. *)
let answer t ?frame conn (json : Json.t) =
  let timed_out = ref false in
  Mutex.lock conn.wlock;
  (if conn.alive then
     let s =
       match frame with
       | Some fid -> Frame.encode ~id:fid (Json.to_string json)
       | None -> Json.to_string json ^ "\n"
     in
     try write_all conn.fd s with
     | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         conn.alive <- false;
         timed_out := true
     | Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  Mutex.unlock conn.wlock;
  (* counter update outside wlock: t.lock and conn.wlock never nest *)
  if !timed_out then locked t (fun () -> t.c.io_timeouts <- t.c.io_timeouts + 1)

let error_response ~id ~code ?(retryable = false) detail =
  Json.Obj
    [
      ("id", id);
      ("status", Json.Str "error");
      ("code", Json.Str code);
      ("retryable", Json.Bool retryable);
      ("detail", Json.Str detail);
    ]

let with_id ~id = function
  | Json.Obj fields -> Json.Obj (("id", id) :: List.remove_assoc "id" fields)
  | other -> Json.Obj [ ("id", id); ("result", other) ]

let status_response t ~id =
  let depth, inflight, open_conns, bg_pending, bg_inflight, bg_oldest =
    locked t (fun () ->
        let now = uptime_s t in
        let oldest =
          List.fold_left
            (fun acc bj -> Float.max acc (now -. bj.benqueued))
            0.0 t.bgq
        in
        ( Queue.length t.queue,
          t.inflight,
          List.length t.conns,
          List.length t.bgq,
          t.bg_inflight,
          oldest ))
  in
  let c = t.c in
  Json.Obj
    ([
       ("id", id);
       ("status", Json.Str "ok");
       ("uptime_s", Json.Float (uptime_s t));
       ("jobs", Json.Int t.cfg.jobs);
       ("queue_depth", Json.Int depth);
       ("queue_capacity", Json.Int t.cfg.queue_depth);
       ("inflight", Json.Int inflight);
       ("draining", Json.Bool (stopping t));
       ("served", Json.Int c.served);
       ("shed", Json.Int c.shed);
       ("timeouts", Json.Int c.timeouts);
       ("internal_errors", Json.Int c.internal_errors);
       ("bad_requests", Json.Int c.bad_requests);
       ("worker_restarts", Json.Int c.worker_restarts);
       ("connections", Json.Int c.connections);
       ("open_connections", Json.Int open_conns);
       ("accept_errors", Json.Int c.accept_errors);
       ("restarts", Json.Int t.cfg.restarts);
       ("replayed", Json.Int c.replayed);
       ( "journal_pending",
         Json.Int
           (match t.cfg.journal with None -> 0 | Some j -> Journal.pending_count j) );
       ( "journal_quarantined",
         Json.Int
           (match t.cfg.journal with None -> 0 | Some j -> Journal.quarantined j) );
       ("mem_shed", Json.Int c.mem_shed);
       ("mem_aborts", Json.Int c.mem_aborts);
       ("bg_pending", Json.Int bg_pending);
       ("bg_inflight", Json.Int bg_inflight);
       ("bg_oldest_age_s", Json.Float bg_oldest);
       ("bg_run", Json.Int c.bg_run);
       ("bg_done", Json.Int c.bg_done);
       ("bg_retried", Json.Int c.bg_retried);
       ("bg_dropped", Json.Int c.bg_dropped);
       ("bg_shed", Json.Int c.bg_shed);
       ("proto_rejects", Json.Int c.proto_rejects);
       ("idle_closed", Json.Int c.idle_closed);
       ("frame_errors", Json.Int c.frame_errors);
       ("io_timeouts", Json.Int c.io_timeouts);
       ( "tcp_port",
         match t.tcp_bound with None -> Json.Null | Some p -> Json.Int p );
       ( "mem_budget_bytes",
         match Guard.mem_budget () with None -> Json.Null | Some b -> Json.Int b );
     ]
    @ t.handler.status_extra ())

(* --- workers ----------------------------------------------------------- *)

let request_deadline t req =
  let explicit =
    match Json.float_member "deadline_ms" req with
    | Some ms when ms > 0.0 -> Some (ms /. 1000.0)
    | Some _ -> None (* deadline_ms <= 0: explicitly unbounded *)
    | None -> t.cfg.default_deadline_s
  in
  Option.map (fun seconds -> Guard.deadline ~what:"request" ~seconds) explicit

let process t job =
  let id = job.jid in
  let response =
    match job.jdeadline with
    | Some d when Guard.expired d ->
        (* expired while queued: don't burn a compile on a dead request *)
        locked t (fun () -> t.c.timeouts <- t.c.timeouts + 1);
        error_response ~id ~code:"deadline" "deadline exceeded while queued"
    | deadline -> (
        let body () = t.handler.handle job.jreq in
        let body =
          match t.cfg.request_fuel with
          | Some budget ->
              fun () -> Guard.with_fuel (Guard.fuel ~what:"request" ~budget) body
          | None -> body
        in
        let body =
          match deadline with
          | Some d -> fun () -> Guard.with_deadline d body
          | None -> body
        in
        match body () with
        | resp ->
            locked t (fun () -> t.c.served <- t.c.served + 1);
            with_id ~id resp
        | exception Guard.Deadline_exceeded what ->
            locked t (fun () -> t.c.timeouts <- t.c.timeouts + 1);
            error_response ~id ~code:"deadline" ("deadline exceeded: " ^ what)
        | exception Guard.Fuel_exhausted what ->
            locked t (fun () -> t.c.timeouts <- t.c.timeouts + 1);
            error_response ~id ~code:"deadline" ("fuel exhausted: " ^ what)
        | exception Guard.Mem_exceeded what ->
            (* The watchdog aborts the request that was ticking when the
               heap crossed the budget — a recorded incident, not an OS
               OOM-kill of the daemon. Retryable: the abort itself frees
               memory, so a later attempt may well fit. *)
            locked t (fun () -> t.c.mem_aborts <- t.c.mem_aborts + 1);
            error_response ~id ~code:"mem-pressure" ~retryable:true
              ("memory budget: " ^ what)
        | exception e ->
            locked t (fun () -> t.c.internal_errors <- t.c.internal_errors + 1);
            error_response ~id ~code:"internal" (Printexc.to_string e))
  in
  (* The response exists: the journal entry is complete. Marking done
     BEFORE the write reaches the wire keeps status coherent — a client
     that has read its response can never observe its own request as
     journal-pending. A crash in the gap loses only the response bytes,
     not the work: the client's retry recompiles from the memo. *)
  (match (t.cfg.journal, job.jseq) with
  | Some j, Some seq -> Journal.mark_done j seq
  | _ -> ());
  answer t ?frame:job.jframe job.jconn response

(* --- background lane ---------------------------------------------------- *)

(* The upgrade path is its own failure domain: a background run that
   crashes (deadline, fuel, memory, a handler bug) is retried with
   backoff up to this many runs, then abandoned — a sick upgrade can
   cost bounded worker time, never wedge the lane or touch a live
   response. The handler can also drive its own schedule by answering
   with a "retry_after_s" field (e.g. waiting out a breaker cooldown). *)
let bg_max_attempts = 8

let bg_backoff =
  { Retry.default with max_attempts = bg_max_attempts; base_delay_s = 0.05 }

let set_field name v = function
  | Json.Obj fields -> Json.Obj ((name, v) :: List.remove_assoc name fields)
  | other -> other

let bg_finish t bj ~dropped =
  (match (t.cfg.journal, bj.bseq) with
  | Some j, Some seq -> Journal.mark_done j seq
  | _ -> ());
  locked t (fun () ->
      if dropped then t.c.bg_dropped <- t.c.bg_dropped + 1
      else t.c.bg_done <- t.c.bg_done + 1)

let bg_requeue t bj ~delay =
  bj.battempt <- bj.battempt + 1;
  bj.bnot_before <- uptime_s t +. Float.max 0.0 delay;
  locked t (fun () ->
      t.bgq <- t.bgq @ [ bj ];
      t.c.bg_retried <- t.c.bg_retried + 1;
      Condition.signal t.nonempty)

(* One background run: same budget wrapping as [process], no client to
   answer. The handler's response steers the lane — "retry_after_s"
   re-enqueues the job after that delay (attempts capped), anything
   else is terminal and completes the journal entry. An exception is
   an implicit retry with deterministic backoff: transient pressure
   (deadline, memory) may clear; after [bg_max_attempts] the job is
   dropped — the floor entry it would have upgraded stays served. *)
let process_bg t bj =
  locked t (fun () -> t.c.bg_run <- t.c.bg_run + 1);
  let req = set_field "bg_attempt" (Json.Int bj.battempt) bj.breq in
  let body () = t.handler.handle req in
  let body =
    match t.cfg.request_fuel with
    | Some budget -> fun () -> Guard.with_fuel (Guard.fuel ~what:"bg" ~budget) body
    | None -> body
  in
  let body =
    match request_deadline t bj.breq with
    | Some d -> fun () -> Guard.with_deadline d body
    | None -> body
  in
  match body () with
  | resp -> (
      match Json.float_member "retry_after_s" resp with
      | Some d when bj.battempt + 1 < bg_max_attempts -> bg_requeue t bj ~delay:d
      | Some _ -> bg_finish t bj ~dropped:true
      | None -> bg_finish t bj ~dropped:false)
  | exception _ ->
      if bj.battempt + 1 < bg_max_attempts then
        let seed = match bj.bseq with Some s -> s | None -> 1 in
        bg_requeue t bj
          ~delay:(Retry.delay_s bg_backoff ~seed ~attempt:(bj.battempt + 1))
      else bg_finish t bj ~dropped:true

(* Take the first eligible background job: FIFO among jobs whose
   backoff delay has elapsed. Called under [t.lock]. *)
let take_bg_locked t =
  if Guard.mem_level () <> `Ok then None
    (* memory pressure sheds the background lane first: upgrades are
       deferred (the ticker re-offers them), live work keeps the
       remaining headroom *)
  else if t.bg_inflight >= max 1 (t.cfg.jobs - 1) then None
    (* at most jobs-1 workers upgrade concurrently: a live request must
       never queue behind a burst of in-flight background compiles, so
       one worker always stays on the live lane (a single-worker server
       has no spare and alternates, live first) *)
  else
    let now = uptime_s t in
    let rec split acc = function
      | [] -> None
      | bj :: rest when bj.bnot_before <= now ->
          t.bgq <- List.rev_append acc rest;
          t.bg_inflight <- t.bg_inflight + 1;
          Some bj
      | bj :: rest -> split (bj :: acc) rest
    in
    split [] t.bgq

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some j ->
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.lock;
        `Live j
    | None ->
        if stopping t then begin
          (* pending background jobs are abandoned here, not run:
             journaled ones stay pending and the next start re-enqueues
             them — the drain contract covers admitted LIVE work only *)
          Mutex.unlock t.lock;
          `Stop
        end
        else begin
          (match take_bg_locked t with
          | Some bj ->
              Mutex.unlock t.lock;
              `Bg bj
          | None ->
              Condition.wait t.nonempty t.lock;
              next ())
        end
  in
  match next () with
  | `Stop -> ()
  | `Live job ->
      Fun.protect
        ~finally:(fun () ->
          conn_release t job.jconn;
          Mutex.lock t.lock;
          t.inflight <- t.inflight - 1;
          if t.inflight = 0 && Queue.is_empty t.queue then Condition.broadcast t.drained;
          Mutex.unlock t.lock)
        (fun () -> process t job);
      worker_loop t
  | `Bg bj ->
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              t.bg_inflight <- t.bg_inflight - 1;
              (* a freed slot may unblock a capped waiter immediately;
                 the ticker would otherwise delay it a beat *)
              if t.bgq <> [] then Condition.signal t.nonempty))
        (fun () -> process_bg t bj);
      worker_loop t

(* Supervision: [process] already guards the handler, so nothing should
   escape — but "should" is not a failure-domain boundary. If something
   does (a write path bug, an allocation failure), the worker restarts
   its loop instead of silently shrinking the pool. During a drain the
   restart condition is the queue, not the stopping flag: admitted
   requests must still be answered, and if this was the last live
   worker, exiting here would leave [run] waiting on [drained]
   forever. *)
let rec worker_main t =
  try worker_loop t
  with _ ->
    let restart =
      locked t (fun () ->
          t.c.worker_restarts <- t.c.worker_restarts + 1;
          (not (stopping t)) || not (Queue.is_empty t.queue))
    in
    if restart then worker_main t

(* --- admission --------------------------------------------------------- *)

let enqueue t conn ?frame ~id req =
  (* Retained up front (outside t.lock — the locks never nest): an
     admitted job owns a ref on its connection until its response is
     written. The shed paths give the ref straight back; they run on
     the reader thread, so [eof] is still false and the release cannot
     be the closing one. *)
  conn_retain conn;
  Mutex.lock t.lock;
  if stopping t then begin
    t.c.shed <- t.c.shed + 1;
    Mutex.unlock t.lock;
    conn_release t conn;
    answer t ?frame conn
      (error_response ~id ~code:"shutting-down" ~retryable:true
         "server is draining; retry against a fresh instance")
  end
  else if Queue.length t.queue + t.admitting >= t.cfg.queue_depth then begin
    t.c.shed <- t.c.shed + 1;
    Mutex.unlock t.lock;
    conn_release t conn;
    answer t ?frame conn
      (error_response ~id ~code:"overloaded" ~retryable:true
         (Printf.sprintf "queue full (%d requests); back off and retry"
            t.cfg.queue_depth))
  end
  else if Guard.mem_level () <> `Ok then begin
    (* Memory watchdog, first line of defence: past the shed fraction
       of NASCENT_MEM_BUDGET, refuse new work before any in-flight
       request has to be aborted. Same contract as queue overload —
       retryable, so clients back off. *)
    t.c.shed <- t.c.shed + 1;
    t.c.mem_shed <- t.c.mem_shed + 1;
    Mutex.unlock t.lock;
    conn_release t conn;
    answer t ?frame conn
      (error_response ~id ~code:"overloaded" ~retryable:true
         "memory pressure: heap near budget; back off and retry")
  end
  else begin
    (* the deadline clock starts at admission: queue wait counts *)
    match t.cfg.journal with
    | None ->
        let job =
          {
            jconn = conn;
            jid = id;
            jreq = req;
            jframe = frame;
            jdeadline = request_deadline t req;
            jseq = None;
          }
        in
        Queue.add job t.queue;
        Condition.signal t.nonempty;
        Mutex.unlock t.lock
    | Some j ->
        (* Journaled admission: the fsync must not run under t.lock
           (workers take it between every job), so the queue slot is
           reserved via [admitting] first — check-plus-add stays
           atomic — and the stopping flag is re-checked after the
           write: stopping is monotonic, so seeing it clear under the
           lock here proves no worker has exited yet and the job will
           be drained. If a stop slipped in while we were journaling,
           the entry is marked done and the request shed exactly as if
           it had arrived after the flag. *)
        t.admitting <- t.admitting + 1;
        Mutex.unlock t.lock;
        let seq = Journal.append j (Json.to_string req) in
        Mutex.lock t.lock;
        t.admitting <- t.admitting - 1;
        if stopping t then begin
          t.c.shed <- t.c.shed + 1;
          Mutex.unlock t.lock;
          Journal.mark_done j seq;
          conn_release t conn;
          answer t ?frame conn
            (error_response ~id ~code:"shutting-down" ~retryable:true
               "server is draining; retry against a fresh instance")
        end
        else begin
          let job =
            {
              jconn = conn;
              jid = id;
              jreq = req;
              jframe = frame;
              jdeadline = request_deadline t req;
              jseq = Some seq;
            }
          in
          Queue.add job t.queue;
          Condition.signal t.nonempty;
          Mutex.unlock t.lock
        end
  end

(* Submit handler work to the background lane — no client, no response;
   used by the compile service for tier upgrades. Journaled (when a
   journal is configured) under a "lane":"bg" envelope mark BEFORE the
   job is visible to a worker, so a kill -9 between submission and
   completion replays it; the entry is marked done only by a terminal
   run ([bg_finish]). Returns false — and journals nothing — when the
   server is draining or the lane is at capacity: the caller's floor
   entry keeps being served, and a later cold request resubmits. *)
let submit_background t (req : Json.t) =
  if stopping t then false
  else begin
    let req = set_field "lane" (Json.Str "bg") req in
    Mutex.lock t.lock;
    if
      List.length t.bgq + t.bg_inflight + t.bg_admitting >= t.cfg.queue_depth
      || Guard.mem_level () <> `Ok
    then begin
      t.c.bg_shed <- t.c.bg_shed + 1;
      Mutex.unlock t.lock;
      false
    end
    else begin
      match t.cfg.journal with
      | None ->
          t.bgq <-
            t.bgq
            @ [
                {
                  breq = req;
                  battempt = 0;
                  bnot_before = 0.0;
                  benqueued = uptime_s t;
                  bseq = None;
                };
              ];
          Condition.signal t.nonempty;
          Mutex.unlock t.lock;
          true
      | Some j ->
          (* fsync outside t.lock, slot reserved via [bg_admitting] —
             same discipline as journaled live admission *)
          t.bg_admitting <- t.bg_admitting + 1;
          Mutex.unlock t.lock;
          let seq = Journal.append j (Json.to_string req) in
          Mutex.lock t.lock;
          t.bg_admitting <- t.bg_admitting - 1;
          if stopping t then begin
            (* Draining: leave the entry PENDING — unlike a shed live
               request (whose client retries), nobody will resubmit an
               upgrade the journal forgets; the next start re-enqueues
               it. Report the submission as accepted. *)
            Mutex.unlock t.lock;
            true
          end
          else begin
            t.bgq <-
              t.bgq
              @ [
                  {
                    breq = req;
                    battempt = 0;
                    bnot_before = 0.0;
                    benqueued = uptime_s t;
                    bseq = Some seq;
                  };
                ];
            Condition.signal t.nonempty;
            Mutex.unlock t.lock;
            true
          end
    end
  end

(* One request body (a line or a frame payload), parsed and dispatched.
   [frame] tags the response for the NF1 transport. *)
let handle_request t conn ?frame body =
  if String.trim body = "" then ()
  else
    match Json.parse body with
    | Error msg ->
        locked t (fun () -> t.c.bad_requests <- t.c.bad_requests + 1);
        answer t ?frame conn (error_response ~id:Json.Null ~code:"bad-request" msg)
    | Ok req -> (
        let id = Option.value ~default:Json.Null (Json.member "id" req) in
        match Json.str_member "op" req with
        | Some "status" ->
            (* answered inline by the reader thread: status must work
               even when the queue is full and every worker is busy *)
            answer t ?frame conn (status_response t ~id)
        | _ -> enqueue t conn ?frame ~id req)

(* --- connections ------------------------------------------------------- *)

let hello_ack t =
  match Frame.hello () with
  | Json.Obj fields ->
      Json.Obj (fields @ [ ("max_frame_bytes", Json.Int t.cfg.max_frame_bytes) ])
  | other -> other

(* One clear line, then close: the answer a client gets when it speaks
   the wrong protocol at the TCP port — newline JSON where NF1 frames
   are expected, or an NF1 version this build does not know. A line is
   readable by both kinds of peer, and closing right away turns a
   would-be hang into an actionable error. *)
let proto_reject t conn detail =
  locked t (fun () -> t.c.proto_rejects <- t.c.proto_rejects + 1);
  answer t conn
    (error_response ~id:Json.Null ~code:"proto-mismatch"
       (Printf.sprintf
          "%s; this port speaks the NF1 framed protocol v%d (the Unix socket \
           speaks newline JSON)"
          detail Frame.version))

(* Drain every complete frame buffered in the decoder. The first frame
   must be the hello (the version handshake); after that each payload
   is an ordinary request tagged with its frame id — the pipelining
   tag that lets responses complete out of order on one socket.
   Returns false when the connection must close. *)
let rec drain_frames t conn dec =
  match Frame.next dec with
  | Ok None -> true
  | Ok (Some f) ->
      if conn.greeted then begin
        handle_request t conn ~frame:f.Frame.id f.Frame.payload;
        drain_frames t conn dec
      end
      else begin
        match Json.parse f.Frame.payload with
        | Ok j -> (
            match Frame.check_hello j with
            | Ok _ ->
                conn.greeted <- true;
                answer t ~frame:f.Frame.id conn (hello_ack t);
                drain_frames t conn dec
            | Error msg ->
                proto_reject t conn msg;
                false)
        | Error _ ->
            proto_reject t conn "first frame is not an NF1 hello";
            false
      end
  | Error e ->
      (* torn, oversized, or garbage: the stream has no resync point,
         so the error is terminal for this connection (and only it) *)
      locked t (fun () -> t.c.frame_errors <- t.c.frame_errors + 1);
      (if conn.greeted then
         (* past the hello this peer speaks frames, so the terminal
            error must be a frame too (id 0 — no request to tag it to);
            a retrying client sees well-formed bytes then EOF, not a
            protocol mismatch *)
         answer t ~frame:0 conn
           (error_response ~id:Json.Null ~code:"frame-error"
              (Format.asprintf "%a; closing connection" Frame.pp_error e))
       else
         match e with
         | Frame.Bad_version v ->
             proto_reject t conn (Printf.sprintf "protocol version %d" v)
         | Frame.Bad_magic -> proto_reject t conn "not an NF1 stream"
         | e ->
             answer t conn
               (error_response ~id:Json.Null ~code:"frame-error"
                  (Format.asprintf "%a; closing connection" Frame.pp_error e)));
      false

(* Feed [n] freshly read bytes through the connection's protocol state.
   Returns false when the connection must close. *)
let consume t conn buf n =
  match conn.proto with
  | P_line acc ->
      let ok = ref true in
      for i = 0 to n - 1 do
        let ch = Bytes.get buf i in
        if ch = '\n' then begin
          let line = Buffer.contents acc in
          Buffer.clear acc;
          handle_request t conn line
        end
        else Buffer.add_char acc ch
      done;
      if Buffer.length acc > t.cfg.max_frame_bytes then begin
        (* a line refusing to end is the line-mode slow-loris *)
        locked t (fun () -> t.c.bad_requests <- t.c.bad_requests + 1);
        answer t conn
          (error_response ~id:Json.Null ~code:"bad-request"
             (Printf.sprintf "request line exceeds %d bytes" t.cfg.max_frame_bytes));
        ok := false
      end;
      !ok
  | P_framed dec ->
      Frame.feed_bytes dec buf ~off:0 ~len:n;
      drain_frames t conn dec
  | P_sniff acc ->
      Buffer.add_subbytes acc buf 0 n;
      (* Decide as early as the bytes allow: the magic is checked
         position by position, so a legacy "{...}" client is rejected
         on its first byte, not after 4. *)
      let have = Buffer.length acc in
      let magic = "NF1" in
      let rec magic_ok i =
        i >= min have 3 || (Buffer.nth acc i = magic.[i] && magic_ok (i + 1))
      in
      if not (magic_ok 0) then begin
        proto_reject t conn "expected an NF1 frame, got something else";
        false
      end
      else if have >= 4 && Buffer.nth acc 3 <> Char.chr Frame.version then begin
        locked t (fun () -> t.c.frame_errors <- t.c.frame_errors + 1);
        proto_reject t conn
          (Printf.sprintf "protocol version %d" (Char.code (Buffer.nth acc 3)));
        false
      end
      else if have >= 4 then begin
        let dec = Frame.decoder ~max_payload:t.cfg.max_frame_bytes () in
        Frame.feed dec (Buffer.contents acc) ~off:0 ~len:have;
        conn.proto <- P_framed dec;
        drain_frames t conn dec
      end
      else true

let mid_input conn =
  match conn.proto with
  | P_line b | P_sniff b -> Buffer.length b > 0
  | P_framed d -> Frame.mid_frame d

(* The reader loop: select with a timeout derived from the two network
   budgets, then read. [io_deadline_s] bounds how long a started frame
   or line may stay incomplete (the slow-loris bound — a worker is
   never involved, but the conn record and fd must not leak either);
   [idle_timeout_s] reaps a connection with no partial input and no
   response owed. A response in flight (pending > 0) never counts as
   idle: the client is waiting on us, not the other way around. *)
let serve_conn t conn =
  let buf = Bytes.create 8192 in
  let poll = 0.2 (* re-check granularity when a budget is armed *) in
  let rec loop () =
    let now = uptime_s t in
    let io_deadline =
      match (t.cfg.io_deadline_s, conn.in_started) with
      | Some d, Some s -> Some (s +. d)
      | _ -> None
    in
    let idle_deadline =
      match t.cfg.idle_timeout_s with
      | Some d when not (mid_input conn) -> Some (conn.last_rx +. d)
      | _ -> None
    in
    let timeout =
      match (io_deadline, idle_deadline) with
      | None, None -> -1.0 (* no budgets: block until bytes or shutdown *)
      | Some a, Some b -> Float.max 0.0 (Float.min a b -. now)
      | Some a, None | None, Some a -> Float.max 0.0 (a -. now)
    in
    match Unix.select [ conn.fd ] [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | [], _, _ -> (
        (* a budget expired (select can only time out when one was
           armed); decide which, re-checking liveness under wlock *)
        match (io_deadline, idle_deadline) with
        | Some dl, _ when now +. timeout >= dl -. 0.000001 && mid_input conn ->
            locked t (fun () -> t.c.io_timeouts <- t.c.io_timeouts + 1);
            let resp =
              error_response ~id:Json.Null ~code:"io-timeout"
                "frame not completed within the I/O deadline"
            in
            (* a greeted framed peer must see a well-formed frame, not
               a stray line it would decode as garbage *)
            if conn.greeted then answer t ~frame:0 conn resp
            else answer t conn resp
        | _, Some dl when now +. timeout >= dl -. 0.000001 -> (
            Mutex.lock conn.wlock;
            let quiet = conn.pending = 0 in
            Mutex.unlock conn.wlock;
            match quiet with
            | true -> locked t (fun () -> t.c.idle_closed <- t.c.idle_closed + 1)
            | false ->
                (* responses still owed: not idle — wait out [poll]
                   and re-derive the budgets *)
                (match Unix.select [ conn.fd ] [] [] poll with
                | exception _ -> ()
                | _ -> ());
                loop ())
        | _ -> loop ())
    | _ -> (
        match Unix.read conn.fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception (Unix.Unix_error _ | Sys_error _) -> ()
        | 0 -> ()
        | n ->
            conn.last_rx <- uptime_s t;
            let keep = consume t conn buf n in
            conn.in_started <-
              (if mid_input conn then
                 match conn.in_started with None -> Some conn.last_rx | s -> s
               else None);
            if keep then loop ())
  in
  loop ();
  (* Reader done: release the connection as soon as the last admitted
     response is out (now, if nothing is pending), and take this thread
     off the join list — a long-lived daemon must not accumulate one
     fd + conn record + reader per served connection. *)
  Mutex.lock conn.wlock;
  conn.eof <- true;
  conn.alive <- false;
  let done_with = conn.pending = 0 && not conn.closed in
  if done_with then close_conn_locked conn;
  Mutex.unlock conn.wlock;
  if done_with then forget_conn t conn;
  let self = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers)

(* --- lifecycle --------------------------------------------------------- *)

let listen_socket path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     let addr =
       if host = "" || host = "*" then Unix.inet_addr_any
       else
         try Unix.inet_addr_of_string host
         with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
     in
     Unix.bind fd (ADDR_INET (addr, port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

(* Crash recovery: run every admitted-but-unanswered journal entry
   through the handler before the socket binds (the socket appearing
   IS the ready signal — clients retrying through a restart cannot
   race the replay). The handler is idempotent (compiles are
   memo-backed), so replaying warms the cache the crashed process lost
   its chance to fill; the client that owned the request reconnects,
   retries, and hits that warm entry. Replay honors each request's own
   deadline/fuel budgets with a fresh clock — a request that hung the
   old process cannot hang recovery — and checks [stopping] between
   entries, so SIGTERM mid-replay drains cleanly, leaving the
   remainder pending for the next start. *)
let replay_journal t j =
  List.iter
    (fun (e : Journal.entry) ->
      if not (stopping t) then begin
        let finished =
          match Json.parse e.Journal.payload with
          | Error _ -> true (* checksummed at append; nothing to rescue *)
          | Ok req when Json.str_member "lane" req = Some "bg" ->
            (* A background (upgrade) job the crash interrupted: do NOT
               run it here — replay must never starve admission, and an
               upgrade can be slow. Re-enqueue it on the background
               lane (same journal seq, so completion marks the original
               entry done) and let idle workers resume it after the
               socket is serving; live traffic admitted from the first
               accepted connection outranks it by construction. *)
              locked t (fun () ->
                  t.bgq <-
                    t.bgq
                    @ [
                        {
                          breq = req;
                          battempt = 0;
                          bnot_before = 0.0;
                          benqueued = uptime_s t;
                          bseq = Some e.Journal.seq;
                        };
                      ];
                  t.c.replayed <- t.c.replayed + 1);
              false
          | Ok req ->
              let body () = t.handler.handle req in
              let body =
                match t.cfg.request_fuel with
                | Some budget ->
                    fun () -> Guard.with_fuel (Guard.fuel ~what:"replay" ~budget) body
                | None -> body
              in
              let body =
                match request_deadline t req with
                | Some d -> fun () -> Guard.with_deadline d body
                | None -> body
              in
              (try ignore (body ()) with _ -> ());
              true
        in
        if finished then begin
          Journal.mark_done j e.Journal.seq;
          locked t (fun () -> t.c.replayed <- t.c.replayed + 1)
        end
      end)
    (Journal.pending j);
  Journal.compact j

(* Serve until [stop]: accept loop in the calling thread, one reader
   thread per connection, [cfg.jobs] worker domains. Returns after the
   drain completes: queue empty, nothing in flight, every response
   written, workers and readers joined, socket file removed. *)
let run_serving t =
  (* TCP binds first, so the UDS socket file appearing — the ready
     signal clients and the supervisor poll for — implies both
     transports are listening. *)
  let tcp_listener =
    match t.cfg.tcp with
    | None -> None
    | Some (host, port) ->
        let fd, bound = listen_tcp host port in
        t.tcp_bound <- Some bound;
        Some fd
  in
  let listen_fd = listen_socket t.cfg.socket_path in
  let listeners =
    listen_fd :: (match tcp_listener with None -> [] | Some fd -> [ fd ])
  in
  let workers = List.init t.cfg.jobs (fun _ -> Domain.spawn (fun () -> worker_main t)) in
  (* Background jobs waiting out a backoff delay (or memory pressure)
     have no event that marks them eligible again; a ticker re-offers
     the lane to idle workers a few times a second. Exits on [stop]. *)
  let ticker =
    Thread.create
      (fun () ->
        while not (stopping t) do
          Thread.delay 0.05;
          locked t (fun () -> if t.bgq <> [] then Condition.broadcast t.nonempty)
        done)
      ()
  in
  let accept_one lfd =
    let is_tcp = Some lfd = tcp_listener in
    match Unix.accept ~cloexec:true lfd with
    | cfd, _ ->
        (* The network budgets ride the socket where the kernel can
           enforce them: SO_SNDTIMEO turns a peer that stops draining
           responses into an EAGAIN at the writer (counted as an I/O
           timeout) instead of a worker parked on a full buffer. *)
        (if t.cfg.io_deadline_s <> None then
           try
             Unix.setsockopt_float cfd Unix.SO_SNDTIMEO
               (Option.get t.cfg.io_deadline_s)
           with Unix.Unix_error _ | Invalid_argument _ -> ());
        (if is_tcp then
           try Unix.setsockopt cfd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
        let conn =
          {
            fd = cfd;
            wlock = Mutex.create ();
            alive = true;
            pending = 0;
            eof = false;
            closed = false;
            proto =
              (if is_tcp then P_sniff (Buffer.create 32)
               else P_line (Buffer.create 256));
            greeted = false;
            last_rx = uptime_s t;
            in_started = None;
          }
        in
        (* Register under t.lock BEFORE the reader serves a
           byte: serve_conn deregisters itself at EOF, so the
           registration it undoes must already exist even for a
           connection that hangs up instantly. Holding the lock
           across Thread.create pins the order — the reader's
           opening lock/unlock handshake cannot complete until
           the registration below is published. *)
        Mutex.lock t.lock;
        let reader =
          Thread.create
            (fun () ->
              Mutex.lock t.lock;
              Mutex.unlock t.lock;
              serve_conn t conn)
            ()
        in
        t.c.connections <- t.c.connections + 1;
        t.conns <- conn :: t.conns;
        t.readers <- reader :: t.readers;
        Mutex.unlock t.lock
    | exception Unix.Unix_error (e, _, _) ->
        (* Never let a failed accept kill a daemon with admitted
           work: count it, back off briefly when the process is
           out of fds, and keep serving. *)
        if e <> Unix.EINTR then begin
          locked t (fun () -> t.c.accept_errors <- t.c.accept_errors + 1);
          match e with
          | Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM ->
              Unix.sleepf 0.05
          | _ -> ()
        end
  in
  let rec accept_loop () =
    if not (stopping t) then begin
      (match Unix.select (t.stop_r :: listeners) [] [] (-1.0) with
      | rs, _, _ ->
          if not (stopping t) then
            List.iter (fun lfd -> if List.mem lfd rs then accept_one lfd) listeners
      | exception Unix.Unix_error (e, _, _) ->
          (* EINTR is routine; anything else must not hot-loop *)
          if e <> Unix.EINTR then Unix.sleepf 0.05);
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: no new connections (the listeners are closed first, so
     connect() starts failing instead of queueing), reader threads shed
     anything they read from now on (stopping is set), workers finish
     every admitted request. *)
  List.iter Unix.close listeners;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  while not (Queue.is_empty t.queue && t.inflight = 0) do
    Condition.wait t.drained t.lock
  done;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join workers;
  Thread.join ticker;
  (* Every response is on the wire: hang up the surviving connections
     (already-released ones are gone from t.conns) and collect their
     readers. The [closed] check under wlock keeps the shutdown off fd
     numbers a racing reader-side close may have recycled. *)
  let conns, readers = locked t (fun () -> (t.conns, t.readers)) in
  List.iter
    (fun conn ->
      Mutex.lock conn.wlock;
      if not conn.closed then (
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Mutex.unlock conn.wlock)
    conns;
  List.iter Thread.join readers;
  (* Readers close their own conn at EOF; sweep whatever is left. *)
  List.iter
    (fun conn ->
      Mutex.lock conn.wlock;
      close_conn_locked conn;
      Mutex.unlock conn.wlock)
    conns;
  Unix.close t.stop_r;
  Unix.close t.stop_w

let run t =
  (match t.cfg.journal with Some j -> replay_journal t j | None -> ());
  if stopping t then begin
    (* stopped during replay: nothing was bound or spawned — just
       release the self-pipe and finish the drain *)
    Unix.close t.stop_r;
    Unix.close t.stop_w
  end
  else run_serving t

(* --- client helpers ---------------------------------------------------- *)

(* Shared by nascentc client, the bench service target and the tests:
   the one place that knows how to speak a request/response exchange,
   including backoff against retryable errors. *)
module Client = struct
  type address = Uds of string | Tcp of string * int

  (* "host:port" (no slash, numeric suffix) is TCP; anything else is a
     socket path. A bare relative path never contains ':' in practice,
     and anything with '/' is unambiguous. *)
  let parse_address s =
    if String.contains s '/' then Uds s
    else
      match String.rindex_opt s ':' with
      | Some i when i > 0 && i < String.length s - 1 -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Tcp (host, p)
          | _ -> Uds s)
      | _ -> Uds s

  let address_to_string = function
    | Uds p -> p
    | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

  exception Handshake of string
  (* the server rejected (or garbled) the NF1 hello: a protocol
     mismatch, not a transient — retrying the same bytes cannot help *)

  type connection = {
    cfd : Unix.file_descr;
    racc : Buffer.t; (* line mode: read-ahead *)
    fdec : Frame.decoder option; (* Some = NF1 framed (TCP) *)
    mutable next_fid : int; (* pipelining tag allocator *)
    recv_timeout_s : float option;
  }

  let framed conn = conn.fdec <> None

  let close conn = try Unix.close conn.cfd with Unix.Unix_error _ -> ()

  (* A bounded wait for response bytes: a stalled or silent server
     surfaces as ETIMEDOUT (retryable) instead of a client hung
     forever on read(2). *)
  let wait_readable conn =
    match conn.recv_timeout_s with
    | None -> ()
    | Some d ->
        let rec go () =
          match Unix.select [ conn.cfd ] [] [] d with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "recv", ""))
          | _ -> ()
        in
        go ()

  let read_chunk conn buf =
    wait_readable conn;
    let rec go () =
      match Unix.read conn.cfd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | n -> n
    in
    go ()

  (* Read the next complete frame. [Ok None] is EOF; a decode error is
     surfaced as such (the caller decides retryability — a CRC tear is
     transient, a bad magic means the peer is not speaking NF1). *)
  let recv_frame conn =
    match conn.fdec with
    | None -> invalid_arg "Client.recv_frame: line-mode connection"
    | Some dec ->
        let buf = Bytes.create 8192 in
        let rec go () =
          match Frame.next dec with
          | Error e -> Error e
          | Ok (Some f) -> Ok (Some f)
          | Ok None -> (
              match read_chunk conn buf with
              | 0 -> Ok None
              | n ->
                  Frame.feed_bytes dec buf ~off:0 ~len:n;
                  go ())
        in
        go ()

  let send_frame conn ~fid payload = write_all conn.cfd (Frame.encode ~id:fid payload)

  let connect_addr ?recv_timeout_s addr =
    match addr with
    | Uds path -> (
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        match Unix.connect fd (ADDR_UNIX path) with
        | () ->
            {
              cfd = fd;
              racc = Buffer.create 256;
              fdec = None;
              next_fid = 1;
              recv_timeout_s;
            }
        | exception e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
    | Tcp (host, port) -> (
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        match
          let ip =
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          Unix.connect fd (ADDR_INET (ip, port));
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ())
        with
        | () -> (
            let conn =
              {
                cfd = fd;
                racc = Buffer.create 256;
                fdec = Some (Frame.decoder ());
                next_fid = 1;
                recv_timeout_s;
              }
            in
            (* version handshake: hello out, hello-ack back, before any
               request rides the connection *)
            send_frame conn ~fid:0 (Json.to_string (Frame.hello ()));
            match recv_frame conn with
            | Ok (Some f) -> (
                match Json.parse f.Frame.payload with
                | Ok j -> (
                    match Frame.check_hello j with
                    | Ok _ -> conn
                    | Error msg ->
                        close conn;
                        raise (Handshake msg))
                | Error _ ->
                    close conn;
                    raise (Handshake "server hello is not JSON"))
            | Ok None ->
                close conn;
                raise
                  (Unix.Unix_error (Unix.ECONNRESET, "connect", "hello"))
            | Error e ->
                (* the peer answered the hello with a line (or worse):
                   it does not speak NF1 at this port *)
                close conn;
                raise (Handshake (Format.asprintf "%a" Frame.pp_error e)))
        | exception e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)

  let connect path = connect_addr (Uds path)

  let with_conn path f =
    let conn = connect path in
    Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

  let with_addr ?recv_timeout_s addr f =
    let conn = connect_addr ?recv_timeout_s addr in
    Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

  let send_line conn line = write_all conn.cfd (line ^ "\n")

  (* Read one newline-terminated line, buffering any overshoot for the
     next call. [None] on EOF before a complete line. *)
  let recv_line conn =
    let rec take_line () =
      let s = Buffer.contents conn.racc in
      match String.index_opt s '\n' with
      | Some i ->
          Buffer.clear conn.racc;
          Buffer.add_string conn.racc
            (String.sub s (i + 1) (String.length s - i - 1));
          Some (String.sub s 0 i)
      | None -> (
          let buf = Bytes.create 4096 in
          match read_chunk conn buf with
          | 0 -> None
          | n ->
              Buffer.add_subbytes conn.racc buf 0 n;
              take_line ())
    in
    take_line ()

  (* --- pipelining (framed connections) --------------------------------

     Many requests in flight on one socket: [pipeline_send] tags each
     with a fresh frame id, [pipeline_recv] returns responses in the
     order the server finishes them. *)

  let pipeline_send conn (req : Json.t) =
    if not (framed conn) then
      invalid_arg "Client.pipeline_send: line-mode connection";
    let fid = conn.next_fid in
    conn.next_fid <- fid + 1;
    send_frame conn ~fid (Json.to_string req);
    fid

  let pipeline_recv conn =
    match recv_frame conn with
    | Ok (Some f) -> (
        match Json.parse f.Frame.payload with
        | Ok j -> Ok (Some (f.Frame.id, j))
        | Error msg -> Error (`Garbled msg))
    | Ok None -> Ok None
    | Error e -> Error (`Frame e)

  (* One exchange, with the non-exception failure modes kept distinct:
     a connection that closed before a complete response (expected when
     racing a draining/restarting daemon — retryable) vs. a response
     that arrived but does not parse (a protocol bug — fatal) vs. a
     frame-level decode error (a torn response — retryable for CRC,
     fatal for a protocol mismatch). Unix errors propagate. *)
  let exchange conn (req : Json.t) =
    if framed conn then begin
      let fid = pipeline_send conn req in
      let rec await () =
        match pipeline_recv conn with
        | Ok (Some (id, resp)) when id = fid -> Ok resp
        | Ok (Some _) -> await () (* stale tag from an abandoned request *)
        | Ok None -> Error `Closed
        | Error (`Garbled msg) -> Error (`Garbled msg)
        | Error (`Frame e) -> Error (`Frame e)
      in
      await ()
    end
    else begin
      send_line conn (Json.to_string req);
      match recv_line conn with
      | Some line -> (
          match Json.parse line with
          | Ok resp -> Ok resp
          | Error msg -> Error (`Garbled msg))
      | None -> Error `Closed
    end

  let request conn (req : Json.t) : (Json.t, string) result =
    match exchange conn req with
    | Ok resp -> Ok resp
    | Error (`Garbled msg) -> Error msg
    | Error (`Frame e) -> Error (Format.asprintf "%a" Frame.pp_error e)
    | Error `Closed -> Error "connection closed before a response arrived"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  (* One-shot request with exponential backoff + deterministic jitter.
     Retryable: connection refusals (daemon restarting), responses the
     server marks retryable (overload shedding, drain), a connection
     torn down mid-exchange (EPIPE/ECONNRESET or EOF before a
     response), a receive that outwaits [recv_timeout_s], and a
     CRC-torn response frame — the expected outcomes of racing a
     draining/restarting daemon or a hostile network, and safe to
     replay because requests are idempotent: compiles are memoized,
     status/burn are read-only. Fatal: a response that parses as
     neither (protocol bug) and a protocol-mismatch handshake — the
     peer will reject the same bytes forever. *)
  (* Each attempt re-resolves and re-connects the address from
     scratch, so the retry schedule rides through a supervised daemon
     restart: the old socket's refusal/teardown is retryable, and the
     replacement process re-binds the same path/port. [?max_elapsed_s]
     bounds the whole schedule so retry-through-restart cannot wait
     unboundedly (exhaustion surfaces as the usual gave-up error). *)
  let request_retry ?(policy = Retry.default) ?sleep ?max_elapsed_s
      ?recv_timeout_s ~seed path (req : Json.t) : (Json.t, string) result =
    let addr = parse_address path in
    let attempt ~attempt:_ =
      match with_addr ?recv_timeout_s addr (fun conn -> exchange conn req) with
      | Ok resp ->
          if
            Json.str_member "status" resp = Some "error"
            && Json.bool_member "retryable" resp = Some true
          then
            Error
              (`Retryable
                (Option.value ~default:"retryable error"
                   (Json.str_member "detail" resp)))
          else Ok resp
      | Error (`Garbled msg) -> Error (`Fatal msg)
      | Error (`Frame Frame.Crc_mismatch) ->
          Error (`Retryable "response frame failed its CRC")
      | Error (`Frame e) -> Error (`Fatal (Format.asprintf "%a" Frame.pp_error e))
      | Error `Closed ->
          Error (`Retryable "connection closed before a response arrived")
      | exception
          Unix.Unix_error
            ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.ECONNRESET
              | Unix.EPIPE | Unix.ETIMEDOUT ),
              _,
              _ )
        -> Error (`Retryable "cannot connect")
      | exception Unix.Unix_error (e, _, _) -> Error (`Fatal (Unix.error_message e))
      | exception Handshake msg -> Error (`Fatal ("protocol mismatch: " ^ msg))
    in
    match Retry.run ?sleep ?max_elapsed_s ~policy ~seed attempt with
    | Retry.Ok_after (_, resp) -> Ok resp
    | Retry.Gave_up (n, msg) ->
        Error (Printf.sprintf "gave up after %d attempt(s): %s" n msg)
end

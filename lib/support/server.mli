(** Compile-as-a-service transport: a Unix-domain-socket server
    speaking newline-delimited JSON, robust by construction.

    The server owns everything about {e serving}: the socket, one
    reader thread per connection, a bounded request queue (admission
    control), [jobs] worker domains with crash supervision, per-request
    wall-clock deadlines layered on {!Guard} fuel, graceful drain, and
    status counters. What a request {e means} is the {!handler}'s
    business (the compile handler is [Nascent_harness.Service]); the
    server understands only the envelope:

    - ["id"]: echoed verbatim into the response;
    - ["op": "status"]: answered inline by the reader thread, so
      observability survives a full queue and busy workers;
    - ["deadline_ms"]: per-request wall budget override ([<= 0] means
      unbounded); the clock starts at admission, so queue wait counts.

    Server-generated responses: [{"code": "overloaded",
    "retryable": true}] (queue full), [{"code": "shutting-down",
    "retryable": true}] (draining), [{"code": "deadline"}] (wall budget
    or fuel exhausted — the worker is freed either way),
    [{"code": "internal"}] (handler exception; the worker survives),
    [{"code": "bad-request"}] (unparseable line). *)

type handler = {
  handle : Json.t -> Json.t;
      (** request object -> response object; must not block forever
          between ambient ticks (optimizer fixpoints tick). The server
          adds ["id"]. Exceptions become ["internal"] responses. *)
  status_extra : unit -> (string * Json.t) list;
      (** extra fields appended to ["op": "status"] responses (breaker
          states, cache counters, ...). Called from reader threads:
          must be thread-safe and fast. *)
}

type config = {
  socket_path : string;
  jobs : int;  (** worker domains (clamped to >= 1) *)
  queue_depth : int;  (** admission bound on queued requests *)
  default_deadline_s : float option;  (** default per-request budget *)
  request_fuel : int option;  (** per-request {!Guard} fuel budget *)
  journal : Journal.t option;
      (** write-ahead log: every admitted request is recorded (fsync'd)
          before a worker touches it and marked done after its response
          is written; {!run} replays admitted-but-unfinished entries
          through the handler before binding the socket, so a [kill -9]
          loses zero admitted work. [None] disables journaling. *)
  restarts : int;
      (** supervisor restart count, echoed as the ["restarts"] status
          field — informational only *)
}

val default_config : socket_path:string -> config
(** 2 jobs, depth 64, 30s deadline, 50M fuel, no journal. *)

type t

val create : config -> handler -> t

val run : t -> unit
(** Serve until {!stop}. With a journal configured, first replays every
    admitted-but-unfinished entry through the handler (idempotent:
    compiles are memo-backed), each under its own fresh deadline/fuel
    budget; the socket binds only after replay, so the socket appearing
    is the ready signal. Then binds (replacing any stale socket file),
    accepts in the calling thread, and on {!stop} drains — sheds new
    work, finishes and answers {e every} admitted request, joins
    workers and readers, removes the socket file. {!stop} during the
    replay stops between entries (the rest stay pending for the next
    start) and returns without serving.

    Memory watchdog (see {!Guard.set_mem_budget}): past the shed
    fraction of the budget new admissions are refused with
    [{"code": "overloaded", "retryable": true}]; a request whose
    ticking crosses the full budget is aborted with
    [{"code": "mem-pressure", "retryable": true}] instead of letting
    the OS OOM-kill the daemon. *)

val submit_background : t -> Json.t -> bool
(** Submit handler work to the {e background lane}: no client, no
    response — the compile service's tier-upgrade jobs. Background
    jobs run only when the live queue is empty (idle workers), each
    run under a fresh default deadline/fuel budget, so they can never
    starve admission or live traffic. The handler sees the request
    with two envelope additions: ["lane": "bg"] and ["bg_attempt": n]
    (0-based run counter).

    Scheduling protocol: a handler response carrying
    ["retry_after_s": d] re-enqueues the job after [d] seconds
    (bounded attempts); any other response is terminal. A run that
    raises (deadline, fuel, memory, a handler bug) is retried with
    deterministic exponential backoff and dropped after the attempt
    cap — upgrade-path faults are contained to the lane.

    With a journal configured the job is journaled (fsync'd) before it
    becomes runnable and marked done only by a terminal run, so a
    [kill -9] mid-upgrade replays it — {!run} re-enqueues pending
    background entries on this lane instead of running them before the
    socket binds (replay never starves admission), and a supervised
    restart therefore resumes the upgrade queue from journaled state.

    Returns [false] — journaling nothing — when the server is draining
    or the lane is at capacity ([queue_depth]) or the heap is past the
    shed fraction of the memory budget: the caller keeps serving its
    floor entry and a later request may resubmit. *)

val stop : t -> unit
(** Request a graceful drain. Lock-free (a flag and a self-pipe
    write): safe to call from a signal handler or any thread.
    Idempotent. *)

val stopping : t -> bool
val uptime_s : t -> float

(** Client side of the protocol — shared by [nascentc client], the
    bench service target and the tests. *)
module Client : sig
  type connection

  val connect : string -> connection
  (** Connect to a socket path. Raises [Unix.Unix_error] as
      [Unix.connect] does. *)

  val close : connection -> unit

  val with_conn : string -> (connection -> 'a) -> 'a

  val send_line : connection -> string -> unit

  val recv_line : connection -> string option
  (** One newline-terminated line ([None] on EOF); overshoot is
      buffered for the next call. *)

  val request : connection -> Json.t -> (Json.t, string) result
  (** One request/response exchange on an open connection. *)

  val request_retry :
    ?policy:Retry.policy ->
    ?sleep:(float -> unit) ->
    ?max_elapsed_s:float ->
    seed:int ->
    string ->
    Json.t ->
    (Json.t, string) result
  (** One-shot exchange on a fresh connection, with {!Retry} backoff
      (deterministic jitter from [seed]). Retryable: connection
      refusals, responses marked [retryable], and a connection torn
      down mid-exchange (EPIPE/ECONNRESET/EOF before a response) —
      racing a draining or restarting daemon is safe because requests
      are idempotent (compiles are memoized, status is read-only). A
      response that arrives but fails to parse is fatal. Every attempt
      re-resolves and re-connects the socket path, so the schedule
      rides through a supervised restart; [?max_elapsed_s] caps the
      total wait (see {!Retry.run}). *)
end

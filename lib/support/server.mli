(** Compile-as-a-service transport, robust by construction: a
    Unix-domain socket speaking newline-delimited JSON, plus an
    optional TCP listener speaking the {!Frame} (NF1) framed protocol
    with per-connection pipelining — many in-flight requests tagged by
    frame id on one socket, responses written in completion order.

    The server owns everything about {e serving}: the sockets, one
    reader thread per connection, a bounded request queue (admission
    control), [jobs] worker domains with crash supervision, per-request
    wall-clock deadlines layered on {!Guard} fuel, graceful drain, and
    status counters. What a request {e means} is the {!handler}'s
    business (the compile handler is [Nascent_harness.Service]); the
    server understands only the envelope:

    - ["id"]: echoed verbatim into the response;
    - ["op": "status"]: answered inline by the reader thread, so
      observability survives a full queue and busy workers;
    - ["deadline_ms"]: per-request wall budget override ([<= 0] means
      unbounded); the clock starts at admission, so queue wait counts.

    Server-generated responses: [{"code": "overloaded",
    "retryable": true}] (queue full), [{"code": "shutting-down",
    "retryable": true}] (draining), [{"code": "deadline"}] (wall budget
    or fuel exhausted — the worker is freed either way),
    [{"code": "internal"}] (handler exception; the worker survives),
    [{"code": "bad-request"}] (unparseable line),
    [{"code": "proto-mismatch"}] (a legacy or version-mismatched client
    at the TCP port — one clear line, then close, counted as
    [proto_rejects]), [{"code": "frame-error"}] (torn/oversized frame;
    terminal for its connection only), [{"code": "io-timeout"}] (a
    frame or line left incomplete past [io_deadline_s] — the
    slow-loris bound).

    Network failure domain: a slow-loris peer cannot wedge a reader or
    leak a connection record ([io_deadline_s], counted [io_timeouts]);
    a connected-but-silent client with no response owed is reaped
    after [idle_timeout_s] (counted [idle_closed]); a peer that stops
    draining responses trips the kernel send timeout instead of
    parking a worker; frame decode errors close only their own
    connection (counted [frame_errors]). *)

type handler = {
  handle : Json.t -> Json.t;
      (** request object -> response object; must not block forever
          between ambient ticks (optimizer fixpoints tick). The server
          adds ["id"]. Exceptions become ["internal"] responses. *)
  status_extra : unit -> (string * Json.t) list;
      (** extra fields appended to ["op": "status"] responses (breaker
          states, cache counters, ...). Called from reader threads:
          must be thread-safe and fast. *)
}

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** additional TCP listener ([host, port]; empty or ["*"] host
          binds every interface, port [0] picks an ephemeral port —
          see {!tcp_port}), speaking the NF1 framed protocol *)
  jobs : int;  (** worker domains (clamped to >= 1) *)
  queue_depth : int;  (** admission bound on queued requests *)
  default_deadline_s : float option;  (** default per-request budget *)
  request_fuel : int option;  (** per-request {!Guard} fuel budget *)
  journal : Journal.t option;
      (** write-ahead log: every admitted request is recorded (fsync'd)
          before a worker touches it and marked done after its response
          is written; {!run} replays admitted-but-unfinished entries
          through the handler before binding the socket, so a [kill -9]
          loses zero admitted work. [None] disables journaling. *)
  restarts : int;
      (** supervisor restart count, echoed as the ["restarts"] status
          field — informational only *)
  idle_timeout_s : float option;
      (** reap a connected-but-silent client (no partial input, no
          response owed) after this long without a byte; [None]
          disables the reaper *)
  io_deadline_s : float option;
      (** slow-loris bound: a frame/line that stays incomplete this
          long closes its connection; also the kernel send-timeout for
          response writes. [None] disables both. *)
  max_frame_bytes : int;  (** frame payload / request line cap *)
}

val default_config : socket_path:string -> config
(** 2 jobs, depth 64, 30s deadline, 50M fuel, no journal, no TCP, no
    idle reaper, 10s I/O deadline, 4 MiB frames. *)

type t

val create : config -> handler -> t

val tcp_port : t -> int option
(** The TCP listener's bound port, available once {!run} has bound it
    (before the UDS socket file appears — poll for the file, then read
    this). [None] when no TCP listener is configured or not yet
    bound. *)

val run : t -> unit
(** Serve until {!stop}. With a journal configured, first replays every
    admitted-but-unfinished entry through the handler (idempotent:
    compiles are memo-backed), each under its own fresh deadline/fuel
    budget; the socket binds only after replay, so the socket appearing
    is the ready signal. Then binds (replacing any stale socket file),
    accepts in the calling thread, and on {!stop} drains — sheds new
    work, finishes and answers {e every} admitted request, joins
    workers and readers, removes the socket file. {!stop} during the
    replay stops between entries (the rest stay pending for the next
    start) and returns without serving.

    Memory watchdog (see {!Guard.set_mem_budget}): past the shed
    fraction of the budget new admissions are refused with
    [{"code": "overloaded", "retryable": true}]; a request whose
    ticking crosses the full budget is aborted with
    [{"code": "mem-pressure", "retryable": true}] instead of letting
    the OS OOM-kill the daemon. *)

val submit_background : t -> Json.t -> bool
(** Submit handler work to the {e background lane}: no client, no
    response — the compile service's tier-upgrade jobs. Background
    jobs run only when the live queue is empty (idle workers), each
    run under a fresh default deadline/fuel budget, so they can never
    starve admission or live traffic. The handler sees the request
    with two envelope additions: ["lane": "bg"] and ["bg_attempt": n]
    (0-based run counter).

    Scheduling protocol: a handler response carrying
    ["retry_after_s": d] re-enqueues the job after [d] seconds
    (bounded attempts); any other response is terminal. A run that
    raises (deadline, fuel, memory, a handler bug) is retried with
    deterministic exponential backoff and dropped after the attempt
    cap — upgrade-path faults are contained to the lane.

    With a journal configured the job is journaled (fsync'd) before it
    becomes runnable and marked done only by a terminal run, so a
    [kill -9] mid-upgrade replays it — {!run} re-enqueues pending
    background entries on this lane instead of running them before the
    socket binds (replay never starves admission), and a supervised
    restart therefore resumes the upgrade queue from journaled state.

    Returns [false] — journaling nothing — when the server is draining
    or the lane is at capacity ([queue_depth]) or the heap is past the
    shed fraction of the memory budget: the caller keeps serving its
    floor entry and a later request may resubmit. *)

val stop : t -> unit
(** Request a graceful drain. Lock-free (a flag and a self-pipe
    write): safe to call from a signal handler or any thread.
    Idempotent. *)

val stopping : t -> bool
val uptime_s : t -> float

(** Client side of the protocol — shared by [nascentc client], the
    bench service target and the tests. *)
module Client : sig
  type address = Uds of string | Tcp of string * int

  val parse_address : string -> address
  (** ["host:port"] (no slash, numeric suffix) is TCP; anything else is
      a Unix socket path. *)

  val address_to_string : address -> string

  exception Handshake of string
  (** The server rejected (or garbled) the NF1 hello: a protocol
      mismatch, not a transient. *)

  type connection

  val connect : string -> connection
  (** Connect to a Unix socket path (line protocol). Raises
      [Unix.Unix_error] as [Unix.connect] does. *)

  val connect_addr : ?recv_timeout_s:float -> address -> connection
  (** Connect to either transport. A TCP connection performs the NF1
      hello handshake before returning (raises {!Handshake} on a
      protocol mismatch). [recv_timeout_s] bounds every subsequent
      wait for response bytes: expiry raises
      [Unix_error (ETIMEDOUT, _, _)] instead of hanging forever on a
      stalled peer. *)

  val close : connection -> unit

  val with_conn : string -> (connection -> 'a) -> 'a

  val with_addr : ?recv_timeout_s:float -> address -> (connection -> 'a) -> 'a

  val framed : connection -> bool

  val send_line : connection -> string -> unit

  val recv_line : connection -> string option
  (** One newline-terminated line ([None] on EOF); overshoot is
      buffered for the next call. *)

  val pipeline_send : connection -> Json.t -> int
  (** Framed connections only: send a request tagged with a fresh
      frame id (returned) without waiting — many may be in flight. *)

  val pipeline_recv :
    connection ->
    ( (int * Json.t) option,
      [ `Garbled of string | `Frame of Frame.error ] )
    result
  (** The next response off a framed connection, in server completion
      order (match it to a {!pipeline_send} tag). [Ok None] on EOF. *)

  val exchange :
    connection ->
    Json.t ->
    ( Json.t,
      [ `Garbled of string | `Closed | `Frame of Frame.error ] )
    result
  (** One request/response exchange with the failure modes kept
      distinct: [`Closed] (EOF before a complete response — retryable),
      [`Garbled] (a response arrived but does not parse — a protocol
      bug), [`Frame] (a framed response failed to decode). Unix errors
      propagate. *)

  val request : connection -> Json.t -> (Json.t, string) result
  (** {!exchange} with errors rendered as strings. *)

  val request_retry :
    ?policy:Retry.policy ->
    ?sleep:(float -> unit) ->
    ?max_elapsed_s:float ->
    ?recv_timeout_s:float ->
    seed:int ->
    string ->
    Json.t ->
    (Json.t, string) result
  (** One-shot exchange on a fresh connection — the string address is
      parsed with {!parse_address}, so both ["/path/sock"] and
      ["host:port"] work — with {!Retry} backoff (deterministic jitter
      from [seed]). Retryable: connection refusals, responses marked
      [retryable], a connection torn down mid-exchange
      (EPIPE/ECONNRESET/EOF before a response), a receive that
      outwaits [recv_timeout_s], and a CRC-torn response frame —
      racing a draining or restarting daemon (or a hostile network) is
      safe because requests are idempotent (compiles are memoized,
      status is read-only). Fatal: a response that arrives but fails
      to parse, and a {!Handshake} protocol mismatch. Every attempt
      re-resolves and re-connects the address, so the schedule rides
      through a supervised restart; [?max_elapsed_s] caps the total
      wait (see {!Retry.run}). *)
end

(* Fixed-universe mutable bitsets over [0, n).

   Data-flow analyses in the range-check optimizer manipulate sets of
   check indices; the universe (all canonical checks of a function) is
   fixed before the analysis starts, so a flat word array is the right
   representation. *)

type t = { n : int; words : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let nwords n = if n = 0 then 0 else ((n - 1) / bits_per_word) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { n; words = Array.make (nwords n) 0 }

let universe t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check_idx t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of universe"

let mem t i =
  check_idx t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check_idx t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check_idx t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Mask of valid bits in the last word, so [fill] keeps the invariant
   that bits >= n are zero (required for [equal] and [cardinal]). *)
let last_mask t =
  if t.n = 0 then 0
  else
    let used = t.n mod bits_per_word in
    if used = 0 then -1 else (1 lsl used) - 1

let fill t =
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw (-1);
    t.words.(nw - 1) <- t.words.(nw - 1) land last_mask t
  end

let full n =
  let t = create n in
  fill t;
  t

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let union_into ~into src =
  same_universe into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

let inter_into ~into src =
  same_universe into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land src.words.(i)
  done

let diff_into ~into src =
  same_universe into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot src.words.(i)
  done

let assign ~into src =
  same_universe into src;
  Array.blit src.words 0 into.words 0 (Array.length src.words)

let equal a b = a.n = b.n && a.words = b.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let low = !w land - !w in
      let bit =
        (* index of the lowest set bit *)
        let rec idx b acc = if b land 1 = 1 then acc else idx (b lsr 1) (acc + 1) in
        idx low 0
      in
      f ((wi * bits_per_word) + bit);
      w := !w land lnot low
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let disjoint a b =
  same_universe a b;
  let d = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then d := false
  done;
  !d

let subset a b =
  same_universe a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)

(** Health-checked consistent-hash shard router.

    N [nascentd] shard processes behind one router: requests are routed
    by a consistent hash of the fields that determine the memo cache
    key (source + compile configuration), so each shard's cache stays
    hot for its slice of the keyspace and shards share nothing. The
    router is itself served by {!Server} (it is just a {!Server.handler}
    that forwards), so it inherits admission control, the framed TCP
    transport, drain, and inline status for free.

    Health: a probe thread sends each shard a [status] request every
    [probe_interval_s]; consecutive failures past the {!Breaker}
    threshold eject the shard from routing, and a later successful
    probe re-admits it (the probe interval is the cooldown). Forward
    failures feed the same breaker, so a [kill -9]'d shard is ejected
    mid-burst, before the next probe tick.

    Failover: a forward that fails at the transport level (refused,
    reset, EOF before response, receive timeout) moves to the next
    distinct shard on the hash ring — safe because requests are
    idempotent (compiles are memoized, status/burn read-only; a killed
    shard's admitted work additionally replays from its own journal).
    A shard's {e response} is returned as-is, error or not: an
    overloaded shard is alive, and its backpressure belongs to the
    client. Only when every candidate fails does the client see
    [{"code": "no-shard", "retryable": true}]. *)

type shard = { name : string; address : Server.Client.address }

type t

val create :
  ?replicas:int ->
  ?threshold:int ->
  ?cooldown_s:float ->
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?forward_timeout_s:float ->
  shards:shard list ->
  unit ->
  t
(** [replicas] (default 64) is the number of ring points per shard;
    [threshold]/[cooldown_s] parameterize the health {!Breaker}
    (defaults 3 / 2.0); [probe_interval_s] (default 0.5) the probe
    cadence; [probe_timeout_s] (default 2.0) the probe's receive
    budget; [forward_timeout_s] (default 35.0) the receive budget for
    a forwarded request carrying no ["deadline_ms"] of its own — one
    that does gets that deadline plus slack instead.
    @raise Invalid_argument on an empty shard list. *)

val shard_key : Json.t -> string
(** The routing key of a request: its content fields (everything but
    the ["id"]/["deadline_ms"]/["tier"]/["retries"] envelope),
    canonically ordered — two requests that would hit the same memo
    cell hash alike, so routing preserves cache locality. *)

val route : t -> string -> shard list
(** Ring walk for a key: every distinct shard in failover order
    (closest ring point first). Deterministic; ignores health. *)

val handler : t -> Server.handler
(** The forwarding handler (plug into {!Server.create}). Its
    [status_extra] reports the ring and per-shard health under
    ["router"]. *)

val start : t -> unit
(** Spawn the probe thread. Idempotent. *)

val stop : t -> unit
(** Stop and join the probe thread. Idempotent. *)

val healthy : t -> shard -> bool
(** Whether routing currently considers the shard admitted (its
    breaker is not open). *)

(** Fixed-size domain pool for the experiment harness.

    The evaluation matrix (benchmark × scheme × check kind ×
    implication mode) is embarrassingly parallel: every cell lowers,
    optimizes and interprets its own copy of a program. [parallel_map]
    fans a list of such cells over a fixed set of OCaml 5 domains while
    preserving the exact semantics of [List.map]:

    - results come back in input order, regardless of completion order;
    - an exception raised by [f] is captured (with its backtrace) and
      re-raised in the calling domain — when several tasks raise, the
      one with the lowest input index wins, matching left-to-right
      serial evaluation;
    - with [jobs = 1] the pool degrades to plain [List.map] — the
      serial fallback used for differential determinism testing.

    The submitting domain always participates in draining its own
    batch, so a pool of [jobs = n] spawns [n - 1] worker domains and
    [parallel_map] cannot deadlock even when called from another
    pool's worker. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped
    to [1 .. 64]). A [jobs = 1] pool spawns nothing and runs every
    batch serially in the caller. *)

val jobs : t -> int

val shutdown : t -> unit
(** Signal the workers to exit and join them. Pending tasks are drained
    first; submitting to a shut-down pool raises. *)

val parallel_map : ?task_fuel:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map t f xs ≡ List.map f xs], computed on up to
    [jobs t] domains. See the module description for the ordering and
    exception contract.

    [?task_fuel] installs a per-task watchdog: each task runs under its
    own ambient {!Guard} fuel budget, charged by every
    {!Guard.tick_ambient} the task's fixpoints execute, and a task that
    exhausts it raises {!Guard.Fuel_exhausted} (delivered via the usual
    exception contract) instead of wedging a worker domain forever. *)

val parallel_iter : ?task_fuel:int -> t -> ('a -> unit) -> 'a list -> unit
(** [parallel_iter t f xs]: run [f] on every element, in parallel.
    Completion order is unspecified; exceptions follow
    {!parallel_map}'s lowest-index rule, [?task_fuel] its watchdog. *)

(** {2 The jobs knob}

    Parallelism is configured once per process, from (in priority
    order) {!set_default_jobs} (the [--jobs] CLI flag), the
    [NASCENT_JOBS] environment variable, or
    [Domain.recommended_domain_count]. *)

val default_jobs : unit -> int

val set_default_jobs : int -> unit
(** Override [NASCENT_JOBS] / the core count. Call only from the main
    domain, with no parallel batch in flight: a live {!global} pool of
    a different size is shut down and replaced on the next
    {!global} call. *)

val global : unit -> t
(** The process-wide pool, created on first use with
    {!default_jobs} ()] domains and resized (by replacement) when the
    default changes. *)

(* NF1 framed wire protocol: 20-byte header (magic, version, id, payload
   length, payload CRC32) + payload. See frame.mli for the layout and
   the fault-detection contract. *)

let version = 1
let header_bytes = 20
let default_max_payload = 4 * 1024 * 1024
let magic = "NF1"

(* --- CRC32 (IEEE 802.3), table-driven, pure OCaml ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s off len =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = off to off + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32 s = crc32_sub s 0 (String.length s)

(* --- encode --------------------------------------------------------- *)

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let encode ~id payload =
  if id < 0 then invalid_arg "Frame.encode: negative id";
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 3;
  Bytes.set b 3 (Char.chr version);
  (* id: 8 bytes big-endian; OCaml ints are 63-bit so the top byte of a
     non-negative id never exceeds 0x3f. *)
  for i = 0 to 7 do
    Bytes.set b (4 + i) (Char.chr ((id lsr (8 * (7 - i))) land 0xff))
  done;
  put_u32 b 12 len;
  put_u32 b 16 (crc32 payload);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* --- decode --------------------------------------------------------- *)

type frame = { id : int; payload : string }

type error = Bad_magic | Bad_version of int | Oversized of int | Crc_mismatch | Bad_id

let error_name = function
  | Bad_magic -> "bad-magic"
  | Bad_version _ -> "bad-version"
  | Oversized _ -> "oversized"
  | Crc_mismatch -> "crc-mismatch"
  | Bad_id -> "bad-id"

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad magic (not an NF1 stream)"
  | Bad_version v -> Format.fprintf ppf "unsupported protocol version %d" v
  | Oversized n -> Format.fprintf ppf "declared payload of %d bytes exceeds the cap" n
  | Crc_mismatch -> Format.fprintf ppf "payload CRC mismatch"
  | Bad_id -> Format.fprintf ppf "request id does not fit"

type decoder = {
  max_payload : int;
  buf : Buffer.t;  (* bytes not yet consumed into a frame *)
  mutable poisoned : error option;
}

let decoder ?(max_payload = default_max_payload) () =
  { max_payload; buf = Buffer.create 256; poisoned = None }

let feed d s ~off ~len =
  if d.poisoned = None then Buffer.add_substring d.buf s off len

let feed_bytes d b ~off ~len =
  if d.poisoned = None then Buffer.add_subbytes d.buf b off len

let buffered d = Buffer.length d.buf
let mid_frame d = d.poisoned = None && Buffer.length d.buf > 0

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let poison d e =
  d.poisoned <- Some e;
  Buffer.clear d.buf;
  Error e

(* Validate as much of the header as is buffered, so a garbage prefix or
   a forged oversized length is rejected as soon as those bytes arrive —
   before any payload is read, let alone allocated. *)
let next d =
  match d.poisoned with
  | Some e -> Error e
  | None -> (
      let have = Buffer.length d.buf in
      let chk = min have 3 in
      let rec magic_ok i =
        i >= chk || (Buffer.nth d.buf i = magic.[i] && magic_ok (i + 1))
      in
      if not (magic_ok 0) then poison d Bad_magic
      else if have >= 4 && Buffer.nth d.buf 3 <> Char.chr version then
        poison d (Bad_version (Char.code (Buffer.nth d.buf 3)))
      else if have < header_bytes then Ok None
      else
        let hdr = Buffer.sub d.buf 0 header_bytes in
        let len = get_u32 hdr 12 in
        if len > d.max_payload then poison d (Oversized len)
        else if Char.code hdr.[4] land 0xc0 <> 0 then poison d Bad_id
        else if have < header_bytes + len then Ok None
        else
          let id = ref 0 in
          for i = 0 to 7 do
            id := (!id lsl 8) lor Char.code hdr.[4 + i]
          done;
          let payload = Buffer.sub d.buf header_bytes len in
          let rest = Buffer.sub d.buf (header_bytes + len) (have - header_bytes - len) in
          Buffer.clear d.buf;
          Buffer.add_string d.buf rest;
          if crc32 payload <> get_u32 hdr 16 then poison d Crc_mismatch
          else Ok (Some { id = !id; payload }))

(* --- blocking helpers with injectable I/O --------------------------- *)

let rec read_frame ~read d =
  match next d with
  | Error _ as e -> e
  | Ok (Some _) as f -> f
  | Ok None -> (
      let chunk = Bytes.create 8192 in
      match read chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame ~read d
      | 0 -> Ok None (* EOF; caller checks mid_frame for truncation *)
      | n ->
          feed_bytes d chunk ~off:0 ~len:n;
          read_frame ~read d)

let write_all ~write s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match write b off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | n when n <= 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
      | n -> go (off + n)
  in
  go 0

(* --- hello handshake ------------------------------------------------ *)

let hello () = Json.Obj [ ("hello", Json.Str "nf1"); ("version", Json.Int version) ]

let check_hello j =
  match (Json.str_member "hello" j, Json.int_member "version" j) with
  | Some "nf1", Some v when v = version -> Ok v
  | Some "nf1", Some v -> Error (Printf.sprintf "unsupported protocol version %d" v)
  | Some "nf1", None -> Error "hello carries no version"
  | _ -> Error "first frame is not an NF1 hello"

(** Deterministic, seeded network fault injection.

    Every fault class maps to a detection at the frame/transport layer
    and a recovery at the client/router layer — chaos runs assert both
    sides of that table:

    {v
      class              detection                     recovery
      torn-frame         payload CRC mismatch          reconnect + retry
      truncated-write    EOF mid-frame (never parsed)  reconnect + retry
      delayed-bytes      mid-frame read deadline       reconnect + retry
      reset-mid-exchange EOF before response           retry (idempotent)
      garbage-frame      magic check (proto reject)    reconnect + retry
      oversized-frame    payload length cap            reconnect + retry
      stalled-reader     recv deadline / write budget  reconnect + retry
    v}

    All behaviour is a pure function of [spec] (class + seed) and the
    exchange/connection index, so a failing chaos run replays exactly. *)

type cls =
  | Torn_frame
  | Truncated_write
  | Delayed_bytes
  | Reset_mid_exchange
  | Garbage_frame
  | Oversized_frame
  | Stalled_reader

type spec = { cls : cls; seed : int }

val all_classes : cls list
val cls_name : cls -> string

val parse : string -> (spec, string) result
(** Parse ["CLASS"] or ["CLASS:SEED"], e.g. ["torn-frame:7"]. The seed
    defaults to 0. *)

val to_string : spec -> string

val should_fault : spec -> int -> bool
(** [should_fault spec n]: whether the [n]th connection (0-based) gets
    the fault. Deterministic in [(spec.seed, n)]; roughly one in three
    connections is faulted, so a retrying client always reaches a clean
    connection within a few attempts. *)

val mangle : spec -> string -> string
(** Damage an outbound byte string (a client's framed request stream)
    according to the class: flip a seeded payload byte (torn frame),
    drop the tail (truncated write), prepend garbage bytes (garbage
    frame), forge a header declaring an absurd payload length
    (oversized frame). Classes that damage timing rather than bytes
    (delayed bytes, reset, stalled reader) return the string intact. *)

(** A send schedule for (possibly mangled) bytes: how a faulty peer
    dribbles, delays, or cuts the transmission. *)
type step =
  | Write of string
  | Delay_s of float
  | Close_now  (** stop sending and close the socket at this point *)

val plan : spec -> delay_s:float -> string -> step list
(** The faulted transmission schedule for one request's bytes.
    [delay_s] is the stall injected by [Delayed_bytes] (choose it
    longer than the server's mid-frame read deadline to force the
    detection). Deterministic in [spec]. *)

val reader : spec -> data:string -> bytes -> int -> int -> int
(** An in-process faulty reader over a fixed byte string, with the
    shape of [Unix.read fd]: returns seeded short reads (1–4 bytes),
    raises [Unix_error (EINTR, _, _)] at seeded points, and returns 0
    (EOF) at the end — early, mid-frame, for [Truncated_write] and
    [Reset_mid_exchange]. Byte damage is [mangle]'s job; compose the
    two to drive a framed reader through every partial-I/O schedule. *)

val writer : spec -> out:Buffer.t -> bytes -> int -> int -> int
(** The write-side twin: accepts seeded short writes (1–4 bytes at a
    time) into [out] and raises [EINTR] at seeded points — for driving
    {!Frame.write_all} through hostile schedules. Never loses bytes. *)

val proxy :
  listen:Unix.sockaddr ->
  upstream:Unix.sockaddr ->
  ?stop:(unit -> bool) ->
  ?delay_s:float ->
  ?on_listen:(Unix.sockaddr -> unit) ->
  spec ->
  unit
(** Run a chaos proxy: accept connections on [listen], pipe bytes to
    and from [upstream], and apply the fault (per {!should_fault}) to
    faulted connections — client-to-upstream bytes are mangled/cut per
    the class; [Stalled_reader] swallows the upstream's response and
    [Reset_mid_exchange] cuts the connection once the request has been
    relayed. [delay_s] (default 3.0) is the [Delayed_bytes] stall.
    [on_listen] fires once the socket is bound and listening, with the
    actual bound address (so callers may listen on port 0). Blocks
    until [stop] returns true (polled between accepts). Connections
    are handled on threads. *)

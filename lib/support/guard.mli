(** Fault-containment primitives: deterministic fuel watchdogs and
    atomic file writes.

    Fuel replaces wall-clock watchdogs everywhere determinism matters:
    a budget is a tick counter, fixpoint loops charge it once per
    sweep, and exhaustion raises {!Fuel_exhausted} at the same tick on
    every run, every pool size, every machine. The optimizer installs
    one budget per pass (so a hung fixpoint rolls back that pass); the
    pool can install one per task (so a pathological cell fails
    promptly instead of wedging a whole [bench tables] run). *)

exception Fuel_exhausted of string
(** Raised by {!tick} when a budget runs out; the payload names the
    budget ([what]). *)

exception Deadline_exceeded of string
(** Raised by the ambient deadline check when a wall-clock budget runs
    out; the payload names the deadline ([what]). *)

type fuel

val fuel : what:string -> budget:int -> fuel
(** A fresh budget of [max 1 budget] ticks named [what]. *)

val remaining : fuel -> int

val tick : fuel -> unit
(** Charge one tick. @raise Fuel_exhausted when the budget hits 0. *)

(** {2 Wall-clock deadlines}

    Fuel is deterministic but knows nothing about latency; a deadline
    is the converse — the compile server's per-request wall-clock
    budget, layered on the same ambient ticking. The monotonic clock is
    read only every 128th {!tick_ambient} (and by {!check_deadlines}),
    so ticking stays cheap on fixpoint hot paths. *)

type deadline

val deadline : what:string -> seconds:float -> deadline
(** A wall-clock budget of [seconds], counting from the call (so a
    deadline created at request admission also covers queue wait). *)

val expired : deadline -> bool

val remaining_s : deadline -> float
(** Seconds left, clamped at [0.]. *)

val with_deadline : deadline -> (unit -> 'a) -> 'a
(** Install [deadline] for the dynamic extent of the thunk (nests like
    {!with_fuel}); the ambient ticking of everything nested under it
    raises {!Deadline_exceeded} once the budget is spent. *)

val check_deadlines : unit -> unit
(** Check every ambient deadline of the current domain right now,
    without the 128-tick throttle.
    @raise Deadline_exceeded if one has expired. *)

(** {2 Ambient budgets}

    A per-domain stack of installed budgets. Fixpoint loops call
    {!tick_ambient} instead of threading a [fuel] parameter through
    every analysis signature; each call charges {e every} installed
    budget, so an outer watchdog bounds all work nested under it. *)

val with_fuel : fuel -> (unit -> 'a) -> 'a
(** Install [fuel] for the dynamic extent of the thunk (re-entrant:
    budgets nest). The installation is per-domain. *)

val tick_ambient : unit -> unit
(** Charge every ambient budget of the current domain (and, every
    128th tick, check its ambient deadlines); no-op when none is
    installed. @raise Fuel_exhausted from the innermost exhausted
    budget. @raise Deadline_exceeded past an ambient deadline. *)

val exhaust_ambient : unit -> 'a
(** Spin on {!tick_ambient} until a budget runs out — the fault
    injector's deterministic stand-in for a hung fixpoint.
    @raise Fuel_exhausted always (immediately when no fuel budget or
    deadline is installed). @raise Deadline_exceeded when an ambient
    deadline fires first. *)

(** {2 Atomic writes} *)

val write_atomic : path:string -> string -> unit
(** Write [contents] to [path] via a temp file in the same directory
    and an atomic [rename]: readers see either the old file or the
    complete new one, never a torn write. Raises as [Out_channel] /
    [Sys.rename] do (the temp file is removed on failure). *)
